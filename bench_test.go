// Benchmark harness: one benchmark per evaluation table and figure of
// the paper (§VI), plus the §VI-F performance measurements (vaccine
// generation overhead, backward slicing, impact analysis, deployment,
// and daemon hook overhead). Run with:
//
//	go test -bench=. -benchmem
//
// The table/figure benchmarks use a reduced corpus per iteration (the
// Table II category mix is preserved); `go run ./cmd/benchreport -all`
// regenerates the same outputs at the paper's full 1,716-sample scale.
// The fleet distribution layer has its own benchmarks following the
// same conventions: `go test -bench=. -benchmem ./internal/fleet`
// (BenchmarkRegistryDeltaSync, BenchmarkCheckin, BenchmarkRegistryPublish).
package autovac_test

import (
	"fmt"
	"testing"

	"autovac/internal/alignment"
	"autovac/internal/core"
	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/experiment"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const benchSeed = 42

// benchCorpusSize keeps per-iteration experiment runs tractable while
// preserving the corpus mix.
const benchCorpusSize = 60

// --- Table and figure regeneration benches ---

func BenchmarkTable2Classification(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, err := experiment.NewSetup(benchSeed, benchCorpusSize)
		if err != nil {
			b.Fatal(err)
		}
		rows := s.TableII()
		if len(rows) != 6 {
			b.Fatal("bad table II")
		}
	}
}

// phase12 runs Phase-I and Phase-II over the bench corpus.
func phase12(b *testing.B) (*experiment.Setup, *experiment.Phase1Stats, *experiment.GenStats) {
	b.Helper()
	s, err := experiment.NewSetup(benchSeed, benchCorpusSize)
	if err != nil {
		b.Fatal(err)
	}
	stats, profiles, err := s.RunPhase1()
	if err != nil {
		b.Fatal(err)
	}
	gen, err := s.RunPhase2(profiles)
	if err != nil {
		b.Fatal(err)
	}
	return s, stats, gen
}

func BenchmarkPhase1CandidateSelection(b *testing.B) {
	s, err := experiment.NewSetup(benchSeed, benchCorpusSize)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		stats, _, err := s.RunPhase1()
		if err != nil {
			b.Fatal(err)
		}
		if stats.Occurrences == 0 {
			b.Fatal("no occurrences")
		}
	}
}

func BenchmarkFigure3ResourceBehaviour(b *testing.B) {
	s, err := experiment.NewSetup(benchSeed, benchCorpusSize)
	if err != nil {
		b.Fatal(err)
	}
	stats, _, err := s.RunPhase1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.Figure3(stats)
		if len(rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

func BenchmarkTable4VaccineGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, _, gen := phase12(b)
		if len(experiment.TableIV(gen)) == 0 {
			b.Fatal("empty table IV")
		}
	}
}

func BenchmarkTable3RepresentativeVaccines(b *testing.B) {
	s, _, gen := phase12(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.TableIII(gen, s.Samples, 10)
		if len(rows) == 0 {
			b.Fatal("empty table III")
		}
	}
}

func BenchmarkTable5FamilyStatistics(b *testing.B) {
	_, _, gen := phase12(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows := experiment.TableV(gen)
		if len(rows) == 0 {
			b.Fatal("empty table V")
		}
	}
}

func BenchmarkTable6ZeusVaccine(b *testing.B) {
	_, _, gen := phase12(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := experiment.TableVI(gen); !ok {
			b.Fatal("no Zeus vaccine")
		}
	}
}

func BenchmarkFigure4BDR(b *testing.B) {
	s, _, gen := phase12(b)
	byName := make(map[string]*malware.Sample, len(s.Samples))
	for _, sm := range s.Samples {
		byName[sm.Name()] = sm
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points, err := s.Figure4(gen, byName, 2)
		if err != nil {
			b.Fatal(err)
		}
		if len(experiment.SummarizeBDR(points)) == 0 {
			b.Fatal("no BDR data")
		}
	}
}

func BenchmarkTable7VariantEffectiveness(b *testing.B) {
	s, err := experiment.NewSetup(benchSeed, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows, err := s.TableVII(5, 0.45)
		if err != nil {
			b.Fatal(err)
		}
		if len(rows) != 6 {
			b.Fatal("bad table VII")
		}
	}
}

func BenchmarkClinicFalsePositiveTest(b *testing.B) {
	s, _, gen := phase12(b)
	vs := gen.Vaccines
	if len(vs) > 5 {
		vs = vs[:5]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.FalsePositiveTest(vs)
		if err != nil {
			b.Fatal(err)
		}
		if rep.ProgramsTested == 0 {
			b.Fatal("no programs tested")
		}
	}
}

// --- §VI-F.1: vaccine generation overhead ---

// benchPipeline builds a pipeline with the exclusiveness index.
func benchPipeline(b *testing.B) *core.Pipeline {
	b.Helper()
	benign, err := malware.BenignCorpus()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	return core.New(core.Config{Seed: benchSeed, Index: ix})
}

// BenchmarkVaccineGeneration measures end-to-end analysis of one sample
// (the paper: 789 s per sample on 2013 hardware, against real binaries).
func BenchmarkVaccineGeneration(b *testing.B) {
	p := benchPipeline(b)
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := p.Analyze(sample)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Vaccines) == 0 {
			b.Fatal("no vaccines")
		}
	}
}

// BenchmarkBackwardSlicing measures slice extraction for an
// algorithm-deterministic identifier (the paper: 214 s average).
func BenchmarkBackwardSlicing(b *testing.B) {
	spec := &malware.Spec{Name: "bench-algo", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed, RecordSteps: true})
	if err != nil {
		b.Fatal(err)
	}
	seq := tr.CallsTo("CreateMutexA")[0].Seq
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := determinism.Extract(prog, tr, seq); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkImpactAnalysis measures one mutation experiment: a mutated
// re-execution plus trace differential classification (the paper: 2-3
// minutes per case).
func BenchmarkImpactAnalysis(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	normal, err := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mutated, err := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()),
			emu.Options{Seed: benchSeed, Mutations: []emu.Mutation{{
				API: "OpenMutexA", CallerPC: -1, Identifier: "_AVIRA_2109",
				Mode: emu.ForceSuccess,
			}}})
		if err != nil {
			b.Fatal(err)
		}
		if r := impact.Classify(mutated, normal); !r.Immunizing() {
			b.Fatal("not immunizing")
		}
	}
}

// BenchmarkTraceAlignment measures Algorithm 1 on realistic call traces.
func BenchmarkTraceAlignment(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Conficker)
	if err != nil {
		b.Fatal(err)
	}
	normal, _ := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: benchSeed})
	mutated, _ := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed, Mutations: []emu.Mutation{{
			API: "OpenMutexA", CallerPC: -1, Mode: emu.ForceSuccess,
		}}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := impact.Classify(mutated, normal)
		if !r.Immunizing() {
			b.Fatal("not immunizing")
		}
	}
}

// --- §VI-F.2: deployment overhead ---

// staticVaccines builds n distinct static mutex vaccines.
func staticVaccines(n int) []vaccine.Vaccine {
	out := make([]vaccine.Vaccine, n)
	for i := range out {
		out[i] = vaccine.Vaccine{
			ID: fmt.Sprintf("bench/mutex/%d", i), Sample: "bench",
			Resource: winenv.KindMutex, Identifier: fmt.Sprintf("BENCH-MUTEX-%04d", i),
			Class: determinism.Static, Op: "open", API: "OpenMutexA",
			Effect: impact.Full, Polarity: vaccine.SimulatePresence,
			Delivery: vaccine.DirectInjection,
		}
	}
	return out
}

// BenchmarkDirectInjection measures installing a batch of static
// vaccines (the paper: 34 s for 373 static vaccines, i.e. ~91 ms each).
func BenchmarkDirectInjection(b *testing.B) {
	vs := staticVaccines(373)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		env := winenv.New(winenv.DefaultIdentity())
		d := core.New(core.Config{Seed: benchSeed}).NewDaemonFor(env)
		for j := range vs {
			if err := d.Install(vs[j]); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkSliceReplay measures regenerating one algorithm-deterministic
// identifier on an end host (the paper: 25.7 s per vaccine).
func BenchmarkSliceReplay(b *testing.B) {
	spec := &malware.Spec{Name: "bench-replay", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed, RecordSteps: true})
	if err != nil {
		b.Fatal(err)
	}
	sl, err := determinism.Extract(prog, tr, tr.CallsTo("CreateMutexA")[0].Seq)
	if err != nil {
		b.Fatal(err)
	}
	env := winenv.New(winenv.DefaultIdentity())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Replay rewinds the environment itself; no per-iteration clone.
		if _, err := sl.Replay(env, benchSeed); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDaemonHookOverhead measures the per-operation cost of the
// daemon's interception hook as the number of partial-static vaccines
// grows — the paper's <4.5% hook overhead claim, and its extrapolation
// that 10x more vaccines stay under 12%. The .../none case is the
// baseline without a daemon.
func BenchmarkDaemonHookOverhead(b *testing.B) {
	patterns := func(n int) []vaccine.Vaccine {
		out := make([]vaccine.Vaccine, n)
		for i := range out {
			out[i] = vaccine.Vaccine{
				ID: fmt.Sprintf("bench/pat/%d", i), Sample: "bench",
				Resource: winenv.KindMutex, Pattern: fmt.Sprintf("WORMFAM%04d-*", i),
				Class: determinism.PartialStatic, Op: "create", API: "CreateMutexA",
				Effect: impact.Full, Polarity: vaccine.SimulatePresence,
				Delivery: vaccine.VaccineDaemon,
			}
		}
		return out
	}
	run := func(b *testing.B, n int) {
		env := winenv.New(winenv.DefaultIdentity())
		env.SetEventLogging(false)
		if n > 0 {
			d := core.New(core.Config{Seed: benchSeed}).NewDaemonFor(env)
			for _, v := range patterns(n) {
				if err := d.Install(v); err != nil {
					b.Fatal(err)
				}
			}
		}
		req := winenv.Request{
			Kind: winenv.KindMutex, Op: winenv.OpCreate,
			Name: "benign-app-instance-mutex", Principal: "app",
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res := env.Do(req)
			if res.Intercepted {
				b.Fatal("benign op intercepted")
			}
			env.Remove(winenv.KindMutex, req.Name)
		}
	}
	b.Run("none", func(b *testing.B) { run(b, 0) })
	b.Run("vaccines-1", func(b *testing.B) { run(b, 1) })
	b.Run("vaccines-10", func(b *testing.B) { run(b, 10) })
	b.Run("vaccines-119", func(b *testing.B) { run(b, 119) }) // the paper's count
	b.Run("vaccines-1190", func(b *testing.B) { run(b, 1190) })
}

// --- substrate micro-benches ---

// BenchmarkEmulator measures raw emulated instruction throughput.
func BenchmarkEmulator(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	env := winenv.New(winenv.DefaultIdentity())
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		tr, err := emu.Run(sample.Program, env.Clone(), emu.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Exit == trace.ExitFault {
			b.Fatal(tr.Fault)
		}
		steps += tr.StepCount
	}
	b.ReportMetric(float64(steps)/float64(b.N), "instrs/op")
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkEmulatorWithSteps measures the instruction-level recording
// overhead backward slicing pays.
func BenchmarkEmulatorWithSteps(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	env := winenv.New(winenv.DefaultIdentity())
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		tr, err := emu.Run(sample.Program, env.Clone(),
			emu.Options{Seed: benchSeed, RecordSteps: true})
		if err != nil {
			b.Fatal(err)
		}
		steps += tr.StepCount
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkEmulatorStalling measures instruction dispatch on the
// dynamic-analysis-evasion workload (stalling loop + timing check, see
// PAPERS.md) where tight-loop stepping cost dominates — the workload
// tier-2 block compilation targets. The stepwise variant forces tier-1
// with Options.DisableBlocks; execution is byte-identical either way.
func BenchmarkEmulatorStalling(b *testing.B) {
	spec := &malware.Spec{Name: "bench-stalling", Category: malware.Trojan,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehStalling, Count: 20_000},
			{Kind: malware.BehMarkerMutex, ID: "BENCH-STALL-MUTEX"},
		}}
	prog := malware.MustEmit(spec)
	run := func(b *testing.B, disable bool) {
		r, err := emu.NewRunner(prog, winenv.New(winenv.DefaultIdentity()))
		if err != nil {
			b.Fatal(err)
		}
		defer r.Close()
		b.ReportAllocs()
		b.ResetTimer()
		steps := 0
		for i := 0; i < b.N; i++ {
			tr, err := r.Run(emu.Options{Seed: benchSeed, DisableBlocks: disable})
			if err != nil {
				b.Fatal(err)
			}
			if tr.Exit == trace.ExitFault {
				b.Fatal(tr.Fault)
			}
			steps += tr.StepCount
		}
		b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
	}
	b.Run("blocks", func(b *testing.B) { run(b, false) })
	b.Run("stepwise", func(b *testing.B) { run(b, true) })
}

// BenchmarkEmulatorPooled measures steady-state throughput through the
// Runner arena — the shape Phase-II impact analysis actually runs
// (environment snapshot/rewind instead of per-run construction).
func BenchmarkEmulatorPooled(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	r, err := emu.NewRunner(sample.Program, winenv.New(winenv.DefaultIdentity()))
	if err != nil {
		b.Fatal(err)
	}
	defer r.Close()
	b.ReportAllocs()
	b.ResetTimer()
	steps := 0
	for i := 0; i < b.N; i++ {
		tr, err := r.Run(emu.Options{Seed: benchSeed})
		if err != nil {
			b.Fatal(err)
		}
		if tr.Exit == trace.ExitFault {
			b.Fatal(tr.Fault)
		}
		steps += tr.StepCount
	}
	b.ReportMetric(float64(steps)/b.Elapsed().Seconds(), "steps/sec")
}

// BenchmarkCorpusGeneration measures synthesizing the full paper-scale
// corpus.
func BenchmarkCorpusGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		corpus, err := malware.NewGenerator(benchSeed).Corpus(1716)
		if err != nil {
			b.Fatal(err)
		}
		if len(corpus) != 1716 {
			b.Fatal("bad corpus size")
		}
	}
}

// BenchmarkExclusivenessQuery measures one identifier lookup against
// the benign index (the paper's per-identifier Google query).
func BenchmarkExclusivenessQuery(b *testing.B) {
	benign, err := malware.BenignCorpus()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, benchSeed)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !ix.Exclusive(winenv.KindMutex, "_AVIRA_2109") {
			b.Fatal("wrong answer")
		}
	}
}

// --- ablation benches (design choices called out in DESIGN.md) ---

// BenchmarkAlignment compares the LCS alignment against the paper's
// literal greedy-anchor Algorithm 1 on realistic pipeline traces.
func BenchmarkAlignment(b *testing.B) {
	sample, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		b.Fatal(err)
	}
	normal, _ := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: benchSeed})
	mutated, _ := emu.Run(sample.Program, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed, Mutations: []emu.Mutation{{
			API: "OpenMutexA", CallerPC: -1, Identifier: "_AVIRA_2109", Mode: emu.ForceSuccess,
		}}})
	b.Run("lcs", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := alignment.AlignTraces(mutated, normal)
			if d.Aligned == 0 {
				b.Fatal("nothing aligned")
			}
		}
	})
	b.Run("greedy-algorithm1", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			d := alignment.AlignGreedy(mutated.Calls, normal.Calls)
			if d.Aligned == 0 {
				b.Fatal("nothing aligned")
			}
		}
	})
}

// BenchmarkAblationStudy runs the full design-choice ablation over a
// reduced corpus (flip detection, alignment algorithm).
func BenchmarkAblationStudy(b *testing.B) {
	s, err := experiment.NewSetup(benchSeed, 30)
	if err != nil {
		b.Fatal(err)
	}
	_, profiles, err := s.RunPhase1()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := s.Ablation(profiles)
		if err != nil {
			b.Fatal(err)
		}
		if rep.CandidatesTested == 0 {
			b.Fatal("no candidates")
		}
	}
}

// BenchmarkEvasionExperiments runs the §VII limitation reproductions.
func BenchmarkEvasionExperiments(b *testing.B) {
	s, err := experiment.NewSetup(benchSeed, 10)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.ControlDepEvasion(); err != nil {
			b.Fatal(err)
		}
	}
}
