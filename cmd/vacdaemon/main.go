// Command vacdaemon demonstrates the resident vaccine daemon (paper §V)
// in two modes. Pack mode installs a vaccine pack on a simulated host,
// replays attack scenarios against the daemon's interception hooks,
// reports interception statistics and hook overhead, and shows the
// periodic slice-replay refresh after a host rename. Agent mode joins a
// fleet: it polls a vacserver for vaccine deltas, installs them through
// the daemon, heartbeats the applied version back, and keeps simulated
// attack probes running against the host until SIGINT/SIGTERM, when it
// drains and prints a final stats line.
//
// Usage:
//
//	autovac -corpus 60 -out pack.json
//	vacdaemon -pack pack.json -attacks 200
//	vacdaemon -server http://127.0.0.1:8377 -interval 2s
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"autovac/internal/deploy"
	"autovac/internal/fleet"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vacdaemon:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vacdaemon", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		packPath = fs.String("pack", "", "vaccine pack (JSON) to serve")
		server   = fs.String("server", "", "vacserver base URL; join its fleet as a host agent")
		interval = fs.Duration("interval", 2*time.Second, "agent poll interval")
		hostname = fs.String("host", "", "host identifier for fleet check-ins (default: computer name)")
		attacks  = fs.Int("attacks", 100, "number of simulated resource probes")
		rename   = fs.String("rename", "RENAMED-HOST-01", "new computer name for the refresh demo")
		seed     = fs.Int64("seed", 42, "deterministic seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server != "" {
		return runAgent(ctx, out, *server, *hostname, *interval, uint64(*seed))
	}
	if *packPath == "" {
		return fmt.Errorf("need -pack or -server")
	}
	return runPack(out, *packPath, *attacks, *rename, uint64(*seed))
}

// runAgent joins a vacserver fleet and polls until the context is
// cancelled, then prints the final stats line. Between syncs it fires
// one probe per installed partial-static pattern, so heartbeats carry
// live interception counts.
func runAgent(ctx context.Context, out io.Writer, server, hostname string, interval time.Duration, seed uint64) error {
	id := winenv.DefaultIdentity()
	if hostname != "" {
		id.ComputerName = hostname
	}
	env := winenv.New(id)
	agent := fleet.NewAgent(fleet.AgentConfig{
		BaseURL: server,
		Host:    hostname,
		Env:     env,
		Seed:    seed,
	})
	fmt.Fprintf(out, "vacdaemon: agent %s polling %s every %v\n", agent.Host(), server, interval)
	probe := 0
	for {
		// Fault isolation per cycle: a hostile pack or probe that
		// panics must not kill the resident daemon — the cycle's
		// failure is logged and the next interval retries.
		err := syncCycle(ctx, out, agent, env, &probe)
		if err != nil {
			if ctx.Err() != nil {
				break
			}
			fmt.Fprintf(out, "sync failed (will retry next interval): %v\n", err)
		}
		t := time.NewTimer(interval)
		select {
		case <-ctx.Done():
			t.Stop()
		case <-t.C:
			continue
		}
		break
	}
	st := agent.Stats()
	inspected, intercepted := agent.Daemon().Stats()
	fmt.Fprintf(out,
		"vacdaemon: final stats: syncs=%d deltas=%d not_modified=%d retries=%d applied=%d checkins=%d inspected=%d intercepted=%d version=%d\n",
		st.Syncs, st.Deltas, st.NotModified, st.Retries, st.Applied, st.Checkins,
		inspected, intercepted, agent.Version())
	return nil
}

// syncCycle runs one sync-and-probe cycle with panic containment: a
// panic anywhere in the cycle comes back as an error.
func syncCycle(ctx context.Context, out io.Writer, agent *fleet.Agent, env *winenv.Env, probe *int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("cycle panic: %v", r)
		}
	}()
	applied, err := agent.SyncOnce(ctx)
	if err != nil {
		return err
	}
	if applied > 0 {
		fmt.Fprintf(out, "applied %d vaccines (version %d, %d installed)\n",
			applied, agent.Version(), agent.Daemon().VaccineCount())
	}
	// Simulated attack traffic: probe every daemon pattern once.
	for _, p := range installedPatterns(agent.Daemon()) {
		*probe++
		env.Do(winenv.Request{Kind: p.kind, Op: winenv.OpCreate,
			Name: probeName(p.pattern, *probe), Principal: "probe"})
	}
	return nil
}

// runPack is the original single-host demo: install a pack, replay
// probes, show the refresh after a rename.
func runPack(out io.Writer, packPath string, attacks int, rename string, seed uint64) error {
	f, err := os.Open(packPath)
	if err != nil {
		return err
	}
	pack, err := vaccine.ReadPack(f)
	f.Close()
	if err != nil {
		return err
	}

	env := winenv.New(winenv.DefaultIdentity())
	d := deploy.NewDaemon(env, seed)
	installStart := time.Now()
	installed := 0
	for _, v := range pack.Vaccines {
		if err := d.Install(v); err != nil {
			fmt.Fprintf(out, "skipping %s: %v\n", v.ID, err)
			continue
		}
		installed++
	}
	fmt.Fprintf(out, "installed %d/%d vaccines in %v\n",
		installed, len(pack.Vaccines), time.Since(installStart).Round(time.Microsecond))

	// Replay attack probes: half target vaccinated patterns, half are
	// unrelated benign-style operations (hook pass-through cost).
	patterns := daemonPatterns(pack.Vaccines)
	start := time.Now()
	for i := 0; i < attacks; i++ {
		var name string
		var kind winenv.ResourceKind
		if len(patterns) > 0 && i%2 == 0 {
			p := patterns[i%len(patterns)]
			kind = p.kind
			name = probeName(p.pattern, i)
		} else {
			kind = winenv.KindMutex
			name = fmt.Sprintf("benign-app-mutex-%d", i)
		}
		env.Do(winenv.Request{Kind: kind, Op: winenv.OpCreate, Name: name, Principal: "probe"})
	}
	elapsed := time.Since(start)
	inspected, intercepted := d.Stats()
	fmt.Fprintf(out, "probes:       %d in %v (%.2fµs/op)\n",
		attacks, elapsed.Round(time.Microsecond),
		float64(elapsed.Microseconds())/float64(max(attacks, 1)))
	fmt.Fprintf(out, "inspected:    %d\n", inspected)
	fmt.Fprintf(out, "intercepted:  %d\n", intercepted)

	// Refresh demo: the host is renamed; algorithm-deterministic
	// vaccines are re-generated from their slices.
	id := env.Identity()
	old := id.ComputerName
	id.ComputerName = rename
	env.SetIdentity(id)
	n, err := d.Refresh()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "refresh after rename %s -> %s: %d vaccines re-generated\n", old, rename, n)
	return nil
}

// daemonPattern pairs a resource kind with an interception pattern.
type daemonPattern struct {
	kind    winenv.ResourceKind
	pattern string
}

// daemonPatterns extracts the partial-static patterns from a pack.
func daemonPatterns(vs []vaccine.Vaccine) []daemonPattern {
	var out []daemonPattern
	for _, v := range vs {
		if v.Pattern != "" {
			out = append(out, daemonPattern{kind: v.Resource, pattern: v.Pattern})
		}
	}
	return out
}

// installedPatterns extracts the patterns installed in a live daemon.
func installedPatterns(d *deploy.Daemon) []daemonPattern {
	return daemonPatterns(d.Installed())
}

// probeName instantiates a wildcard pattern into a concrete probe name.
func probeName(pattern string, i int) string {
	out := make([]byte, 0, len(pattern)+8)
	for j := 0; j < len(pattern); j++ {
		if pattern[j] == '*' {
			out = append(out, fmt.Sprintf("%04x", i*2654435761)...)
		} else {
			out = append(out, pattern[j])
		}
	}
	return string(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
