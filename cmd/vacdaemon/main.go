// Command vacdaemon demonstrates the resident vaccine daemon (paper §V):
// it installs a vaccine pack on a simulated host, replays a set of
// attack scenarios against the daemon's interception hooks, reports the
// interception statistics and hook overhead, and shows the periodic
// slice-replay refresh after a host rename.
//
// Usage:
//
//	autovac -corpus 60 -out pack.json
//	vacdaemon -pack pack.json -attacks 200
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"autovac/internal/deploy"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vacdaemon:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vacdaemon", flag.ContinueOnError)
	var (
		packPath = fs.String("pack", "", "vaccine pack (JSON) to serve")
		attacks  = fs.Int("attacks", 100, "number of simulated resource probes")
		rename   = fs.String("rename", "RENAMED-HOST-01", "new computer name for the refresh demo")
		seed     = fs.Int64("seed", 42, "deterministic seed")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *packPath == "" {
		return fmt.Errorf("need -pack")
	}
	f, err := os.Open(*packPath)
	if err != nil {
		return err
	}
	pack, err := vaccine.ReadPack(f)
	f.Close()
	if err != nil {
		return err
	}

	env := winenv.New(winenv.DefaultIdentity())
	d := deploy.NewDaemon(env, uint64(*seed))
	installStart := time.Now()
	installed := 0
	for _, v := range pack.Vaccines {
		if err := d.Install(v); err != nil {
			fmt.Printf("skipping %s: %v\n", v.ID, err)
			continue
		}
		installed++
	}
	fmt.Printf("installed %d/%d vaccines in %v\n",
		installed, len(pack.Vaccines), time.Since(installStart).Round(time.Microsecond))

	// Replay attack probes: half target vaccinated patterns, half are
	// unrelated benign-style operations (hook pass-through cost).
	patterns := daemonPatterns(pack.Vaccines)
	start := time.Now()
	for i := 0; i < *attacks; i++ {
		var name string
		var kind winenv.ResourceKind
		if len(patterns) > 0 && i%2 == 0 {
			p := patterns[i%len(patterns)]
			kind = p.kind
			name = probeName(p.pattern, i)
		} else {
			kind = winenv.KindMutex
			name = fmt.Sprintf("benign-app-mutex-%d", i)
		}
		env.Do(winenv.Request{Kind: kind, Op: winenv.OpCreate, Name: name, Principal: "probe"})
	}
	elapsed := time.Since(start)
	inspected, intercepted := d.Stats()
	fmt.Printf("probes:       %d in %v (%.2fµs/op)\n",
		*attacks, elapsed.Round(time.Microsecond),
		float64(elapsed.Microseconds())/float64(max(*attacks, 1)))
	fmt.Printf("inspected:    %d\n", inspected)
	fmt.Printf("intercepted:  %d\n", intercepted)

	// Refresh demo: the host is renamed; algorithm-deterministic
	// vaccines are re-generated from their slices.
	id := env.Identity()
	old := id.ComputerName
	id.ComputerName = *rename
	env.SetIdentity(id)
	n, err := d.Refresh()
	if err != nil {
		return err
	}
	fmt.Printf("refresh after rename %s -> %s: %d vaccines re-generated\n", old, *rename, n)
	return nil
}

// daemonPattern pairs a resource kind with an interception pattern.
type daemonPattern struct {
	kind    winenv.ResourceKind
	pattern string
}

// daemonPatterns extracts the partial-static patterns from a pack.
func daemonPatterns(vs []vaccine.Vaccine) []daemonPattern {
	var out []daemonPattern
	for _, v := range vs {
		if v.Pattern != "" {
			out = append(out, daemonPattern{kind: v.Resource, pattern: v.Pattern})
		}
	}
	return out
}

// probeName instantiates a wildcard pattern into a concrete probe name.
func probeName(pattern string, i int) string {
	out := make([]byte, 0, len(pattern)+8)
	for j := 0; j < len(pattern); j++ {
		if pattern[j] == '*' {
			out = append(out, fmt.Sprintf("%04x", i*2654435761)...)
		} else {
			out = append(out, pattern[j])
		}
	}
	return string(out)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
