package main

import (
	"bytes"
	"context"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"autovac/internal/core"
	"autovac/internal/fleet"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// mixedPack writes a pack containing static, algorithm-deterministic,
// and partial-static vaccines.
func mixedPack(t *testing.T) string {
	t.Helper()
	pipeline := core.New(core.Config{Seed: 42})
	var vs []vaccine.Vaccine
	for _, spec := range []*malware.Spec{
		{Name: "dmn-static", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "DMN.STATIC.1"},
			{Kind: malware.BehNetworkCC, ID: "a.example", Aux: "445", Count: 1},
		}},
		{Name: "dmn-algo", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehAlgoMutex, ID: `Global\%s-44`},
			{Kind: malware.BehNetworkCC, ID: "b.example", Aux: "445", Count: 1},
		}},
		{Name: "dmn-partial", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "DMNPART"},
			{Kind: malware.BehNetworkCC, ID: "c.example", Aux: "445", Count: 1},
		}},
	} {
		sample := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
		res, err := pipeline.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, res.Vaccines...)
	}
	if len(vs) < 3 {
		t.Fatalf("only %d vaccines generated", len(vs))
	}
	path := filepath.Join(t.TempDir(), "mixed.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&vaccine.Pack{Generator: "test", Vaccines: vs}).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDaemonServesPack(t *testing.T) {
	pack := mixedPack(t)
	if err := run(context.Background(), []string{"-pack", pack, "-attacks", "50", "-seed", "42"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonErrors(t *testing.T) {
	ctx := context.Background()
	if err := run(ctx, []string{}, io.Discard); err == nil {
		t.Error("missing -pack accepted")
	}
	if err := run(ctx, []string{"-pack", "/no/such.json"}, io.Discard); err == nil {
		t.Error("missing file accepted")
	}
}

// TestAgentModeSyncsAndShutsDown points vacdaemon at a fleet server,
// lets it sync and probe, then cancels the context and checks the
// graceful final stats line.
func TestAgentModeSyncsAndShutsDown(t *testing.T) {
	packPath := mixedPack(t)
	f, err := os.Open(packPath)
	if err != nil {
		t.Fatal(err)
	}
	pack, err := vaccine.ReadPack(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	reg := fleet.NewRegistry(0)
	if _, _, err := reg.Publish(pack.Vaccines...); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(fleet.NewServer(reg).Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var buf bytes.Buffer
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-server", ts.URL, "-host", "AGENT-01", "-interval", "5ms"}, &buf)
	}()
	// Give the agent a few poll intervals, then stop it.
	deadline := time.After(5 * time.Second)
	for reg.Fleet(time.Minute, time.Now()).ActiveHosts == 0 {
		select {
		case <-deadline:
			t.Fatal("agent never checked in")
		case err := <-done:
			t.Fatalf("agent exited early: %v", err)
		case <-time.After(5 * time.Millisecond):
		}
	}
	time.Sleep(30 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("agent mode returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("agent did not shut down")
	}
	out := buf.String()
	for _, want := range []string{"applied", "final stats", "version="} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	st := reg.Fleet(time.Minute, time.Now())
	if st.ActiveHosts != 1 || st.Converged != 1 {
		t.Fatalf("server fleet view %+v", st)
	}
	// The probe loop exercised the daemon's interception path.
	if st.Inspected == 0 {
		t.Fatal("no probes inspected")
	}
}

func TestProbeName(t *testing.T) {
	got := probeName("WORM-*", 3)
	if len(got) <= len("WORM-") || got[:5] != "WORM-" {
		t.Errorf("probeName = %q", got)
	}
	if probeName("exact", 1) != "exact" {
		t.Error("literal pattern changed")
	}
}
