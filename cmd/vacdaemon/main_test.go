package main

import (
	"os"
	"path/filepath"
	"testing"

	"autovac/internal/core"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// mixedPack writes a pack containing static, algorithm-deterministic,
// and partial-static vaccines.
func mixedPack(t *testing.T) string {
	t.Helper()
	pipeline := core.New(core.Config{Seed: 42})
	var vs []vaccine.Vaccine
	for _, spec := range []*malware.Spec{
		{Name: "dmn-static", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "DMN.STATIC.1"},
			{Kind: malware.BehNetworkCC, ID: "a.example", Aux: "445", Count: 1},
		}},
		{Name: "dmn-algo", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehAlgoMutex, ID: `Global\%s-44`},
			{Kind: malware.BehNetworkCC, ID: "b.example", Aux: "445", Count: 1},
		}},
		{Name: "dmn-partial", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "DMNPART"},
			{Kind: malware.BehNetworkCC, ID: "c.example", Aux: "445", Count: 1},
		}},
	} {
		sample := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
		res, err := pipeline.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, res.Vaccines...)
	}
	if len(vs) < 3 {
		t.Fatalf("only %d vaccines generated", len(vs))
	}
	path := filepath.Join(t.TempDir(), "mixed.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := (&vaccine.Pack{Generator: "test", Vaccines: vs}).WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDaemonServesPack(t *testing.T) {
	pack := mixedPack(t)
	if err := run([]string{"-pack", pack, "-attacks", "50", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
}

func TestDaemonErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -pack accepted")
	}
	if err := run([]string{"-pack", "/no/such.json"}); err == nil {
		t.Error("missing file accepted")
	}
}

func TestProbeName(t *testing.T) {
	got := probeName("WORM-*", 3)
	if len(got) <= len("WORM-") || got[:5] != "WORM-" {
		t.Errorf("probeName = %q", got)
	}
	if probeName("exact", 1) != "exact" {
		t.Error("literal pattern changed")
	}
}
