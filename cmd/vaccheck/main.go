// Command vaccheck audits vaccine packs offline: it runs record
// validation, the static slice verifier (internal/static), and the
// domain sinkhole rules over every vaccine in one or more pack files,
// reporting each violation with its rule, and exits non-zero if any
// vaccine fails. It is the same gate fleet publication applies, usable
// before a pack ever reaches a registry.
//
// Usage:
//
//	vaccheck pack.json [more-packs.json ...]
//	vaccheck -q pack.json        # summary line only
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/exclusive"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "vaccheck:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("vaccheck", flag.ContinueOnError)
	fs.SetOutput(out)
	quiet := fs.Bool("q", false, "suppress per-vaccine output, print the summary only")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("need at least one pack file (see -h)")
	}

	total, bad := 0, 0
	for _, path := range fs.Args() {
		n, analysis, failures, err := checkPack(path)
		if err != nil {
			return err
		}
		total += n
		bad += len(failures)
		if !*quiet {
			for _, f := range failures {
				fmt.Fprintf(out, "FAIL %s: %v\n", path, f)
			}
			if analysis != nil {
				fmt.Fprintf(out, "%s: analysed %d sample(s)", path, analysis.Analyzed)
				if analysis.TriageSkipped > 0 {
					fmt.Fprintf(out, ", %d triage-skipped (Phase-0)", analysis.TriageSkipped)
				}
				if analysis.StaticallyFiltered > 0 {
					fmt.Fprintf(out, ", %d statically filtered", analysis.StaticallyFiltered)
				}
				fmt.Fprintln(out)
			}
		}
	}
	fmt.Fprintf(out, "%d vaccine(s) checked, %d failure(s)\n", total, bad)
	if bad > 0 {
		return fmt.Errorf("%d vaccine(s) failed verification", bad)
	}
	return nil
}

// checkPack decodes one pack file without the read-time validation
// short-circuit (a single bad vaccine must not hide the rest) and
// verifies every vaccine. The pack's embedded analysis stats (if any)
// come back so provenance — including Phase-0 triage skips — can be
// reported alongside the verdict.
func checkPack(path string) (int, *vaccine.AnalysisStats, []error, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, nil, nil, err
	}
	defer f.Close()
	var p vaccine.Pack
	if err := json.NewDecoder(f).Decode(&p); err != nil {
		return 0, nil, nil, fmt.Errorf("%s: decoding pack: %w", path, err)
	}
	var failures []error
	for i := range p.Vaccines {
		v := &p.Vaccines[i]
		if err := v.Validate(); err != nil {
			failures = append(failures, err)
			continue
		}
		if err := v.VerifyReplayable(); err != nil {
			failures = append(failures, err)
			continue
		}
		if err := auditDomain(v); err != nil {
			failures = append(failures, err)
		}
	}
	return len(p.Vaccines), p.Analysis, failures, nil
}

// auditDomain applies the sinkhole rules to domain vaccines: the
// identifier must look like a hostname, and it must never cover benign
// traffic — registering or blackholing update.microsoft.com would
// break every host in the fleet.
func auditDomain(v *vaccine.Vaccine) error {
	if v.Resource != winenv.KindDomain {
		return nil
	}
	id := v.Identifier
	if v.Class == determinism.PartialStatic {
		id = v.Pattern
	}
	// A pattern's wildcard stands for some concrete label; substitute a
	// placeholder so suffix matching still sees the zone it covers.
	probe := strings.ReplaceAll(id, "*", "x")
	if exclusive.IsBenignDomain(probe) {
		return fmt.Errorf("vaccine %s: sinkhole rule: domain %q covers benign traffic", v.ID, id)
	}
	host := probe
	if i := strings.Index(host, "://"); i >= 0 {
		host = host[i+3:]
	}
	if i := strings.IndexAny(host, ":/"); i >= 0 {
		host = host[:i]
	}
	if !strings.Contains(host, ".") {
		return fmt.Errorf("vaccine %s: sinkhole rule: %q is not a qualified hostname", v.ID, id)
	}
	return nil
}
