package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// realSliceVaccine extracts a genuine algorithm-deterministic slice
// from a synthetic sample and wraps it in a valid vaccine, the same
// shape Phase-II emits.
func realSliceVaccine(t *testing.T) vaccine.Vaccine {
	t.Helper()
	spec := &malware.Spec{Name: "vaccheck-algo", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-9`}}}
	prog := malware.MustEmit(spec)
	tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: 7, RecordSteps: true, Registry: winapi.Standard()})
	if err != nil {
		t.Fatal(err)
	}
	calls := tr.CallsTo("CreateMutexA")
	if len(calls) == 0 {
		t.Fatal("no CreateMutexA call in the sample run")
	}
	sl, err := determinism.Extract(prog, tr, calls[0].Seq)
	if err != nil {
		t.Fatal(err)
	}
	return vaccine.Vaccine{
		ID: "vaccheck/mutex/0", Sample: "vaccheck-algo",
		Resource: winenv.KindMutex, Identifier: calls[0].Identifier,
		Class: determinism.AlgorithmDeterministic, Slice: sl,
		Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.VaccineDaemon,
	}
}

func writePackFile(t *testing.T, path string, p *vaccine.Pack) {
	t.Helper()
	// Marshal directly: the corrupted pack must reach disk unvalidated,
	// exactly as a tampered or buggy producer would write it.
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestVaccheckAcceptsGenuinePack(t *testing.T) {
	v := realSliceVaccine(t)
	path := filepath.Join(t.TempDir(), "good.json")
	writePackFile(t, path, &vaccine.Pack{Generator: "test", Vaccines: []vaccine.Vaccine{v}})
	var out bytes.Buffer
	if err := run([]string{path}, &out); err != nil {
		t.Fatalf("genuine pack rejected: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "1 vaccine(s) checked, 0 failure(s)") {
		t.Errorf("summary missing: %q", out.String())
	}
}

func TestVaccheckRejectsCorruptedSlice(t *testing.T) {
	corruptions := []struct {
		name    string
		corrupt func(v *vaccine.Vaccine)
	}{
		{
			name: "backward jump spliced into the slice",
			corrupt: func(v *vaccine.Vaccine) {
				p := v.Slice.Program
				p.Instrs[0].Label = "top"
				p.Instrs = append(p.Instrs[:len(p.Instrs)-1],
					isa.Instr{Op: isa.JMP, Target: "top"},
					isa.Instr{Op: isa.HALT})
			},
		},
		{
			name: "result address outside mapped memory",
			corrupt: func(v *vaccine.Vaccine) {
				v.Slice.ResultAddr = 0xDEAD0000
			},
		},
		{
			name: "resource API spliced into the slice",
			corrupt: func(v *vaccine.Vaccine) {
				p := v.Slice.Program
				p.Instrs = append(p.Instrs[:len(p.Instrs)-1],
					isa.Instr{Op: isa.CALLAPI, API: "CreateMutexA", NArgs: 1},
					isa.Instr{Op: isa.HALT})
			},
		},
	}
	for _, tc := range corruptions {
		t.Run(tc.name, func(t *testing.T) {
			v := realSliceVaccine(t)
			tc.corrupt(&v)
			path := filepath.Join(t.TempDir(), "bad.json")
			writePackFile(t, path, &vaccine.Pack{Generator: "test", Vaccines: []vaccine.Vaccine{v}})
			var out bytes.Buffer
			err := run([]string{path}, &out)
			if err == nil {
				t.Fatalf("corrupted pack accepted:\n%s", out.String())
			}
			if !strings.Contains(out.String(), "FAIL") {
				t.Errorf("no FAIL line in output: %q", out.String())
			}
		})
	}
}

// TestVaccheckReportsAllFailures checks one bad vaccine does not mask
// the others: both failures of a two-bad-one-good pack are reported.
func TestVaccheckReportsAllFailures(t *testing.T) {
	good := realSliceVaccine(t)
	bad1 := realSliceVaccine(t)
	bad1.ID = "vaccheck/mutex/1"
	bad1.Slice.ResultAddr = 0xDEAD0000
	bad2 := realSliceVaccine(t)
	bad2.ID = "vaccheck/mutex/2"
	bad2.Slice = nil // record-invalid: algorithm-deterministic without slice
	path := filepath.Join(t.TempDir(), "mixed.json")
	writePackFile(t, path, &vaccine.Pack{Generator: "test",
		Vaccines: []vaccine.Vaccine{good, bad1, bad2}})
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Fatal("mixed pack accepted")
	}
	if !strings.Contains(out.String(), "3 vaccine(s) checked, 2 failure(s)") {
		t.Errorf("summary wrong: %q", out.String())
	}
	if got := strings.Count(out.String(), "FAIL"); got != 2 {
		t.Errorf("want 2 FAIL lines, got %d:\n%s", got, out.String())
	}
}

// domainTestVaccine is a well-formed static sinkhole vaccine.
func domainTestVaccine(id, identifier string) vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: id, Sample: "netks-0001",
		Resource: winenv.KindDomain, Identifier: identifier,
		Class: determinism.Static, Op: "open", API: "gethostbyname",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection,
	}
}

func TestVaccheckDomainSinkholeRules(t *testing.T) {
	cases := []struct {
		name string
		v    vaccine.Vaccine
		ok   bool
	}{
		{"killswitch domain", domainTestVaccine("d/0", "iuqerfsod.example"), true},
		{"host:port target", domainTestVaccine("d/1", "cc.botnet.example:8080"), true},
		{"benign domain", domainTestVaccine("d/2", "update.microsoft.com"), false},
		{"benign sub-domain", domainTestVaccine("d/3", "dl.download.windowsupdate.com"), false},
		{"unqualified name", domainTestVaccine("d/4", "localhost"), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "pack.json")
			writePackFile(t, path, &vaccine.Pack{Generator: "test",
				Vaccines: []vaccine.Vaccine{tc.v}})
			var out bytes.Buffer
			err := run([]string{path}, &out)
			if tc.ok && err != nil {
				t.Fatalf("good domain vaccine rejected: %v\n%s", err, out.String())
			}
			if !tc.ok {
				if err == nil {
					t.Fatalf("bad domain vaccine accepted:\n%s", out.String())
				}
				if !strings.Contains(out.String(), "sinkhole rule") {
					t.Errorf("failure not attributed to the sinkhole rule: %q", out.String())
				}
			}
		})
	}
}

func TestVaccheckDomainPatternRule(t *testing.T) {
	v := domainTestVaccine("d/5", "")
	v.Class = determinism.PartialStatic
	v.Pattern = "*.windowsupdate.microsoft.com"
	v.Delivery = vaccine.VaccineDaemon
	path := filepath.Join(t.TempDir(), "pack.json")
	writePackFile(t, path, &vaccine.Pack{Generator: "test", Vaccines: []vaccine.Vaccine{v}})
	var out bytes.Buffer
	if err := run([]string{path}, &out); err == nil {
		t.Fatalf("benign-zone pattern accepted:\n%s", out.String())
	}
}

func TestVaccheckQuietSuppressesFailLines(t *testing.T) {
	v := realSliceVaccine(t)
	v.Slice.ResultAddr = 0xDEAD0000
	path := filepath.Join(t.TempDir(), "bad.json")
	writePackFile(t, path, &vaccine.Pack{Generator: "test", Vaccines: []vaccine.Vaccine{v}})
	var out bytes.Buffer
	if err := run([]string{"-q", path}, &out); err == nil {
		t.Fatal("corrupted pack accepted")
	}
	if strings.Contains(out.String(), "FAIL") {
		t.Errorf("-q still printed FAIL lines: %q", out.String())
	}
}
