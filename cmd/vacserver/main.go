// Command vacserver is the fleet vaccine distribution server: it loads
// vaccine packs produced by cmd/autovac into the sharded registry and
// serves the HTTP sync protocol host agents poll (see internal/fleet).
//
// Usage:
//
//	autovac -corpus 60 -out pack.json
//	vacserver -addr 127.0.0.1:8377 -pack pack.json
//	vacserver -addr 127.0.0.1:8377 -state-dir /var/lib/vacserver
//	vacserver -addr 127.0.0.1:8378 -upstream http://127.0.0.1:8377
//	vacdaemon -server http://127.0.0.1:8377
//
// Endpoints: GET /v1/packs?since=<version> (delta sync, ETag/304;
// &wait=<dur> long-polls until the next publish), POST /v1/checkin
// (host heartbeats), GET /v1/metrics (counters). With -state-dir the
// registry is durable: publishes are fsynced to a write-ahead log,
// snapshots compact it, and a restart replays the state so agents
// resume from their cursors. SIGINT/SIGTERM drain in-flight requests
// and print a final stats line before exit.
//
// With -upstream the server runs as an edge relay instead of an
// origin: it long-polls the upstream vacserver for binary deltas,
// mirrors the origin's version line exactly, and serves the identical
// /v1/packs surface downstream — agents point at the relay and cannot
// tell the difference. Relay mode is incompatible with -pack and
// -state-dir (the mirror is rebuilt from upstream on start).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autovac/internal/fleet"
	"autovac/internal/vaccine"
)

// shutdownGrace bounds how long shutdown waits for in-flight requests.
const shutdownGrace = 5 * time.Second

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "vacserver:", err)
		os.Exit(1)
	}
}

// run starts the server and blocks until the context is cancelled,
// then drains and prints the final stats line. onReady, when non-nil,
// receives the bound address once the listener is up (used by tests
// to learn the port behind ":0").
func run(ctx context.Context, args []string, out io.Writer, onReady func(addr string)) error {
	fs := newFlagSet(out)
	var (
		addr      = fs.String("addr", "127.0.0.1:8377", "listen address")
		packs     = fs.String("pack", "", "comma-separated vaccine pack files (JSON) to publish")
		shards    = fs.Int("shards", fleet.DefaultShards, "registry shard count")
		generator = fs.String("generator", "autovac", "generator label echoed in sync responses")
		stateDir  = fs.String("state-dir", "", "durable state directory (WAL + snapshots); empty = in-memory only")
		upstream  = fs.String("upstream", "", "run as an edge relay of this upstream vacserver URL")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *upstream != "" {
		if *packs != "" || *stateDir != "" {
			return errors.New("-upstream (relay mode) is incompatible with -pack and -state-dir")
		}
		return runRelay(ctx, *addr, *upstream, *shards, out, onReady)
	}

	var reg *fleet.Registry
	if *stateDir != "" {
		r, err := fleet.OpenRegistry(*stateDir, *shards)
		if err != nil {
			return fmt.Errorf("opening state dir %s: %w", *stateDir, err)
		}
		reg = r
		defer reg.Close()
		rec := reg.Recovery()
		fmt.Fprintf(out, "vacserver: recovered state from %s: snapshot v%d + %d WAL records over %d segments (version %d, %d truncated bytes)\n",
			*stateDir, rec.SnapshotVersion, rec.Records, rec.Segments, reg.Latest(), rec.TruncatedBytes)
	} else {
		reg = fleet.NewRegistry(*shards)
	}
	reg.SetGenerator(*generator)
	for _, path := range splitList(*packs) {
		n, err := publishPack(reg, path)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "published %s: %d vaccines (version %d)\n", path, n, reg.Latest())
	}
	if st, ok := reg.Analysis(); ok {
		fmt.Fprintf(out, "pack analysis health: %d analysed, %d failed (%d panicked), %d skipped\n",
			st.Analyzed, st.Failed, st.Panicked, st.Skipped)
	}

	srv := fleet.NewServer(reg)
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vacserver: listening on http://%s serving %d vaccines (version %d)\n",
		ln.Addr(), reg.Count(), reg.Latest())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	hs := &http.Server{Handler: srv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		return err
	case <-ctx.Done():
	}
	// Graceful drain: stop accepting, let in-flight requests finish.
	sctx, cancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	snap := srv.MetricsSnapshot()
	fmt.Fprintf(out,
		"vacserver: final stats: requests=%d deltas=%d not_modified=%d checkins=%d errors=%d bytes=%d active_hosts=%d converged=%d p50=%dµs p99=%dµs\n",
		snap.Requests, snap.DeltasServed, snap.NotModified, snap.Checkins,
		snap.Errors, snap.BytesServed, snap.ActiveHosts, snap.Converged,
		snap.P50Micros, snap.P99Micros)
	return nil
}

// runRelay serves the relay mode: mirror the upstream, serve the sync
// protocol downstream, drain on cancellation.
func runRelay(ctx context.Context, addr, upstream string, shards int, out io.Writer, onReady func(addr string)) error {
	rl, err := fleet.NewRelay(fleet.RelayConfig{Upstream: upstream, Shards: shards})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "vacserver: relaying %s on http://%s\n", upstream, ln.Addr())
	if onReady != nil {
		onReady(ln.Addr().String())
	}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	syncDone := make(chan struct{})
	go func() { defer close(syncDone); rl.Run(runCtx) }()

	hs := &http.Server{Handler: rl.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- hs.Serve(ln) }()

	select {
	case err := <-serveErr:
		cancel()
		<-syncDone
		return err
	case <-ctx.Done():
	}
	cancel()
	<-syncDone
	sctx, scancel := context.WithTimeout(context.Background(), shutdownGrace)
	defer scancel()
	if err := hs.Shutdown(sctx); err != nil {
		return err
	}
	if err := <-serveErr; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	st := rl.Stats()
	snap := rl.Server().MetricsSnapshot()
	fmt.Fprintf(out,
		"vacserver: relay final stats: mirrored_version=%d upstream_syncs=%d upstream_deltas=%d upstream_errors=%d resyncs=%d served_requests=%d served_deltas=%d cache_hits=%d\n",
		rl.Version(), st.Syncs, st.Deltas, st.Errors, st.Resyncs,
		snap.Requests, snap.DeltasServed, snap.EncodeCacheHits)
	return nil
}

// newFlagSet builds the flag set with output wired to out.
func newFlagSet(out io.Writer) *flag.FlagSet {
	fs := flag.NewFlagSet("vacserver", flag.ContinueOnError)
	fs.SetOutput(out)
	return fs
}

// publishPack loads one pack file into the registry, recording the
// pack's corpus-analysis statistics (when present) for /v1/metrics.
func publishPack(reg *fleet.Registry, path string) (int, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	pack, err := vaccine.ReadPack(f)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	_, stored, err := reg.Publish(pack.Vaccines...)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", path, err)
	}
	if pack.Analysis != nil {
		reg.RecordAnalysis(*pack.Analysis)
	}
	return stored, nil
}

// splitList splits a comma-separated flag value, dropping empties.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
