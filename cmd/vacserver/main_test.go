package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/fleet"
	"autovac/internal/impact"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// writePack writes a small static-vaccine pack and returns its path.
func writePack(t *testing.T, n int) string {
	t.Helper()
	p := vaccine.Pack{Generator: "test"}
	for i := 0; i < n; i++ {
		p.Vaccines = append(p.Vaccines, vaccine.Vaccine{
			ID: fmt.Sprintf("srv/mutex/%d", i), Sample: "srv",
			Resource: winenv.KindMutex, Identifier: fmt.Sprintf("SRV-MARKER-%d", i),
			Class: determinism.Static, Op: "create", API: "CreateMutexA",
			Effect: impact.Full, Polarity: vaccine.SimulatePresence,
			Delivery: vaccine.DirectInjection,
		})
	}
	path := filepath.Join(t.TempDir(), "pack.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := p.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

// lockedBuffer keeps run's writes race-free against test reads.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeSyncShutdown boots the server on an ephemeral port, syncs
// against it like an agent would, then cancels the context and checks
// the graceful-shutdown stats line.
func TestServeSyncShutdown(t *testing.T) {
	pack := writePack(t, 5)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	out := &lockedBuffer{}
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, []string{"-addr", "127.0.0.1:0", "-pack", pack}, out,
			func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	base := "http://" + addr

	resp, err := http.Get(base + fleet.PathPacks + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var delta fleet.DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&delta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(delta.Vaccines) != 5 || delta.Version != 5 {
		t.Fatalf("delta %+v", delta)
	}

	resp, err = http.Post(base+fleet.PathCheckin, "application/json",
		strings.NewReader(`{"Host":"T1","Version":5,"Installed":5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()

	resp, err = http.Get(base + fleet.PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	var snap fleet.MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if snap.Vaccines != 5 || snap.Checkins != 1 || snap.ActiveHosts != 1 {
		t.Fatalf("metrics %+v", snap)
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not shut down")
	}
	got := out.String()
	for _, want := range []string{"listening on", "final stats", "checkins=1", "deltas=1"} {
		if !strings.Contains(got, want) {
			t.Fatalf("output missing %q:\n%s", want, got)
		}
	}
}

// bootServer runs the server with args until ready, returning its base
// URL and a shutdown func that waits for the drain to finish.
func bootServer(t *testing.T, out *lockedBuffer, args ...string) (string, func()) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan string, 1)
	done := make(chan error, 1)
	go func() {
		done <- run(ctx, args, out, func(addr string) { ready <- addr })
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		cancel()
		t.Fatalf("server exited early: %v", err)
	case <-time.After(5 * time.Second):
		cancel()
		t.Fatal("server never became ready")
	}
	return "http://" + addr, func() {
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("run returned %v", err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("server did not shut down")
		}
	}
}

// TestStateDirSurvivesRestart boots the server with -state-dir and a
// pack, shuts it down, and boots it again WITHOUT the pack: the WAL
// replay must restore the same content at the same version, and a
// client whose cursor matches must get a 304 — not a resync.
func TestStateDirSurvivesRestart(t *testing.T) {
	pack := writePack(t, 5)
	stateDir := filepath.Join(t.TempDir(), "state")

	out1 := &lockedBuffer{}
	base, shutdown := bootServer(t, out1, "-addr", "127.0.0.1:0", "-pack", pack, "-state-dir", stateDir)
	resp, err := http.Get(base + fleet.PathPacks + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var first fleet.DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&first); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	shutdown()

	// Reboot from the state dir alone.
	out2 := &lockedBuffer{}
	base, shutdown = bootServer(t, out2, "-addr", "127.0.0.1:0", "-state-dir", stateDir)
	defer shutdown()
	if !strings.Contains(out2.String(), "recovered state") {
		t.Fatalf("no recovery line in output:\n%s", out2.String())
	}
	resp, err = http.Get(base + fleet.PathPacks + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	var second fleet.DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&second); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if second.Version != first.Version || second.ETag != first.ETag {
		t.Fatalf("reboot state: version %d etag %s, want %d / %s",
			second.Version, second.ETag, first.Version, first.ETag)
	}
	// An agent current as of the previous incarnation stays current.
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s%s?since=%d", base, fleet.PathPacks, first.Version), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("up-to-date agent after reboot got %d, want 304", resp.StatusCode)
	}
}

// TestRelayModeServesUpstream chains a relay vacserver behind an
// origin vacserver and checks the downstream surface is the origin's:
// same delta content, working 304s, and a relay final-stats line.
func TestRelayModeServesUpstream(t *testing.T) {
	pack := writePack(t, 5)
	originOut := &lockedBuffer{}
	originBase, originShutdown := bootServer(t, originOut,
		"-addr", "127.0.0.1:0", "-pack", pack)
	defer originShutdown()

	relayOut := &lockedBuffer{}
	relayBase, relayShutdown := bootServer(t, relayOut,
		"-addr", "127.0.0.1:0", "-upstream", originBase)

	// The relay mirrors asynchronously; poll until its delta matches
	// the origin's.
	var originDelta, relayDelta fleet.DeltaResponse
	resp, err := http.Get(originBase + fleet.PathPacks + "?since=0")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(resp.Body).Decode(&originDelta); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(relayBase + fleet.PathPacks + "?since=0")
		if err != nil {
			t.Fatal(err)
		}
		err = json.NewDecoder(resp.Body).Decode(&relayDelta)
		resp.Body.Close()
		if err == nil && relayDelta.ETag == originDelta.ETag && relayDelta.Version == originDelta.Version {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("relay never mirrored origin: relay %+v vs origin etag=%s v=%d",
				relayDelta, originDelta.ETag, originDelta.Version)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(relayDelta.Vaccines) != 5 {
		t.Fatalf("relay served %d vaccines, want 5", len(relayDelta.Vaccines))
	}

	// A converged client gets the 304 fast path off the relay.
	req, _ := http.NewRequest(http.MethodGet,
		fmt.Sprintf("%s%s?since=%d", relayBase, fleet.PathPacks, relayDelta.Version), nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("converged client got %d off the relay, want 304", resp.StatusCode)
	}

	relayShutdown()
	got := relayOut.String()
	for _, want := range []string{"relaying " + originBase, "relay final stats", "mirrored_version=5"} {
		if !strings.Contains(got, want) {
			t.Fatalf("relay output missing %q:\n%s", want, got)
		}
	}
}

func TestRelayModeRejectsOriginFlags(t *testing.T) {
	for _, args := range [][]string{
		{"-upstream", "http://127.0.0.1:1", "-pack", "x.json"},
		{"-upstream", "http://127.0.0.1:1", "-state-dir", "/tmp/x"},
	} {
		err := run(context.Background(), args, &bytes.Buffer{}, nil)
		if err == nil || !strings.Contains(err.Error(), "incompatible") {
			t.Fatalf("args %v: err %v, want incompatibility error", args, err)
		}
	}
}

func TestRunRejectsMissingPack(t *testing.T) {
	err := run(context.Background(), []string{"-pack", "/nonexistent/pack.json"}, &bytes.Buffer{}, nil)
	if err == nil {
		t.Fatal("missing pack file accepted")
	}
}

func TestSplitList(t *testing.T) {
	got := splitList(" a.json , ,b.json,")
	if len(got) != 2 || got[0] != "a.json" || got[1] != "b.json" {
		t.Fatalf("splitList %v", got)
	}
	if splitList("") != nil {
		t.Fatal("empty list should be nil")
	}
}
