package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/experiment"
	"autovac/internal/fleet"
	"autovac/internal/impact"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// The -controlplane mode measures the distribution layer the way the
// -bench mode measures the emulator: a micro section (the delta codec,
// JSON vs binary, head to head on realistic pack sizes) and a macro
// section (the fleet-scale convergence study, optionally through a
// relay tier), written to BENCH_fleet.json so the committed numbers are
// machine-readable. The JSON codec is the baseline for every binary
// row — a shrink/speedup claim is attached to measurements, not
// adjectives.

// fleetCodecRow is one codec measurement in BENCH_fleet.json.
type fleetCodecRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BodyBytes   int     `json:"body_bytes,omitempty"`

	BaselineNsPerOp   float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineBodyBytes int     `json:"baseline_body_bytes,omitempty"`
	Speedup           float64 `json:"speedup,omitempty"`
	Shrink            float64 `json:"shrink,omitempty"`
}

// fleetStudyRow is one control-plane study row in BENCH_fleet.json.
type fleetStudyRow struct {
	Mode           string  `json:"mode"`
	ConvergeMs     float64 `json:"converge_ms"`
	SyncP50Ms      float64 `json:"sync_p50_ms"`
	SyncP99Ms      float64 `json:"sync_p99_ms"`
	Requests       uint64  `json:"requests"`
	OriginRequests uint64  `json:"origin_requests"`
	EdgeRequests   uint64  `json:"edge_requests,omitempty"`
	BytesOnWire    uint64  `json:"bytes_on_wire"`
	Deltas         uint64  `json:"deltas"`
	DecodeErrors   uint64  `json:"decode_errors"`
}

// fleetReport is the machine-readable BENCH_fleet.json document.
type fleetReport struct {
	GOOS            string          `json:"goos"`
	GOARCH          string          `json:"goarch"`
	Go              string          `json:"go"`
	Seed            int64           `json:"seed"`
	Hosts           int             `json:"hosts"`
	Waves           int             `json:"waves"`
	VaccinesPerWave int             `json:"vaccines_per_wave"`
	Relays          int             `json:"relays"`
	Baseline        string          `json:"baseline"`
	Codec           []fleetCodecRow `json:"codec"`
	Study           []fleetStudyRow `json:"study"`
}

// fleetBenchVaccines builds n distinct static vaccines of the same
// shape the control-plane study publishes.
func fleetBenchVaccines(n int) []vaccine.Vaccine {
	vs := make([]vaccine.Vaccine, n)
	for i := range vs {
		vs[i] = vaccine.Vaccine{
			ID: fmt.Sprintf("bench/mutex/%d", i), Sample: "bench",
			Resource: winenv.KindMutex, Identifier: fmt.Sprintf("FLEET-BENCH-MARKER-%04d", i),
			Class: determinism.Static, Op: "create", API: "CreateMutexA",
			Effect: impact.Full, Polarity: vaccine.SimulatePresence,
			Delivery: vaccine.DirectInjection,
		}
	}
	return vs
}

// measureCodec benchmarks both delta encodings over a pack of size n
// and appends four rows (encode/decode x json/binary), wiring the JSON
// measurements in as the binary rows' baselines.
func measureCodec(rep *fleetReport, n int) error {
	reg := fleet.NewRegistry(0)
	reg.SetGenerator("benchreport")
	if _, _, err := reg.Publish(fleetBenchVaccines(n)...); err != nil {
		return err
	}
	d := reg.Delta(0)

	// The JSON body in the exact form the server writes (json.Encoder,
	// trailing newline) so the byte comparison matches the wire.
	var jsonBody bytes.Buffer
	if err := json.NewEncoder(&jsonBody).Encode(d); err != nil {
		return err
	}
	binBody, err := fleet.EncodeDeltaBinary(d)
	if err != nil {
		return err
	}

	row := func(name string, body int, fn func(b *testing.B)) fleetCodecRow {
		r := testing.Benchmark(fn)
		out := fleetCodecRow{
			Name: fmt.Sprintf("%s/%dvaccines", name, n), N: r.N,
			NsPerOp: float64(r.NsPerOp()), AllocsPerOp: r.AllocsPerOp(), BodyBytes: body,
		}
		rep.Codec = append(rep.Codec, out)
		return out
	}

	encJSON := row("DeltaEncode/json", jsonBody.Len(), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var buf bytes.Buffer
			if err := json.NewEncoder(&buf).Encode(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("DeltaEncode/binary", len(binBody), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fleet.EncodeDeltaBinary(d); err != nil {
				b.Fatal(err)
			}
		}
	})
	decJSON := row("DeltaDecode/json", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out fleet.DeltaResponse
			if err := json.Unmarshal(jsonBody.Bytes(), &out); err != nil {
				b.Fatal(err)
			}
		}
	})
	row("DeltaDecode/binary", 0, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := fleet.DecodeDeltaBinary(binBody); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Baseline the binary rows on the JSON ones just measured.
	enc := &rep.Codec[len(rep.Codec)-3]
	enc.BaselineNsPerOp, enc.BaselineBodyBytes = encJSON.NsPerOp, encJSON.BodyBytes
	if enc.NsPerOp > 0 {
		enc.Speedup = encJSON.NsPerOp / enc.NsPerOp
	}
	if enc.BodyBytes > 0 {
		enc.Shrink = float64(encJSON.BodyBytes) / float64(enc.BodyBytes)
	}
	dec := &rep.Codec[len(rep.Codec)-1]
	dec.BaselineNsPerOp = decJSON.NsPerOp
	if dec.NsPerOp > 0 {
		dec.Speedup = decJSON.NsPerOp / dec.NsPerOp
	}
	return nil
}

// loadFleetBaseline reads a previously committed BENCH_fleet.json, or
// returns nil when none exists (first run).
func loadFleetBaseline(path string) *fleetReport {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var rep fleetReport
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil
	}
	return &rep
}

// runFleetCodecBench is the -bench mode's fleet section: re-measure
// the delta codec and report against the committed BENCH_fleet.json
// baselines, the way the emulator rows report against the seed tree.
func runFleetCodecBench(baselinePath string) error {
	rep := &fleetReport{}
	for _, n := range []int{64, 8} {
		if err := measureCodec(rep, n); err != nil {
			return err
		}
	}
	base := loadFleetBaseline(baselinePath)
	baseNs := map[string]float64{}
	if base != nil {
		for _, r := range base.Codec {
			baseNs[r.Name] = r.NsPerOp
		}
	}
	fmt.Println("fleet delta codec (vs committed BENCH_fleet.json baseline):")
	fmt.Printf("%-28s %12s %12s %12s\n", "benchmark", "ns/op", "baseline", "ratio")
	for _, r := range rep.Codec {
		bl, ratio := "-", "-"
		if b, ok := baseNs[r.Name]; ok && r.NsPerOp > 0 {
			bl = fmt.Sprintf("%.0f", b)
			ratio = fmt.Sprintf("%.2fx", b/r.NsPerOp)
		}
		fmt.Printf("%-28s %12.0f %12s %12s\n", r.Name, r.NsPerOp, bl, ratio)
	}
	fmt.Println()
	return nil
}

// runFleetBench runs the codec micro-benchmarks and the control-plane
// study, prints both, and writes the combined BENCH_fleet.json.
func runFleetBench(ctx context.Context, hosts, relays int, seed int64, outPath string) error {
	rep := &fleetReport{
		GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Go: runtime.Version(),
		Seed:     seed,
		Baseline: "JSON delta codec over the same fleet (pre-codec wire format)",
	}

	// Micro: the codec at the two pack sizes that matter — a full
	// first-sync pack and the 8-vaccine incremental wave.
	for _, n := range []int{64, 8} {
		if err := measureCodec(rep, n); err != nil {
			return err
		}
	}
	fmt.Println("delta codec (JSON baseline vs binary):")
	fmt.Printf("%-28s %12s %12s %12s %8s %8s\n",
		"benchmark", "ns/op", "allocs/op", "body-bytes", "speedup", "shrink")
	for _, r := range rep.Codec {
		body, speed, shrink := "-", "-", "-"
		if r.BodyBytes > 0 {
			body = fmt.Sprint(r.BodyBytes)
		}
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.Shrink > 0 {
			shrink = fmt.Sprintf("%.2fx", r.Shrink)
		}
		fmt.Printf("%-28s %12.0f %12d %12s %8s %8s\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, body, speed, shrink)
	}
	fmt.Println()

	// Macro: the convergence study itself.
	study, err := experiment.RunControlPlane(ctx, experiment.ControlPlaneConfig{
		Hosts:  hosts,
		Relays: relays,
		Seed:   uint64(seed),
	})
	if err != nil {
		return err
	}
	rep.Hosts, rep.Waves = study.Hosts, study.Waves
	rep.VaccinesPerWave, rep.Relays = study.VaccinesPerWave, study.Relays
	for _, row := range study.Rows {
		r := row.Result
		rep.Study = append(rep.Study, fleetStudyRow{
			Mode:       row.Mode,
			ConvergeMs: float64(r.ConvergeTime) / float64(time.Millisecond),
			SyncP50Ms:  float64(r.SyncP50) / float64(time.Millisecond),
			SyncP99Ms:  float64(r.SyncP99) / float64(time.Millisecond),
			Requests:   r.Requests, OriginRequests: r.OriginRequests,
			EdgeRequests: r.EdgeRequests, BytesOnWire: r.BytesOnWire,
			Deltas: r.Deltas, DecodeErrors: r.DecodeErrors,
		})
	}
	fmt.Println(experiment.RenderControlPlane(study))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
