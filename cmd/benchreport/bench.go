package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/experiment"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// benchSeed matches the repository's bench_test.go so the in-process
// measurements are comparable with `go test -bench` output.
const benchSeed = 42

// benchBaseline is a seed-tree measurement (commit 1f48890's emulator,
// measured on the commit immediately before the predecode/shadow/arena
// layers landed; Intel Xeon @ 2.10GHz, go1.22). The -bench mode prints
// before/after against these so a speedup claim is attached to numbers,
// not adjectives.
type benchBaseline struct {
	NsPerOp     float64
	AllocsPerOp float64
}

var baselines = map[string]benchBaseline{
	"Emulator":                 {NsPerOp: 834_000, AllocsPerOp: 534},
	"EmulatorWithSteps":        {NsPerOp: 899_600, AllocsPerOp: 724},
	"SliceReplay":              {NsPerOp: 427_500, AllocsPerOp: 275},
	"Phase1CandidateSelection": {NsPerOp: 63_770_000, AllocsPerOp: 30_271},
}

// benchRow is one measurement in BENCH_emu.json.
type benchRow struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	StepsPerSec float64 `json:"steps_per_sec,omitempty"`

	BaselineNsPerOp     float64 `json:"baseline_ns_per_op,omitempty"`
	BaselineAllocsPerOp float64 `json:"baseline_allocs_per_op,omitempty"`
	Speedup             float64 `json:"speedup,omitempty"`
}

// benchReport is the machine-readable BENCH_emu.json document.
type benchReport struct {
	GOOS     string     `json:"goos"`
	GOARCH   string     `json:"goarch"`
	Go       string     `json:"go"`
	Seed     int64      `json:"seed"`
	Baseline string     `json:"baseline"`
	Results  []benchRow `json:"results"`
}

// runBench executes the emulator benchmark trajectory in-process and
// writes the machine-readable report to outPath.
func runBench(outPath string) error {
	zeus, err := malware.NewGenerator(benchSeed).FamilySample(malware.Zeus)
	if err != nil {
		return err
	}

	rep := &benchReport{
		GOOS:     runtime.GOOS,
		GOARCH:   runtime.GOARCH,
		Go:       runtime.Version(),
		Seed:     benchSeed,
		Baseline: "seed emulator (pre predecode/sparse-shadow/arena), Xeon 2.10GHz",
	}

	measure := func(name string, steps *int, fn func(b *testing.B)) benchRow {
		*steps = 0
		r := testing.Benchmark(fn)
		row := benchRow{
			Name:        name,
			N:           r.N,
			NsPerOp:     float64(r.NsPerOp()),
			AllocsPerOp: r.AllocsPerOp(),
			BytesPerOp:  r.AllocedBytesPerOp(),
		}
		if *steps > 0 && r.T > 0 {
			row.StepsPerSec = float64(*steps) / r.T.Seconds()
		}
		if base, ok := baselines[name]; ok && row.NsPerOp > 0 {
			row.BaselineNsPerOp = base.NsPerOp
			row.BaselineAllocsPerOp = base.AllocsPerOp
			row.Speedup = base.NsPerOp / row.NsPerOp
		}
		rep.Results = append(rep.Results, row)
		return row
	}

	var steps int

	// One-shot execution, fresh environment clone per run — the exact
	// shape of BenchmarkEmulator in bench_test.go.
	env := winenv.New(winenv.DefaultIdentity())
	measure("Emulator", &steps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := emu.Run(zeus.Program, env.Clone(), emu.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			if tr.Exit == trace.ExitFault {
				b.Fatal(tr.Fault)
			}
			steps += tr.StepCount
		}
	})

	// Instruction-level recording, the cost backward slicing pays.
	measure("EmulatorWithSteps", &steps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := emu.Run(zeus.Program, env.Clone(),
				emu.Options{Seed: benchSeed, RecordSteps: true})
			if err != nil {
				b.Fatal(err)
			}
			steps += tr.StepCount
		}
	})

	// Pooled arena re-execution — Phase-II's steady state. No seed
	// baseline: the Runner did not exist in the seed tree.
	runner, err := emu.NewRunner(zeus.Program, winenv.New(winenv.DefaultIdentity()))
	if err != nil {
		return err
	}
	measure("EmulatorPooled", &steps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr, err := runner.Run(emu.Options{Seed: benchSeed})
			if err != nil {
				b.Fatal(err)
			}
			steps += tr.StepCount
		}
	})
	runner.Close()

	// Tier-2 block-compiled dispatch vs forced tier-1 stepping on the
	// stalling-evasion workload (tight untainted loop + timing check),
	// where instruction dispatch dominates. Same binary, same runner
	// shape; only Options.DisableBlocks differs, and execution is
	// byte-identical either way. The blocks row's speedup field records
	// the blocks-over-stepwise ratio rather than a seed-tree baseline.
	stallSpec := &malware.Spec{Name: "bench-stalling", Category: malware.Trojan,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehStalling, Count: 20_000},
			{Kind: malware.BehMarkerMutex, ID: "BENCH-STALL-MUTEX"},
		}}
	stallProg := malware.MustEmit(stallSpec)
	stallTier := func(name string, disable bool) (benchRow, error) {
		r, err := emu.NewRunner(stallProg, winenv.New(winenv.DefaultIdentity()))
		if err != nil {
			return benchRow{}, err
		}
		defer r.Close()
		return measure(name, &steps, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				tr, err := r.Run(emu.Options{Seed: benchSeed, DisableBlocks: disable})
				if err != nil {
					b.Fatal(err)
				}
				if tr.Exit == trace.ExitFault {
					b.Fatal(tr.Fault)
				}
				steps += tr.StepCount
			}
		}), nil
	}
	blocksRow, err := stallTier("EmulatorStalling/blocks", false)
	if err != nil {
		return err
	}
	stepRow, err := stallTier("EmulatorStalling/stepwise", true)
	if err != nil {
		return err
	}
	if stepRow.NsPerOp > 0 && blocksRow.NsPerOp > 0 {
		tier2 := &rep.Results[len(rep.Results)-2]
		tier2.BaselineNsPerOp = stepRow.NsPerOp
		tier2.BaselineAllocsPerOp = float64(stepRow.AllocsPerOp)
		tier2.Speedup = stepRow.NsPerOp / blocksRow.NsPerOp
	}

	// Slice replay per algorithm-deterministic vaccine.
	spec := &malware.Spec{Name: "bench-replay", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: benchSeed, RecordSteps: true})
	if err != nil {
		return err
	}
	sl, err := determinism.Extract(prog, tr, tr.CallsTo("CreateMutexA")[0].Seq)
	if err != nil {
		return err
	}
	replayEnv := winenv.New(winenv.DefaultIdentity())
	measure("SliceReplay", &steps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sl.Replay(replayEnv, benchSeed); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Phase-I candidate selection over the 60-sample bench corpus —
	// end-to-end profiling throughput, the number every corpus sweep
	// multiplies. Setup construction is outside the timed region.
	setup, err := experiment.NewSetup(benchSeed, 60)
	if err != nil {
		return err
	}
	measure("Phase1CandidateSelection", &steps, func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, err := setup.RunPhase1(); err != nil {
				b.Fatal(err)
			}
		}
	})

	// Human-readable table alongside the JSON.
	fmt.Printf("emulator bench trajectory (seed %d, %s/%s, %s)\n",
		benchSeed, rep.GOOS, rep.GOARCH, rep.Go)
	fmt.Printf("%-26s %14s %12s %14s %10s\n", "benchmark", "ns/op", "allocs/op", "steps/sec", "speedup")
	for _, r := range rep.Results {
		speed, sps := "-", "-"
		if r.Speedup > 0 {
			speed = fmt.Sprintf("%.2fx", r.Speedup)
		}
		if r.StepsPerSec > 0 {
			sps = fmt.Sprintf("%.2fM", r.StepsPerSec/1e6)
		}
		fmt.Printf("%-26s %14.0f %12d %14s %10s\n", r.Name, r.NsPerOp, r.AllocsPerOp, sps, speed)
	}
	fmt.Printf("(baseline: %s)\n\n", rep.Baseline)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}
