// Command benchreport regenerates the paper's evaluation tables and
// figures over the synthetic corpus (see DESIGN.md's experiment index).
//
// Usage:
//
//	benchreport -all                 # everything, paper-scale corpus
//	benchreport -all -n 200          # everything, reduced corpus
//	benchreport -table 4 -n 400
//	benchreport -figure 3 -n 400
//	benchreport -phase1 -n 400
//	benchreport -controlplane -hosts 100000            # direct fan-out study
//	benchreport -controlplane -hosts 1000000 -relays 32 # two-tier relay study
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"autovac/internal/experiment"
	"autovac/internal/malware"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchreport:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchreport", flag.ContinueOnError)
	var (
		n      = fs.Int("n", 1716, "corpus size (1716 = paper scale)")
		seed   = fs.Int64("seed", 42, "deterministic seed")
		table  = fs.Int("table", 0, "regenerate one table (1..7)")
		figure = fs.Int("figure", 0, "regenerate one figure (3 or 4)")
		phase1 = fs.Bool("phase1", false, "regenerate the Phase-I statistics (§VI-B)")
		fptest = fs.Bool("fp", false, "run the clinic false-positive test (§VI-E)")
		timing = fs.Bool("timing", false, "run the §VI-F performance measurements")
		evade  = fs.Bool("evasion", false, "run the §VII evasion/limitation experiments")
		ablate = fs.Bool("ablation", false, "run the design-choice ablation study")
		prefil = fs.Bool("prefilter", false, "run the static pre-filter study (prefilter on vs off)")
		triage = fs.Bool("triage", false, "run the Phase-0 triage study (static API-surface recovery on vs off)")
		epidem = fs.Bool("epidemic", false, "run the killswitch-worm vs vaccine-sync epidemic race")
		cplane = fs.Bool("controlplane", false, "run the fleet-scale distribution study (poll vs long-poll vs binary; -relays adds the edge tier)")
		hosts  = fs.Int("hosts", 100000, "fleet size for -controlplane")
		relays = fs.Int("relays", 0, "edge relay count for -controlplane (0 = direct origin fan-out)")
		fout   = fs.String("fleetout", "BENCH_fleet.json", "machine-readable -controlplane output path")
		all    = fs.Bool("all", false, "regenerate everything")
		bdrCap = fs.Int("bdrcap", 10, "max vaccines measured per effect class for Figure 4")
		bench  = fs.Bool("bench", false, "run the emulator bench trajectory and write -benchout")
		bout   = fs.String("benchout", "BENCH_emu.json", "machine-readable bench output path")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *bench {
		// The bench trajectory builds its own fixtures; skip the corpus
		// setup the report paths need. The fleet codec rows ride along,
		// reported against the committed BENCH_fleet.json baselines.
		if err := runBench(*bout); err != nil {
			return err
		}
		return runFleetCodecBench(*fout)
	}
	if *cplane {
		// The control-plane study builds its own in-process fleet; skip
		// the corpus setup the report paths need. It is never part of
		// -all: at the default 100k hosts it is a multi-second wall-clock
		// measurement that would distort the report timings around it.
		return runFleetBench(context.Background(), *hosts, *relays, *seed, *fout)
	}
	if !*all && *table == 0 && *figure == 0 && !*phase1 && !*fptest && !*timing && !*evade && !*ablate && !*prefil && !*triage && !*epidem {
		*all = true
	}
	if *epidem && !*all {
		// The epidemic race builds its own worm and fleet; skip the
		// corpus setup the report paths need.
		rep, err := experiment.RunEpidemic(experiment.EpidemicConfig{Seed: uint64(*seed)})
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderEpidemic(rep))
		return nil
	}

	// partial collects isolated experiment failures: every completed
	// table/figure is still rendered, and the joined failures make the
	// exit non-zero at the end.
	var partial []error

	start := time.Now()
	setup, err := experiment.NewSetup(*seed, *n)
	if err != nil {
		return err
	}
	fmt.Printf("corpus: %d samples, %d benign programs, %d indexed identifiers (setup %v)\n\n",
		len(setup.Samples), len(setup.Benign), setup.Index.Size(),
		time.Since(start).Round(time.Millisecond))

	if *all || *table == 1 {
		fmt.Println(experiment.RenderTableI(experiment.TableI()))
		res, total := experiment.Hooked()
		fmt.Printf("hooked resource APIs: %d of %d registered\n\n", res, total)
	}
	if *all || *table == 2 {
		fmt.Println(experiment.RenderTableII(setup.TableII()))
	}

	needPhase1 := *all || *phase1 || *figure == 3 || *figure == 4 || *fptest ||
		*table == 3 || *table == 4 || *table == 5 || *table == 6
	var stats *experiment.Phase1Stats
	var profiles []interface{}
	_ = profiles
	var gen *experiment.GenStats
	if needPhase1 {
		t0 := time.Now()
		st, profs, err := setup.RunPhase1()
		if err != nil {
			// Per-sample isolation: render what completed, fail at exit.
			partial = append(partial, err)
		}
		stats = st
		if *all || *phase1 {
			fmt.Println(experiment.RenderPhase1(stats))
		}
		if *all || *figure == 3 {
			fmt.Println(experiment.RenderFigure3(experiment.Figure3(stats)))
		}
		needPhase2 := *all || *figure == 4 || *fptest ||
			*table == 3 || *table == 4 || *table == 5 || *table == 6
		if needPhase2 {
			g, err := setup.RunPhase2(profs)
			if err != nil {
				partial = append(partial, err)
			}
			gen = g
			if *all {
				fmt.Println(experiment.RenderGenSummary(gen))
			}
		}
		fmt.Printf("(phase 1+2 over %d samples: %v)\n\n", stats.SamplesRun,
			time.Since(t0).Round(time.Millisecond))
	}

	if gen != nil && (*all || *table == 4) {
		fmt.Println(experiment.RenderTableIV(experiment.TableIV(gen)))
	}
	if gen != nil && (*all || *table == 3) {
		fmt.Println(experiment.RenderTableIII(experiment.TableIII(gen, setup.Samples, 10)))
	}
	if gen != nil && (*all || *table == 5) {
		fmt.Println(experiment.RenderTableV(experiment.TableV(gen)))
	}
	if gen != nil && (*all || *table == 6) {
		v, ok := experiment.TableVI(gen)
		fmt.Println(experiment.RenderTableVI(v, ok))
	}
	if gen != nil && (*all || *figure == 4) {
		byName := make(map[string]*malware.Sample, len(setup.Samples))
		for _, s := range setup.Samples {
			byName[s.Name()] = s
		}
		points, err := setup.Figure4(gen, byName, *bdrCap)
		if err != nil {
			partial = append(partial, err)
		}
		fmt.Println(experiment.RenderFigure4(experiment.SummarizeBDR(points)))
	}
	if *all || *table == 7 {
		rows, err := setup.TableVII(5, 0.45)
		if err != nil {
			partial = append(partial, err)
		}
		fmt.Println(experiment.RenderTableVII(rows))
	}
	if gen != nil && (*all || *fptest) {
		vs := gen.Vaccines
		if len(vs) > 25 {
			vs = vs[:25] // keep the full-suite clinic run tractable
		}
		rep, err := setup.FalsePositiveTest(vs)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderFalsePositive(rep))
	}

	if *all || *timing {
		tm, err := setup.MeasureTiming(30)
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderTiming(tm))
	}
	if *all || *evade {
		ren, err := setup.RenameEvasion(malware.PoisonIvy)
		if err != nil {
			return err
		}
		fo, fe, ri, err := setup.CheckDropEvasion()
		if err != nil {
			return err
		}
		cd, err := setup.ControlDepEvasion()
		if err != nil {
			return err
		}
		fmt.Println(experiment.RenderEvasion(ren, fo, fe, ri, cd))
	}
	if *all || *epidem {
		rep, err := experiment.RunEpidemic(experiment.EpidemicConfig{Seed: uint64(*seed)})
		if err != nil {
			partial = append(partial, err)
		} else {
			fmt.Println(experiment.RenderEpidemic(rep))
		}
	}
	if *all || *prefil {
		st, err := setup.Prefilter(context.Background())
		if err != nil {
			partial = append(partial, err)
		} else {
			fmt.Println(experiment.RenderPrefilter(st))
		}
	}
	if *all || *triage {
		// Per-band size scales with the corpus so a reduced -n run stays
		// quick while paper scale gets a meaningful skippable population.
		perBand := *n / 64
		if perBand < 4 {
			perBand = 4
		}
		st, err := setup.Triage(context.Background(), perBand)
		if err != nil {
			partial = append(partial, err)
		} else {
			fmt.Println(experiment.RenderTriage(st))
		}
	}
	if *ablate {
		_, profiles, err := setup.RunPhase1()
		if err != nil {
			partial = append(partial, err)
		}
		rep, err := setup.Ablation(profiles)
		if err != nil {
			partial = append(partial, err)
		}
		fmt.Println(experiment.RenderAblation(rep))
	}

	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
	return errors.Join(partial...)
}
