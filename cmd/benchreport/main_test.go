package main

import (
	"os"
	"testing"
)

func TestSingleTable(t *testing.T) {
	if err := run([]string{"-table", "2", "-n", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestPhase1Only(t *testing.T) {
	if err := run([]string{"-phase1", "-n", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestFigure3(t *testing.T) {
	if err := run([]string{"-figure", "3", "-n", "30"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable7(t *testing.T) {
	if err := run([]string{"-table", "7", "-n", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestAllReduced(t *testing.T) {
	if testing.Short() {
		t.Skip("full report in short mode")
	}
	if err := run([]string{"-all", "-n", "40", "-bdrcap", "2"}); err != nil {
		t.Fatal(err)
	}
}

func TestEvasionFlag(t *testing.T) {
	if err := run([]string{"-evasion", "-n", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestAblationFlag(t *testing.T) {
	if err := run([]string{"-ablation", "-n", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestTimingFlag(t *testing.T) {
	if err := run([]string{"-timing", "-n", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestTable1Flag(t *testing.T) {
	if err := run([]string{"-table", "1", "-n", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestTriageFlag(t *testing.T) {
	if err := run([]string{"-triage", "-n", "20"}); err != nil {
		t.Fatal(err)
	}
}

func TestControlPlaneFlag(t *testing.T) {
	if testing.Short() {
		t.Skip("codec benchmarks + fleet study in short mode")
	}
	out := t.TempDir() + "/BENCH_fleet.json"
	if err := run([]string{"-controlplane", "-hosts", "64", "-relays", "2", "-fleetout", out}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(out); err != nil {
		t.Fatalf("BENCH_fleet.json not written: %v", err)
	}
	// The -bench fleet section consumes the committed baseline; point it
	// at the file just written to exercise the comparison path.
	if err := runFleetCodecBench(out); err != nil {
		t.Fatal(err)
	}
}
