package main

import (
	"os"
	"path/filepath"
	"testing"

	"autovac/internal/vaccine"
)

func TestRunFamilyWritesPack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "zeus.json")
	if err := run([]string{"-family", "zeus", "-seed", "42", "-out", out}); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pack, err := vaccine.ReadPack(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pack.Vaccines) == 0 {
		t.Fatal("empty pack")
	}
	found := false
	for _, v := range pack.Vaccines {
		if v.Identifier == `C:\Windows\system32\sdra64.exe` {
			found = true
		}
	}
	if !found {
		t.Errorf("sdra64.exe vaccine missing from pack: %d vaccines", len(pack.Vaccines))
	}
}

func TestRunSmallCorpusVerbose(t *testing.T) {
	if err := run([]string{"-corpus", "12", "-seed", "7", "-v"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithClinic(t *testing.T) {
	if err := run([]string{"-family", "poisonivy", "-clinic", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("no args accepted")
	}
	if err := run([]string{"-family", "nosuch"}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestParseFamilyAliases(t *testing.T) {
	for _, alias := range []string{"zeus", "zbot", "ZEUS"} {
		if _, err := parseFamily(alias); err != nil {
			t.Errorf("parseFamily(%q): %v", alias, err)
		}
	}
}
