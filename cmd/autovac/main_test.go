package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"autovac/internal/vaccine"
)

func TestRunFamilyWritesPack(t *testing.T) {
	out := filepath.Join(t.TempDir(), "zeus.json")
	if err := run(context.Background(), []string{"-family", "zeus", "-seed", "42", "-out", out}, io.Discard); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pack, err := vaccine.ReadPack(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(pack.Vaccines) == 0 {
		t.Fatal("empty pack")
	}
	found := false
	for _, v := range pack.Vaccines {
		if v.Identifier == `C:\Windows\system32\sdra64.exe` {
			found = true
		}
	}
	if !found {
		t.Errorf("sdra64.exe vaccine missing from pack: %d vaccines", len(pack.Vaccines))
	}
}

func TestRunSmallCorpusVerbose(t *testing.T) {
	if err := run(context.Background(), []string{"-corpus", "12", "-seed", "7", "-v"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunWithClinic(t *testing.T) {
	if err := run(context.Background(), []string{"-family", "poisonivy", "-clinic", "5"}, io.Discard); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(context.Background(), []string{}, io.Discard); err == nil {
		t.Error("no args accepted")
	}
	if err := run(context.Background(), []string{"-family", "nosuch"}, io.Discard); err == nil {
		t.Error("unknown family accepted")
	}
}

// TestRunTimeoutEmitsPartialResults pins the CLI exit contract: a run
// that hits -timeout returns the error (non-zero exit) but still
// prints the summary and writes the pack with whatever completed.
func TestRunTimeoutEmitsPartialResults(t *testing.T) {
	out := filepath.Join(t.TempDir(), "partial.json")
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-corpus", "40", "-timeout", "1ns", "-out", out}, &buf)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want deadline exceeded", err)
	}
	for _, want := range []string{"samples analysed:", "skipped:", "pack written to"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("summary missing %q despite partial failure:\n%s", want, buf.String())
		}
	}
	f, ferr := os.Open(out)
	if ferr != nil {
		t.Fatalf("pack not written on partial run: %v", ferr)
	}
	defer f.Close()
	pack, ferr := vaccine.ReadPack(f)
	if ferr != nil {
		t.Fatal(ferr)
	}
	if pack.Analysis == nil {
		t.Fatal("pack missing analysis stats")
	}
	if pack.Analysis.Skipped == 0 {
		t.Errorf("a 1ns-timeout run skipped nothing: %+v", pack.Analysis)
	}
}

// TestRunWorkerAndBudgetFlags covers the new corpus-control flags on a
// healthy run: bounded workers and an unexhausted error budget leave
// the output identical to a plain run.
func TestRunWorkerAndBudgetFlags(t *testing.T) {
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-corpus", "12", "-seed", "7", "-workers", "2", "-max-errors", "3"}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var analysed, total int
	if _, err := fmt.Sscanf(buf.String(), "samples analysed:  %d/%d", &analysed, &total); err != nil {
		t.Fatalf("no summary line:\n%s", buf.String())
	}
	if analysed != total || analysed == 0 {
		t.Errorf("analysed %d/%d, want a full run", analysed, total)
	}
	if strings.Contains(buf.String(), "failed:") {
		t.Errorf("healthy run printed a failure line:\n%s", buf.String())
	}
}

func TestParseFamilyAliases(t *testing.T) {
	for _, alias := range []string{"zeus", "zbot", "ZEUS"} {
		if _, err := parseFamily(alias); err != nil {
			t.Errorf("parseFamily(%q): %v", alias, err)
		}
	}
}

// TestRunStaticTriage exercises the Phase-0 flags together: a corpus
// extended with hash-resolving bands, triage on, pack written. Exactly
// the hashtick band (one per -hash-corpus unit) is provably
// resource-free, and the skip count must reach both the summary and
// the pack's embedded analysis stats.
func TestRunStaticTriage(t *testing.T) {
	out := filepath.Join(t.TempDir(), "triaged.json")
	var buf bytes.Buffer
	err := run(context.Background(),
		[]string{"-corpus", "8", "-hash-corpus", "2", "-static-triage", "-seed", "9", "-out", out}, &buf)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "triage skipped:    2") {
		t.Errorf("summary missing the triage count:\n%s", buf.String())
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	pack, err := vaccine.ReadPack(f)
	if err != nil {
		t.Fatal(err)
	}
	if pack.Analysis == nil || pack.Analysis.TriageSkipped != 2 {
		t.Errorf("pack analysis stats lost the triage count: %+v", pack.Analysis)
	}
}
