// Command autovac runs the AUTOVAC pipeline: it analyses synthetic
// malware samples (a named family or a whole corpus), extracts system
// resource constraints, and generates vaccine packages.
//
// Corpus runs are fault-isolated and cancellable: a sample that errors
// or panics never takes down the run — its failure is reported, every
// healthy sample's vaccines are still emitted (and written to -out),
// and the process exits non-zero. -timeout bounds the whole run,
// -max-errors stops dispatching new samples after too many failures,
// and SIGINT/SIGTERM cancel cleanly with partial results.
//
// Usage:
//
//	autovac -family zeus -out vaccines.json
//	autovac -corpus 200 -seed 42 -workers 8 -out corpus-vaccines.json
//	autovac -corpus 500 -timeout 5m -max-errors 10
//	autovac -family conficker -v
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"autovac/internal/core"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "autovac:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("autovac", flag.ContinueOnError)
	fs.SetOutput(out)
	var (
		family    = fs.String("family", "", "analyse one family: zeus|conficker|sality|qakbot|ibank|poisonivy")
		corpusN   = fs.Int("corpus", 0, "analyse a generated corpus of this size")
		seed      = fs.Int64("seed", 42, "deterministic seed")
		outPath   = fs.String("out", "", "write the vaccine pack to this file (default stdout summary only)")
		clinicN   = fs.Int("clinic", 0, "run the clinic test against this many benign programs (0 = skip)")
		workers   = fs.Int("workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
		timeout   = fs.Duration("timeout", 0, "bound the whole corpus run (0 = none); completed results are still emitted")
		maxErrors = fs.Int("max-errors", 0, "stop dispatching new samples after this many failures (0 = analyse everything)")
		prefilter = fs.Bool("static-prefilter", false, "skip Phase-I emulation of samples the static taint analysis proves candidate-free")
		triage    = fs.Bool("static-triage", false, "Phase-0: skip emulation of samples whose statically recovered API surface holds no resource API")
		hashN     = fs.Int("hash-corpus", 0, "append this many hash-resolving samples per band to a -corpus run (exercises -static-triage)")
		verbose   = fs.Bool("v", false, "print per-candidate detail")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" && *corpusN == 0 {
		return fmt.Errorf("need -family or -corpus (see -h)")
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	ix, err := exclusive.BuildIndex(benign, uint64(*seed))
	if err != nil {
		return err
	}
	cfg := core.Config{Seed: uint64(*seed), Index: ix}
	if *clinicN > 0 {
		n := *clinicN
		if n > len(benign) {
			n = len(benign)
		}
		cfg.Benign = benign[:n]
	}
	pipeline := core.New(cfg)
	gen := malware.NewGenerator(*seed)

	var samples []*malware.Sample
	if *family != "" {
		f, err := parseFamily(*family)
		if err != nil {
			return err
		}
		s, err := gen.FamilySample(f)
		if err != nil {
			return err
		}
		samples = []*malware.Sample{s}
	} else {
		samples, err = gen.Corpus(*corpusN)
		if err != nil {
			return err
		}
		if *hashN > 0 {
			hr, err := gen.HashResolveCorpus(*hashN)
			if err != nil {
				return err
			}
			samples = append(samples, hr...)
		}
	}

	// The fault-isolated corpus run: per-sample panic containment,
	// partial results, and an aggregated error in sample order.
	results, stats, runErr := pipeline.AnalyzeCorpus(ctx, samples, core.CorpusOptions{
		Workers:         *workers,
		MaxErrors:       *maxErrors,
		StaticPrefilter: *prefilter,
		StaticTriage:    *triage,
	})

	pack := &vaccine.Pack{Generator: "autovac-go/1.0"}
	flagged, immunized := 0, 0
	for i, res := range results {
		if res == nil {
			continue
		}
		s := samples[i]
		if res.Profile.HasVaccineCandidates() {
			flagged++
		}
		if len(res.Vaccines) > 0 {
			immunized++
		}
		pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
		if *verbose {
			fmt.Fprintf(out, "%s (%s/%s): %d candidates, %d vaccines\n",
				s.Name(), s.Spec.Category, s.Spec.Family,
				len(res.Profile.Candidates), len(res.Vaccines))
			for _, v := range res.Vaccines {
				fmt.Fprintf(out, "  + %s\n", v.String())
			}
			for _, r := range res.Rejected {
				fmt.Fprintf(out, "  - %s %q rejected at %s: %s\n",
					r.Candidate.Call.API, r.Candidate.Call.Identifier, r.Stage, r.Reason)
			}
			for _, r := range res.ClinicRejections {
				fmt.Fprintf(out, "  - clinic: %s\n", r)
			}
		}
	}

	fmt.Fprintf(out, "samples analysed:  %d/%d\n", stats.Analyzed, len(samples))
	if *triage {
		fmt.Fprintf(out, "triage skipped:    %d (Phase-0: no resource API in the recovered surface)\n", stats.TriageSkipped)
	}
	if *prefilter {
		fmt.Fprintf(out, "statically filtered: %d (Phase-I emulation skipped)\n", stats.StaticallyFiltered)
	}
	if stats.Failed > 0 || stats.Skipped > 0 {
		fmt.Fprintf(out, "failed:            %d (%d panicked)\n", stats.Failed, stats.Panicked)
		fmt.Fprintf(out, "skipped:           %d\n", stats.Skipped)
	}
	fmt.Fprintf(out, "flagged (Phase-I): %d\n", flagged)
	fmt.Fprintf(out, "with vaccines:     %d\n", immunized)
	fmt.Fprintf(out, "vaccines:          %d\n", len(pack.Vaccines))
	fmt.Fprintf(out, "wall time:         %v (mean %v/sample)\n",
		stats.Wall.Round(time.Millisecond), stats.MeanSampleTime().Round(time.Microsecond))
	if len(samples) > 1 {
		// Fleet deployment installs each resource once.
		pack.Vaccines = vaccine.Dedupe(pack.Vaccines)
		fmt.Fprintf(out, "after dedupe:      %d\n", len(pack.Vaccines))
	}

	// Emit completed results even on a partial run: the pack carries
	// every healthy sample's vaccines plus the run's analysis stats.
	if *outPath != "" {
		st := stats.AnalysisStats()
		pack.Analysis = &st
		if werr := writePack(pack, *outPath, out); werr != nil {
			return errors.Join(runErr, werr)
		}
	}
	return runErr
}

// writePack verifies the pack (the mandatory pre-distribution gate:
// record validation plus static slice verification) and serializes it.
func writePack(pack *vaccine.Pack, path string, out io.Writer) error {
	if err := pack.Verify(); err != nil {
		return fmt.Errorf("pack failed verification: %w", err)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := pack.WriteJSON(f); err != nil {
		return err
	}
	fmt.Fprintf(out, "pack written to %s\n", path)
	return nil
}

// parseFamily maps a CLI name to a malware family.
func parseFamily(s string) (malware.Family, error) {
	switch strings.ToLower(s) {
	case "zeus", "zbot":
		return malware.Zeus, nil
	case "conficker":
		return malware.Conficker, nil
	case "sality":
		return malware.Sality, nil
	case "qakbot":
		return malware.Qakbot, nil
	case "ibank":
		return malware.IBank, nil
	case "poisonivy", "pi":
		return malware.PoisonIvy, nil
	}
	return "", fmt.Errorf("unknown family %q", s)
}
