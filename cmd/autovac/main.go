// Command autovac runs the AUTOVAC pipeline: it analyses synthetic
// malware samples (a named family or a whole corpus), extracts system
// resource constraints, and generates vaccine packages.
//
// Usage:
//
//	autovac -family zeus -out vaccines.json
//	autovac -corpus 200 -seed 42 -out corpus-vaccines.json
//	autovac -family conficker -v
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autovac/internal/core"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "autovac:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("autovac", flag.ContinueOnError)
	var (
		family  = fs.String("family", "", "analyse one family: zeus|conficker|sality|qakbot|ibank|poisonivy")
		corpusN = fs.Int("corpus", 0, "analyse a generated corpus of this size")
		seed    = fs.Int64("seed", 42, "deterministic seed")
		out     = fs.String("out", "", "write the vaccine pack to this file (default stdout summary only)")
		clinicN = fs.Int("clinic", 0, "run the clinic test against this many benign programs (0 = skip)")
		verbose = fs.Bool("v", false, "print per-candidate detail")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *family == "" && *corpusN == 0 {
		return fmt.Errorf("need -family or -corpus (see -h)")
	}

	benign, err := malware.BenignCorpus()
	if err != nil {
		return err
	}
	ix, err := exclusive.BuildIndex(benign, uint64(*seed))
	if err != nil {
		return err
	}
	cfg := core.Config{Seed: uint64(*seed), Index: ix}
	if *clinicN > 0 {
		n := *clinicN
		if n > len(benign) {
			n = len(benign)
		}
		cfg.Benign = benign[:n]
	}
	pipeline := core.New(cfg)
	gen := malware.NewGenerator(*seed)

	var samples []*malware.Sample
	if *family != "" {
		f, err := parseFamily(*family)
		if err != nil {
			return err
		}
		s, err := gen.FamilySample(f)
		if err != nil {
			return err
		}
		samples = []*malware.Sample{s}
	} else {
		samples, err = gen.Corpus(*corpusN)
		if err != nil {
			return err
		}
	}

	pack := &vaccine.Pack{Generator: "autovac-go/1.0"}
	flagged, immunized := 0, 0
	for _, s := range samples {
		res, err := pipeline.Analyze(s)
		if err != nil {
			return err
		}
		if res.Profile.HasVaccineCandidates() {
			flagged++
		}
		if len(res.Vaccines) > 0 {
			immunized++
		}
		pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
		if *verbose {
			fmt.Printf("%s (%s/%s): %d candidates, %d vaccines\n",
				s.Name(), s.Spec.Category, s.Spec.Family,
				len(res.Profile.Candidates), len(res.Vaccines))
			for _, v := range res.Vaccines {
				fmt.Printf("  + %s\n", v.String())
			}
			for _, r := range res.Rejected {
				fmt.Printf("  - %s %q rejected at %s: %s\n",
					r.Candidate.Call.API, r.Candidate.Call.Identifier, r.Stage, r.Reason)
			}
			for _, r := range res.ClinicRejections {
				fmt.Printf("  - clinic: %s\n", r)
			}
		}
	}

	fmt.Printf("samples analysed:  %d\n", len(samples))
	fmt.Printf("flagged (Phase-I): %d\n", flagged)
	fmt.Printf("with vaccines:     %d\n", immunized)
	fmt.Printf("vaccines:          %d\n", len(pack.Vaccines))
	if len(samples) > 1 {
		// Fleet deployment installs each resource once.
		pack.Vaccines = vaccine.Dedupe(pack.Vaccines)
		fmt.Printf("after dedupe:      %d\n", len(pack.Vaccines))
	}

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pack.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("pack written to %s\n", *out)
	}
	return nil
}

// parseFamily maps a CLI name to a malware family.
func parseFamily(s string) (malware.Family, error) {
	switch strings.ToLower(s) {
	case "zeus", "zbot":
		return malware.Zeus, nil
	case "conficker":
		return malware.Conficker, nil
	case "sality":
		return malware.Sality, nil
	case "qakbot":
		return malware.Qakbot, nil
	case "ibank":
		return malware.IBank, nil
	case "poisonivy", "pi":
		return malware.PoisonIvy, nil
	}
	return "", fmt.Errorf("unknown family %q", s)
}
