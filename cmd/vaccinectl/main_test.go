package main

import (
	"os"
	"path/filepath"
	"testing"

	"autovac/internal/core"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// writePack analyses a family and writes its pack to a temp file.
func writePack(t *testing.T, fam malware.Family) string {
	t.Helper()
	sample, err := malware.NewGenerator(42).FamilySample(fam)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.New(core.Config{Seed: 42}).Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	pack := &vaccine.Pack{Generator: "test", Vaccines: res.Vaccines}
	path := filepath.Join(t.TempDir(), "pack.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pack.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeployAndVerify(t *testing.T) {
	pack := writePack(t, malware.PoisonIvy)
	if err := run([]string{"-pack", pack, "-family", "poisonivy", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
}

func TestDeployOnRenamedHost(t *testing.T) {
	pack := writePack(t, malware.Conficker)
	// The algorithm-deterministic vaccine must regenerate for the new
	// host name and still immunize.
	if err := run([]string{"-pack", pack, "-family", "conficker", "-host", "BRANCH-POS-2", "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
}

func TestDeployWithoutVerification(t *testing.T) {
	pack := writePack(t, malware.Zeus)
	if err := run([]string{"-pack", pack}); err != nil {
		t.Fatal(err)
	}
}

// writeWormPack analyses the killswitch worm under its pseudo-C2
// scenario and writes the resulting domain-vaccine pack.
func writeWormPack(t *testing.T, killswitch string) string {
	t.Helper()
	sample, err := malware.NewGenerator(42).WormSample(killswitch)
	if err != nil {
		t.Fatal(err)
	}
	cfg := core.Config{Seed: 42, C2: malware.WormScenario(killswitch)}
	res, err := core.New(cfg).Analyze(sample)
	if err != nil {
		t.Fatal(err)
	}
	pack := &vaccine.Pack{Generator: "test", Vaccines: res.Vaccines}
	path := filepath.Join(t.TempDir(), "worm.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := pack.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDeployAndVerifyWorm(t *testing.T) {
	const ks = "iuqerfsod.example"
	pack := writeWormPack(t, ks)
	if err := run([]string{"-pack", pack, "-worm", ks, "-seed", "42"}); err != nil {
		t.Fatal(err)
	}
}

func TestWormAndFamilyExclusive(t *testing.T) {
	pack := writePack(t, malware.Zeus)
	if err := run([]string{"-pack", pack, "-family", "zeus", "-worm", "x.example"}); err == nil {
		t.Error("-family and -worm together accepted")
	}
}

func TestErrors(t *testing.T) {
	if err := run([]string{}); err == nil {
		t.Error("missing -pack accepted")
	}
	if err := run([]string{"-pack", "/no/such/file.json"}); err == nil {
		t.Error("missing file accepted")
	}
	pack := writePack(t, malware.Zeus)
	if err := run([]string{"-pack", pack, "-family", "bogus"}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestListPack(t *testing.T) {
	pack := writePack(t, malware.Conficker)
	if err := run([]string{"-pack", pack, "-list"}); err != nil {
		t.Fatal(err)
	}
}
