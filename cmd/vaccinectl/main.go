// Command vaccinectl deploys a vaccine pack onto a simulated end host
// and verifies immunization: it re-generates the named malware sample,
// runs it against the vaccinated host, and reports the immunization
// outcome and Behavior Decreasing Ratio.
//
// Usage:
//
//	autovac -family zeus -out zeus.json
//	vaccinectl -pack zeus.json -family zeus
//	vaccinectl -pack zeus.json -family zeus -host FINANCE-PC-22
//	vaccinectl -pack worm.json -worm <killswitch-domain>
//
// Domain vaccines (winenv.KindDomain) deploy into the host's DNS
// world: simulate-presence registers the name (killswitch sinkhole),
// block-access blackholes it. The -worm mode verifies such a pack
// against the killswitch worm, running both the clean and vaccinated
// host inside the worm's pseudo-C2 scenario.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autovac/internal/c2"
	"autovac/internal/deploy"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "vaccinectl:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("vaccinectl", flag.ContinueOnError)
	var (
		packPath = fs.String("pack", "", "vaccine pack (JSON) to deploy")
		family   = fs.String("family", "", "verify against this family's sample")
		worm     = fs.String("worm", "", "verify against the killswitch worm with this domain")
		host     = fs.String("host", "", "computer name of the target host (default analysis machine)")
		list     = fs.Bool("list", false, "print the pack contents without deploying")
		seed     = fs.Int64("seed", 42, "deterministic seed (must match generation)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *packPath == "" {
		return fmt.Errorf("need -pack")
	}

	f, err := os.Open(*packPath)
	if err != nil {
		return err
	}
	pack, err := vaccine.ReadPack(f)
	f.Close()
	if err != nil {
		return err
	}

	if *list {
		fmt.Printf("pack %q: %d vaccines\n", pack.Generator, len(pack.Vaccines))
		for _, v := range pack.Vaccines {
			fmt.Printf("  %s\n", v.String())
			if v.Slice != nil {
				fmt.Printf("    slice: %d instructions, root API %s\n",
					len(v.Slice.Program.Instrs), v.Slice.API)
			}
		}
		return nil
	}

	id := winenv.DefaultIdentity()
	if *host != "" {
		id.ComputerName = *host
	}
	env := winenv.New(id)
	d := deploy.NewDaemon(env, uint64(*seed))
	for _, v := range pack.Vaccines {
		if err := d.Install(v); err != nil {
			return fmt.Errorf("deploying %s: %w", v.ID, err)
		}
		target := v.Identifier
		if v.Pattern != "" {
			target = v.Pattern
		}
		detail := v.Delivery.String()
		if v.Resource == winenv.KindDomain {
			// Domain vaccines land in the DNS world, not a namespace.
			if v.Polarity == vaccine.SimulatePresence {
				detail += ", sinkhole-register"
			} else {
				detail += ", dns-blackhole"
			}
		}
		fmt.Printf("deployed %-40s [%s %s, %s]\n", target, v.Resource, v.Class, detail)
	}
	fmt.Printf("%d vaccines active on %s\n", d.VaccineCount(), id.ComputerName)

	if *family == "" && *worm == "" {
		return nil
	}
	if *family != "" && *worm != "" {
		return fmt.Errorf("-family and -worm are mutually exclusive")
	}

	var sample *malware.Sample
	var sc *c2.Scenario
	if *worm != "" {
		sample, err = malware.NewGenerator(*seed).WormSample(*worm)
		if err != nil {
			return err
		}
		sc = malware.WormScenario(*worm)
	} else {
		fam, err := parseFamily(*family)
		if err != nil {
			return err
		}
		sample, err = malware.NewGenerator(*seed).FamilySample(fam)
		if err != nil {
			return err
		}
	}

	// Natural behaviour on a clean host vs behaviour on the vaccinated
	// host; under a scenario both hosts face the same pseudo-C2.
	opts := emu.Options{Seed: uint64(*seed)}
	clean := winenv.New(id)
	if sc != nil {
		opts.Registry = winapi.StandardC2()
		clean.Net().SetResponder(sc.NewResponder())
		env.Net().SetResponder(sc.NewResponder())
	}
	normal, err := emu.Run(sample.Program, clean, opts)
	if err != nil {
		return err
	}
	protected, err := emu.Run(sample.Program, env, opts)
	if err != nil {
		return err
	}
	r := impact.Classify(protected, normal)
	bdr := impact.BDR(normal, protected)

	fmt.Printf("\nverification against %s:\n", sample.Name())
	fmt.Printf("  clean host:      %d API calls, exit %v\n", normal.NativeCallCount(), normal.Exit)
	fmt.Printf("  vaccinated host: %d API calls, exit %v\n", protected.NativeCallCount(), protected.Exit)
	fmt.Printf("  immunization:    %v (effects %v)\n", r.Primary, r.Effects)
	fmt.Printf("  BDR:             %.0f%%\n", 100*bdr)
	if protected.Exit == trace.ExitProcess && normal.Exit != trace.ExitProcess {
		fmt.Println("  the malware terminated itself on the vaccinated host")
	}
	if !r.Immunizing() {
		return fmt.Errorf("pack did not immunize against %s", sample.Name())
	}
	return nil
}

func parseFamily(s string) (malware.Family, error) {
	switch strings.ToLower(s) {
	case "zeus", "zbot":
		return malware.Zeus, nil
	case "conficker":
		return malware.Conficker, nil
	case "sality":
		return malware.Sality, nil
	case "qakbot":
		return malware.Qakbot, nil
	case "ibank":
		return malware.IBank, nil
	case "poisonivy", "pi":
		return malware.PoisonIvy, nil
	}
	return "", fmt.Errorf("unknown family %q", s)
}
