package main

import "testing"

func TestSummary(t *testing.T) {
	if err := run([]string{"-n", "60", "-seed", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestList(t *testing.T) {
	if err := run([]string{"-n", "20", "-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestDisasmFamily(t *testing.T) {
	if err := run([]string{"-disasm", "conficker"}); err != nil {
		t.Fatal(err)
	}
}

func TestDisasmCorpusSample(t *testing.T) {
	if err := run([]string{"-disasm", "trojan-0001", "-n", "40"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-disasm", "no-such-sample", "-n", "10"}); err == nil {
		t.Error("missing sample accepted")
	}
}

func TestVariants(t *testing.T) {
	if err := run([]string{"-variants", "zeus", "-n", "3"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-variants", "bogus"}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestBenign(t *testing.T) {
	if err := run([]string{"-benign"}); err != nil {
		t.Fatal(err)
	}
}
