// Command corpusgen generates and describes the synthetic analysis
// corpus: the Table II category mix, the six named families, and
// polymorphic variants. It can disassemble individual samples for
// inspection.
//
// Usage:
//
//	corpusgen -n 1716 -seed 42            # summary
//	corpusgen -n 100 -list                # one line per sample
//	corpusgen -disasm zeus                # print a sample's assembly
//	corpusgen -variants zeus -n 5         # emit variants
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"autovac/internal/malware"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "corpusgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("corpusgen", flag.ContinueOnError)
	var (
		n        = fs.Int("n", 1716, "corpus size (1716 = paper's Table II)")
		seed     = fs.Int64("seed", 42, "deterministic seed")
		list     = fs.Bool("list", false, "print one line per sample")
		disasm   = fs.String("disasm", "", "disassemble this sample (family name or corpus sample name)")
		variants = fs.String("variants", "", "generate variants of this family")
		benign   = fs.Bool("benign", false, "describe the benign corpus instead")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	gen := malware.NewGenerator(*seed)

	if *benign {
		suite, err := malware.BenignCorpus()
		if err != nil {
			return err
		}
		fmt.Printf("benign suite: %d programs\n", len(suite))
		for _, s := range suite {
			fmt.Printf("  %-24s %2d behaviours, %3d instrs\n",
				s.Name(), len(s.Spec.Behaviors), len(s.Program.Instrs))
		}
		return nil
	}

	if *disasm != "" {
		s, err := findSample(gen, *disasm, *n)
		if err != nil {
			return err
		}
		fmt.Print(s.Program.Disassemble())
		return nil
	}

	if *variants != "" {
		fam, err := parseFamily(*variants)
		if err != nil {
			return err
		}
		base, err := gen.FamilySample(fam)
		if err != nil {
			return err
		}
		vs, err := gen.Variants(base, *n, 0.3)
		if err != nil {
			return err
		}
		fmt.Printf("base %s: md5 %s, %d instrs\n", base.Name(), base.MD5, len(base.Program.Instrs))
		for _, v := range vs {
			fmt.Printf("  %-18s md5 %s, %d instrs, %d behaviours\n",
				v.Name(), v.MD5, len(v.Program.Instrs), len(v.Spec.Behaviors))
		}
		return nil
	}

	corpus, err := gen.Corpus(*n)
	if err != nil {
		return err
	}
	if *list {
		for _, s := range corpus {
			fam := string(s.Spec.Family)
			if fam == "" {
				fam = "-"
			}
			fmt.Printf("%-18s %-12s %-12s %3d instrs  md5 %s\n",
				s.Name(), s.Spec.Category, fam, len(s.Program.Instrs), s.MD5)
		}
		return nil
	}

	counts := make(map[malware.Category]int)
	instrs := 0
	sensitive := 0
	for _, s := range corpus {
		counts[s.Spec.Category]++
		instrs += len(s.Program.Instrs)
		if s.Spec.ResourceSensitive() {
			sensitive++
		}
	}
	fmt.Printf("corpus: %d samples (seed %d)\n", len(corpus), *seed)
	for _, cat := range malware.Categories() {
		fmt.Printf("  %-12s %5d (%5.2f%%)\n", cat, counts[cat],
			100*float64(counts[cat])/float64(len(corpus)))
	}
	fmt.Printf("resource-sensitive specs: %d (%.1f%%)\n",
		sensitive, 100*float64(sensitive)/float64(len(corpus)))
	fmt.Printf("total instructions: %d (avg %.0f/sample)\n",
		instrs, float64(instrs)/float64(len(corpus)))
	return nil
}

// findSample resolves a family name or scans the corpus for a sample
// name.
func findSample(gen *malware.Generator, name string, n int) (*malware.Sample, error) {
	if fam, err := parseFamily(name); err == nil {
		return gen.FamilySample(fam)
	}
	corpus, err := gen.Corpus(n)
	if err != nil {
		return nil, err
	}
	for _, s := range corpus {
		if s.Name() == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("no sample %q in a corpus of %d", name, n)
}

func parseFamily(s string) (malware.Family, error) {
	switch strings.ToLower(s) {
	case "zeus", "zbot":
		return malware.Zeus, nil
	case "conficker":
		return malware.Conficker, nil
	case "sality":
		return malware.Sality, nil
	case "qakbot":
		return malware.Qakbot, nil
	case "ibank":
		return malware.IBank, nil
	case "poisonivy", "pi":
		return malware.PoisonIvy, nil
	}
	return "", fmt.Errorf("unknown family %q", s)
}
