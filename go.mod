module autovac

go 1.22
