package isa

import (
	"strings"
	"testing"
)

func TestRegString(t *testing.T) {
	cases := map[Reg]string{EAX: "eax", EBX: "ebx", ESP: "esp", EBP: "ebp"}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
	if !EAX.Valid() || Reg(8).Valid() {
		t.Error("Valid() wrong for EAX or Reg(8)")
	}
}

func TestOperandString(t *testing.T) {
	cases := []struct {
		op   Operand
		want string
	}{
		{R(EAX), "eax"},
		{Imm(0x10), "0x10"},
		{Sym("buf"), "buf"},
		{Mem(EBP, -0x1c), "[ebp-28]"},
		{Mem(ESI, 0), "[esi]"},
		{MemAbs(0x400000), "[0x400000]"},
		{MemSym("name"), "[name]"},
		{Operand{}, "<none>"},
	}
	for _, tc := range cases {
		if got := tc.op.String(); got != tc.want {
			t.Errorf("%#v.String() = %q, want %q", tc.op, got, tc.want)
		}
	}
}

func TestInstrString(t *testing.T) {
	in := Instr{Op: MOV, Dst: R(EAX), Src: Imm(1), Label: "start", Comment: "init"}
	got := in.String()
	if !strings.Contains(got, "start:") || !strings.Contains(got, "mov eax, 0x1") || !strings.Contains(got, "; init") {
		t.Errorf("Instr.String() = %q", got)
	}
	api := Instr{Op: CALLAPI, API: "OpenMutexA", NArgs: 1}
	if got := api.String(); got != "callapi OpenMutexA/1" {
		t.Errorf("api String = %q", got)
	}
	j := Instr{Op: JNZ, Target: "done"}
	if got := j.String(); got != "jnz done" {
		t.Errorf("jump String = %q", got)
	}
}

func TestOpcodePredicates(t *testing.T) {
	if !CMP.IsPredicate() || !TEST.IsPredicate() || MOV.IsPredicate() {
		t.Error("IsPredicate wrong")
	}
	for _, op := range []Opcode{JMP, JZ, JNZ, JL, JGE} {
		if !op.IsJump() {
			t.Errorf("%v.IsJump() = false", op)
		}
	}
	if CALL.IsJump() || MOV.IsJump() {
		t.Error("IsJump wrong for CALL/MOV")
	}
}

func TestBuilderBasicProgram(t *testing.T) {
	b := NewBuilder("t")
	b.RData("name", "_AVIRA_2109")
	b.Buf("buf", 64)
	b.CallAPI("OpenMutexA", Sym("name"))
	b.Test(R(EAX), R(EAX))
	b.Jnz("infected")
	b.CallAPI("CreateMutexA", Sym("name"))
	b.Halt()
	b.Label("infected")
	b.CallAPI("ExitProcess", Imm(0))

	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "t" {
		t.Errorf("name = %q", p.Name)
	}
	// CallAPI with one arg expands to push + callapi.
	if p.Instrs[0].Op != PUSH || p.Instrs[1].Op != CALLAPI {
		t.Errorf("expansion wrong: %v %v", p.Instrs[0].Op, p.Instrs[1].Op)
	}
	if idx, ok := p.Labels()["infected"]; !ok || p.Instrs[idx].Label != "infected" {
		t.Error("label resolution failed")
	}
	if p.FindData("name") == nil || !p.FindData("name").ReadOnly {
		t.Error("rdata item wrong")
	}
	if p.FindData("buf") == nil || p.FindData("buf").ReadOnly || len(p.FindData("buf").Data) != 64 {
		t.Error("buffer item wrong")
	}
	if p.FindData("missing") != nil {
		t.Error("FindData(missing) != nil")
	}
}

func TestCallAPIArgOrder(t *testing.T) {
	b := NewBuilder("t")
	b.RData("a", "a")
	b.RData("c", "c")
	b.CallAPI("F", Sym("a"), Imm(2), Sym("c"))
	p := b.MustBuild()
	// Pushed in reverse: c, 2, a — so [esp] is the first argument.
	if p.Instrs[0].Dst.Sym != "c" || p.Instrs[1].Dst.Imm != 2 || p.Instrs[2].Dst.Sym != "a" {
		t.Errorf("arg push order wrong: %v", p.Instrs[:3])
	}
	if p.Instrs[3].NArgs != 3 {
		t.Errorf("NArgs = %d", p.Instrs[3].NArgs)
	}
}

func TestValidateErrors(t *testing.T) {
	cases := []struct {
		name  string
		build func() (*Program, error)
		want  string
	}{
		{"unresolved jump", func() (*Program, error) {
			return NewBuilder("x").Jmp("nowhere").Build()
		}, "unresolved target"},
		{"unknown symbol", func() (*Program, error) {
			return NewBuilder("x").Push(Sym("ghost")).Build()
		}, "unknown symbol"},
		{"duplicate data", func() (*Program, error) {
			b := NewBuilder("x")
			b.RData("d", "1")
			b.RData("d", "2")
			b.Halt()
			return b.Build()
		}, "duplicate data"},
		{"duplicate label", func() (*Program, error) {
			b := NewBuilder("x")
			b.Label("l").Nop()
			b.Label("l").Nop()
			return b.Build()
		}, "duplicate label"},
		{"callapi without name", func() (*Program, error) {
			b := NewBuilder("x")
			b.Raw(Instr{Op: CALLAPI})
			return b.Build()
		}, "callapi without API name"},
		{"invalid register", func() (*Program, error) {
			b := NewBuilder("x")
			b.Raw(Instr{Op: MOV, Dst: Operand{Kind: KindReg, Reg: 99}, Src: Imm(0)})
			return b.Build()
		}, "invalid register"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := tc.build()
			if err == nil {
				t.Fatal("Build succeeded, want error")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestConsecutiveLabels(t *testing.T) {
	b := NewBuilder("t")
	b.Label("a")
	b.Label("b")
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	labels := p.Labels()
	if _, ok := labels["a"]; !ok {
		t.Error("label a lost")
	}
	if _, ok := labels["b"]; !ok {
		t.Error("label b lost")
	}
}

func TestTrailingLabel(t *testing.T) {
	b := NewBuilder("t")
	b.Jmp("end")
	b.Label("end")
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	// The trailing label is pinned to an emitted NOP.
	if p.Instrs[len(p.Instrs)-1].Label != "end" {
		t.Error("trailing label not pinned")
	}
}

func TestDisassemble(t *testing.T) {
	b := NewBuilder("demo")
	b.RData("s", "hello")
	b.Mov(R(EAX), Imm(5)).Comment("count")
	b.Halt()
	text := b.MustBuild().Disassemble()
	for _, want := range []string{"program demo", ".rdata s:", "mov eax, 0x5", "; count", "halt"} {
		if !strings.Contains(text, want) {
			t.Errorf("disassembly missing %q:\n%s", want, text)
		}
	}
}

func TestBuilderLenAndComment(t *testing.T) {
	b := NewBuilder("t")
	if b.Len() != 0 {
		t.Error("empty Len != 0")
	}
	b.Nop()
	if b.Len() != 1 {
		t.Error("Len after Nop != 1")
	}
	// Comment on empty builder is a no-op (no panic).
	NewBuilder("e").Comment("x")
}

func TestBuilderAllEmitters(t *testing.T) {
	// Exercise every emitter once; the program must validate and carry
	// the expected opcodes in order.
	b := NewBuilder("all-ops")
	b.RBytes("raw", []byte{1, 2, 3})
	b.DataBytes("init", []byte("abc"))
	b.Buf("buf", 8)
	b.Movb(R(EAX), MemSym("init"))
	b.Lea(EBX, MemSym("buf"))
	b.Pop(R(ECX)) // will underflow at runtime; structurally valid
	b.Add(R(EAX), Imm(1))
	b.Sub(R(EAX), Imm(1))
	b.Xor(R(EAX), R(EAX))
	b.And(R(EAX), Imm(0xFF))
	b.Or(R(EAX), Imm(1))
	b.Shl(R(EAX), Imm(2))
	b.Shr(R(EAX), Imm(1))
	b.Inc(R(EDX))
	b.Dec(R(EDX))
	b.Cmp(R(EAX), Imm(0))
	b.Jz("next")
	b.Label("next")
	b.Jl("next2")
	b.Label("next2")
	b.Jge("next3")
	b.Label("next3")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	want := []Opcode{MOVB, LEA, POP, ADD, SUB, XOR, AND, OR, SHL, SHR, INC, DEC, CMP, JZ}
	for i, op := range want {
		if p.Instrs[i].Op != op {
			t.Errorf("instr %d = %v, want %v", i, p.Instrs[i].Op, op)
		}
	}
	if p.FindData("raw") == nil || !p.FindData("raw").ReadOnly {
		t.Error("RBytes item wrong")
	}
	if p.FindData("init") == nil || p.FindData("init").ReadOnly {
		t.Error("DataBytes item wrong")
	}
}
