package isa

import (
	"fmt"
	"strings"
	"sync/atomic"
)

// DataItem is one named blob in a program's data segment.
type DataItem struct {
	Name string
	Data []byte
	// ReadOnly marks .rdata items (static strings); taint analysis
	// classifies identifiers terminating in read-only data as static
	// (paper §IV-C, Figure 2).
	ReadOnly bool
}

// Program is an executable unit: an instruction stream plus data items.
// Programs are immutable once built; the emulator copies data into its
// own memory at load time.
type Program struct {
	// Name identifies the program (sample ID or benign program name).
	Name string
	// Instrs is the instruction stream; the entry point is index 0.
	Instrs []Instr
	// Data lists the data items, laid out in order at load time.
	Data []DataItem

	labels map[string]int // label -> instruction index

	// aux caches one auxiliary artifact derived from the program (the
	// emulator's predecoded execution form). Write-once; safe for
	// concurrent use.
	aux atomic.Value
}

// Aux returns the auxiliary artifact cached on the program, or nil.
// Programs are immutable once built, so an artifact derived from the
// instruction stream and data items never goes stale.
func (p *Program) Aux() any {
	return p.aux.Load()
}

// SetAux publishes an auxiliary artifact and returns the winner: under
// a concurrent first use the first stored value sticks and every caller
// observes it. All callers must store values of one concrete type.
func (p *Program) SetAux(v any) any {
	if p.aux.CompareAndSwap(nil, v) {
		return v
	}
	return p.aux.Load()
}

// Labels returns the mapping from label to instruction index, computing
// it on first use.
func (p *Program) Labels() map[string]int {
	if p.labels == nil {
		p.labels = make(map[string]int)
		for i, in := range p.Instrs {
			if in.Label != "" {
				p.labels[in.Label] = i
			}
		}
	}
	return p.labels
}

// Span is one basic-block instruction range [Start, End): a maximal
// straight-line run entered only at Start.
type Span struct {
	Start, End int
}

// BlockSpans computes the program's basic-block partition. Leaders are
// the entry, every jump/call target, every labelled instruction, and
// every instruction after a control transfer (jump, call, ret, halt) —
// so fallthrough-into-label and dead-code-after-jump both start fresh
// blocks. This is the single leader rule shared by the static CFG
// (static.BuildCFG) and the emulator's block compiler; the program is
// not validated here (unresolved jump targets are simply not leaders).
func (p *Program) BlockSpans() []Span {
	n := len(p.Instrs)
	if n == 0 {
		return nil
	}
	labels := p.Labels()
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Instrs {
		switch {
		case in.Op.IsJump() || in.Op == CALL:
			if t, ok := labels[in.Target]; ok {
				leader[t] = true
			}
			if i+1 < n {
				leader[i+1] = true
			}
		case in.Op == RET || in.Op == HALT:
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Label != "" {
			leader[i] = true
		}
	}
	var spans []Span
	for i := 0; i < n; i++ {
		if leader[i] {
			spans = append(spans, Span{Start: i})
		}
		spans[len(spans)-1].End = i + 1
	}
	return spans
}

// FindData returns the named data item, or nil.
func (p *Program) FindData(name string) *DataItem {
	for i := range p.Data {
		if p.Data[i].Name == name {
			return &p.Data[i]
		}
	}
	return nil
}

// ValidationError is one structural defect found by Validate: which
// program, which instruction (or -1 for data-segment defects), and a
// stable reason code alongside the human-readable detail.
type ValidationError struct {
	// Program is the offending program's name.
	Program string
	// PC is the offending instruction index, or -1 for whole-program
	// and data-segment defects.
	PC int
	// Reason is a stable code: duplicate-label, duplicate-data,
	// invalid-register, unknown-symbol, sym-bounds, bad-target,
	// missing-api, operand-kind.
	Reason string
	// Detail is the human-readable explanation.
	Detail string
}

// Error renders the defect.
func (e *ValidationError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("isa: %s: %s: %s", e.Program, e.Reason, e.Detail)
	}
	return fmt.Sprintf("isa: %s: pc %d: %s: %s", e.Program, e.PC, e.Reason, e.Detail)
}

// operandShape encodes which operand kinds an opcode accepts for its
// destination and source slots. Opcodes absent from the table take no
// operands.
type operandShape struct{ dst, src []OperandKind }

var (
	anyKind   = []OperandKind{KindReg, KindImm, KindMem}
	writable  = []OperandKind{KindReg, KindMem}
	regOnly   = []OperandKind{KindReg}
	memOnly   = []OperandKind{KindMem}
	noOperand = []OperandKind{KindNone}
)

// opShapes maps each opcode to the operand kinds the emulator can
// execute. Immediates are never writable, LEA needs a memory source
// and register destination, and control-flow instructions take their
// target as a label, not an operand.
var opShapes = map[Opcode]operandShape{
	NOP:     {noOperand, noOperand},
	MOV:     {writable, anyKind},
	MOVB:    {writable, anyKind},
	LEA:     {regOnly, memOnly},
	PUSH:    {anyKind, noOperand},
	POP:     {writable, noOperand},
	ADD:     {writable, anyKind},
	SUB:     {writable, anyKind},
	XOR:     {writable, anyKind},
	AND:     {writable, anyKind},
	OR:      {writable, anyKind},
	SHL:     {writable, anyKind},
	SHR:     {writable, anyKind},
	INC:     {writable, noOperand},
	DEC:     {writable, noOperand},
	CMP:     {anyKind, anyKind},
	TEST:    {anyKind, anyKind},
	JMP:     {noOperand, noOperand},
	JZ:      {noOperand, noOperand},
	JNZ:     {noOperand, noOperand},
	JL:      {noOperand, noOperand},
	JGE:     {noOperand, noOperand},
	CALL:    {noOperand, noOperand},
	RET:     {noOperand, noOperand},
	CALLAPI:  {noOperand, noOperand},
	CALLAPIR: {regOnly, noOperand},
	HALT:     {noOperand, noOperand},
}

func kindAllowed(k OperandKind, allowed []OperandKind) bool {
	for _, a := range allowed {
		if k == a {
			return true
		}
	}
	return false
}

// Validate checks structural integrity: jump/call targets resolve,
// symbolic operands name data items and stay inside them, operand
// kinds are consistent with each opcode, registers are valid, CALLAPI
// has an API name, and labels are unique. Failures are typed
// *ValidationError values, so the assembler and the emulator load path
// report the defect instead of misexecuting.
func (p *Program) Validate() error {
	fail := func(pc int, reason, format string, args ...interface{}) error {
		return &ValidationError{Program: p.Name, PC: pc, Reason: reason,
			Detail: fmt.Sprintf(format, args...)}
	}
	seen := make(map[string]bool)
	for i, in := range p.Instrs {
		if in.Label != "" {
			if seen[in.Label] {
				return fail(i, "duplicate-label", "duplicate label %q", in.Label)
			}
			seen[in.Label] = true
		}
	}
	labels := p.Labels()
	dataLen := make(map[string]int, len(p.Data))
	for _, d := range p.Data {
		if _, dup := dataLen[d.Name]; dup {
			return fail(-1, "duplicate-data", "data item %q already defined", d.Name)
		}
		dataLen[d.Name] = len(d.Data)
	}
	checkOperand := func(i int, o Operand, slot string, allowed []OperandKind) error {
		if !kindAllowed(o.Kind, allowed) {
			return fail(i, "operand-kind", "%s does not accept %s operand %s",
				p.Instrs[i].Op, slot, o)
		}
		switch o.Kind {
		case KindReg:
			if !o.Reg.Valid() {
				return fail(i, "invalid-register", "invalid register in %s operand", slot)
			}
		case KindImm, KindMem:
			if o.Sym != "" {
				n, ok := dataLen[o.Sym]
				if !ok {
					return fail(i, "unknown-symbol", "unknown symbol %q", o.Sym)
				}
				// A symbolic displacement must stay inside the item it
				// names (one past the end is tolerated for end-pointer
				// arithmetic); anything further is a latent fault the
				// guard padding would otherwise mask.
				if o.Sym != "" && !o.HasBase && o.Imm > uint32(n) {
					return fail(i, "sym-bounds", "displacement %d exceeds %q (%d bytes)",
						o.Imm, o.Sym, n)
				}
			}
			if o.Kind == KindMem && o.HasBase && !o.Reg.Valid() {
				return fail(i, "invalid-register", "invalid register as memory base")
			}
		}
		return nil
	}
	for i, in := range p.Instrs {
		shape, known := opShapes[in.Op]
		if !known {
			return fail(i, "operand-kind", "unknown opcode %v", in.Op)
		}
		if err := checkOperand(i, in.Dst, "destination", shape.dst); err != nil {
			return err
		}
		if err := checkOperand(i, in.Src, "source", shape.src); err != nil {
			return err
		}
		switch {
		case in.Op == CALLAPI && in.API == "":
			return fail(i, "missing-api", "callapi without API name")
		case in.Op == CALLAPI && in.NArgs < 0:
			return fail(i, "missing-api", "callapi %s with negative NArgs %d", in.API, in.NArgs)
		case in.Op == CALLAPIR && in.NArgs < 0:
			return fail(i, "missing-api", "callapir with negative NArgs %d", in.NArgs)
		case (in.Op.IsJump() || in.Op == CALL) && in.Target == "":
			return fail(i, "bad-target", "%s without target", in.Op)
		case in.Op.IsJump() || in.Op == CALL:
			if _, ok := labels[in.Target]; !ok {
				return fail(i, "bad-target", "unresolved target %q", in.Target)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as assembly text.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d instrs, %d data items)\n",
		p.Name, len(p.Instrs), len(p.Data))
	for _, d := range p.Data {
		seg := ".data"
		if d.ReadOnly {
			seg = ".rdata"
		}
		fmt.Fprintf(&b, "%s %s: %q\n", seg, d.Name, d.Data)
	}
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
