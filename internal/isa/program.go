package isa

import (
	"fmt"
	"strings"
)

// DataItem is one named blob in a program's data segment.
type DataItem struct {
	Name string
	Data []byte
	// ReadOnly marks .rdata items (static strings); taint analysis
	// classifies identifiers terminating in read-only data as static
	// (paper §IV-C, Figure 2).
	ReadOnly bool
}

// Program is an executable unit: an instruction stream plus data items.
// Programs are immutable once built; the emulator copies data into its
// own memory at load time.
type Program struct {
	// Name identifies the program (sample ID or benign program name).
	Name string
	// Instrs is the instruction stream; the entry point is index 0.
	Instrs []Instr
	// Data lists the data items, laid out in order at load time.
	Data []DataItem

	labels map[string]int // label -> instruction index
}

// Labels returns the mapping from label to instruction index, computing
// it on first use.
func (p *Program) Labels() map[string]int {
	if p.labels == nil {
		p.labels = make(map[string]int)
		for i, in := range p.Instrs {
			if in.Label != "" {
				p.labels[in.Label] = i
			}
		}
	}
	return p.labels
}

// FindData returns the named data item, or nil.
func (p *Program) FindData(name string) *DataItem {
	for i := range p.Data {
		if p.Data[i].Name == name {
			return &p.Data[i]
		}
	}
	return nil
}

// Validate checks structural integrity: jump/call targets resolve,
// symbolic operands name data items, registers are valid, CALLAPI has an
// API name, and labels are unique.
func (p *Program) Validate() error {
	seen := make(map[string]bool)
	for i, in := range p.Instrs {
		if in.Label != "" {
			if seen[in.Label] {
				return fmt.Errorf("isa: %s: duplicate label %q at %d", p.Name, in.Label, i)
			}
			seen[in.Label] = true
		}
	}
	labels := p.Labels()
	dataNames := make(map[string]bool, len(p.Data))
	for _, d := range p.Data {
		if dataNames[d.Name] {
			return fmt.Errorf("isa: %s: duplicate data item %q", p.Name, d.Name)
		}
		dataNames[d.Name] = true
	}
	checkOperand := func(i int, o Operand) error {
		switch o.Kind {
		case KindReg:
			if !o.Reg.Valid() {
				return fmt.Errorf("isa: %s: invalid register at %d", p.Name, i)
			}
		case KindImm, KindMem:
			if o.Sym != "" && !dataNames[o.Sym] {
				return fmt.Errorf("isa: %s: unknown symbol %q at %d", p.Name, o.Sym, i)
			}
			if o.Kind == KindMem && o.HasBase && !o.Reg.Valid() {
				return fmt.Errorf("isa: %s: invalid base register at %d", p.Name, i)
			}
		}
		return nil
	}
	for i, in := range p.Instrs {
		if err := checkOperand(i, in.Dst); err != nil {
			return err
		}
		if err := checkOperand(i, in.Src); err != nil {
			return err
		}
		switch {
		case in.Op == CALLAPI && in.API == "":
			return fmt.Errorf("isa: %s: callapi without API name at %d", p.Name, i)
		case (in.Op.IsJump() || in.Op == CALL) && in.Target == "":
			return fmt.Errorf("isa: %s: %s without target at %d", p.Name, in.Op, i)
		case in.Op.IsJump() || in.Op == CALL:
			if _, ok := labels[in.Target]; !ok {
				return fmt.Errorf("isa: %s: unresolved target %q at %d", p.Name, in.Target, i)
			}
		}
	}
	return nil
}

// Disassemble renders the whole program as assembly text.
func (p *Program) Disassemble() string {
	var b strings.Builder
	fmt.Fprintf(&b, "; program %s (%d instrs, %d data items)\n",
		p.Name, len(p.Instrs), len(p.Data))
	for _, d := range p.Data {
		seg := ".data"
		if d.ReadOnly {
			seg = ".rdata"
		}
		fmt.Fprintf(&b, "%s %s: %q\n", seg, d.Name, d.Data)
	}
	for i, in := range p.Instrs {
		fmt.Fprintf(&b, "%4d: %s\n", i, in)
	}
	return b.String()
}
