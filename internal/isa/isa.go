// Package isa defines a compact x86-flavoured instruction set used to
// express the synthetic malware and benign programs this reproduction
// analyses. It plays the role the BIL intermediate language plays in the
// AUTOVAC paper (§VI): a register/flags/memory machine over which dynamic
// taint analysis, predicate detection, backward slicing, and caller-PC
// logging are performed.
//
// The ISA is deliberately small: eight 32-bit registers, three flags,
// 32-bit and 8-bit moves, ALU operations, compare/test, conditional
// jumps, intra-program call/ret, and a CALLAPI instruction that invokes a
// labelled Windows-style API (see package winapi) with stdcall-like
// argument passing on the stack.
package isa

import "fmt"

// Reg is a 32-bit general-purpose register.
type Reg uint8

// The eight general-purpose registers.
const (
	EAX Reg = iota
	EBX
	ECX
	EDX
	ESI
	EDI
	EBP
	ESP
)

// NumRegs is the number of general-purpose registers.
const NumRegs = 8

// String returns the conventional register name.
func (r Reg) String() string {
	names := [...]string{"eax", "ebx", "ecx", "edx", "esi", "edi", "ebp", "esp"}
	if int(r) < len(names) {
		return names[r]
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r is one of the eight registers.
func (r Reg) Valid() bool { return r < NumRegs }

// OperandKind distinguishes the three operand forms.
type OperandKind uint8

// Operand kinds.
const (
	// KindNone marks an absent operand.
	KindNone OperandKind = iota
	// KindReg is a register operand.
	KindReg
	// KindImm is an immediate operand, possibly symbolic (Sym != "").
	KindImm
	// KindMem is a memory operand [Base+Disp] (or absolute [Disp] when
	// HasBase is false, possibly symbolic).
	KindMem
)

// Operand is an instruction operand.
type Operand struct {
	Kind OperandKind
	// Reg is the register for KindReg, or the base register for KindMem
	// when HasBase is set.
	Reg Reg
	// Imm is the immediate value (KindImm) or displacement (KindMem).
	Imm uint32
	// Sym, when non-empty, names a data symbol whose load address is
	// added to Imm at load time.
	Sym string
	// HasBase marks a KindMem operand as register-relative.
	HasBase bool
}

// R returns a register operand.
func R(r Reg) Operand { return Operand{Kind: KindReg, Reg: r} }

// Imm returns an immediate operand.
func Imm(v uint32) Operand { return Operand{Kind: KindImm, Imm: v} }

// Sym returns an immediate operand holding the address of a data symbol.
func Sym(name string) Operand { return Operand{Kind: KindImm, Sym: name} }

// Mem returns a memory operand [base+disp].
func Mem(base Reg, disp int32) Operand {
	return Operand{Kind: KindMem, Reg: base, Imm: uint32(disp), HasBase: true}
}

// MemAbs returns an absolute memory operand [addr].
func MemAbs(addr uint32) Operand { return Operand{Kind: KindMem, Imm: addr} }

// MemSym returns a memory operand addressing a data symbol directly.
func MemSym(name string) Operand { return Operand{Kind: KindMem, Sym: name} }

// String renders the operand in assembly syntax.
func (o Operand) String() string {
	switch o.Kind {
	case KindReg:
		return o.Reg.String()
	case KindImm:
		if o.Sym != "" {
			if o.Imm != 0 {
				return fmt.Sprintf("%s+%d", o.Sym, o.Imm)
			}
			return o.Sym
		}
		return fmt.Sprintf("0x%x", o.Imm)
	case KindMem:
		switch {
		case o.HasBase && o.Imm != 0:
			return fmt.Sprintf("[%s%+d]", o.Reg, int32(o.Imm))
		case o.HasBase:
			return fmt.Sprintf("[%s]", o.Reg)
		case o.Sym != "":
			return fmt.Sprintf("[%s]", o.Sym)
		default:
			return fmt.Sprintf("[0x%x]", o.Imm)
		}
	default:
		return "<none>"
	}
}

// Opcode identifies an instruction.
type Opcode uint8

// Instruction opcodes.
const (
	NOP Opcode = iota
	// Data movement.
	MOV  // mov dst, src (32-bit)
	MOVB // movb dst, src (8-bit)
	LEA  // lea dst, mem (address of memory operand)
	PUSH // push src
	POP  // pop dst
	// ALU.
	ADD
	SUB
	XOR
	AND
	OR
	SHL
	SHR
	INC
	DEC
	// Comparison (set flags only).
	CMP
	TEST
	// Control flow.
	JMP
	JZ  // jump if ZF
	JNZ // jump if !ZF
	JL  // jump if SF (signed less after CMP)
	JGE // jump if !SF
	CALL
	RET
	// CALLAPI invokes a labelled Windows-style API. Arguments are on the
	// stack ([esp] is the first argument); the callee pops them
	// (stdcall). The result is placed in EAX.
	CALLAPI
	// HALT stops execution normally.
	HALT
	// CALLAPIR invokes the API whose resolved address is in the
	// destination register (the indirect form real loaders produce via
	// GetProcAddress or an export-table hash walk). Argument passing and
	// result delivery match CALLAPI; an address that resolves to no
	// known API faults. Appended after HALT so every earlier opcode
	// keeps its numeric value (instruction renderings feed sample
	// fingerprints).
	CALLAPIR
)

// String returns the mnemonic.
func (op Opcode) String() string {
	names := [...]string{
		"nop", "mov", "movb", "lea", "push", "pop",
		"add", "sub", "xor", "and", "or", "shl", "shr", "inc", "dec",
		"cmp", "test",
		"jmp", "jz", "jnz", "jl", "jge", "call", "ret",
		"callapi", "halt", "callapir",
	}
	if int(op) < len(names) {
		return names[op]
	}
	return fmt.Sprintf("op(%d)", uint8(op))
}

// IsJump reports whether the opcode is a (conditional) jump.
func (op Opcode) IsJump() bool { return op >= JMP && op <= JGE }

// IsPredicate reports whether the opcode is a comparison that sets flags
// from data operands. Tainted operands reaching a predicate flag the
// sample as resource-sensitive (paper §III-B).
func (op Opcode) IsPredicate() bool { return op == CMP || op == TEST }

// Instr is one instruction.
type Instr struct {
	Op  Opcode
	Dst Operand
	Src Operand
	// Target is the label for jumps and intra-program calls.
	Target string
	// API is the API name for CALLAPI.
	API string
	// NArgs is the number of stack arguments for CALLAPI and CALLAPIR.
	NArgs int
	// Label, when non-empty, names this instruction as a jump target.
	Label string
	// Comment is carried through to disassembly.
	Comment string
}

// String renders the instruction in assembly syntax.
func (in Instr) String() string {
	var s string
	switch {
	case in.Op == CALLAPI:
		s = fmt.Sprintf("callapi %s/%d", in.API, in.NArgs)
	case in.Op == CALLAPIR:
		s = fmt.Sprintf("callapir %s/%d", in.Dst, in.NArgs)
	case in.Op == CALL || in.Op.IsJump():
		s = fmt.Sprintf("%s %s", in.Op, in.Target)
	case in.Dst.Kind != KindNone && in.Src.Kind != KindNone:
		s = fmt.Sprintf("%s %s, %s", in.Op, in.Dst, in.Src)
	case in.Dst.Kind != KindNone:
		s = fmt.Sprintf("%s %s", in.Op, in.Dst)
	default:
		s = in.Op.String()
	}
	if in.Label != "" {
		s = in.Label + ": " + s
	}
	if in.Comment != "" {
		s += " ; " + in.Comment
	}
	return s
}
