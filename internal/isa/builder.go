package isa

import "fmt"

// Builder assembles Programs with a fluent interface. It is the layer the
// synthetic-malware corpus (package malware) uses to express
// resource-sensitive behaviours.
//
// Builders are not safe for concurrent use.
type Builder struct {
	name    string
	instrs  []Instr
	data    []DataItem
	pending string // label awaiting its instruction
	errs    []error
}

// NewBuilder creates a builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name}
}

// RData adds a read-only string to the data segment (a .rdata item),
// NUL-terminated, and returns its symbol name.
func (b *Builder) RData(name, s string) string {
	b.addData(name, append([]byte(s), 0), true)
	return name
}

// RBytes adds read-only raw bytes to the data segment.
func (b *Builder) RBytes(name string, data []byte) string {
	b.addData(name, data, true)
	return name
}

// Buf adds a writable zero-filled buffer of the given size.
func (b *Builder) Buf(name string, size int) string {
	b.addData(name, make([]byte, size), false)
	return name
}

// DataBytes adds a writable initialized data item.
func (b *Builder) DataBytes(name string, data []byte) string {
	b.addData(name, data, false)
	return name
}

func (b *Builder) addData(name string, data []byte, ro bool) {
	for _, d := range b.data {
		if d.Name == name {
			b.errs = append(b.errs, fmt.Errorf("isa: duplicate data %q", name))
			return
		}
	}
	b.data = append(b.data, DataItem{Name: name, Data: data, ReadOnly: ro})
}

// Label attaches a label to the next emitted instruction.
func (b *Builder) Label(l string) *Builder {
	if b.pending != "" {
		// Two consecutive labels: pin the first to a NOP.
		b.emit(Instr{Op: NOP})
	}
	b.pending = l
	return b
}

func (b *Builder) emit(in Instr) *Builder {
	if b.pending != "" {
		in.Label = b.pending
		b.pending = ""
	}
	b.instrs = append(b.instrs, in)
	return b
}

// Comment attaches a comment to the most recently emitted instruction.
func (b *Builder) Comment(c string) *Builder {
	if n := len(b.instrs); n > 0 {
		b.instrs[n-1].Comment = c
	}
	return b
}

// Nop emits a no-op.
func (b *Builder) Nop() *Builder { return b.emit(Instr{Op: NOP}) }

// Mov emits a 32-bit move.
func (b *Builder) Mov(dst, src Operand) *Builder {
	return b.emit(Instr{Op: MOV, Dst: dst, Src: src})
}

// Movb emits an 8-bit move.
func (b *Builder) Movb(dst, src Operand) *Builder {
	return b.emit(Instr{Op: MOVB, Dst: dst, Src: src})
}

// Lea emits a load-effective-address.
func (b *Builder) Lea(dst Reg, mem Operand) *Builder {
	return b.emit(Instr{Op: LEA, Dst: R(dst), Src: mem})
}

// Push emits a stack push.
func (b *Builder) Push(src Operand) *Builder {
	return b.emit(Instr{Op: PUSH, Dst: src})
}

// Pop emits a stack pop.
func (b *Builder) Pop(dst Operand) *Builder {
	return b.emit(Instr{Op: POP, Dst: dst})
}

// Add emits dst += src.
func (b *Builder) Add(dst, src Operand) *Builder {
	return b.emit(Instr{Op: ADD, Dst: dst, Src: src})
}

// Sub emits dst -= src.
func (b *Builder) Sub(dst, src Operand) *Builder {
	return b.emit(Instr{Op: SUB, Dst: dst, Src: src})
}

// Xor emits dst ^= src.
func (b *Builder) Xor(dst, src Operand) *Builder {
	return b.emit(Instr{Op: XOR, Dst: dst, Src: src})
}

// And emits dst &= src.
func (b *Builder) And(dst, src Operand) *Builder {
	return b.emit(Instr{Op: AND, Dst: dst, Src: src})
}

// Or emits dst |= src.
func (b *Builder) Or(dst, src Operand) *Builder {
	return b.emit(Instr{Op: OR, Dst: dst, Src: src})
}

// Shl emits dst <<= src.
func (b *Builder) Shl(dst, src Operand) *Builder {
	return b.emit(Instr{Op: SHL, Dst: dst, Src: src})
}

// Shr emits dst >>= src.
func (b *Builder) Shr(dst, src Operand) *Builder {
	return b.emit(Instr{Op: SHR, Dst: dst, Src: src})
}

// Inc emits dst++.
func (b *Builder) Inc(dst Operand) *Builder {
	return b.emit(Instr{Op: INC, Dst: dst})
}

// Dec emits dst--.
func (b *Builder) Dec(dst Operand) *Builder {
	return b.emit(Instr{Op: DEC, Dst: dst})
}

// Cmp emits a compare (sets flags).
func (b *Builder) Cmp(a, c Operand) *Builder {
	return b.emit(Instr{Op: CMP, Dst: a, Src: c})
}

// Test emits a bitwise test (sets flags).
func (b *Builder) Test(a, c Operand) *Builder {
	return b.emit(Instr{Op: TEST, Dst: a, Src: c})
}

// Jmp emits an unconditional jump.
func (b *Builder) Jmp(target string) *Builder {
	return b.emit(Instr{Op: JMP, Target: target})
}

// Jz emits jump-if-zero.
func (b *Builder) Jz(target string) *Builder {
	return b.emit(Instr{Op: JZ, Target: target})
}

// Jnz emits jump-if-not-zero.
func (b *Builder) Jnz(target string) *Builder {
	return b.emit(Instr{Op: JNZ, Target: target})
}

// Jl emits jump-if-less.
func (b *Builder) Jl(target string) *Builder {
	return b.emit(Instr{Op: JL, Target: target})
}

// Jge emits jump-if-greater-or-equal.
func (b *Builder) Jge(target string) *Builder {
	return b.emit(Instr{Op: JGE, Target: target})
}

// Call emits an intra-program call.
func (b *Builder) Call(target string) *Builder {
	return b.emit(Instr{Op: CALL, Target: target})
}

// Ret emits a return.
func (b *Builder) Ret() *Builder { return b.emit(Instr{Op: RET}) }

// CallAPI emits an API call that pushes the given arguments (first
// argument pushed last, so it sits at [esp]) and invokes the API. The
// callee pops the arguments; the result lands in EAX.
func (b *Builder) CallAPI(api string, args ...Operand) *Builder {
	for i := len(args) - 1; i >= 0; i-- {
		b.Push(args[i])
	}
	return b.emit(Instr{Op: CALLAPI, API: api, NArgs: len(args)})
}

// CallAPIR emits an indirect API call through the register r, which
// must hold an address previously resolved via GetProcAddress or an
// export-table hash walk. Arguments are pushed exactly as CallAPI does
// (first argument pushed last); the callee pops them and the result
// lands in EAX.
func (b *Builder) CallAPIR(r Reg, args ...Operand) *Builder {
	for i := len(args) - 1; i >= 0; i-- {
		b.Push(args[i])
	}
	return b.emit(Instr{Op: CALLAPIR, Dst: R(r), NArgs: len(args)})
}

// Halt emits a normal program stop.
func (b *Builder) Halt() *Builder { return b.emit(Instr{Op: HALT}) }

// Raw emits a pre-constructed instruction (used by the variant mutator).
func (b *Builder) Raw(in Instr) *Builder { return b.emit(in) }

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.instrs) }

// Build finalizes the program and validates it.
func (b *Builder) Build() (*Program, error) {
	if b.pending != "" {
		b.emit(Instr{Op: NOP})
	}
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	p := &Program{Name: b.name, Instrs: b.instrs, Data: b.data}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build that panics on error; for use in tests and the
// static corpus templates whose structure is fixed at compile time.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
