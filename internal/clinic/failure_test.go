package clinic

import (
	"testing"

	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func TestEmptyBenignSuitePassesTrivially(t *testing.T) {
	// A clinic with no benign programs cannot observe interference; the
	// vaccines pass by default (callers are expected to provide the
	// suite — this pins the degenerate behaviour).
	rep, err := Run([]vaccine.Vaccine{mkVaccine(winenv.KindMutex, "X")}, nil, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passed) != 1 || rep.ProgramsTested != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestUndeployableVaccineRejected(t *testing.T) {
	benign := suite(t, 2)
	bad := mkVaccine(winenv.KindMutex, "X")
	bad.Identifier = "" // invalid: static without identifier
	rep, err := Run([]vaccine.Vaccine{bad}, benign, Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 {
		t.Fatalf("invalid vaccine not rejected: %+v", rep)
	}
}
