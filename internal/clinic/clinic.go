// Package clinic implements the Malware Clinic Test of the paper's
// §IV-D and §VI-E: before a vaccine ships, it is injected into a test
// environment running the benign-software suite, and any interference
// with normal program behaviour disqualifies it ("If it affects the
// normal usage, it will be discarded").
//
// Interference is detected by differential analysis: each benign
// program runs once in a clean environment and once in the vaccinated
// one; if the two API traces fail to align completely, or the program's
// exit status changes, the vaccine is rejected.
package clinic

import (
	"fmt"

	"autovac/internal/alignment"
	"autovac/internal/deploy"
	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// Rejection explains why a vaccine failed the clinic test.
type Rejection struct {
	// Vaccine is the rejected vaccine's ID.
	Vaccine string
	// Program is the benign program it interfered with.
	Program string
	// Reason describes the interference.
	Reason string
}

// String renders the rejection.
func (r Rejection) String() string {
	return fmt.Sprintf("%s interferes with %s: %s", r.Vaccine, r.Program, r.Reason)
}

// Report is the clinic-test outcome.
type Report struct {
	// Passed are the vaccines that did not disturb any benign program.
	Passed []vaccine.Vaccine
	// Rejected are the disqualified vaccines with their evidence.
	Rejected []Rejection
	// ProgramsTested is the size of the benign suite exercised.
	ProgramsTested int
}

// Config parameterizes a clinic run.
type Config struct {
	// Seed drives the emulated executions.
	Seed uint64
	// MaxSteps bounds each benign execution.
	MaxSteps int
	// Identity is the test machine's identity.
	Identity winenv.HostIdentity
}

// Run executes the clinic test: every candidate vaccine is deployed
// (direct injection or daemon, per its delivery class) into an
// environment exercising the whole benign suite. Vaccines are tested
// individually so one bad vaccine cannot shadow another.
func Run(vaccines []vaccine.Vaccine, benign []*malware.Sample, cfg Config) (*Report, error) {
	if cfg.Identity == (winenv.HostIdentity{}) {
		cfg.Identity = winenv.DefaultIdentity()
	}
	rep := &Report{ProgramsTested: len(benign)}

	// Baseline traces per benign program, against a pristine host.
	baselines := make([]*trace.Trace, len(benign))
	for i, b := range benign {
		env := winenv.New(cfg.Identity)
		malware.PrepareBenignEnv(env)
		tr, err := emu.Run(b.Program, env, emu.Options{Seed: cfg.Seed, MaxSteps: cfg.MaxSteps})
		if err != nil {
			return nil, fmt.Errorf("clinic: baseline %s: %w", b.Name(), err)
		}
		baselines[i] = tr
	}

	for i := range vaccines {
		v := vaccines[i]
		if rej := testOne(&v, benign, baselines, cfg); rej != nil {
			rep.Rejected = append(rep.Rejected, *rej)
		} else {
			rep.Passed = append(rep.Passed, v)
		}
	}
	return rep, nil
}

// testOne deploys a single vaccine and runs the suite against it. Each
// benign program gets a freshly vaccinated environment (environment
// clones do not carry interception hooks, and program runs must not
// interfere with each other).
func testOne(v *vaccine.Vaccine, benign []*malware.Sample, baselines []*trace.Trace, cfg Config) *Rejection {
	for i, b := range benign {
		env := winenv.New(cfg.Identity)
		malware.PrepareBenignEnv(env)
		d := deploy.NewDaemon(env, cfg.Seed)
		if err := d.Install(*v); err != nil {
			return &Rejection{Vaccine: v.ID, Reason: fmt.Sprintf("deployment failed: %v", err)}
		}
		tr, err := emu.Run(b.Program, env, emu.Options{Seed: cfg.Seed, MaxSteps: cfg.MaxSteps})
		if err != nil {
			return &Rejection{Vaccine: v.ID, Program: b.Name(), Reason: err.Error()}
		}
		if rej := compare(baselines[i], tr); rej != "" {
			return &Rejection{Vaccine: v.ID, Program: b.Name(), Reason: rej}
		}
	}
	return nil
}

// compare decides whether a vaccinated run deviates from the baseline.
func compare(base, got *trace.Trace) string {
	if base.Exit != got.Exit {
		return fmt.Sprintf("exit changed: %v -> %v", base.Exit, got.Exit)
	}
	d := alignment.AlignTraces(got, base)
	if !d.Empty() {
		detail := ""
		if len(d.DeltaN) > 0 {
			detail = fmt.Sprintf("; lost %s", d.DeltaN[0].API)
		} else if len(d.DeltaM) > 0 {
			detail = fmt.Sprintf("; gained %s", d.DeltaM[0].API)
		}
		return fmt.Sprintf("trace diverged (Δ=%d/%d%s)", len(d.DeltaM), len(d.DeltaN), detail)
	}
	return ""
}
