package clinic

import (
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// suite returns a small benign suite (full corpus is exercised in the
// integration tests; the clinic unit tests keep runtimes tight).
func suite(t *testing.T, n int) []*malware.Sample {
	t.Helper()
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	if n > len(benign) {
		n = len(benign)
	}
	return benign[:n]
}

func mkVaccine(kind winenv.ResourceKind, identifier string) vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: "test/" + kind.String() + "/0", Sample: "test-sample",
		Resource: kind, Identifier: identifier,
		Class: determinism.Static, Op: "open", API: "OpenMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection,
	}
}

func TestCleanVaccinePasses(t *testing.T) {
	benign := suite(t, 8)
	rep, err := Run([]vaccine.Vaccine{
		mkVaccine(winenv.KindMutex, "!VoqA.I4"),
		mkVaccine(winenv.KindFile, `C:\Windows\system32\sdra64.exe`),
	}, benign, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 0 {
		t.Fatalf("clean vaccines rejected: %v", rep.Rejected)
	}
	if len(rep.Passed) != 2 || rep.ProgramsTested != 8 {
		t.Errorf("passed=%d tested=%d", len(rep.Passed), rep.ProgramsTested)
	}
}

func TestCollidingMutexVaccineRejected(t *testing.T) {
	// Firefox's single-instance mutex as a "vaccine" would make Firefox
	// believe it is already running and exit.
	benign := suite(t, 3) // firefox is first
	rep, err := Run([]vaccine.Vaccine{
		mkVaccine(winenv.KindMutex, "FirefoxSingletonMutex"),
	}, benign, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 {
		t.Fatalf("colliding vaccine not rejected: %+v", rep)
	}
	rej := rep.Rejected[0]
	if rej.Program != "benign-firefox" {
		t.Errorf("rejection = %+v", rej)
	}
	if !strings.Contains(rej.String(), "benign-firefox") {
		t.Errorf("String() = %q", rej.String())
	}
}

func TestBlockingBenignConfigRejected(t *testing.T) {
	// Blocking access to a benign program's config file disturbs it.
	benign := suite(t, 3)
	v := mkVaccine(winenv.KindFile, `C:\Users\alice\AppData\firefox\profiles.ini`)
	v.Polarity = vaccine.BlockAccess
	rep, err := Run([]vaccine.Vaccine{v}, benign, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 {
		t.Fatalf("config-blocking vaccine not rejected: %+v", rep.Passed)
	}
}

func TestPartialStaticDaemonVaccineInClinic(t *testing.T) {
	benign := suite(t, 6)
	// A daemon pattern colliding with benign window classes must be
	// rejected; an exclusive one passes.
	bad := vaccine.Vaccine{
		ID: "bad/window/0", Sample: "s",
		Resource: winenv.KindWindow, Pattern: "Mozilla*",
		Class: determinism.PartialStatic, Op: "create", API: "CreateWindowExA",
		Effect: impact.Full, Polarity: vaccine.BlockAccess,
		Delivery: vaccine.VaccineDaemon,
	}
	good := vaccine.Vaccine{
		ID: "good/mutex/0", Sample: "s",
		Resource: winenv.KindMutex, Pattern: "WORMX-*",
		Class: determinism.PartialStatic, Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.VaccineDaemon,
	}
	rep, err := Run([]vaccine.Vaccine{bad, good}, benign, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Rejected) != 1 || rep.Rejected[0].Vaccine != "bad/window/0" {
		t.Fatalf("rejections = %+v", rep.Rejected)
	}
	if len(rep.Passed) != 1 || rep.Passed[0].ID != "good/mutex/0" {
		t.Fatalf("passed = %+v", rep.Passed)
	}
}

func TestOneBadVaccineDoesNotShadowOthers(t *testing.T) {
	benign := suite(t, 3)
	rep, err := Run([]vaccine.Vaccine{
		mkVaccine(winenv.KindMutex, "FirefoxSingletonMutex"), // bad
		mkVaccine(winenv.KindMutex, "!VoqA.I4"),              // good
	}, benign, Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Passed) != 1 || len(rep.Rejected) != 1 {
		t.Fatalf("passed=%d rejected=%d", len(rep.Passed), len(rep.Rejected))
	}
}
