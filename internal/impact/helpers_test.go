package impact

import (
	"testing"

	"autovac/internal/alignment"
	"autovac/internal/trace"
)

func TestFlipEffectsClassification(t *testing.T) {
	flip := func(api, kind, ident string, argStr string) alignment.Flip {
		nat := trace.APICall{API: api, ResourceKind: kind, Identifier: ident, Success: true}
		if argStr != "" {
			nat.Args = []trace.ArgValue{{Str: argStr, Static: true}}
		}
		mut := nat
		mut.Success = false
		return alignment.Flip{Mutated: mut, Natural: nat}
	}
	cases := []struct {
		name string
		f    alignment.Flip
		want Effect
	}{
		{"sys file", flip("CreateFileA", "file", `C:\d\x.SYS`, ""), TypeI},
		{"create service with sys binary", flip("CreateServiceA", "service", "drv", `C:\d\x.sys`), TypeI},
		{"plain service", flip("CreateServiceA", "service", "svc", `C:\bin\x.exe`), TypeIII},
		{"start service", flip("StartServiceA", "service", "svc", ""), TypeIII},
		{"run value", flip("RegSetValueExA", "registry", `HKLM\...\Run\evil`, ""), TypeIII},
		{"winlogon", flip("RegSetValueExA", "registry", `HKLM\...\Winlogon\Shell`, ""), TypeIII},
		{"system ini", flip("WriteFile", "file", `C:\Windows\system.ini`, ""), TypeIII},
		{"wpm", flip("WriteProcessMemory", "process", "explorer.exe", ""), TypeIV},
		{"remote thread", flip("CreateRemoteThread", "process", "svchost.exe", ""), TypeIV},
		{"connect", flip("connect", "", "", ""), TypeII},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := flipEffects([]alignment.Flip{tc.f})
			if len(got) != 1 || got[0] != tc.want {
				t.Errorf("flipEffects = %v, want [%v]", got, tc.want)
			}
		})
	}

	// A success gained (failure -> success) is not a frustrated op.
	gained := alignment.Flip{
		Mutated: trace.APICall{API: "connect", Success: true},
		Natural: trace.APICall{API: "connect", Success: false},
	}
	if got := flipEffects([]alignment.Flip{gained}); len(got) != 0 {
		t.Errorf("gained success classified: %v", got)
	}

	// Unrelated flips classify as nothing.
	other := flip("ReadFile", "file", `C:\data\notes.txt`, "")
	if got := flipEffects([]alignment.Flip{other}); len(got) != 0 {
		t.Errorf("benign flip classified: %v", got)
	}
}

func TestArgsMention(t *testing.T) {
	c := trace.APICall{Args: []trace.ArgValue{
		{Raw: 1}, {Str: `C:\Windows\system32\DRIVER\x.SYS`},
	}}
	if !argsMention(c, ".sys") {
		t.Error("argsMention missed case-insensitive match")
	}
	if argsMention(c, ".dll") {
		t.Error("argsMention false positive")
	}
}

func TestSortEffects(t *testing.T) {
	es := []Effect{TypeIV, Full, TypeII}
	sortEffects(es)
	if es[0] != Full || es[1] != TypeII || es[2] != TypeIV {
		t.Errorf("sorted = %v", es)
	}
}

func TestHasKernelEvidence(t *testing.T) {
	if hasKernelEvidence([]trace.APICall{{API: "OpenSCManagerA"}}) {
		t.Error("OpenSCManager alone counted as kernel evidence")
	}
	if !hasKernelEvidence([]trace.APICall{{API: "CreateServiceA"}}) {
		t.Error("CreateService not counted")
	}
	if !hasKernelEvidence([]trace.APICall{{ResourceKind: "file", Identifier: `C:\d\a.sys`, API: "CreateFileA"}}) {
		t.Error(".sys file op not counted")
	}
}

func TestLostProcessInjectionVariants(t *testing.T) {
	if !lostProcessInjection([]trace.APICall{{API: "CreateProcessA", Identifier: `C:\mal\x.exe`}}) {
		t.Error("lost component start not detected")
	}
	if lostProcessInjection([]trace.APICall{{API: "OpenProcessByNameA", Identifier: "randomapp.exe"}}) {
		t.Error("non-victim open counted")
	}
	if !lostProcessInjection([]trace.APICall{{API: "WriteProcessMemory", Identifier: ""}}) {
		t.Error("WPM with unresolved victim not counted")
	}
}

func TestClassifyWithGreedyOption(t *testing.T) {
	natural := &trace.Trace{Calls: []trace.APICall{
		{API: "OpenMutexA", CallerPC: 1, Identifier: "m", ResourceKind: "mutex"},
		{API: "connect", CallerPC: 5},
	}, Exit: trace.ExitHalt}
	mutated := &trace.Trace{Calls: []trace.APICall{
		{API: "OpenMutexA", CallerPC: 1, Identifier: "m", ResourceKind: "mutex"},
		{API: "ExitProcess", CallerPC: 9},
	}, Exit: trace.ExitProcess}
	for _, opts := range []Options{{}, {Greedy: true}, {DisableFlips: true}} {
		r := ClassifyWith(mutated, natural, opts)
		if r.Primary != Full {
			t.Errorf("opts %+v: primary = %v", opts, r.Primary)
		}
	}
}
