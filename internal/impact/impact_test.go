package impact

import (
	"testing"

	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// runPair executes a family sample normally and with a mutation,
// returning both traces.
func runPair(t *testing.T, f malware.Family, mu []emu.Mutation) (*trace.Trace, *trace.Trace) {
	t.Helper()
	g := malware.NewGenerator(1)
	s, err := g.FamilySample(f)
	if err != nil {
		t.Fatal(err)
	}
	natural, err := emu.Run(s.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	mutated, err := emu.Run(s.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: 4, Mutations: mu})
	if err != nil {
		t.Fatal(err)
	}
	return mutated, natural
}

func TestEffectStrings(t *testing.T) {
	cases := map[Effect]string{
		NoImmunization: "None", Full: "Full", TypeI: "Type-I",
		TypeII: "Type-II", TypeIII: "Type-III", TypeIV: "Type-IV",
	}
	for e, want := range cases {
		if got := e.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", e, got, want)
		}
	}
	if Full.Partial() || !TypeII.Partial() || NoImmunization.Partial() {
		t.Error("Partial() wrong")
	}
}

func TestFullImmunizationPoisonIvyMarker(t *testing.T) {
	// Simulating the !VoqA.I4 marker makes PoisonIvy exit immediately.
	mutated, natural := runPair(t, malware.PoisonIvy, []emu.Mutation{
		{API: "OpenMutexA", CallerPC: -1, Identifier: "!VoqA.I4", Mode: emu.ForceSuccess},
	})
	r := Classify(mutated, natural)
	if r.Primary != Full {
		t.Fatalf("primary = %v, effects = %v", r.Primary, r.Effects)
	}
	if !r.Immunizing() || !r.Has(Full) {
		t.Error("result accessors wrong")
	}
}

func TestFullImmunizationZeusFileDenied(t *testing.T) {
	// Blocking sdra64.exe creation terminates Zeus.
	mutated, natural := runPair(t, malware.Zeus, []emu.Mutation{
		{API: "CreateFileA", CallerPC: -1,
			Identifier: `C:\Windows\system32\sdra64.exe`, Mode: emu.ForceFailure},
	})
	r := Classify(mutated, natural)
	if r.Primary != Full {
		t.Fatalf("primary = %v, effects = %v", r.Primary, r.Effects)
	}
}

func TestPartialTypeIVZeusMutex(t *testing.T) {
	// Simulating _AVIRA_2109 removes injection + winlogon persistence
	// but not the C&C loop.
	mutated, natural := runPair(t, malware.Zeus, []emu.Mutation{
		{API: "OpenMutexA", CallerPC: -1, Identifier: "_AVIRA_2109", Mode: emu.ForceSuccess},
	})
	r := Classify(mutated, natural)
	if r.Primary == Full {
		t.Fatalf("mutex vaccine classified Full; effects = %v", r.Effects)
	}
	if !r.Has(TypeIV) {
		t.Errorf("Type-IV not detected; effects = %v", r.Effects)
	}
	if !r.Has(TypeIII) {
		t.Errorf("Type-III (winlogon persistence) not detected; effects = %v", r.Effects)
	}
	if r.Has(TypeII) {
		t.Errorf("Type-II wrongly detected (C&C unaffected); effects = %v", r.Effects)
	}
}

func TestPartialTypeIIQakbotUpdateMarker(t *testing.T) {
	// Qakbot's second registry marker guards only its C&C loop.
	mutated, natural := runPair(t, malware.Qakbot, []emu.Mutation{
		{API: "RegOpenKeyExA", CallerPC: -1,
			Identifier: `HKCU\Software\Microsoft\SqtUpd`, Mode: emu.ForceSuccess},
	})
	r := Classify(mutated, natural)
	if r.Primary != TypeII {
		t.Fatalf("primary = %v, effects = %v", r.Primary, r.Effects)
	}
}

func TestPartialTypeISalityDriver(t *testing.T) {
	// Blocking the .sys drop disables Sality's kernel injection.
	mutated, natural := runPair(t, malware.Sality, []emu.Mutation{
		{API: "CreateFileA", CallerPC: -1,
			Identifier: `C:\Windows\system32\drivers\fqnx.sys`, Mode: emu.ForceFailure},
	})
	r := Classify(mutated, natural)
	if !r.Has(TypeI) {
		t.Fatalf("Type-I not detected; primary = %v, effects = %v", r.Primary, r.Effects)
	}
}

func TestNoImmunizationOnUnrelatedMutation(t *testing.T) {
	// Mutating a call the malware never makes changes nothing.
	mutated, natural := runPair(t, malware.Zeus, []emu.Mutation{
		{API: "OpenMutexA", CallerPC: -1, Identifier: "not-used-anywhere", Mode: emu.ForceSuccess},
	})
	r := Classify(mutated, natural)
	if r.Immunizing() {
		t.Fatalf("unrelated mutation classified %v; Δm=%d Δn=%d",
			r.Effects, len(r.Diff.DeltaM), len(r.Diff.DeltaN))
	}
	if !r.Diff.Empty() {
		t.Errorf("expected empty diff, got Δm=%d Δn=%d", len(r.Diff.DeltaM), len(r.Diff.DeltaN))
	}
}

func TestBDR(t *testing.T) {
	mk := func(n int) *trace.Trace {
		tr := &trace.Trace{}
		for i := 0; i < n; i++ {
			tr.Calls = append(tr.Calls, trace.APICall{API: "X"})
		}
		return tr
	}
	cases := []struct {
		nn, nd int
		want   float64
	}{
		{100, 30, 0.7},
		{100, 100, 0},
		{100, 120, 0}, // more calls after vaccination: no reduction
		{0, 0, 0},
		{10, 0, 1.0},
	}
	for _, tc := range cases {
		if got := BDR(mk(tc.nn), mk(tc.nd)); got != tc.want {
			t.Errorf("BDR(%d,%d) = %v, want %v", tc.nn, tc.nd, got, tc.want)
		}
	}
}

func TestBDREndToEnd(t *testing.T) {
	// PoisonIvy with the marker vaccine: BDR should be large (the whole
	// payload disappears).
	g := malware.NewGenerator(1)
	s, _ := g.FamilySample(malware.PoisonIvy)
	normal, _ := emu.Run(s.Program, winenv.New(winenv.DefaultIdentity()), emu.Options{Seed: 4})
	env := winenv.New(winenv.DefaultIdentity())
	env.Inject(winenv.Resource{Kind: winenv.KindMutex, Name: "!VoqA.I4"})
	deployed, _ := emu.Run(s.Program, env, emu.Options{Seed: 4})
	bdr := BDR(normal, deployed)
	if bdr < 0.5 {
		t.Errorf("full-immunization BDR = %.2f, want >= 0.5", bdr)
	}
	if bdr >= 1.0 {
		t.Errorf("BDR = %.2f; the pre-exit probe still counts (paper: not 100%%)", bdr)
	}
}
