// Package impact classifies what a resource mutation did to a malware
// execution — the immunization-effect taxonomy of the paper's §IV-B:
// full immunization (the malware kills itself) and the four partial
// types (disable kernel injection, disable massive network behaviour,
// disable persistence, disable benign-process injection). It also
// computes the Behavior Decreasing Ratio (BDR) of §VI-E.
package impact

import (
	"strings"

	"autovac/internal/alignment"
	"autovac/internal/trace"
	"autovac/internal/winapi"
)

// Effect is one immunization effect.
type Effect int

// Effects, in priority order: when a mutation produces several, the
// highest-priority one is the vaccine's primary classification.
const (
	// NoImmunization means the mutation did not meaningfully change
	// the malware's behaviour.
	NoImmunization Effect = iota
	// Full immunization: the malware terminated itself.
	Full
	// TypeI: kernel injection disabled (driver service registration
	// lost).
	TypeI
	// TypeII: massive network behaviour disabled (C&C, propagation).
	TypeII
	// TypeIII: persistence disabled (Run keys, startup, services,
	// winlogon).
	TypeIII
	// TypeIV: benign-process injection disabled.
	TypeIV
)

// String names the effect as the paper's tables do.
func (e Effect) String() string {
	switch e {
	case Full:
		return "Full"
	case TypeI:
		return "Type-I"
	case TypeII:
		return "Type-II"
	case TypeIII:
		return "Type-III"
	case TypeIV:
		return "Type-IV"
	default:
		return "None"
	}
}

// Partial reports whether the effect is one of the four partial types.
func (e Effect) Partial() bool { return e >= TypeI && e <= TypeIV }

// Result is the classification of one mutation experiment.
type Result struct {
	// Primary is the highest-priority effect observed.
	Primary Effect
	// Effects lists every observed effect (ordered by priority).
	Effects []Effect
	// Diff is the alignment difference the classification derives from.
	Diff alignment.Diff
}

// Immunizing reports whether the mutation achieved any immunization.
func (r Result) Immunizing() bool { return r.Primary != NoImmunization }

// Has reports whether a specific effect was observed.
func (r Result) Has(e Effect) bool {
	for _, x := range r.Effects {
		if x == e {
			return true
		}
	}
	return false
}

// Options selects analysis variants for ablation studies.
type Options struct {
	// Greedy uses the paper's literal Algorithm 1 (greedy anchor scan)
	// instead of the LCS alignment.
	Greedy bool
	// DisableFlips ignores success→failure flips of aligned calls and
	// classifies from call losses only (the paper's original scheme).
	DisableFlips bool
}

// Classify aligns the mutated trace against the natural one and derives
// the immunization effects.
func Classify(mutated, natural *trace.Trace) Result {
	return ClassifyWith(mutated, natural, Options{})
}

// ClassifyWith is Classify with explicit analysis options.
func ClassifyWith(mutated, natural *trace.Trace, opts Options) Result {
	var d alignment.Diff
	if opts.Greedy {
		d = alignment.AlignGreedy(mutated.Calls, natural.Calls)
	} else {
		d = alignment.AlignTraces(mutated, natural)
	}
	var effects []Effect

	// Full immunization: the mutated run newly terminates itself
	// (termination API in Δm), or it self-terminated while the natural
	// run did not.
	if alignment.ContainsAPI(d.DeltaM, winapi.TerminationAPIs()...) ||
		(mutated.Exit == trace.ExitProcess && natural.Exit != trace.ExitProcess) {
		effects = append(effects, Full)
	}

	// Type-I: kernel-injection activity lost. Either the SCM/driver
	// registration calls disappear, or file operations on a .sys path
	// disappear.
	lostKernel := alignment.ContainsAPI(d.DeltaN, winapi.KernelInjectionAPIs()...) &&
		!alignment.ContainsAPI(d.DeltaM, winapi.KernelInjectionAPIs()...)
	if !lostKernel {
		for _, c := range d.DeltaN {
			if c.ResourceKind == "file" && strings.HasSuffix(strings.ToLower(c.Identifier), ".sys") {
				lostKernel = true
				break
			}
		}
	}
	if lostKernel && hasKernelEvidence(d.DeltaN) {
		effects = append(effects, TypeI)
	}

	// Type-II: the natural run is full of network calls the mutated run
	// no longer performs.
	if alignment.ContainsAPI(d.DeltaN, winapi.NetworkAPIs()...) &&
		!alignment.ContainsAPI(d.DeltaM, winapi.NetworkAPIs()...) {
		effects = append(effects, TypeII)
	}

	// Type-III: persistence operations lost — Run-subkey writes,
	// startup-folder or system.ini file operations, new service
	// entries, winlogon access (§IV-B's four autostart channels).
	if lostPersistence(d.DeltaN) && !lostPersistence(d.DeltaM) {
		effects = append(effects, TypeIII)
	}

	// Type-IV: benign-process injection lost.
	if lostProcessInjection(d.DeltaN) && !lostProcessInjection(d.DeltaM) {
		effects = append(effects, TypeIV)
	}

	// Result flips: aligned calls whose effect was frustrated. The call
	// sequence is unchanged, but a naturally successful operation now
	// fails — a blocked driver drop is still Type-I, a denied Run-value
	// write is still Type-III, a failed injection is still Type-IV.
	if !opts.DisableFlips {
		for _, e := range flipEffects(d.Flips) {
			if !containsEffect(effects, e) {
				effects = append(effects, e)
			}
		}
	}
	sortEffects(effects)

	r := Result{Effects: effects, Diff: d}
	if len(effects) > 0 {
		r.Primary = effects[0]
		for _, e := range effects {
			if e < r.Primary && e != NoImmunization {
				r.Primary = e
			}
		}
	}
	return r
}

// flipEffects classifies naturally-successful operations that the
// mutation turned into failures.
func flipEffects(flips []alignment.Flip) []Effect {
	var out []Effect
	add := func(e Effect) {
		if !containsEffect(out, e) {
			out = append(out, e)
		}
	}
	for _, f := range flips {
		if !f.Natural.Success || f.Mutated.Success {
			continue // only care about frustrated operations
		}
		c := f.Natural
		id := strings.ToLower(c.Identifier)
		switch {
		case strings.HasSuffix(id, ".sys"),
			c.API == "CreateServiceA" && argsMention(c, ".sys"):
			add(TypeI)
		case c.API == "CreateServiceA", c.API == "StartServiceA":
			add(TypeIII) // new service entry is an autostart channel
		case c.ResourceKind == "registry" &&
			(strings.Contains(id, `\run\`) || strings.HasSuffix(id, `\run`) ||
				strings.Contains(id, "winlogon")):
			add(TypeIII)
		case c.ResourceKind == "file" &&
			(strings.Contains(id, "startup") || strings.Contains(id, "system.ini")):
			add(TypeIII)
		case c.API == "WriteProcessMemory", c.API == "CreateRemoteThread":
			add(TypeIV)
		case isNetworkAPI(c.API):
			add(TypeII)
		}
	}
	return out
}

// argsMention reports whether any resolved string argument contains the
// fragment (case-insensitively).
func argsMention(c trace.APICall, frag string) bool {
	for _, a := range c.Args {
		if a.Str != "" && strings.Contains(strings.ToLower(a.Str), frag) {
			return true
		}
	}
	return false
}

// isNetworkAPI reports membership in the network API set.
func isNetworkAPI(name string) bool {
	for _, n := range winapi.NetworkAPIs() {
		if n == name {
			return true
		}
	}
	return false
}

func containsEffect(es []Effect, e Effect) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

// sortEffects orders effects by priority (enum order).
func sortEffects(es []Effect) {
	for i := 1; i < len(es); i++ {
		for j := i; j > 0 && es[j] < es[j-1]; j-- {
			es[j], es[j-1] = es[j-1], es[j]
		}
	}
}

// hasKernelEvidence requires a CreateService/StartService loss or a
// .sys file loss, not merely an OpenSCManager call.
func hasKernelEvidence(delta []trace.APICall) bool {
	for _, c := range delta {
		switch c.API {
		case "CreateServiceA", "StartServiceA":
			return true
		}
		if c.ResourceKind == "file" && strings.HasSuffix(strings.ToLower(c.Identifier), ".sys") {
			return true
		}
	}
	return false
}

// lostPersistence detects autostart operations in a difference set.
func lostPersistence(delta []trace.APICall) bool {
	for _, c := range delta {
		id := strings.ToLower(c.Identifier)
		switch {
		case c.ResourceKind == "registry" &&
			(strings.Contains(id, `\run\`) || strings.HasSuffix(id, `\run`) ||
				strings.Contains(id, "winlogon")):
			return true
		case c.ResourceKind == "file" &&
			(strings.Contains(id, "startup") || strings.Contains(id, "system.ini")):
			return true
		case c.API == "CreateServiceA" && c.Op == "create":
			return true
		}
	}
	return false
}

// lostProcessInjection detects lost process-level behaviour: injection
// primitives targeting benign system processes, or the execution of a
// malware component process.
func lostProcessInjection(delta []trace.APICall) bool {
	victims := map[string]bool{
		"explorer.exe": true, "svchost.exe": true, "winlogon.exe": true,
	}
	for _, c := range delta {
		switch c.API {
		case "WriteProcessMemory", "CreateRemoteThread":
			if victims[strings.ToLower(c.Identifier)] || c.Identifier == "" {
				return true
			}
		case "OpenProcessByNameA":
			if victims[strings.ToLower(c.Identifier)] {
				return true
			}
		case "CreateProcessA":
			// A lost component start (the process-presence-marker case).
			return true
		}
	}
	return false
}

// BDR computes the Behavior Decreasing Ratio of §VI-E:
// (Nn - Nd) / Nn, where Nn and Nd are the native-call counts of the
// normal and vaccine-deployed executions. Larger means the vaccine
// removed more behaviour. A deployed run with MORE calls yields 0.
func BDR(normal, deployed *trace.Trace) float64 {
	nn := normal.NativeCallCount()
	if nn == 0 {
		return 0
	}
	nd := deployed.NativeCallCount()
	if nd >= nn {
		return 0
	}
	return float64(nn-nd) / float64(nn)
}
