package determinism

import (
	"strings"
	"testing"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

func TestSubtractResiduals(t *testing.T) {
	cases := []struct {
		name string
		want []trace.Loc
		kill trace.Loc
		from trace.Loc
	}{
		{"full kill", nil, trace.MemLoc(100, 8), trace.MemLoc(100, 8)},
		{"left residue", []trace.Loc{trace.MemLoc(100, 2)}, trace.MemLoc(102, 6), trace.MemLoc(100, 8)},
		{"right residue", []trace.Loc{trace.MemLoc(106, 2)}, trace.MemLoc(100, 6), trace.MemLoc(100, 8)},
		{"both residues", []trace.Loc{trace.MemLoc(100, 2), trace.MemLoc(106, 2)}, trace.MemLoc(102, 4), trace.MemLoc(100, 8)},
		{"no overlap", []trace.Loc{trace.MemLoc(100, 4)}, trace.MemLoc(200, 4), trace.MemLoc(100, 4)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := subtract([]trace.Loc{tc.from}, tc.kill)
			if len(got) != len(tc.want) {
				t.Fatalf("got %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Errorf("got[%d] = %v, want %v", i, got[i], tc.want[i])
				}
			}
		})
	}
	// Register kill removes the whole entry.
	got := subtract([]trace.Loc{trace.RegLoc(isa.EBX)}, trace.RegLoc(isa.EBX))
	if len(got) != 0 {
		t.Errorf("register kill left %v", got)
	}
}

func TestWildcardPatternMultipleRuns(t *testing.T) {
	// static-random-static-random → literal '*' literal '*'.
	ident := "abXYcdZW"
	kinds := []byteKind{
		byteStatic, byteStatic, byteRandom, byteRandom,
		byteStatic, byteStatic, byteRandom, byteRandom,
	}
	if got := wildcardPattern(ident, kinds); got != "ab*cd*" {
		t.Errorf("pattern = %q, want ab*cd*", got)
	}
	// All random collapses to a single star.
	if got := wildcardPattern("xyz", []byteKind{byteRandom, byteRandom, byteRandom}); got != "*" {
		t.Errorf("pattern = %q, want *", got)
	}
}

// TestSliceThroughLoopBuiltIdentifier slices an identifier assembled in
// a loop (byte-wise copy of the computer name), exercising repeated
// dynamic instances of the same static instruction.
func TestSliceThroughLoopBuiltIdentifier(t *testing.T) {
	b := isa.NewBuilder("loop-ident")
	b.Buf("cname", 32)
	b.Buf("oname", 40)
	b.CallAPI("GetComputerNameA", isa.Sym("cname"), isa.Imm(32))
	b.Lea(isa.ESI, isa.MemSym("cname"))
	b.Lea(isa.EDI, isa.MemSym("oname"))
	b.Label("copy")
	b.Movb(isa.R(isa.EAX), isa.Mem(isa.ESI, 0))
	b.Movb(isa.Mem(isa.EDI, 0), isa.R(isa.EAX)).Comment("data-flow copy")
	b.Inc(isa.R(isa.ESI))
	b.Inc(isa.R(isa.EDI))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jnz("copy")
	b.CallAPI("CreateMutexA", isa.Sym("oname"))
	b.Halt()
	prog := b.MustBuild()

	env := winenv.New(winenv.DefaultIdentity())
	tr, err := emu.Run(prog, env, emu.Options{Seed: 3, RecordSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit == trace.ExitFault {
		t.Fatalf("fault: %s", tr.Fault)
	}
	call := tr.CallsTo("CreateMutexA")[0]
	if call.Identifier != "WIN-AUTOVAC01" {
		t.Fatalf("identifier = %q", call.Identifier)
	}
	// Data-flow copy preserves provenance: algorithm-deterministic.
	res := Classify(call, tr.Sources)
	if res.Class != AlgorithmDeterministic {
		t.Fatalf("class = %v", res.Class)
	}
	sl, err := Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// Replay on a renamed host computes the new value.
	other := winenv.DefaultIdentity()
	other.ComputerName = "LAB-PC-5"
	got, err := sl.Replay(winenv.New(other), 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != "LAB-PC-5" {
		t.Errorf("replay = %q, want LAB-PC-5", got)
	}
}

// TestSliceReplayPartialStaticFamilies confirms the partial-mutex family
// template yields a classification whose pattern survives fresh ticks.
func TestPartialPatternStableAcrossRuns(t *testing.T) {
	spec := &malware.Spec{Name: "pp", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehPartialMutex, ID: "FAMX"}}}
	prog := malware.MustEmit(spec)
	patterns := make(map[string]bool)
	for seed := uint64(1); seed <= 5; seed++ {
		tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
			emu.Options{Seed: seed, RecordSteps: true})
		if err != nil {
			t.Fatal(err)
		}
		call := tr.CallsTo("CreateMutexA")[0]
		res := Classify(call, tr.Sources)
		if res.Class != PartialStatic {
			t.Fatalf("seed %d: class = %v", seed, res.Class)
		}
		patterns[res.Pattern] = true
		if !MatchPattern(res.Pattern, call.Identifier) {
			t.Errorf("seed %d: %q !~ %q", seed, call.Identifier, res.Pattern)
		}
	}
	// The derived pattern is the same whatever the random suffix was.
	if len(patterns) != 1 {
		t.Errorf("patterns unstable across runs: %v", patterns)
	}
	for p := range patterns {
		if !strings.HasPrefix(p, "FAMX-") {
			t.Errorf("pattern = %q", p)
		}
	}
}

func TestReplayFaultSurfaces(t *testing.T) {
	// A slice whose program faults reports the error.
	b := isa.NewBuilder("bad-slice")
	b.Buf("buf", 8)
	b.Raw(isa.Instr{Op: isa.MOV, Dst: isa.R(isa.EAX), Src: isa.MemAbs(0xDEAD0000)})
	b.Halt()
	sl := &Slice{Program: b.MustBuild(), ResultAddr: emu.DataBase, API: "X"}
	if _, err := sl.Replay(winenv.New(winenv.DefaultIdentity()), 1); err == nil {
		t.Error("faulting replay succeeded")
	}
}

func TestReplayEmptyIdentifierErrors(t *testing.T) {
	b := isa.NewBuilder("empty-slice")
	b.Buf("buf", 8)
	b.Halt()
	prog := b.MustBuild()
	c, err := emu.New(prog, winenv.New(winenv.DefaultIdentity()), emu.Options{})
	if err != nil {
		t.Fatal(err)
	}
	addr, _ := c.SymbolAddr("buf")
	sl := &Slice{Program: prog, ResultAddr: addr, API: "X"}
	if _, err := sl.Replay(winenv.New(winenv.DefaultIdentity()), 1); err == nil {
		t.Error("empty identifier accepted")
	}
}
