package determinism

import (
	"regexp"
	"strings"
	"testing"
	"testing/quick"
)

// refMatch is a reference implementation of the wildcard matcher built
// on the stdlib regexp engine.
func refMatch(pattern, s string) bool {
	var re strings.Builder
	re.WriteString("(?i)^")
	for i := 0; i < len(pattern); i++ {
		if pattern[i] == '*' {
			re.WriteString(".*")
		} else {
			re.WriteString(regexp.QuoteMeta(string(pattern[i])))
		}
	}
	re.WriteString("$")
	return regexp.MustCompile(re.String()).MatchString(s)
}

// TestMatchPatternAgainstRegexpReference cross-checks the backtracking
// matcher against the regexp reference on random inputs drawn from a
// small alphabet (small alphabets maximize collision and backtracking
// pressure).
func TestMatchPatternAgainstRegexpReference(t *testing.T) {
	alphabet := []byte("ab*A-")
	mk := func(raw []byte, n int) string {
		if len(raw) > n {
			raw = raw[:n]
		}
		out := make([]byte, len(raw))
		for i, b := range raw {
			out[i] = alphabet[int(b)%len(alphabet)]
		}
		return string(out)
	}
	f := func(p, s []byte) bool {
		pattern := mk(p, 12)
		// The subject must not contain '*' (identifiers never do).
		subject := strings.ReplaceAll(mk(s, 16), "*", "x")
		return MatchPattern(pattern, subject) == refMatch(pattern, subject)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestMatchPatternBacktrackingStress(t *testing.T) {
	// Pathological backtracking input still terminates quickly.
	pattern := "a*a*a*a*a*a*b"
	subject := strings.Repeat("a", 64)
	if MatchPattern(pattern, subject) {
		t.Error("matched impossible pattern")
	}
	if !MatchPattern(pattern, strings.Repeat("a", 64)+"b") {
		t.Error("missed possible pattern")
	}
}

func BenchmarkMatchPattern(b *testing.B) {
	pattern := "WORMX-*-stage-*"
	subject := "WORMX-9f3ac2-stage-payload"
	for i := 0; i < b.N; i++ {
		if !MatchPattern(pattern, subject) {
			b.Fatal("no match")
		}
	}
}
