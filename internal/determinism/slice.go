package determinism

import (
	"fmt"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// Slice is an executable backward program slice that regenerates a
// resource identifier (§IV-C: "we apply the existing backward program
// slicing techniques to extract an independent, executable program
// slice"). Replaying it on an end host computes that host's identifier
// value, which is how algorithm-deterministic vaccines deploy (§V).
type Slice struct {
	// Program is the replayable straight-line slice: the dynamic
	// instructions that contributed to the identifier, in execution
	// order, over the original program's data segment.
	Program *isa.Program
	// ResultAddr is the address the identifier string occupies after
	// replay (data layout is deterministic, so the original address is
	// valid in the replayed slice).
	ResultAddr uint32
	// API is the candidate API the identifier was observed at.
	API string
	// SourceSteps counts the instructions included in the slice.
	SourceSteps int
	// PCs lists the original-program pcs of the included steps, in
	// slice order; CriterionPC is the candidate call's pc. Together
	// they tie the dynamic slice back to the program text, which is
	// what the static-analysis soundness cross-check compares against.
	PCs         []int `json:",omitempty"`
	CriterionPC int   `json:",omitempty"`
}

// Extract performs backward data slicing over an instruction-level
// trace, starting from the identifier bytes consumed by the API call
// with the given sequence number.
//
// The walk maintains a worklist of storage locations; a step that wrote
// any wanted location joins the slice, its writes kill the covered
// ranges, and its reads become wanted — except reads of read-only data
// (static terminals, the left branch of the paper's Figure 2). API-call
// steps join as units, so a slice containing _snprintf drags in its
// argument pushes and, transitively, GetComputerNameA.
func Extract(prog *isa.Program, tr *trace.Trace, seq int) (*Slice, error) {
	if len(tr.Steps) == 0 {
		return nil, fmt.Errorf("determinism: trace of %s has no instruction steps (RecordSteps off?)", tr.Program)
	}
	// Locate the candidate call's step and record.
	callIdx := -1
	for i, s := range tr.Steps {
		if s.APISeq == seq {
			callIdx = i
			break
		}
	}
	if callIdx < 0 {
		return nil, fmt.Errorf("determinism: no step for API seq %d", seq)
	}
	var call *trace.APICall
	for i := range tr.Calls {
		if tr.Calls[i].Seq == seq {
			call = &tr.Calls[i]
			break
		}
	}
	if call == nil || call.Identifier == "" {
		return nil, fmt.Errorf("determinism: API seq %d has no identifier", seq)
	}

	// Find the identifier-string read in the call step.
	var resultAddr uint32
	found := false
	for _, r := range tr.Steps[callIdx].Reads {
		if r.Loc.Kind == trace.LocMem && string(r.Bytes) == call.Identifier {
			resultAddr = r.Loc.Addr
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("determinism: identifier %q not among call reads", call.Identifier)
	}

	// Backward walk.
	want := []trace.Loc{trace.MemLoc(resultAddr, uint32(len(call.Identifier))+1)}
	included := make([]bool, callIdx)
	for j := callIdx - 1; j >= 0 && len(want) > 0; j-- {
		step := tr.Steps[j]
		hit := false
		for _, w := range step.Writes {
			if w.Loc.Kind == trace.LocFlags {
				continue
			}
			if overlapsAny(w.Loc, want) {
				hit = true
				break
			}
		}
		if !hit {
			continue
		}
		included[j] = true
		// Kill the written ranges, then demand the read ranges.
		for _, w := range step.Writes {
			if w.Loc.Kind == trace.LocFlags {
				continue
			}
			want = subtract(want, w.Loc)
		}
		for _, r := range step.Reads {
			if r.Loc.Kind == trace.LocFlags {
				continue
			}
			if r.Loc.Kind == trace.LocMem && readOnlyAddr(r.Loc.Addr) {
				continue // static terminal (.rdata)
			}
			want = append(want, r.Loc)
		}
	}

	// Assemble the straight-line slice program.
	b := isa.NewBuilder(fmt.Sprintf("%s-slice-%d", prog.Name, seq))
	for _, d := range prog.Data {
		if d.ReadOnly {
			b.RBytes(d.Name, append([]byte(nil), d.Data...))
		} else {
			b.DataBytes(d.Name, append([]byte(nil), d.Data...))
		}
	}
	count := 0
	var pcs []int
	for j := 0; j < callIdx; j++ {
		if !included[j] {
			continue
		}
		in := tr.Steps[j].Instr
		in.Label = "" // dynamic steps may repeat static labels
		in.Comment = ""
		b.Raw(in)
		pcs = append(pcs, tr.Steps[j].PC)
		count++
	}
	b.Halt()
	p, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("determinism: assembling slice: %w", err)
	}
	return &Slice{
		Program:     p,
		ResultAddr:  resultAddr,
		API:         call.API,
		SourceSteps: count,
		PCs:         pcs,
		CriterionPC: tr.Steps[callIdx].PC,
	}, nil
}

// Replay executes the slice against an end host's environment and
// returns the regenerated identifier. The seed only drives APIs the
// slice should not contain (a slice with random dependencies would have
// been discarded as non-deterministic). The environment is snapshotted
// and rewound around the execution, so a replay leaves no side effects
// behind and one environment can serve many replays.
func (s *Slice) Replay(env *winenv.Env, seed uint64) (string, error) {
	snap := env.Snapshot()
	defer func() {
		env.Reset(snap)
		snap.Close()
	}()
	c, err := emu.New(s.Program, env, emu.Options{Seed: seed})
	if err != nil {
		return "", fmt.Errorf("determinism: replay setup: %w", err)
	}
	defer c.Release()
	tr := c.Execute()
	if tr.Exit == trace.ExitFault {
		return "", fmt.Errorf("determinism: slice replay faulted: %s", tr.Fault)
	}
	ident, _, err := c.ReadCString(s.ResultAddr)
	if err != nil {
		return "", fmt.Errorf("determinism: reading replayed identifier: %w", err)
	}
	if ident == "" {
		return "", fmt.Errorf("determinism: slice replay produced empty identifier")
	}
	return ident, nil
}

// overlapsAny reports whether loc overlaps any wanted location.
func overlapsAny(loc trace.Loc, want []trace.Loc) bool {
	for _, w := range want {
		if loc.Overlaps(w) {
			return true
		}
	}
	return false
}

// subtract removes the killed location from the worklist, keeping
// residual memory subranges.
func subtract(want []trace.Loc, kill trace.Loc) []trace.Loc {
	var out []trace.Loc
	for _, w := range want {
		if !w.Overlaps(kill) {
			out = append(out, w)
			continue
		}
		if w.Kind != trace.LocMem || kill.Kind != trace.LocMem {
			continue // registers/flags: fully killed
		}
		// Left residue.
		if w.Addr < kill.Addr {
			out = append(out, trace.MemLoc(w.Addr, kill.Addr-w.Addr))
		}
		// Right residue.
		wEnd, kEnd := w.Addr+w.Size, kill.Addr+kill.Size
		if wEnd > kEnd {
			out = append(out, trace.MemLoc(kEnd, wEnd-kEnd))
		}
	}
	return out
}

// readOnlyAddr reports whether an address lies in the read-only data
// window of the emulator's fixed layout.
func readOnlyAddr(addr uint32) bool {
	return addr >= emu.RDataBase && addr < emu.DataBase
}
