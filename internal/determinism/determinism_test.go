package determinism

import (
	"strings"
	"testing"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/taint"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

func TestClassStrings(t *testing.T) {
	cases := map[Class]string{
		Static: "static", PartialStatic: "partial-static",
		AlgorithmDeterministic: "algorithm-deterministic",
		NonDeterministic:       "non-deterministic",
	}
	for c, want := range cases {
		if got := c.String(); got != want {
			t.Errorf("%d = %q, want %q", c, got, want)
		}
	}
}

// runSample executes a program with step recording and returns the
// trace.
func runSample(t *testing.T, prog *isa.Program, env *winenv.Env) *trace.Trace {
	t.Helper()
	tr, err := emu.Run(prog, env, emu.Options{Seed: 77, RecordSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit == trace.ExitFault {
		t.Fatalf("fault: %s", tr.Fault)
	}
	return tr
}

// findCall returns the first resource call to api.
func findCall(t *testing.T, tr *trace.Trace, api string) trace.APICall {
	t.Helper()
	calls := tr.CallsTo(api)
	if len(calls) == 0 {
		t.Fatalf("no calls to %s", api)
	}
	return calls[0]
}

func TestClassifyStaticIdentifier(t *testing.T) {
	b := isa.NewBuilder("static-id")
	b.RData("m", "_AVIRA_2109")
	b.CallAPI("CreateMutexA", isa.Sym("m"))
	b.Halt()
	tr := runSample(t, b.MustBuild(), winenv.New(winenv.DefaultIdentity()))
	res := Classify(findCall(t, tr, "CreateMutexA"), tr.Sources)
	if res.Class != Static || res.Pattern != "_AVIRA_2109" {
		t.Errorf("got %v pattern %q", res.Class, res.Pattern)
	}
}

func TestClassifyAlgorithmDeterministic(t *testing.T) {
	spec := &malware.Spec{Name: "algo", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	res := Classify(findCall(t, tr, "CreateMutexA"), tr.Sources)
	if res.Class != AlgorithmDeterministic {
		t.Fatalf("class = %v", res.Class)
	}
	if len(res.SemanticAPIs) != 1 || res.SemanticAPIs[0] != "GetComputerNameA" {
		t.Errorf("semantic root causes = %v", res.SemanticAPIs)
	}
}

func TestClassifyPartialStatic(t *testing.T) {
	spec := &malware.Spec{Name: "partial", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehPartialMutex, ID: "WORMX"}}}
	prog := malware.MustEmit(spec)
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	res := Classify(findCall(t, tr, "CreateMutexA"), tr.Sources)
	if res.Class != PartialStatic {
		t.Fatalf("class = %v", res.Class)
	}
	if !strings.HasPrefix(res.Pattern, "WORMX-") || !strings.Contains(res.Pattern, "*") {
		t.Errorf("pattern = %q", res.Pattern)
	}
	if len(res.RandomAPIs) == 0 || res.RandomAPIs[0] != "GetTickCount" {
		t.Errorf("random root causes = %v", res.RandomAPIs)
	}
	// The observed concrete identifier matches its own pattern.
	if !MatchPattern(res.Pattern, findCall(t, tr, "CreateMutexA").Identifier) {
		t.Error("identifier does not match derived pattern")
	}
}

func TestClassifyRandomDiscarded(t *testing.T) {
	spec := &malware.Spec{Name: "rnd", Category: malware.Downloader,
		Behaviors: []malware.Behavior{{Kind: malware.BehRandomTemp}}}
	prog := malware.MustEmit(spec)
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	res := Classify(findCall(t, tr, "GetTempFileNameA"), tr.Sources)
	if res.Class != NonDeterministic {
		t.Fatalf("class = %v, want non-deterministic", res.Class)
	}
}

func TestClassifyEmptyIdentifier(t *testing.T) {
	res := Classify(trace.APICall{}, nil)
	if res.Class != NonDeterministic {
		t.Errorf("empty identifier class = %v", res.Class)
	}
}

func TestClassifyViaHandleFallback(t *testing.T) {
	// A call without per-byte data and a non-random source class falls
	// back to static.
	call := trace.APICall{
		Identifier:   `C:\x\a.exe`,
		TaintSources: []taint.Source{0},
	}
	sources := []taint.SourceInfo{{Source: 0, API: "WriteFile", Class: "none"}}
	res := Classify(call, sources)
	if res.Class != Static {
		t.Errorf("class = %v", res.Class)
	}
}

func TestMatchPattern(t *testing.T) {
	cases := []struct {
		pattern, s string
		want       bool
	}{
		{"WORMX-*", "WORMX-3f2a", true},
		{"WORMX-*", "wormx-3f2a", true}, // case-insensitive
		{"WORMX-*", "WORMY-3f2a", false},
		{"*", "anything", true},
		{"*", "", true},
		{"a*b*c", "aXXbYYc", true},
		{"a*b*c", "abc", true},
		{"a*b*c", "acb", false},
		{"exact", "exact", true},
		{"exact", "exact!", false},
		{"", "", true},
		{"", "x", false},
	}
	for _, tc := range cases {
		if got := MatchPattern(tc.pattern, tc.s); got != tc.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", tc.pattern, tc.s, got, tc.want)
		}
	}
}

func TestExtractAndReplaySlice(t *testing.T) {
	// Conficker-style algorithm-deterministic mutex.
	spec := &malware.Spec{Name: "algoslice", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	env := winenv.New(winenv.DefaultIdentity())
	tr := runSample(t, prog, env)

	call := findCall(t, tr, "CreateMutexA")
	sl, err := Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}
	if sl.SourceSteps == 0 {
		t.Fatal("empty slice")
	}
	// The slice contains the generation logic but not the payload.
	text := sl.Program.Disassemble()
	for _, want := range []string{"GetComputerNameA", "_snprintf"} {
		if !strings.Contains(text, want) {
			t.Errorf("slice missing %s:\n%s", want, text)
		}
	}
	if strings.Contains(text, "callapi CreateMutexA") {
		t.Error("slice includes the target call itself")
	}

	// Replay on the original host regenerates the observed identifier.
	got, err := sl.Replay(winenv.New(winenv.DefaultIdentity()), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != call.Identifier {
		t.Errorf("replay = %q, want %q", got, call.Identifier)
	}

	// Replay on a different host computes that host's value — the whole
	// point of shipping a slice instead of a constant.
	other := winenv.DefaultIdentity()
	other.ComputerName = "FINANCE-PC-22"
	got2, err := sl.Replay(winenv.New(other), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got2 != `Global\FINANCE-PC-22-7` {
		t.Errorf("cross-host replay = %q", got2)
	}
}

func TestExtractStaticIdentifierSliceIsTiny(t *testing.T) {
	b := isa.NewBuilder("static-slice")
	b.RData("m", "fx221")
	b.CallAPI("CreateMutexA", isa.Sym("m"))
	b.Halt()
	prog := b.MustBuild()
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	call := findCall(t, tr, "CreateMutexA")
	sl, err := Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}
	// A static identifier needs only its address push (if that).
	if sl.SourceSteps > 2 {
		t.Errorf("static slice has %d steps", sl.SourceSteps)
	}
}

func TestExtractErrors(t *testing.T) {
	b := isa.NewBuilder("e")
	b.RData("m", "x")
	b.CallAPI("CreateMutexA", isa.Sym("m"))
	b.Halt()
	prog := b.MustBuild()

	// No steps recorded.
	trNoSteps, _ := emu.Run(prog, winenv.New(winenv.DefaultIdentity()), emu.Options{})
	if _, err := Extract(prog, trNoSteps, 0); err == nil {
		t.Error("Extract without steps succeeded")
	}

	// Bad sequence number.
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	if _, err := Extract(prog, tr, 999); err == nil {
		t.Error("Extract with bad seq succeeded")
	}
}

func TestSliceReplayThroughLstrcat(t *testing.T) {
	// Identifier built by lstrcpy + lstrcat from the user name.
	b := isa.NewBuilder("cat-slice")
	b.RData("prefix", "mal_")
	b.Buf("uname", 32)
	b.Buf("name", 64)
	b.CallAPI("GetUserNameA", isa.Sym("uname"), isa.Imm(32))
	b.CallAPI("lstrcpyA", isa.Sym("name"), isa.Sym("prefix"))
	b.CallAPI("lstrcatA", isa.Sym("name"), isa.Sym("uname"))
	b.CallAPI("CreateMutexA", isa.Sym("name"))
	b.Halt()
	prog := b.MustBuild()
	tr := runSample(t, prog, winenv.New(winenv.DefaultIdentity()))
	call := findCall(t, tr, "CreateMutexA")
	if call.Identifier != "mal_alice" {
		t.Fatalf("identifier = %q", call.Identifier)
	}
	res := Classify(call, tr.Sources)
	if res.Class != AlgorithmDeterministic {
		t.Fatalf("class = %v", res.Class)
	}
	sl, err := Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}
	other := winenv.DefaultIdentity()
	other.UserName = "bob"
	got, err := sl.Replay(winenv.New(other), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != "mal_bob" {
		t.Errorf("replay = %q, want mal_bob", got)
	}
}
