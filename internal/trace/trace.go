// Package trace defines the execution-trace records AUTOVAC's analyses
// consume: API-call logs with precise calling context (name, caller-PC,
// arguments, call stack — paper §III "Output from Phase-I"), and
// instruction-level steps with read/write access sets used by backward
// taint tracking and program slicing (§IV-C).
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

// ArgValue is one logged API argument.
type ArgValue struct {
	// Raw is the 32-bit argument value as passed.
	Raw uint32
	// Str is the resolved string when the argument is a pointer to a
	// string the API consumed (empty otherwise).
	Str string `json:",omitempty"`
	// Static marks arguments whose values are comparable across
	// executions (identifiers, constants); handles and buffer pointers
	// are dynamic and excluded from alignment comparison (§IV-B).
	Static bool
	// Tainted reports whether the argument carried taint on entry.
	Tainted bool `json:",omitempty"`
}

// ExitReason tells how an execution ended.
type ExitReason int

// Exit reasons.
const (
	// ExitHalt is a normal HALT (the program ran to completion).
	ExitHalt ExitReason = iota
	// ExitProcess is a self-termination through ExitProcess/
	// TerminateProcess/ExitThread.
	ExitProcess
	// ExitLimit means the step budget was exhausted (the analogue of the
	// paper's 1-minute execution threshold).
	ExitLimit
	// ExitFault is an execution error (bad memory access, stack
	// underflow, unknown API) — the malware "crashed".
	ExitFault
)

// String names the exit reason.
func (r ExitReason) String() string {
	switch r {
	case ExitHalt:
		return "halt"
	case ExitProcess:
		return "exit-process"
	case ExitLimit:
		return "step-limit"
	case ExitFault:
		return "fault"
	default:
		return fmt.Sprintf("exit(%d)", int(r))
	}
}

// APICall is one logged API invocation with its calling context.
// The triple <Name, CallerPC, static parameters> is the alignment key of
// the differential analysis (Algorithm 1).
type APICall struct {
	// Seq is the dynamic occurrence index within the run.
	Seq int
	// API is the API name.
	API string
	// CallerPC is the program counter of the CALLAPI instruction.
	CallerPC int
	// CallStack holds the return PCs of active intra-program calls,
	// innermost last.
	CallStack []int `json:",omitempty"`
	// Args are the logged arguments.
	Args []ArgValue `json:",omitempty"`
	// Ret is the value returned in EAX.
	Ret uint32
	// LastError is the GetLastError value after the call.
	LastError uint32
	// Success is the API-specific success predicate applied to Ret.
	Success bool
	// ResourceKind, Identifier, and Op describe the resource access for
	// labelled APIs (empty otherwise).
	ResourceKind string `json:",omitempty"`
	Identifier   string `json:",omitempty"`
	Op           string `json:",omitempty"`
	// TaintSources lists the taint labels introduced by this call.
	TaintSources []taint.Source `json:",omitempty"`
	// IdentifierTaint holds the per-byte taint labels of the identifier
	// string as observed at call time — the input to the per-byte
	// provenance classification of determinism analysis (§IV-C).
	IdentifierTaint [][]taint.Source `json:",omitempty"`
	// Mutated marks calls whose result was forced by impact analysis.
	Mutated bool `json:",omitempty"`
}

// PredicateHit records a comparison instruction whose operands carried
// taint — the signal that flags a sample as "possibly has a vaccine"
// (paper §III-B).
type PredicateHit struct {
	// PC is the program counter of the predicate instruction.
	PC int
	// Sources are the taint labels reaching the predicate.
	Sources []taint.Source
}

// LocKind distinguishes storage locations in access records.
type LocKind uint8

// Location kinds.
const (
	// LocReg is a general-purpose register.
	LocReg LocKind = iota
	// LocMem is a memory range.
	LocMem
	// LocFlags is the flags register.
	LocFlags
)

// Loc is a storage location (register, memory range, or flags).
type Loc struct {
	Kind LocKind
	// Reg is the register for LocReg.
	Reg uint8 `json:",omitempty"`
	// Addr and Size delimit the range for LocMem.
	Addr uint32 `json:",omitempty"`
	Size uint32 `json:",omitempty"`
}

// RegLoc returns a register location.
func RegLoc(r isa.Reg) Loc { return Loc{Kind: LocReg, Reg: uint8(r)} }

// MemLoc returns a memory-range location.
func MemLoc(addr, size uint32) Loc { return Loc{Kind: LocMem, Addr: addr, Size: size} }

// FlagsLoc returns the flags location.
func FlagsLoc() Loc { return Loc{Kind: LocFlags} }

// Overlaps reports whether two locations denote overlapping storage.
func (l Loc) Overlaps(o Loc) bool {
	if l.Kind != o.Kind {
		return false
	}
	switch l.Kind {
	case LocReg:
		return l.Reg == o.Reg
	case LocFlags:
		return true
	case LocMem:
		return l.Addr < o.Addr+o.Size && o.Addr < l.Addr+l.Size
	}
	return false
}

// String renders the location.
func (l Loc) String() string {
	switch l.Kind {
	case LocReg:
		return isa.Reg(l.Reg).String()
	case LocFlags:
		return "flags"
	case LocMem:
		return fmt.Sprintf("[0x%x..0x%x]", l.Addr, l.Addr+l.Size)
	default:
		return "?"
	}
}

// Access is one read or write in a step.
type Access struct {
	Loc Loc
	// Value is the 32-bit value read/written (for memory ranges wider
	// than 4 bytes, the first word; Bytes carries the full range when
	// relevant).
	Value uint32
	// Bytes optionally carries the full byte range for wide accesses
	// (API string reads/writes).
	Bytes []byte `json:",omitempty"`
}

// Step is one executed instruction with its dynamic access sets. Steps
// are recorded only when instruction-level tracing is enabled (it is the
// offline log backward slicing runs on).
type Step struct {
	// Index is the position in the dynamic trace.
	Index int
	// PC is the instruction's program counter.
	PC int
	// Instr is the executed instruction.
	Instr isa.Instr
	// Reads and Writes are the observed accesses.
	Reads  []Access `json:",omitempty"`
	Writes []Access `json:",omitempty"`
	// APISeq links a CALLAPI step to its APICall record (-1 otherwise).
	APISeq int
	// Taken marks whether a conditional jump was taken.
	Taken bool `json:",omitempty"`
}

// Trace is the full record of one execution.
type Trace struct {
	// Program is the executed program's name.
	Program string
	// Mutated marks impact-analysis runs with a forced API result.
	Mutated bool `json:",omitempty"`
	// Calls is the API-call log.
	Calls []APICall
	// Steps is the instruction-level log (nil unless enabled).
	Steps []Step `json:",omitempty"`
	// Predicates lists tainted predicate hits.
	Predicates []PredicateHit `json:",omitempty"`
	// Exit describes how execution ended.
	Exit ExitReason
	// ExitCode is the code passed to ExitProcess (0 otherwise).
	ExitCode uint32 `json:",omitempty"`
	// StepCount is the number of instructions executed.
	StepCount int
	// Fault holds the fault message for ExitFault.
	Fault string `json:",omitempty"`
	// Sources is the run's taint-source table, making the trace
	// self-contained for offline analysis.
	Sources []taint.SourceInfo `json:",omitempty"`
}

// HasTaintedPredicate reports whether any comparison consumed tainted
// data — AUTOVAC's Phase-I filter for "possibly has a vaccine".
func (t *Trace) HasTaintedPredicate() bool { return len(t.Predicates) > 0 }

// CallsTo returns the API-call records for the named API.
func (t *Trace) CallsTo(api string) []APICall {
	var out []APICall
	for _, c := range t.Calls {
		if c.API == api {
			out = append(out, c)
		}
	}
	return out
}

// ResourceCalls returns the calls that touched a labelled resource.
func (t *Trace) ResourceCalls() []APICall {
	var out []APICall
	for _, c := range t.Calls {
		if c.ResourceKind != "" {
			out = append(out, c)
		}
	}
	return out
}

// NativeCallCount returns the number of API calls in the trace. It is
// the N in the paper's Behavior Decreasing Ratio, BDR = (Nn-Nd)/Nn.
func (t *Trace) NativeCallCount() int { return len(t.Calls) }

// WriteJSON serializes the trace.
func (t *Trace) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(t); err != nil {
		return fmt.Errorf("trace: encode: %w", err)
	}
	return nil
}

// ReadJSON deserializes a trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	var t Trace
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: decode: %w", err)
	}
	return &t, nil
}

// OpStat is an aggregate count of resource accesses, bucketed by
// resource kind and operation — the data behind the paper's Figure 3.
type OpStat struct {
	ResourceKind string
	Op           string
	Count        int
}

// ResourceOpStats buckets the trace's resource calls by kind and
// operation, in deterministic order.
func (t *Trace) ResourceOpStats() []OpStat {
	type key struct{ kind, op string }
	counts := make(map[key]int)
	var order []key
	for _, c := range t.Calls {
		if c.ResourceKind == "" {
			continue
		}
		k := key{c.ResourceKind, c.Op}
		if _, ok := counts[k]; !ok {
			order = append(order, k)
		}
		counts[k]++
	}
	out := make([]OpStat, 0, len(order))
	for _, k := range order {
		out = append(out, OpStat{ResourceKind: k.kind, Op: k.op, Count: counts[k]})
	}
	return out
}
