package trace

import (
	"bytes"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

func sample() *Trace {
	return &Trace{
		Program: "zeus-001",
		Calls: []APICall{
			{Seq: 0, API: "OpenMutexA", CallerPC: 3, Args: []ArgValue{{Raw: 0x400000, Str: "_AVIRA_2109", Static: true}},
				Ret: 0, LastError: 2, ResourceKind: "mutex", Identifier: "_AVIRA_2109", Op: "open",
				TaintSources: []taint.Source{0}},
			{Seq: 1, API: "CreateMutexA", CallerPC: 9, Args: []ArgValue{{Raw: 0x400000, Str: "_AVIRA_2109", Static: true}},
				Ret: 4, LastError: 0, Success: true, ResourceKind: "mutex", Identifier: "_AVIRA_2109", Op: "create",
				TaintSources: []taint.Source{1}},
			{Seq: 2, API: "ExitProcess", CallerPC: 20},
		},
		Predicates: []PredicateHit{{PC: 5, Sources: []taint.Source{0}}},
		Exit:       ExitProcess,
		StepCount:  42,
	}
}

func TestExitReasonString(t *testing.T) {
	cases := map[ExitReason]string{
		ExitHalt: "halt", ExitProcess: "exit-process",
		ExitLimit: "step-limit", ExitFault: "fault",
	}
	for r, want := range cases {
		if got := r.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", r, got, want)
		}
	}
}

func TestCallsToAndResourceCalls(t *testing.T) {
	tr := sample()
	if got := tr.CallsTo("OpenMutexA"); len(got) != 1 || got[0].Seq != 0 {
		t.Errorf("CallsTo = %+v", got)
	}
	if got := tr.CallsTo("Nope"); got != nil {
		t.Errorf("CallsTo(Nope) = %+v", got)
	}
	rc := tr.ResourceCalls()
	if len(rc) != 2 {
		t.Errorf("ResourceCalls = %d, want 2", len(rc))
	}
	if tr.NativeCallCount() != 3 {
		t.Errorf("NativeCallCount = %d", tr.NativeCallCount())
	}
	if !tr.HasTaintedPredicate() {
		t.Error("HasTaintedPredicate = false")
	}
}

func TestResourceOpStats(t *testing.T) {
	tr := sample()
	stats := tr.ResourceOpStats()
	if len(stats) != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	if stats[0].ResourceKind != "mutex" || stats[0].Op != "open" || stats[0].Count != 1 {
		t.Errorf("stats[0] = %+v", stats[0])
	}
	// Repeats accumulate.
	tr.Calls = append(tr.Calls, tr.Calls[0])
	stats = tr.ResourceOpStats()
	if stats[0].Count != 2 {
		t.Errorf("after repeat, count = %d", stats[0].Count)
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := sample()
	tr.Steps = []Step{{
		Index: 0, PC: 3,
		Instr:  isa.Instr{Op: isa.CALLAPI, API: "OpenMutexA", NArgs: 1},
		Reads:  []Access{{Loc: MemLoc(0x400000, 12), Bytes: []byte("_AVIRA_2109")}},
		Writes: []Access{{Loc: RegLoc(isa.EAX), Value: 0}},
		APISeq: 0,
	}}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Program != tr.Program || len(got.Calls) != len(tr.Calls) ||
		got.Exit != tr.Exit || got.StepCount != tr.StepCount {
		t.Errorf("round trip mismatch: %+v", got)
	}
	if got.Calls[0].Identifier != "_AVIRA_2109" {
		t.Errorf("identifier lost: %+v", got.Calls[0])
	}
	if len(got.Steps) != 1 || got.Steps[0].Instr.API != "OpenMutexA" {
		t.Errorf("steps lost: %+v", got.Steps)
	}
	if string(got.Steps[0].Reads[0].Bytes) != "_AVIRA_2109" {
		t.Errorf("access bytes lost")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(bytes.NewBufferString("{nope")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestLocOverlaps(t *testing.T) {
	cases := []struct {
		a, b Loc
		want bool
	}{
		{RegLoc(isa.EAX), RegLoc(isa.EAX), true},
		{RegLoc(isa.EAX), RegLoc(isa.EBX), false},
		{RegLoc(isa.EAX), FlagsLoc(), false},
		{FlagsLoc(), FlagsLoc(), true},
		{MemLoc(100, 4), MemLoc(102, 4), true},
		{MemLoc(100, 4), MemLoc(104, 4), false},
		{MemLoc(104, 4), MemLoc(100, 4), false},
		{MemLoc(100, 8), MemLoc(102, 2), true},
		{MemLoc(100, 4), RegLoc(isa.EAX), false},
	}
	for _, tc := range cases {
		if got := tc.a.Overlaps(tc.b); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
		// Overlap is symmetric.
		if got := tc.b.Overlaps(tc.a); got != tc.want {
			t.Errorf("%v.Overlaps(%v) = %v, want %v (symmetry)", tc.b, tc.a, got, tc.want)
		}
	}
}

func TestLocString(t *testing.T) {
	if got := RegLoc(isa.ECX).String(); got != "ecx" {
		t.Errorf("RegLoc string = %q", got)
	}
	if got := FlagsLoc().String(); got != "flags" {
		t.Errorf("FlagsLoc string = %q", got)
	}
	if got := MemLoc(0x10, 4).String(); got != "[0x10..0x14]" {
		t.Errorf("MemLoc string = %q", got)
	}
}
