package static

import (
	"fmt"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/winapi"
)

// SliceError is one verifier rejection: which rule an extracted slice
// violated, and where.
type SliceError struct {
	// Slice names the offending program.
	Slice string
	// PC is the offending instruction index (-1 for whole-slice rules).
	PC int
	// Rule is the stable rule identifier (control-flow, api-allowlist,
	// memory-bounds, stack-balance, result-addr, structure).
	Rule string
	// Msg is the human-readable explanation.
	Msg string
}

// Error renders the rejection.
func (e *SliceError) Error() string {
	if e.PC < 0 {
		return fmt.Sprintf("static: slice %s: %s: %s", e.Slice, e.Rule, e.Msg)
	}
	return fmt.Sprintf("static: slice %s: pc %d: %s: %s", e.Slice, e.PC, e.Rule, e.Msg)
}

// Verifier rule identifiers.
const (
	RuleStructure   = "structure"
	RuleControlFlow = "control-flow"
	RuleAPIAllow    = "api-allowlist"
	RuleMemBounds   = "memory-bounds"
	RuleStackBal    = "stack-balance"
	RuleResultAddr  = "result-addr"
)

// VerifySlice statically checks that an extracted slice program is
// safe to replay on an end host: it terminates, touches only memory
// the replay maps, calls only APIs that are deterministic and free of
// host resource side effects, and leaves the result address readable.
// A nil error means every genuine corpus-extracted slice property
// holds; any violation returns a *SliceError naming the rule.
//
// The rules, each matched to a way replay can go wrong:
//
//   - control-flow: jump and call targets must resolve inside the
//     slice and point strictly forward. Backward edges could loop a
//     replay forever; genuine slices are straight-line.
//   - stack-balance: RET must have a matching CALL and the walk must
//     end with call depth zero; stack accesses must stay inside the
//     mapped stack segment when ESP is statically known.
//   - api-allowlist: every CALLAPI must name a registered API with the
//     declared argument count, and must not be a labelled resource API
//     (host side effects), a ClassRandom source (non-deterministic
//     replay), or a termination API. Semantic host-information APIs
//     and pure string helpers remain — exactly the vocabulary
//     algorithm-deterministic identifiers are computed in.
//   - memory-bounds: accesses at statically known addresses must land
//     in mapped segments (writes in writable ones). Reads of mapped
//     but unwritten memory are deterministic zeros, so mapped-ness is
//     precisely the replay-fault criterion.
//   - result-addr: the identifier's address must be mapped.
//
// Address computations the constant walk cannot resolve are accepted:
// the verifier is a MAY-fault filter and must keep every slice the
// dynamic pipeline legitimately extracts.
func VerifySlice(p *isa.Program, resultAddr uint32, reg *winapi.Registry) error {
	if p == nil {
		return &SliceError{Slice: "<nil>", PC: -1, Rule: RuleStructure, Msg: "no program"}
	}
	if err := p.Validate(); err != nil {
		return &SliceError{Slice: p.Name, PC: -1, Rule: RuleStructure, Msg: err.Error()}
	}
	if reg == nil {
		reg = winapi.Standard()
	}
	layout := emu.Layout(p)
	if !layout.Mapped(resultAddr, 1) {
		return &SliceError{Slice: p.Name, PC: -1, Rule: RuleResultAddr,
			Msg: fmt.Sprintf("result address %#x is not mapped", resultAddr)}
	}
	exit := make(map[string]bool)
	for _, n := range winapi.TerminationAPIs() {
		exit[n] = true
	}
	labels := p.Labels()

	// Register state for address resolution: emulator reset values.
	var st [isa.NumRegs]cval
	for r := range st {
		st[r] = konst(0)
	}
	st[isa.ESP] = konst(emu.StackTop)

	fail := func(pc int, rule, format string, args ...interface{}) error {
		return &SliceError{Slice: p.Name, PC: pc, Rule: rule, Msg: fmt.Sprintf(format, args...)}
	}
	// addrOf resolves a memory operand to a constant address if the
	// walk knows enough.
	addrOf := func(o isa.Operand) cval {
		a := konst(o.Imm)
		if o.Sym != "" {
			base, ok := layout.Symbols[o.Sym]
			if !ok {
				return nac()
			}
			a = konst(base + o.Imm)
		}
		if o.HasBase {
			a = alu(isa.ADD, a, st[o.Reg])
		}
		return a
	}
	checkAccess := func(pc int, o isa.Operand, size uint32, write bool) error {
		if o.Kind != isa.KindMem {
			return nil
		}
		a := addrOf(o)
		if a.kind != cConst {
			return nil // unresolvable: accept
		}
		if !layout.Mapped(a.v, size) {
			return fail(pc, RuleMemBounds, "%v access at %#x+%d is unmapped", o, a.v, size)
		}
		if write && !layout.Writable(a.v, size) {
			return fail(pc, RuleMemBounds, "%v write at %#x hits read-only data", o, a.v)
		}
		return nil
	}
	checkStack := func(pc int, a cval, size uint32) error {
		if a.kind != cConst {
			return nil
		}
		if !layout.Mapped(a.v, size) {
			return fail(pc, RuleStackBal, "stack access at %#x+%d outside the mapped stack", a.v, size)
		}
		return nil
	}

	depth := 0
	for pc, in := range p.Instrs {
		switch in.Op {
		case isa.JMP, isa.JZ, isa.JNZ, isa.JL, isa.JGE, isa.CALL:
			t := labels[in.Target]
			if t <= pc {
				return fail(pc, RuleControlFlow, "%s %s targets pc %d: backward edge (potential replay loop)", in.Op, in.Target, t)
			}
			if in.Op == isa.CALL {
				if err := checkStack(pc, alu(isa.SUB, st[isa.ESP], konst(4)), 4); err != nil {
					return err
				}
				depth++
			}
			// Branching invalidates the straight-line constant state.
			for r := range st {
				st[r] = nac()
			}
		case isa.RET:
			depth--
			if depth < 0 {
				return fail(pc, RuleStackBal, "ret without matching call")
			}
			if err := checkStack(pc, st[isa.ESP], 4); err != nil {
				return err
			}
		case isa.PUSH:
			if err := checkStack(pc, alu(isa.SUB, st[isa.ESP], konst(4)), 4); err != nil {
				return err
			}
			if err := checkAccess(pc, in.Dst, 4, false); err != nil {
				return err
			}
		case isa.POP:
			if err := checkStack(pc, st[isa.ESP], 4); err != nil {
				return err
			}
			if err := checkAccess(pc, in.Dst, 4, true); err != nil {
				return err
			}
		case isa.CALLAPI:
			spec, ok := reg.Lookup(in.API)
			if !ok {
				return fail(pc, RuleAPIAllow, "unknown API %q", in.API)
			}
			if spec.NArgs != winapi.Variadic && spec.NArgs != in.NArgs {
				return fail(pc, RuleAPIAllow, "%s expects %d args, callsite passes %d", in.API, spec.NArgs, in.NArgs)
			}
			if spec.IsResource() {
				return fail(pc, RuleAPIAllow, "%s touches host resource namespace %s", in.API, spec.Label.Resource)
			}
			if spec.Label.Class == winapi.ClassRandom {
				return fail(pc, RuleAPIAllow, "%s is a non-deterministic source", in.API)
			}
			if exit[in.API] {
				return fail(pc, RuleAPIAllow, "%s terminates the replaying process", in.API)
			}
			if in.NArgs > 0 {
				if err := checkStack(pc, st[isa.ESP], uint32(4*in.NArgs)); err != nil {
					return err
				}
			}
		case isa.CALLAPIR:
			// A register-indirect API call's callee depends on runtime
			// state the verifier cannot pin down, so none of the
			// allowlist properties can be established. Genuine slices
			// are rebuilt from named calls; computed calls never belong
			// in one.
			return fail(pc, RuleAPIAllow, "register-indirect api call cannot be allowlisted for replay")
		case isa.MOV, isa.LEA, isa.ADD, isa.SUB, isa.XOR, isa.AND,
			isa.OR, isa.SHL, isa.SHR, isa.INC, isa.DEC, isa.CMP, isa.TEST:
			if in.Op != isa.LEA {
				if err := checkAccess(pc, in.Src, 4, false); err != nil {
					return err
				}
				writeDst := in.Op != isa.CMP && in.Op != isa.TEST
				if err := checkAccess(pc, in.Dst, 4, writeDst); err != nil {
					return err
				}
			}
		case isa.MOVB:
			if err := checkAccess(pc, in.Src, 1, false); err != nil {
				return err
			}
			if err := checkAccess(pc, in.Dst, 1, true); err != nil {
				return err
			}
		}
		st = constTransfer(in, st)
	}
	if depth != 0 {
		return fail(-1, RuleStackBal, "%d call(s) without matching ret", depth)
	}
	return nil
}
