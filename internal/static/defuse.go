package static

import (
	"fmt"
	"sort"

	"autovac/internal/isa"
)

// LocKind distinguishes the abstract storage locations the def-use
// analysis tracks.
type LocKind uint8

// Abstract location kinds.
const (
	// LReg is one of the eight general-purpose registers.
	LReg LocKind = iota
	// LFlags is the ZF/SF flags register.
	LFlags
	// LSym is a named data item addressed symbolically ([name] or
	// [name+disp]); partial writes are modelled weakly (a write never
	// kills earlier definitions of the item).
	LSym
	// LMem is the coarse "all other memory" cell: stack slots,
	// register-relative and absolute addresses. It aliases every LSym
	// (a register can point into any data item).
	LMem
)

// Loc is one abstract storage location.
type Loc struct {
	Kind LocKind
	// Reg is set for LReg.
	Reg isa.Reg
	// Sym is set for LSym.
	Sym string
}

// RegLoc returns the location of a register.
func RegLoc(r isa.Reg) Loc { return Loc{Kind: LReg, Reg: r} }

// FlagsLoc returns the flags location.
func FlagsLoc() Loc { return Loc{Kind: LFlags} }

// SymLoc returns the location of a named data item.
func SymLoc(name string) Loc { return Loc{Kind: LSym, Sym: name} }

// MemLoc returns the coarse non-symbolic memory location.
func MemLoc() Loc { return Loc{Kind: LMem} }

// String renders the location.
func (l Loc) String() string {
	switch l.Kind {
	case LReg:
		return l.Reg.String()
	case LFlags:
		return "flags"
	case LSym:
		return "[" + l.Sym + "]"
	default:
		return "mem"
	}
}

// bitset is a fixed-capacity bit vector over instruction indices.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)      { b[i/64] |= 1 << uint(i%64) }
func (b bitset) has(i int) bool { return b[i/64]&(1<<uint(i%64)) != 0 }

// or merges o into b, reporting whether b changed.
func (b bitset) or(o bitset) bool {
	changed := false
	for i := range b {
		n := b[i] | o[i]
		if n != b[i] {
			b[i] = n
			changed = true
		}
	}
	return changed
}

func (b bitset) clone() bitset { return append(bitset(nil), b...) }

func (b bitset) clear() {
	for i := range b {
		b[i] = 0
	}
}

// indices returns the set members in ascending order.
func (b bitset) indices() []int {
	var out []int
	for w, word := range b {
		for word != 0 {
			bit := word & -word
			out = append(out, w*64+popLog2(bit))
			word &^= bit
		}
	}
	return out
}

// popLog2 returns log2 of a one-bit word.
func popLog2(w uint64) int {
	n := 0
	for w > 1 {
		w >>= 1
		n++
	}
	return n
}

// DefUse holds reaching definitions and def-use chains for one
// program: for every instruction, which earlier instructions' writes
// may supply the values it reads.
//
// Precision notes (all deliberately MAY-sided): register and flags
// definitions are strong (a write kills prior writes); memory
// definitions are weak (symbolic items may be partially written, and
// the coarse LMem cell aliases everything reachable through a
// register). CALLAPI is modelled as reading the stack/memory and
// defining EAX, ESP, and memory — the emulator's API implementations
// only touch machine state through those channels.
type DefUse struct {
	cfg  *CFG
	locs []Loc
	ids  map[Loc]int
	// uses[i] and defs[i] are instruction i's abstract use/def sets.
	uses, defs [][]Loc
	// reachIn[i][loc] is the set of instruction indices whose
	// definition of loc may reach instruction i.
	reachIn [][]bitset
}

// BuildDefUse computes reaching definitions over the CFG.
func BuildDefUse(cfg *CFG) *DefUse {
	n := len(cfg.Prog.Instrs)
	d := &DefUse{cfg: cfg, ids: make(map[Loc]int)}
	// Intern the full location universe up front: registers, flags,
	// coarse memory, and every data symbol.
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		d.intern(RegLoc(r))
	}
	d.intern(FlagsLoc())
	d.intern(MemLoc())
	for _, item := range cfg.Prog.Data {
		d.intern(SymLoc(item.Name))
	}
	d.uses = make([][]Loc, n)
	d.defs = make([][]Loc, n)
	for i, in := range cfg.Prog.Instrs {
		d.uses[i], d.defs[i] = effects(in)
	}

	nl := len(d.locs)
	newState := func() []bitset {
		st := make([]bitset, nl)
		for i := range st {
			st[i] = newBitset(n)
		}
		return st
	}
	// Block-level IN/OUT fixpoint.
	ins := make([][]bitset, cfg.NumBlocks())
	outs := make([][]bitset, cfg.NumBlocks())
	for b := range ins {
		ins[b] = newState()
		outs[b] = newState()
	}
	transferBlock := func(b *Block, st []bitset) {
		for i := b.Start; i < b.End; i++ {
			d.transfer(i, st)
		}
	}
	order := cfg.RPO
	if len(order) == 0 && cfg.NumBlocks() > 0 {
		order = []int{0}
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range order {
			b := cfg.Blocks[bi]
			for _, p := range b.Preds {
				for l := range ins[bi] {
					if ins[bi][l].or(outs[p][l]) {
						changed = true
					}
				}
			}
			st := make([]bitset, nl)
			for l := range st {
				st[l] = ins[bi][l].clone()
			}
			transferBlock(b, st)
			for l := range st {
				if outs[bi][l].or(st[l]) {
					changed = true
				}
			}
		}
	}

	// Per-instruction reaching state (including unreachable blocks,
	// which start from an empty IN).
	d.reachIn = make([][]bitset, n)
	for _, b := range cfg.Blocks {
		st := make([]bitset, nl)
		for l := range st {
			st[l] = ins[b.ID][l].clone()
		}
		for i := b.Start; i < b.End; i++ {
			snap := make([]bitset, nl)
			for l := range st {
				snap[l] = st[l].clone()
			}
			d.reachIn[i] = snap
			d.transfer(i, st)
		}
	}
	return d
}

func (d *DefUse) intern(l Loc) int {
	if id, ok := d.ids[l]; ok {
		return id
	}
	id := len(d.locs)
	d.locs = append(d.locs, l)
	d.ids[l] = id
	return id
}

// transfer applies instruction i's definitions to the state.
func (d *DefUse) transfer(i int, st []bitset) {
	// MOVB into a register replaces only the low byte (and the emulator
	// unions taint), so the prior definition still contributes: weak.
	weak := d.cfg.Prog.Instrs[i].Op == isa.MOVB
	for _, l := range d.defs[i] {
		id := d.ids[l]
		switch l.Kind {
		case LReg, LFlags:
			if !weak {
				st[id].clear() // strong update
			}
		}
		st[id].set(i)
	}
}

// UsesAt returns instruction i's abstract use set.
func (d *DefUse) UsesAt(i int) []Loc { return d.uses[i] }

// DefsAt returns instruction i's abstract def set.
func (d *DefUse) DefsAt(i int) []Loc { return d.defs[i] }

// DefsOf returns the instruction indices whose definition of loc may
// reach a use at instruction i, in ascending order. Memory aliasing is
// folded in: a symbolic item's reads also see coarse-memory writers,
// and a coarse-memory read sees every memory writer.
func (d *DefUse) DefsOf(i int, l Loc) []int {
	st := d.reachIn[i]
	if st == nil {
		return nil
	}
	acc := newBitset(len(d.cfg.Prog.Instrs))
	add := func(l Loc) {
		if id, ok := d.ids[l]; ok {
			acc.or(st[id])
		}
	}
	add(l)
	switch l.Kind {
	case LSym:
		add(MemLoc())
	case LMem:
		for _, item := range d.cfg.Prog.Data {
			add(SymLoc(item.Name))
		}
	}
	return acc.indices()
}

// Chain is one def→use edge, for golden tests and debugging.
type Chain struct {
	Def, Use int
	Loc      Loc
}

// Chains enumerates every def→use edge in the program, sorted by
// (use, def, loc).
func (d *DefUse) Chains() []Chain {
	var out []Chain
	for i := range d.uses {
		for _, l := range d.uses[i] {
			for _, def := range d.DefsOf(i, l) {
				out = append(out, Chain{Def: def, Use: i, Loc: l})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Use != out[b].Use {
			return out[a].Use < out[b].Use
		}
		if out[a].Def != out[b].Def {
			return out[a].Def < out[b].Def
		}
		return out[a].Loc.String() < out[b].Loc.String()
	})
	return out
}

// String renders a chain.
func (c Chain) String() string {
	return fmt.Sprintf("%d->%d %s", c.Def, c.Use, c.Loc)
}

// memOperandLoc maps a KindMem operand to its abstract location.
func memOperandLoc(o isa.Operand) Loc {
	if o.Sym != "" && !o.HasBase {
		return SymLoc(o.Sym)
	}
	return MemLoc()
}

// operandUses returns the locations read when an operand is used as a
// source (value read), including the address computation.
func operandUses(o isa.Operand) []Loc {
	switch o.Kind {
	case isa.KindReg:
		return []Loc{RegLoc(o.Reg)}
	case isa.KindMem:
		uses := []Loc{memOperandLoc(o)}
		if o.HasBase {
			uses = append(uses, RegLoc(o.Reg))
		}
		return uses
	default:
		return nil
	}
}

// operandAddrUses returns only the address-computation reads of a
// destination operand (the stored-to location itself is a def).
func operandAddrUses(o isa.Operand) []Loc {
	if o.Kind == isa.KindMem && o.HasBase {
		return []Loc{RegLoc(o.Reg)}
	}
	return nil
}

// operandDefs returns the locations written when an operand is a
// destination.
func operandDefs(o isa.Operand) []Loc {
	switch o.Kind {
	case isa.KindReg:
		return []Loc{RegLoc(o.Reg)}
	case isa.KindMem:
		return []Loc{memOperandLoc(o)}
	default:
		return nil
	}
}

// effects returns an instruction's abstract use and def sets.
func effects(in isa.Instr) (uses, defs []Loc) {
	esp := RegLoc(isa.ESP)
	switch in.Op {
	case isa.NOP, isa.HALT, isa.JMP:
		return nil, nil
	case isa.MOV:
		uses = append(operandUses(in.Src), operandAddrUses(in.Dst)...)
		defs = operandDefs(in.Dst)
	case isa.MOVB:
		// A byte store into a register keeps the upper 24 bits, so the
		// destination's prior value is also an input.
		uses = append(operandUses(in.Src), operandAddrUses(in.Dst)...)
		if in.Dst.Kind == isa.KindReg {
			uses = append(uses, RegLoc(in.Dst.Reg))
		}
		defs = operandDefs(in.Dst)
	case isa.LEA:
		uses = operandAddrUses(in.Src)
		defs = operandDefs(in.Dst)
	case isa.PUSH:
		uses = append(operandUses(in.Dst), esp)
		defs = []Loc{esp, MemLoc()}
	case isa.POP:
		uses = []Loc{esp, MemLoc()}
		defs = append(operandDefs(in.Dst), esp)
		uses = append(uses, operandAddrUses(in.Dst)...)
	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		uses = append(operandUses(in.Dst), operandUses(in.Src)...)
		defs = append(operandDefs(in.Dst), FlagsLoc())
	case isa.INC, isa.DEC:
		uses = operandUses(in.Dst)
		defs = append(operandDefs(in.Dst), FlagsLoc())
	case isa.CMP, isa.TEST:
		uses = append(operandUses(in.Dst), operandUses(in.Src)...)
		defs = []Loc{FlagsLoc()}
	case isa.JZ, isa.JNZ, isa.JL, isa.JGE:
		uses = []Loc{FlagsLoc()}
	case isa.CALL:
		uses = []Loc{esp}
		defs = []Loc{esp, MemLoc()}
	case isa.RET:
		uses = []Loc{esp, MemLoc()}
		defs = []Loc{esp}
	case isa.CALLAPI:
		// Arguments live on the stack; implementations read and write
		// machine state only through memory and EAX.
		uses = []Loc{esp, MemLoc()}
		defs = []Loc{RegLoc(isa.EAX), esp, MemLoc()}
	case isa.CALLAPIR:
		// Like CALLAPI, plus the register holding the resolved target
		// address is an input (the dispatcher reads it to pick the API).
		uses = []Loc{RegLoc(in.Dst.Reg), esp, MemLoc()}
		defs = []Loc{RegLoc(isa.EAX), esp, MemLoc()}
	}
	return uses, defs
}
