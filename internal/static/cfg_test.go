package static_test

import (
	"strings"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/static"
)

// diamond builds the canonical if/else shape:
//
//	0: cmp eax, 0
//	1: jz else
//	2: mov ebx, 1
//	3: jmp join
//	4: else: mov ebx, 2
//	5: join: halt
func diamond(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("diamond")
	b.Cmp(isa.R(isa.EAX), isa.Imm(0)).
		Jz("else").
		Mov(isa.R(isa.EBX), isa.Imm(1)).
		Jmp("join").
		Label("else").Mov(isa.R(isa.EBX), isa.Imm(2)).
		Label("join").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestCFGGolden(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *isa.Program
		want  string
	}{
		{
			name:  "diamond",
			build: diamond,
			want: `b0 [0,2) -> [1 2]
b1 [2,4) -> [3]
b2 [4,5) -> [3]
b3 [5,6)
`,
		},
		{
			name: "loop",
			// 0: mov ecx,3 / 1: loop: dec ecx / 2: jnz loop / 3: halt
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("loop")
				b.Mov(isa.R(isa.ECX), isa.Imm(3)).
					Label("loop").Dec(isa.R(isa.ECX)).
					Jnz("loop").
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: `b0 [0,1) -> [1]
b1 [1,3) -> [1 2]
b2 [3,4)
`,
		},
		{
			name: "unreachable block",
			// 0: jmp end / 1: mov eax,1 (dead) / 2: end: halt
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("dead")
				b.Jmp("end").
					Mov(isa.R(isa.EAX), isa.Imm(1)).
					Label("end").Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: `b0 [0,1) -> [2]
b1 [1,2) -> [2] (unreachable)
b2 [2,3)
`,
		},
		{
			name: "fallthrough into label",
			// 0: mov eax,1 / 1: tgt: inc eax / 2: cmp eax,5 / 3: jl tgt / 4: halt
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("fall")
				b.Mov(isa.R(isa.EAX), isa.Imm(1)).
					Label("tgt").Inc(isa.R(isa.EAX)).
					Cmp(isa.R(isa.EAX), isa.Imm(5)).
					Jl("tgt").
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: `b0 [0,1) -> [1]
b1 [1,4) -> [1 2]
b2 [4,5)
`,
		},
		{
			name: "call and ret over-approximation",
			// 0: call sub / 1: halt / 2: sub: ret
			// CALL flows to both the target and the fallthrough; RET
			// flows to every call-return point.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("callret")
				b.Call("sub").
					Halt().
					Label("sub").Ret()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: `b0 [0,1) -> [1 2]
b1 [1,2)
b2 [2,3) -> [1]
`,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, err := static.BuildCFG(tt.build(t))
			if err != nil {
				t.Fatal(err)
			}
			if got := cfg.String(); got != tt.want {
				t.Errorf("CFG mismatch\ngot:\n%s\nwant:\n%s", got, tt.want)
			}
		})
	}
}

func TestDominatorsGolden(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *isa.Program
		// idom[i] is block i's immediate dominator (-1 = none/entry).
		idom []int
	}{
		{
			name:  "diamond",
			build: diamond,
			idom:  []int{-1, 0, 0, 0}, // the join is dominated by the fork, not a branch
		},
		{
			name: "loop",
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("loop")
				b.Mov(isa.R(isa.ECX), isa.Imm(3)).
					Label("loop").Dec(isa.R(isa.ECX)).
					Jnz("loop").
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			idom: []int{-1, 0, 1},
		},
		{
			name: "unreachable block has no dominator",
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("dead")
				b.Jmp("end").
					Mov(isa.R(isa.EAX), isa.Imm(1)).
					Label("end").Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			idom: []int{-1, -1, 0},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg, err := static.BuildCFG(tt.build(t))
			if err != nil {
				t.Fatal(err)
			}
			dom := static.Dominators(cfg)
			if len(dom.Idom) != len(tt.idom) {
				t.Fatalf("got %d blocks, want %d", len(dom.Idom), len(tt.idom))
			}
			for i, want := range tt.idom {
				if dom.Idom[i] != want {
					t.Errorf("idom[b%d] = %d, want %d", i, dom.Idom[i], want)
				}
			}
		})
	}
}

func TestDominates(t *testing.T) {
	cfg, err := static.BuildCFG(diamond(t))
	if err != nil {
		t.Fatal(err)
	}
	dom := static.Dominators(cfg)
	checks := []struct {
		a, b int
		want bool
	}{
		{0, 0, true},  // reflexive
		{0, 3, true},  // fork dominates join
		{1, 3, false}, // a branch does not dominate the join
		{2, 3, false},
		{3, 1, false},
	}
	for _, c := range checks {
		if got := dom.Dominates(c.a, c.b); got != c.want {
			t.Errorf("Dominates(b%d, b%d) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestCFGRejectsInvalidProgram(t *testing.T) {
	p := &isa.Program{Name: "bad", Instrs: []isa.Instr{{Op: isa.JMP, Target: "nowhere"}}}
	if _, err := static.BuildCFG(p); err == nil {
		t.Fatal("BuildCFG accepted a program with an unresolved jump target")
	}
}

func TestCFGStringMarksUnreachable(t *testing.T) {
	b := isa.NewBuilder("dead")
	b.Jmp("end").Nop().Label("end").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(cfg.String(), "(unreachable)") {
		t.Errorf("String() does not mark the dead block:\n%s", cfg.String())
	}
}
