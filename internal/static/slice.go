package static

// BackwardSlice computes the static backward slice from the
// instruction at pc: the set of instruction indices whose effects may
// flow into pc's inputs, transitively, along any CFG path. pc itself
// is included.
//
// This over-approximates the dynamic backward slicing of determinism
// analysis (internal/determinism.Extract): a dynamic slice walks one
// executed path demanding concrete byte ranges, while this walk
// demands abstract locations over every path with weak memory
// updates. The soundness cross-check test asserts the containment on
// the whole corpus: every instruction the dynamic slicer keeps is in
// the static slice of its criterion.
func (d *DefUse) BackwardSlice(pc int) map[int]bool {
	slice := make(map[int]bool)
	work := []int{pc}
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		if slice[i] {
			continue
		}
		slice[i] = true
		for _, u := range d.uses[i] {
			for _, def := range d.DefsOf(i, u) {
				if !slice[def] {
					work = append(work, def)
				}
			}
		}
	}
	return slice
}
