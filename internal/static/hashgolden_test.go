package static_test

import (
	"testing"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/static"
)

// emitHashChain emits the in-line loader-hash computation the
// hash-resolving malware bands use — the same rol5/xor decomposition
// internal/malware emits — leaving the hash in EDX.
func emitHashChain(b *isa.Builder, name string) {
	b.Mov(isa.R(isa.EDX), isa.Imm(0x811C9DC5))
	for i := 0; i < len(name); i++ {
		b.Mov(isa.R(isa.ECX), isa.R(isa.EDX))
		b.Shl(isa.R(isa.EDX), isa.Imm(5))
		b.Shr(isa.R(isa.ECX), isa.Imm(27))
		b.Or(isa.R(isa.EDX), isa.R(isa.ECX))
		b.Xor(isa.R(isa.EDX), isa.Imm(uint32(name[i])))
	}
}

// TestConstPropRecoversLoaderHashes is the golden cross-check between
// the static and dynamic halves of hash resolution: constant
// propagation over the emitted rol/xor chain must recover exactly the
// value emu.LoaderHash computes — the value sitting in the loader
// image's export rows. If either side drifts (a changed basis, a
// different rotate decomposition, a const-prop bug in SHL/SHR/OR/XOR),
// the recovered constant stops matching the table and Phase-0 triage
// silently degrades to ⊤; this test turns that drift into a failure.
func TestConstPropRecoversLoaderHashes(t *testing.T) {
	names := []string{
		"CreateMutexA",
		"OpenMutexA",
		"GetTickCount",
		"GetFileAttributesA",
		"A", // single byte: one rotate round
	}
	for _, name := range names {
		t.Run(name, func(t *testing.T) {
			b := isa.NewBuilder("hash-golden")
			emitHashChain(b, name)
			b.Halt()
			prog, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			cfg, err := static.BuildCFG(prog)
			if err != nil {
				t.Fatal(err)
			}
			cp := static.BuildConstProp(cfg)
			halt := len(prog.Instrs) - 1
			got, ok := cp.ConstAt(halt, isa.EDX)
			if !ok {
				t.Fatalf("EDX not constant at the end of the chain")
			}
			if want := emu.LoaderHash(name); got != want {
				t.Errorf("static hash %#x, runtime emu.LoaderHash = %#x", got, want)
			}
		})
	}
}

// TestSurfaceResolvesComputedHashCall runs the whole idiom through the
// Phase-0 pass on a hand-built program: compute the hash in-line, walk
// the kernel32 export table, call through the matched row's address.
// The recovered surface must name exactly the hashed API (plus
// nothing), proving the pass connects const-prop, the loader image,
// and the hash-match branch refinement end to end.
func TestSurfaceResolvesComputedHashCall(t *testing.T) {
	const api = "GetTickCount"
	k32 := emu.Loader().Module("kernel32.dll")
	if k32 == nil {
		t.Fatal("loader image missing kernel32.dll")
	}
	b := isa.NewBuilder("surface-idiom")
	emitHashChain(b, api)
	b.Mov(isa.R(isa.ESI), isa.Imm(k32.TableAddr))
	b.Label("scan")
	b.Mov(isa.R(isa.EAX), isa.Mem(isa.ESI, 0))
	b.Cmp(isa.R(isa.EAX), isa.R(isa.EDX))
	b.Jz("found")
	b.Add(isa.R(isa.ESI), isa.Imm(8))
	b.Cmp(isa.R(isa.ESI), isa.Imm(k32.TableEnd))
	b.Jl("scan")
	b.Halt()
	b.Label("found")
	b.Mov(isa.R(isa.EBX), isa.Mem(isa.ESI, 4))
	b.CallAPIR(isa.EBX)
	b.Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	surf, err := static.RecoverAPISurface(prog)
	if err != nil {
		t.Fatal(err)
	}
	if surf.Top {
		t.Fatal("surface degraded to ⊤ on the canonical idiom")
	}
	if len(surf.APIs) != 1 || surf.APIs[0] != api {
		t.Errorf("surface = %v, want exactly [%s]", surf.APIs, api)
	}
}
