package static

import (
	"autovac/internal/isa"
	"autovac/internal/winapi"
)

// TaintFlow is the static counterpart of the emulator's dynamic taint
// pass: a forward MAY analysis that decides, per resource-API
// callsite, whether data produced by the call can possibly reach a
// cmp/test predicate. Phase-I uses it to skip emulating samples it
// proves candidate-free.
//
// The abstraction mirrors the dynamic semantics from above:
//
//   - every CALLAPI whose label marks it a taint source (a labelled
//     resource API or a semantic/random data source) may taint EAX and
//     any memory its implementation writes (the coarse LMem cell,
//     which aliases all symbolic items);
//   - resource APIs set an abstract last-error cell that GetLastError
//     reads back into EAX (the emulator's lastErrTaint);
//   - taint propagates through MOV/ALU/stack traffic along the same
//     use/def sets the reaching-definitions pass derives, with the
//     `xor r, r` clear idiom and MOVB's partial-register weakness
//     modelled exactly as the emulator does;
//   - a CMP/TEST whose inputs may be tainted marks every contributing
//     source as predicate-reachable (the dynamic pipeline's
//     PredicateHit).
//
// Whatever source the emulator observes in a tainted predicate is
// therefore predicate-reachable here; the reverse need not hold.
type TaintFlow struct {
	cfg *CFG
	// Sources lists the pcs of taint-allocating CALLAPI instructions,
	// ascending — the callsites Phase-I could turn into candidates.
	Sources []int
	// ResourceSources lists the subset of Sources whose API touches a
	// labelled resource namespace.
	ResourceSources []int
	srcIdx          map[int]int
	reach           []bool
}

// taintState carries, per abstract location, the set of sources whose
// taint may currently live there. Index len(locs) is the abstract
// last-error cell.
type taintState []bitset

// BuildTaintFlow runs the forward taint fixpoint. APIs absent from the
// registry contribute nothing (the emulator faults on them before any
// predicate could fire).
func BuildTaintFlow(cfg *CFG, reg *winapi.Registry) *TaintFlow {
	if reg == nil {
		reg = winapi.Standard()
	}
	tf := &TaintFlow{cfg: cfg, srcIdx: make(map[int]int)}
	prog := cfg.Prog
	for pc, in := range prog.Instrs {
		switch in.Op {
		case isa.CALLAPI:
			spec, ok := reg.Lookup(in.API)
			if !ok {
				continue
			}
			if spec.IsResource() || spec.Label.Class != winapi.ClassNone {
				tf.srcIdx[pc] = len(tf.Sources)
				tf.Sources = append(tf.Sources, pc)
				if spec.IsResource() {
					tf.ResourceSources = append(tf.ResourceSources, pc)
				}
			}
		case isa.CALLAPIR:
			// The callee is resolved at runtime, so this pass cannot
			// name it. Stay MAY-sided: treat every register-indirect
			// callsite as a potential resource source. The API-surface
			// pass (apisurface.go) recovers the actual callee set when
			// the target is statically resolvable.
			tf.srcIdx[pc] = len(tf.Sources)
			tf.Sources = append(tf.Sources, pc)
			tf.ResourceSources = append(tf.ResourceSources, pc)
		}
	}
	tf.reach = make([]bool, len(tf.Sources))
	if len(tf.Sources) == 0 || cfg.NumBlocks() == 0 {
		return tf
	}

	// Location universe: registers, flags, coarse memory, symbols, and
	// the abstract last-error cell.
	locID := make(map[Loc]int)
	var locs []Loc
	intern := func(l Loc) int {
		if id, ok := locID[l]; ok {
			return id
		}
		locID[l] = len(locs)
		locs = append(locs, l)
		return locID[l]
	}
	for r := isa.Reg(0); r < isa.NumRegs; r++ {
		intern(RegLoc(r))
	}
	intern(FlagsLoc())
	intern(MemLoc())
	for _, item := range prog.Data {
		intern(SymLoc(item.Name))
	}
	lastErr := len(locs)
	nl := len(locs) + 1
	ns := len(tf.Sources)

	newState := func() taintState {
		st := make(taintState, nl)
		for i := range st {
			st[i] = newBitset(ns)
		}
		return st
	}
	cloneState := func(s taintState) taintState {
		c := make(taintState, nl)
		for i := range s {
			c[i] = s[i].clone()
		}
		return c
	}

	// read returns the taint visible to a use of l, folding aliasing.
	read := func(st taintState, l Loc) bitset {
		acc := newBitset(ns)
		if id, ok := locID[l]; ok {
			acc.or(st[id])
		}
		switch l.Kind {
		case LSym:
			acc.or(st[locID[MemLoc()]])
		case LMem:
			for _, item := range prog.Data {
				acc.or(st[locID[SymLoc(item.Name)]])
			}
		}
		return acc
	}

	// transfer applies instruction i; when record is non-nil it receives
	// predicate-contributing sources.
	transfer := func(i int, st taintState, record func(bitset)) {
		in := prog.Instrs[i]
		uses, defs := effects(in)
		t := newBitset(ns)
		for _, u := range uses {
			t.or(read(st, u))
		}
		switch {
		case in.Op == isa.XOR && in.Dst.Kind == isa.KindReg &&
			in.Src.Kind == isa.KindReg && in.Dst.Reg == in.Src.Reg:
			// The taint-clearing idiom: result and flags are untainted.
			st[locID[RegLoc(in.Dst.Reg)]].clear()
			st[locID[FlagsLoc()]].clear()
			return
		case in.Op.IsPredicate():
			st[locID[FlagsLoc()]] = t
			if record != nil {
				record(t)
			}
			return
		case in.Op == isa.CALLAPI:
			spec, ok := reg.Lookup(in.API)
			if !ok {
				return
			}
			if in.API == "GetLastError" {
				t.or(st[lastErr])
			}
			if idx, isSrc := tf.srcIdx[i]; isSrc {
				t.set(idx)
			}
			// EAX strong (the emulator overwrites its taint); memory
			// weak (implementations write output buffers).
			st[locID[RegLoc(isa.EAX)]] = t.clone()
			st[locID[MemLoc()]].or(t)
			if spec.IsResource() {
				// Failure provenance for later GetLastError reads.
				fresh := newBitset(ns)
				if idx, isSrc := tf.srcIdx[i]; isSrc {
					fresh.set(idx)
				}
				st[lastErr] = fresh
			}
			return
		case in.Op == isa.CALLAPIR:
			// Unknown callee: assume the worst of any registered API —
			// a resource source that taints EAX and memory and sets the
			// last-error provenance.
			if idx, isSrc := tf.srcIdx[i]; isSrc {
				t.set(idx)
				fresh := newBitset(ns)
				fresh.set(idx)
				st[lastErr] = fresh
			}
			st[locID[RegLoc(isa.EAX)]] = t.clone()
			st[locID[MemLoc()]].or(t)
			return
		}
		weak := in.Op == isa.MOVB
		for _, dl := range defs {
			id := locID[dl]
			switch dl.Kind {
			case LReg, LFlags:
				if dl.Kind == LReg && dl.Reg == isa.ESP &&
					(in.Op == isa.PUSH || in.Op == isa.POP ||
						in.Op == isa.CALL || in.Op == isa.RET) {
					// Stack-pointer arithmetic never carries data taint.
					continue
				}
				if weak {
					st[id].or(t)
				} else {
					st[id] = t.clone()
				}
			default:
				st[id].or(t) // memory: weak
			}
		}
	}

	ins := make([]taintState, cfg.NumBlocks())
	outs := make([]taintState, cfg.NumBlocks())
	for b := range ins {
		ins[b] = newState()
		outs[b] = newState()
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range cfg.RPO {
			b := cfg.Blocks[bi]
			for _, p := range b.Preds {
				for l := range ins[bi] {
					if ins[bi][l].or(outs[p][l]) {
						changed = true
					}
				}
			}
			st := cloneState(ins[bi])
			for i := b.Start; i < b.End; i++ {
				transfer(i, st, nil)
			}
			for l := range st {
				if outs[bi][l].or(st[l]) {
					changed = true
				}
			}
		}
	}

	// Final pass: record which sources feed predicates.
	for _, bi := range cfg.RPO {
		b := cfg.Blocks[bi]
		st := cloneState(ins[bi])
		for i := b.Start; i < b.End; i++ {
			transfer(i, st, func(t bitset) {
				for _, s := range t.indices() {
					tf.reach[s] = true
				}
			})
		}
	}
	return tf
}

// PredicateReachable reports whether the taint source allocated at the
// given CALLAPI pc may reach a cmp/test predicate. Unknown pcs report
// false.
func (tf *TaintFlow) PredicateReachable(pc int) bool {
	idx, ok := tf.srcIdx[pc]
	return ok && tf.reach[idx]
}

// AnyPredicateReachable reports whether any source may reach a
// predicate — the sample-level Phase-I pre-filter signal.
func (tf *TaintFlow) AnyPredicateReachable() bool {
	for _, r := range tf.reach {
		if r {
			return true
		}
	}
	return false
}

// MayHaveCandidates statically decides whether Phase-I emulation of the
// program could yield any candidate (a taint source observed in a
// tainted predicate). A false result is a proof of absence under the
// analysis' over-approximation; true means "cannot rule it out".
func MayHaveCandidates(p *isa.Program, reg *winapi.Registry) (bool, error) {
	cfg, err := BuildCFG(p)
	if err != nil {
		return false, err
	}
	return BuildTaintFlow(cfg, reg).AnyPredicateReachable(), nil
}
