package static

import "autovac/internal/isa"

// constKind is the three-point lattice of the constant propagation.
type constKind uint8

const (
	cUndef constKind = iota // no path defines the register yet (top)
	cConst                  // single known value on every path
	cNAC                    // not a constant (bottom)
)

// cval is one lattice element.
type cval struct {
	kind constKind
	v    uint32
}

func top() cval           { return cval{kind: cUndef} }
func nac() cval           { return cval{kind: cNAC} }
func konst(v uint32) cval { return cval{kind: cConst, v: v} }

// meet joins two lattice elements.
func meet(a, b cval) cval {
	switch {
	case a.kind == cUndef:
		return b
	case b.kind == cUndef:
		return a
	case a.kind == cConst && b.kind == cConst && a.v == b.v:
		return a
	default:
		return nac()
	}
}

// ConstProp is the result of intraprocedural constant propagation over
// the eight general-purpose registers. Memory is not modelled (any
// load yields not-a-constant), which keeps the pass a safe
// under-approximation of "definitely this value": whenever ConstAt
// reports a constant, the emulator computes that exact value at that
// point on every path reaching it.
type ConstProp struct {
	cfg *CFG
	// in[i][r] is register r's lattice value before instruction i.
	in [][isa.NumRegs]cval
}

// BuildConstProp runs the propagation to fixpoint.
func BuildConstProp(cfg *CFG) *ConstProp {
	n := len(cfg.Prog.Instrs)
	cp := &ConstProp{cfg: cfg, in: make([][isa.NumRegs]cval, n)}

	// Entry state mirrors emulator reset: registers are zeroed except
	// ESP, whose concrete stack address we leave abstract.
	var entry [isa.NumRegs]cval
	for r := range entry {
		entry[r] = konst(0)
	}
	entry[isa.ESP] = nac()

	ins := make([][isa.NumRegs]cval, cfg.NumBlocks())
	outs := make([][isa.NumRegs]cval, cfg.NumBlocks())
	seeded := make([]bool, cfg.NumBlocks())
	if cfg.NumBlocks() > 0 {
		ins[0] = entry
		seeded[0] = true
	}
	for changed := true; changed; {
		changed = false
		for _, bi := range cfg.RPO {
			b := cfg.Blocks[bi]
			st := ins[bi]
			for _, p := range b.Preds {
				if !seeded[p] {
					continue
				}
				for r := range st {
					st[r] = meet(st[r], outs[p][r])
				}
			}
			if st != ins[bi] {
				ins[bi] = st
				changed = true
			}
			for i := b.Start; i < b.End; i++ {
				st = constTransfer(cfg.Prog.Instrs[i], st)
			}
			if !seeded[bi] || st != outs[bi] {
				outs[bi] = st
				seeded[bi] = true
				changed = true
			}
		}
	}
	for _, b := range cfg.Blocks {
		st := ins[b.ID]
		if !seeded[b.ID] {
			// Unreachable: everything unknown.
			for r := range st {
				st[r] = nac()
			}
		}
		for i := b.Start; i < b.End; i++ {
			cp.in[i] = st
			st = constTransfer(cfg.Prog.Instrs[i], st)
		}
	}
	return cp
}

// operandConst evaluates a source operand against the register state.
func operandConst(o isa.Operand, st [isa.NumRegs]cval) cval {
	switch o.Kind {
	case isa.KindReg:
		return st[o.Reg]
	case isa.KindImm:
		if o.Sym != "" {
			// Symbol addresses are resolved at load time; leave abstract.
			return nac()
		}
		return konst(o.Imm)
	default:
		// Memory is unmodelled.
		return nac()
	}
}

// constTransfer applies one instruction to the register state,
// mirroring the emulator's ALU (internal/emu exec.go).
func constTransfer(in isa.Instr, st [isa.NumRegs]cval) [isa.NumRegs]cval {
	set := func(o isa.Operand, v cval) {
		if o.Kind == isa.KindReg {
			st[o.Reg] = v
		}
	}
	switch in.Op {
	case isa.MOV:
		set(in.Dst, operandConst(in.Src, st))
	case isa.MOVB:
		if in.Dst.Kind == isa.KindReg {
			old := st[in.Dst.Reg]
			src := operandConst(in.Src, st)
			if old.kind == cConst && src.kind == cConst {
				st[in.Dst.Reg] = konst((old.v &^ 0xFF) | (src.v & 0xFF))
			} else {
				st[in.Dst.Reg] = nac()
			}
		}
	case isa.LEA:
		set(in.Dst, nac())
	case isa.POP:
		set(in.Dst, nac())
		st[isa.ESP] = alu(isa.ADD, st[isa.ESP], konst(4))
	case isa.PUSH:
		st[isa.ESP] = alu(isa.SUB, st[isa.ESP], konst(4))
	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		set(in.Dst, alu(in.Op, operandConst(in.Dst, st), operandConst(in.Src, st)))
	case isa.INC:
		set(in.Dst, alu(isa.ADD, operandConst(in.Dst, st), konst(1)))
	case isa.DEC:
		set(in.Dst, alu(isa.SUB, operandConst(in.Dst, st), konst(1)))
	case isa.CALL:
		st[isa.ESP] = alu(isa.SUB, st[isa.ESP], konst(4))
	case isa.RET:
		st[isa.ESP] = alu(isa.ADD, st[isa.ESP], konst(4))
	case isa.CALLAPI, isa.CALLAPIR:
		st[isa.EAX] = nac()
		// Stdcall: the callee pops its arguments, so ESP moves by an
		// amount the instruction states; the return-value write is the
		// only register effect. A register-indirect call reads its
		// target register but clobbers nothing beyond EAX/ESP either.
		st[isa.ESP] = alu(isa.ADD, st[isa.ESP], konst(uint32(4*in.NArgs)))
	}
	return st
}

// alu evaluates a binary ALU operation on lattice values with the
// emulator's exact wrap/shift-mask semantics.
func alu(op isa.Opcode, a, b cval) cval {
	if a.kind != cConst || b.kind != cConst {
		return nac()
	}
	var v uint32
	switch op {
	case isa.ADD:
		v = a.v + b.v
	case isa.SUB:
		v = a.v - b.v
	case isa.XOR:
		v = a.v ^ b.v
	case isa.AND:
		v = a.v & b.v
	case isa.OR:
		v = a.v | b.v
	case isa.SHL:
		v = a.v << (b.v & 31)
	case isa.SHR:
		v = a.v >> (b.v & 31)
	default:
		return nac()
	}
	return konst(v)
}

// ConstAt reports register r's value before instruction i, if the pass
// proved it constant on every path.
func (cp *ConstProp) ConstAt(i int, r isa.Reg) (uint32, bool) {
	c := cp.in[i][r]
	return c.v, c.kind == cConst
}
