package static_test

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/static"
)

// chainsFor renders the def-use chains as one sorted line each, the
// golden-test representation.
func chainsFor(t *testing.T, p *isa.Program) []string {
	t.Helper()
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	du := static.BuildDefUse(cfg)
	var out []string
	for _, c := range du.Chains() {
		out = append(out, c.String())
	}
	sort.Strings(out)
	return out
}

func TestDefUseGolden(t *testing.T) {
	tests := []struct {
		name  string
		build func(t *testing.T) *isa.Program
		want  []string
	}{
		{
			name: "straight line",
			// 0: mov eax,1 / 1: mov ebx,eax / 2: add eax,ebx / 3: halt
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("line")
				b.Mov(isa.R(isa.EAX), isa.Imm(1)).
					Mov(isa.R(isa.EBX), isa.R(isa.EAX)).
					Add(isa.R(isa.EAX), isa.R(isa.EBX)).
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"0->1 eax",
				"0->2 eax",
				"1->2 ebx",
			},
		},
		{
			name: "both branch defs reach the join use",
			// The diamond writes ebx on both arms; the use after the
			// join sees both definitions.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("join-use")
				b.Cmp(isa.R(isa.EAX), isa.Imm(0)). // 0
					Jz("else").                        // 1
					Mov(isa.R(isa.EBX), isa.Imm(1)).   // 2
					Jmp("join").                       // 3
					Label("else").
					Mov(isa.R(isa.EBX), isa.Imm(2)). // 4
					Label("join").
					Add(isa.R(isa.ECX), isa.R(isa.EBX)). // 5
					Halt()                               // 6
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"0->1 flags", // cmp feeds the jz
				"2->5 ebx",
				"4->5 ebx",
			},
		},
		{
			name: "strong update kills the earlier def",
			// 0: mov eax,1 / 1: mov eax,2 / 2: mov ebx,eax / 3: halt —
			// only the second def reaches the use.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("kill")
				b.Mov(isa.R(isa.EAX), isa.Imm(1)).
					Mov(isa.R(isa.EAX), isa.Imm(2)).
					Mov(isa.R(isa.EBX), isa.R(isa.EAX)).
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"1->2 eax",
			},
		},
		{
			name: "movb is a weak register def",
			// A byte write into a register keeps the upper 24 bits, so
			// the earlier full def still reaches the use — and the MOVB
			// itself both uses and defines the register.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("movb")
				b.Mov(isa.R(isa.EAX), isa.Imm(0x11223344)).
					Movb(isa.R(isa.EAX), isa.Imm(0x55)).
					Mov(isa.R(isa.EBX), isa.R(isa.EAX)).
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"0->1 eax", // movb reads the register it partially writes
				"0->2 eax", // ...and does not kill the full def
				"1->2 eax",
			},
		},
		{
			name: "loop-carried def reaches its own use",
			// 0: mov ecx,3 / 1: loop: dec ecx / 2: jnz loop / 3: halt —
			// dec's def flows around the back edge into itself.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("loop-du")
				b.Mov(isa.R(isa.ECX), isa.Imm(3)).
					Label("loop").Dec(isa.R(isa.ECX)).
					Jnz("loop").
					Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"0->1 ecx",
				"1->1 ecx",
				"1->2 flags",
			},
		},
		{
			name: "memory defs are weak and alias symbols",
			// A write through a register base could hit any data item,
			// so both it and the direct symbolic store reach the load;
			// chains carry the use-site location, so the aliasing def
			// appears under the symbol it may have clobbered.
			build: func(t *testing.T) *isa.Program {
				b := isa.NewBuilder("mem")
				b.Buf("slot", 8)
				b.Mov(isa.MemSym("slot"), isa.Imm(1)).   // 0: direct store
					Mov(isa.Mem(isa.EDI, 0), isa.Imm(2)). // 1: aliasing store
					Mov(isa.R(isa.EAX), isa.MemSym("slot")). // 2: load
					Halt()                                   // 3
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				return p
			},
			want: []string{
				"0->2 [slot]",
				"1->2 [slot]",
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := chainsFor(t, tt.build(t))
			if !reflect.DeepEqual(got, tt.want) {
				t.Errorf("chains mismatch\ngot:  %s\nwant: %s",
					strings.Join(got, ", "), strings.Join(tt.want, ", "))
			}
		})
	}
}

func TestBackwardSliceDropsIrrelevantDefs(t *testing.T) {
	// 0: mov eax,7 / 1: mov ebx,eax / 2: mov ecx,99 / 3: add ebx,1 / 4: halt
	b := isa.NewBuilder("bslice")
	b.Mov(isa.R(isa.EAX), isa.Imm(7)).
		Mov(isa.R(isa.EBX), isa.R(isa.EAX)).
		Mov(isa.R(isa.ECX), isa.Imm(99)).
		Add(isa.R(isa.EBX), isa.Imm(1)).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	du := static.BuildDefUse(cfg)
	got := du.BackwardSlice(3)
	want := map[int]bool{0: true, 1: true, 3: true}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("BackwardSlice(3) = %v, want %v", got, want)
	}
}

func TestConstProp(t *testing.T) {
	// 0: mov eax,2 / 1: shl eax,3 / 2: add eax,1 / 3: mov ebx,eax / 4: halt
	b := isa.NewBuilder("cp")
	b.Mov(isa.R(isa.EAX), isa.Imm(2)).
		Shl(isa.R(isa.EAX), isa.Imm(3)).
		Add(isa.R(isa.EAX), isa.Imm(1)).
		Mov(isa.R(isa.EBX), isa.R(isa.EAX)).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	cp := static.BuildConstProp(cfg)
	checks := []struct {
		pc   int
		reg  isa.Reg
		val  uint32
		konw bool
	}{
		{1, isa.EAX, 2, true},
		{2, isa.EAX, 16, true},
		{3, isa.EAX, 17, true},
		{4, isa.EBX, 17, true},
	}
	for _, c := range checks {
		v, ok := cp.ConstAt(c.pc, c.reg)
		if ok != c.konw || (ok && v != c.val) {
			t.Errorf("ConstAt(%d, %s) = %d,%v; want %d,%v", c.pc, c.reg, v, ok, c.val, c.konw)
		}
	}
}

func TestConstPropBranchMergeIsNotConstant(t *testing.T) {
	// ebx is 1 on one arm and 2 on the other — at the join it must not
	// be reported constant.
	b := isa.NewBuilder("cp-merge")
	b.Cmp(isa.R(isa.EAX), isa.Imm(0)).
		Jz("else").
		Mov(isa.R(isa.EBX), isa.Imm(1)).
		Jmp("join").
		Label("else").Mov(isa.R(isa.EBX), isa.Imm(2)).
		Label("join").Halt() // pc 5
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	cp := static.BuildConstProp(cfg)
	if v, ok := cp.ConstAt(5, isa.EBX); ok {
		t.Errorf("ConstAt(join, ebx) = %d claimed constant across diverging arms", v)
	}
}

func TestConstPropMovbMergesLowByte(t *testing.T) {
	// movb writes only the low byte, exactly as the emulator does.
	b := isa.NewBuilder("cp-movb")
	b.Mov(isa.R(isa.EAX), isa.Imm(0x11223344)).
		Movb(isa.R(isa.EAX), isa.Imm(0x55)).
		Halt() // pc 2
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	cp := static.BuildConstProp(cfg)
	v, ok := cp.ConstAt(2, isa.EAX)
	if !ok || v != 0x11223355 {
		t.Errorf("ConstAt(2, eax) = %#x,%v; want 0x11223355,true", v, ok)
	}
}

// TestConstPropAgreesWithALU spot-checks the wrap and shift-mask
// semantics against the same arithmetic the emulator performs.
func TestConstPropAgreesWithALU(t *testing.T) {
	cases := []struct {
		emit func(b *isa.Builder)
		want uint32
	}{
		{func(b *isa.Builder) { // sub wraps below zero
			b.Mov(isa.R(isa.EAX), isa.Imm(1)).Sub(isa.R(isa.EAX), isa.Imm(3))
		}, 0xFFFFFFFE},
		{func(b *isa.Builder) { // shift count masked by &31
			b.Mov(isa.R(isa.EAX), isa.Imm(1)).Shl(isa.R(isa.EAX), isa.Imm(33))
		}, 2},
		{func(b *isa.Builder) { // xor self clears
			b.Mov(isa.R(isa.EAX), isa.Imm(0xDEAD)).Xor(isa.R(isa.EAX), isa.R(isa.EAX))
		}, 0},
	}
	for i, c := range cases {
		b := isa.NewBuilder(fmt.Sprintf("alu-%d", i))
		c.emit(b)
		b.Halt()
		p, err := b.Build()
		if err != nil {
			t.Fatal(err)
		}
		cfg, err := static.BuildCFG(p)
		if err != nil {
			t.Fatal(err)
		}
		cp := static.BuildConstProp(cfg)
		halt := len(p.Instrs) - 1
		if v, ok := cp.ConstAt(halt, isa.EAX); !ok || v != c.want {
			t.Errorf("case %d: ConstAt = %#x,%v; want %#x,true", i, v, ok, c.want)
		}
	}
}
