// Package static is the binary-level static analysis layer over the isa
// IR. Where the rest of the reproduction is dynamic (taint tracking,
// predicate detection, and backward slicing over emulated traces, paper
// §III–IV), this package answers the same questions from the program
// text alone, in the style of static system-call-identification work
// (B-Side et al., see PAPERS.md):
//
//   - CFG construction (basic blocks, successors, reverse postorder),
//     a dominator tree, reaching definitions / def-use chains over
//     registers, flags, and symbolic memory operands, and
//     intraprocedural constant propagation (cfg.go, dom.go, defuse.go,
//     constprop.go);
//   - a static taint pre-filter deciding, per resource-API callsite,
//     whether the call's result can possibly reach a cmp/test + jcc
//     predicate — Phase-I skips emulating samples the pass proves
//     candidate-free (taintflow.go);
//   - a static backward slice over-approximating the dynamic slices of
//     determinism analysis, used to cross-check soundness (slice.go);
//   - a slice verifier rejecting non-replayable extracted slices
//     before they are packed and distributed to end hosts (verify.go).
//
// Every analysis here is a MAY (over-approximating) analysis: whatever
// the dynamic pipeline observes is contained in what the static pass
// admits. The soundness tests pin that relation on the whole synthetic
// corpus.
package static

import (
	"fmt"
	"sort"

	"autovac/internal/isa"
)

// Block is one basic block: a maximal straight-line run of
// instructions [Start, End) entered only at Start.
type Block struct {
	// ID is the block's index in CFG.Blocks.
	ID int
	// Start and End delimit the instruction range [Start, End).
	Start, End int
	// Succs and Preds are CFG edges, as block IDs, in ascending order.
	Succs, Preds []int
}

// CFG is the control-flow graph of one program.
//
// Interprocedural flow is over-approximated: a CALL has both its
// target and its textual successor as CFG successors, and a RET's
// successors are the return points of every CALL in the program. This
// keeps every analysis built on the CFG a whole-program MAY analysis
// without needing call-stack sensitivity.
type CFG struct {
	// Prog is the analysed program.
	Prog *isa.Program
	// Blocks lists the basic blocks in instruction order.
	Blocks []*Block
	// BlockOf maps each instruction index to its block ID.
	BlockOf []int
	// RPO is a reverse postorder over the blocks reachable from entry.
	RPO []int
	// Reachable marks blocks reachable from the entry block.
	Reachable []bool
}

// BuildCFG partitions the program into basic blocks and links them.
// The program must validate (callers holding a Builder-built Program
// already do); an invalid program returns an error rather than a
// malformed graph.
//
// The partition itself comes from isa.Program.BlockSpans — the single
// leader rule shared with the emulator's block compiler
// (internal/emu/compile.go), so the two views of "basic block" cannot
// drift: a span there is a Block here.
func BuildCFG(p *isa.Program) (*CFG, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("static: %w", err)
	}
	n := len(p.Instrs)
	if n == 0 {
		return &CFG{Prog: p, BlockOf: []int{}}, nil
	}
	labels := p.Labels()

	// Return points of every CALL, reused for RET edges.
	var callReturns []int
	for i, in := range p.Instrs {
		if in.Op == isa.CALL && i+1 < n {
			callReturns = append(callReturns, i+1)
		}
	}

	cfg := &CFG{Prog: p, BlockOf: make([]int, n)}
	for _, sp := range p.BlockSpans() {
		b := &Block{ID: len(cfg.Blocks), Start: sp.Start, End: sp.End}
		cfg.Blocks = append(cfg.Blocks, b)
		for i := sp.Start; i < sp.End; i++ {
			cfg.BlockOf[i] = b.ID
		}
	}

	// Edges.
	addEdge := func(from, to int) {
		b := cfg.Blocks[from]
		for _, s := range b.Succs {
			if s == to {
				return
			}
		}
		b.Succs = append(b.Succs, to)
		cfg.Blocks[to].Preds = append(cfg.Blocks[to].Preds, from)
	}
	for _, b := range cfg.Blocks {
		last := p.Instrs[b.End-1]
		switch {
		case last.Op == isa.JMP:
			addEdge(b.ID, cfg.BlockOf[labels[last.Target]])
		case last.Op.IsJump(): // conditional: taken + fallthrough
			addEdge(b.ID, cfg.BlockOf[labels[last.Target]])
			if b.End < n {
				addEdge(b.ID, cfg.BlockOf[b.End])
			}
		case last.Op == isa.CALL:
			addEdge(b.ID, cfg.BlockOf[labels[last.Target]])
			if b.End < n {
				addEdge(b.ID, cfg.BlockOf[b.End])
			}
		case last.Op == isa.RET:
			for _, r := range callReturns {
				addEdge(b.ID, cfg.BlockOf[r])
			}
		case last.Op == isa.HALT:
			// No successors.
		default:
			if b.End < n {
				addEdge(b.ID, cfg.BlockOf[b.End])
			}
		}
	}
	for _, b := range cfg.Blocks {
		sort.Ints(b.Succs)
		sort.Ints(b.Preds)
	}

	// Reverse postorder over the reachable subgraph (iterative DFS with
	// an explicit successor cursor, so deep programs cannot overflow the
	// goroutine stack).
	cfg.Reachable = make([]bool, len(cfg.Blocks))
	post := make([]int, 0, len(cfg.Blocks))
	type frame struct{ block, next int }
	stack := []frame{{0, 0}}
	cfg.Reachable[0] = true
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := cfg.Blocks[f.block].Succs
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if !cfg.Reachable[s] {
				cfg.Reachable[s] = true
				stack = append(stack, frame{s, 0})
			}
			continue
		}
		post = append(post, f.block)
		stack = stack[:len(stack)-1]
	}
	cfg.RPO = make([]int, len(post))
	for i, b := range post {
		cfg.RPO[len(post)-1-i] = b
	}
	return cfg, nil
}

// Entry returns the entry block.
func (c *CFG) Entry() *Block {
	if len(c.Blocks) == 0 {
		return nil
	}
	return c.Blocks[0]
}

// NumBlocks returns the block count.
func (c *CFG) NumBlocks() int { return len(c.Blocks) }

// String renders the graph compactly, one block per line, for golden
// tests and debugging.
func (c *CFG) String() string {
	s := ""
	for _, b := range c.Blocks {
		s += fmt.Sprintf("b%d [%d,%d)", b.ID, b.Start, b.End)
		if len(b.Succs) > 0 {
			s += fmt.Sprintf(" -> %v", b.Succs)
		}
		if !c.Reachable[b.ID] {
			s += " (unreachable)"
		}
		s += "\n"
	}
	return s
}
