package static

// DomTree is the dominator tree of a CFG, computed with the
// Cooper–Harvey–Kennedy iterative algorithm over reverse postorder.
// Unreachable blocks have no dominator information (Idom -1).
type DomTree struct {
	cfg *CFG
	// Idom maps each block to its immediate dominator (-1 for the
	// entry block and for unreachable blocks).
	Idom []int
	// rpoIndex maps block ID -> position in RPO (-1 if unreachable).
	rpoIndex []int
}

// Dominators computes the dominator tree.
func Dominators(cfg *CFG) *DomTree {
	d := &DomTree{
		cfg:      cfg,
		Idom:     make([]int, cfg.NumBlocks()),
		rpoIndex: make([]int, cfg.NumBlocks()),
	}
	for i := range d.Idom {
		d.Idom[i] = -1
		d.rpoIndex[i] = -1
	}
	if cfg.NumBlocks() == 0 {
		return d
	}
	for i, b := range cfg.RPO {
		d.rpoIndex[b] = i
	}
	entry := cfg.RPO[0]
	d.Idom[entry] = entry
	for changed := true; changed; {
		changed = false
		for _, b := range cfg.RPO[1:] {
			// First processed predecessor.
			newIdom := -1
			for _, p := range cfg.Blocks[b].Preds {
				if d.rpoIndex[p] < 0 || d.Idom[p] < 0 {
					continue // unreachable or not yet processed
				}
				if newIdom < 0 {
					newIdom = p
				} else {
					newIdom = d.intersect(p, newIdom)
				}
			}
			if newIdom >= 0 && d.Idom[b] != newIdom {
				d.Idom[b] = newIdom
				changed = true
			}
		}
	}
	// The entry's idom is conventionally itself during iteration;
	// expose it as -1 (no dominator) to callers.
	d.Idom[entry] = -1
	return d
}

// intersect walks two blocks up the (partial) dominator tree to their
// common ancestor, ordering by RPO index.
func (d *DomTree) intersect(a, b int) int {
	for a != b {
		for d.rpoIndex[a] > d.rpoIndex[b] {
			a = d.idomOrSelf(a)
		}
		for d.rpoIndex[b] > d.rpoIndex[a] {
			b = d.idomOrSelf(b)
		}
	}
	return a
}

// idomOrSelf treats the entry (idom -1 post-fixup, self during
// iteration) as its own dominator so intersect terminates.
func (d *DomTree) idomOrSelf(b int) int {
	if d.Idom[b] < 0 {
		return b
	}
	return d.Idom[b]
}

// Dominates reports whether block a dominates block b. A block
// dominates itself. Unreachable blocks dominate nothing and are
// dominated by nothing.
func (d *DomTree) Dominates(a, b int) bool {
	if d.rpoIndex[a] < 0 || d.rpoIndex[b] < 0 {
		return false
	}
	for {
		if a == b {
			return true
		}
		next := d.Idom[b]
		if next < 0 || next == b {
			return false
		}
		b = next
	}
}
