package static_test

import (
	"errors"
	"testing"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/static"
)

// goodSlice builds a minimal well-formed replay slice: straight-line,
// deterministic, writing the identifier bytes into a data buffer. It
// returns the program and a mapped result address inside that buffer.
func goodSlice(t *testing.T) (*isa.Program, uint32) {
	t.Helper()
	b := isa.NewBuilder("good-slice")
	out := b.Buf("out", 16)
	b.Mov(isa.R(isa.EAX), isa.Imm('A')).
		Movb(isa.MemSym(out), isa.R(isa.EAX)).
		Movb(isa.MemAbs(0), isa.R(isa.EBX)). // patched below to out+1
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	li := emu.Layout(p)
	addr := li.Symbols[out]
	p.Instrs[2].Dst = isa.MemAbs(addr + 1)
	return p, addr
}

func wantRule(t *testing.T, err error, rule string) {
	t.Helper()
	if err == nil {
		t.Fatalf("verifier accepted a slice that must fail rule %q", rule)
	}
	var se *static.SliceError
	if !errors.As(err, &se) {
		t.Fatalf("error is not a *SliceError: %v", err)
	}
	if se.Rule != rule {
		t.Fatalf("rule = %q, want %q (err: %v)", se.Rule, rule, err)
	}
}

func TestVerifySliceAcceptsWellFormedSlice(t *testing.T) {
	p, addr := goodSlice(t)
	if err := static.VerifySlice(p, addr, nil); err != nil {
		t.Fatalf("well-formed slice rejected: %v", err)
	}
}

func TestVerifySliceAcceptsAllowedAPIs(t *testing.T) {
	// Semantic data sources and string helpers are exactly what real
	// extracted slices contain.
	b := isa.NewBuilder("api-slice")
	buf := b.Buf("name", 32)
	b.CallAPI("GetComputerNameA", isa.Sym(buf), isa.Imm(32))
	b.CallAPI("lstrlenA", isa.Sym(buf))
	b.Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	li := emu.Layout(p)
	if err := static.VerifySlice(p, li.Symbols[buf], nil); err != nil {
		t.Fatalf("slice with allowed APIs rejected: %v", err)
	}
}

func TestVerifySliceRejections(t *testing.T) {
	tests := []struct {
		name string
		rule string
		run  func(t *testing.T) error
	}{
		{
			name: "nil program",
			rule: static.RuleStructure,
			run: func(t *testing.T) error {
				return static.VerifySlice(nil, 0, nil)
			},
		},
		{
			name: "structurally invalid program",
			rule: static.RuleStructure,
			run: func(t *testing.T) error {
				p := &isa.Program{Name: "bad", Instrs: []isa.Instr{
					{Op: isa.JMP, Target: "nowhere"},
				}}
				return static.VerifySlice(p, 0, nil)
			},
		},
		{
			name: "unmapped result address",
			rule: static.RuleResultAddr,
			run: func(t *testing.T) error {
				p, _ := goodSlice(t)
				return static.VerifySlice(p, 0x1234, nil)
			},
		},
		{
			name: "backward jump could loop forever",
			rule: static.RuleControlFlow,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("loopy")
				b.Label("top").Inc(isa.R(isa.EAX)).Jmp("top").Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Segments[0].Base, nil)
			},
		},
		{
			name: "ret without matching call",
			rule: static.RuleStackBal,
			run: func(t *testing.T) error {
				p, addr := goodSlice(t)
				p.Instrs[len(p.Instrs)-1] = isa.Instr{Op: isa.RET}
				return static.VerifySlice(p, addr, nil)
			},
		},
		{
			name: "unknown API",
			rule: static.RuleAPIAllow,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("unknown-api")
				out := b.Buf("out", 8)
				b.CallAPI("TotallyMadeUpA").Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Symbols[out], nil)
			},
		},
		{
			name: "resource API has side effects",
			rule: static.RuleAPIAllow,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("resource-api")
				mu := b.RData("mu", `Global\X`)
				b.CallAPI("CreateMutexA", isa.Sym(mu)).Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Symbols[mu], nil)
			},
		},
		{
			name: "random-class API is not replayable",
			rule: static.RuleAPIAllow,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("random-api")
				out := b.Buf("out", 8)
				b.CallAPI("GetTickCount").Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Symbols[out], nil)
			},
		},
		{
			name: "termination API",
			rule: static.RuleAPIAllow,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("term-api")
				out := b.Buf("out", 8)
				b.CallAPI("ExitProcess", isa.Imm(0)).Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Symbols[out], nil)
			},
		},
		{
			name: "read of unmapped absolute address",
			rule: static.RuleMemBounds,
			run: func(t *testing.T) error {
				p, addr := goodSlice(t)
				p.Instrs[0] = isa.Instr{Op: isa.MOV,
					Dst: isa.R(isa.EAX), Src: isa.MemAbs(0xDEAD0000)}
				return static.VerifySlice(p, addr, nil)
			},
		},
		{
			name: "write to read-only data",
			rule: static.RuleMemBounds,
			run: func(t *testing.T) error {
				b := isa.NewBuilder("ro-write")
				s := b.RData("s", "const")
				b.Mov(isa.MemSym(s), isa.Imm(7)).Halt()
				p, err := b.Build()
				if err != nil {
					t.Fatal(err)
				}
				li := emu.Layout(p)
				return static.VerifySlice(p, li.Symbols[s], nil)
			},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			wantRule(t, tt.run(t), tt.rule)
		})
	}
}

func TestVerifySliceAcceptsBalancedCall(t *testing.T) {
	// A forward CALL with a matching RET balances; the verifier must
	// not reject legitimate helper-call shapes.
	b := isa.NewBuilder("call-balanced")
	out := b.Buf("out", 8)
	b.Call("helper").
		Halt().
		Label("helper").Mov(isa.R(isa.EAX), isa.Imm(1)).
		Ret()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	li := emu.Layout(p)
	if err := static.VerifySlice(p, li.Symbols[out], nil); err != nil {
		t.Fatalf("balanced forward call rejected: %v", err)
	}
}
