package static

import (
	"math/bits"
	"sort"

	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/winapi"
)

// API-surface recovery: the Phase-0 triage pass. It answers, from the
// program text alone, "which APIs can this sample possibly invoke?" —
// including calls made through CALLAPIR, whose callee is only an
// address in a register. Direct CALLAPI callsites name their API in
// the instruction; indirect callsites are resolved by interpreting the
// sample's export-table walk against the process loader image
// (emu.Loader()), which is read-only and identical in every execution.
//
// The pass is a forward dataflow over an abstract value domain built
// for loader-resolving code:
//
//	⊥        unreachable / undefined
//	const v  exactly v on every path (the constant-propagation core,
//	         which also folds the rol/xor hash chains malware computes
//	         wanted-hashes with)
//	table    a pointer at one of a set of export-table row starts of a
//	         single module (the scanning cursor of a hash-resolve loop)
//	addrof   a value loaded from the address word of one of a set of
//	         rows (the resolved API address a CALLAPIR dispatches on)
//	⊤        anything
//
// Loads at constant addresses inside the loader image evaluate to the
// image word (the image is immutable); loads through a multi-row table
// pointer at the address-word offset yield addrof over those rows. Two
// flow-sensitive refinements give the pass its precision on the
// hash-resolve idiom, both justified by loader construction invariants
// (export hashes are unique per module; emu.buildLoader panics
// otherwise):
//
//   - hash-match: when a block loads a row's hash word through a table
//     pointer, compares it against a known constant K, and branches on
//     equality, the taken edge narrows the (unredefined) table pointer
//     to the rows whose hash is K, and the fall-through edge removes
//     them. The correlation is block-local: the record is invalidated
//     if either register is redefined before the branch.
//   - bound-check: a `cmp cursor, end; jl` whose taken edge requires
//     cursor < end clears the cursor's may-be-past-the-table bit when
//     end does not exceed the module's table end.
//
// Soundness: the recovered surface over-approximates the API set any
// standard-semantics execution invokes — every abstract operation
// covers the emulator's concrete one, branches are explored in both
// directions except where a refinement's guard concretely holds, and
// any value the domain cannot represent degrades to ⊤, which makes the
// whole surface Top (the pass refuses to claim anything). The corpus
// soundness test pins the relation dynamically-called ⊆ recovered on
// every sample.
type APISurface struct {
	// Top reports that the pass could not bound the callee set: the
	// surface is the full registry and Contains is always true.
	Top bool
	// APIs lists the recovered callee names, sorted, when !Top.
	APIs []string

	set map[string]bool
}

// Contains reports whether the surface admits the named API.
func (s *APISurface) Contains(api string) bool {
	return s.Top || s.set[api]
}

// AnyResource reports whether the surface admits any API touching a
// labelled resource namespace — the triage signal: when false, no
// execution of the sample can call a resource API, so Phase-I
// emulation cannot produce a candidate.
func (s *APISurface) AnyResource(reg *winapi.Registry) bool {
	if s.Top {
		return true
	}
	if reg == nil {
		reg = winapi.Standard()
	}
	for _, api := range s.APIs {
		if spec, ok := reg.Lookup(api); ok && spec.IsResource() {
			return true
		}
	}
	return false
}

// avKind enumerates the abstract value kinds.
type avKind uint8

const (
	avBot avKind = iota
	avConst
	avTable
	avAddrOf
	avTop
)

// av is one abstract value. mod indexes emu.Loader().Modules; rows is
// a bitmask of export-table row indices; past marks a table cursor
// that may sit at or beyond the table end (row stride preserved).
type av struct {
	kind avKind
	v    uint32
	mod  int
	rows uint64
	past bool
}

func avK(v uint32) av { return av{kind: avConst, v: v} }

var (
	topV = av{kind: avTop}
	botV = av{kind: avBot}
)

// asState is the per-program-point abstract register file.
type asState [isa.NumRegs]av

// surfacePass carries the pass-wide immutables.
type surfacePass struct {
	cfg    *CFG
	loader *emu.LoaderInfo
}

// rowOf classifies a constant as a table position of module m: a row
// index, or at-or-past-end on row stride.
func (sp *surfacePass) rowOf(m int, v uint32) (row int, past, ok bool) {
	mi := &sp.loader.Modules[m]
	if v < mi.TableAddr || (v-mi.TableAddr)%8 != 0 {
		return 0, false, false
	}
	if v < mi.TableEnd {
		return int((v - mi.TableAddr) / 8), false, true
	}
	return 0, true, true
}

// fullRows is the mask of every row of module m (export counts above
// 64 are rejected before the pass runs).
func (sp *surfacePass) fullRows(m int) uint64 {
	n := len(sp.loader.Modules[m].Exports)
	if n >= 64 {
		return ^uint64(0)
	}
	return 1<<uint(n) - 1
}

// tableOf classifies a constant as a table position of any module.
func (sp *surfacePass) tableOf(v uint32) (mod, row int, past, ok bool) {
	for m := range sp.loader.Modules {
		if r, p, match := sp.rowOf(m, v); match {
			return m, r, p, true
		}
	}
	return 0, 0, false, false
}

// meetAv joins two abstract values.
func (sp *surfacePass) meetAv(a, b av) av {
	if a.kind == avBot {
		return b
	}
	if b.kind == avBot {
		return a
	}
	if a.kind == avTop || b.kind == avTop {
		return topV
	}
	// Promote constants that sit on a table row so a scan cursor's
	// loop-head meet (initial row ∧ advanced row) stays a table value.
	promote := func(x av, mod int) (av, bool) {
		if x.kind != avConst {
			return x, x.kind == avTable || x.kind == avAddrOf
		}
		if r, p, ok := sp.rowOf(mod, x.v); ok {
			t := av{kind: avTable, mod: mod, past: p}
			if !p {
				t.rows = 1 << uint(r)
			}
			return t, true
		}
		return x, false
	}
	// Two table positions that disagree widen straight to the whole
	// table: a scan cursor visits every row anyway, and the hash-match
	// refinement re-narrows to the matching row at the branch, so the
	// widening costs no precision on the resolve idiom while collapsing
	// the fixpoint from one-row-per-pass to a couple of passes.
	widen := func(x, y av) av {
		out := av{kind: avTable, mod: x.mod, past: x.past || y.past}
		if x.rows == y.rows {
			out.rows = x.rows
		} else {
			out.rows = sp.fullRows(x.mod)
		}
		return out
	}
	switch {
	case a.kind == avConst && b.kind == avConst:
		if a.v == b.v {
			return a
		}
		am, _, _, aok := sp.tableOf(a.v)
		if aok {
			at, _ := promote(a, am)
			bt, bok := promote(b, am)
			if bok && bt.kind == avTable {
				return widen(at, bt)
			}
		}
		return topV
	case a.kind == avTable || b.kind == avTable:
		if b.kind == avTable {
			a, b = b, a
		}
		bb, ok := promote(b, a.mod)
		if !ok || bb.kind != avTable || bb.mod != a.mod {
			return topV
		}
		return widen(a, bb)
	case a.kind == avAddrOf || b.kind == avAddrOf:
		if b.kind == avAddrOf {
			a, b = b, a
		}
		if b.kind == avAddrOf {
			if a.mod != b.mod {
				return topV
			}
			return av{kind: avAddrOf, mod: a.mod, rows: a.rows | b.rows}
		}
		// const that is itself a resolved address of the same module.
		if b.kind == avConst {
			for r, e := range sp.loader.Modules[a.mod].Exports {
				if e.Addr == b.v {
					return av{kind: avAddrOf, mod: a.mod, rows: a.rows | 1<<uint(r)}
				}
			}
		}
		return topV
	}
	return topV
}

// loadRecord is the block-local hash-load correlation: dst was loaded
// from the hash word of base's candidate rows.
type loadRecord struct {
	valid     bool
	dst, base isa.Reg
	mod       int
	rows      uint64
}

// cmpRecord is the block's live compare, if the last flag-writer was a
// CMP.
type cmpRecord struct {
	valid          bool
	lReg, rReg     isa.Reg
	lIsReg, rIsReg bool
	lAv, rAv       av
}

// blockFacts is what a block's transfer leaves for edge refinement.
type blockFacts struct {
	load loadRecord
	cmp  cmpRecord
}

// evalOperand evaluates a source operand, returning the value and, for
// multi-row hash-word loads, the correlation record.
func (sp *surfacePass) evalOperand(o isa.Operand, st *asState) (av, loadRecord) {
	none := loadRecord{}
	switch o.Kind {
	case isa.KindReg:
		return st[o.Reg], none
	case isa.KindImm:
		if o.Sym != "" {
			// Symbol addresses are resolved at load time; abstract.
			return topV, none
		}
		return avK(o.Imm), none
	case isa.KindMem:
		if o.Sym != "" {
			return topV, none // program data is writable: unmodelled
		}
		if !o.HasBase {
			return sp.loadAt(avK(o.Imm), 0), none
		}
		base := st[o.Reg]
		if base.kind == avTable && !base.past && bits.OnesCount64(base.rows) > 1 && o.Imm == 0 {
			// Multi-row hash-word load: value unknown, but record the
			// correlation for the block's terminator.
			return topV, loadRecord{valid: true, base: o.Reg, mod: base.mod, rows: base.rows}
		}
		return sp.loadAt(base, o.Imm), none
	}
	return topV, none
}

// loadAt evaluates a 4-byte load at base+disp.
func (sp *surfacePass) loadAt(base av, disp uint32) av {
	switch base.kind {
	case avBot:
		return botV
	case avConst:
		if w, ok := sp.loader.ReadWord(base.v + disp); ok {
			return avK(w)
		}
		return topV
	case avTable:
		if base.past {
			return topV // may read beyond the table
		}
		if base.rows == 0 {
			return botV // refined-empty cursor: edge is dead
		}
		if bits.OnesCount64(base.rows) == 1 {
			r := uint(bits.TrailingZeros64(base.rows))
			mi := &sp.loader.Modules[base.mod]
			if w, ok := sp.loader.ReadWord(mi.TableAddr + 8*uint32(r) + disp); ok {
				return avK(w)
			}
			return topV
		}
		if disp == 4 {
			return av{kind: avAddrOf, mod: base.mod, rows: base.rows}
		}
		return topV
	}
	return topV
}

// addAv evaluates table-aware addition (the scan cursor's stride).
func (sp *surfacePass) addAv(a, b av) av {
	if a.kind == avConst && b.kind == avConst {
		return avK(a.v + b.v)
	}
	if b.kind == avTable {
		a, b = b, a
	}
	if a.kind == avTable && b.kind == avConst {
		if a.past && b.v != 0 {
			return topV
		}
		out := av{kind: avTable, mod: a.mod, past: a.past}
		mi := &sp.loader.Modules[a.mod]
		for rows := a.rows; rows != 0; rows &= rows - 1 {
			r := uint(bits.TrailingZeros64(rows))
			nr, past, ok := sp.rowOf(a.mod, mi.TableAddr+8*uint32(r)+b.v)
			if !ok {
				return topV
			}
			if past {
				out.past = true
			} else {
				out.rows |= 1 << uint(nr)
			}
		}
		return out
	}
	return topV
}

// aluAv evaluates the remaining binary ALU forms: constants fold with
// the emulator's exact semantics, everything else degrades to ⊤.
func aluAv(op isa.Opcode, a, b av) av {
	if a.kind != avConst || b.kind != avConst {
		return topV
	}
	c := alu(op, konst(a.v), konst(b.v))
	if c.kind != cConst {
		return topV
	}
	return avK(c.v)
}

// transfer applies one instruction, maintaining the block facts.
func (sp *surfacePass) transfer(in isa.Instr, st *asState, f *blockFacts) {
	setReg := func(o isa.Operand, v av) {
		if o.Kind != isa.KindReg {
			return
		}
		st[o.Reg] = v
		if f.load.valid && (o.Reg == f.load.dst || o.Reg == f.load.base) {
			f.load.valid = false
		}
	}
	clearFlags := func() { f.cmp.valid = false }
	switch in.Op {
	case isa.MOV:
		v, rec := sp.evalOperand(in.Src, st)
		setReg(in.Dst, v)
		if rec.valid && in.Dst.Kind == isa.KindReg && in.Dst.Reg != rec.base {
			rec.dst = in.Dst.Reg
			f.load = rec
		}
	case isa.MOVB:
		if in.Dst.Kind == isa.KindReg {
			old := st[in.Dst.Reg]
			src, _ := sp.evalOperand(in.Src, st)
			if old.kind == avConst && src.kind == avConst {
				setReg(in.Dst, avK((old.v&^0xFF)|(src.v&0xFF)))
			} else {
				setReg(in.Dst, topV)
			}
		}
	case isa.LEA, isa.POP:
		setReg(in.Dst, topV)
	case isa.ADD:
		a, _ := sp.evalOperand(in.Dst, st)
		b, _ := sp.evalOperand(in.Src, st)
		setReg(in.Dst, sp.addAv(a, b))
		clearFlags()
	case isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		a, _ := sp.evalOperand(in.Dst, st)
		b, _ := sp.evalOperand(in.Src, st)
		setReg(in.Dst, aluAv(in.Op, a, b))
		clearFlags()
	case isa.INC:
		a, _ := sp.evalOperand(in.Dst, st)
		setReg(in.Dst, sp.addAv(a, avK(1)))
		clearFlags()
	case isa.DEC:
		a, _ := sp.evalOperand(in.Dst, st)
		setReg(in.Dst, aluAv(isa.SUB, a, avK(1)))
		clearFlags()
	case isa.CMP:
		l, _ := sp.evalOperand(in.Dst, st)
		r, _ := sp.evalOperand(in.Src, st)
		f.cmp = cmpRecord{valid: true, lAv: l, rAv: r}
		if in.Dst.Kind == isa.KindReg {
			f.cmp.lIsReg, f.cmp.lReg = true, in.Dst.Reg
		}
		if in.Src.Kind == isa.KindReg {
			f.cmp.rIsReg, f.cmp.rReg = true, in.Src.Reg
		}
	case isa.TEST:
		clearFlags()
	case isa.CALLAPI, isa.CALLAPIR:
		setReg(isa.R(isa.EAX), topV)
	}
}

// refineEdge returns the out-state adjusted for taking (or not taking)
// block b's conditional terminator.
func (sp *surfacePass) refineEdge(out asState, term isa.Instr, f blockFacts, taken bool) asState {
	if !f.cmp.valid {
		return out
	}
	// Constant-compare pruning: when both sides are known, the branch
	// direction is decided (the emulator's exact flag semantics:
	// zf/sf of dst-src), and the other edge is infeasible — its state
	// is ⊥ everywhere, which the meet ignores. This is what keeps a
	// scan loop's first, concrete iteration from leaking its row into
	// the found-path state when the hash cannot match.
	if f.cmp.lAv.kind == avConst && f.cmp.rAv.kind == avConst {
		d := f.cmp.lAv.v - f.cmp.rAv.v
		var jump bool
		switch term.Op {
		case isa.JZ:
			jump = d == 0
		case isa.JNZ:
			jump = d != 0
		case isa.JL:
			jump = int32(d) < 0
		case isa.JGE:
			jump = int32(d) >= 0
		default:
			return out
		}
		if taken != jump {
			var dead asState
			for r := range dead {
				dead[r] = botV
			}
			return dead
		}
		return out
	}
	switch term.Op {
	case isa.JZ, isa.JNZ:
		// Hash-match refinement. JNZ's fall-through is JZ's taken edge.
		eq := taken == (term.Op == isa.JZ)
		lr := f.load
		if !lr.valid {
			return out
		}
		var k av
		switch {
		case f.cmp.lIsReg && f.cmp.lReg == lr.dst:
			k = f.cmp.rAv
		case f.cmp.rIsReg && f.cmp.rReg == lr.dst:
			k = f.cmp.lAv
		default:
			return out
		}
		if k.kind != avConst {
			return out
		}
		cur := out[lr.base]
		if cur.kind != avTable || cur.mod != lr.mod {
			return out
		}
		var match uint64
		for rows := lr.rows; rows != 0; rows &= rows - 1 {
			r := uint(bits.TrailingZeros64(rows))
			if sp.loader.Modules[lr.mod].Exports[r].Hash == k.v {
				match |= 1 << r
			}
		}
		if eq {
			cur.rows &= match
			cur.past = false // a matching hash word was read in-table
		} else {
			cur.rows &^= match
		}
		out[lr.base] = cur
	case isa.JL, isa.JGE:
		// Bound-check refinement: cursor < end clears may-be-past.
		// JGE's fall-through is the less-than edge.
		lt := taken == (term.Op == isa.JL)
		if !lt || !f.cmp.lIsReg || f.cmp.rAv.kind != avConst {
			return out
		}
		cur := out[f.cmp.lReg]
		if cur.kind == avTable && cur.past &&
			f.cmp.rAv.v <= sp.loader.Modules[cur.mod].TableEnd {
			cur.past = false
			out[f.cmp.lReg] = cur
		}
	}
	return out
}

// maxSurfaceIters bounds the fixpoint; the refinements narrow, so the
// textbook monotone-ascent argument does not apply verbatim, and a
// pass that fails to settle must fail safe (⊤), not spin.
const maxSurfaceIters = 1 << 12

// RecoverAPISurface runs the pass over one program.
func RecoverAPISurface(p *isa.Program) (*APISurface, error) {
	cfg, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	return recoverSurface(cfg), nil
}

func recoverSurface(cfg *CFG) *APISurface {
	s := &APISurface{set: make(map[string]bool)}
	prog := cfg.Prog
	// Direct callsites contribute their name unconditionally.
	hasIndirect := false
	for _, in := range prog.Instrs {
		switch in.Op {
		case isa.CALLAPI:
			s.set[in.API] = true
		case isa.CALLAPIR:
			hasIndirect = true
		}
	}
	if hasIndirect && !resolveIndirect(cfg, s) {
		s.Top = true
		s.set = nil
		s.APIs = nil
		return s
	}
	for api := range s.set {
		s.APIs = append(s.APIs, api)
	}
	sort.Strings(s.APIs)
	return s
}

// resolveIndirect runs the dataflow and adds every CALLAPIR's resolved
// callee set to s. It reports false when any reachable indirect
// callsite's target degrades to ⊤.
func resolveIndirect(cfg *CFG, s *APISurface) bool {
	loader := emu.Loader()
	for _, m := range loader.Modules {
		if len(m.Exports) > 64 {
			return false // row masks are uint64; refuse, stay sound
		}
	}
	sp := &surfacePass{cfg: cfg, loader: loader}
	prog := cfg.Prog
	labels := prog.Labels()
	nb := cfg.NumBlocks()
	if nb == 0 {
		return true
	}

	var entry asState
	for r := range entry {
		entry[r] = avK(0)
	}
	entry[isa.ESP] = topV // concrete stack address left abstract

	ins := make([]asState, nb)
	outs := make([]asState, nb)
	facts := make([]blockFacts, nb)
	seeded := make([]bool, nb)
	ins[0] = entry
	seeded[0] = true

	// edgeState is pred p's contribution to succ t, folding refinement
	// over every edge kind that connects them (taken and fall-through
	// may target the same block).
	edgeState := func(p, t int) asState {
		b := cfg.Blocks[p]
		out := outs[p]
		term := prog.Instrs[b.End-1]
		if !term.Op.IsJump() || term.Op == isa.JMP {
			return out
		}
		takenTo := cfg.BlockOf[labels[term.Target]]
		fallTo := -1
		if b.End < len(prog.Instrs) {
			fallTo = cfg.BlockOf[b.End]
		}
		var st asState
		first := true
		merge := func(e asState) {
			if first {
				st, first = e, false
				return
			}
			for r := range st {
				st[r] = sp.meetAv(st[r], e[r])
			}
		}
		if takenTo == t {
			merge(sp.refineEdge(out, term, facts[p], true))
		}
		if fallTo == t {
			merge(sp.refineEdge(out, term, facts[p], false))
		}
		if first {
			return out
		}
		return st
	}

	runBlock := func(bi int) (asState, blockFacts) {
		b := cfg.Blocks[bi]
		st := ins[bi]
		var f blockFacts
		for i := b.Start; i < b.End; i++ {
			sp.transfer(prog.Instrs[i], &st, &f)
		}
		return st, f
	}

	iters := 0
	for changed := true; changed; {
		changed = false
		if iters++; iters > maxSurfaceIters {
			return false // failed to settle: fail safe
		}
		for _, bi := range cfg.RPO {
			b := cfg.Blocks[bi]
			st := ins[bi]
			for _, p := range b.Preds {
				if !seeded[p] {
					continue
				}
				e := edgeState(p, bi)
				for r := range st {
					st[r] = sp.meetAv(st[r], e[r])
				}
			}
			if st != ins[bi] {
				ins[bi] = st
				changed = true
			}
			out, f := runBlock(bi)
			if !seeded[bi] || out != outs[bi] || f != facts[bi] {
				outs[bi] = out
				facts[bi] = f
				seeded[bi] = true
				changed = true
			}
		}
	}

	// Final pass: resolve each reachable CALLAPIR against its in-state.
	// Unreachable blocks never execute, so their callsites contribute
	// nothing (CFG reachability over-approximates dynamic reachability).
	for _, b := range cfg.Blocks {
		if !cfg.Reachable[b.ID] {
			continue
		}
		st := ins[b.ID]
		var f blockFacts
		for i := b.Start; i < b.End; i++ {
			in := prog.Instrs[i]
			if in.Op == isa.CALLAPIR {
				if !addCallees(sp, st[in.Dst.Reg], s) {
					return false
				}
			}
			sp.transfer(in, &st, &f)
		}
	}
	return true
}

// addCallees adds the callee set an indirect call on target can reach.
// It reports false when the target is unbounded.
func addCallees(sp *surfacePass, target av, s *APISurface) bool {
	switch target.kind {
	case avBot:
		return true // unreachable state: never executes
	case avConst:
		// A miss faults the emulator before any API runs: no callee.
		if name, ok := sp.loader.APIAt(target.v); ok {
			s.set[name] = true
		}
		return true
	case avAddrOf:
		for rows := target.rows; rows != 0; rows &= rows - 1 {
			r := uint(bits.TrailingZeros64(rows))
			s.set[sp.loader.Modules[target.mod].Exports[r].Name] = true
		}
		return true
	case avTable:
		// A row address is never a resolved API address: faults.
		return true
	}
	return false
}

// SurfaceResourceFree statically decides whether the program provably
// cannot invoke any resource-labelled API — the Phase-0 triage
// predicate. A true result means Phase-I emulation cannot yield a
// candidate; false means "cannot rule it out" (including every program
// whose surface is ⊤).
func SurfaceResourceFree(p *isa.Program, reg *winapi.Registry) (bool, error) {
	// Short-circuit: a direct resource callsite is in every surface, so
	// the answer is "cannot rule it out" before building any CFG. This
	// is what keeps Phase-0 near-free on ordinary corpora, where
	// resource APIs are overwhelmingly called by name — the fixpoint
	// only runs for programs whose named calls are all benign.
	if reg == nil {
		reg = winapi.Standard()
	}
	for _, in := range p.Instrs {
		if in.Op == isa.CALLAPI {
			if spec, ok := reg.Lookup(in.API); ok && spec.IsResource() {
				return false, nil
			}
		}
	}
	surf, err := RecoverAPISurface(p)
	if err != nil {
		return false, err
	}
	return !surf.AnyResource(reg), nil
}
