package static_test

import (
	"encoding/json"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/static"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// extractRealSlice runs a synthetic algorithm-deterministic sample and
// extracts its identifier-regeneration slice, exactly as Phase-II does.
func extractRealSlice(tb testing.TB) *determinism.Slice {
	tb.Helper()
	spec := &malware.Spec{Name: "fuzz-algo", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-7`}}}
	prog := malware.MustEmit(spec)
	reg := winapi.Standard()
	tr, err := emu.Run(prog, winenv.New(winenv.DefaultIdentity()),
		emu.Options{Seed: 42, RecordSteps: true, Registry: reg})
	if err != nil {
		tb.Fatal(err)
	}
	calls := tr.CallsTo("CreateMutexA")
	if len(calls) == 0 {
		tb.Fatal("sample produced no CreateMutexA call")
	}
	sl, err := determinism.Extract(prog, tr, calls[0].Seq)
	if err != nil {
		tb.Fatal(err)
	}
	return sl
}

// TestVerifySliceAcceptsExtractedSlice pins the fuzz seeds' validity:
// a genuine Phase-II slice must pass the verifier unchanged.
func TestVerifySliceAcceptsExtractedSlice(t *testing.T) {
	sl := extractRealSlice(t)
	if err := static.VerifySlice(sl.Program, sl.ResultAddr, nil); err != nil {
		t.Fatalf("genuine extracted slice rejected: %v", err)
	}
}

// FuzzSliceVerifier feeds mutated slice programs to the verifier. The
// verifier fronts fleet distribution, so arbitrary (attacker-shaped)
// input must produce a verdict, never a panic or a hang.
func FuzzSliceVerifier(f *testing.F) {
	sl := extractRealSlice(f)
	seed, err := json.Marshal(sl.Program)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed, sl.ResultAddr)

	// A hand-built valid slice as a second seed shape.
	b := isa.NewBuilder("seed2")
	b.Buf("out", 16)
	b.Mov(isa.R(isa.EAX), isa.Imm('Z')).
		Movb(isa.MemSym("out"), isa.R(isa.EAX)).
		Halt()
	if p2, err := b.Build(); err == nil {
		if raw, err := json.Marshal(p2); err == nil {
			f.Add(raw, emu.Layout(p2).Symbols["out"])
		}
	}
	// Degenerate shapes.
	f.Add([]byte(`{}`), uint32(0))
	f.Add([]byte(`{"Name":"x","Instrs":[{"Op":255}]}`), uint32(0xFFFFFFFF))

	f.Fuzz(func(t *testing.T, raw []byte, resultAddr uint32) {
		var p isa.Program
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Skip()
		}
		// Any verdict is fine; a panic is the only failure.
		_ = static.VerifySlice(&p, resultAddr, nil)
	})
}

// FuzzAPISurface feeds mutated programs to the Phase-0 surface
// recovery. Triage fronts every corpus run, so arbitrary program
// shapes must produce a surface or an error, never a panic or a hang
// (the pass has an explicit iteration bailout); and whatever comes
// back must be self-consistent: a non-⊤ surface contains exactly its
// listed APIs.
func FuzzAPISurface(f *testing.F) {
	// Seed with a real hash-resolving program (the CALLAPIR-heavy
	// shape) and a direct-call family sample.
	g := malware.NewGenerator(1)
	if hr, err := g.HashResolveCorpus(1); err == nil {
		for _, s := range hr {
			if raw, err := json.Marshal(s.Program); err == nil {
				f.Add(raw)
			}
		}
	}
	if s, err := g.FamilySample(malware.Zeus); err == nil {
		if raw, err := json.Marshal(s.Program); err == nil {
			f.Add(raw)
		}
	}
	// Degenerate shapes.
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"Name":"x","Instrs":[{"Op":255}]}`))

	f.Fuzz(func(t *testing.T, raw []byte) {
		var p isa.Program
		if err := json.Unmarshal(raw, &p); err != nil {
			t.Skip()
		}
		surf, err := static.RecoverAPISurface(&p)
		if err != nil || surf == nil {
			return
		}
		if surf.Top {
			if !surf.Contains("AnyNameAtAll") {
				t.Fatal("⊤ surface rejected an API")
			}
			return
		}
		for _, api := range surf.APIs {
			if !surf.Contains(api) {
				t.Fatalf("surface lists %s but Contains rejects it", api)
			}
		}
	})
}
