package static_test

import (
	"testing"

	"autovac/internal/isa"
	"autovac/internal/static"
)

func flowOf(t *testing.T, p *isa.Program) *static.TaintFlow {
	t.Helper()
	cfg, err := static.BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	return static.BuildTaintFlow(cfg, nil)
}

func TestTaintFlowDirectResultToPredicate(t *testing.T) {
	// The classic vaccine shape: open a mutex, branch on the handle.
	b := isa.NewBuilder("direct")
	mu := b.RData("mu", `Global\INFECT-7`)
	b.CallAPI("OpenMutexA", isa.Sym(mu)) // pc 0: push, pc 1: callapi
	b.Cmp(isa.R(isa.EAX), isa.Imm(0)).
		Jz("skip").
		Halt().
		Label("skip").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tf := flowOf(t, p)
	if len(tf.Sources) != 1 {
		t.Fatalf("Sources = %v, want one callsite", tf.Sources)
	}
	if !tf.PredicateReachable(tf.Sources[0]) {
		t.Error("direct EAX->cmp flow not predicate-reachable")
	}
	if !tf.AnyPredicateReachable() {
		t.Error("AnyPredicateReachable = false")
	}
}

func TestTaintFlowOverwrittenResultIsNotReachable(t *testing.T) {
	// The call's result is clobbered before any compare, and the
	// compare consumes an untainted register: no candidate possible.
	b := isa.NewBuilder("clobbered")
	mu := b.RData("mu", `Global\X`)
	b.CallAPI("OpenMutexA", isa.Sym(mu))
	b.Mov(isa.R(isa.EAX), isa.Imm(0)).
		Cmp(isa.R(isa.EBX), isa.Imm(1)).
		Jz("skip").
		Halt().
		Label("skip").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tf := flowOf(t, p)
	if tf.AnyPredicateReachable() {
		t.Error("clobbered result reported predicate-reachable")
	}
	may, err := static.MayHaveCandidates(p, nil)
	if err != nil {
		t.Fatal(err)
	}
	if may {
		t.Error("MayHaveCandidates = true for a provably candidate-free program")
	}
}

func TestTaintFlowThroughGetLastError(t *testing.T) {
	// The result register is clobbered but the branch reads the
	// last-error channel the resource API set — still a candidate.
	b := isa.NewBuilder("lasterr")
	mu := b.RData("mu", `Global\X`)
	b.CallAPI("OpenMutexA", isa.Sym(mu))
	b.Mov(isa.R(isa.EAX), isa.Imm(0))
	b.CallAPI("GetLastError")
	b.Cmp(isa.R(isa.EAX), isa.Imm(2)).
		Jz("skip").
		Halt().
		Label("skip").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tf := flowOf(t, p)
	if len(tf.ResourceSources) != 1 {
		t.Fatalf("ResourceSources = %v, want the OpenMutexA callsite", tf.ResourceSources)
	}
	if !tf.PredicateReachable(tf.ResourceSources[0]) {
		t.Error("last-error flow not predicate-reachable")
	}
}

func TestTaintFlowXorClearStopsPropagation(t *testing.T) {
	// xor eax, eax is the emulator's taint-clearing idiom; the compare
	// afterwards consumes clean data.
	b := isa.NewBuilder("xorclear")
	mu := b.RData("mu", `Global\X`)
	b.CallAPI("OpenMutexA", isa.Sym(mu))
	b.Xor(isa.R(isa.EAX), isa.R(isa.EAX)).
		Cmp(isa.R(isa.EAX), isa.Imm(0)).
		Jz("skip").
		Halt().
		Label("skip").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if flowOf(t, p).AnyPredicateReachable() {
		t.Error("xor-cleared result reported predicate-reachable")
	}
}

func TestTaintFlowThroughMemoryAndRegisters(t *testing.T) {
	// Result spilled to memory, reloaded into another register, then
	// compared: the MAY analysis must keep the flow alive.
	b := isa.NewBuilder("spill")
	mu := b.RData("mu", `Global\X`)
	b.Buf("save", 4)
	b.CallAPI("OpenMutexA", isa.Sym(mu))
	b.Mov(isa.MemSym("save"), isa.R(isa.EAX)).
		Mov(isa.R(isa.EDX), isa.MemSym("save")).
		Test(isa.R(isa.EDX), isa.R(isa.EDX)).
		Jnz("found").
		Halt().
		Label("found").Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	tf := flowOf(t, p)
	if !tf.AnyPredicateReachable() {
		t.Error("spill/reload flow lost by the static taint analysis")
	}
}
