package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// The determinism rule: the analysis core promises that the same seed
// yields the same bytes — golden pack hashes, replayable slices, and
// the byte-identity tests all depend on it. A wall-clock read or a
// draw from math/rand's global source inside one of the deterministic
// packages silently breaks that promise the first time its value leaks
// into an output. This rule flags, in the packages the caller names:
//
//   - time.Now / time.Since / time.Until calls, and
//   - any call through the math/rand package identifier that touches
//     the global source (rand.Intn, rand.Seed, ... — constructing a
//     seeded private source via rand.New/rand.NewSource stays legal).
//
// Measurement code that genuinely needs the clock (run statistics,
// benchmarks) opts out per call site with a trailing
// `//lint:allow-clock` comment, which keeps every exemption visible
// and greppable.

// allowClockDirective is the per-line opt-out marker.
const allowClockDirective = "lint:allow-clock"

// clockAllowedRandFuncs are the math/rand selectors that construct or
// operate on a private source rather than drawing from the global one.
var clockAllowedRandFuncs = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// CheckClockDir runs the determinism rule over every non-test Go file
// under each given root (recursively), returning all violations sorted
// by position. Vendor and testdata directories are skipped.
func CheckClockDir(roots ...string) ([]Violation, error) {
	fset := token.NewFileSet()
	var all []Violation
	for _, root := range roots {
		err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				switch d.Name() {
				case "testdata", "vendor":
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			f, err := parser.ParseFile(fset, path, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return fmt.Errorf("lint: %w", err)
			}
			all = append(all, CheckClockFile(fset, f)...)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return all, nil
}

// CheckClockFile runs the determinism rule over one parsed file (which
// must have been parsed with parser.ParseComments for the allowlist to
// work). Exported separately so tests can feed synthetic sources.
func CheckClockFile(fset *token.FileSet, f *ast.File) []Violation {
	timeName, randName := importNames(f)
	if timeName == "" && randName == "" {
		return nil
	}
	allowed := allowedLines(fset, f)
	var out []Violation
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		var msg string
		switch {
		case pkg.Name == timeName && (sel.Sel.Name == "Now" || sel.Sel.Name == "Since" || sel.Sel.Name == "Until"):
			msg = fmt.Sprintf("wall clock in deterministic package: time.%s "+
				"(thread a seed or mark the line //%s)", sel.Sel.Name, allowClockDirective)
		case pkg.Name == randName && !clockAllowedRandFuncs[sel.Sel.Name]:
			msg = fmt.Sprintf("global rand source in deterministic package: rand.%s "+
				"(use rand.New(rand.NewSource(seed)) or mark the line //%s)", sel.Sel.Name, allowClockDirective)
		default:
			return true
		}
		pos := fset.Position(call.Pos())
		if !allowed[pos.Line] {
			out = append(out, Violation{Pos: pos, Msg: msg})
		}
		return true
	})
	return out
}

// importNames returns the local identifiers the file binds for "time"
// and "math/rand" ("" when not imported; dot and blank imports are
// ignored — the rule matches selector calls only).
func importNames(f *ast.File) (timeName, randName string) {
	for _, imp := range f.Imports {
		path, err := strconv.Unquote(imp.Path.Value)
		if err != nil {
			continue
		}
		name := ""
		if imp.Name != nil {
			name = imp.Name.Name
			if name == "_" || name == "." {
				continue
			}
		}
		switch path {
		case "time":
			if name == "" {
				name = "time"
			}
			timeName = name
		case "math/rand", "math/rand/v2":
			if name == "" {
				name = "rand"
			}
			randName = name
		}
	}
	return timeName, randName
}

// allowedLines collects the lines carrying an allow-clock directive.
func allowedLines(fset *token.FileSet, f *ast.File) map[int]bool {
	allowed := make(map[int]bool)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if strings.Contains(c.Text, allowClockDirective) {
				allowed[fset.Position(c.Pos()).Line] = true
			}
		}
	}
	return allowed
}
