package lint

import (
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

func checkClockSrc(t *testing.T, src string) []Violation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckClockFile(fset, f)
}

func TestClockRule(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int // violations
	}{
		{
			name: "time.Now flagged",
			src: `package p
import "time"
func f() time.Time { return time.Now() }`,
			want: 1,
		},
		{
			name: "time.Since flagged",
			src: `package p
import "time"
func f(t0 time.Time) time.Duration { return time.Since(t0) }`,
			want: 1,
		},
		{
			name: "allow-clock directive exempts the line",
			src: `package p
import "time"
func f() time.Time { return time.Now() } //lint:allow-clock run stats only`,
			want: 0,
		},
		{
			name: "directive covers only its own line",
			src: `package p
import "time"
func f() time.Time { return time.Now() } //lint:allow-clock
func g() time.Time { return time.Now() }`,
			want: 1,
		},
		{
			name: "global rand source flagged",
			src: `package p
import "math/rand"
func f() int { return rand.Intn(6) }`,
			want: 1,
		},
		{
			name: "seeded private source is legal",
			src: `package p
import "math/rand"
func f(seed int64) int { return rand.New(rand.NewSource(seed)).Intn(6) }`,
			want: 0,
		},
		{
			name: "renamed import still matched",
			src: `package p
import mrand "math/rand"
func f() float64 { return mrand.Float64() }`,
			want: 1,
		},
		{
			name: "duration arithmetic and constants untouched",
			src: `package p
import "time"
func f(d time.Duration) time.Duration { return d + 5*time.Millisecond }`,
			want: 0,
		},
		{
			name: "other package named time not confused",
			src: `package p
import "time"
type clock struct{}
func (clock) Now() int { return 0 }
func f(c clock) int { return c.Now() }
var _ = time.Millisecond`,
			want: 0,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := checkClockSrc(t, tt.src)
			if len(got) != tt.want {
				t.Fatalf("got %d violations, want %d: %v", len(got), tt.want, got)
			}
		})
	}
}

// TestNoWallClockInDeterministicPackages enforces the rule over the
// real tree: the emulator, the static analyses, and the determinism
// classifier must never read the wall clock or the global rand source
// — same seed, same bytes. This is the CI entry point; exemptions are
// per-line //lint:allow-clock directives, greppable by design.
func TestNoWallClockInDeterministicPackages(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := CheckClockDir(
		filepath.Join(root, "internal", "emu"),
		filepath.Join(root, "internal", "static"),
		filepath.Join(root, "internal", "determinism"),
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}
