package lint

import (
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"testing"
)

func checkSrc(t *testing.T, src string) []Violation {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return CheckFiles(fset, []*ast.File{f})
}

func TestRule(t *testing.T) {
	tests := []struct {
		name string
		src  string
		want int // violations
	}{
		{
			name: "bare goroutine",
			src: `package p
func f() { go func() { work() }() }
func work() {}`,
			want: 1,
		},
		{
			name: "inline deferred recover",
			src: `package p
func f() {
	go func() {
		defer func() { recover() }()
		work()
	}()
}
func work() {}`,
			want: 0,
		},
		{
			name: "calls recovering package function",
			src: `package p
func f() { go func() { guarded() }() }
func guarded() { defer func() { recover() }(); work() }
func work() {}`,
			want: 0,
		},
		{
			name: "calls recovering method by name",
			src: `package p
type T struct{}
func (t *T) isolated() { defer func() { recover() }() }
func f(t *T) { go func() { t.isolated() }() }`,
			want: 0,
		},
		{
			name: "local closure variable transitively recovers",
			src: `package p
func f() {
	runOne := func(i int) { defer func() { recover() }(); work(i) }
	go func() { runOne(0) }()
}
func work(int) {}`,
			want: 0,
		},
		{
			name: "two-hop fixpoint through closure and method",
			src: `package p
type T struct{}
func (t *T) isolated() { defer func() { recover() }() }
func f(t *T) {
	runOne := func() { t.isolated() }
	go func() { runOne() }()
}`,
			want: 0,
		},
		{
			name: "direct go of recovering function",
			src: `package p
func f() { go guarded() }
func guarded() { defer func() { recover() }() }`,
			want: 0,
		},
		{
			name: "direct go of non-recovering function",
			src: `package p
func f() { go work() }
func work() {}`,
			want: 1,
		},
		{
			name: "call cycle without recover still flagged",
			src: `package p
func f() { go func() { a() }() }
func a() { b() }
func b() { a() }`,
			want: 1,
		},
		{
			name: "selector call into other package does not count",
			src: `package p
import "net/http"
func f(s *http.Server) { go func() { s.ListenAndServe() }() }`,
			want: 1,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := checkSrc(t, tt.src)
			if len(got) != tt.want {
				t.Fatalf("got %d violations, want %d: %v", len(got), tt.want, got)
			}
		})
	}
}

// TestNoBareGoroutines enforces the rule over the real tree: every
// goroutine spawned anywhere under internal/ must reach a recover().
// This is the CI entry point for the custom vet pass.
func TestNoBareGoroutines(t *testing.T) {
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	vs, err := CheckDir(filepath.Join(root, "internal"))
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("%s", v)
	}
}
