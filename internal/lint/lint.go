// Package lint is the repository's custom vet pass, built on the
// standard library's go/ast only (no external analysis framework).
//
// Its single rule today: no bare goroutine in internal/... — every
// `go` statement must spawn a function whose body transitively reaches
// a recover(). A panic inside a goroutine with no recover kills the
// whole process, which this codebase cannot afford: the corpus runner,
// the experiment pool, and the fleet simulator all promise per-unit
// fault isolation, and a single bare goroutine voids that promise.
//
// "Transitively reaches" is a per-package fixpoint over a coarse call
// graph: a function is recovering when its body contains a recover()
// call (including inside a deferred closure), or calls — by name —
// a same-package function declaration, a method, or a local closure
// variable (`runOne := func(...)`) that is itself recovering. The
// name matching is deliberately coarse (methods match on the bare
// selector name); the rule is a tripwire, not a proof.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Violation is one rule breach, with the position of the offending
// `go` statement.
type Violation struct {
	Pos token.Position
	Msg string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: %s", v.Pos, v.Msg)
}

// CheckDir parses every non-test Go file under root (recursively,
// grouped per directory as one package) and returns all violations,
// sorted by position. Vendor and testdata directories are skipped.
func CheckDir(root string) ([]Violation, error) {
	perDir := make(map[string][]string)
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			switch d.Name() {
			case "testdata", "vendor":
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
			return nil
		}
		dir := filepath.Dir(path)
		perDir[dir] = append(perDir[dir], path)
		return nil
	})
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var all []Violation
	dirs := make([]string, 0, len(perDir))
	for dir := range perDir {
		dirs = append(dirs, dir)
	}
	sort.Strings(dirs)
	for _, dir := range dirs {
		var files []*ast.File
		for _, path := range perDir[dir] {
			src, err := os.ReadFile(path)
			if err != nil {
				return nil, err
			}
			f, err := parser.ParseFile(fset, path, src, parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			files = append(files, f)
		}
		all = append(all, CheckFiles(fset, files)...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i].Pos, all[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		return a.Offset < b.Offset
	})
	return all, nil
}

// funcInfo is one named function-like body in the package: a function
// declaration, a method (keyed by bare name), or a local closure
// variable assigned a function literal.
type funcInfo struct {
	recovers bool            // body contains a direct recover() call
	calls    map[string]bool // names called from the body
}

// CheckFiles runs the rule over one package's files and returns the
// violations. Exported separately from CheckDir so tests can feed
// synthetic sources.
func CheckFiles(fset *token.FileSet, files []*ast.File) []Violation {
	funcs := make(map[string]*funcInfo)
	record := func(name string, body *ast.BlockStmt) {
		if body == nil {
			return
		}
		info := &funcInfo{calls: make(map[string]bool)}
		scanBody(body, info)
		// A name bound more than once (method sets, shadowed closures)
		// keeps the union: recovering if any binding recovers. Erring
		// toward acceptance keeps the coarse matching from producing
		// false alarms; the rule is a tripwire.
		if prev, ok := funcs[name]; ok {
			info.recovers = info.recovers || prev.recovers
			for c := range prev.calls {
				info.calls[c] = true
			}
		}
		funcs[name] = info
	}
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok {
				record(fd.Name.Name, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i := range as.Rhs {
				lit, ok := as.Rhs[i].(*ast.FuncLit)
				if !ok {
					continue
				}
				if id, ok := as.Lhs[i].(*ast.Ident); ok {
					record(id.Name, lit.Body)
				}
			}
			return true
		})
	}

	// Fixpoint: propagate "recovering" across the name-level call graph.
	recovering := make(map[string]bool)
	for name, info := range funcs {
		if info.recovers {
			recovering[name] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for name, info := range funcs {
			if recovering[name] {
				continue
			}
			for callee := range info.calls {
				if recovering[callee] {
					recovering[name] = true
					changed = true
					break
				}
			}
		}
	}

	var out []Violation
	for _, f := range files {
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if !goStmtRecovers(g, recovering) {
				out = append(out, Violation{
					Pos: fset.Position(g.Pos()),
					Msg: "bare goroutine: no recover() reachable from the spawned function " +
						"(a panic here kills the process; wrap the body or call a recovering helper)",
				})
			}
			return true
		})
	}
	return out
}

// goStmtRecovers reports whether the spawned function reaches a
// recover(): a literal whose body recovers or calls a recovering
// name, or a direct call to a recovering name.
func goStmtRecovers(g *ast.GoStmt, recovering map[string]bool) bool {
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		info := &funcInfo{calls: make(map[string]bool)}
		scanBody(fun.Body, info)
		if info.recovers {
			return true
		}
		for callee := range info.calls {
			if recovering[callee] {
				return true
			}
		}
		return false
	default:
		return recovering[calleeName(fun)]
	}
}

// scanBody records a direct recover() call and every called name
// (plain identifiers and bare selector names alike) in the body.
func scanBody(body *ast.BlockStmt, info *funcInfo) {
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name := calleeName(call.Fun)
		if name == "recover" {
			info.recovers = true
		} else if name != "" {
			info.calls[name] = true
		}
		return true
	})
}

// calleeName extracts the coarse name of a call target: the identifier
// for plain calls, the selector name for method or package calls, and
// "" for anything dynamic.
func calleeName(fun ast.Expr) string {
	switch e := fun.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return e.Sel.Name
	case *ast.ParenExpr:
		return calleeName(e.X)
	}
	return ""
}
