package alignment

import "autovac/internal/trace"

// AlignGreedy is the literal greedy-anchor alignment of the paper's
// Algorithm 1: walk the mutated trace linearly; for each call, search
// forward in the natural trace for the first call with an equivalent
// execution context; everything skipped on either side lands in the
// difference sets.
//
// It is kept alongside the LCS-based Align as an ablation baseline: the
// greedy scan commits to the first match it finds, so a repeated context
// early in the natural trace can consume the anchor a later region
// needed, inflating the difference sets. The ablation benchmark and the
// agreement property test quantify how often that matters on real
// pipeline traces.
func AlignGreedy(mutated, natural []trace.APICall) Diff {
	keysN := make([]Key, len(natural))
	for i, c := range natural {
		keysN[i] = KeyOf(c)
	}
	var d Diff
	j := 0
	for i := 0; i < len(mutated); i++ {
		km := KeyOf(mutated[i])
		found := -1
		for k := j; k < len(natural); k++ {
			if keysN[k] == km {
				found = k
				break
			}
		}
		if found < 0 {
			d.DeltaM = append(d.DeltaM, mutated[i])
			continue
		}
		// Natural calls skipped to reach the anchor are lost behaviour.
		d.DeltaN = append(d.DeltaN, natural[j:found]...)
		d.Aligned++
		if mutated[i].Success != natural[found].Success {
			d.Flips = append(d.Flips, Flip{Mutated: mutated[i], Natural: natural[found]})
		}
		j = found + 1
	}
	d.DeltaN = append(d.DeltaN, natural[j:]...)
	return d
}
