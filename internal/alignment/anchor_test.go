package alignment

import (
	"testing"
	"testing/quick"

	"autovac/internal/trace"
)

func TestAlignGreedyIdentical(t *testing.T) {
	calls := []trace.APICall{call("A", 1), call("B", 2), call("C", 3)}
	d := AlignGreedy(calls, calls)
	if !d.Empty() || d.Aligned != 3 {
		t.Errorf("self-alignment: %+v", d)
	}
}

func TestAlignGreedyPrefixDivergence(t *testing.T) {
	natural := []trace.APICall{call("A", 1), call("B", 2), call("C", 3)}
	mutated := []trace.APICall{call("A", 1), call("X", 9)}
	d := AlignGreedy(mutated, natural)
	if d.Aligned != 1 || len(d.DeltaM) != 1 || len(d.DeltaN) != 2 {
		t.Errorf("diff = aligned %d Δm %d Δn %d", d.Aligned, len(d.DeltaM), len(d.DeltaN))
	}
}

func TestAlignGreedyFlips(t *testing.T) {
	n := call("WriteFile", 4)
	n.Success = true
	m := call("WriteFile", 4)
	m.Success = false
	d := AlignGreedy([]trace.APICall{m}, []trace.APICall{n})
	if len(d.Flips) != 1 {
		t.Fatalf("flips = %d", len(d.Flips))
	}
}

// Property: the greedy anchor alignment never aligns MORE pairs than
// the LCS alignment (LCS is optimal), and both conserve trace sizes.
func TestGreedyVsLCSProperties(t *testing.T) {
	apis := []string{"A", "B", "C", "D"}
	mk := func(idx []uint8) []trace.APICall {
		out := make([]trace.APICall, len(idx))
		for i, x := range idx {
			out[i] = call(apis[int(x)%len(apis)], int(x)%5)
		}
		return out
	}
	f := func(a, b []uint8) bool {
		ca, cb := mk(a), mk(b)
		lcs := Align(ca, cb)
		greedy := AlignGreedy(ca, cb)
		if greedy.Aligned > lcs.Aligned {
			return false
		}
		for _, d := range []Diff{lcs, greedy} {
			if len(d.DeltaM)+d.Aligned != len(ca) || len(d.DeltaN)+d.Aligned != len(cb) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// On typical pipeline traces (one divergent region), greedy and LCS
// agree exactly.
func TestGreedyAgreesOnSingleDivergence(t *testing.T) {
	natural := []trace.APICall{
		call("OpenMutexA", 1, "m"), call("CreateMutexA", 4, "m"),
		call("CreateFileA", 7, "f"), call("WriteFile", 9),
		call("connect", 12, "cc:443"), call("send", 14), call("send", 14),
	}
	mutated := []trace.APICall{
		call("OpenMutexA", 1, "m"), call("CreateMutexA", 4, "m"),
		call("connect", 12, "cc:443"), call("send", 14), call("send", 14),
	}
	lcs := Align(mutated, natural)
	greedy := AlignGreedy(mutated, natural)
	if lcs.Aligned != greedy.Aligned ||
		len(lcs.DeltaN) != len(greedy.DeltaN) ||
		len(lcs.DeltaM) != len(greedy.DeltaM) {
		t.Errorf("LCS %d/%d/%d vs greedy %d/%d/%d",
			lcs.Aligned, len(lcs.DeltaM), len(lcs.DeltaN),
			greedy.Aligned, len(greedy.DeltaM), len(greedy.DeltaN))
	}
}

// The pathological case where greedy over-consumes: the mutated trace's
// first call anchors to a late occurrence in the natural trace,
// swallowing calls an optimal alignment would keep.
func TestGreedyPathologicalCase(t *testing.T) {
	// LCS aligns A,B (2 pairs: mutated's middle A and trailing B).
	// Greedy anchors mutated's leading B to natural's only B, consuming
	// A on the way, and can then align nothing else.
	natural := []trace.APICall{call("A", 1), call("B", 2)}
	mutated := []trace.APICall{call("B", 2), call("A", 1), call("B", 2)}
	lcs := Align(mutated, natural)
	greedy := AlignGreedy(mutated, natural)
	if lcs.Aligned != 2 {
		t.Errorf("LCS aligned = %d, want 2", lcs.Aligned)
	}
	if greedy.Aligned > lcs.Aligned {
		t.Errorf("greedy %d > LCS %d (optimality violated)", greedy.Aligned, lcs.Aligned)
	}
	if greedy.Aligned == lcs.Aligned {
		t.Errorf("expected greedy to under-align on this shape; got %d", greedy.Aligned)
	}
}
