package alignment

import (
	"testing"
	"testing/quick"

	"autovac/internal/trace"
)

func call(api string, pc int, params ...string) trace.APICall {
	c := trace.APICall{API: api, CallerPC: pc}
	for _, p := range params {
		c.Args = append(c.Args, trace.ArgValue{Str: p, Static: true})
	}
	return c
}

func TestKeyOf(t *testing.T) {
	a := call("OpenMutexA", 5, "_AVIRA_2109")
	b := call("OpenMutexA", 5, "_AVIRA_2109")
	if KeyOf(a) != KeyOf(b) {
		t.Error("identical contexts produced different keys")
	}
	// Different caller-PC separates keys.
	c := call("OpenMutexA", 9, "_AVIRA_2109")
	if KeyOf(a) == KeyOf(c) {
		t.Error("different caller-PC aligned")
	}
	// Dynamic args are ignored.
	d := a
	d.Args = append([]trace.ArgValue{{Raw: 0x1234, Static: false}}, d.Args...)
	e := a
	e.Args = append([]trace.ArgValue{{Raw: 0x9999, Static: false}}, e.Args...)
	if KeyOf(d) != KeyOf(e) {
		t.Error("dynamic args leaked into the key")
	}
	// Static raw values participate.
	f := trace.APICall{API: "X", Args: []trace.ArgValue{{Raw: 1, Static: true}}}
	g := trace.APICall{API: "X", Args: []trace.ArgValue{{Raw: 2, Static: true}}}
	if KeyOf(f) == KeyOf(g) {
		t.Error("static raw args not compared")
	}
}

func TestAlignIdenticalTraces(t *testing.T) {
	calls := []trace.APICall{
		call("OpenMutexA", 1, "m"),
		call("CreateMutexA", 4, "m"),
		call("connect", 9, "cc:443"),
	}
	d := Align(calls, calls)
	if !d.Empty() || d.Aligned != 3 {
		t.Errorf("self-alignment: %+v", d)
	}
}

func TestAlignPrefixDivergence(t *testing.T) {
	natural := []trace.APICall{
		call("OpenMutexA", 1, "m"),
		call("CreateMutexA", 4, "m"),
		call("RegOpenKeyExA", 7, `HKLM\Run`),
		call("connect", 9, "cc:443"),
	}
	mutated := []trace.APICall{
		call("OpenMutexA", 1, "m"),
		call("ExitProcess", 20),
	}
	d := Align(mutated, natural)
	if d.Aligned != 1 {
		t.Errorf("aligned = %d, want 1", d.Aligned)
	}
	if !ContainsAPI(d.DeltaM, "ExitProcess") {
		t.Error("ExitProcess not in DeltaM")
	}
	if !ContainsAPI(d.DeltaN, "CreateMutexA", "connect") {
		t.Error("lost calls not in DeltaN")
	}
	if len(d.DeltaN) != 3 {
		t.Errorf("DeltaN = %d calls, want 3", len(d.DeltaN))
	}
}

func TestAlignMidTraceGap(t *testing.T) {
	natural := []trace.APICall{
		call("A", 1), call("B", 2), call("C", 3), call("D", 4),
	}
	mutated := []trace.APICall{
		call("A", 1), call("D", 4),
	}
	d := Align(mutated, natural)
	if d.Aligned != 2 {
		t.Errorf("aligned = %d, want 2 (A and D)", d.Aligned)
	}
	if len(d.DeltaN) != 2 || d.DeltaN[0].API != "B" || d.DeltaN[1].API != "C" {
		t.Errorf("DeltaN = %+v", d.DeltaN)
	}
	if len(d.DeltaM) != 0 {
		t.Errorf("DeltaM = %+v", d.DeltaM)
	}
}

func TestAlignEmptyTraces(t *testing.T) {
	d := Align(nil, nil)
	if !d.Empty() {
		t.Error("empty traces not aligned")
	}
	d = Align(nil, []trace.APICall{call("A", 1)})
	if len(d.DeltaN) != 1 || len(d.DeltaM) != 0 {
		t.Errorf("one-sided: %+v", d)
	}
}

func TestFilterAPI(t *testing.T) {
	calls := []trace.APICall{call("A", 1), call("B", 2), call("A", 3)}
	got := FilterAPI(calls, "A")
	if len(got) != 2 {
		t.Errorf("FilterAPI = %d", len(got))
	}
	if FilterAPI(calls, "Z") != nil {
		t.Error("FilterAPI(Z) non-nil")
	}
	if !ContainsAPI(calls, "Z", "B") {
		t.Error("ContainsAPI multi-name failed")
	}
}

// Properties: alignment of a trace with itself is empty; Δ sizes are
// consistent with the aligned count.
func TestAlignProperties(t *testing.T) {
	apis := []string{"A", "B", "C", "D", "E"}
	mk := func(idx []uint8) []trace.APICall {
		out := make([]trace.APICall, len(idx))
		for i, x := range idx {
			out[i] = call(apis[int(x)%len(apis)], int(x)%7)
		}
		return out
	}
	selfEmpty := func(idx []uint8) bool {
		c := mk(idx)
		d := Align(c, c)
		return d.Empty() && d.Aligned == len(c)
	}
	sizes := func(a, b []uint8) bool {
		ca, cb := mk(a), mk(b)
		d := Align(ca, cb)
		return len(d.DeltaM)+d.Aligned == len(ca) &&
			len(d.DeltaN)+d.Aligned == len(cb)
	}
	symmetric := func(a, b []uint8) bool {
		ca, cb := mk(a), mk(b)
		d1 := Align(ca, cb)
		d2 := Align(cb, ca)
		return len(d1.DeltaM) == len(d2.DeltaN) && len(d1.DeltaN) == len(d2.DeltaM) &&
			d1.Aligned == d2.Aligned
	}
	cfg := &quick.Config{MaxCount: 60}
	if err := quick.Check(selfEmpty, cfg); err != nil {
		t.Errorf("self-empty: %v", err)
	}
	if err := quick.Check(sizes, cfg); err != nil {
		t.Errorf("sizes: %v", err)
	}
	if err := quick.Check(symmetric, cfg); err != nil {
		t.Errorf("symmetric: %v", err)
	}
}
