// Package alignment implements the trace differential analysis of
// AUTOVAC's impact step (paper §IV-B, Algorithm 1): aligning a natural
// API-call trace with a resource-mutated one and computing the
// difference sets Δm (calls only in the mutated run) and Δn (calls only
// in the natural run).
//
// Alignment follows Zeller's execution-alignment idea at API
// granularity: two calls align when their calling execution contexts —
// the triple <API-name, caller-PC, static parameter list> — are
// equivalent. The difference extraction uses a longest-common-
// subsequence over those context keys, which subsumes the linear
// anchor-scan of the paper's Algorithm 1 and handles multiple aligned
// regions.
package alignment

import (
	"fmt"
	"strings"

	"autovac/internal/trace"
)

// Key is the calling execution context two calls must share to align:
// <API-name, Caller-PC, static parameters>. Dynamic parameters (handles,
// buffer pointers) are excluded, exactly as §IV-B prescribes.
type Key struct {
	API      string
	CallerPC int
	Params   string
}

// KeyOf derives the alignment key of a call record.
func KeyOf(c trace.APICall) Key {
	var parts []string
	for i, a := range c.Args {
		if !a.Static {
			continue
		}
		if a.Str != "" {
			parts = append(parts, fmt.Sprintf("%d=%s", i, a.Str))
		} else {
			parts = append(parts, fmt.Sprintf("%d=%#x", i, a.Raw))
		}
	}
	return Key{API: c.API, CallerPC: c.CallerPC, Params: strings.Join(parts, "|")}
}

// Flip is an aligned call pair whose success status differs between
// the two executions: the call still happens, but its effect is
// frustrated (a blocked persistence write, a denied driver drop).
type Flip struct {
	Mutated trace.APICall
	Natural trace.APICall
}

// Diff is the result of aligning two traces.
type Diff struct {
	// DeltaM holds calls present only in the mutated trace.
	DeltaM []trace.APICall
	// DeltaN holds calls present only in the natural trace.
	DeltaN []trace.APICall
	// Flips holds aligned pairs whose success status changed.
	Flips []Flip
	// Aligned is the number of aligned call pairs.
	Aligned int
}

// Empty reports whether the two traces aligned completely with no
// result flips.
func (d Diff) Empty() bool {
	return len(d.DeltaM) == 0 && len(d.DeltaN) == 0 && len(d.Flips) == 0
}

// maxLCSCells bounds the LCS table size (memory ∝ cells). Pipeline
// traces are hundreds of calls; a runaway sample looping on an API
// could produce tens of thousands, and a quadratic table would exhaust
// memory. Above the bound, Align falls back to the greedy anchor scan,
// which is linear in memory and empirically agrees with LCS on
// single-divergence traces (see the ablation).
const maxLCSCells = 16 << 20

// Align computes the difference sets between a mutated and a natural
// call trace.
func Align(mutated, natural []trace.APICall) Diff {
	m, n := len(mutated), len(natural)
	if m > 0 && n > 0 && m*n > maxLCSCells {
		return AlignGreedy(mutated, natural)
	}
	keysM := make([]Key, m)
	for i, c := range mutated {
		keysM[i] = KeyOf(c)
	}
	keysN := make([]Key, n)
	for i, c := range natural {
		keysN[i] = KeyOf(c)
	}

	// LCS table over context keys.
	lcs := make([][]int32, m+1)
	for i := range lcs {
		lcs[i] = make([]int32, n+1)
	}
	for i := m - 1; i >= 0; i-- {
		for j := n - 1; j >= 0; j-- {
			if keysM[i] == keysN[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else if lcs[i+1][j] >= lcs[i][j+1] {
				lcs[i][j] = lcs[i+1][j]
			} else {
				lcs[i][j] = lcs[i][j+1]
			}
		}
	}

	var d Diff
	i, j := 0, 0
	for i < m && j < n {
		switch {
		case keysM[i] == keysN[j]:
			d.Aligned++
			if mutated[i].Success != natural[j].Success {
				d.Flips = append(d.Flips, Flip{Mutated: mutated[i], Natural: natural[j]})
			}
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			d.DeltaM = append(d.DeltaM, mutated[i])
			i++
		default:
			d.DeltaN = append(d.DeltaN, natural[j])
			j++
		}
	}
	d.DeltaM = append(d.DeltaM, mutated[i:]...)
	d.DeltaN = append(d.DeltaN, natural[j:]...)
	return d
}

// AlignTraces is Align over full traces.
func AlignTraces(mutated, natural *trace.Trace) Diff {
	return Align(mutated.Calls, natural.Calls)
}

// ContainsAPI reports whether any call in the set invokes one of the
// named APIs.
func ContainsAPI(calls []trace.APICall, apis ...string) bool {
	for _, c := range calls {
		for _, a := range apis {
			if c.API == a {
				return true
			}
		}
	}
	return false
}

// FilterAPI returns the calls matching any of the named APIs.
func FilterAPI(calls []trace.APICall, apis ...string) []trace.APICall {
	var out []trace.APICall
	for _, c := range calls {
		for _, a := range apis {
			if c.API == a {
				out = append(out, c)
				break
			}
		}
	}
	return out
}
