package winenv

// ACL is a minimal access-control model for resources. The vaccine
// delivery described in the paper (§V, "Direct Injection") adjusts an
// injected file's access privilege "to disallow certain operation such as
// read and write"; Deny expresses exactly that.
type ACL struct {
	// Deny lists operations that are refused for everyone but the owner.
	Deny []Op
	// OwnerOnly, when set, refuses every operation for principals other
	// than Owner, regardless of Deny.
	OwnerOnly bool
}

// denies reports whether the ACL refuses op for the given principal,
// where owner is the resource owner.
func (a ACL) denies(op Op, principal, owner string) bool {
	if principal == owner {
		return false
	}
	if a.OwnerOnly {
		return true
	}
	for _, d := range a.Deny {
		if d == op {
			return true
		}
	}
	return false
}

// DenyAll returns an ACL that refuses every operation to non-owners.
// It models a super-user-owned vaccine file that malware cannot touch.
func DenyAll() ACL { return ACL{OwnerOnly: true} }

// DenyOps returns an ACL that refuses the listed operations to non-owners.
func DenyOps(ops ...Op) ACL { return ACL{Deny: ops} }
