package winenv

import "fmt"

// Flow records one outbound network interaction (connect/send/recv/resolve).
type Flow struct {
	Tick      uint64
	Principal string
	// Verb is one of "resolve", "connect", "send", "recv", "http".
	Verb string
	// Target is a host:port or hostname or URL.
	Target string
	// Bytes is the payload size for send/recv.
	Bytes int
	// OK reports whether the interaction succeeded.
	OK bool
}

// MaxFlows caps the retained flow log. A long worm simulation records
// network activity without bound otherwise; when the cap is reached the
// oldest half is discarded (capacity-capped, so slices handed out
// earlier stay intact), mirroring the truncation discipline Snapshot
// applies to events. Trimming is deferred while snapshots are open:
// rewind indexes into the flow log must stay valid, and snapshot-scoped
// runs are bounded by their step budget anyway.
const MaxFlows = 4096

// Responder scripts the network's side of a dialogue — the pseudo-C2
// plug-in point (package c2 provides the scenario-driven
// implementation). All methods are consulted only after blackholes and
// vaccine registrations have been applied, so deployed vaccines
// override the scripted world.
//
// Responders may be stateful (beacon protocols, staged downloads).
// Mark and Rewind bracket that state for Snapshot/Reset: Mark returns
// an opaque token capturing the current dialogue state, Rewind restores
// it. Stateless responders can return nil and ignore the token.
type Responder interface {
	// ResolveHost decides a DNS query. handled=false falls through to
	// the default resolution (configured DNS entries, then a synthetic
	// stable address).
	ResolveHost(host string) (ip string, ok bool, handled bool)
	// AcceptConnect decides a connection attempt to a host:port target
	// or URL. handled=false falls through to the default (accept).
	AcceptConnect(target string) (ok bool, handled bool)
	// ObserveSend sees payload bytes transmitted on a connection, so
	// beacon protocols can match request bytes.
	ObserveSend(target string, data []byte)
	// Payload produces up to want response bytes for a recv/read on a
	// connection. handled=false falls through to the default synthetic
	// payload.
	Payload(target string, want int) (data []byte, handled bool)
	// Mark captures the responder's dialogue state; Rewind restores it.
	Mark() any
	Rewind(mark any)
}

// ResolveVerdict is a resolve hook's decision on a DNS query.
type ResolveVerdict int

// Resolve hook verdicts.
const (
	// VerdictNone lets the query proceed to the next authority.
	VerdictNone ResolveVerdict = iota
	// VerdictResolve forces the query to succeed (sinkhole
	// registration: the domain now "exists").
	VerdictResolve
	// VerdictRefuse forces the query to fail (DNS sinkhole: NXDOMAIN).
	VerdictRefuse
)

// ResolveHook inspects a DNS query before the responder and default
// resolution. The vaccine daemon uses it to sinkhole partial-static
// domain patterns (§V's interception, lifted to the DNS path).
type ResolveHook func(host string) ResolveVerdict

// Network simulates the reachable network from a host. By default every
// target resolves and connects (malware C&C traffic should be observable
// in the normal run); individual targets can be blackholed, domains can
// be force-registered (killswitch vaccination), and a Responder can
// script request/response dialogues.
type Network struct {
	env *Env
	// dns maps hostname -> IP. Unknown hostnames resolve to a synthetic
	// address unless blackholed.
	dns map[string]string
	// blackholed targets fail to resolve/connect (DNS sinkhole).
	blackholed map[string]bool
	// registered domains always resolve, overriding the responder's
	// world — the killswitch-registration vaccine.
	registered map[string]bool
	// resolveHooks run before the responder; the vaccine daemon's
	// pattern sinkholes live here.
	resolveHooks []ResolveHook
	responder    Responder
	flows        []Flow
	// flowsDropped counts entries discarded by the MaxFlows cap.
	flowsDropped int
	nextSocket   Handle
	sockets      map[Handle]string // socket -> connected target
}

// Net returns the environment's network simulation, creating it on first
// use.
func (e *Env) Net() *Network {
	if e.net == nil {
		e.net = &Network{
			env:        e,
			dns:        make(map[string]string),
			blackholed: make(map[string]bool),
			registered: make(map[string]bool),
			sockets:    make(map[Handle]string),
			nextSocket: 0x1000,
		}
	}
	return e.net
}

// Blackhole makes a hostname or host:port target unreachable — the
// DNS-sinkhole deployment of a block-access domain vaccine.
func (n *Network) Blackhole(target string) {
	n.env.noteNetEntry(netBlackhole, target)
	n.blackholed[target] = true
}

// Unblackhole removes a blackhole.
func (n *Network) Unblackhole(target string) {
	n.env.noteNetEntry(netBlackhole, target)
	delete(n.blackholed, target)
}

// Blackholed reports whether a target is blackholed.
func (n *Network) Blackholed(target string) bool { return n.blackholed[target] }

// Register makes a domain resolvable regardless of the scripted world —
// the killswitch-registration deployment of a simulate-presence domain
// vaccine (register the killswitch, and the malware that checks it
// believes it must stand down).
func (n *Network) Register(domain string) {
	n.env.noteNetEntry(netRegistered, domain)
	n.registered[domain] = true
}

// Deregister removes a forced registration.
func (n *Network) Deregister(domain string) {
	n.env.noteNetEntry(netRegistered, domain)
	delete(n.registered, domain)
}

// Registered reports whether a domain is force-registered.
func (n *Network) Registered(domain string) bool { return n.registered[domain] }

// AddDNS maps a hostname to an address.
func (n *Network) AddDNS(host, ip string) {
	n.env.noteNetEntry(netDNS, host)
	n.dns[host] = ip
}

// SetResponder plugs a scripted dialogue behind the network. A nil
// responder restores the default always-succeed behaviour.
func (n *Network) SetResponder(r Responder) { n.responder = r }

// HasResponder reports whether a scripted responder is attached.
func (n *Network) HasResponder() bool { return n.responder != nil }

// AddResolveHook registers a DNS interception hook (vaccine daemon).
func (n *Network) AddResolveHook(h ResolveHook) {
	n.resolveHooks = append(n.resolveHooks, h)
}

// ResolveHookCount returns the number of installed resolve hooks.
func (n *Network) ResolveHookCount() int { return len(n.resolveHooks) }

// Flows returns the recorded network interactions (the retained tail;
// see MaxFlows).
func (n *Network) Flows() []Flow { return n.flows }

// FlowsDropped returns the number of flow entries discarded by the cap.
func (n *Network) FlowsDropped() int { return n.flowsDropped }

// ResetFlows clears the flow log.
func (n *Network) ResetFlows() { n.flows = nil }

// trimFlows drops the oldest entries so the log holds at most
// MaxFlows/2, accounting the discards in flowsDropped. Callers must
// ensure no snapshot is open (open snapshots hold rewind indexes into
// the log); Snapshot.Close invokes it when the outermost snapshot
// closes, so deferred growth is reclaimed instead of persisting.
func (n *Network) trimFlows() {
	if len(n.flows) <= MaxFlows {
		return
	}
	keep := MaxFlows / 2
	trimmed := make([]Flow, keep, MaxFlows)
	copy(trimmed, n.flows[len(n.flows)-keep:])
	n.flowsDropped += len(n.flows) - keep
	n.flows = trimmed
}

// record appends a flow entry, trimming the oldest half once the log
// exceeds MaxFlows (only while no snapshot is open: open snapshots hold
// rewind indexes into the log; the deferred trim happens when the
// outermost snapshot closes).
func (n *Network) record(principal, verb, target string, bytes int, ok bool) {
	n.env.tick++
	if len(n.flows) >= MaxFlows && len(n.env.snaps) == 0 {
		keep := MaxFlows / 2
		trimmed := make([]Flow, keep, MaxFlows)
		copy(trimmed, n.flows[len(n.flows)-keep:])
		n.flowsDropped += len(n.flows) - keep
		n.flows = trimmed
	}
	n.flows = append(n.flows, Flow{
		Tick: n.env.tick, Principal: principal, Verb: verb,
		Target: target, Bytes: bytes, OK: ok,
	})
}

// Resolve performs a DNS lookup. Authority order: blackholes (vaccine),
// forced registrations (vaccine), resolve hooks (vaccine daemon),
// responder (scripted world), configured DNS, synthetic success.
func (n *Network) Resolve(principal, host string) (string, bool) {
	if n.blackholed[host] {
		n.record(principal, "resolve", host, 0, false)
		return "", false
	}
	if n.registered[host] {
		n.record(principal, "resolve", host, 0, true)
		return n.addrFor(host), true
	}
	for _, h := range n.resolveHooks {
		switch h(host) {
		case VerdictResolve:
			n.record(principal, "resolve", host, 0, true)
			return n.addrFor(host), true
		case VerdictRefuse:
			n.record(principal, "resolve", host, 0, false)
			return "", false
		}
	}
	if n.responder != nil {
		if ip, ok, handled := n.responder.ResolveHost(host); handled {
			if !ok {
				n.record(principal, "resolve", host, 0, false)
				return "", false
			}
			if ip == "" {
				ip = n.addrFor(host)
			}
			n.record(principal, "resolve", host, 0, true)
			return ip, true
		}
	}
	n.record(principal, "resolve", host, 0, true)
	return n.addrFor(host), true
}

// addrFor returns the configured or synthetic stable address of a host.
func (n *Network) addrFor(host string) string {
	if ip, ok := n.dns[host]; ok {
		return ip
	}
	// Synthesize a stable fake address so C&C domains "resolve".
	return fmt.Sprintf("10.%d.%d.%d",
		byte(len(host)*7), byte(hashString(host)), byte(hashString(host)>>8))
}

// accepts decides a connection attempt, consulting the responder after
// the vaccine layers. Force-registered hosts accept (the sinkhole
// listens but serves nothing).
func (n *Network) accepts(target string) bool {
	if n.blackholed[target] {
		return false
	}
	if n.registered[target] || n.registered[hostOf(target)] {
		return true
	}
	if n.responder != nil {
		if ok, handled := n.responder.AcceptConnect(target); handled {
			return ok
		}
	}
	return true
}

// hostOf strips the :port suffix of a host:port target.
func hostOf(target string) string {
	for i := len(target) - 1; i >= 0; i-- {
		if target[i] == ':' {
			return target[:i]
		}
	}
	return target
}

// Connect opens a connection to host:port, returning a socket handle.
func (n *Network) Connect(principal, target string) (Handle, bool) {
	if !n.accepts(target) {
		n.record(principal, "connect", target, 0, false)
		return InvalidHandle, false
	}
	s := n.nextSocket
	n.nextSocket += 4
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = target
	n.record(principal, "connect", target, 0, true)
	return s, true
}

// Send transmits bytes on a socket.
func (n *Network) Send(principal string, s Handle, size int) bool {
	target, ok := n.sockets[s]
	if !ok {
		n.record(principal, "send", "?", size, false)
		return false
	}
	n.record(principal, "send", target, size, true)
	return true
}

// SendPayload transmits concrete bytes on a socket, exposing them to
// the responder's dialogue matching (beacon protocols).
func (n *Network) SendPayload(principal string, s Handle, data []byte) bool {
	target, ok := n.sockets[s]
	if !ok {
		n.record(principal, "send", "?", len(data), false)
		return false
	}
	if n.responder != nil {
		n.responder.ObserveSend(target, data)
	}
	n.record(principal, "send", target, len(data), true)
	return true
}

// Recv receives bytes on a socket; the simulation returns a fixed-size
// synthetic payload.
func (n *Network) Recv(principal string, s Handle, want int) (int, bool) {
	target, ok := n.sockets[s]
	if !ok {
		n.record(principal, "recv", "?", 0, false)
		return 0, false
	}
	n.record(principal, "recv", target, want, true)
	return want, true
}

// RecvPayload asks the scripted responder for up to want response
// bytes on a socket. handled=false means no responder answered and the
// caller should fall back to its default payload (the legacy synthetic
// bytes), keeping unscripted runs byte-identical.
func (n *Network) RecvPayload(principal string, s Handle, want int) (data []byte, ok, handled bool) {
	target, bound := n.sockets[s]
	if !bound {
		n.record(principal, "recv", "?", 0, false)
		return nil, false, true
	}
	if n.responder == nil {
		return nil, false, false
	}
	data, handled = n.responder.Payload(target, want)
	if !handled {
		return nil, false, false
	}
	if len(data) > want {
		data = data[:want]
	}
	n.record(principal, "recv", target, len(data), true)
	return data, true, true
}

// BindConnect connects a caller-allocated socket handle to a target.
func (n *Network) BindConnect(principal string, s Handle, target string) bool {
	if !n.accepts(target) {
		n.record(principal, "connect", target, 0, false)
		return false
	}
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = target
	n.record(principal, "connect", target, 0, true)
	return true
}

// RecordSend logs an outbound transmission without socket bookkeeping.
func (n *Network) RecordSend(principal string, bytes int) {
	n.record(principal, "send", "-", bytes, true)
}

// RecordRecv logs an inbound transmission without socket bookkeeping.
func (n *Network) RecordRecv(principal string, bytes int) {
	n.record(principal, "recv", "-", bytes, true)
}

// HTTPGet simulates fetching a URL, returning a request handle.
func (n *Network) HTTPGet(principal, url string) (Handle, bool) {
	if !n.accepts(url) {
		n.record(principal, "http", url, 0, false)
		return InvalidHandle, false
	}
	s := n.nextSocket
	n.nextSocket += 4
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = url
	n.record(principal, "http", url, 0, true)
	return s, true
}

// CloseSocket releases a socket handle.
func (n *Network) CloseSocket(s Handle) {
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	delete(n.sockets, s)
}

// hashString is a small FNV-1a used to synthesize stable addresses.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
