package winenv

import "fmt"

// Flow records one outbound network interaction (connect/send/recv/resolve).
type Flow struct {
	Tick      uint64
	Principal string
	// Verb is one of "resolve", "connect", "send", "recv", "http".
	Verb string
	// Target is a host:port or hostname or URL.
	Target string
	// Bytes is the payload size for send/recv.
	Bytes int
	// OK reports whether the interaction succeeded.
	OK bool
}

// Network simulates the reachable network from a host. By default every
// target resolves and connects (malware C&C traffic should be observable
// in the normal run); individual targets can be blackholed.
type Network struct {
	env *Env
	// dns maps hostname -> IP. Unknown hostnames resolve to a synthetic
	// address unless blackholed.
	dns map[string]string
	// blackholed targets fail to resolve/connect.
	blackholed map[string]bool
	flows      []Flow
	nextSocket Handle
	sockets    map[Handle]string // socket -> connected target
}

// Net returns the environment's network simulation, creating it on first
// use.
func (e *Env) Net() *Network {
	if e.net == nil {
		e.net = &Network{
			env:        e,
			dns:        make(map[string]string),
			blackholed: make(map[string]bool),
			sockets:    make(map[Handle]string),
			nextSocket: 0x1000,
		}
	}
	return e.net
}

// Blackhole makes a hostname or host:port target unreachable.
func (n *Network) Blackhole(target string) { n.blackholed[target] = true }

// AddDNS maps a hostname to an address.
func (n *Network) AddDNS(host, ip string) { n.dns[host] = ip }

// Flows returns the recorded network interactions.
func (n *Network) Flows() []Flow { return n.flows }

// ResetFlows clears the flow log.
func (n *Network) ResetFlows() { n.flows = nil }

// record appends a flow entry.
func (n *Network) record(principal, verb, target string, bytes int, ok bool) {
	n.env.tick++
	n.flows = append(n.flows, Flow{
		Tick: n.env.tick, Principal: principal, Verb: verb,
		Target: target, Bytes: bytes, OK: ok,
	})
}

// Resolve performs a DNS lookup.
func (n *Network) Resolve(principal, host string) (string, bool) {
	if n.blackholed[host] {
		n.record(principal, "resolve", host, 0, false)
		return "", false
	}
	ip, ok := n.dns[host]
	if !ok {
		// Synthesize a stable fake address so C&C domains "resolve".
		ip = fmt.Sprintf("10.%d.%d.%d",
			byte(len(host)*7), byte(hashString(host)), byte(hashString(host)>>8))
	}
	n.record(principal, "resolve", host, 0, true)
	return ip, true
}

// Connect opens a connection to host:port, returning a socket handle.
func (n *Network) Connect(principal, target string) (Handle, bool) {
	if n.blackholed[target] {
		n.record(principal, "connect", target, 0, false)
		return InvalidHandle, false
	}
	s := n.nextSocket
	n.nextSocket += 4
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = target
	n.record(principal, "connect", target, 0, true)
	return s, true
}

// Send transmits bytes on a socket.
func (n *Network) Send(principal string, s Handle, size int) bool {
	target, ok := n.sockets[s]
	if !ok {
		n.record(principal, "send", "?", size, false)
		return false
	}
	n.record(principal, "send", target, size, true)
	return true
}

// Recv receives bytes on a socket; the simulation returns a fixed-size
// synthetic payload.
func (n *Network) Recv(principal string, s Handle, want int) (int, bool) {
	target, ok := n.sockets[s]
	if !ok {
		n.record(principal, "recv", "?", 0, false)
		return 0, false
	}
	n.record(principal, "recv", target, want, true)
	return want, true
}

// BindConnect connects a caller-allocated socket handle to a target.
func (n *Network) BindConnect(principal string, s Handle, target string) bool {
	if n.blackholed[target] {
		n.record(principal, "connect", target, 0, false)
		return false
	}
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = target
	n.record(principal, "connect", target, 0, true)
	return true
}

// RecordSend logs an outbound transmission without socket bookkeeping.
func (n *Network) RecordSend(principal string, bytes int) {
	n.record(principal, "send", "-", bytes, true)
}

// RecordRecv logs an inbound transmission without socket bookkeeping.
func (n *Network) RecordRecv(principal string, bytes int) {
	n.record(principal, "recv", "-", bytes, true)
}

// HTTPGet simulates fetching a URL, returning a request handle.
func (n *Network) HTTPGet(principal, url string) (Handle, bool) {
	if n.blackholed[url] {
		n.record(principal, "http", url, 0, false)
		return InvalidHandle, false
	}
	s := n.nextSocket
	n.nextSocket += 4
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	n.sockets[s] = url
	n.record(principal, "http", url, 0, true)
	return s, true
}

// CloseSocket releases a socket handle.
func (n *Network) CloseSocket(s Handle) {
	if len(n.env.snaps) > 0 {
		n.env.noteSocket(s)
	}
	delete(n.sockets, s)
}

// hashString is a small FNV-1a used to synthesize stable addresses.
func hashString(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}
