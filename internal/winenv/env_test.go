package winenv

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestKindStringRoundTrip(t *testing.T) {
	for _, k := range Kinds() {
		got, err := ParseKind(k.String())
		if err != nil {
			t.Fatalf("ParseKind(%q): %v", k.String(), err)
		}
		if got != k {
			t.Errorf("round trip %v -> %q -> %v", k, k.String(), got)
		}
	}
	if _, err := ParseKind("bogus"); err == nil {
		t.Error("ParseKind(bogus) succeeded, want error")
	}
	if KindInvalid.Valid() {
		t.Error("KindInvalid.Valid() = true")
	}
}

func TestOpValid(t *testing.T) {
	for _, o := range Ops() {
		if !o.Valid() {
			t.Errorf("%v.Valid() = false", o)
		}
	}
	if OpInvalid.Valid() {
		t.Error("OpInvalid.Valid() = true")
	}
}

func TestCreateOpenQueryDelete(t *testing.T) {
	e := New(DefaultIdentity())
	req := Request{Kind: KindMutex, Op: OpCreate, Name: "!VoqA.I4", Principal: "mal"}

	res := e.Do(req)
	if !res.OK || res.Err != ErrSuccess {
		t.Fatalf("create mutex: %+v", res)
	}
	if res.Handle == InvalidHandle {
		t.Fatal("create returned invalid handle")
	}

	// Second create succeeds but reports ERROR_ALREADY_EXISTS.
	res2 := e.Do(req)
	if !res2.OK || res2.Err != ErrAlreadyExists {
		t.Fatalf("second create mutex: %+v, want OK with ALREADY_EXISTS", res2)
	}
	if e.LastError() != ErrAlreadyExists {
		t.Errorf("LastError = %v, want ALREADY_EXISTS", e.LastError())
	}

	// Open and query are case-insensitive.
	open := e.Do(Request{Kind: KindMutex, Op: OpOpen, Name: "!voqa.i4", Principal: "mal"})
	if !open.OK {
		t.Fatalf("case-insensitive open failed: %+v", open)
	}
	if !e.Exists(KindMutex, "!VOQA.I4") {
		t.Error("Exists case-insensitive lookup failed")
	}

	// Delete, then open fails with FILE_NOT_FOUND.
	if res := e.Do(Request{Kind: KindMutex, Op: OpDelete, Name: "!VoqA.I4", Principal: "mal"}); !res.OK {
		t.Fatalf("delete: %+v", res)
	}
	gone := e.Do(Request{Kind: KindMutex, Op: OpOpen, Name: "!VoqA.I4", Principal: "mal"})
	if gone.OK || gone.Err != ErrFileNotFound {
		t.Fatalf("open deleted mutex: %+v, want FILE_NOT_FOUND", gone)
	}
}

func TestCreateExistingFileFails(t *testing.T) {
	e := New(DefaultIdentity())
	req := Request{Kind: KindFile, Op: OpCreate, Name: `C:\x\a.exe`, Principal: "p"}
	if res := e.Do(req); !res.OK {
		t.Fatalf("first create: %+v", res)
	}
	res := e.Do(req)
	if res.OK || res.Err != ErrAlreadyExists {
		t.Fatalf("second file create: %+v, want ALREADY_EXISTS failure", res)
	}
}

func TestServiceCreateExisting(t *testing.T) {
	e := New(DefaultIdentity())
	req := Request{Kind: KindService, Op: OpCreate, Name: "qatpcks", Principal: "p"}
	e.Do(req)
	res := e.Do(req)
	if res.OK || res.Err != ErrServiceExists {
		t.Fatalf("duplicate service create: %+v, want SERVICE_EXISTS", res)
	}
}

func TestReadWrite(t *testing.T) {
	e := New(DefaultIdentity())
	name := `C:\Windows\system32\sdra64.exe`
	e.Do(Request{Kind: KindFile, Op: OpCreate, Name: name, Principal: "zeus"})
	w := e.Do(Request{Kind: KindFile, Op: OpWrite, Name: name, Principal: "zeus", Data: []byte("MZ\x90payload")})
	if !w.OK {
		t.Fatalf("write: %+v", w)
	}
	r := e.Do(Request{Kind: KindFile, Op: OpRead, Name: name, Principal: "zeus"})
	if !r.OK || string(r.Data) != "MZ\x90payload" {
		t.Fatalf("read: %+v", r)
	}
	// Read of a missing file fails.
	miss := e.Do(Request{Kind: KindFile, Op: OpRead, Name: `C:\no\such`, Principal: "zeus"})
	if miss.OK || miss.Err != ErrFileNotFound {
		t.Fatalf("read missing: %+v", miss)
	}
}

func TestACLDeny(t *testing.T) {
	e := New(DefaultIdentity())
	e.Inject(Resource{
		Kind: KindFile, Name: `C:\Windows\system32\sdra64.exe`,
		Owner: "vaccine", ACL: DenyAll(),
	})
	// Malware cannot create (exists), write, read, or delete it.
	for _, op := range []Op{OpWrite, OpRead, OpDelete, OpOpen} {
		res := e.Do(Request{Kind: KindFile, Op: op, Name: `C:\Windows\system32\sdra64.exe`, Principal: "zeus"})
		if res.OK || res.Err != ErrAccessDenied {
			t.Errorf("%v on vaccinated file: %+v, want ACCESS_DENIED", op, res)
		}
	}
	// The owner retains full access.
	res := e.Do(Request{Kind: KindFile, Op: OpRead, Name: `C:\Windows\system32\sdra64.exe`, Principal: "vaccine"})
	if !res.OK {
		t.Errorf("owner read: %+v", res)
	}
}

func TestACLDenyOps(t *testing.T) {
	e := New(DefaultIdentity())
	e.Inject(Resource{
		Kind: KindFile, Name: `C:\marker`, Owner: "vaccine",
		ACL: DenyOps(OpWrite, OpDelete),
	})
	if res := e.Do(Request{Kind: KindFile, Op: OpQuery, Name: `C:\marker`, Principal: "m"}); !res.OK {
		t.Errorf("query should be allowed: %+v", res)
	}
	if res := e.Do(Request{Kind: KindFile, Op: OpWrite, Name: `C:\marker`, Principal: "m"}); res.OK {
		t.Errorf("write should be denied: %+v", res)
	}
}

func TestHooksIntercept(t *testing.T) {
	e := New(DefaultIdentity())
	calls := 0
	e.AddHook(func(req Request) *Result {
		if req.Kind == KindMutex && req.Op == OpCreate {
			calls++
			return &Result{Err: ErrAccessDenied}
		}
		return nil
	})
	res := e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "x", Principal: "m"})
	if res.OK || !res.Intercepted || res.Err != ErrAccessDenied {
		t.Fatalf("intercepted create: %+v", res)
	}
	if calls != 1 {
		t.Fatalf("hook calls = %d, want 1", calls)
	}
	// Non-matching ops pass through.
	res = e.Do(Request{Kind: KindFile, Op: OpCreate, Name: "y", Principal: "m"})
	if !res.OK || res.Intercepted {
		t.Fatalf("pass-through create: %+v", res)
	}
	e.ClearHooks()
	if e.HookCount() != 0 {
		t.Error("ClearHooks left hooks")
	}
}

func TestHandleLifecycle(t *testing.T) {
	e := New(DefaultIdentity())
	res := e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "m1", Principal: "p"})
	kind, name, ok := e.HandleName(res.Handle)
	if !ok || kind != KindMutex || name != "m1" {
		t.Fatalf("HandleName = %v %q %v", kind, name, ok)
	}
	if !e.CloseHandle(res.Handle) {
		t.Fatal("CloseHandle failed")
	}
	if e.CloseHandle(res.Handle) {
		t.Fatal("double CloseHandle succeeded")
	}
	if e.LastError() != ErrInvalidHandle {
		t.Errorf("LastError after bad close = %v", e.LastError())
	}
}

func TestCloneIsolation(t *testing.T) {
	e := New(DefaultIdentity())
	e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "orig", Principal: "p"})
	c := e.Clone()

	// Mutating the clone does not affect the original.
	c.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "clone-only", Principal: "p"})
	if e.Exists(KindMutex, "clone-only") {
		t.Error("clone mutation leaked into original")
	}
	if !c.Exists(KindMutex, "orig") {
		t.Error("clone lost original resource")
	}

	// Data is deep-copied.
	e.Do(Request{Kind: KindFile, Op: OpCreate, Name: "f", Principal: "p", Data: []byte("aaa")})
	c2 := e.Clone()
	e.Do(Request{Kind: KindFile, Op: OpWrite, Name: "f", Principal: "p", Data: []byte("bbb")})
	r := c2.Do(Request{Kind: KindFile, Op: OpRead, Name: "f", Principal: "p"})
	if string(r.Data) != "aaa" {
		t.Errorf("clone data = %q, want aaa", r.Data)
	}

	// Clones do not inherit hooks or events.
	e.AddHook(func(Request) *Result { return nil })
	c3 := e.Clone()
	if c3.HookCount() != 0 {
		t.Error("clone inherited hooks")
	}
	if len(c3.Events()) != 0 {
		t.Error("clone inherited events")
	}
}

func TestEventLog(t *testing.T) {
	e := New(DefaultIdentity())
	e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "a", Principal: "p"})
	e.Do(Request{Kind: KindMutex, Op: OpOpen, Name: "a", Principal: "p"})
	evs := e.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2", len(evs))
	}
	if evs[0].Request.Op != OpCreate || evs[1].Request.Op != OpOpen {
		t.Errorf("event ops = %v %v", evs[0].Request.Op, evs[1].Request.Op)
	}
	if evs[0].Tick >= evs[1].Tick {
		t.Error("ticks not increasing")
	}
	e.ResetEvents()
	if len(e.Events()) != 0 {
		t.Error("ResetEvents left events")
	}
	e.SetEventLogging(false)
	e.Do(Request{Kind: KindMutex, Op: OpOpen, Name: "a", Principal: "p"})
	if len(e.Events()) != 0 {
		t.Error("logging disabled but event recorded")
	}
}

func TestSystemPopulation(t *testing.T) {
	e := New(DefaultIdentity())
	for _, tc := range []struct {
		kind ResourceKind
		name string
	}{
		{KindProcess, "explorer.exe"},
		{KindProcess, "svchost.exe"},
		{KindLibrary, "kernel32.dll"},
		{KindRegistry, `HKLM\Software\Microsoft\Windows\CurrentVersion\Run`},
	} {
		if !e.Exists(tc.kind, tc.name) {
			t.Errorf("system resource %v %q missing", tc.kind, tc.name)
		}
	}
	if got := e.ResourceCount(KindProcess); got < 5 {
		t.Errorf("process count = %d, want >= 5", got)
	}
}

func TestListByOwner(t *testing.T) {
	e := New(DefaultIdentity())
	e.Inject(Resource{Kind: KindMutex, Name: "vac1"})
	e.Inject(Resource{Kind: KindMutex, Name: "vac0"})
	got := e.List(KindMutex, "vaccine")
	if len(got) != 2 || got[0] != "vac0" || got[1] != "vac1" {
		t.Errorf("List = %v", got)
	}
}

func TestInvalidRequest(t *testing.T) {
	e := New(DefaultIdentity())
	res := e.Do(Request{Kind: KindInvalid, Op: OpCreate, Name: "x"})
	if res.OK || res.Err != ErrInvalidParameter {
		t.Errorf("invalid kind: %+v", res)
	}
	res = e.Do(Request{Kind: KindFile, Op: OpInvalid, Name: "x"})
	if res.OK || res.Err != ErrInvalidParameter {
		t.Errorf("invalid op: %+v", res)
	}
}

func TestNotFoundErrorsPerKind(t *testing.T) {
	e := New(DefaultIdentity())
	for _, tc := range []struct {
		kind ResourceKind
		want ErrorCode
	}{
		{KindLibrary, ErrModuleNotFound},
		{KindService, ErrServiceNotFound},
		{KindWindow, ErrWindowNotFound},
		{KindFile, ErrFileNotFound},
		{KindMutex, ErrFileNotFound},
	} {
		res := e.Do(Request{Kind: tc.kind, Op: OpOpen, Name: "definitely-missing-xyz", Principal: "p"})
		if res.OK || res.Err != tc.want {
			t.Errorf("%v open missing: got %v, want %v", tc.kind, res.Err, tc.want)
		}
	}
}

// Property: handle allocation never reuses a live handle and every open
// handle resolves.
func TestHandleUniquenessProperty(t *testing.T) {
	f := func(names []string) bool {
		e := New(DefaultIdentity())
		seen := make(map[Handle]bool)
		for i, n := range names {
			if n == "" {
				continue
			}
			res := e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: n, Principal: "p"})
			if !res.OK {
				return false
			}
			if seen[res.Handle] {
				return false
			}
			seen[res.Handle] = true
			if _, _, ok := e.HandleName(res.Handle); !ok {
				return false
			}
			_ = i
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: Clone then arbitrary ops on the clone leaves the original's
// resource counts unchanged.
func TestClonePropertyIsolation(t *testing.T) {
	f := func(ops []uint8, names []string) bool {
		e := New(DefaultIdentity())
		before := make(map[ResourceKind]int)
		for _, k := range Kinds() {
			before[k] = e.ResourceCount(k)
		}
		c := e.Clone()
		for i, b := range ops {
			if len(names) == 0 {
				break
			}
			name := names[i%len(names)]
			if name == "" {
				name = "n"
			}
			kind := Kinds()[int(b)%len(Kinds())]
			op := Ops()[int(b/8)%len(Ops())]
			c.Do(Request{Kind: kind, Op: op, Name: name, Principal: "p"})
		}
		for _, k := range Kinds() {
			if e.ResourceCount(k) != before[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNetwork(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	n.AddDNS("cc.evil.example", "203.0.113.7")

	ip, ok := n.Resolve("mal", "cc.evil.example")
	if !ok || ip != "203.0.113.7" {
		t.Fatalf("Resolve = %q %v", ip, ok)
	}
	// Unknown hosts synthesize a stable address.
	ip1, ok1 := n.Resolve("mal", "unknown.example")
	ip2, _ := n.Resolve("mal", "unknown.example")
	if !ok1 || ip1 != ip2 {
		t.Errorf("synthetic resolve unstable: %q vs %q", ip1, ip2)
	}

	s, ok := n.Connect("mal", "203.0.113.7:443")
	if !ok || s == InvalidHandle {
		t.Fatalf("Connect = %v %v", s, ok)
	}
	if !n.Send("mal", s, 128) {
		t.Error("Send failed")
	}
	if got, ok := n.Recv("mal", s, 64); !ok || got != 64 {
		t.Errorf("Recv = %d %v", got, ok)
	}
	n.CloseSocket(s)
	if n.Send("mal", s, 1) {
		t.Error("Send on closed socket succeeded")
	}

	n.Blackhole("dead.example")
	if _, ok := n.Resolve("mal", "dead.example"); ok {
		t.Error("blackholed resolve succeeded")
	}
	n.Blackhole("1.2.3.4:80")
	if _, ok := n.Connect("mal", "1.2.3.4:80"); ok {
		t.Error("blackholed connect succeeded")
	}

	if len(n.Flows()) == 0 {
		t.Fatal("no flows recorded")
	}
	n.ResetFlows()
	if len(n.Flows()) != 0 {
		t.Error("ResetFlows left flows")
	}
}

func TestCloneCopiesNetworkConfig(t *testing.T) {
	e := New(DefaultIdentity())
	e.Net().AddDNS("a.example", "1.1.1.1")
	e.Net().Blackhole("b.example")
	c := e.Clone()
	if ip, ok := c.Net().Resolve("p", "a.example"); !ok || ip != "1.1.1.1" {
		t.Errorf("clone dns resolve = %q %v", ip, ok)
	}
	if _, ok := c.Net().Resolve("p", "b.example"); ok {
		t.Error("clone lost blackhole config")
	}
	// Both Resolve calls above record a flow (one success, one failure).
	if len(c.Net().Flows()) != 2 {
		t.Errorf("clone flows = %d, want 2", len(c.Net().Flows()))
	}
}

func TestEnvAccessors(t *testing.T) {
	e := New(DefaultIdentity())
	if e.Identity().ComputerName != "WIN-AUTOVAC01" {
		t.Errorf("identity = %+v", e.Identity())
	}
	id := e.Identity()
	id.ComputerName = "RENAMED"
	e.SetIdentity(id)
	if e.Identity().ComputerName != "RENAMED" {
		t.Error("SetIdentity lost")
	}
	e.SetLastError(ErrAccessDenied)
	if e.LastError() != ErrAccessDenied {
		t.Error("SetLastError lost")
	}
	t0 := e.Tick()
	e.Do(Request{Kind: KindMutex, Op: OpCreate, Name: "t", Principal: "p"})
	if e.Tick() <= t0 {
		t.Error("tick not advancing")
	}
	if e.OpenHandleCount() != 1 {
		t.Errorf("open handles = %d", e.OpenHandleCount())
	}
	if got := e.String(); !strings.Contains(got, "RENAMED") {
		t.Errorf("String() = %q", got)
	}
}

func TestRemoveDirect(t *testing.T) {
	e := New(DefaultIdentity())
	e.Inject(Resource{Kind: KindMutex, Name: "gone"})
	if !e.Remove(KindMutex, "GONE") {
		t.Error("Remove failed (case-insensitive)")
	}
	if e.Remove(KindMutex, "gone") {
		t.Error("double Remove succeeded")
	}
}

func TestErrorCodeStrings(t *testing.T) {
	if s := ErrAccessDenied.String(); !strings.Contains(s, "ACCESS_DENIED") {
		t.Errorf("ErrAccessDenied = %q", s)
	}
	if s := ErrorCode(424242).String(); s != "424242" {
		t.Errorf("unknown code = %q", s)
	}
}
