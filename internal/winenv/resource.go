// Package winenv implements an in-memory, Windows-like system resource
// environment: named resources (files, registry keys, mutexes, processes,
// services, GUI windows, libraries), a handle table, Win32-style error
// codes, a simple ACL model, and interception hooks.
//
// winenv is the substrate that replaces a real Windows installation in this
// reproduction of AUTOVAC (ICDCS 2013). Malware and benign programs observe
// the system exclusively through resource operations, so an emulated
// resource namespace exposes the same observable surface the paper's
// dynamic analysis instruments: operation results, handles, and
// GetLastError values.
package winenv

import (
	"fmt"
	"strings"
)

// ResourceKind identifies the namespace a resource lives in. The first
// seven kinds mirror the resource types evaluated in the paper (§VI-B):
// file, registry, mutex, process, service, window, and library. The
// eighth, domain, extends the model to network identifiers (C2 hosts,
// DGA names, killswitch domains) resolved through the Network
// simulation rather than the local resource namespaces.
type ResourceKind int

// Resource kinds, in the order the paper's Figure 3 reports them.
const (
	// KindInvalid is the zero value; it is never a valid resource kind.
	KindInvalid ResourceKind = iota
	// KindFile is a file-system path (also used for kernel driver .sys files
	// and named pipes, which share the file namespace in this model).
	KindFile
	// KindRegistry is a registry key or value path.
	KindRegistry
	// KindMutex is a named mutual-exclusion object.
	KindMutex
	// KindProcess is a running process, identified by image name.
	KindProcess
	// KindService is an entry in the service control manager database.
	KindService
	// KindWindow is a top-level GUI window, identified by class/title.
	KindWindow
	// KindLibrary is a loadable module (DLL).
	KindLibrary
	// KindDomain is a network identifier: a DNS hostname, host:port
	// target, or URL. Domain "resources" live in the Network
	// simulation's DNS world (registered names, sinkholes), not in the
	// in-memory namespaces; deploy translates domain vaccines into
	// sinkhole registrations and blackholes.
	KindDomain
)

// Kinds lists every valid resource kind in display order.
func Kinds() []ResourceKind {
	return []ResourceKind{
		KindFile, KindRegistry, KindMutex, KindProcess,
		KindService, KindWindow, KindLibrary, KindDomain,
	}
}

// String returns the lower-case name of the kind.
func (k ResourceKind) String() string {
	switch k {
	case KindFile:
		return "file"
	case KindRegistry:
		return "registry"
	case KindMutex:
		return "mutex"
	case KindProcess:
		return "process"
	case KindService:
		return "service"
	case KindWindow:
		return "window"
	case KindLibrary:
		return "library"
	case KindDomain:
		return "domain"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind converts a kind name produced by String back to a ResourceKind.
func ParseKind(s string) (ResourceKind, error) {
	for _, k := range Kinds() {
		if k.String() == s {
			return k, nil
		}
	}
	return KindInvalid, fmt.Errorf("winenv: unknown resource kind %q", s)
}

// Valid reports whether k names one of the eight resource kinds.
func (k ResourceKind) Valid() bool {
	return k >= KindFile && k <= KindDomain
}

// Op is a basic operation on a resource. The paper measures create,
// read/open, write, and delete per resource kind (Figure 3); Query is the
// existence check that many infection markers rely on.
type Op int

// Operations on resources.
const (
	// OpInvalid is the zero value; it is never a valid operation.
	OpInvalid Op = iota
	// OpCreate creates a resource (CreateFile with CREATE_NEW, CreateMutex,
	// RegCreateKey, CreateService, CreateWindow, CreateProcess, ...).
	OpCreate
	// OpOpen opens an existing resource (OpenMutex, RegOpenKey, LoadLibrary,
	// FindWindow, OpenProcess, OpenService, CreateFile with OPEN_EXISTING).
	OpOpen
	// OpRead reads resource data (ReadFile, RegQueryValueEx).
	OpRead
	// OpWrite writes resource data (WriteFile, RegSetValueEx).
	OpWrite
	// OpDelete removes a resource (DeleteFile, RegDeleteKey, DeleteService).
	OpDelete
	// OpQuery tests for existence without opening (GetFileAttributes).
	OpQuery
)

// Ops lists every valid operation in display order.
func Ops() []Op {
	return []Op{OpCreate, OpOpen, OpRead, OpWrite, OpDelete, OpQuery}
}

// String returns the lower-case name of the operation.
func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpOpen:
		return "open"
	case OpRead:
		return "read"
	case OpWrite:
		return "write"
	case OpDelete:
		return "delete"
	case OpQuery:
		return "query"
	default:
		return fmt.Sprintf("op(%d)", int(o))
	}
}

// Valid reports whether o names one of the six operations.
func (o Op) Valid() bool { return o >= OpCreate && o <= OpQuery }

// ErrorCode is a Win32-style error code as returned by GetLastError.
type ErrorCode uint32

// Win32 error codes used by the environment. Values match the real
// Windows constants so that traces read naturally.
const (
	ErrSuccess          ErrorCode = 0
	ErrFileNotFound     ErrorCode = 2   // ERROR_FILE_NOT_FOUND
	ErrAccessDenied     ErrorCode = 5   // ERROR_ACCESS_DENIED
	ErrInvalidHandle    ErrorCode = 6   // ERROR_INVALID_HANDLE
	ErrWriteFault       ErrorCode = 29  // ERROR_WRITE_FAULT
	ErrReadFault        ErrorCode = 30  // ERROR_READ_FAULT
	ErrNotSupported     ErrorCode = 50  // ERROR_NOT_SUPPORTED
	ErrInvalidParameter ErrorCode = 87  // ERROR_INVALID_PARAMETER
	ErrAlreadyExists    ErrorCode = 183 // ERROR_ALREADY_EXISTS
	ErrModuleNotFound   ErrorCode = 126 // ERROR_MOD_NOT_FOUND
	ErrProcNotFound     ErrorCode = 127 // ERROR_PROC_NOT_FOUND
	ErrServiceExists    ErrorCode = 1073
	ErrServiceNotFound  ErrorCode = 1060
	ErrWindowNotFound   ErrorCode = 1400  // ERROR_INVALID_WINDOW_HANDLE
	ErrHostNotFound     ErrorCode = 11001 // WSAHOST_NOT_FOUND
	ErrConnRefused      ErrorCode = 10061 // WSAECONNREFUSED
)

// String renders the code with its symbolic name where known.
func (e ErrorCode) String() string {
	names := map[ErrorCode]string{
		ErrSuccess:          "SUCCESS",
		ErrFileNotFound:     "FILE_NOT_FOUND",
		ErrAccessDenied:     "ACCESS_DENIED",
		ErrInvalidHandle:    "INVALID_HANDLE",
		ErrWriteFault:       "WRITE_FAULT",
		ErrReadFault:        "READ_FAULT",
		ErrNotSupported:     "NOT_SUPPORTED",
		ErrInvalidParameter: "INVALID_PARAMETER",
		ErrAlreadyExists:    "ALREADY_EXISTS",
		ErrModuleNotFound:   "MOD_NOT_FOUND",
		ErrProcNotFound:     "PROC_NOT_FOUND",
		ErrServiceExists:    "SERVICE_EXISTS",
		ErrServiceNotFound:  "SERVICE_DOES_NOT_EXIST",
		ErrWindowNotFound:   "INVALID_WINDOW_HANDLE",
		ErrHostNotFound:     "WSAHOST_NOT_FOUND",
		ErrConnRefused:      "WSAECONNREFUSED",
	}
	if n, ok := names[e]; ok {
		return fmt.Sprintf("%d (%s)", uint32(e), n)
	}
	return fmt.Sprintf("%d", uint32(e))
}

// Handle is an opaque reference to an open resource, as returned by
// open/create operations. Handle 0 is the invalid handle (NULL).
type Handle uint32

// InvalidHandle is the NULL handle returned by failed open operations.
const InvalidHandle Handle = 0

// Resource is a named object in one of the environment's namespaces.
type Resource struct {
	Kind ResourceKind
	// Name is the identifier in its original spelling. Lookups are
	// case-insensitive, matching Windows namespace semantics.
	Name string
	// Data holds file contents or a registry value.
	Data []byte
	// Owner records who created the resource: a program name, "system"
	// for pre-existing resources, or "vaccine" for injected vaccines.
	Owner string
	// ACL restricts operations on the resource.
	ACL ACL
	// CreatedAt is the logical tick at which the resource was created.
	// Registry sub-values are modelled as their own resources named
	// "<key>\<value>", so keys carry no value map.
	CreatedAt uint64
}

// clone returns a deep copy of the resource.
func (r *Resource) clone() *Resource {
	c := *r
	c.Data = append([]byte(nil), r.Data...)
	return &c
}

// canonicalName normalizes a resource identifier for namespace lookup.
// Windows object names are case-insensitive; path separators are unified.
func canonicalName(name string) string {
	return strings.ToLower(strings.ReplaceAll(name, "/", `\`))
}
