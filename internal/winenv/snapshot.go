package winenv

// Snapshot captures an environment state for cheap repeated rewind.
// Unlike Clone — which deep-copies every namespace up front — a
// snapshot records nothing at capture time and journals undo entries
// only for state the run actually touches (first-touch copy-on-write),
// so resetting after a typical emulated execution undoes a handful of
// resources instead of rebuilding ~50 maps. This is the arena primitive
// behind Phase-II's per-candidate re-executions (§IV-B) and per-host
// slice replays (§IV-C).
//
// Snapshots nest: Reset rewinds to the most recent (innermost) open
// snapshot only, and Close releases it. Journaling covers the resource
// namespaces, the handle table, sockets, flows, events, hooks added
// after capture, the network's DNS/blackhole/registration tables and
// resolve hooks, the attached responder's dialogue state (via
// Responder.Mark/Rewind), and the scalar registers (identity,
// last-error, tick, next handle). It does NOT cover test-configuration
// state mutated in place — hook truncation after ClearHooks, responder
// attachment itself — which experiment code changes only between runs.
type Snapshot struct {
	env *Env

	identity  HostIdentity
	next      Handle
	lastErr   ErrorCode
	tick      uint64
	events    int
	hooks     int
	logEvents bool

	hadNet        bool
	netNextSocket Handle
	netFlows      int
	netHooks      int
	respMark      any
	hadResponder  bool

	// resources maps first-touched namespace keys to their prior value
	// (nil = absent at capture). handles, sockets, and netEntries
	// journal likewise.
	resources  map[resKey]*Resource
	handles    map[Handle]*openHandle
	sockets    map[Handle]sockPrior
	netEntries map[netEntryKey]netEntryPrior
}

// resKey addresses one resource in its canonical spelling.
type resKey struct {
	kind ResourceKind
	key  string
}

// sockPrior is a socket's prior binding.
type sockPrior struct {
	target  string
	present bool
}

// netTable identifies one of the network's journaled tables.
type netTable int

const (
	netDNS netTable = iota
	netBlackhole
	netRegistered
)

// netEntryKey addresses one entry in one network table.
type netEntryKey struct {
	table netTable
	key   string
}

// netEntryPrior is a network table entry's prior state (value is the
// DNS address; blackhole/registered entries only use present).
type netEntryPrior struct {
	value   string
	present bool
}

// Snapshot opens a snapshot of the current state. Pair with Reset (as
// many times as needed) and a final Close.
func (e *Env) Snapshot() *Snapshot {
	s := &Snapshot{
		env:       e,
		identity:  e.identity,
		next:      e.next,
		lastErr:   e.lastErr,
		tick:      e.tick,
		events:    len(e.events),
		hooks:     len(e.hooks),
		logEvents: e.logEvents,
		resources: make(map[resKey]*Resource),
		handles:   make(map[Handle]*openHandle),
	}
	if e.net != nil {
		s.hadNet = true
		s.netNextSocket = e.net.nextSocket
		s.netFlows = len(e.net.flows)
		s.netHooks = len(e.net.resolveHooks)
		s.sockets = make(map[Handle]sockPrior)
		s.netEntries = make(map[netEntryKey]netEntryPrior)
		if r := e.net.responder; r != nil {
			s.hadResponder = true
			s.respMark = r.Mark()
		}
	}
	e.snaps = append(e.snaps, s)
	return s
}

// Reset rewinds the environment to the snapshot, which must be the
// innermost open one. The snapshot stays open: the next run's touches
// journal afresh. Event and flow slices handed out before the reset
// stay intact (truncation caps capacity, so later appends reallocate).
func (e *Env) Reset(s *Snapshot) {
	if s == nil || s.env != e || len(e.snaps) == 0 || e.snaps[len(e.snaps)-1] != s {
		panic("winenv: Reset of a snapshot that is not the environment's innermost")
	}
	for k, prior := range s.resources {
		if prior == nil {
			delete(e.resources[k.kind], k.key)
		} else {
			// Reinstall a copy so the journal entry stays pristine even
			// if the restored resource is later mutated in place.
			e.resources[k.kind][k.key] = prior.clone()
		}
	}
	clear(s.resources)
	for h, prior := range s.handles {
		if prior == nil {
			delete(e.handles, h)
		} else {
			cp := *prior
			e.handles[h] = &cp
		}
	}
	clear(s.handles)
	e.identity = s.identity
	e.next = s.next
	e.lastErr = s.lastErr
	e.tick = s.tick
	if len(e.events) > s.events {
		e.events = e.events[:s.events:s.events]
	}
	if len(e.hooks) > s.hooks {
		e.hooks = e.hooks[:s.hooks]
	}
	e.logEvents = s.logEvents
	if !s.hadNet {
		// The network sprang into existence during the run; forget it.
		e.net = nil
		return
	}
	if n := e.net; n != nil {
		for h, prior := range s.sockets {
			if prior.present {
				n.sockets[h] = prior.target
			} else {
				delete(n.sockets, h)
			}
		}
		clear(s.sockets)
		for k, prior := range s.netEntries {
			switch k.table {
			case netDNS:
				if prior.present {
					n.dns[k.key] = prior.value
				} else {
					delete(n.dns, k.key)
				}
			case netBlackhole:
				if prior.present {
					n.blackholed[k.key] = true
				} else {
					delete(n.blackholed, k.key)
				}
			case netRegistered:
				if prior.present {
					n.registered[k.key] = true
				} else {
					delete(n.registered, k.key)
				}
			}
		}
		clear(s.netEntries)
		n.nextSocket = s.netNextSocket
		if len(n.flows) > s.netFlows {
			n.flows = n.flows[:s.netFlows:s.netFlows]
		}
		if len(n.resolveHooks) > s.netHooks {
			n.resolveHooks = n.resolveHooks[:s.netHooks]
		}
		if s.hadResponder && n.responder != nil {
			n.responder.Rewind(s.respMark)
		}
	}
}

// Close releases the snapshot without rewinding: the environment keeps
// its current state. Closing out of order (not innermost-first) panics;
// closing twice is a no-op.
func (s *Snapshot) Close() {
	e := s.env
	if e == nil {
		return
	}
	s.env = nil
	if len(e.snaps) == 0 || e.snaps[len(e.snaps)-1] != s {
		for _, open := range e.snaps {
			if open == s {
				panic("winenv: Snapshot.Close out of order (inner snapshots still open)")
			}
		}
		return // already closed
	}
	e.snaps = e.snaps[:len(e.snaps)-1]
	if len(e.snaps) == 0 && e.net != nil {
		// The flow cap is deferred while snapshots are open (they hold
		// rewind indexes into the log); reclaim the growth now that the
		// outermost snapshot is gone.
		e.net.trimFlows()
	}
}

// noteResource journals a resource's prior value into every open
// snapshot that has not seen this key yet. Called before any mutation
// of e.resources[kind][key]. If the innermost snapshot holds a note for
// the key, every outer one does too (notes are added outside-in), so
// the walk stops at the first hit.
func (e *Env) noteResource(kind ResourceKind, key string) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		k := resKey{kind, key}
		if _, seen := s.resources[k]; seen {
			break
		}
		var prior *Resource
		if r := e.resources[kind][key]; r != nil {
			prior = r.clone()
		}
		s.resources[k] = prior
	}
}

// noteHandle journals a handle's prior entry; same discipline as
// noteResource.
func (e *Env) noteHandle(h Handle) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		if _, seen := s.handles[h]; seen {
			break
		}
		var prior *openHandle
		if oh := e.handles[h]; oh != nil {
			cp := *oh
			prior = &cp
		}
		s.handles[h] = prior
	}
}

// noteSocket journals a socket's prior binding; snapshots taken before
// the network existed skip it (Reset discards the whole network then).
func (e *Env) noteSocket(h Handle) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		if !s.hadNet {
			continue
		}
		if _, seen := s.sockets[h]; seen {
			break
		}
		target, present := e.net.sockets[h]
		s.sockets[h] = sockPrior{target: target, present: present}
	}
}

// noteNetEntry journals a DNS/blackhole/registration entry's prior
// state before mutation; same discipline as noteSocket.
func (e *Env) noteNetEntry(table netTable, key string) {
	for i := len(e.snaps) - 1; i >= 0; i-- {
		s := e.snaps[i]
		if !s.hadNet {
			continue
		}
		k := netEntryKey{table, key}
		if _, seen := s.netEntries[k]; seen {
			break
		}
		var prior netEntryPrior
		switch table {
		case netDNS:
			prior.value, prior.present = e.net.dns[key]
		case netBlackhole:
			prior.present = e.net.blackholed[key]
		case netRegistered:
			prior.present = e.net.registered[key]
		}
		s.netEntries[k] = prior
	}
}
