package winenv

import (
	"fmt"
	"sort"
)

// HostIdentity carries the per-machine invariants that
// algorithm-deterministic resource identifiers are derived from (§IV-C):
// computer name, user name, volume serial number, and IP address. The
// paper's Conficker case study generates a per-host mutex name from such
// seeds.
type HostIdentity struct {
	ComputerName string
	UserName     string
	VolumeSerial uint32
	IPAddress    string
}

// DefaultIdentity returns a plausible workstation identity.
func DefaultIdentity() HostIdentity {
	return HostIdentity{
		ComputerName: "WIN-AUTOVAC01",
		UserName:     "alice",
		VolumeSerial: 0x5A17C0DE,
		IPAddress:    "192.168.1.17",
	}
}

// Request describes one attempted resource operation, as seen by
// interception hooks and the event log.
type Request struct {
	Kind ResourceKind
	Op   Op
	// Name is the resource identifier in its original spelling.
	Name string
	// Principal is the program performing the operation.
	Principal string
	// Data carries the payload for write/create operations (may be nil).
	Data []byte
}

// Result is the outcome of a resource operation.
type Result struct {
	// OK reports whether the operation succeeded.
	OK bool
	// Err is the GetLastError value when OK is false (and
	// ErrAlreadyExists on a successful create of an existing mutex,
	// matching CreateMutex semantics).
	Err ErrorCode
	// Handle is the opened handle for create/open operations.
	Handle Handle
	// Data is the payload for read operations.
	Data []byte
	// Intercepted reports that a hook (vaccine daemon) forced this result.
	Intercepted bool
}

// Hook intercepts resource operations before they reach the namespace.
// Returning a non-nil Result short-circuits the operation; returning nil
// lets it proceed. The vaccine daemon (§V) is implemented as a Hook.
type Hook func(Request) *Result

// Event is a logged resource operation with its outcome.
type Event struct {
	Tick    uint64
	Request Request
	Result  Result
}

// openHandle tracks one open handle in the handle table.
type openHandle struct {
	kind      ResourceKind
	canonical string
	name      string
	principal string
}

// Env is a simulated Windows-like environment: eight resource namespaces,
// a handle table, a last-error register, interception hooks, and an event
// log. The zero value is not usable; construct with New.
//
// Env is not safe for concurrent use; each emulated execution owns its
// Env (use Clone to fork).
type Env struct {
	identity  HostIdentity
	resources map[ResourceKind]map[string]*Resource
	handles   map[Handle]*openHandle
	next      Handle
	lastErr   ErrorCode
	hooks     []Hook
	events    []Event
	tick      uint64
	// logEvents controls event recording (on by default).
	logEvents bool
	net       *Network
	// snaps is the stack of open snapshots; mutation points journal
	// prior values into it (see snapshot.go). Empty in the common case.
	snaps []*Snapshot
}

// New creates an environment with the given host identity and a small
// population of system resources (system DLLs, core processes, registry
// skeleton) that benign and malicious programs expect to find.
func New(id HostIdentity) *Env {
	e := &Env{
		identity:  id,
		resources: make(map[ResourceKind]map[string]*Resource),
		handles:   make(map[Handle]*openHandle),
		next:      4, // handles are multiples of 4, like Windows
		logEvents: true,
	}
	for _, k := range Kinds() {
		e.resources[k] = make(map[string]*Resource)
	}
	e.populateSystem()
	return e
}

// populateSystem seeds the namespaces with baseline system resources.
func (e *Env) populateSystem() {
	sys := func(kind ResourceKind, names ...string) {
		for _, n := range names {
			e.resources[kind][canonicalName(n)] = &Resource{
				Kind: kind, Name: n, Owner: "system",
			}
		}
	}
	sys(KindProcess, "explorer.exe", "svchost.exe", "winlogon.exe",
		"services.exe", "lsass.exe", "csrss.exe")
	sys(KindLibrary, "kernel32.dll", "ntdll.dll", "user32.dll",
		"advapi32.dll", "ws2_32.dll", "wininet.dll", "uxtheme.dll",
		"msvcrt.dll", "shell32.dll", "ole32.dll")
	sys(KindFile, `C:\Windows\system32\kernel32.dll`,
		`C:\Windows\system32\ntdll.dll`,
		`C:\Windows\system.ini`,
		`C:\Windows\win.ini`)
	sys(KindRegistry,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\Software\Microsoft\Windows\CurrentVersion\RunOnce`,
		`HKCU\Software\Microsoft\Windows\CurrentVersion\Run`,
		`HKLM\System\CurrentControlSet\Services`,
		`HKLM\Software\Microsoft\Windows NT\CurrentVersion\Winlogon`)
	sys(KindService, "EventLog", "Dhcp", "Dnscache", "LanmanServer")
}

// Identity returns the host identity.
func (e *Env) Identity() HostIdentity { return e.identity }

// SetIdentity replaces the host identity (used when modelling a different
// end host or a changed computer name that forces vaccine regeneration).
func (e *Env) SetIdentity(id HostIdentity) { e.identity = id }

// LastError returns the current GetLastError value.
func (e *Env) LastError() ErrorCode { return e.lastErr }

// SetLastError sets the GetLastError value.
func (e *Env) SetLastError(c ErrorCode) { e.lastErr = c }

// Tick returns the logical clock, which advances on every operation.
func (e *Env) Tick() uint64 { return e.tick }

// AddHook registers an interception hook. Hooks run in registration order;
// the first hook returning a non-nil Result decides the operation.
func (e *Env) AddHook(h Hook) { e.hooks = append(e.hooks, h) }

// ClearHooks removes all interception hooks.
func (e *Env) ClearHooks() { e.hooks = nil }

// HookCount returns the number of registered hooks.
func (e *Env) HookCount() int { return len(e.hooks) }

// SetEventLogging enables or disables the event log.
func (e *Env) SetEventLogging(on bool) { e.logEvents = on }

// Events returns the recorded operation log. The returned slice is owned
// by the environment; callers must not modify it.
func (e *Env) Events() []Event { return e.events }

// ResetEvents clears the event log.
func (e *Env) ResetEvents() { e.events = nil }

// Do performs a resource operation: it consults hooks, applies namespace
// semantics, updates GetLastError, and logs the event.
func (e *Env) Do(req Request) Result {
	e.tick++
	res := e.dispatch(req)
	// Failures always set last-error. A success with a non-success code
	// also sets it (CreateMutex on an existing object succeeds but reports
	// ERROR_ALREADY_EXISTS); a plain success leaves last-error untouched.
	if !res.OK || res.Err != ErrSuccess {
		e.lastErr = res.Err
	}
	if e.logEvents {
		e.events = append(e.events, Event{Tick: e.tick, Request: req, Result: res})
	}
	return res
}

// dispatch applies hooks then namespace semantics.
func (e *Env) dispatch(req Request) Result {
	for _, h := range e.hooks {
		if r := h(req); r != nil {
			r.Intercepted = true
			return *r
		}
	}
	if !req.Kind.Valid() || !req.Op.Valid() {
		return Result{Err: ErrInvalidParameter}
	}
	ns := e.resources[req.Kind]
	key := canonicalName(req.Name)
	existing := ns[key]

	if existing != nil && existing.ACL.denies(req.Op, req.Principal, existing.Owner) {
		return Result{Err: ErrAccessDenied}
	}

	switch req.Op {
	case OpCreate:
		if existing != nil {
			switch req.Kind {
			case KindMutex:
				// CreateMutex opens the existing object and reports
				// ERROR_ALREADY_EXISTS while still succeeding.
				return Result{OK: true, Err: ErrAlreadyExists, Handle: e.open(req, key)}
			case KindService:
				return Result{Err: ErrServiceExists}
			default:
				return Result{Err: ErrAlreadyExists}
			}
		}
		if len(e.snaps) > 0 {
			e.noteResource(req.Kind, key)
		}
		ns[key] = &Resource{
			Kind:      req.Kind,
			Name:      req.Name,
			Data:      append([]byte(nil), req.Data...),
			Owner:     req.Principal,
			CreatedAt: e.tick,
		}
		return Result{OK: true, Handle: e.open(req, key)}

	case OpOpen:
		if existing == nil {
			return Result{Err: notFoundError(req.Kind)}
		}
		return Result{OK: true, Handle: e.open(req, key)}

	case OpQuery:
		if existing == nil {
			return Result{Err: notFoundError(req.Kind)}
		}
		return Result{OK: true}

	case OpRead:
		if existing == nil {
			return Result{Err: notFoundError(req.Kind)}
		}
		return Result{OK: true, Data: append([]byte(nil), existing.Data...)}

	case OpWrite:
		if existing == nil {
			return Result{Err: notFoundError(req.Kind)}
		}
		if len(e.snaps) > 0 {
			e.noteResource(req.Kind, key)
		}
		existing.Data = append(existing.Data[:0], req.Data...)
		return Result{OK: true}

	case OpDelete:
		if existing == nil {
			return Result{Err: notFoundError(req.Kind)}
		}
		if len(e.snaps) > 0 {
			e.noteResource(req.Kind, key)
		}
		delete(ns, key)
		return Result{OK: true}
	}
	return Result{Err: ErrInvalidParameter}
}

// open allocates a handle for a successful create/open.
func (e *Env) open(req Request, canonical string) Handle {
	h := e.next
	e.next += 4
	if len(e.snaps) > 0 {
		e.noteHandle(h)
	}
	e.handles[h] = &openHandle{
		kind:      req.Kind,
		canonical: canonical,
		name:      req.Name,
		principal: req.Principal,
	}
	return h
}

// notFoundError maps a resource kind to its idiomatic not-found code.
func notFoundError(k ResourceKind) ErrorCode {
	switch k {
	case KindLibrary:
		return ErrModuleNotFound
	case KindService:
		return ErrServiceNotFound
	case KindWindow:
		return ErrWindowNotFound
	default:
		return ErrFileNotFound
	}
}

// CloseHandle releases a handle. It returns false (and sets
// ERROR_INVALID_HANDLE) if the handle is not open.
func (e *Env) CloseHandle(h Handle) bool {
	if _, ok := e.handles[h]; !ok {
		e.lastErr = ErrInvalidHandle
		return false
	}
	if len(e.snaps) > 0 {
		e.noteHandle(h)
	}
	delete(e.handles, h)
	return true
}

// HandleName resolves an open handle to its resource kind and name.
func (e *Env) HandleName(h Handle) (ResourceKind, string, bool) {
	oh, ok := e.handles[h]
	if !ok {
		return KindInvalid, "", false
	}
	return oh.kind, oh.name, true
}

// OpenHandleCount returns the number of live handles.
func (e *Env) OpenHandleCount() int { return len(e.handles) }

// Lookup returns the resource with the given kind and name, or nil.
func (e *Env) Lookup(kind ResourceKind, name string) *Resource {
	return e.resources[kind][canonicalName(name)]
}

// Exists reports whether a resource is present.
func (e *Env) Exists(kind ResourceKind, name string) bool {
	return e.Lookup(kind, name) != nil
}

// Inject places a resource directly into the environment, bypassing hooks
// and the event log. It is the primitive behind vaccine direct injection.
// Any existing resource with the same name is replaced.
func (e *Env) Inject(r Resource) {
	if r.Owner == "" {
		r.Owner = "vaccine"
	}
	r.CreatedAt = e.tick
	key := canonicalName(r.Name)
	if len(e.snaps) > 0 {
		e.noteResource(r.Kind, key)
	}
	e.resources[r.Kind][key] = r.clone()
}

// Remove deletes a resource directly, bypassing hooks and the event log.
// It reports whether the resource existed.
func (e *Env) Remove(kind ResourceKind, name string) bool {
	key := canonicalName(name)
	if _, ok := e.resources[kind][key]; !ok {
		return false
	}
	if len(e.snaps) > 0 {
		e.noteResource(kind, key)
	}
	delete(e.resources[kind], key)
	return true
}

// List returns the names of all resources of a kind owned by the given
// owner ("" matches every owner), sorted for determinism.
func (e *Env) List(kind ResourceKind, owner string) []string {
	var names []string
	for _, r := range e.resources[kind] {
		if owner == "" || r.Owner == owner {
			names = append(names, r.Name)
		}
	}
	sort.Strings(names)
	return names
}

// ResourceCount returns the total number of resources of a kind.
func (e *Env) ResourceCount(kind ResourceKind) int {
	return len(e.resources[kind])
}

// Clone returns a deep copy of the environment: resources, handle table,
// identity, and last error. Hooks and the event log are NOT copied; a
// clone starts with a clean log and no interception, which is what
// repeated-analysis runs need.
func (e *Env) Clone() *Env {
	c := &Env{
		identity:  e.identity,
		resources: make(map[ResourceKind]map[string]*Resource, len(e.resources)),
		handles:   make(map[Handle]*openHandle, len(e.handles)),
		next:      e.next,
		lastErr:   e.lastErr,
		tick:      e.tick,
		logEvents: e.logEvents,
	}
	for k, ns := range e.resources {
		m := make(map[string]*Resource, len(ns))
		for name, r := range ns {
			m[name] = r.clone()
		}
		c.resources[k] = m
	}
	for h, oh := range e.handles {
		cp := *oh
		c.handles[h] = &cp
	}
	if e.net != nil {
		// Copy network configuration (DNS, blackholes, registrations) but
		// not flow logs, resolve hooks, or the responder: a responder is
		// single-env dialogue state, so each clone attaches its own (the
		// fleet worm simulation gives every host a fresh scenario
		// responder for race-free concurrent infection attempts).
		cn := c.Net()
		for k, v := range e.net.dns {
			cn.dns[k] = v
		}
		for k, v := range e.net.blackholed {
			cn.blackholed[k] = v
		}
		for k, v := range e.net.registered {
			cn.registered[k] = v
		}
	}
	return c
}

// String summarizes the environment population.
func (e *Env) String() string {
	total := 0
	for _, ns := range e.resources {
		total += len(ns)
	}
	return fmt.Sprintf("winenv(%s: %d resources, %d handles)",
		e.identity.ComputerName, total, len(e.handles))
}
