package winenv

import (
	"testing"
)

func snapEnv() *Env {
	return New(DefaultIdentity())
}

func doReq(t *testing.T, e *Env, op Op, kind ResourceKind, name string, data ...byte) Result {
	t.Helper()
	return e.Do(Request{Op: op, Kind: kind, Name: name, Principal: "test", Data: data})
}

func TestSnapshotUndoesCreateWriteDelete(t *testing.T) {
	e := snapEnv()
	e.Inject(Resource{Kind: KindFile, Name: `C:\pre\existing.txt`, Data: []byte("old")})
	preCount := e.ResourceCount(KindFile)

	snap := e.Snapshot()
	defer snap.Close()

	// Create a new resource, overwrite the pre-existing one, delete it.
	if res := doReq(t, e, OpCreate, KindFile, `C:\run\dropped.txt`); !res.OK {
		t.Fatalf("create failed: %v", res.Err)
	}
	if res := doReq(t, e, OpWrite, KindFile, `C:\pre\existing.txt`, []byte("clobbered")...); !res.OK {
		t.Fatalf("write failed: %v", res.Err)
	}
	if res := doReq(t, e, OpDelete, KindFile, `C:\pre\existing.txt`); !res.OK {
		t.Fatalf("delete failed: %v", res.Err)
	}

	e.Reset(snap)

	if e.Exists(KindFile, `C:\run\dropped.txt`) {
		t.Error("created resource survived reset")
	}
	r := e.Lookup(KindFile, `C:\pre\existing.txt`)
	if r == nil {
		t.Fatal("deleted resource not restored")
	}
	if string(r.Data) != "old" {
		t.Errorf("restored data = %q, want %q", r.Data, "old")
	}
	if got := e.ResourceCount(KindFile); got != preCount {
		t.Errorf("file count = %d, want %d", got, preCount)
	}
}

func TestSnapshotUndoesHandlesAndScalars(t *testing.T) {
	e := snapEnv()
	tick0, next0 := e.Tick(), e.OpenHandleCount()
	e.SetLastError(ErrSuccess)

	snap := e.Snapshot()
	defer snap.Close()

	res := doReq(t, e, OpCreate, KindMutex, "!Marker")
	if !res.OK || res.Handle == 0 {
		t.Fatalf("create: %+v", res)
	}
	// A failing open sets last-error.
	doReq(t, e, OpOpen, KindMutex, "!Absent")
	if e.LastError() == ErrSuccess {
		t.Fatal("last-error not set by failed open")
	}

	e.Reset(snap)

	if e.OpenHandleCount() != next0 {
		t.Errorf("open handles = %d, want %d", e.OpenHandleCount(), next0)
	}
	if _, _, ok := e.HandleName(res.Handle); ok {
		t.Error("run handle still resolves after reset")
	}
	if e.Tick() != tick0 {
		t.Errorf("tick = %d, want %d", e.Tick(), tick0)
	}
	if e.LastError() != ErrSuccess {
		t.Errorf("last-error = %v, want success", e.LastError())
	}
	// Handle numbering restarts identically: the next run allocates the
	// same handle values (replay determinism).
	res2 := doReq(t, e, OpCreate, KindMutex, "!Marker")
	if res2.Handle != res.Handle {
		t.Errorf("handle after reset = %#x, want %#x", res2.Handle, res.Handle)
	}
}

func TestSnapshotUndoesInjectAndRemove(t *testing.T) {
	e := snapEnv()
	e.Inject(Resource{Kind: KindMutex, Name: "!Keep"})

	snap := e.Snapshot()
	defer snap.Close()

	e.Inject(Resource{Kind: KindMutex, Name: "!Vaccine"})
	e.Remove(KindMutex, "!Keep")
	e.Reset(snap)

	if e.Exists(KindMutex, "!Vaccine") {
		t.Error("injected resource survived reset")
	}
	if !e.Exists(KindMutex, "!Keep") {
		t.Error("removed resource not restored")
	}
}

func TestSnapshotEventsTruncatedCapped(t *testing.T) {
	e := snapEnv()
	e.SetEventLogging(true)
	doReq(t, e, OpCreate, KindMutex, "!Before")
	base := len(e.Events())

	snap := e.Snapshot()
	defer snap.Close()

	doReq(t, e, OpCreate, KindMutex, "!During")
	held := e.Events() // a reader kept the slice across the reset
	heldLen := len(held)

	e.Reset(snap)
	if len(e.Events()) != base {
		t.Errorf("events = %d, want %d", len(e.Events()), base)
	}
	// New appends after the reset must not clobber the held slice.
	doReq(t, e, OpCreate, KindMutex, "!After")
	if len(held) != heldLen || held[heldLen-1].Request.Name != "!During" {
		t.Error("reset+append clobbered a previously returned event slice")
	}
}

func TestSnapshotUndoesNetwork(t *testing.T) {
	e := snapEnv()
	n := e.Net() // network exists before the snapshot
	flows0 := len(n.Flows())

	snap := e.Snapshot()
	defer snap.Close()

	s, ok := n.Connect("mal", "10.0.0.1:80")
	if !ok {
		t.Fatal("connect failed")
	}
	n.Send("mal", s, 128)
	e.Reset(snap)

	if len(n.Flows()) != flows0 {
		t.Errorf("flows = %d, want %d", len(n.Flows()), flows0)
	}
	if n.Send("mal", s, 1) {
		t.Error("run socket still bound after reset")
	}
	// Socket numbering restarts identically.
	s2, _ := n.Connect("mal", "10.0.0.1:80")
	if s2 != s {
		t.Errorf("socket after reset = %#x, want %#x", s2, s)
	}
}

func TestSnapshotForgetsNetworkBornDuringRun(t *testing.T) {
	e := snapEnv()
	snap := e.Snapshot()
	defer snap.Close()
	e.Net().Connect("mal", "10.0.0.1:80") // first Net() call creates it
	e.Reset(snap)
	if e.net != nil {
		t.Error("network born during the run survived reset")
	}
}

func TestSnapshotHooksAddedDuringRunRemoved(t *testing.T) {
	e := snapEnv()
	e.AddHook(func(Request) *Result { return nil })
	snap := e.Snapshot()
	defer snap.Close()
	e.AddHook(func(Request) *Result { return nil })
	e.Reset(snap)
	if e.HookCount() != 1 {
		t.Errorf("hooks = %d, want 1", e.HookCount())
	}
}

func TestSnapshotNested(t *testing.T) {
	e := snapEnv()
	outer := e.Snapshot()
	e.Inject(Resource{Kind: KindMutex, Name: "!OuterRun"})

	inner := e.Snapshot()
	e.Inject(Resource{Kind: KindMutex, Name: "!InnerRun"})
	e.Reset(inner)
	if e.Exists(KindMutex, "!InnerRun") {
		t.Error("inner run state survived inner reset")
	}
	if !e.Exists(KindMutex, "!OuterRun") {
		t.Error("inner reset rewound past its own snapshot")
	}
	inner.Close()

	// The outer snapshot journalled !OuterRun too, even though the inner
	// snapshot was opened (and its journal discarded) in between.
	e.Reset(outer)
	if e.Exists(KindMutex, "!OuterRun") {
		t.Error("outer reset missed state journalled before the inner snapshot")
	}
	outer.Close()
}

func TestSnapshotResetRepeatable(t *testing.T) {
	e := snapEnv()
	snap := e.Snapshot()
	defer snap.Close()
	for i := 0; i < 3; i++ {
		res := doReq(t, e, OpCreate, KindMutex, "!Again")
		if !res.OK || res.Err == ErrAlreadyExists {
			t.Fatalf("iteration %d saw leaked state: %+v", i, res)
		}
		e.Reset(snap)
		if e.Exists(KindMutex, "!Again") {
			t.Fatalf("iteration %d: state survived reset", i)
		}
	}
}

func TestSnapshotMisusePanics(t *testing.T) {
	e := snapEnv()
	outer := e.Snapshot()
	inner := e.Snapshot()

	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	mustPanic("Reset of non-innermost", func() { e.Reset(outer) })
	mustPanic("Close out of order", func() { outer.Close() })
	mustPanic("Reset on foreign env", func() { snapEnv().Reset(inner) })

	inner.Close()
	inner.Close() // double-close is a no-op
	outer.Close()

	mustPanic("Reset of closed snapshot", func() { e.Reset(outer) })
}
