package winenv

import (
	"bytes"
	"testing"
)

func TestResolveDefaultAndDNS(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	ip, ok := n.Resolve("mal.exe", "cc.example.com")
	if !ok || ip == "" {
		t.Fatalf("unknown host should resolve synthetically, got %q ok=%v", ip, ok)
	}
	ip2, _ := n.Resolve("mal.exe", "cc.example.com")
	if ip2 != ip {
		t.Fatalf("synthetic address not stable: %q vs %q", ip, ip2)
	}
	n.AddDNS("update.example.com", "93.184.216.34")
	if ip, ok := n.Resolve("mal.exe", "update.example.com"); !ok || ip != "93.184.216.34" {
		t.Fatalf("configured DNS ignored: %q ok=%v", ip, ok)
	}
}

func TestBlackholeFailsResolveAndConnect(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	n.Blackhole("evil.example.com")
	n.Blackhole("10.0.0.1:445")
	if _, ok := n.Resolve("mal.exe", "evil.example.com"); ok {
		t.Fatal("blackholed host resolved")
	}
	if !n.Blackholed("evil.example.com") {
		t.Fatal("Blackholed() false for blackholed host")
	}
	if h, ok := n.Connect("mal.exe", "10.0.0.1:445"); ok || h != InvalidHandle {
		t.Fatalf("connect to blackholed target succeeded: %v %v", h, ok)
	}
	n.Unblackhole("evil.example.com")
	if _, ok := n.Resolve("mal.exe", "evil.example.com"); !ok {
		t.Fatal("unblackholed host still fails")
	}
}

func TestRegisterOverridesResponderRefusal(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	n.SetResponder(refuseAllResponder{})
	if _, ok := n.Resolve("mal.exe", "killswitch.example.com"); ok {
		t.Fatal("responder refusal ignored")
	}
	n.Register("killswitch.example.com")
	if !n.Registered("killswitch.example.com") {
		t.Fatal("Registered() false after Register")
	}
	if _, ok := n.Resolve("mal.exe", "killswitch.example.com"); !ok {
		t.Fatal("registered domain did not resolve")
	}
	if _, ok := n.Connect("mal.exe", "killswitch.example.com:80"); !ok {
		t.Fatal("connect to registered domain refused")
	}
	n.Deregister("killswitch.example.com")
	if _, ok := n.Resolve("mal.exe", "killswitch.example.com"); ok {
		t.Fatal("deregistered domain still resolves")
	}
}

// refuseAllResponder scripts a world where nothing exists.
type refuseAllResponder struct{}

func (refuseAllResponder) ResolveHost(string) (string, bool, bool) { return "", false, true }
func (refuseAllResponder) AcceptConnect(string) (bool, bool)       { return false, true }
func (refuseAllResponder) ObserveSend(string, []byte)              {}
func (refuseAllResponder) Payload(string, int) ([]byte, bool)      { return nil, false }
func (refuseAllResponder) Mark() any                               { return nil }
func (refuseAllResponder) Rewind(any)                              {}

func TestResolveHookVerdicts(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	n.AddResolveHook(func(host string) ResolveVerdict {
		switch host {
		case "sinkhole.example.com":
			return VerdictRefuse
		case "forced.example.com":
			return VerdictResolve
		}
		return VerdictNone
	})
	if n.ResolveHookCount() != 1 {
		t.Fatalf("hook count = %d", n.ResolveHookCount())
	}
	if _, ok := n.Resolve("mal.exe", "sinkhole.example.com"); ok {
		t.Fatal("VerdictRefuse did not block resolution")
	}
	if _, ok := n.Resolve("mal.exe", "forced.example.com"); !ok {
		t.Fatal("VerdictResolve did not force resolution")
	}
	if _, ok := n.Resolve("mal.exe", "other.example.com"); !ok {
		t.Fatal("VerdictNone should fall through to default success")
	}
}

func TestConnectSendRecvLifecycle(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	s, ok := n.Connect("mal.exe", "cc.example.com:8080")
	if !ok || s == InvalidHandle {
		t.Fatalf("connect failed: %v %v", s, ok)
	}
	if !n.Send("mal.exe", s, 32) {
		t.Fatal("send on open socket failed")
	}
	if got, ok := n.Recv("mal.exe", s, 64); !ok || got != 64 {
		t.Fatalf("recv = %d, %v", got, ok)
	}
	n.CloseSocket(s)
	if n.Send("mal.exe", s, 8) {
		t.Fatal("send on closed socket succeeded")
	}
	if _, ok := n.Recv("mal.exe", s, 8); ok {
		t.Fatal("recv on closed socket succeeded")
	}
	// Flow log captured the whole dialogue including the failures.
	var verbs []string
	for _, f := range n.Flows() {
		verbs = append(verbs, f.Verb)
	}
	want := []string{"connect", "send", "recv", "send", "recv"}
	if len(verbs) != len(want) {
		t.Fatalf("flows = %v, want verbs %v", verbs, want)
	}
	for i := range want {
		if verbs[i] != want[i] {
			t.Fatalf("flow %d verb = %q, want %q", i, verbs[i], want[i])
		}
	}
	if f := n.Flows()[3]; f.OK || f.Target != "?" {
		t.Fatalf("closed-socket send flow = %+v", f)
	}
}

func TestBindConnectAndHTTPGet(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	if !n.BindConnect("mal.exe", Handle(0x2000), "cc.example.com:445") {
		t.Fatal("BindConnect failed")
	}
	if !n.Send("mal.exe", Handle(0x2000), 16) {
		t.Fatal("send on bound socket failed")
	}
	n.Blackhole("cc2.example.com:445")
	if n.BindConnect("mal.exe", Handle(0x2004), "cc2.example.com:445") {
		t.Fatal("BindConnect to blackholed target succeeded")
	}
	h, ok := n.HTTPGet("mal.exe", "http://payload.example.com/stage2.bin")
	if !ok || h == InvalidHandle {
		t.Fatalf("HTTPGet failed: %v %v", h, ok)
	}
	n.Blackhole("http://payload2.example.com/x")
	if _, ok := n.HTTPGet("mal.exe", "http://payload2.example.com/x"); ok {
		t.Fatal("HTTPGet to blackholed URL succeeded")
	}
}

func TestSendRecvPayloadDialogue(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	r := &echoResponder{}
	n.SetResponder(r)
	if !n.HasResponder() {
		t.Fatal("HasResponder false after SetResponder")
	}
	s, _ := n.Connect("mal.exe", "beacon.example.com:80")
	if !n.SendPayload("mal.exe", s, []byte("PING")) {
		t.Fatal("SendPayload failed")
	}
	if !bytes.Equal(r.lastSent, []byte("PING")) {
		t.Fatalf("responder observed %q", r.lastSent)
	}
	data, ok, handled := n.RecvPayload("mal.exe", s, 2)
	if !handled || !ok || !bytes.Equal(data, []byte("PI")) {
		t.Fatalf("RecvPayload = %q %v %v (want echo truncated to 2)", data, ok, handled)
	}
	// Without a responder, RecvPayload reports unhandled so callers fall
	// back to the legacy synthetic bytes.
	n.SetResponder(nil)
	if _, _, handled := n.RecvPayload("mal.exe", s, 8); handled {
		t.Fatal("RecvPayload handled without a responder")
	}
	if n.SendPayload("mal.exe", Handle(0xdead), []byte("x")) {
		t.Fatal("SendPayload on unknown socket succeeded")
	}
	if _, ok, handled := n.RecvPayload("mal.exe", Handle(0xdead), 8); ok || !handled {
		t.Fatal("RecvPayload on unknown socket should fail as handled")
	}
}

// echoResponder replies to recv with the bytes last sent.
type echoResponder struct{ lastSent []byte }

func (e *echoResponder) ResolveHost(string) (string, bool, bool) { return "", false, false }
func (e *echoResponder) AcceptConnect(string) (bool, bool)       { return false, false }
func (e *echoResponder) ObserveSend(_ string, data []byte) {
	e.lastSent = append(e.lastSent[:0], data...)
}
func (e *echoResponder) Payload(_ string, want int) ([]byte, bool) {
	return e.lastSent, true
}
func (e *echoResponder) Mark() any { return len(e.lastSent) }
func (e *echoResponder) Rewind(m any) {
	e.lastSent = e.lastSent[:m.(int)]
}

func TestFlowCapTrimsOldest(t *testing.T) {
	n := New(DefaultIdentity()).Net()
	for i := 0; i < MaxFlows+10; i++ {
		n.Resolve("mal.exe", "cc.example.com")
	}
	if len(n.Flows()) > MaxFlows {
		t.Fatalf("flow log exceeded cap: %d > %d", len(n.Flows()), MaxFlows)
	}
	if n.FlowsDropped() == 0 {
		t.Fatal("FlowsDropped not counted")
	}
	// The retained tail is the newest entries: ticks strictly increase
	// and end at the final tick.
	flows := n.Flows()
	last := flows[len(flows)-1].Tick
	for i := 1; i < len(flows); i++ {
		if flows[i].Tick <= flows[i-1].Tick {
			t.Fatal("retained flows out of order")
		}
	}
	if want := uint64(MaxFlows + 10); last != want {
		t.Fatalf("last tick = %d, want %d", last, want)
	}
}

func TestFlowCapDeferredUnderSnapshot(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	s := e.Snapshot()
	defer s.Close()
	for i := 0; i < MaxFlows+50; i++ {
		n.Resolve("mal.exe", "cc.example.com")
	}
	// No trim while the snapshot is open: its rewind index must stay
	// valid.
	if len(n.Flows()) != MaxFlows+50 {
		t.Fatalf("flows trimmed under open snapshot: %d", len(n.Flows()))
	}
	e.Reset(s)
	if len(n.Flows()) != 0 {
		t.Fatalf("reset did not rewind flows: %d", len(n.Flows()))
	}
}

func TestFlowCapReclaimedOnSnapshotClose(t *testing.T) {
	// The cap is deferred while snapshots are open, but the deferral
	// must not be permanent: closing the outermost snapshot without a
	// rewind (the "keep this run's state" path) reclaims the growth.
	e := New(DefaultIdentity())
	n := e.Net()
	outer := e.Snapshot()
	inner := e.Snapshot()
	total := 2*MaxFlows + 100
	for i := 0; i < total; i++ {
		n.Resolve("mal.exe", "cc.example.com")
	}
	inner.Close()
	// An inner close must not trim: the outer snapshot still holds a
	// rewind index into the log.
	if len(n.Flows()) != total {
		t.Fatalf("inner close trimmed flows under an open outer snapshot: %d", len(n.Flows()))
	}
	outer.Close()
	if got := len(n.Flows()); got > MaxFlows {
		t.Fatalf("flows unbounded after outermost close: %d > %d", got, MaxFlows)
	}
	keep := MaxFlows / 2
	if got := len(n.Flows()); got != keep {
		t.Fatalf("retained %d flows after close, want %d", got, keep)
	}
	if got, want := n.FlowsDropped(), total-keep; got != want {
		t.Fatalf("FlowsDropped = %d, want %d", got, want)
	}
	// The retained tail is the newest entries, still in order.
	flows := n.Flows()
	for i := 1; i < len(flows); i++ {
		if flows[i].Tick <= flows[i-1].Tick {
			t.Fatal("retained flows out of order")
		}
	}
	if last := flows[len(flows)-1].Tick; last != uint64(total) {
		t.Fatalf("last retained tick = %d, want %d", last, total)
	}
}

func TestSnapshotRewindsNetworkTables(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	n.AddDNS("pre.example.com", "1.1.1.1")
	n.Blackhole("preblack.example.com")
	n.Register("prereg.example.com")

	s := e.Snapshot()
	n.AddDNS("pre.example.com", "2.2.2.2") // overwrite
	n.AddDNS("new.example.com", "3.3.3.3") // add
	n.Unblackhole("preblack.example.com")
	n.Blackhole("newblack.example.com")
	n.Deregister("prereg.example.com")
	n.Register("newreg.example.com")
	n.AddResolveHook(func(string) ResolveVerdict { return VerdictRefuse })
	e.Reset(s)
	s.Close()

	if ip := n.dns["pre.example.com"]; ip != "1.1.1.1" {
		t.Fatalf("dns overwrite not rewound: %q", ip)
	}
	if _, ok := n.dns["new.example.com"]; ok {
		t.Fatal("dns addition not rewound")
	}
	if !n.Blackholed("preblack.example.com") || n.Blackholed("newblack.example.com") {
		t.Fatal("blackhole table not rewound")
	}
	if !n.Registered("prereg.example.com") || n.Registered("newreg.example.com") {
		t.Fatal("registration table not rewound")
	}
	if n.ResolveHookCount() != 0 {
		t.Fatalf("resolve hooks not rewound: %d", n.ResolveHookCount())
	}
}

func TestNestedSnapshotRewindsSocketsAndDNS(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	n.AddDNS("base.example.com", "1.1.1.1")

	outer := e.Snapshot()
	s1, _ := n.Connect("mal.exe", "a.example.com:80")
	n.AddDNS("outer.example.com", "2.2.2.2")

	inner := e.Snapshot()
	s2, _ := n.Connect("mal.exe", "b.example.com:80")
	n.AddDNS("inner.example.com", "3.3.3.3")
	n.CloseSocket(s1)

	e.Reset(inner)
	inner.Close()
	if _, ok := n.sockets[s2]; ok {
		t.Fatal("inner socket survived inner reset")
	}
	if _, ok := n.sockets[s1]; !ok {
		t.Fatal("outer socket not restored by inner reset")
	}
	if _, ok := n.dns["inner.example.com"]; ok {
		t.Fatal("inner DNS entry survived inner reset")
	}
	if n.dns["outer.example.com"] != "2.2.2.2" {
		t.Fatal("outer DNS entry lost by inner reset")
	}

	e.Reset(outer)
	outer.Close()
	if _, ok := n.sockets[s1]; ok {
		t.Fatal("outer socket survived outer reset")
	}
	if _, ok := n.dns["outer.example.com"]; ok {
		t.Fatal("outer DNS entry survived outer reset")
	}
	if n.dns["base.example.com"] != "1.1.1.1" {
		t.Fatal("pre-snapshot DNS entry lost")
	}
}

func TestSnapshotRewindsResponderState(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	r := &echoResponder{}
	n.SetResponder(r)
	s0, _ := n.Connect("mal.exe", "beacon.example.com:80")
	n.SendPayload("mal.exe", s0, []byte("AB"))

	snap := e.Snapshot()
	n.SendPayload("mal.exe", s0, []byte("ABCD"))
	if len(r.lastSent) != 4 {
		t.Fatalf("responder state = %d bytes", len(r.lastSent))
	}
	e.Reset(snap)
	snap.Close()
	if string(r.lastSent) != "AB" {
		t.Fatalf("responder state not rewound: %q", r.lastSent)
	}
}

func TestCloneCopiesRegistrations(t *testing.T) {
	e := New(DefaultIdentity())
	n := e.Net()
	n.Register("killswitch.example.com")
	n.SetResponder(&echoResponder{})
	c := e.Clone()
	cn := c.Net()
	if !cn.Registered("killswitch.example.com") {
		t.Fatal("clone lost registration")
	}
	if cn.HasResponder() {
		t.Fatal("clone must not share the responder")
	}
	cn.Deregister("killswitch.example.com")
	if !n.Registered("killswitch.example.com") {
		t.Fatal("clone deregistration leaked into original")
	}
}
