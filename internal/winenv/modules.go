package winenv

// Module is one loaded module of the emulated process: a DLL name plus
// its export-name list. The emulator lays these out as readable loader
// memory (module directory + per-export {hash, address} tables, see
// emu's loader image), which is how hash-resolving malware finds API
// addresses without import-style CALLAPI names.
type Module struct {
	// Name is the canonical lower-case DLL file name.
	Name string
	// Exports lists the exported API names, in export-table order.
	Exports []string
}

// Modules returns the fixed module list of the analysis environment.
// Every API registered in winapi.Standard/StandardC2 appears in exactly
// one module (enforced by emu's loader coverage test); the partition
// mirrors where the real Windows APIs live. The list and its order are
// frozen: export-table layout, per-export hashes, and resolved
// addresses are derived from it deterministically.
func Modules() []Module {
	return []Module{
		{Name: "kernel32.dll", Exports: []string{
			"CloseHandle", "CopyFileA", "CreateFileA", "CreateMutexA",
			"CreateProcessA", "CreateRemoteThread", "DeleteFileA",
			"ExitProcess", "ExitThread", "FreeLibrary",
			"GetComputerNameA", "GetCurrentProcess", "GetFileAttributesA",
			"GetLastError", "GetModuleFileNameA", "GetModuleHandleA",
			"GetProcAddress", "GetSystemDirectoryA", "GetTempFileNameA",
			"GetTempPathA", "GetTickCount", "GetVolumeInformationA",
			"LoadLibraryA", "OpenMutexA", "OpenProcessByNameA",
			"QueryPerformanceCounter", "ReadFile", "ReleaseMutex",
			"Sleep", "TerminateProcess", "WriteFile",
			"WriteProcessMemory", "lstrcatA", "lstrcmpA", "lstrcmpiA",
			"lstrcpyA", "lstrlenA",
		}},
		{Name: "advapi32.dll", Exports: []string{
			"CloseServiceHandle", "CreateServiceA", "DeleteService",
			"GetUserNameA", "OpenSCManagerA", "OpenServiceA",
			"RegCloseKey", "RegCreateKeyExA", "RegDeleteKeyA",
			"RegOpenKeyExA", "RegQueryValueExA", "RegSetValueExA",
			"StartServiceA",
		}},
		{Name: "user32.dll", Exports: []string{
			"CreateWindowExA", "DestroyWindow", "FindWindowA",
			"RegisterClassA", "ShowWindow", "wsprintfA",
		}},
		{Name: "ws2_32.dll", Exports: []string{
			"closesocket", "connect", "gethostbyname", "gethostname",
			"recv", "send", "socket",
		}},
		{Name: "wininet.dll", Exports: []string{
			"InternetCloseHandle", "InternetOpenA", "InternetOpenUrlA",
			"InternetReadFile",
		}},
		{Name: "msvcrt.dll", Exports: []string{
			"_itoa", "_snprintf", "rand",
		}},
	}
}
