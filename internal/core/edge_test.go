package core

import (
	"testing"

	"autovac/internal/isa"
	"autovac/internal/malware"
)

// TestUnresolvedIdentifierCandidateRejected: a sample branching on an
// operation whose identifier cannot be resolved (a stale handle) must
// be rejected cleanly, not abort the analysis.
func TestUnresolvedIdentifierCandidateRejected(t *testing.T) {
	b := isa.NewBuilder("stale-handle")
	b.Buf("buf", 8)
	// WriteFile on a never-opened handle: the via-handle identifier
	// resolution fails, the result is still tainted and checked.
	b.CallAPI("WriteFile", isa.Imm(0xBEEF), isa.Sym("buf"), isa.Imm(4))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jz("skip")
	b.Label("skip")
	b.Halt()
	sample := &malware.Sample{
		Spec:    &malware.Spec{Name: "stale-handle", Category: malware.Trojan},
		Program: b.MustBuild(),
	}
	p := New(Config{Seed: 2})
	res, err := p.Analyze(sample)
	if err != nil {
		t.Fatalf("analysis aborted: %v", err)
	}
	if len(res.Vaccines) != 0 {
		t.Errorf("vaccines from unresolved identifier: %+v", res.Vaccines)
	}
	found := false
	for _, r := range res.Rejected {
		if r.Reason == "unresolved resource identifier" {
			found = true
		}
	}
	if !found {
		t.Errorf("no unresolved-identifier rejection: %+v", res.Rejected)
	}
}

// TestFaultingSampleAnalyzed: a sample that crashes mid-run is an
// observation, not a pipeline error.
func TestFaultingSampleAnalyzed(t *testing.T) {
	b := isa.NewBuilder("crasher")
	b.RData("m", "CRASH.MARKER")
	b.CallAPI("OpenMutexA", isa.Sym("m"))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jnz("infected")
	b.Mov(isa.R(isa.EAX), isa.MemAbs(0xDEAD0000)).Comment("wild read")
	b.Halt()
	b.Label("infected")
	b.CallAPI("ExitProcess", isa.Imm(0))
	sample := &malware.Sample{
		Spec:    &malware.Spec{Name: "crasher", Category: malware.Trojan},
		Program: b.MustBuild(),
	}
	p := New(Config{Seed: 2})
	res, err := p.Analyze(sample)
	if err != nil {
		t.Fatalf("analysis aborted on crashing sample: %v", err)
	}
	// The marker probe is a candidate; simulating its presence makes
	// the sample exit BEFORE the crash — a full-immunization (and
	// crash-avoiding) vaccine.
	if len(res.Vaccines) == 0 {
		t.Fatalf("no vaccine from crashing sample; rejected: %+v", res.Rejected)
	}
}
