// Package core implements AUTOVAC's three-phase pipeline (paper Fig. 1):
//
//	Phase-I  Candidate Selection — profile the sample under dynamic
//	         taint analysis and keep the resource-API occurrences whose
//	         results reach a branch predicate (§III).
//	Phase-II Vaccine Generation — exclusiveness analysis against the
//	         benign index, impact analysis by API-result mutation and
//	         trace differential alignment, determinism analysis with
//	         backward slicing, and the malware clinic test (§IV).
//	Phase-III Delivery — direct injection and vaccine-daemon deployment
//	         (§V, implemented in package deploy).
package core

import (
	"fmt"
	"sort"
	"strings"

	"autovac/internal/c2"
	"autovac/internal/clinic"
	"autovac/internal/deploy"
	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/exclusive"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/static"
	"autovac/internal/taint"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// Default execution budgets. Phase-I mirrors the paper's 1-minute
// profiling budget; the BDR evaluation re-runs for the 5-minute
// equivalent (§VI-E).
const (
	DefaultPhase1Steps = 50_000
	DefaultBDRSteps    = 250_000
)

// Config parameterizes a pipeline.
type Config struct {
	// Seed drives every emulated execution deterministically.
	Seed uint64
	// Phase1Steps bounds the profiling run (0 = DefaultPhase1Steps).
	Phase1Steps int
	// BDRSteps bounds the vaccine-effect runs (0 = DefaultBDRSteps).
	BDRSteps int
	// Identity is the analysis machine.
	Identity winenv.HostIdentity
	// Index is the benign-resource index for exclusiveness analysis;
	// nil skips the exclusiveness filter.
	Index *exclusive.Index
	// Benign is the clinic-test suite; nil skips the clinic test.
	Benign []*malware.Sample
	// C2 attaches a pseudo-C2 scenario to every emulated execution and
	// switches the API registry to winapi.StandardC2, so network
	// identifiers (C2 hosts, DGA names, killswitch domains) become
	// candidate vaccine material. Nil keeps the legacy passive network
	// and unlabelled network APIs — byte-identical legacy traces.
	C2 *c2.Scenario
}

// Pipeline runs AUTOVAC end to end. Its state is immutable after New,
// so one Pipeline may analyse many samples concurrently (see
// AnalyzeAll).
type Pipeline struct {
	cfg Config
	// registry is the shared labelled API set; it is read-only after
	// construction and reused across every emulated execution.
	registry *winapi.Registry
}

// New creates a pipeline, applying defaults.
func New(cfg Config) *Pipeline {
	if cfg.Phase1Steps <= 0 {
		cfg.Phase1Steps = DefaultPhase1Steps
	}
	if cfg.BDRSteps <= 0 {
		cfg.BDRSteps = DefaultBDRSteps
	}
	if cfg.Identity == (winenv.HostIdentity{}) {
		cfg.Identity = winenv.DefaultIdentity()
	}
	reg := winapi.Standard()
	if cfg.C2 != nil {
		reg = winapi.StandardC2()
	}
	return &Pipeline{cfg: cfg, registry: reg}
}

// newEnv builds one analysis environment, attaching a fresh responder
// for the configured scenario (responders are stateful and single-env).
func (p *Pipeline) newEnv() *winenv.Env {
	env := winenv.New(p.cfg.Identity)
	if p.cfg.C2 != nil {
		env.Net().SetResponder(p.cfg.C2.NewResponder())
	}
	return env
}

// Candidate is one resource-API occurrence that can affect the
// malware's control flow — Phase-I's output.
type Candidate struct {
	// Call is the observed API call.
	Call trace.APICall
	// Source is the taint label the predicate consumed.
	Source taint.Source
}

// Profile is the result of Phase-I for one sample.
type Profile struct {
	// Sample is the analyzed sample.
	Sample *malware.Sample
	// Normal is the natural-execution trace (with instruction steps).
	Normal *trace.Trace
	// Candidates are the resource occurrences feeding predicates,
	// deduplicated by (API, caller-PC, identifier).
	Candidates []Candidate
	// ResourceOccurrences counts all resource-API occurrences.
	ResourceOccurrences int
	// SensitiveOccurrences counts occurrences whose labels reached a
	// predicate (the 80.3% statistic of §VI-B).
	SensitiveOccurrences int
}

// HasVaccineCandidates reports whether Phase-I flagged the sample as
// "possibly has a vaccine".
func (p *Profile) HasVaccineCandidates() bool { return len(p.Candidates) > 0 }

// Phase1 profiles a sample: one natural execution under taint analysis,
// with instruction steps recorded for the later backward slicing.
func (p *Pipeline) Phase1(s *malware.Sample) (*Profile, error) {
	env := p.newEnv()
	tr, err := emu.Run(s.Program, env, emu.Options{
		Seed:        p.cfg.Seed,
		MaxSteps:    p.cfg.Phase1Steps,
		RecordSteps: true,
		Registry:    p.registry,
	})
	if err != nil {
		return nil, fmt.Errorf("core: phase1 %s: %w", s.Name(), err)
	}

	// Labels that reached any predicate.
	hot := make(map[taint.Source]bool)
	for _, hit := range tr.Predicates {
		for _, src := range hit.Sources {
			hot[src] = true
		}
	}

	prof := &Profile{Sample: s, Normal: tr}
	seen := make(map[string]bool)
	for _, c := range tr.Calls {
		if c.ResourceKind == "" {
			continue
		}
		prof.ResourceOccurrences++
		sensitive := false
		var hotSrc taint.Source
		for _, src := range c.TaintSources {
			if hot[src] {
				sensitive = true
				hotSrc = src
				break
			}
		}
		if !sensitive {
			continue
		}
		prof.SensitiveOccurrences++
		key := fmt.Sprintf("%s|%d|%s", c.API, c.CallerPC, strings.ToLower(c.Identifier))
		if seen[key] {
			continue
		}
		seen[key] = true
		prof.Candidates = append(prof.Candidates, Candidate{Call: c, Source: hotSrc})
	}
	return prof, nil
}

// provablyCandidateFree runs the static taint pre-filter: true means
// the static pass proved no resource-API result can reach a predicate,
// so Phase-I emulation cannot produce candidates. Any analysis error
// or panic answers false — the dynamic pipeline remains the authority.
func (p *Pipeline) provablyCandidateFree(s *malware.Sample) (free bool) {
	defer func() {
		if recover() != nil {
			free = false
		}
	}()
	may, err := static.MayHaveCandidates(s.Program, p.registry)
	return err == nil && !may
}

// provablyResourceFree runs the Phase-0 triage pass: true means the
// recovered API surface (including hash-resolved indirect calls)
// provably contains no resource-labelled API, so no execution can
// produce a resource call, let alone a candidate. Any analysis error,
// a ⊤ surface, or a panic answers false — triage only ever skips work
// it can prove pointless.
func (p *Pipeline) provablyResourceFree(s *malware.Sample) (free bool) {
	defer func() {
		if recover() != nil {
			free = false
		}
	}()
	ok, err := static.SurfaceResourceFree(s.Program, p.registry)
	return err == nil && ok
}

// Rejection explains why a candidate produced no vaccine.
type Rejection struct {
	Candidate Candidate
	// Stage is "exclusiveness", "impact", "determinism", or "clinic".
	Stage string
	// Reason is human-readable.
	Reason string
}

// Result is the outcome of Phase-II for one sample.
type Result struct {
	Profile *Profile
	// Vaccines are the generated, validated vaccines.
	Vaccines []vaccine.Vaccine
	// Rejected explains the dropped candidates.
	Rejected []Rejection
	// ClinicRejections holds clinic-test failures (when enabled).
	ClinicRejections []clinic.Rejection
}

// phase2Arena holds the pooled execution state shared by every
// candidate of one Phase-II pass: a Runner that rewinds the sample's
// mutated re-executions instead of rebuilding CPU and environment per
// candidate, and one environment reused across slice sanity replays
// (Replay rewinds it itself).
type phase2Arena struct {
	runner    *emu.Runner
	replayEnv *winenv.Env
}

// Phase2 generates vaccines from a profile: exclusiveness → impact →
// determinism, then the clinic test.
func (p *Pipeline) Phase2(prof *Profile) (*Result, error) {
	res := &Result{Profile: prof}
	merged := make(map[string]*vaccine.Vaccine)
	var order []string

	arena := &phase2Arena{}
	if len(prof.Candidates) > 0 {
		runner, err := emu.NewRunner(prof.Sample.Program, p.newEnv())
		if err != nil {
			return nil, fmt.Errorf("core: phase2 %s: %w", prof.Sample.Name(), err)
		}
		defer runner.Close()
		arena.runner = runner
		arena.replayEnv = p.newEnv()
	}

	for _, cand := range prof.Candidates {
		v, rej := p.generateOne(prof, cand, arena)
		if rej != nil {
			res.Rejected = append(res.Rejected, *rej)
			continue
		}
		// Merge vaccines that target the same resource (a file checked,
		// created, and written yields one vaccine with combined ops, as
		// in Table III's OperType column).
		key := v.Resource.String() + "|" + strings.ToLower(keyIdent(v))
		if prev, ok := merged[key]; ok {
			mergeVaccine(prev, v)
			continue
		}
		merged[key] = v
		order = append(order, key)
	}

	for i, key := range order {
		v := merged[key]
		v.ID = fmt.Sprintf("%s/%s/%d", prof.Sample.Name(), v.Resource, i)
		if err := v.Validate(); err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		res.Vaccines = append(res.Vaccines, *v)
	}

	// Malware clinic test (§IV-D).
	if len(p.cfg.Benign) > 0 && len(res.Vaccines) > 0 {
		rep, err := clinic.Run(res.Vaccines, p.cfg.Benign, clinic.Config{
			Seed:     p.cfg.Seed,
			Identity: p.cfg.Identity,
		})
		if err != nil {
			return nil, fmt.Errorf("core: clinic: %w", err)
		}
		res.Vaccines = rep.Passed
		res.ClinicRejections = rep.Rejected
	}
	return res, nil
}

// keyIdent returns the merge key component for a vaccine's identifier.
func keyIdent(v *vaccine.Vaccine) string {
	if v.Class == determinism.PartialStatic {
		return v.Pattern
	}
	return v.Identifier
}

// mergeVaccine folds src into dst: ops union, best effect wins (and
// brings its polarity along).
func mergeVaccine(dst, src *vaccine.Vaccine) {
	dst.Op = mergeOps(dst.Op, src.Op)
	for _, e := range src.Effects {
		if !hasEffect(dst.Effects, e) {
			dst.Effects = append(dst.Effects, e)
		}
	}
	sort.Slice(dst.Effects, func(i, j int) bool { return dst.Effects[i] < dst.Effects[j] })
	if src.Effect < dst.Effect { // smaller enum = stronger effect
		dst.Effect = src.Effect
		dst.Polarity = src.Polarity
		dst.API = src.API
		dst.CallerPC = src.CallerPC
	}
}

func hasEffect(es []impact.Effect, e impact.Effect) bool {
	for _, x := range es {
		if x == e {
			return true
		}
	}
	return false
}

// mergeOps unions comma-separated op lists preserving order.
func mergeOps(a, b string) string {
	seen := make(map[string]bool)
	var out []string
	for _, s := range strings.Split(a+","+b, ",") {
		if s == "" || seen[s] {
			continue
		}
		seen[s] = true
		out = append(out, s)
	}
	return strings.Join(out, ",")
}

// generateOne runs exclusiveness, impact, and determinism analysis for
// a single candidate, drawing executions from the shared Phase-II arena.
func (p *Pipeline) generateOne(prof *Profile, cand Candidate, arena *phase2Arena) (*vaccine.Vaccine, *Rejection) {
	call := cand.Call
	kind, err := winenv.ParseKind(call.ResourceKind)
	if err != nil {
		return nil, &Rejection{Candidate: cand, Stage: "impact", Reason: err.Error()}
	}
	if call.Identifier == "" {
		// Stale handles and similar resolution failures leave no
		// identifier to build a vaccine on.
		return nil, &Rejection{Candidate: cand, Stage: "impact", Reason: "unresolved resource identifier"}
	}

	// Step-I: exclusiveness analysis (§IV-A).
	if p.cfg.Index != nil && call.Identifier != "" {
		if !p.cfg.Index.Exclusive(kind, call.Identifier) {
			user, _ := p.cfg.Index.BenignUser(kind, call.Identifier)
			return nil, &Rejection{
				Candidate: cand, Stage: "exclusiveness",
				Reason: fmt.Sprintf("identifier used by benign software (%s)", user),
			}
		}
	}

	// Step-II: impact analysis (§IV-B). Try presence-simulating
	// mutations first (a marker is the safest vaccine), then blocking.
	modes := mutationModes(call.Op)
	var best *impact.Result
	var bestMode emu.MutationMode
	for _, mode := range modes {
		mutated, err := arena.runner.Run(emu.Options{
			Seed:     p.cfg.Seed,
			MaxSteps: p.cfg.Phase1Steps,
			Registry: p.registry,
			Mutations: []emu.Mutation{{
				API: call.API, CallerPC: call.CallerPC,
				Identifier: call.Identifier, Mode: mode,
			}},
		})
		if err != nil {
			return nil, &Rejection{Candidate: cand, Stage: "impact", Reason: err.Error()}
		}
		r := impact.Classify(mutated, prof.Normal)
		if r.Immunizing() {
			best = &r
			bestMode = mode
			break
		}
	}
	if best == nil {
		return nil, &Rejection{Candidate: cand, Stage: "impact", Reason: "no immunization effect"}
	}

	// Step-III: determinism analysis (§IV-C).
	det := determinism.Classify(call, prof.Normal.Sources)
	v := &vaccine.Vaccine{
		Sample:     prof.Sample.Name(),
		Family:     string(prof.Sample.Spec.Family),
		Category:   string(prof.Sample.Spec.Category),
		Resource:   kind,
		Identifier: call.Identifier,
		Class:      det.Class,
		Op:         call.Op,
		API:        call.API,
		CallerPC:   call.CallerPC,
		Effect:     best.Primary,
		Effects:    best.Effects,
		Polarity:   polarityOf(bestMode),
	}
	switch det.Class {
	case determinism.NonDeterministic:
		return nil, &Rejection{
			Candidate: cand, Stage: "determinism",
			Reason: fmt.Sprintf("identifier is non-deterministic (%v)", det.RandomAPIs),
		}
	case determinism.Static:
		v.Delivery = vaccine.DirectInjection
	case determinism.PartialStatic:
		v.Pattern = det.Pattern
		v.Delivery = vaccine.VaccineDaemon
		if p.cfg.Index != nil && !p.cfg.Index.ExclusivePattern(kind, det.Pattern) {
			return nil, &Rejection{
				Candidate: cand, Stage: "exclusiveness",
				Reason: fmt.Sprintf("pattern %q overlaps benign identifiers", det.Pattern),
			}
		}
	case determinism.AlgorithmDeterministic:
		sl, err := determinism.Extract(prof.Sample.Program, prof.Normal, call.Seq)
		if err != nil {
			return nil, &Rejection{Candidate: cand, Stage: "determinism", Reason: err.Error()}
		}
		// Static replayability gate: a slice that could loop, fault, or
		// touch host resources must never reach a pack.
		if verr := static.VerifySlice(sl.Program, sl.ResultAddr, p.registry); verr != nil {
			return nil, &Rejection{Candidate: cand, Stage: "determinism", Reason: verr.Error()}
		}
		// Sanity: the slice replays to the observed identifier on the
		// analysis machine.
		got, err := sl.Replay(arena.replayEnv, p.cfg.Seed)
		if err != nil || !strings.EqualFold(got, call.Identifier) {
			return nil, &Rejection{
				Candidate: cand, Stage: "determinism",
				Reason: fmt.Sprintf("slice replay mismatch (%q vs %q, err=%v)", got, call.Identifier, err),
			}
		}
		v.Slice = sl
		v.Delivery = vaccine.VaccineDaemon
	}
	return v, nil
}

// mutationModes returns the mutation directions to try for an observed
// operation, presence-simulation first.
func mutationModes(op string) []emu.MutationMode {
	switch op {
	case winenv.OpOpen.String(), winenv.OpQuery.String(), winenv.OpRead.String():
		return []emu.MutationMode{emu.ForceSuccess, emu.ForceFailure}
	case winenv.OpCreate.String():
		return []emu.MutationMode{emu.ForceAlreadyExists, emu.ForceFailure}
	default:
		return []emu.MutationMode{emu.ForceFailure}
	}
}

// polarityOf maps the winning mutation direction to vaccine polarity.
func polarityOf(m emu.MutationMode) vaccine.Polarity {
	if m == emu.ForceFailure {
		return vaccine.BlockAccess
	}
	return vaccine.SimulatePresence
}

// Analyze runs Phase-I and Phase-II for one sample.
func (p *Pipeline) Analyze(s *malware.Sample) (*Result, error) {
	prof, err := p.Phase1(s)
	if err != nil {
		return nil, err
	}
	if !prof.HasVaccineCandidates() {
		return &Result{Profile: prof}, nil
	}
	return p.Phase2(prof)
}

// MeasureBDR deploys a vaccine and measures the Behavior Decreasing
// Ratio of §VI-E with the extended execution budget.
func (p *Pipeline) MeasureBDR(s *malware.Sample, v *vaccine.Vaccine) (float64, error) {
	normal, err := emu.Run(s.Program, p.newEnv(), emu.Options{
		Seed: p.cfg.Seed, MaxSteps: p.cfg.BDRSteps, Registry: p.registry,
	})
	if err != nil {
		return 0, fmt.Errorf("core: bdr normal run: %w", err)
	}
	env := p.newEnv()
	d := p.NewDaemonFor(env)
	if err := d.Install(*v); err != nil {
		return 0, fmt.Errorf("core: bdr deploy: %w", err)
	}
	deployed, err := emu.Run(s.Program, env, emu.Options{
		Seed: p.cfg.Seed, MaxSteps: p.cfg.BDRSteps, Registry: p.registry,
	})
	if err != nil {
		return 0, fmt.Errorf("core: bdr deployed run: %w", err)
	}
	return impact.BDR(normal, deployed), nil
}

// NewDaemonFor creates a vaccine daemon bound to an end-host
// environment, sharing the pipeline's seed.
func (p *Pipeline) NewDaemonFor(env *winenv.Env) *deploy.Daemon {
	return deploy.NewDaemon(env, p.cfg.Seed)
}

// Registry returns the API registry the pipeline analyses against.
func (p *Pipeline) Registry() *winapi.Registry { return p.registry }

// Seed returns the pipeline's deterministic seed.
func (p *Pipeline) Seed() uint64 { return p.cfg.Seed }

// Identity returns the analysis machine identity.
func (p *Pipeline) Identity() winenv.HostIdentity { return p.cfg.Identity }

// Scenario returns the attached pseudo-C2 scenario (nil when running
// against the legacy passive network).
func (p *Pipeline) Scenario() *c2.Scenario { return p.cfg.C2 }
