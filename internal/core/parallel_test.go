package core

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"

	"autovac/internal/malware"
)

// corpus builds a small deterministic corpus.
func corpus(t *testing.T, n int) []*malware.Sample {
	t.Helper()
	samples, err := malware.NewGenerator(17).Corpus(n)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// fingerprintResults renders results into comparable strings.
func fingerprintResults(rs []*Result) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		line := r.Profile.Sample.Name() + ":"
		for _, v := range r.Vaccines {
			line += " " + v.String()
		}
		out = append(out, line)
	}
	return out
}

func TestAnalyzeAllMatchesSerial(t *testing.T) {
	samples := corpus(t, 24)
	p := New(Config{Seed: 5})

	serial, err := p.AnalyzeAll(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := p.AnalyzeAll(samples, workers)
		if err != nil {
			t.Fatal(err)
		}
		a, b := fingerprintResults(serial), fingerprintResults(parallel)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d vs %d results", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("workers=%d sample %d differs:\n  %s\n  %s", workers, i, a[i], b[i])
			}
		}
	}
}

func TestAnalyzeAllDefaultsWorkers(t *testing.T) {
	samples := corpus(t, 6)
	p := New(Config{Seed: 5})
	rs, err := p.AnalyzeAll(samples, 0) // GOMAXPROCS, clamped to len
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(samples) {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r == nil || r.Profile.Sample != samples[i] {
			t.Fatalf("result %d out of order", i)
		}
	}
}

func TestAnalyzeAllEmpty(t *testing.T) {
	p := New(Config{Seed: 5})
	for _, samples := range [][]*malware.Sample{nil, {}} {
		rs, err := p.AnalyzeAll(samples, 4)
		if err != nil {
			t.Errorf("empty corpus: err = %v", err)
		}
		// The contract pins ([]*Result{}, nil): an empty non-nil slice,
		// so callers can range/len without a nil guard.
		if rs == nil || len(rs) != 0 {
			t.Errorf("empty corpus: results = %#v, want empty non-nil slice", rs)
		}
	}
}

// setHook installs an analysis test hook and restores it at cleanup.
func setHook(t *testing.T, hook func(*malware.Sample) error) {
	t.Helper()
	analyzeTestHook = hook
	t.Cleanup(func() { analyzeTestHook = nil })
}

// TestAnalyzeAllIsolatesFailures injects one panicking and one erroring
// sample and checks, across worker counts, that the run completes (no
// deadlock), siblings' results are intact, the failed slots are nil,
// and the aggregated error attributes both failures.
func TestAnalyzeAllIsolatesFailures(t *testing.T) {
	samples := corpus(t, 12)
	panicName, errName := samples[3].Name(), samples[8].Name()
	setHook(t, func(s *malware.Sample) error {
		switch s.Name() {
		case panicName:
			panic("injected test panic")
		case errName:
			return errors.New("injected test error")
		}
		return nil
	})
	p := New(Config{Seed: 5})

	for _, workers := range []int{1, 2, 4, 8} {
		rs, err := p.AnalyzeAll(samples, workers)
		if err == nil {
			t.Fatalf("workers=%d: no aggregated error", workers)
		}
		if len(rs) != len(samples) {
			t.Fatalf("workers=%d: %d results", workers, len(rs))
		}
		for i, r := range rs {
			failed := i == 3 || i == 8
			if failed && r != nil {
				t.Errorf("workers=%d: failed sample %d has a result", workers, i)
			}
			if !failed && (r == nil || r.Profile.Sample != samples[i]) {
				t.Errorf("workers=%d: sibling result %d lost or misplaced", workers, i)
			}
		}
		var se *SampleError
		if !errors.As(err, &se) {
			t.Fatalf("workers=%d: aggregated error holds no *SampleError: %v", workers, err)
		}
		for _, want := range []string{panicName, errName, "injected test panic", "injected test error"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("workers=%d: aggregated error missing %q:\n%v", workers, want, err)
			}
		}
	}
}

// TestAnalyzeAllErrorOrderDeterministic pins that the aggregated error
// lists failures in sample-index order regardless of worker scheduling:
// every worker count must render the identical error string.
func TestAnalyzeAllErrorOrderDeterministic(t *testing.T) {
	samples := corpus(t, 16)
	bad := map[string]int{samples[3].Name(): 3, samples[7].Name(): 7, samples[12].Name(): 12}
	setHook(t, func(s *malware.Sample) error {
		if i, ok := bad[s.Name()]; ok {
			return fmt.Errorf("injected failure at index %d", i)
		}
		return nil
	})
	p := New(Config{Seed: 5})

	var serial string
	for _, workers := range []int{1, 2, 4, 8} {
		_, err := p.AnalyzeAll(samples, workers)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		if workers == 1 {
			serial = err.Error()
			// Sanity: index order means 3 before 7 before 12.
			for _, pair := range [][2]string{{"index 3", "index 7"}, {"index 7", "index 12"}} {
				if strings.Index(serial, pair[0]) > strings.Index(serial, pair[1]) {
					t.Fatalf("serial error out of index order:\n%s", serial)
				}
			}
			continue
		}
		if got := err.Error(); got != serial {
			t.Errorf("workers=%d error differs from serial:\n%s\nvs\n%s", workers, got, serial)
		}
	}
}

// TestAnalyzeAllPanicStack checks the recovered panic carries the
// captured goroutine stack and the Panicked marker.
func TestAnalyzeAllPanicStack(t *testing.T) {
	samples := corpus(t, 4)
	setHook(t, func(s *malware.Sample) error {
		if s.Name() == samples[2].Name() {
			panic("boom")
		}
		return nil
	})
	p := New(Config{Seed: 5})
	_, err := p.AnalyzeAll(samples, 2)
	var se *SampleError
	if !errors.As(err, &se) {
		t.Fatalf("no *SampleError in %v", err)
	}
	if !se.Panicked || se.Index != 2 || se.Sample != samples[2].Name() {
		t.Errorf("SampleError = %+v, want panicked at index 2", se)
	}
	if len(se.Stack) == 0 || !strings.Contains(string(se.Stack), "goroutine") {
		t.Errorf("panic stack not captured: %q", se.Stack)
	}
}

// TestAnalyzeCorpusCancellation cancels mid-run and checks the call
// returns promptly with partial results and ctx's error joined.
func TestAnalyzeCorpusCancellation(t *testing.T) {
	samples := corpus(t, 32)
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	setHook(t, func(s *malware.Sample) error {
		if started.Add(1) == 4 {
			cancel()
		}
		return nil
	})
	p := New(Config{Seed: 5})

	rs, st, err := p.AnalyzeAllContext(ctx, samples, 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled joined", err)
	}
	if len(rs) != len(samples) {
		t.Fatalf("results = %d", len(rs))
	}
	// In-flight samples finish; nothing new starts after cancel. With 4
	// workers, at most 4 + the triggering sample can complete.
	if st.Analyzed == 0 || st.Analyzed >= len(samples) {
		t.Errorf("Analyzed = %d, want partial (0 < n < %d)", st.Analyzed, len(samples))
	}
	if st.Skipped == 0 || st.Analyzed+st.Skipped != len(samples) {
		t.Errorf("stats don't add up: %+v (corpus %d)", st, len(samples))
	}
	for i, r := range rs {
		if r != nil && r.Profile.Sample != samples[i] {
			t.Errorf("result %d misplaced", i)
		}
	}
}

// TestAnalyzeCorpusMaxErrors checks the error budget stops dispatch:
// with every sample failing and MaxErrors=3, the run ends early with
// the rest skipped, and still reports each failure that did run.
func TestAnalyzeCorpusMaxErrors(t *testing.T) {
	samples := corpus(t, 24)
	setHook(t, func(s *malware.Sample) error { return errors.New("always fails") })
	p := New(Config{Seed: 5})

	rs, st, err := p.AnalyzeCorpus(context.Background(), samples, CorpusOptions{Workers: 2, MaxErrors: 3})
	if err == nil {
		t.Fatal("no error")
	}
	if len(rs) != len(samples) {
		t.Fatalf("results = %d", len(rs))
	}
	// In-flight samples may push past the budget by up to the worker
	// count, but dispatch must stop: most of the corpus stays skipped.
	if st.Failed < 3 || st.Failed > 3+2 {
		t.Errorf("Failed = %d, want 3..5", st.Failed)
	}
	if st.Skipped != len(samples)-st.Failed {
		t.Errorf("Skipped = %d, Failed = %d, corpus %d", st.Skipped, st.Failed, len(samples))
	}
}

// TestRunStatsAccounting checks stats on a healthy run: every sample
// analyzed, per-sample times recorded, and the pack-portable conversion
// carries the same numbers.
func TestRunStatsAccounting(t *testing.T) {
	samples := corpus(t, 8)
	p := New(Config{Seed: 5})
	rs, st, err := p.AnalyzeAllContext(context.Background(), samples, 4)
	if err != nil {
		t.Fatal(err)
	}
	if st.Analyzed != len(samples) || st.Failed != 0 || st.Panicked != 0 || st.Skipped != 0 {
		t.Errorf("stats = %+v", st)
	}
	if len(st.SampleTimes) != len(samples) {
		t.Fatalf("SampleTimes = %d", len(st.SampleTimes))
	}
	if st.MeanSampleTime() <= 0 || st.Wall <= 0 {
		t.Errorf("times not recorded: mean=%v wall=%v", st.MeanSampleTime(), st.Wall)
	}
	as := st.AnalysisStats()
	if as.Analyzed != len(rs) || as.Failed != 0 {
		t.Errorf("AnalysisStats = %+v", as)
	}
}
