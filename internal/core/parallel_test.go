package core

import (
	"testing"

	"autovac/internal/malware"
)

// corpus builds a small deterministic corpus.
func corpus(t *testing.T, n int) []*malware.Sample {
	t.Helper()
	samples, err := malware.NewGenerator(17).Corpus(n)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// fingerprintResults renders results into comparable strings.
func fingerprintResults(rs []*Result) []string {
	out := make([]string, 0, len(rs))
	for _, r := range rs {
		line := r.Profile.Sample.Name() + ":"
		for _, v := range r.Vaccines {
			line += " " + v.String()
		}
		out = append(out, line)
	}
	return out
}

func TestAnalyzeAllMatchesSerial(t *testing.T) {
	samples := corpus(t, 24)
	p := New(Config{Seed: 5})

	serial, err := p.AnalyzeAll(samples, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		parallel, err := p.AnalyzeAll(samples, workers)
		if err != nil {
			t.Fatal(err)
		}
		a, b := fingerprintResults(serial), fingerprintResults(parallel)
		if len(a) != len(b) {
			t.Fatalf("workers=%d: %d vs %d results", workers, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("workers=%d sample %d differs:\n  %s\n  %s", workers, i, a[i], b[i])
			}
		}
	}
}

func TestAnalyzeAllDefaultsWorkers(t *testing.T) {
	samples := corpus(t, 6)
	p := New(Config{Seed: 5})
	rs, err := p.AnalyzeAll(samples, 0) // GOMAXPROCS, clamped to len
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != len(samples) {
		t.Fatalf("results = %d", len(rs))
	}
	for i, r := range rs {
		if r == nil || r.Profile.Sample != samples[i] {
			t.Fatalf("result %d out of order", i)
		}
	}
}

func TestAnalyzeAllEmpty(t *testing.T) {
	p := New(Config{Seed: 5})
	rs, err := p.AnalyzeAll(nil, 4)
	if err != nil || len(rs) != 0 {
		t.Errorf("empty corpus: %v, %v", rs, err)
	}
}
