package core

import (
	"fmt"
	"runtime"
	"sync"

	"autovac/internal/malware"
)

// AnalyzeAll analyses a corpus with a bounded worker pool. The pipeline
// is immutable and every execution builds its own environment, so
// samples are embarrassingly parallel; results come back indexed by
// sample, identical to a serial run (workers only change wall-clock
// time, never output — the determinism tests pin this).
//
// workers <= 0 selects GOMAXPROCS. The first error cancels nothing
// in-flight but is reported after all workers drain (partial results
// are discarded on error).
func (p *Pipeline) AnalyzeAll(samples []*malware.Sample, workers int) ([]*Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}
	if workers <= 1 {
		// Serial fast path.
		out := make([]*Result, len(samples))
		for i, s := range samples {
			res, err := p.Analyze(s)
			if err != nil {
				return nil, err
			}
			out[i] = res
		}
		return out, nil
	}

	results := make([]*Result, len(samples))
	errs := make([]error, len(samples))
	indexes := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indexes {
				results[i], errs[i] = p.Analyze(samples[i])
			}
		}()
	}
	for i := range samples {
		indexes <- i
	}
	close(indexes)
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("core: analysing %s: %w", samples[i].Name(), err)
		}
	}
	return results, nil
}
