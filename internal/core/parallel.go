package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// The corpus runner's fault-isolation contract (see DESIGN.md §9):
//
//   - One hostile sample cannot take down a corpus run. A panic inside
//     any per-sample analysis is recovered in the worker and converted
//     to a *SampleError carrying the sample name and the captured
//     stack; sibling samples are unaffected.
//   - Finished work is never discarded. Every healthy sample's Result
//     is returned even when other samples fail; failed samples leave a
//     nil slot.
//   - Errors aggregate deterministically. All per-sample failures are
//     joined (errors.Join) in sample-index order, regardless of worker
//     count or scheduling — a parallel run reports exactly what a
//     serial run reports.
//   - Runs are cancellable. Workers stop picking up new samples as
//     soon as the context is done; the call returns within one
//     sample-analysis of cancellation with everything completed so far.

// SampleError is one sample's analysis failure inside a corpus run. It
// wraps the underlying error (or the recovered panic value) with the
// sample's identity, so aggregated corpus errors stay attributable.
type SampleError struct {
	// Sample is the failing sample's name.
	Sample string
	// Index is the sample's position in the corpus.
	Index int
	// Panicked reports whether the failure was a recovered panic.
	Panicked bool
	// Stack is the goroutine stack captured at recovery (panics only).
	Stack []byte
	// Err is the underlying error; for panics it wraps the panic value.
	Err error
}

// Error renders the failure with its sample attribution.
func (e *SampleError) Error() string {
	return fmt.Sprintf("core: analysing %s: %v", e.Sample, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As.
func (e *SampleError) Unwrap() error { return e.Err }

// RunStats summarizes one corpus run.
type RunStats struct {
	// Analyzed counts samples that completed successfully.
	Analyzed int
	// Failed counts samples whose analysis returned an error,
	// including panics.
	Failed int
	// Panicked counts the subset of Failed that panicked.
	Panicked int
	// Skipped counts samples never started because the run was
	// cancelled or the error budget was exhausted.
	Skipped int
	// StaticallyFiltered counts samples the static taint pre-filter
	// proved candidate-free, whose Phase-I emulation was skipped
	// (subset of Analyzed).
	StaticallyFiltered int
	// TriageSkipped counts samples Phase-0 triage proved unable to
	// invoke any resource API, whose emulation was skipped entirely
	// (subset of Analyzed, disjoint from StaticallyFiltered).
	TriageSkipped int
	// SampleTimes holds per-sample wall time, indexed like the corpus
	// (zero for skipped samples).
	SampleTimes []time.Duration
	// Wall is the end-to-end wall time of the run.
	Wall time.Duration
}

// MeanSampleTime returns the mean wall time of the samples that ran.
func (st *RunStats) MeanSampleTime() time.Duration {
	ran := st.Analyzed + st.Failed
	if ran == 0 {
		return 0
	}
	var sum time.Duration
	for _, d := range st.SampleTimes {
		sum += d
	}
	return sum / time.Duration(ran)
}

// AnalysisStats converts the run statistics to the portable shape
// embedded in vaccine packs and served by the fleet's /v1/metrics.
func (st *RunStats) AnalysisStats() vaccine.AnalysisStats {
	return vaccine.AnalysisStats{
		Analyzed:           st.Analyzed,
		Failed:             st.Failed,
		Panicked:           st.Panicked,
		Skipped:            st.Skipped,
		StaticallyFiltered: st.StaticallyFiltered,
		TriageSkipped:      st.TriageSkipped,
		WallMillis:         st.Wall.Milliseconds(),
	}
}

// CorpusOptions parameterizes AnalyzeCorpus.
type CorpusOptions struct {
	// Workers bounds the worker pool (<= 0 selects GOMAXPROCS).
	Workers int
	// MaxErrors stops dispatching new samples once this many have
	// failed (0 = no budget; the run always drains every sample).
	// Samples already in flight still finish and are reported.
	MaxErrors int
	// StaticPrefilter enables the static taint pre-filter
	// (internal/static): samples it proves candidate-free skip Phase-I
	// emulation entirely and yield an empty Result. The static pass
	// over-approximates the dynamic one, so generated vaccines are
	// identical with the filter on or off; off remains the default so
	// dynamic-only analysis stays available and testable.
	StaticPrefilter bool
	// StaticTriage enables Phase-0 triage (static.RecoverAPISurface):
	// samples whose recovered API surface provably contains no
	// resource-labelled API skip emulation entirely and yield an empty
	// Result. Unlike StaticPrefilter's taint reachability, triage
	// resolves register-indirect (hash-resolved) callsites against the
	// loader image, so it also proves hash-resolving samples harmless.
	// The surface over-approximates every execution's call set, so
	// packs are byte-identical with triage on or off.
	StaticTriage bool
}

// analyzeTestHook, when set, runs at the start of every per-sample
// analysis inside the worker's recovery scope. Tests use it to inject
// deterministic errors and panics into corpus runs.
var analyzeTestHook func(s *malware.Sample) error

// SafeAnalyze runs Analyze with panic containment: a panic anywhere in
// the per-sample analysis is recovered and returned as a *SampleError
// carrying the sample name and the captured stack. Index is recorded
// as -1; corpus runs use their own per-index wrapper.
func (p *Pipeline) SafeAnalyze(s *malware.Sample) (*Result, error) {
	return p.analyzeIsolated(s, -1)
}

// analyzeIsolated is the fault-isolation boundary around one sample.
func (p *Pipeline) analyzeIsolated(s *malware.Sample, index int) (res *Result, err error) {
	defer func() {
		if r := recover(); r != nil {
			res = nil
			err = &SampleError{
				Sample:   s.Name(),
				Index:    index,
				Panicked: true,
				Stack:    debug.Stack(),
				Err:      fmt.Errorf("panic: %v", r),
			}
		}
	}()
	if analyzeTestHook != nil {
		if herr := analyzeTestHook(s); herr != nil {
			return nil, &SampleError{Sample: s.Name(), Index: index, Err: herr}
		}
	}
	res, err = p.Analyze(s)
	if err != nil {
		var se *SampleError
		if !errors.As(err, &se) {
			err = &SampleError{Sample: s.Name(), Index: index, Err: err}
		}
	}
	return res, err
}

// AnalyzeAll analyses a corpus with a bounded worker pool. The pipeline
// is immutable and every execution builds its own environment, so
// samples are embarrassingly parallel; results come back indexed by
// sample, identical to a serial run (workers only change wall-clock
// time, never output — the determinism tests pin this).
//
// workers <= 0 selects GOMAXPROCS. Failures are isolated per sample: a
// panicking or erroring sample yields a nil Result slot while every
// healthy sample's Result is returned, and the error aggregates all
// per-sample failures (errors.Join of *SampleError) ordered by sample
// index — serial and parallel runs report identical errors. An empty
// corpus returns ([]*Result{}, nil).
func (p *Pipeline) AnalyzeAll(samples []*malware.Sample, workers int) ([]*Result, error) {
	results, _, err := p.AnalyzeAllContext(context.Background(), samples, workers)
	return results, err
}

// AnalyzeAllContext is AnalyzeAll with cancellation: workers stop
// picking up new samples once ctx is done (in-flight samples finish),
// so the call returns within one sample-analysis of cancellation with
// partial results, run statistics, and ctx's error joined last.
func (p *Pipeline) AnalyzeAllContext(ctx context.Context, samples []*malware.Sample, workers int) ([]*Result, *RunStats, error) {
	return p.AnalyzeCorpus(ctx, samples, CorpusOptions{Workers: workers})
}

// AnalyzeCorpus is the full-control corpus entry point: bounded
// workers, cancellation, an optional error budget, per-sample fault
// isolation, and run statistics. See the contract at the top of this
// file. The results slice is always len(samples) with nil slots for
// failed or skipped samples.
func (p *Pipeline) AnalyzeCorpus(ctx context.Context, samples []*malware.Sample, opts CorpusOptions) ([]*Result, *RunStats, error) {
	start := time.Now()
	stats := &RunStats{SampleTimes: make([]time.Duration, len(samples))}
	results := make([]*Result, len(samples))
	if len(samples) == 0 {
		stats.Wall = time.Since(start)
		return results, stats, nil
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(samples) {
		workers = len(samples)
	}

	errs := make([]error, len(samples))
	filtered := make([]bool, len(samples))
	triaged := make([]bool, len(samples))
	var failed atomic.Int64
	overBudget := func() bool {
		return opts.MaxErrors > 0 && failed.Load() >= int64(opts.MaxErrors)
	}
	// runOne is shared by the serial and parallel paths so their
	// semantics cannot drift.
	runOne := func(i int) {
		t0 := time.Now()
		if opts.StaticTriage && p.provablyResourceFree(samples[i]) {
			// Phase-0: the recovered API surface holds no resource API,
			// so no execution can even make a resource call. Cheaper and
			// strictly coarser than the taint pre-filter below — it is
			// checked first and counted separately.
			results[i] = &Result{Profile: &Profile{Sample: samples[i]}}
			triaged[i] = true
			stats.SampleTimes[i] = time.Since(t0)
			return
		}
		if opts.StaticPrefilter && p.provablyCandidateFree(samples[i]) {
			// The static pass proved no resource API can reach a
			// predicate: Phase-I would find no candidates, so the
			// emulation is skipped and the sample reports empty.
			results[i] = &Result{Profile: &Profile{Sample: samples[i]}}
			filtered[i] = true
			stats.SampleTimes[i] = time.Since(t0)
			return
		}
		results[i], errs[i] = p.analyzeIsolated(samples[i], i)
		stats.SampleTimes[i] = time.Since(t0)
		if errs[i] != nil {
			failed.Add(1)
		}
	}

	if workers <= 1 {
		for i := range samples {
			if ctx.Err() != nil || overBudget() {
				break
			}
			runOne(i)
		}
	} else {
		// Work distribution by atomic counter: no producer goroutine,
		// no channel to deadlock on — nothing a dying or slow worker
		// can wedge. Workers claim the next index until the corpus is
		// drained, the context is cancelled, or the error budget is
		// exhausted.
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					i := int(next.Add(1)) - 1
					if i >= len(samples) || ctx.Err() != nil || overBudget() {
						return
					}
					runOne(i)
				}
			}()
		}
		wg.Wait()
	}

	var joined []error
	for i := range samples {
		if errs[i] != nil {
			stats.Failed++
			var se *SampleError
			if errors.As(errs[i], &se) && se.Panicked {
				stats.Panicked++
			}
			joined = append(joined, errs[i])
		} else if results[i] != nil {
			stats.Analyzed++
			if filtered[i] {
				stats.StaticallyFiltered++
			}
			if triaged[i] {
				stats.TriageSkipped++
			}
		} else {
			stats.Skipped++
		}
	}
	if err := ctx.Err(); err != nil {
		joined = append(joined, err)
	}
	stats.Wall = time.Since(start)
	return results, stats, errors.Join(joined...)
}
