package core

import (
	"testing"

	"autovac/internal/malware"
)

// TestAnalyzeDeterministic: the pipeline is fully deterministic in its
// seed — two analyses of the same sample produce identical vaccine sets.
func TestAnalyzeDeterministic(t *testing.T) {
	sample := familySample(t, malware.Sality)
	run := func() []string {
		p := New(Config{Seed: 31})
		res, err := p.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, v := range res.Vaccines {
			out = append(out, v.String())
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("vaccine counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("vaccine %d differs:\n%s\n%s", i, a[i], b[i])
		}
	}
	if len(a) == 0 {
		t.Fatal("no vaccines")
	}
}

// TestDifferentSeedsStillFindCoreVaccines: the headline vaccines are not
// seed artifacts.
func TestDifferentSeedsStillFindCoreVaccines(t *testing.T) {
	sample := familySample(t, malware.PoisonIvy)
	for _, seed := range []uint64{1, 99, 12345} {
		p := New(Config{Seed: seed})
		res, err := p.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, v := range res.Vaccines {
			if v.Identifier == "!VoqA.I4" {
				found = true
			}
		}
		if !found {
			t.Errorf("seed %d: !VoqA.I4 vaccine missing", seed)
		}
	}
}

// TestConfigDefaults: zero-value config fields get defaults.
func TestConfigDefaults(t *testing.T) {
	p := New(Config{})
	if p.cfg.Phase1Steps != DefaultPhase1Steps || p.cfg.BDRSteps != DefaultBDRSteps {
		t.Errorf("defaults not applied: %+v", p.cfg)
	}
	if p.cfg.Identity.ComputerName == "" {
		t.Error("identity default not applied")
	}
	if p.Seed() != 0 || p.Identity().ComputerName == "" {
		t.Error("accessors wrong")
	}
	if p.Registry() == nil {
		t.Error("registry accessor nil")
	}
}

// TestMergeOps covers the op-union helper.
func TestMergeOps(t *testing.T) {
	cases := []struct{ a, b, want string }{
		{"open", "create", "open,create"},
		{"open,create", "open", "open,create"},
		{"", "write", "write"},
		{"read", "", "read"},
	}
	for _, tc := range cases {
		if got := mergeOps(tc.a, tc.b); got != tc.want {
			t.Errorf("mergeOps(%q,%q) = %q, want %q", tc.a, tc.b, got, tc.want)
		}
	}
}

// TestPhase1StepBudget: an aggressive step limit truncates profiling
// without error (the paper's 1-minute cap analogue).
func TestPhase1StepBudget(t *testing.T) {
	sample := familySample(t, malware.Conficker)
	p := New(Config{Seed: 3, Phase1Steps: 25})
	prof, err := p.Phase1(sample)
	if err != nil {
		t.Fatal(err)
	}
	if prof.Normal.StepCount > 25 {
		t.Errorf("step budget exceeded: %d", prof.Normal.StepCount)
	}
}
