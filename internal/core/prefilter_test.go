package core

import (
	"context"
	"fmt"
	"testing"

	"autovac/internal/exclusive"
	"autovac/internal/isa"
	"autovac/internal/malware"
	"autovac/internal/static"
	"autovac/internal/vaccine"
)

// crossCheckCorpus is the corpus size the soundness cross-check runs
// over. Big enough to hit every behaviour generator and family mix,
// small enough for a unit test.
const crossCheckCorpus = 64

// TestStaticAnalysisSoundOnCorpus is the soundness cross-check between
// the dynamic Phase-I/II pipeline and the static analyses that
// over-approximate it, on every corpus sample:
//
//  1. every dynamically-confirmed candidate's callsite is statically
//     predicate-reachable (so the pre-filter can never skip a sample
//     that has a candidate), and
//  2. every extracted replay slice's instruction set is contained in
//     the static backward slice of its criterion (so the def-use
//     chains over-approximate the dynamic dependences).
func TestStaticAnalysisSoundOnCorpus(t *testing.T) {
	samples, err := malware.NewGenerator(3).Corpus(crossCheckCorpus)
	if err != nil {
		t.Fatal(err)
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 3)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 3, Index: ix})

	candidateSamples := 0
	slicesChecked := 0
	for _, s := range samples {
		res, err := p.Analyze(s)
		if err != nil {
			t.Fatalf("%s: analyze: %v", s.Name(), err)
		}
		cfg, err := static.BuildCFG(s.Program)
		if err != nil {
			t.Fatalf("%s: BuildCFG: %v", s.Name(), err)
		}
		tf := static.BuildTaintFlow(cfg, p.Registry())

		if len(res.Profile.Candidates) > 0 {
			candidateSamples++
			if !tf.AnyPredicateReachable() {
				t.Errorf("%s: has %d dynamic candidates but the static pre-filter would skip it",
					s.Name(), len(res.Profile.Candidates))
			}
		}
		for _, cand := range res.Profile.Candidates {
			if !tf.PredicateReachable(cand.Call.CallerPC) {
				t.Errorf("%s: candidate %s at pc %d not statically predicate-reachable",
					s.Name(), cand.Call.API, cand.Call.CallerPC)
			}
		}

		var du *static.DefUse
		for _, v := range res.Vaccines {
			if v.Slice == nil || len(v.Slice.PCs) == 0 {
				continue
			}
			if du == nil {
				du = static.BuildDefUse(cfg)
			}
			slicesChecked++
			stat := du.BackwardSlice(v.Slice.CriterionPC)
			for _, pc := range v.Slice.PCs {
				if !stat[pc] {
					t.Errorf("%s: vaccine %s: dynamic slice pc %d outside static backward slice of pc %d",
						s.Name(), v.ID, pc, v.Slice.CriterionPC)
				}
			}
		}
	}
	// The cross-check is vacuous if the corpus produced nothing to
	// compare; guard against a silent regression in the generators.
	if candidateSamples == 0 {
		t.Error("corpus produced no candidate samples — cross-check did not exercise the taint flow")
	}
	if slicesChecked == 0 {
		t.Error("corpus produced no algorithm-deterministic slices — cross-check did not exercise backward slicing")
	}
}

// candidateFreeSample builds a "fire-and-forget dropper": it marks its
// presence in resource namespaces but never branches on any result, so
// Phase-I finds no candidates and the static pre-filter can prove it.
// The stock corpus contains no such samples (every paper behaviour is
// resource-gated), which is exactly why the mixed-workload tests below
// add them by hand.
func candidateFreeSample(t testing.TB, i int) *malware.Sample {
	t.Helper()
	b := isa.NewBuilder(fmt.Sprintf("dropper-%03d", i))
	mu := b.RData("mu", fmt.Sprintf(`Global\DROP-%d`, i))
	// Untainted busywork first, so its compare sees clean data only.
	b.Mov(isa.R(isa.ECX), isa.Imm(uint32(3+i%5))).
		Label("spin").Dec(isa.R(isa.ECX)).
		Jnz("spin")
	// Resource marker whose result is discarded, never compared.
	b.CallAPI("CreateMutexA", isa.Sym(mu))
	b.Mov(isa.R(isa.EAX), isa.Imm(0)).
		Halt()
	p, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return &malware.Sample{
		Spec:    &malware.Spec{Name: p.Name, Category: malware.Worm},
		Program: p,
	}
}

// TestPrefilterSkipsCandidateFreeSamples checks the filter engages on
// a mixed workload: every hand-built candidate-free dropper is skipped,
// every resource-gated sample is still emulated.
func TestPrefilterSkipsCandidateFreeSamples(t *testing.T) {
	samples, err := malware.NewGenerator(5).Corpus(16)
	if err != nil {
		t.Fatal(err)
	}
	const droppers = 8
	for i := 0; i < droppers; i++ {
		samples = append(samples, candidateFreeSample(t, i))
	}
	p := New(Config{Seed: 5})
	results, stats, err := p.AnalyzeCorpus(context.Background(), samples,
		CorpusOptions{StaticPrefilter: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.StaticallyFiltered != droppers {
		t.Errorf("StaticallyFiltered = %d, want %d (the hand-built droppers)",
			stats.StaticallyFiltered, droppers)
	}
	for i, res := range results {
		if res == nil {
			t.Errorf("sample %d: missing result", i)
			continue
		}
		if res.Profile.HasVaccineCandidates() && res.Profile.Normal == nil {
			t.Errorf("%s: skipped sample reported candidates", samples[i].Name())
		}
	}
}

// TestPrefilterPreservesPackExactly runs the same mixed corpus with the
// static pre-filter off and on: vaccine output must be byte-identical
// (the filter only skips provably candidate-free samples), and the
// filtered count must be visible in the run statistics.
func TestPrefilterPreservesPackExactly(t *testing.T) {
	samples, err := malware.NewGenerator(5).Corpus(40)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		samples = append(samples, candidateFreeSample(t, i))
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 5, Index: ix})

	packFor := func(pre bool) (string, *RunStats) {
		results, stats, err := p.AnalyzeCorpus(context.Background(), samples,
			CorpusOptions{StaticPrefilter: pre})
		if err != nil {
			t.Fatalf("AnalyzeCorpus(prefilter=%v): %v", pre, err)
		}
		pack := vaccine.Pack{Generator: "test"}
		for _, res := range results {
			if res != nil {
				pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
			}
		}
		return pack.Digest(), stats
	}

	dynDigest, dynStats := packFor(false)
	preDigest, preStats := packFor(true)
	if dynDigest != preDigest {
		t.Errorf("packs diverged: dynamic %s vs prefiltered %s", dynDigest, preDigest)
	}
	if dynStats.StaticallyFiltered != 0 {
		t.Errorf("dynamic run reported %d statically filtered samples", dynStats.StaticallyFiltered)
	}
	if preStats.StaticallyFiltered != 8 {
		t.Errorf("pre-filter skipped %d samples, want the 8 candidate-free droppers",
			preStats.StaticallyFiltered)
	}
	if preStats.StaticallyFiltered > preStats.Analyzed {
		t.Errorf("StaticallyFiltered %d exceeds Analyzed %d",
			preStats.StaticallyFiltered, preStats.Analyzed)
	}
	if st := preStats.AnalysisStats(); st.StaticallyFiltered != preStats.StaticallyFiltered {
		t.Errorf("AnalysisStats dropped the filtered count: %d vs %d",
			st.StaticallyFiltered, preStats.StaticallyFiltered)
	}
}

// benchmarkPhase1Corpus measures a mixed workload: half the paper's
// resource-gated corpus mix, half fire-and-forget samples the static
// pre-filter can prove candidate-free. On the stock corpus alone the
// filter can skip nothing (every generated behaviour branches on a
// resource result), so the mix is what exposes the trade-off: the
// per-sample static-analysis cost vs the emulation it avoids.
func benchmarkPhase1Corpus(b *testing.B, prefilter bool) {
	samples, err := malware.NewGenerator(11).Corpus(32)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		samples = append(samples, candidateFreeSample(b, i))
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		b.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 11)
	if err != nil {
		b.Fatal(err)
	}
	p := New(Config{Seed: 11, Index: ix})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := p.AnalyzeCorpus(context.Background(), samples,
			CorpusOptions{StaticPrefilter: prefilter})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase1DynamicOnly is the baseline: every sample emulated.
func BenchmarkPhase1DynamicOnly(b *testing.B) { benchmarkPhase1Corpus(b, false) }

// BenchmarkPhase1WithPrefilter skips emulation of samples the static
// taint analysis proves candidate-free.
func BenchmarkPhase1WithPrefilter(b *testing.B) { benchmarkPhase1Corpus(b, true) }
