package core_test

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"testing"

	"autovac/internal/core"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// The emulator's performance layers (predecoded dispatch, sparse taint
// shadows, pooled replay arenas) must not change any observable
// behaviour. These constants were captured by running the identical
// corpus through the pipeline BEFORE those layers existed: the
// composite hash covers every sample's normal trace, candidate list,
// and vaccine fingerprints in analysis order; the pack digest covers
// the generated vaccine set. Any divergence — one reordered access
// record, one different taint decision, one changed slice — changes
// the hashes.
const (
	goldenSeed      = 42
	goldenCorpus    = 64
	goldenComposite = "f183caaccab32106dd1b74ba83758a63143d86716676c695e3d71efd699ec330"
	goldenPackDig   = "6be75ad714da93a1e20a15671b398448b10fdaf51f62a95ee52745e7ccd1b290"
	goldenVaccines  = 137
	goldenCands     = 402
	goldenSlices    = 8
)

func TestGoldenPipelineByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("golden corpus run is slow; skipped with -short")
	}
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, goldenSeed)
	if err != nil {
		t.Fatal(err)
	}
	p := core.New(core.Config{Seed: goldenSeed, Index: ix})
	samples, err := malware.NewGenerator(goldenSeed).Corpus(goldenCorpus)
	if err != nil {
		t.Fatal(err)
	}
	h := sha256.New()
	pack := &vaccine.Pack{Generator: "golden"}
	nCand, nSlice := 0, 0
	for _, s := range samples {
		res, err := p.Analyze(s)
		if err != nil {
			t.Fatalf("analyze %s: %v", s.Program.Name, err)
		}
		b, _ := json.Marshal(res.Profile.Normal)
		h.Write(b)
		b, _ = json.Marshal(res.Profile.Candidates)
		h.Write(b)
		nCand += len(res.Profile.Candidates)
		for _, v := range res.Vaccines {
			h.Write([]byte(v.Fingerprint()))
			if v.Slice != nil {
				nSlice++
			}
		}
		pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
	}
	if got := fmt.Sprintf("%x", h.Sum(nil)); got != goldenComposite {
		t.Errorf("composite hash diverged from seed behaviour:\n got %s\nwant %s", got, goldenComposite)
	}
	if got := pack.Digest(); got != goldenPackDig {
		t.Errorf("pack digest diverged from seed behaviour:\n got %s\nwant %s", got, goldenPackDig)
	}
	if len(pack.Vaccines) != goldenVaccines || nCand != goldenCands || nSlice != goldenSlices {
		t.Errorf("counts diverged: vaccines=%d (want %d) candidates=%d (want %d) slices=%d (want %d)",
			len(pack.Vaccines), goldenVaccines, nCand, goldenCands, nSlice, goldenSlices)
	}
}
