package core

import (
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/exclusive"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// pipelineWithIndex builds a pipeline with a benign index (no clinic,
// for speed; the clinic path is covered separately).
func pipelineWithIndex(t *testing.T) *Pipeline {
	t.Helper()
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 1)
	if err != nil {
		t.Fatal(err)
	}
	return New(Config{Seed: 9, Index: ix})
}

func familySample(t *testing.T, f malware.Family) *malware.Sample {
	t.Helper()
	s, err := malware.NewGenerator(1).FamilySample(f)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func findVaccine(vs []vaccine.Vaccine, kind winenv.ResourceKind, ident string) *vaccine.Vaccine {
	for i := range vs {
		if vs[i].Resource == kind && strings.EqualFold(vs[i].Identifier, ident) {
			return &vs[i]
		}
	}
	return nil
}

func TestPhase1FlagsResourceSensitiveSample(t *testing.T) {
	p := New(Config{Seed: 9})
	prof, err := p.Phase1(familySample(t, malware.PoisonIvy))
	if err != nil {
		t.Fatal(err)
	}
	if !prof.HasVaccineCandidates() {
		t.Fatal("PoisonIvy not flagged")
	}
	if prof.ResourceOccurrences == 0 || prof.SensitiveOccurrences == 0 {
		t.Errorf("occurrences = %d/%d", prof.SensitiveOccurrences, prof.ResourceOccurrences)
	}
	if prof.SensitiveOccurrences > prof.ResourceOccurrences {
		t.Error("sensitive > total")
	}
	// The marker mutex probe is among the candidates.
	found := false
	for _, c := range prof.Candidates {
		if c.Call.API == "OpenMutexA" && c.Call.Identifier == "!VoqA.I4" {
			found = true
		}
	}
	if !found {
		t.Errorf("!VoqA.I4 probe not a candidate: %+v", prof.Candidates)
	}
}

func TestPhase1InsensitiveSampleNotFlagged(t *testing.T) {
	spec := &malware.Spec{Name: "insensitive", Category: malware.Downloader,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehPersistRun, ID: `C:\x.exe`, Aux: "x", Unchecked: true},
			{Kind: malware.BehNetworkCC, ID: "cc.example", Aux: "80", Count: 1, Unchecked: true},
		}}
	prog := malware.MustEmit(spec)
	s := &malware.Sample{Spec: spec, Program: prog}
	p := New(Config{Seed: 9})
	prof, err := p.Phase1(s)
	if err != nil {
		t.Fatal(err)
	}
	if prof.HasVaccineCandidates() {
		t.Errorf("insensitive sample flagged: %+v", prof.Candidates)
	}
	if prof.ResourceOccurrences == 0 {
		t.Error("no resource occurrences counted")
	}
}

func TestAnalyzeZeus(t *testing.T) {
	p := pipelineWithIndex(t)
	res, err := p.Analyze(familySample(t, malware.Zeus))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vaccines) < 3 {
		t.Fatalf("Zeus vaccines = %d, want >= 3:\n%+v\nrejected: %+v",
			len(res.Vaccines), res.Vaccines, res.Rejected)
	}

	// sdra64.exe: full immunization file vaccine (Table III seq 10).
	file := findVaccine(res.Vaccines, winenv.KindFile, `C:\Windows\system32\sdra64.exe`)
	if file == nil {
		t.Fatal("sdra64.exe vaccine missing")
	}
	if file.Effect != impact.Full {
		t.Errorf("sdra64 effect = %v, want Full", file.Effect)
	}
	if file.Class != determinism.Static || file.Delivery != vaccine.DirectInjection {
		t.Errorf("sdra64 class/delivery = %v/%v", file.Class, file.Delivery)
	}

	// _AVIRA_2109: partial immunization mutex vaccine (Table VI).
	mtx := findVaccine(res.Vaccines, winenv.KindMutex, "_AVIRA_2109")
	if mtx == nil {
		t.Fatal("_AVIRA_2109 vaccine missing")
	}
	if mtx.Effect == impact.Full || mtx.Effect == impact.NoImmunization {
		t.Errorf("_AVIRA_2109 effect = %v, want partial", mtx.Effect)
	}
	if mtx.Polarity != vaccine.SimulatePresence {
		t.Errorf("_AVIRA_2109 polarity = %v", mtx.Polarity)
	}
}

func TestAnalyzeConfickerAlgorithmic(t *testing.T) {
	p := pipelineWithIndex(t)
	res, err := p.Analyze(familySample(t, malware.Conficker))
	if err != nil {
		t.Fatal(err)
	}
	var algo *vaccine.Vaccine
	for i := range res.Vaccines {
		if res.Vaccines[i].Resource == winenv.KindMutex &&
			res.Vaccines[i].Class == determinism.AlgorithmDeterministic {
			algo = &res.Vaccines[i]
		}
	}
	if algo == nil {
		t.Fatalf("no algorithm-deterministic mutex vaccine; got %+v (rejected %+v)",
			res.Vaccines, res.Rejected)
	}
	if algo.Slice == nil {
		t.Fatal("algorithmic vaccine without slice")
	}
	if algo.Delivery != vaccine.VaccineDaemon {
		t.Errorf("delivery = %v", algo.Delivery)
	}
	// The slice regenerates the per-host name on a foreign host.
	other := winenv.DefaultIdentity()
	other.ComputerName = "BRANCH-POS-9"
	got, err := algo.Slice.Replay(winenv.New(other), 1)
	if err != nil {
		t.Fatal(err)
	}
	if got != `Global\BRANCH-POS-9-7` {
		t.Errorf("cross-host replay = %q", got)
	}
}

func TestAnalyzePoisonIvyFullMarker(t *testing.T) {
	p := pipelineWithIndex(t)
	res, err := p.Analyze(familySample(t, malware.PoisonIvy))
	if err != nil {
		t.Fatal(err)
	}
	mtx := findVaccine(res.Vaccines, winenv.KindMutex, "!VoqA.I4")
	if mtx == nil {
		t.Fatalf("!VoqA.I4 vaccine missing; got %+v", res.Vaccines)
	}
	if mtx.Effect != impact.Full {
		t.Errorf("effect = %v, want Full", mtx.Effect)
	}
}

func TestCollidingIdentifierRejectedByExclusiveness(t *testing.T) {
	p := pipelineWithIndex(t)
	spec := &malware.Spec{Name: "collider", Category: malware.Backdoor,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "MSCTF.Shared.MUTEX.001"},
			{Kind: malware.BehNetworkCC, ID: "cc.example", Aux: "80", Count: 1},
		}}
	s := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
	res, err := p.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if findVaccine(res.Vaccines, winenv.KindMutex, "MSCTF.Shared.MUTEX.001") != nil {
		t.Fatal("benign-colliding mutex became a vaccine")
	}
	found := false
	for _, r := range res.Rejected {
		if r.Stage == "exclusiveness" {
			found = true
		}
	}
	if !found {
		t.Errorf("no exclusiveness rejection recorded: %+v", res.Rejected)
	}
}

func TestRandomIdentifierRejectedByDeterminism(t *testing.T) {
	p := New(Config{Seed: 9})
	spec := &malware.Spec{Name: "rndtemp", Category: malware.Downloader,
		Behaviors: []malware.Behavior{{Kind: malware.BehRandomTemp}}}
	s := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
	res, err := p.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Vaccines {
		if strings.Contains(v.Identifier, `C:\Temp\mal`) {
			t.Fatalf("random temp identifier became a vaccine: %+v", v)
		}
	}
}

func TestPartialStaticVaccineGeneration(t *testing.T) {
	p := pipelineWithIndex(t)
	spec := &malware.Spec{Name: "pworm2", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "GTSKI"},
			{Kind: malware.BehNetworkCC, ID: "w.example", Aux: "445", Count: 2},
		}}
	s := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
	res, err := p.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	var ps *vaccine.Vaccine
	for i := range res.Vaccines {
		if res.Vaccines[i].Class == determinism.PartialStatic {
			ps = &res.Vaccines[i]
		}
	}
	if ps == nil {
		t.Fatalf("no partial-static vaccine; got %+v (rejected %+v)", res.Vaccines, res.Rejected)
	}
	if !strings.HasPrefix(ps.Pattern, "GTSKI-") || !strings.Contains(ps.Pattern, "*") {
		t.Errorf("pattern = %q", ps.Pattern)
	}
	if ps.Delivery != vaccine.VaccineDaemon {
		t.Errorf("delivery = %v", ps.Delivery)
	}
}

func TestVaccineMergingCombinesOps(t *testing.T) {
	// IBank checks AND creates dwdsregt.exe: one merged vaccine with
	// both operations (Table III's "C,E,R" style).
	p := pipelineWithIndex(t)
	res, err := p.Analyze(familySample(t, malware.IBank))
	if err != nil {
		t.Fatal(err)
	}
	v := findVaccine(res.Vaccines, winenv.KindFile, `C:\Windows\system32\dwdsregt.exe`)
	if v == nil {
		t.Fatalf("dwdsregt.exe vaccine missing; got %+v", res.Vaccines)
	}
	if !strings.Contains(v.Op, "query") || !strings.Contains(v.Op, "create") {
		t.Errorf("merged ops = %q, want query+create", v.Op)
	}
	if v.Effect != impact.Full {
		t.Errorf("effect = %v", v.Effect)
	}
}

func TestEndToEndImmunization(t *testing.T) {
	// The generated vaccines actually immunize a fresh host.
	p := pipelineWithIndex(t)
	s := familySample(t, malware.PoisonIvy)
	res, err := p.Analyze(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vaccines) == 0 {
		t.Fatal("no vaccines")
	}
	host := winenv.New(winenv.DefaultIdentity())
	d := p.NewDaemonFor(host)
	for _, v := range res.Vaccines {
		if err := d.Install(v); err != nil {
			t.Fatalf("deploy %s: %v", v.ID, err)
		}
	}
	bdr, err := p.MeasureBDR(s, &res.Vaccines[0])
	if err != nil {
		t.Fatal(err)
	}
	if bdr <= 0 {
		t.Errorf("BDR = %v, want > 0", bdr)
	}
}

func TestClinicIntegration(t *testing.T) {
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Clinic with a small suite to keep the test fast.
	p := New(Config{Seed: 9, Index: ix, Benign: benign[:6]})
	res, err := p.Analyze(familySample(t, malware.Zeus))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Vaccines) == 0 {
		t.Fatalf("clinic rejected everything: %+v", res.ClinicRejections)
	}
}
