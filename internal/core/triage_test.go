package core

import (
	"context"
	"strings"
	"testing"

	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/static"
	"autovac/internal/vaccine"
)

// triageCorpus is the mixed workload the triage tests run on: the
// stock corpus (every behaviour resource-gated, nothing skippable)
// plus the three hash-resolving bands, of which exactly the hashtick
// band is provably resource-free.
func triageCorpus(t testing.TB, seed int64, stock, perBand int) []*malware.Sample {
	t.Helper()
	g := malware.NewGenerator(seed)
	samples, err := g.Corpus(stock)
	if err != nil {
		t.Fatal(err)
	}
	hr, err := g.HashResolveCorpus(perBand)
	if err != nil {
		t.Fatal(err)
	}
	return append(samples, hr...)
}

// TestAPISurfaceSoundOnCorpus pins the Phase-0 soundness relation on
// every sample of the mixed corpus: the set of APIs the emulator
// actually invokes is contained in the statically recovered surface,
// or the surface is ⊤ (in which case Contains admits everything and
// triage never skips). This is the property that makes skipping safe:
// no surface API resource-labelled ⇒ no dynamic resource call ⇒ no
// candidate ⇒ no vaccine.
func TestAPISurfaceSoundOnCorpus(t *testing.T) {
	samples := triageCorpus(t, 3, crossCheckCorpus, 4)
	p := New(Config{Seed: 3})

	bounded, resolved := 0, 0
	for _, s := range samples {
		res, err := p.Analyze(s)
		if err != nil {
			t.Fatalf("%s: analyze: %v", s.Name(), err)
		}
		surf, err := static.RecoverAPISurface(s.Program)
		if err != nil {
			t.Fatalf("%s: RecoverAPISurface: %v", s.Name(), err)
		}
		if !surf.Top {
			bounded++
		}
		for _, c := range res.Profile.Normal.Calls {
			if !surf.Contains(c.API) {
				t.Errorf("%s: emulator called %s at pc %d but the recovered surface %v omits it",
					s.Name(), c.API, c.CallerPC, surf.APIs)
			}
		}
		if strings.HasPrefix(s.Name(), "hash") {
			resolved++
			if surf.Top {
				t.Errorf("%s: hash-resolving sample degraded to ⊤ — the export-walk interpretation regressed", s.Name())
			}
		}
	}
	if bounded == 0 {
		t.Error("no sample got a bounded surface — the pass always answers ⊤")
	}
	if resolved == 0 {
		t.Error("corpus contained no hash-resolving samples — the indirect-call path went unexercised")
	}
}

// TestTriageSkipsResourceFreeSamples checks the Phase-0 skip engages
// on exactly the provable population: every hashtick sample (its
// surface holds only GetTickCount/ExitProcess/CloseHandle) is skipped,
// every resource-touching sample — including the hash-resolving mutex
// and file bands, whose resource APIs appear in no instruction — is
// still emulated.
func TestTriageSkipsResourceFreeSamples(t *testing.T) {
	const perBand = 6
	samples := triageCorpus(t, 5, 16, perBand)
	p := New(Config{Seed: 5})
	results, stats, err := p.AnalyzeCorpus(context.Background(), samples,
		CorpusOptions{StaticTriage: true})
	if err != nil {
		t.Fatal(err)
	}
	if stats.TriageSkipped != perBand {
		t.Errorf("TriageSkipped = %d, want %d (the hashtick band)", stats.TriageSkipped, perBand)
	}
	for i, res := range results {
		if res == nil {
			t.Errorf("sample %d: missing result", i)
			continue
		}
		skipped := res.Profile.Normal == nil
		isTick := strings.HasPrefix(samples[i].Name(), "hashtick")
		if skipped != isTick {
			t.Errorf("%s: skipped=%v, want %v", samples[i].Name(), skipped, isTick)
		}
	}
}

// TestTriagePreservesPackExactly runs the same mixed corpus with
// triage off and on: vaccine output must be byte-identical, and the
// skip count must survive into the portable AnalysisStats.
func TestTriagePreservesPackExactly(t *testing.T) {
	const perBand = 4
	samples := triageCorpus(t, 5, 32, perBand)
	benign, err := malware.BenignCorpus()
	if err != nil {
		t.Fatal(err)
	}
	ix, err := exclusive.BuildIndex(benign, 5)
	if err != nil {
		t.Fatal(err)
	}
	p := New(Config{Seed: 5, Index: ix})

	packFor := func(triage bool) (string, *RunStats) {
		results, stats, err := p.AnalyzeCorpus(context.Background(), samples,
			CorpusOptions{StaticTriage: triage})
		if err != nil {
			t.Fatalf("AnalyzeCorpus(triage=%v): %v", triage, err)
		}
		pack := vaccine.Pack{Generator: "test"}
		for _, res := range results {
			if res != nil {
				pack.Vaccines = append(pack.Vaccines, res.Vaccines...)
			}
		}
		return pack.Digest(), stats
	}

	offDigest, offStats := packFor(false)
	onDigest, onStats := packFor(true)
	if offDigest != onDigest {
		t.Errorf("packs diverged: dynamic %s vs triaged %s", offDigest, onDigest)
	}
	if offStats.TriageSkipped != 0 {
		t.Errorf("dynamic run reported %d triage-skipped samples", offStats.TriageSkipped)
	}
	if onStats.TriageSkipped != perBand {
		t.Errorf("triage skipped %d samples, want the %d hashtick samples", onStats.TriageSkipped, perBand)
	}
	if st := onStats.AnalysisStats(); st.TriageSkipped != onStats.TriageSkipped {
		t.Errorf("AnalysisStats dropped the triage count: %d vs %d",
			st.TriageSkipped, onStats.TriageSkipped)
	}
}

// benchmarkTriageCorpus measures the mixed workload with and without
// Phase-0. The hashtick band's stalling spins make its emulation the
// dominant cost, so triage wins exactly when the surface pass is
// cheaper than the emulation it avoids.
func benchmarkTriageCorpus(b *testing.B, triage bool) {
	samples := triageCorpus(b, 11, 16, 16)
	p := New(Config{Seed: 11})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _, err := p.AnalyzeCorpus(context.Background(), samples,
			CorpusOptions{StaticTriage: triage})
		if err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPhase0TriageBaseline is the no-triage baseline: every
// sample emulated, including the provably pointless ones.
func BenchmarkPhase0TriageBaseline(b *testing.B) { benchmarkTriageCorpus(b, false) }

// BenchmarkPhase0Triage skips emulation of samples whose recovered API
// surface holds no resource API.
func BenchmarkPhase0Triage(b *testing.B) { benchmarkTriageCorpus(b, true) }
