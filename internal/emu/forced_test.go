package emu

import (
	"testing"

	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// dormantSample gates its payload behind a required-library check: on a
// host without the library the payload never runs (dormant behaviour).
func dormantSample() *isa.Program {
	b := isa.NewBuilder("dormant")
	b.RData("lib", "corpvpn.dll")
	b.RData("cc", "cc.example")
	b.CallAPI("LoadLibraryA", isa.Sym("lib"))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jz("bail").Comment("required dependency missing")
	b.CallAPI("gethostbyname", isa.Sym("cc"))
	b.Halt()
	b.Label("bail")
	b.CallAPI("ExitProcess", isa.Imm(2))
	return b.MustBuild()
}

// findConditionalPC returns the PC of the first conditional jump.
func findConditionalPC(p *isa.Program) int {
	for i, in := range p.Instrs {
		if in.Op == isa.JZ || in.Op == isa.JNZ || in.Op == isa.JL || in.Op == isa.JGE {
			return i
		}
	}
	return -1
}

func TestForcedExecutionRevealsDormantPayload(t *testing.T) {
	prog := dormantSample()

	// Natural run on a host without the library: the sample bails and
	// the payload stays dormant.
	natural, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if natural.Exit != trace.ExitProcess || len(natural.CallsTo("gethostbyname")) != 0 {
		t.Fatalf("natural run: exit %v, net calls %d", natural.Exit, len(natural.CallsTo("gethostbyname")))
	}

	// Forced execution inverts the dependency branch: the dormant C&C
	// behaviour becomes observable without installing the library.
	pc := findConditionalPC(prog)
	if pc < 0 {
		t.Fatal("no conditional found")
	}
	forced, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{
		Seed: 1, InvertBranches: []int{pc},
	})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Exit != trace.ExitHalt {
		t.Fatalf("forced run exit = %v (fault %q)", forced.Exit, forced.Fault)
	}
	if len(forced.CallsTo("gethostbyname")) == 0 {
		t.Error("dormant payload not revealed under forced execution")
	}
}

func TestForcedExecutionAgreesWithAPIMutation(t *testing.T) {
	// Forcing the branch and forcing the API result are two routes to
	// the same observation (the paper's §VIII: "our enforced execution
	// ... focuses on these environment/system resource sensitive
	// branches").
	prog := dormantSample()
	pc := findConditionalPC(prog)

	viaBranch, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{
		Seed: 1, InvertBranches: []int{pc},
	})
	if err != nil {
		t.Fatal(err)
	}
	viaMutation, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{
		Seed: 1, Mutations: []Mutation{{
			API: "LoadLibraryA", CallerPC: -1, Identifier: "corpvpn.dll", Mode: ForceSuccess,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if viaBranch.Exit != viaMutation.Exit {
		t.Errorf("exits differ: %v vs %v", viaBranch.Exit, viaMutation.Exit)
	}
	if len(viaBranch.CallsTo("gethostbyname")) != len(viaMutation.CallsTo("gethostbyname")) {
		t.Error("payload coverage differs between branch forcing and API mutation")
	}
}

func TestForcedExecutionParityAcrossTiers(t *testing.T) {
	// The forced-execution hook bails out of tier-2 entirely (branch
	// inversion needs per-step control), so DisableBlocks must be a
	// no-op under InvertBranches: identical traces with the knob on and
	// off, and identical to the natural-run divergence point.
	prog := dormantSample()
	pc := findConditionalPC(prog)
	opts := Options{Seed: 1, InvertBranches: []int{pc}}

	withBlocks, err := Run(prog, winenv.New(winenv.DefaultIdentity()), opts)
	if err != nil {
		t.Fatal(err)
	}
	stepOpts := opts
	stepOpts.DisableBlocks = true
	stepwise, err := Run(prog, winenv.New(winenv.DefaultIdentity()), stepOpts)
	if err != nil {
		t.Fatal(err)
	}
	if traceJSON(t, withBlocks) != traceJSON(t, stepwise) {
		t.Error("forced execution diverges between tiers")
	}
	if withBlocks.Exit != trace.ExitHalt || len(withBlocks.CallsTo("gethostbyname")) == 0 {
		t.Error("forced execution lost the dormant payload under default (blocks-enabled) options")
	}
}

func TestInvertBranchOnlyNamedPC(t *testing.T) {
	// Inverting an unrelated PC leaves the target branch alone.
	prog := dormantSample()
	forced, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{
		Seed: 1, InvertBranches: []int{9999},
	})
	if err != nil {
		t.Fatal(err)
	}
	if forced.Exit != trace.ExitProcess {
		t.Errorf("unrelated inversion changed behaviour: %v", forced.Exit)
	}
}
