package emu

import (
	"fmt"

	"autovac/internal/isa"
	"autovac/internal/taint"
	"autovac/internal/trace"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// callAPI executes one CALLAPI instruction.
func (c *CPU) callAPI(pc int, in *dInstr) (int, error) {
	return c.callAPINamed(pc, in.api, in.nArgs)
}

// callAPINamed executes one API call — direct (CALLAPI) or resolved
// from a register (CALLAPIR, whose dispatcher looks the name up via the
// loader's address→API binding before landing here): argument
// collection from the stack, identifier resolution (direct or via the
// handle map), taint source allocation, mutation (impact analysis),
// implementation dispatch, taint application per the API's label, call
// logging with calling context, and the stdcall argument pop. It
// returns the APICall's sequence number. Both call forms share this
// path, so a hash-resolved call is observed, tainted, and mutable
// exactly like a direct one.
func (c *CPU) callAPINamed(pc int, api string, nArgs int) (int, error) {
	spec, ok := c.registry.Lookup(api)
	if !ok {
		return -1, fmt.Errorf("emu: unknown API %q at pc %d", api, pc)
	}
	if spec.NArgs != winapi.Variadic && spec.NArgs != nArgs {
		return -1, fmt.Errorf("emu: %s expects %d args, call site passes %d (pc %d)",
			api, spec.NArgs, nArgs, pc)
	}

	// Collect stack arguments ([esp] is the first).
	args := make([]winapi.Arg, nArgs)
	esp := c.reg[isa.ESP]
	for i := 0; i < nArgs; i++ {
		addr := esp + uint32(4*i)
		v, t, err := c.mem.readWord(addr)
		if err != nil {
			return -1, err
		}
		c.noteRead(trace.MemLoc(addr, 4), v, nil)
		args[i] = winapi.Arg{Value: v, Taint: t}
	}

	label := spec.Label

	// Resolve the resource identifier before dispatch so mutations can
	// match on it.
	identifier := ""
	var identAddr uint32
	identInMemory := false
	if label.Resource.Valid() && label.IdentifierArg >= 0 && label.IdentifierArg < len(args) {
		if label.IdentifierViaHandle {
			if _, name, ok := c.env.HandleName(winenv.Handle(args[label.IdentifierArg].Value)); ok {
				identifier = name
				// Registry value APIs address "<key>\<value>".
				if label.ValueNameArg > 0 && label.ValueNameArg < len(args) {
					if vn, _, err := c.ReadCString(args[label.ValueNameArg].Value); err == nil {
						identifier = name + `\` + vn
					}
				}
			}
		} else {
			s, _, err := c.ReadCString(args[label.IdentifierArg].Value)
			if err != nil {
				return -1, err
			}
			identifier = s
			identAddr = args[label.IdentifierArg].Value
			identInMemory = true
		}
	}

	// Allocate the taint label for source APIs.
	hasSource := label.Resource.Valid() || label.Class != winapi.ClassNone
	var src taint.Set
	var srcID taint.Source
	if hasSource {
		srcID = c.table.Reserve()
		src = taint.Of(srcID)
		// Taint now exists somewhere in the machine: retire the
		// all-untainted compiled fast path for the rest of the run.
		// (Sources are the only way taint enters; propagation and
		// clearing never create labels.)
		c.liveTaint = true
	}

	// Dispatch, or force the result when a mutation matches.
	var out winapi.Outcome
	mutated := false
	if mu := c.findMutation(api, pc, identifier); mu != nil {
		mutated = true
		out = c.applyMutation(label, *mu, args, src)
	} else {
		var err error
		out, err = spec.Impl(c, args, src)
		if err != nil {
			return -1, err
		}
	}

	op := label.Op
	if out.OpOverride.Valid() {
		op = out.OpOverride
	}
	if out.Identifier != "" {
		identifier = out.Identifier
		identInMemory = false
	}
	if hasSource {
		info := taint.SourceInfo{
			API:      api,
			CallerPC: pc,
			Seq:      c.apiSeq,
			Success:  out.Success,
			Class:    label.Class.String(),
		}
		if label.Resource.Valid() {
			info.ResourceKind = label.Resource.String()
			info.Identifier = identifier
			info.Op = op.String()
		}
		c.table.Fill(srcID, info)
	}

	// Return value and its taint. TaintArg APIs (RegOpenKeyEx-style)
	// taint both the out-argument (done by the implementation) and the
	// status in EAX: callers branch on either.
	retTaint := out.RetTaint
	if hasSource && label.Taint != winapi.TaintNone {
		retTaint = retTaint.Union(src)
	}
	if api == "GetLastError" {
		// The error code's provenance is the call that set it, so
		// error-handling branches register as tainted predicates.
		retTaint = retTaint.Union(c.lastErrTaint)
	}
	c.reg[isa.EAX] = out.Ret
	c.regTaint[isa.EAX] = retTaint
	c.noteWrite(trace.RegLoc(isa.EAX), out.Ret, nil)

	// Failure provenance for subsequent GetLastError reads.
	if label.Resource.Valid() {
		c.lastErrTaint = src
	}

	// Build the call record with calling context.
	call := trace.APICall{
		Seq:       c.apiSeq,
		API:       api,
		CallerPC:  pc,
		CallStack: append([]int(nil), c.callStack...),
		Ret:       out.Ret,
		LastError: uint32(c.env.LastError()),
		Success:   out.Success,
		Mutated:   mutated,
	}
	if label.Resource.Valid() {
		call.ResourceKind = label.Resource.String()
		call.Identifier = identifier
		call.Op = op.String()
	}
	if hasSource {
		call.TaintSources = []taint.Source{srcID}
	}
	call.Args = c.logArgs(label, args)
	if identInMemory && identifier != "" && !mutated {
		if taints, err := c.mem.byteTaints(identAddr, uint32(len(identifier))); err == nil {
			perByte := make([][]taint.Source, len(taints))
			for i, t := range taints {
				perByte[i] = t.Sources()
			}
			call.IdentifierTaint = perByte
		}
	}
	c.tr.Calls = append(c.tr.Calls, call)
	seq := c.apiSeq
	c.apiSeq++

	// stdcall: the callee pops its arguments.
	c.reg[isa.ESP] = esp + uint32(4*nArgs)

	// Self-termination.
	if out.Exit != winapi.ExitNone {
		c.done = true
		c.exitKind = trace.ExitProcess
		c.exitCode = out.ExitCode
	}
	return seq, nil
}

// logArgs renders the argument list for the call record, resolving
// string arguments and marking the statically comparable ones.
func (c *CPU) logArgs(label winapi.Label, args []winapi.Arg) []trace.ArgValue {
	if len(args) == 0 {
		return nil
	}
	isStatic := make(map[int]bool, len(label.StaticArgs))
	for _, i := range label.StaticArgs {
		isStatic[i] = true
	}
	isStr := make(map[int]bool, len(label.StrArgs))
	for _, i := range label.StrArgs {
		isStr[i] = true
	}
	out := make([]trace.ArgValue, len(args))
	for i, a := range args {
		av := trace.ArgValue{
			Raw:     a.Value,
			Static:  isStatic[i],
			Tainted: !a.Taint.Empty(),
		}
		if isStr[i] {
			if s, _, err := c.mem.readCString(a.Value); err == nil {
				av.Str = s
			}
		}
		out[i] = av
	}
	return out
}

// findMutation returns the first mutation matching this call occurrence.
func (c *CPU) findMutation(api string, callerPC int, identifier string) *Mutation {
	for i := range c.opts.Mutations {
		if c.opts.Mutations[i].matches(api, callerPC, identifier) {
			return &c.opts.Mutations[i]
		}
	}
	return nil
}

// applyMutation produces the forced outcome for a matched call without
// performing the API's side effects — the paper's controlled-environment
// re-run that "mutates the return value or involved arguments" (§IV-B).
func (c *CPU) applyMutation(label winapi.Label, mu Mutation, args []winapi.Arg, src taint.Set) winapi.Outcome {
	switch mu.Mode {
	case ForceSuccess, ForceAlreadyExists:
		if mu.Mode == ForceAlreadyExists {
			c.env.SetLastError(winenv.ErrAlreadyExists)
		} else {
			c.env.SetLastError(winenv.ErrSuccess)
		}
		if label.Taint == winapi.TaintArg &&
			label.TaintArgIndex >= 0 && label.TaintArgIndex < len(args) {
			// Plant a plausible handle in the out-argument.
			_ = c.WriteWord(args[label.TaintArgIndex].Value, 0x00DD0008, src)
		}
		return winapi.Outcome{Ret: label.SuccessRet, Success: true}
	default: // ForceFailure
		c.env.SetLastError(label.FailureErr)
		return winapi.Outcome{Ret: label.FailureRet, Success: false}
	}
}
