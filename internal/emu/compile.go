package emu

import (
	"fmt"

	"autovac/internal/isa"
	"autovac/internal/taint"
	"autovac/internal/trace"
)

// Tier-2 execution: at predecode time the basic-block partition
// (isa.Program.BlockSpans — the same leader rule static.BuildCFG uses)
// carves each program into straight-line runs, and every run is fused
// into a slice of per-instruction closures executed back-to-back with no
// opcode or operand-kind dispatch. Each run is compiled twice:
//
//   - a taint-aware variant that matches step() exactly (taint unions,
//     tainted-predicate recording, the xor-clear idiom);
//   - an all-untainted fast variant used while the CPU has never
//     allocated a taint source (CPU.liveTaint). Taint enters the system
//     only through CALLAPI source allocation, and runs never contain a
//     CALLAPI, so the invariant cannot break mid-run.
//
// Execution bails back to the tier-1 step-wise loop whenever fidelity
// needs it: step recording (per-step access logs), forced execution
// (branch inversion), an API call boundary (runs are split at every
// CALLAPI and CALLAPIR), a run that does not fit the remaining step
// budget, or
// Options.DisableBlocks. The two tiers are byte-identical — pinned by
// the trace-parity tests here and the corpus golden hash in core.

// opFn executes one fused instruction. Straight-line instructions leave
// c.pc stale (the run sets it on exit); control transfers set c.pc
// themselves.
type opFn func(c *CPU) error

// compiledRun is one CALLAPI-free straight-line run of a basic block,
// fused into direct-threaded closure slices.
type compiledRun struct {
	// n is the number of fused instructions (StepCount charge).
	n int
	// slow is the taint-aware body; fast assumes a taint-free machine.
	slow, fast []opFn
	// fall is the pc execution continues at when the last instruction
	// is not a control transfer; -1 when the last opFn sets c.pc.
	fall int
}

// runCompiled executes one fused run. StepCount is charged up front and
// corrected on the (cold) fault path so the count matches step-wise
// execution exactly: the faulting instruction is counted, the rest of
// the run is not.
func (c *CPU) runCompiled(r *compiledRun) error {
	fns := r.slow
	if !c.liveTaint {
		fns = r.fast
	}
	c.tr.StepCount += r.n
	for i, f := range fns {
		if err := f(c); err != nil {
			c.tr.StepCount -= r.n - (i + 1)
			return err
		}
	}
	if r.fall >= 0 {
		c.pc = r.fall
	}
	return nil
}

// compileRuns builds the per-pc table of compiled runs: an entry at
// every run start (block leader or post-CALLAPI resume point), nil
// elsewhere. A nil table (or a nil entry where a run failed to compile)
// degrades to step-wise execution, never to an error: tier-2 is an
// optimisation, not a semantics change.
func compileRuns(p *isa.Program, d *decoded) []*compiledRun {
	spans := p.BlockSpans() // predecode already validated p
	runs := make([]*compiledRun, len(d.instrs))
	for _, sp := range spans {
		start := sp.Start
		for pc := sp.Start; pc < sp.End; pc++ {
			if op := d.instrs[pc].op; op == isa.CALLAPI || op == isa.CALLAPIR {
				if pc > start {
					runs[start] = compileRun(d, start, pc)
				}
				start = pc + 1
			}
		}
		if sp.End > start {
			runs[start] = compileRun(d, start, sp.End)
		}
	}
	return runs
}

// compileRun fuses instructions [start, end) into one run, or returns
// nil if any instruction is outside the compilable set.
func compileRun(d *decoded, start, end int) *compiledRun {
	r := &compiledRun{n: end - start, fall: end}
	for pc := start; pc < end; pc++ {
		slow, fast, setsPC := compileInstr(&d.instrs[pc], pc)
		if slow == nil || fast == nil {
			return nil
		}
		r.slow = append(r.slow, slow)
		r.fast = append(r.fast, fast)
		if setsPC {
			r.fall = -1
		}
	}
	return r
}

// compileInstr builds the two closure variants of one instruction.
// setsPC reports that the closures assign c.pc (control transfers,
// always the run's last instruction). A nil return marks the
// instruction uncompilable.
func compileInstr(in *dInstr, pc int) (slow, fast opFn, setsPC bool) {
	switch in.op {
	case isa.NOP:
		f := func(*CPU) error { return nil }
		return f, f, false

	case isa.MOV:
		return compileMov(in)

	case isa.MOVB:
		return compileMovb(in)

	case isa.LEA:
		return compileLea(in)

	case isa.PUSH:
		ld, ldf := loadSlow(in.dst), loadFast(in.dst)
		if ld == nil || ldf == nil {
			return nil, nil, false
		}
		slow = func(c *CPU) error {
			v, t, err := ld(c)
			if err != nil {
				return err
			}
			return c.push(v, t)
		}
		fast = func(c *CPU) error {
			v, err := ldf(c)
			if err != nil {
				return err
			}
			return c.push(v, taint.Set{})
		}
		return slow, fast, false

	case isa.POP:
		st, stf := storeSlow(in.dst), storeFast(in.dst)
		if st == nil || stf == nil {
			return nil, nil, false
		}
		slow = func(c *CPU) error {
			v, t, err := c.pop()
			if err != nil {
				return err
			}
			return st(c, v, t)
		}
		fast = func(c *CPU) error {
			v, _, err := c.pop()
			if err != nil {
				return err
			}
			return stf(c, v)
		}
		return slow, fast, false

	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		return compileALU(in)

	case isa.INC, isa.DEC:
		return compileIncDec(in)

	case isa.CMP, isa.TEST:
		return compileCmpTest(in, pc)

	case isa.JMP:
		target := in.target
		f := func(c *CPU) error { c.pc = target; return nil }
		return f, f, true

	case isa.JZ, isa.JNZ, isa.JL, isa.JGE:
		f := compileJcc(in.op, in.target, pc+1)
		return f, f, true

	case isa.CALL:
		target := in.target
		ret := pc + 1
		f := func(c *CPU) error {
			if err := c.push(uint32(ret), taint.Set{}); err != nil {
				return err
			}
			c.callStack = append(c.callStack, ret)
			c.pc = target
			return nil
		}
		return f, f, true

	case isa.RET:
		f := func(c *CPU) error {
			v, _, err := c.pop()
			if err != nil {
				return err
			}
			if len(c.callStack) == 0 {
				return fmt.Errorf("emu: ret with empty call stack at pc %d", pc)
			}
			c.callStack = c.callStack[:len(c.callStack)-1]
			c.pc = int(v)
			return nil
		}
		return f, f, true

	case isa.HALT:
		next := pc + 1
		f := func(c *CPU) error {
			c.done = true
			c.exitKind = trace.ExitHalt
			c.pc = next
			return nil
		}
		return f, f, true

	default:
		// CALLAPI/CALLAPIR never reach here (runs are split around
		// them); anything else is unknown and stays step-wise.
		return nil, nil, false
	}
}

// compileMov fuses MOV, with direct register/immediate specialisations
// on the fast path (the shape stalling loops are made of).
func compileMov(in *dInstr) (slow, fast opFn, setsPC bool) {
	ld, ldf := loadSlow(in.src), loadFast(in.src)
	st, stf := storeSlow(in.dst), storeFast(in.dst)
	if ld == nil || ldf == nil || st == nil || stf == nil {
		return nil, nil, false
	}
	slow = func(c *CPU) error {
		v, t, err := ld(c)
		if err != nil {
			return err
		}
		return st(c, v, t)
	}
	if in.dst.kind == isa.KindReg {
		dst := in.dst.reg
		switch in.src.kind {
		case isa.KindImm:
			v := in.src.val
			return slow, func(c *CPU) error { c.reg[dst] = v; return nil }, false
		case isa.KindReg:
			src := in.src.reg
			return slow, func(c *CPU) error { c.reg[dst] = c.reg[src]; return nil }, false
		}
	}
	fast = func(c *CPU) error {
		v, err := ldf(c)
		if err != nil {
			return err
		}
		return stf(c, v)
	}
	return slow, fast, false
}

// compileMovb fuses the 8-bit move.
func compileMovb(in *dInstr) (slow, fast opFn, setsPC bool) {
	ld, ldf := loadByteSlow(in.src), loadByteFast(in.src)
	st, stf := storeByteSlow(in.dst), storeByteFast(in.dst)
	if ld == nil || ldf == nil || st == nil || stf == nil {
		return nil, nil, false
	}
	slow = func(c *CPU) error {
		v, t, err := ld(c)
		if err != nil {
			return err
		}
		return st(c, v, t)
	}
	fast = func(c *CPU) error {
		v, err := ldf(c)
		if err != nil {
			return err
		}
		return stf(c, v)
	}
	return slow, fast, false
}

// compileLea fuses LEA: the address (and the base register's taint,
// matching effectiveAddr) flows into the destination.
func compileLea(in *dInstr) (slow, fast opFn, setsPC bool) {
	if in.src.kind != isa.KindMem {
		return nil, nil, false
	}
	st, stf := storeSlow(in.dst), storeFast(in.dst)
	if st == nil || stf == nil {
		return nil, nil, false
	}
	disp := in.src.val
	if !in.src.hasBase {
		slow = func(c *CPU) error { return st(c, disp, taint.Set{}) }
		fast = func(c *CPU) error { return stf(c, disp) }
		return slow, fast, false
	}
	base := in.src.reg
	slow = func(c *CPU) error {
		return st(c, disp+c.reg[base], c.regTaint[base])
	}
	fast = func(c *CPU) error { return stf(c, disp+c.reg[base]) }
	return slow, fast, false
}

// aluFunc returns the arithmetic of one ALU opcode.
func aluFunc(op isa.Opcode) func(a, b uint32) uint32 {
	switch op {
	case isa.ADD:
		return func(a, b uint32) uint32 { return a + b }
	case isa.SUB:
		return func(a, b uint32) uint32 { return a - b }
	case isa.XOR:
		return func(a, b uint32) uint32 { return a ^ b }
	case isa.AND:
		return func(a, b uint32) uint32 { return a & b }
	case isa.OR:
		return func(a, b uint32) uint32 { return a | b }
	case isa.SHL:
		return func(a, b uint32) uint32 { return a << (b & 31) }
	case isa.SHR:
		return func(a, b uint32) uint32 { return a >> (b & 31) }
	}
	return nil
}

// setFlagsRaw updates ZF/SF without the (no-op outside RecordSteps)
// trace note — compiled runs never record steps.
func (c *CPU) setFlagsRaw(v uint32, t taint.Set) {
	c.zf = v == 0
	c.sf = int32(v) < 0
	c.flagsTaint = t
}

// compileALU fuses the two-operand ALU ops, including the predecoded
// x-xor-x taint-clear idiom, with register/immediate fast-path
// specialisations.
func compileALU(in *dInstr) (slow, fast opFn, setsPC bool) {
	alu := aluFunc(in.op)
	ldd, lddf := loadSlow(in.dst), loadFast(in.dst)
	lds, ldsf := loadSlow(in.src), loadFast(in.src)
	st, stf := storeSlow(in.dst), storeFast(in.dst)
	if alu == nil || ldd == nil || lddf == nil || lds == nil || ldsf == nil || st == nil || stf == nil {
		return nil, nil, false
	}
	clears := in.clearsTaint
	slow = func(c *CPU) error {
		a, ta, err := ldd(c)
		if err != nil {
			return err
		}
		b, tb, err := lds(c)
		if err != nil {
			return err
		}
		v := alu(a, b)
		t := ta.Union(tb)
		if clears {
			t = taint.Set{}
		}
		if err := st(c, v, t); err != nil {
			return err
		}
		c.setFlagsRaw(v, t)
		return nil
	}
	if in.dst.kind == isa.KindReg {
		dst := in.dst.reg
		switch in.src.kind {
		case isa.KindImm:
			imm := in.src.val
			return slow, func(c *CPU) error {
				v := alu(c.reg[dst], imm)
				c.reg[dst] = v
				c.zf = v == 0
				c.sf = int32(v) < 0
				return nil
			}, false
		case isa.KindReg:
			src := in.src.reg
			return slow, func(c *CPU) error {
				v := alu(c.reg[dst], c.reg[src])
				c.reg[dst] = v
				c.zf = v == 0
				c.sf = int32(v) < 0
				return nil
			}, false
		}
	}
	fast = func(c *CPU) error {
		a, err := lddf(c)
		if err != nil {
			return err
		}
		b, err := ldsf(c)
		if err != nil {
			return err
		}
		v := alu(a, b)
		if err := stf(c, v); err != nil {
			return err
		}
		c.zf = v == 0
		c.sf = int32(v) < 0
		return nil
	}
	return slow, fast, false
}

// compileIncDec fuses INC/DEC.
func compileIncDec(in *dInstr) (slow, fast opFn, setsPC bool) {
	var delta uint32 = 1
	if in.op == isa.DEC {
		delta = ^uint32(0) // -1
	}
	ld, ldf := loadSlow(in.dst), loadFast(in.dst)
	st, stf := storeSlow(in.dst), storeFast(in.dst)
	if ld == nil || ldf == nil || st == nil || stf == nil {
		return nil, nil, false
	}
	slow = func(c *CPU) error {
		a, ta, err := ld(c)
		if err != nil {
			return err
		}
		v := a + delta
		if err := st(c, v, ta); err != nil {
			return err
		}
		c.setFlagsRaw(v, ta)
		return nil
	}
	if in.dst.kind == isa.KindReg {
		r := in.dst.reg
		return slow, func(c *CPU) error {
			v := c.reg[r] + delta
			c.reg[r] = v
			c.zf = v == 0
			c.sf = int32(v) < 0
			return nil
		}, false
	}
	fast = func(c *CPU) error {
		a, err := ldf(c)
		if err != nil {
			return err
		}
		v := a + delta
		if err := stf(c, v); err != nil {
			return err
		}
		c.zf = v == 0
		c.sf = int32(v) < 0
		return nil
	}
	return slow, fast, false
}

// compileCmpTest fuses CMP/TEST, preserving Phase-I's tainted-predicate
// recording on the taint-aware path. The fast path cannot see a tainted
// predicate by construction (no taint source exists yet).
func compileCmpTest(in *dInstr, pc int) (slow, fast opFn, setsPC bool) {
	isCmp := in.op == isa.CMP
	ldd, lddf := loadSlow(in.dst), loadFast(in.dst)
	lds, ldsf := loadSlow(in.src), loadFast(in.src)
	if ldd == nil || lddf == nil || lds == nil || ldsf == nil {
		return nil, nil, false
	}
	slow = func(c *CPU) error {
		a, ta, err := ldd(c)
		if err != nil {
			return err
		}
		b, tb, err := lds(c)
		if err != nil {
			return err
		}
		var v uint32
		if isCmp {
			v = a - b
		} else {
			v = a & b
		}
		t := ta.Union(tb)
		c.setFlagsRaw(v, t)
		if !t.Empty() {
			c.tr.Predicates = append(c.tr.Predicates, trace.PredicateHit{
				PC: pc, Sources: t.Sources(),
			})
		}
		return nil
	}
	if in.dst.kind == isa.KindReg {
		dst := in.dst.reg
		switch in.src.kind {
		case isa.KindImm:
			imm := in.src.val
			return slow, func(c *CPU) error {
				var v uint32
				if isCmp {
					v = c.reg[dst] - imm
				} else {
					v = c.reg[dst] & imm
				}
				c.zf = v == 0
				c.sf = int32(v) < 0
				return nil
			}, false
		case isa.KindReg:
			src := in.src.reg
			return slow, func(c *CPU) error {
				var v uint32
				if isCmp {
					v = c.reg[dst] - c.reg[src]
				} else {
					v = c.reg[dst] & c.reg[src]
				}
				c.zf = v == 0
				c.sf = int32(v) < 0
				return nil
			}, false
		}
	}
	fast = func(c *CPU) error {
		a, err := lddf(c)
		if err != nil {
			return err
		}
		b, err := ldsf(c)
		if err != nil {
			return err
		}
		var v uint32
		if isCmp {
			v = a - b
		} else {
			v = a & b
		}
		c.zf = v == 0
		c.sf = int32(v) < 0
		return nil
	}
	return slow, fast, false
}

// compileJcc builds a conditional-jump closure (taint-independent, so
// one closure serves both variants).
func compileJcc(op isa.Opcode, target, fall int) opFn {
	switch op {
	case isa.JZ:
		return func(c *CPU) error {
			if c.zf {
				c.pc = target
			} else {
				c.pc = fall
			}
			return nil
		}
	case isa.JNZ:
		return func(c *CPU) error {
			if c.zf {
				c.pc = fall
			} else {
				c.pc = target
			}
			return nil
		}
	case isa.JL:
		return func(c *CPU) error {
			if c.sf {
				c.pc = target
			} else {
				c.pc = fall
			}
			return nil
		}
	default: // JGE
		return func(c *CPU) error {
			if c.sf {
				c.pc = fall
			} else {
				c.pc = target
			}
			return nil
		}
	}
}

// loadSlow compiles a 32-bit operand read with taint — readOperand
// minus the (RecordSteps-only) access notes, which compiled runs never
// need.
func loadSlow(o dOperand) func(c *CPU) (uint32, taint.Set, error) {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU) (uint32, taint.Set, error) {
			return c.reg[r], c.regTaint[r], nil
		}
	case isa.KindImm:
		v := o.val
		return func(c *CPU) (uint32, taint.Set, error) {
			return v, taint.Set{}, nil
		}
	case isa.KindMem:
		disp := o.val
		if !o.hasBase {
			return func(c *CPU) (uint32, taint.Set, error) {
				return c.mem.readWord(disp)
			}
		}
		base := o.reg
		return func(c *CPU) (uint32, taint.Set, error) {
			v, t, err := c.mem.readWord(disp + c.reg[base])
			if err != nil {
				return 0, taint.Set{}, err
			}
			return v, t.Union(c.regTaint[base]), nil
		}
	}
	return nil
}

// loadFast compiles a 32-bit operand read for the taint-free machine.
func loadFast(o dOperand) func(c *CPU) (uint32, error) {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU) (uint32, error) { return c.reg[r], nil }
	case isa.KindImm:
		v := o.val
		return func(c *CPU) (uint32, error) { return v, nil }
	case isa.KindMem:
		disp := o.val
		if !o.hasBase {
			return func(c *CPU) (uint32, error) {
				v, _, err := c.mem.readWord(disp)
				return v, err
			}
		}
		base := o.reg
		return func(c *CPU) (uint32, error) {
			v, _, err := c.mem.readWord(disp + c.reg[base])
			return v, err
		}
	}
	return nil
}

// storeSlow compiles a 32-bit operand write with taint.
func storeSlow(o dOperand) func(c *CPU, v uint32, t taint.Set) error {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU, v uint32, t taint.Set) error {
			c.reg[r] = v
			c.regTaint[r] = t
			return nil
		}
	case isa.KindMem:
		disp := o.val
		if !o.hasBase {
			return func(c *CPU, v uint32, t taint.Set) error {
				return c.mem.writeWord(disp, v, t)
			}
		}
		base := o.reg
		return func(c *CPU, v uint32, t taint.Set) error {
			return c.mem.writeWord(disp+c.reg[base], v, t)
		}
	}
	return nil
}

// storeFast compiles a 32-bit operand write for the taint-free machine.
func storeFast(o dOperand) func(c *CPU, v uint32) error {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU, v uint32) error {
			c.reg[r] = v
			return nil
		}
	case isa.KindMem:
		disp := o.val
		if !o.hasBase {
			return func(c *CPU, v uint32) error {
				return c.mem.writeWord(disp, v, taint.Set{})
			}
		}
		base := o.reg
		return func(c *CPU, v uint32) error {
			return c.mem.writeWord(disp+c.reg[base], v, taint.Set{})
		}
	}
	return nil
}

// loadByteSlow compiles an 8-bit operand read with taint.
func loadByteSlow(o dOperand) func(c *CPU) (uint32, taint.Set, error) {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU) (uint32, taint.Set, error) {
			return c.reg[r] & 0xFF, c.regTaint[r], nil
		}
	case isa.KindImm:
		v := o.val & 0xFF
		return func(c *CPU) (uint32, taint.Set, error) {
			return v, taint.Set{}, nil
		}
	case isa.KindMem:
		disp := o.val
		base, hasBase := o.reg, o.hasBase
		return func(c *CPU) (uint32, taint.Set, error) {
			addr := disp
			var at taint.Set
			if hasBase {
				addr += c.reg[base]
				at = c.regTaint[base]
			}
			b, t, err := c.mem.readByte(addr)
			if err != nil {
				return 0, taint.Set{}, err
			}
			return uint32(b), t.Union(at), nil
		}
	}
	return nil
}

// loadByteFast compiles an 8-bit operand read for the taint-free
// machine.
func loadByteFast(o dOperand) func(c *CPU) (uint32, error) {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU) (uint32, error) { return c.reg[r] & 0xFF, nil }
	case isa.KindImm:
		v := o.val & 0xFF
		return func(c *CPU) (uint32, error) { return v, nil }
	case isa.KindMem:
		disp := o.val
		base, hasBase := o.reg, o.hasBase
		return func(c *CPU) (uint32, error) {
			addr := disp
			if hasBase {
				addr += c.reg[base]
			}
			b, _, err := c.mem.readByte(addr)
			return uint32(b), err
		}
	}
	return nil
}

// storeByteSlow compiles an 8-bit operand write with taint. Register
// byte stores merge taint (writeOperandByte's semantics: the high bytes
// keep their provenance).
func storeByteSlow(o dOperand) func(c *CPU, v uint32, t taint.Set) error {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU, v uint32, t taint.Set) error {
			c.reg[r] = (c.reg[r] &^ 0xFF) | (v & 0xFF)
			c.regTaint[r] = c.regTaint[r].Union(t)
			return nil
		}
	case isa.KindMem:
		disp := o.val
		base, hasBase := o.reg, o.hasBase
		return func(c *CPU, v uint32, t taint.Set) error {
			addr := disp
			if hasBase {
				addr += c.reg[base]
			}
			return c.mem.writeByte(addr, byte(v), t)
		}
	}
	return nil
}

// storeByteFast compiles an 8-bit operand write for the taint-free
// machine.
func storeByteFast(o dOperand) func(c *CPU, v uint32) error {
	switch o.kind {
	case isa.KindReg:
		r := o.reg
		return func(c *CPU, v uint32) error {
			c.reg[r] = (c.reg[r] &^ 0xFF) | (v & 0xFF)
			return nil
		}
	case isa.KindMem:
		disp := o.val
		base, hasBase := o.reg, o.hasBase
		return func(c *CPU, v uint32) error {
			addr := disp
			if hasBase {
				addr += c.reg[base]
			}
			return c.mem.writeByte(addr, byte(v), taint.Set{})
		}
	}
	return nil
}
