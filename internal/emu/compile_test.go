package emu

import (
	"testing"

	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// The tier-2 contract: block-compiled dispatch is byte-identical to
// step-wise execution. Every test here runs the same program through
// both tiers (Options.DisableBlocks) and compares the serialized
// traces, so any divergence — step counts, call logs, taint sources,
// predicates, exit state — fails loudly.

// runBothTiers executes prog under opts with and without block
// compilation, each on a fresh environment, and returns both traces.
func runBothTiers(t *testing.T, prog *isa.Program, opts Options) (blocks, stepwise *trace.Trace) {
	t.Helper()
	blocksOpts := opts
	blocksOpts.DisableBlocks = false
	stepOpts := opts
	stepOpts.DisableBlocks = true
	var err error
	if blocks, err = Run(prog, winenv.New(winenv.DefaultIdentity()), blocksOpts); err != nil {
		t.Fatal(err)
	}
	if stepwise, err = Run(prog, winenv.New(winenv.DefaultIdentity()), stepOpts); err != nil {
		t.Fatal(err)
	}
	return blocks, stepwise
}

// assertTierParity fails unless both tiers produced identical traces.
func assertTierParity(t *testing.T, prog *isa.Program, opts Options) {
	t.Helper()
	blocks, stepwise := runBothTiers(t, prog, opts)
	if bj, sj := traceJSON(t, blocks), traceJSON(t, stepwise); bj != sj {
		t.Errorf("tier divergence:\nblocks:   %s\nstepwise: %s", bj, sj)
	}
}

// stallingLoop builds the evasion-survey shape: an untainted busy loop,
// then a timing check whose predicate carries clock taint.
func stallingLoop(iters int) *isa.Program {
	b := isa.NewBuilder("stalling")
	b.Mov(isa.R(isa.ECX), isa.Imm(uint32(iters)))
	b.Mov(isa.R(isa.EBX), isa.Imm(0x9E3779B9))
	b.Label("stall")
	b.Mov(isa.R(isa.EDX), isa.R(isa.EBX))
	b.Shl(isa.R(isa.EDX), isa.Imm(5))
	b.Xor(isa.R(isa.EBX), isa.R(isa.EDX))
	b.Add(isa.R(isa.EBX), isa.R(isa.ECX))
	b.Dec(isa.R(isa.ECX))
	b.Jnz("stall")
	b.CallAPI("GetTickCount")
	b.Mov(isa.R(isa.EDI), isa.R(isa.EAX))
	b.CallAPI("GetTickCount")
	b.Sub(isa.R(isa.EAX), isa.R(isa.EDI))
	b.Cmp(isa.R(isa.EAX), isa.Imm(0))
	b.Jz("frozen")
	b.Halt()
	b.Label("frozen")
	b.CallAPI("ExitProcess", isa.Imm(9))
	return b.MustBuild()
}

// memoryMixer exercises every compilable operand shape: word and byte
// memory traffic with and without base registers, LEA, push/pop, and a
// local call — taint flowing through all of it once the API fires.
func memoryMixer() *isa.Program {
	b := isa.NewBuilder("memory-mixer")
	b.Buf("buf", 64)
	b.RData("name", "MIX-MARKER")
	b.CallAPI("OpenMutexA", isa.Sym("name"))
	b.Mov(isa.MemSym("buf"), isa.R(isa.EAX)).Comment("tainted store")
	b.Lea(isa.EBX, isa.MemSym("buf"))
	b.Mov(isa.Mem(isa.EBX, 4), isa.Imm(0x01020304))
	b.Movb(isa.R(isa.EDX), isa.Mem(isa.EBX, 5))
	b.Movb(isa.Mem(isa.EBX, 8), isa.R(isa.EDX))
	b.Push(isa.MemSym("buf"))
	b.Pop(isa.R(isa.ESI))
	b.Call("mix")
	b.Test(isa.R(isa.ESI), isa.R(isa.ESI))
	b.Jnz("tainted")
	b.Halt()
	b.Label("tainted")
	b.CallAPI("ExitProcess", isa.Imm(3))
	b.Label("mix")
	b.Xor(isa.R(isa.ESI), isa.R(isa.ESI)).Comment("xor-clear idiom")
	b.Or(isa.R(isa.ESI), isa.MemSym("buf"))
	b.Ret()
	return b.MustBuild()
}

func TestBlockParityPrograms(t *testing.T) {
	progs := map[string]*isa.Program{
		"mutex-checker": mutexChecker("!BlockParity"),
		"hot-loop":      hotLoop(500),
		"stalling":      stallingLoop(300),
		"memory-mixer":  memoryMixer(),
		"algo-mutex":    algoMutex(),
		"dormant":       dormantSample(),
	}
	for name, prog := range progs {
		t.Run(name, func(t *testing.T) {
			assertTierParity(t, prog, Options{Seed: 11})
		})
	}
}

func TestBlockParityWithMutations(t *testing.T) {
	// Mutated re-execution (Phase-II's shape) must agree across tiers:
	// the mutation fires at an API boundary, which always splits runs.
	assertTierParity(t, mutexChecker("!BlockMut"), Options{
		Seed: 11,
		Mutations: []Mutation{{
			API: "OpenMutexA", CallerPC: -1, Identifier: "!BlockMut", Mode: ForceSuccess,
		}},
	})
}

func TestBlockParityFaultMidBlock(t *testing.T) {
	// A bad memory access in the middle of a compiled run must report
	// the same fault at the same step count as stepping: the charge for
	// the not-executed tail of the run is rolled back.
	b := isa.NewBuilder("fault-mid-block")
	b.Mov(isa.R(isa.EAX), isa.Imm(1))
	b.Add(isa.R(isa.EAX), isa.Imm(2))
	b.Mov(isa.R(isa.EBX), isa.MemAbs(0xDEAD0000)).Comment("unmapped")
	b.Sub(isa.R(isa.EAX), isa.Imm(1))
	b.Halt()
	prog := b.MustBuild()
	blocks, stepwise := runBothTiers(t, prog, Options{Seed: 1})
	if blocks.Exit != trace.ExitFault || stepwise.Exit != trace.ExitFault {
		t.Fatalf("exits = %v / %v, want fault", blocks.Exit, stepwise.Exit)
	}
	if blocks.Fault != stepwise.Fault {
		t.Errorf("fault strings differ: %q vs %q", blocks.Fault, stepwise.Fault)
	}
	if blocks.StepCount != stepwise.StepCount {
		t.Errorf("step counts differ: %d vs %d (faulting instruction charged, tail rolled back)",
			blocks.StepCount, stepwise.StepCount)
	}
}

func TestBlockParityStepLimit(t *testing.T) {
	// ExitLimit must land on exactly the same instruction in both tiers,
	// including limits that would split a compiled run: a run that does
	// not fit the remaining budget falls back to stepping.
	prog := stallingLoop(1000)
	for _, max := range []int{1, 2, 7, 100, 101, 102, 103, 1999} {
		blocks, stepwise := runBothTiers(t, prog, Options{Seed: 1, MaxSteps: max})
		if blocks.Exit != trace.ExitLimit || stepwise.Exit != trace.ExitLimit {
			t.Fatalf("max %d: exits = %v / %v, want limit", max, blocks.Exit, stepwise.Exit)
		}
		if blocks.StepCount != stepwise.StepCount {
			t.Errorf("max %d: step counts differ: %d vs %d", max, blocks.StepCount, stepwise.StepCount)
		}
	}
}

func TestCompiledRunsSplitAtAPICalls(t *testing.T) {
	// Every CALLAPI stays step-wise (its side effects need the full
	// machine), so no compiled run may contain one; runs resume at the
	// instruction after the call.
	prog := mutexChecker("!SplitCheck")
	d, err := decodedFor(prog)
	if err != nil {
		t.Fatal(err)
	}
	if d.runs == nil {
		t.Fatal("no compiled runs for a compilable program")
	}
	for pc, r := range d.runs {
		if r == nil {
			continue
		}
		for i := 0; i < r.n; i++ {
			if d.instrs[pc+i].op == isa.CALLAPI {
				t.Errorf("compiled run at pc %d contains CALLAPI at pc %d", pc, pc+i)
			}
		}
	}
	for pc := range d.instrs {
		if d.instrs[pc].op == isa.CALLAPI && pc+1 < len(d.instrs) {
			if d.runs[pc] != nil {
				t.Errorf("compiled run starts on CALLAPI at pc %d", pc)
			}
		}
	}
}

func TestLiveTaintRetiresFastPath(t *testing.T) {
	// The all-untainted fast path is only sound while no taint source
	// exists. The first source-allocating API call must flip the CPU to
	// the taint-aware variant — pinned here by checking that taint
	// recorded after an API call still reaches a predicate when the
	// preceding code ran block-compiled.
	prog := stallingLoop(50)
	tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasTaintedPredicate() {
		t.Error("clock taint lost across the compiled fast path")
	}
}
