package emu

import (
	"autovac/internal/isa"
	"autovac/internal/taint"
	"autovac/internal/trace"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// MutationMode says how impact analysis forces an API result (§IV-B:
// "mutate the return value or involved arguments").
type MutationMode int

// Mutation modes.
const (
	// ForceFailure makes the matched call fail with the API's labelled
	// failure convention, without performing its side effects. It models
	// a vaccine that blocks access to a resource.
	ForceFailure MutationMode = iota
	// ForceSuccess makes the matched call succeed with a plausible
	// result, without performing its side effects. It models a vaccine
	// that simulates the presence of a resource (infection marker).
	ForceSuccess
	// ForceAlreadyExists makes a create-style call succeed while
	// reporting ERROR_ALREADY_EXISTS — the CreateMutex-style probe for
	// "this machine is already infected".
	ForceAlreadyExists
)

// String names the mode.
func (m MutationMode) String() string {
	switch m {
	case ForceSuccess:
		return "force-success"
	case ForceAlreadyExists:
		return "force-already-exists"
	default:
		return "force-failure"
	}
}

// Mutation selects API call occurrences whose results are forced.
type Mutation struct {
	// API is the API name to match.
	API string
	// CallerPC restricts the match to one call site (-1 matches any).
	CallerPC int
	// Identifier restricts the match to one resource identifier
	// (empty matches any). Comparison is case-insensitive, matching
	// Windows namespace semantics.
	Identifier string
	// Mode is the forcing direction.
	Mode MutationMode
}

// matches reports whether the mutation applies to a call occurrence.
func (mu Mutation) matches(api string, callerPC int, identifier string) bool {
	if mu.API != api {
		return false
	}
	if mu.CallerPC >= 0 && mu.CallerPC != callerPC {
		return false
	}
	if mu.Identifier != "" && !equalFold(mu.Identifier, identifier) {
		return false
	}
	return true
}

// equalFold is ASCII case-insensitive string equality.
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

// Options configures one execution.
type Options struct {
	// MaxSteps bounds the instruction count; 0 selects DefaultMaxSteps.
	// It is the analogue of the paper's per-sample execution budget
	// (1 minute in Phase-I, 5 minutes in the BDR evaluation).
	MaxSteps int
	// RecordSteps enables the instruction-level log backward analysis
	// needs. It is off for bulk corpus profiling.
	RecordSteps bool
	// Seed drives the deterministic PRNG behind "random" APIs.
	Seed uint64
	// Registry is the API set; nil selects winapi.Standard().
	Registry *winapi.Registry
	// Mutations are the forced API results for impact analysis.
	Mutations []Mutation
	// InvertBranches lists PCs of conditional jumps whose outcome is
	// inverted — the forced-execution technique the paper's §VIII
	// relates to (Wilhelm & Chiueh's forced sampled execution), focused
	// on resource-sensitive branches. It explores dormant paths (a
	// payload behind a failed library check) without changing the
	// environment.
	InvertBranches []int
	// DisableBlocks forces fully step-wise (tier-1) execution even
	// where block-compiled dispatch is available. Execution is
	// byte-identical either way; the knob exists for debugging and for
	// benchmarking the tiers against each other.
	DisableBlocks bool
}

// DefaultMaxSteps is the default instruction budget.
const DefaultMaxSteps = 200_000

// CPU is the machine state of one execution. It implements
// winapi.Machine.
type CPU struct {
	prog     *isa.Program
	code     []dInstr
	env      *winenv.Env
	registry *winapi.Registry
	opts     Options

	reg        [isa.NumRegs]uint32
	regTaint   [isa.NumRegs]taint.Set
	zf, sf     bool
	flagsTaint taint.Set
	pc         int
	mem        *memory
	symbols    map[string]uint32
	callStack  []int
	rngState   uint64

	// runs is the program's shared tier-2 dispatch table; liveTaint
	// flips (monotonically, per run) the moment a taint source is
	// allocated, retiring the all-untainted compiled fast path.
	runs      []*compiledRun
	liveTaint bool

	table        *taint.Table
	tr           *trace.Trace
	apiSeq       int
	lastErrTaint taint.Set

	// Per-step access collection (active when RecordSteps);
	// accessArena is the chunked backing store the per-step records
	// are carved from.
	curReads    []trace.Access
	curWrites   []trace.Access
	accessArena []trace.Access

	done     bool
	exitCode uint32
	exitKind trace.ExitReason
	fault    string
}

// New prepares an execution of prog against env. The environment is
// used in place (callers clone if they need isolation). The program's
// predecoded form is cached, so repeat executions of one program skip
// validation, symbol resolution, and data layout.
func New(prog *isa.Program, env *winenv.Env, opts Options) (*CPU, error) {
	d, err := decodedFor(prog)
	if err != nil {
		return nil, err
	}
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.Registry == nil {
		opts.Registry = winapi.Standard()
	}
	c := &CPU{
		prog:     prog,
		code:     d.instrs,
		runs:     d.runs,
		env:      env,
		registry: opts.Registry,
		opts:     opts,
		mem:      newMemoryFrom(d),
		symbols:  d.symbols,
		table:    &taint.Table{},
		tr: &trace.Trace{
			Program: prog.Name,
			Mutated: len(opts.Mutations) > 0,
		},
		rngState: opts.Seed ^ uint64(hashName(prog.Name))<<1 | 1,
	}
	c.reg[isa.ESP] = StackTop
	return c, nil
}

// resetFor rewinds the CPU to its freshly-constructed state under new
// options, reusing every buffer: the memory image (pristine data,
// cleared shadows), the pooled stack, the taint table, and the access
// arena's free tail. The caller is responsible for resetting the
// environment.
func (c *CPU) resetFor(opts Options) {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = DefaultMaxSteps
	}
	if opts.Registry == nil {
		// Reuse the previous run's registry instead of rebuilding the
		// standard set: registries are stateless across runs, and this
		// keeps the steady-state reset allocation-free.
		opts.Registry = c.opts.Registry
	}
	c.registry = opts.Registry
	c.opts = opts
	c.reg = [isa.NumRegs]uint32{}
	c.regTaint = [isa.NumRegs]taint.Set{}
	c.zf, c.sf = false, false
	c.flagsTaint = taint.Set{}
	c.pc = 0
	c.callStack = c.callStack[:0]
	c.rngState = opts.Seed ^ uint64(hashName(c.prog.Name))<<1 | 1
	c.table.Reset()
	c.tr = &trace.Trace{
		Program: c.prog.Name,
		Mutated: len(opts.Mutations) > 0,
	}
	c.apiSeq = 0
	c.lastErrTaint = taint.Set{}
	c.liveTaint = false
	c.curReads = c.curReads[:0]
	c.curWrites = c.curWrites[:0]
	c.done = false
	c.exitCode = 0
	c.exitKind = 0
	c.fault = ""
	c.mem.reset()
	c.reg[isa.ESP] = StackTop
}

// Release returns the CPU's pooled buffers (the stack segment). The CPU
// must not execute or access memory afterwards; traces already returned
// remain valid (they never alias emulator memory).
func (c *CPU) Release() {
	if c.mem != nil {
		c.mem.release()
		c.mem = nil
	}
}

// hashName is FNV-1a over the program name, mixed into the PRNG seed so
// distinct samples see distinct "random" sequences under one corpus seed.
func hashName(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

// Run executes a program to completion and returns its trace. It is the
// package's main entry point.
func Run(prog *isa.Program, env *winenv.Env, opts Options) (*trace.Trace, error) {
	c, err := New(prog, env, opts)
	if err != nil {
		return nil, err
	}
	tr := c.Execute()
	c.Release()
	return tr, nil
}

// Trace returns the trace being built.
func (c *CPU) Trace() *trace.Trace { return c.tr }

// TaintTable returns the run's taint-source table.
func (c *CPU) TaintTable() *taint.Table { return c.table }

// SymbolAddr returns the load address of a data symbol.
func (c *CPU) SymbolAddr(name string) (uint32, bool) {
	a, ok := c.symbols[name]
	return a, ok
}

// Reg returns a register value (for tests and slice replay).
func (c *CPU) Reg(r isa.Reg) uint32 { return c.reg[r] }

// --- winapi.Machine implementation ---

// Env returns the resource environment.
func (c *CPU) Env() *winenv.Env { return c.env }

// Principal returns the program name.
func (c *CPU) Principal() string { return c.prog.Name }

// SelfPath returns the emulated image's own path.
func (c *CPU) SelfPath() string { return `C:\samples\` + c.prog.Name + `.exe` }

// Rand steps the deterministic xorshift PRNG.
func (c *CPU) Rand() uint32 {
	c.rngState ^= c.rngState << 13
	c.rngState ^= c.rngState >> 7
	c.rngState ^= c.rngState << 17
	return uint32(c.rngState >> 16)
}

// ReadCString reads a NUL-terminated string, recording the access.
func (c *CPU) ReadCString(addr uint32) (string, taint.Set, error) {
	s, t, err := c.mem.readCString(addr)
	if err != nil {
		return "", taint.Set{}, err
	}
	c.noteRead(trace.MemLoc(addr, uint32(len(s))+1), 0, []byte(s))
	return s, t, nil
}

// WriteCString writes a string plus NUL, recording the access.
func (c *CPU) WriteCString(addr uint32, s string, t taint.Set) error {
	if err := c.mem.writeBytes(addr, append([]byte(s), 0), t); err != nil {
		return err
	}
	c.noteWrite(trace.MemLoc(addr, uint32(len(s))+1), 0, []byte(s))
	return nil
}

// ReadWord reads a 32-bit word, recording the access.
func (c *CPU) ReadWord(addr uint32) (uint32, taint.Set, error) {
	v, t, err := c.mem.readWord(addr)
	if err != nil {
		return 0, taint.Set{}, err
	}
	c.noteRead(trace.MemLoc(addr, 4), v, nil)
	return v, t, nil
}

// WriteWord writes a 32-bit word, recording the access.
func (c *CPU) WriteWord(addr uint32, v uint32, t taint.Set) error {
	if err := c.mem.writeWord(addr, v, t); err != nil {
		return err
	}
	c.noteWrite(trace.MemLoc(addr, 4), v, nil)
	return nil
}

// ReadBytes reads a byte range, recording the access.
func (c *CPU) ReadBytes(addr, n uint32) ([]byte, taint.Set, error) {
	b, t, err := c.mem.readBytes(addr, n)
	if err != nil {
		return nil, taint.Set{}, err
	}
	c.noteRead(trace.MemLoc(addr, n), 0, b)
	return b, t, nil
}

// WriteBytes writes a byte range, recording the access.
func (c *CPU) WriteBytes(addr uint32, b []byte, t taint.Set) error {
	if err := c.mem.writeBytes(addr, b, t); err != nil {
		return err
	}
	c.noteWrite(trace.MemLoc(addr, uint32(len(b))), 0, append([]byte(nil), b...))
	return nil
}

// noteRead appends to the current step's read set when recording.
func (c *CPU) noteRead(loc trace.Loc, v uint32, bytes []byte) {
	if c.opts.RecordSteps {
		c.curReads = append(c.curReads, trace.Access{Loc: loc, Value: v, Bytes: bytes})
	}
}

// noteWrite appends to the current step's write set when recording.
func (c *CPU) noteWrite(loc trace.Loc, v uint32, bytes []byte) {
	if c.opts.RecordSteps {
		c.curWrites = append(c.curWrites, trace.Access{Loc: loc, Value: v, Bytes: bytes})
	}
}

var _ winapi.Machine = (*CPU)(nil)
