package emu

import (
	"fmt"

	"autovac/internal/isa"
	"autovac/internal/taint"
	"autovac/internal/trace"
)

// Execute runs the program to completion and returns the trace. Runtime
// faults (bad memory, unknown APIs, stack underflow) terminate the run
// with ExitFault recorded in the trace rather than returning an error:
// a crashing malware sample is an observation, not an analysis failure.
func (c *CPU) Execute() *trace.Trace {
	// Tier-2 block dispatch applies only when nothing needs per-step
	// fidelity: step recording and forced execution stay fully
	// step-wise (and API calls split compiled runs at predecode).
	runs := c.runs
	if c.opts.RecordSteps || len(c.opts.InvertBranches) > 0 || c.opts.DisableBlocks {
		runs = nil
	}
	for !c.done {
		if c.tr.StepCount >= c.opts.MaxSteps {
			c.exitKind = trace.ExitLimit
			break
		}
		if c.pc < 0 || c.pc >= len(c.code) {
			if c.pc == len(c.code) {
				// Falling off the end is a normal stop.
				c.exitKind = trace.ExitHalt
			} else {
				c.faultf("pc %d out of range", c.pc)
			}
			break
		}
		if runs != nil {
			if r := runs[c.pc]; r != nil && c.tr.StepCount+r.n <= c.opts.MaxSteps {
				// The whole run fits the step budget; a run that would
				// straddle the limit is stepped instead so ExitLimit
				// lands on exactly the same instruction either way.
				if err := c.runCompiled(r); err != nil {
					c.faultf("%v", err)
					break
				}
				continue
			}
		}
		if err := c.step(); err != nil {
			c.faultf("%v", err)
			break
		}
	}
	c.tr.Exit = c.exitKind
	c.tr.ExitCode = c.exitCode
	c.tr.Fault = c.fault
	c.tr.Sources = c.table.All()
	return c.tr
}

// faultf ends execution with a fault.
func (c *CPU) faultf(format string, args ...interface{}) {
	c.done = true
	c.exitKind = trace.ExitFault
	c.fault = fmt.Sprintf(format, args...)
}

// step executes one predecoded instruction.
func (c *CPU) step() error {
	in := &c.code[c.pc]
	pc := c.pc
	c.tr.StepCount++

	if c.opts.RecordSteps {
		c.curReads = c.curReads[:0]
		c.curWrites = c.curWrites[:0]
	}
	apiSeq := -1
	taken := false

	next := pc + 1
	switch in.op {
	case isa.NOP:

	case isa.MOV:
		v, t, err := c.readOperand(in.src)
		if err != nil {
			return err
		}
		if err := c.writeOperand(in.dst, v, t); err != nil {
			return err
		}

	case isa.MOVB:
		v, t, err := c.readOperandByte(in.src)
		if err != nil {
			return err
		}
		if err := c.writeOperandByte(in.dst, v, t); err != nil {
			return err
		}

	case isa.LEA:
		addr, t, err := c.effectiveAddr(in.src)
		if err != nil {
			return err
		}
		if err := c.writeOperand(in.dst, addr, t); err != nil {
			return err
		}

	case isa.PUSH:
		v, t, err := c.readOperand(in.dst)
		if err != nil {
			return err
		}
		if err := c.push(v, t); err != nil {
			return err
		}

	case isa.POP:
		v, t, err := c.pop()
		if err != nil {
			return err
		}
		if err := c.writeOperand(in.dst, v, t); err != nil {
			return err
		}

	case isa.ADD, isa.SUB, isa.XOR, isa.AND, isa.OR, isa.SHL, isa.SHR:
		a, ta, err := c.readOperand(in.dst)
		if err != nil {
			return err
		}
		b, tb, err := c.readOperand(in.src)
		if err != nil {
			return err
		}
		var v uint32
		switch in.op {
		case isa.ADD:
			v = a + b
		case isa.SUB:
			v = a - b
		case isa.XOR:
			v = a ^ b
		case isa.AND:
			v = a & b
		case isa.OR:
			v = a | b
		case isa.SHL:
			v = a << (b & 31)
		case isa.SHR:
			v = a >> (b & 31)
		}
		t := ta.Union(tb)
		// x XOR x is the classic taint-clearing idiom (predecoded).
		if in.clearsTaint {
			t = taint.Set{}
		}
		if err := c.writeOperand(in.dst, v, t); err != nil {
			return err
		}
		c.setFlags(v, t)

	case isa.INC, isa.DEC:
		a, ta, err := c.readOperand(in.dst)
		if err != nil {
			return err
		}
		v := a + 1
		if in.op == isa.DEC {
			v = a - 1
		}
		if err := c.writeOperand(in.dst, v, ta); err != nil {
			return err
		}
		c.setFlags(v, ta)

	case isa.CMP, isa.TEST:
		a, ta, err := c.readOperand(in.dst)
		if err != nil {
			return err
		}
		b, tb, err := c.readOperand(in.src)
		if err != nil {
			return err
		}
		var v uint32
		if in.op == isa.CMP {
			v = a - b
		} else {
			v = a & b
		}
		t := ta.Union(tb)
		c.setFlags(v, t)
		// A tainted predicate is AUTOVAC's Phase-I signal: a branch
		// depends on system-resource data (§III-B).
		if !t.Empty() {
			c.tr.Predicates = append(c.tr.Predicates, trace.PredicateHit{
				PC: pc, Sources: t.Sources(),
			})
		}

	case isa.JMP:
		next = in.target
		taken = true

	case isa.JZ, isa.JNZ, isa.JL, isa.JGE:
		c.noteRead(trace.FlagsLoc(), flagBits(c.zf, c.sf), nil)
		var jump bool
		switch in.op {
		case isa.JZ:
			jump = c.zf
		case isa.JNZ:
			jump = !c.zf
		case isa.JL:
			jump = c.sf
		case isa.JGE:
			jump = !c.sf
		}
		if len(c.opts.InvertBranches) > 0 && c.invertBranch(pc) {
			jump = !jump
		}
		if jump {
			next = in.target
			taken = true
		}

	case isa.CALL:
		if err := c.push(uint32(pc+1), taint.Set{}); err != nil {
			return err
		}
		c.callStack = append(c.callStack, pc+1)
		next = in.target

	case isa.RET:
		v, _, err := c.pop()
		if err != nil {
			return err
		}
		if len(c.callStack) == 0 {
			return fmt.Errorf("emu: ret with empty call stack at pc %d", pc)
		}
		c.callStack = c.callStack[:len(c.callStack)-1]
		next = int(v)

	case isa.CALLAPI:
		seq, err := c.callAPI(pc, in)
		if err != nil {
			return err
		}
		apiSeq = seq

	case isa.CALLAPIR:
		// Indirect call: the destination register holds an address the
		// loader issued (GetProcAddress result or an export-table walk).
		// An address outside the binding faults — there is nothing there
		// to execute.
		v, _, err := c.readOperand(in.dst)
		if err != nil {
			return err
		}
		api, ok := Loader().APIAt(v)
		if !ok {
			return fmt.Errorf("emu: callapir to unresolved address %#x at pc %d", v, pc)
		}
		seq, err := c.callAPINamed(pc, api, in.nArgs)
		if err != nil {
			return err
		}
		apiSeq = seq

	case isa.HALT:
		c.done = true
		c.exitKind = trace.ExitHalt

	default:
		return fmt.Errorf("emu: unknown opcode %v at pc %d", in.op, pc)
	}

	if c.opts.RecordSteps {
		c.tr.Steps = append(c.tr.Steps, trace.Step{
			Index:  len(c.tr.Steps),
			PC:     pc,
			Instr:  c.prog.Instrs[pc],
			Reads:  c.claimAccesses(c.curReads),
			Writes: c.claimAccesses(c.curWrites),
			APISeq: apiSeq,
			Taken:  taken,
		})
	}
	c.pc = next
	return nil
}

// accessChunkSize is the arena granularity for step access records.
const accessChunkSize = 4096

// claimAccesses copies the staged per-step accesses into the CPU's
// access arena and returns a capacity-capped subslice. The seed code
// allocated two fresh slices per recorded step; the arena amortises
// that to one allocation per accessChunkSize records. Chunks are never
// pooled — the returned subslices escape into the retained trace.
func (c *CPU) claimAccesses(src []trace.Access) []trace.Access {
	if len(src) == 0 {
		return nil
	}
	if len(c.accessArena)+len(src) > cap(c.accessArena) {
		n := accessChunkSize
		if len(src) > n {
			n = len(src)
		}
		c.accessArena = make([]trace.Access, 0, n)
	}
	start := len(c.accessArena)
	c.accessArena = append(c.accessArena, src...)
	return c.accessArena[start:len(c.accessArena):len(c.accessArena)]
}

// invertBranch reports whether forced execution inverts the branch at
// this PC.
func (c *CPU) invertBranch(pc int) bool {
	for _, p := range c.opts.InvertBranches {
		if p == pc {
			return true
		}
	}
	return false
}

// setFlags updates ZF/SF from a result value with the given taint.
func (c *CPU) setFlags(v uint32, t taint.Set) {
	c.zf = v == 0
	c.sf = int32(v) < 0
	c.flagsTaint = t
	c.noteWrite(trace.FlagsLoc(), flagBits(c.zf, c.sf), nil)
}

// flagBits packs flags into a value for trace records.
func flagBits(zf, sf bool) uint32 {
	var v uint32
	if zf {
		v |= 1
	}
	if sf {
		v |= 2
	}
	return v
}

// effectiveAddr computes a memory operand's address and the taint of the
// address computation (from the base register). The symbol displacement
// was folded into o.val at predecode.
func (c *CPU) effectiveAddr(o dOperand) (uint32, taint.Set, error) {
	if o.kind != isa.KindMem {
		return 0, taint.Set{}, fmt.Errorf("emu: effectiveAddr on %v operand", o.kind)
	}
	addr := o.val
	var t taint.Set
	if o.hasBase {
		addr += c.reg[o.reg]
		t = c.regTaint[o.reg]
		c.noteRead(trace.RegLoc(o.reg), c.reg[o.reg], nil)
	}
	return addr, t, nil
}

// readOperand reads a 32-bit operand value with taint, recording the
// access.
func (c *CPU) readOperand(o dOperand) (uint32, taint.Set, error) {
	switch o.kind {
	case isa.KindReg:
		c.noteRead(trace.RegLoc(o.reg), c.reg[o.reg], nil)
		return c.reg[o.reg], c.regTaint[o.reg], nil
	case isa.KindImm:
		return o.val, taint.Set{}, nil
	case isa.KindMem:
		addr := o.val
		var at taint.Set
		if o.hasBase {
			addr += c.reg[o.reg]
			at = c.regTaint[o.reg]
			c.noteRead(trace.RegLoc(o.reg), c.reg[o.reg], nil)
		}
		v, t, err := c.mem.readWord(addr)
		if err != nil {
			return 0, taint.Set{}, err
		}
		c.noteRead(trace.MemLoc(addr, 4), v, nil)
		return v, t.Union(at), nil
	default:
		return 0, taint.Set{}, fmt.Errorf("emu: read of %v operand", o.kind)
	}
}

// readOperandByte reads an 8-bit operand value with taint.
func (c *CPU) readOperandByte(o dOperand) (uint32, taint.Set, error) {
	switch o.kind {
	case isa.KindReg:
		c.noteRead(trace.RegLoc(o.reg), c.reg[o.reg], nil)
		return c.reg[o.reg] & 0xFF, c.regTaint[o.reg], nil
	case isa.KindImm:
		return o.val & 0xFF, taint.Set{}, nil
	case isa.KindMem:
		addr, at, err := c.effectiveAddr(o)
		if err != nil {
			return 0, taint.Set{}, err
		}
		b, t, err := c.mem.readByte(addr)
		if err != nil {
			return 0, taint.Set{}, err
		}
		c.noteRead(trace.MemLoc(addr, 1), uint32(b), nil)
		return uint32(b), t.Union(at), nil
	default:
		return 0, taint.Set{}, fmt.Errorf("emu: byte read of %v operand", o.kind)
	}
}

// writeOperand writes a 32-bit value with taint, recording the access.
func (c *CPU) writeOperand(o dOperand, v uint32, t taint.Set) error {
	switch o.kind {
	case isa.KindReg:
		c.reg[o.reg] = v
		c.regTaint[o.reg] = t
		c.noteWrite(trace.RegLoc(o.reg), v, nil)
		return nil
	case isa.KindMem:
		addr, _, err := c.effectiveAddr(o)
		if err != nil {
			return err
		}
		if err := c.mem.writeWord(addr, v, t); err != nil {
			return err
		}
		c.noteWrite(trace.MemLoc(addr, 4), v, nil)
		return nil
	default:
		return fmt.Errorf("emu: write to %v operand", o.kind)
	}
}

// writeOperandByte writes an 8-bit value with taint.
func (c *CPU) writeOperandByte(o dOperand, v uint32, t taint.Set) error {
	switch o.kind {
	case isa.KindReg:
		c.reg[o.reg] = (c.reg[o.reg] &^ 0xFF) | (v & 0xFF)
		c.regTaint[o.reg] = c.regTaint[o.reg].Union(t)
		c.noteWrite(trace.RegLoc(o.reg), c.reg[o.reg], nil)
		return nil
	case isa.KindMem:
		addr, _, err := c.effectiveAddr(o)
		if err != nil {
			return err
		}
		if err := c.mem.writeByte(addr, byte(v), t); err != nil {
			return err
		}
		c.noteWrite(trace.MemLoc(addr, 1), v&0xFF, nil)
		return nil
	default:
		return fmt.Errorf("emu: byte write to %v operand", o.kind)
	}
}

// push writes a word below ESP.
func (c *CPU) push(v uint32, t taint.Set) error {
	c.reg[isa.ESP] -= 4
	if err := c.mem.writeWord(c.reg[isa.ESP], v, t); err != nil {
		return err
	}
	c.noteWrite(trace.MemLoc(c.reg[isa.ESP], 4), v, nil)
	return nil
}

// pop reads the word at ESP and releases it.
func (c *CPU) pop() (uint32, taint.Set, error) {
	v, t, err := c.mem.readWord(c.reg[isa.ESP])
	if err != nil {
		return 0, taint.Set{}, err
	}
	c.noteRead(trace.MemLoc(c.reg[isa.ESP], 4), v, nil)
	c.reg[isa.ESP] += 4
	return v, t, nil
}
