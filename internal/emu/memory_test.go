package emu

import (
	"strings"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

func testMemory() *memory {
	m := &memory{}
	m.mapSegment("rw", 0x1000, 64, false)
	m.mapSegment("ro", 0x2000, 16, true)
	return m
}

func TestMemoryWordRoundTrip(t *testing.T) {
	m := testMemory()
	tnt := taint.Of(3)
	if err := m.writeWord(0x1000, 0xDEADBEEF, tnt); err != nil {
		t.Fatal(err)
	}
	v, got, err := m.readWord(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("readWord = %#x, %v", v, err)
	}
	if !got.Has(3) {
		t.Error("taint lost")
	}
	// Little-endian layout.
	b, _, _ := m.readByte(0x1000)
	if b != 0xEF {
		t.Errorf("low byte = %#x", b)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := testMemory()
	// Unmapped address.
	if _, _, err := m.readWord(0x5000); err == nil {
		t.Error("unmapped read succeeded")
	}
	// Word crossing the segment end.
	if _, _, err := m.readWord(0x1000 + 62); err == nil {
		t.Error("cross-boundary read succeeded")
	}
	if err := m.writeWord(0x1000+62, 1, taint.Set{}); err == nil {
		t.Error("cross-boundary write succeeded")
	}
	// Byte at the last valid offset works.
	if _, _, err := m.readByte(0x1000 + 63); err != nil {
		t.Errorf("last byte read: %v", err)
	}
}

func TestMemoryReadOnlyEnforced(t *testing.T) {
	m := testMemory()
	for _, f := range []func() error{
		func() error { return m.writeByte(0x2000, 1, taint.Set{}) },
		func() error { return m.writeWord(0x2000, 1, taint.Set{}) },
		func() error { return m.writeBytes(0x2000, []byte{1, 2}, taint.Set{}) },
	} {
		if err := f(); err == nil || !strings.Contains(err.Error(), "read-only") {
			t.Errorf("read-only write: %v", err)
		}
	}
	if !m.inReadOnly(0x2000) || m.inReadOnly(0x1000) {
		t.Error("inReadOnly wrong")
	}
}

func TestMemoryCString(t *testing.T) {
	m := testMemory()
	if err := m.writeBytes(0x1000, append([]byte("marker"), 0), taint.Of(7)); err != nil {
		t.Fatal(err)
	}
	s, tnt, err := m.readCString(0x1000)
	if err != nil || s != "marker" {
		t.Fatalf("readCString = %q, %v", s, err)
	}
	if !tnt.Has(7) {
		t.Error("string taint lost")
	}
	// Unterminated string runs into the segment boundary and errors.
	for i := 0; i < 64; i++ {
		_ = m.writeByte(uint32(0x1000+i), 'A', taint.Set{})
	}
	if _, _, err := m.readCString(0x1000); err == nil {
		t.Error("unterminated string read succeeded")
	}
}

func TestMemoryByteTaints(t *testing.T) {
	m := testMemory()
	_ = m.writeByte(0x1001, 'x', taint.Of(1))
	_ = m.writeByte(0x1002, 'y', taint.Of(2))
	taints, err := m.byteTaints(0x1000, 4)
	if err != nil || len(taints) != 4 {
		t.Fatalf("byteTaints: %v, %v", taints, err)
	}
	if !taints[0].Empty() || !taints[1].Has(1) || !taints[2].Has(2) || !taints[3].Empty() {
		t.Errorf("per-byte taints wrong: %v", taints)
	}
	if _, err := m.byteTaints(0x1000+62, 4); err == nil {
		t.Error("cross-boundary byteTaints succeeded")
	}
	if got, err := m.byteTaints(0x1000, 0); got != nil || err != nil {
		t.Error("zero-length byteTaints")
	}
}

func TestLoadProgramLayout(t *testing.T) {
	b := isa.NewBuilder("layout")
	b.RData("ro1", "const-one")
	b.RData("ro2", "const-two")
	b.Buf("rw1", 32)
	b.Halt()
	prog := b.MustBuild()

	m := &memory{}
	symbols := m.loadProgram(prog)
	// Read-only items land in the rdata window, writable below DataBase.
	for _, name := range []string{"ro1", "ro2"} {
		addr := symbols[name]
		if addr < RDataBase || addr >= DataBase {
			t.Errorf("%s at %#x outside rdata window", name, addr)
		}
		if !m.inReadOnly(addr) {
			t.Errorf("%s not read-only", name)
		}
	}
	if addr := symbols["rw1"]; addr < DataBase {
		t.Errorf("rw1 at %#x inside rdata window", addr)
	}
	// Contents loaded.
	s, _, err := m.readCString(symbols["ro1"])
	if err != nil || s != "const-one" {
		t.Errorf("ro1 = %q, %v", s, err)
	}
	// Guard padding separates items: the byte right after a string's NUL
	// belongs to the same segment but is zero.
	if bt, _, err := m.readByte(symbols["ro1"] + uint32(len("const-one")) + 1); err != nil || bt != 0 {
		t.Errorf("guard byte = %#x, %v", bt, err)
	}
	// Stack mapped.
	if err := m.writeWord(StackTop-4, 1, taint.Set{}); err != nil {
		t.Errorf("stack write: %v", err)
	}
}

func TestDeterministicLayoutAcrossLoads(t *testing.T) {
	b := isa.NewBuilder("layout2")
	b.RData("a", "x")
	b.Buf("b", 8)
	b.Halt()
	prog := b.MustBuild()
	m1, m2 := &memory{}, &memory{}
	s1 := m1.loadProgram(prog)
	s2 := m2.loadProgram(prog)
	for name := range s1 {
		if s1[name] != s2[name] {
			t.Errorf("%s at %#x vs %#x across loads", name, s1[name], s2[name])
		}
	}
}
