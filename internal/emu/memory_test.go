package emu

import (
	"strings"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

func testMemory() *memory {
	m := &memory{}
	m.mapSegment("rw", 0x1000, 64, false)
	m.mapSegment("ro", 0x2000, 16, true)
	return m
}

func TestMemoryWordRoundTrip(t *testing.T) {
	m := testMemory()
	tnt := taint.Of(3)
	if err := m.writeWord(0x1000, 0xDEADBEEF, tnt); err != nil {
		t.Fatal(err)
	}
	v, got, err := m.readWord(0x1000)
	if err != nil || v != 0xDEADBEEF {
		t.Fatalf("readWord = %#x, %v", v, err)
	}
	if !got.Has(3) {
		t.Error("taint lost")
	}
	// Little-endian layout.
	b, _, _ := m.readByte(0x1000)
	if b != 0xEF {
		t.Errorf("low byte = %#x", b)
	}
}

func TestMemoryBounds(t *testing.T) {
	m := testMemory()
	// Unmapped address.
	if _, _, err := m.readWord(0x5000); err == nil {
		t.Error("unmapped read succeeded")
	}
	// Word crossing the segment end.
	if _, _, err := m.readWord(0x1000 + 62); err == nil {
		t.Error("cross-boundary read succeeded")
	}
	if err := m.writeWord(0x1000+62, 1, taint.Set{}); err == nil {
		t.Error("cross-boundary write succeeded")
	}
	// Byte at the last valid offset works.
	if _, _, err := m.readByte(0x1000 + 63); err != nil {
		t.Errorf("last byte read: %v", err)
	}
}

func TestMemoryReadOnlyEnforced(t *testing.T) {
	m := testMemory()
	for _, f := range []func() error{
		func() error { return m.writeByte(0x2000, 1, taint.Set{}) },
		func() error { return m.writeWord(0x2000, 1, taint.Set{}) },
		func() error { return m.writeBytes(0x2000, []byte{1, 2}, taint.Set{}) },
	} {
		if err := f(); err == nil || !strings.Contains(err.Error(), "read-only") {
			t.Errorf("read-only write: %v", err)
		}
	}
	if !m.inReadOnly(0x2000) || m.inReadOnly(0x1000) {
		t.Error("inReadOnly wrong")
	}
}

func TestMemoryCString(t *testing.T) {
	m := testMemory()
	if err := m.writeBytes(0x1000, append([]byte("marker"), 0), taint.Of(7)); err != nil {
		t.Fatal(err)
	}
	s, tnt, err := m.readCString(0x1000)
	if err != nil || s != "marker" {
		t.Fatalf("readCString = %q, %v", s, err)
	}
	if !tnt.Has(7) {
		t.Error("string taint lost")
	}
	// Unterminated string runs into the segment boundary and errors.
	for i := 0; i < 64; i++ {
		_ = m.writeByte(uint32(0x1000+i), 'A', taint.Set{})
	}
	if _, _, err := m.readCString(0x1000); err == nil {
		t.Error("unterminated string read succeeded")
	}
}

func TestMemoryByteTaints(t *testing.T) {
	m := testMemory()
	_ = m.writeByte(0x1001, 'x', taint.Of(1))
	_ = m.writeByte(0x1002, 'y', taint.Of(2))
	taints, err := m.byteTaints(0x1000, 4)
	if err != nil || len(taints) != 4 {
		t.Fatalf("byteTaints: %v, %v", taints, err)
	}
	if !taints[0].Empty() || !taints[1].Has(1) || !taints[2].Has(2) || !taints[3].Empty() {
		t.Errorf("per-byte taints wrong: %v", taints)
	}
	if _, err := m.byteTaints(0x1000+62, 4); err == nil {
		t.Error("cross-boundary byteTaints succeeded")
	}
	if got, err := m.byteTaints(0x1000, 0); got != nil || err != nil {
		t.Error("zero-length byteTaints")
	}
}

func TestFindCacheInvalidatedByMapSegment(t *testing.T) {
	m := &memory{}
	a := m.mapSegment("a", 0x1000, 64, false)
	// Warm the last-hit cache on "a".
	if s, err := m.find(0x1010); err != nil || s != a {
		t.Fatalf("find(0x1010) = %v, %v", s, err)
	}
	// Mapping segments below and above must invalidate the cache and
	// keep the base-sorted order binary search depends on.
	lo := m.mapSegment("lo", 0x100, 16, false)
	hi := m.mapSegment("hi", 0x3000, 16, true)
	for _, tc := range []struct {
		addr uint32
		want *segment
	}{
		{0x100, lo}, {0x10F, lo},
		{0x1000, a}, {0x103F, a},
		{0x3000, hi}, {0x300F, hi},
	} {
		s, err := m.find(tc.addr)
		if err != nil || s != tc.want {
			t.Errorf("find(%#x) = %v, %v; want segment %q", tc.addr, s, err, tc.want.name)
		}
	}
	// Gap and out-of-range addresses fault regardless of what the cache
	// last held.
	for _, addr := range []uint32{0x0FF, 0x110, 0x800, 0x1040, 0x2FFF, 0x3010} {
		if _, err := m.find(addr); err == nil {
			t.Errorf("find(%#x) succeeded in a gap", addr)
		}
	}
}

func TestFindRangeCrossSegmentFaults(t *testing.T) {
	m := &memory{}
	m.mapSegment("a", 0x1000, 64, false)
	m.mapSegment("b", 0x1040, 64, false) // directly adjacent
	// Ranges wholly inside one segment work, including at the seam.
	if _, err := m.findRange(0x103C, 4); err != nil {
		t.Errorf("in-segment range: %v", err)
	}
	if _, err := m.findRange(0x1040, 4); err != nil {
		t.Errorf("range at next segment start: %v", err)
	}
	// A range straddling the boundary faults even though every byte of
	// it is mapped — segments are distinct objects.
	if _, err := m.findRange(0x103E, 4); err == nil || !strings.Contains(err.Error(), "crosses segment") {
		t.Errorf("straddling findRange: %v", err)
	}
	if _, _, err := m.readWord(0x103E); err == nil {
		t.Error("straddling readWord succeeded")
	}
	if err := m.writeWord(0x103E, 1, taint.Set{}); err == nil {
		t.Error("straddling writeWord succeeded")
	}
	if _, _, err := m.readBytes(0x1030, 32); err == nil {
		t.Error("straddling readBytes succeeded")
	}
}

func TestResetClearsShadowNoTaintLeak(t *testing.T) {
	m := &memory{}
	m.mapSegment("rw", 0x1000, 4*shadowPageSize, false)
	s := m.segs[0]
	// Run N: taint bytes on two distinct shadow pages.
	if err := m.writeByte(0x1000+5, 0xAA, taint.Of(1)); err != nil {
		t.Fatal(err)
	}
	if err := m.writeByte(0x1000+2*shadowPageSize+7, 0xBB, taint.Of(2)); err != nil {
		t.Fatal(err)
	}
	if !s.anyTaint {
		t.Fatal("anyTaint not set by tainted write")
	}
	if s.shadow[0] == nil || s.shadow[2] == nil {
		t.Fatal("touched shadow pages not allocated")
	}
	if s.shadow[1] != nil || s.shadow[3] != nil {
		t.Error("untouched shadow pages allocated eagerly")
	}

	// Run N+1 starts from reset: neither data nor taint may leak.
	m.reset()
	if s.anyTaint {
		t.Error("anyTaint survived reset")
	}
	b, tnt, err := m.readByte(0x1000 + 5)
	if err != nil || b != 0 || !tnt.Empty() {
		t.Errorf("after reset: byte=%#x taint=%v err=%v", b, tnt, err)
	}
	taints, err := m.byteTaints(0x1000, uint32(len(s.data)))
	if err != nil {
		t.Fatal(err)
	}
	for i, set := range taints {
		if !set.Empty() {
			t.Fatalf("taint leaked across reset at offset %d: %v", i, set)
		}
	}
	// Pages are retained for reuse (cleared, not freed).
	if s.shadow[0] == nil || s.shadow[2] == nil {
		t.Error("reset freed shadow pages instead of clearing them")
	}
	// Re-tainting after reset works on the recycled pages.
	if err := m.writeByte(0x1000+5, 0xCC, taint.Of(3)); err != nil {
		t.Fatal(err)
	}
	if _, tnt, _ := m.readByte(0x1000 + 5); !tnt.Has(3) || tnt.Has(1) {
		t.Errorf("recycled page taint = %v", tnt)
	}
}

func TestReadOnlySegmentsNeverAllocateShadows(t *testing.T) {
	b := isa.NewBuilder("ro-shadow")
	b.RData("k", "constant")
	b.Buf("buf", 32)
	b.Halt()
	m := &memory{}
	symbols := m.loadProgram(b.MustBuild())
	for _, s := range m.segs {
		if s.shadow != nil || s.anyTaint {
			t.Errorf("segment %q has eager shadow state after load", s.name)
		}
	}
	// Reads keep .rdata shadow-free, and tainted writes to it fault
	// before reaching the taint store.
	if _, _, err := m.readCString(symbols["k"]); err != nil {
		t.Fatal(err)
	}
	if err := m.writeByte(symbols["k"], 'x', taint.Of(1)); err == nil {
		t.Error("write to .rdata succeeded")
	}
	ro, err := m.find(symbols["k"])
	if err != nil {
		t.Fatal(err)
	}
	if ro.shadow != nil || ro.anyTaint {
		t.Error(".rdata allocated a taint shadow")
	}
}

func TestLoadProgramLayout(t *testing.T) {
	b := isa.NewBuilder("layout")
	b.RData("ro1", "const-one")
	b.RData("ro2", "const-two")
	b.Buf("rw1", 32)
	b.Halt()
	prog := b.MustBuild()

	m := &memory{}
	symbols := m.loadProgram(prog)
	// Read-only items land in the rdata window, writable below DataBase.
	for _, name := range []string{"ro1", "ro2"} {
		addr := symbols[name]
		if addr < RDataBase || addr >= DataBase {
			t.Errorf("%s at %#x outside rdata window", name, addr)
		}
		if !m.inReadOnly(addr) {
			t.Errorf("%s not read-only", name)
		}
	}
	if addr := symbols["rw1"]; addr < DataBase {
		t.Errorf("rw1 at %#x inside rdata window", addr)
	}
	// Contents loaded.
	s, _, err := m.readCString(symbols["ro1"])
	if err != nil || s != "const-one" {
		t.Errorf("ro1 = %q, %v", s, err)
	}
	// Guard padding separates items: the byte right after a string's NUL
	// belongs to the same segment but is zero.
	if bt, _, err := m.readByte(symbols["ro1"] + uint32(len("const-one")) + 1); err != nil || bt != 0 {
		t.Errorf("guard byte = %#x, %v", bt, err)
	}
	// Stack mapped.
	if err := m.writeWord(StackTop-4, 1, taint.Set{}); err != nil {
		t.Errorf("stack write: %v", err)
	}
}

func TestDeterministicLayoutAcrossLoads(t *testing.T) {
	b := isa.NewBuilder("layout2")
	b.RData("a", "x")
	b.Buf("b", 8)
	b.Halt()
	prog := b.MustBuild()
	m1, m2 := &memory{}, &memory{}
	s1 := m1.loadProgram(prog)
	s2 := m2.loadProgram(prog)
	for name := range s1 {
		if s1[name] != s2[name] {
			t.Errorf("%s at %#x vs %#x across loads", name, s1[name], s2[name])
		}
	}
}
