package emu

import (
	"strings"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// mutexChecker builds the canonical infection-marker program: open a
// marker mutex, exit if present, otherwise create it and do work.
func mutexChecker(name string) *isa.Program {
	b := isa.NewBuilder("mutex-checker")
	b.RData("marker", name)
	b.CallAPI("OpenMutexA", isa.Sym("marker"))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jnz("infected")
	b.CallAPI("CreateMutexA", isa.Sym("marker"))
	b.CallAPI("Sleep", isa.Imm(10)).Comment("malicious work placeholder")
	b.Halt()
	b.Label("infected")
	b.CallAPI("ExitProcess", isa.Imm(0))
	return b.MustBuild()
}

func TestMutexCheckerCleanHost(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	tr, err := Run(mutexChecker("!VoqA.I4"), env, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q), want halt", tr.Exit, tr.Fault)
	}
	// The marker was created.
	if !env.Exists(winenv.KindMutex, "!VoqA.I4") {
		t.Error("marker mutex not created")
	}
	// The OpenMutexA result fed a predicate: Phase-I flags this sample.
	if !tr.HasTaintedPredicate() {
		t.Error("no tainted predicate recorded")
	}
	// Call log has context.
	open := tr.CallsTo("OpenMutexA")
	if len(open) != 1 {
		t.Fatalf("OpenMutexA calls = %d", len(open))
	}
	c := open[0]
	if c.Identifier != "!VoqA.I4" || c.ResourceKind != "mutex" || c.Op != "open" ||
		c.Success || c.Ret != 0 {
		t.Errorf("open call = %+v", c)
	}
	if c.LastError != uint32(winenv.ErrFileNotFound) {
		t.Errorf("LastError = %d", c.LastError)
	}
	if len(c.TaintSources) != 1 {
		t.Errorf("taint sources = %v", c.TaintSources)
	}
	// The trace carries the source table.
	if len(tr.Sources) == 0 {
		t.Fatal("no source table in trace")
	}
	info := tr.Sources[c.TaintSources[0]]
	if info.API != "OpenMutexA" || info.Identifier != "!VoqA.I4" {
		t.Errorf("source info = %+v", info)
	}
}

func TestMutexCheckerVaccinatedHost(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	env.Inject(winenv.Resource{Kind: winenv.KindMutex, Name: "!VoqA.I4"})
	tr, err := Run(mutexChecker("!VoqA.I4"), env, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitProcess {
		t.Fatalf("exit = %v, want exit-process (immunized)", tr.Exit)
	}
	// The work APIs never ran.
	if len(tr.CallsTo("Sleep")) != 0 {
		t.Error("malware work executed despite vaccine")
	}
	if len(tr.CallsTo("ExitProcess")) != 1 {
		t.Error("ExitProcess not logged")
	}
}

func TestForceSuccessMutationSimulatesMarker(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	tr, err := Run(mutexChecker("!VoqA.I4"), env, Options{
		Seed: 1,
		Mutations: []Mutation{{
			API: "OpenMutexA", CallerPC: -1, Identifier: "!voqa.i4", Mode: ForceSuccess,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitProcess {
		t.Fatalf("exit = %v, want exit-process under mutation", tr.Exit)
	}
	open := tr.CallsTo("OpenMutexA")[0]
	if !open.Mutated || !open.Success {
		t.Errorf("open call = %+v, want mutated success", open)
	}
	if !tr.Mutated {
		t.Error("trace not marked mutated")
	}
	// The mutation must not have side effects: no mutex in the env.
	if env.Exists(winenv.KindMutex, "!VoqA.I4") {
		t.Error("mutation leaked a resource into the environment")
	}
}

func TestForceFailureMutation(t *testing.T) {
	// A dropper that needs its file: CreateFile must succeed or it
	// gives up without persistence.
	b := isa.NewBuilder("dropper")
	b.RData("path", `C:\Windows\system32\twinrsdi.exe`)
	b.RData("runkey", `HKLM\Software\Microsoft\Windows\CurrentVersion\Run`)
	b.Buf("hkey", 4)
	b.CallAPI("CreateFileA", isa.Sym("path"), isa.Imm(0), isa.Imm(CreateNewDisposition))
	b.Cmp(isa.R(isa.EAX), isa.Imm(0xFFFFFFFF))
	b.Jz("fail")
	b.CallAPI("RegOpenKeyExA", isa.Sym("runkey"), isa.Sym("hkey"))
	b.Halt()
	b.Label("fail")
	b.CallAPI("ExitProcess", isa.Imm(1))
	prog := b.MustBuild()

	// Normal run drops the file and touches the Run key.
	env := winenv.New(winenv.DefaultIdentity())
	tr, err := Run(prog, env, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitHalt || len(tr.CallsTo("RegOpenKeyExA")) != 1 {
		t.Fatalf("normal run: exit=%v calls=%d", tr.Exit, len(tr.Calls))
	}

	// Mutated run: file creation fails, malware exits.
	env2 := winenv.New(winenv.DefaultIdentity())
	tr2, err := Run(prog, env2, Options{
		Seed: 2,
		Mutations: []Mutation{{
			API: "CreateFileA", CallerPC: -1,
			Identifier: `C:\Windows\system32\twinrsdi.exe`, Mode: ForceFailure,
		}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tr2.Exit != trace.ExitProcess || tr2.ExitCode != 1 {
		t.Fatalf("mutated run: exit=%v code=%d", tr2.Exit, tr2.ExitCode)
	}
	if len(tr2.CallsTo("RegOpenKeyExA")) != 0 {
		t.Error("persistence ran despite forced failure")
	}
	if env2.Exists(winenv.KindFile, `C:\Windows\system32\twinrsdi.exe`) {
		t.Error("forced-failure still created the file")
	}
}

// algoMutex builds the Figure-2-style program: derive a mutex name from
// the computer name via _snprintf("Global\\%s-99").
func algoMutex() *isa.Program {
	b := isa.NewBuilder("algo-mutex")
	b.RData("fmt", `Global\%s-99`)
	b.Buf("cname", 32)
	b.Buf("mname", 64)
	b.CallAPI("GetComputerNameA", isa.Sym("cname"), isa.Imm(32))
	b.CallAPI("_snprintf", isa.Sym("mname"), isa.Imm(64), isa.Sym("fmt"), isa.Sym("cname"))
	b.CallAPI("CreateMutexA", isa.Sym("mname"))
	b.CallAPI("GetLastError")
	b.Cmp(isa.R(isa.EAX), isa.Imm(uint32(winenv.ErrAlreadyExists)))
	b.Jz("infected")
	b.Halt()
	b.Label("infected")
	b.CallAPI("ExitProcess", isa.Imm(0))
	return b.MustBuild()
}

func TestAlgorithmDeterministicIdentifier(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	tr, err := Run(algoMutex(), env, Options{Seed: 3, RecordSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	create := tr.CallsTo("CreateMutexA")
	if len(create) != 1 {
		t.Fatalf("CreateMutexA calls = %d", len(create))
	}
	want := `Global\WIN-AUTOVAC01-99`
	if create[0].Identifier != want {
		t.Fatalf("identifier = %q, want %q", create[0].Identifier, want)
	}
	// Per-byte provenance: "Global\" prefix static (no taint), the
	// computer-name bytes carry the GetComputerNameA (semantic) label,
	// the "-99" suffix static again.
	it := create[0].IdentifierTaint
	if len(it) != len(want) {
		t.Fatalf("IdentifierTaint len = %d, want %d", len(it), len(want))
	}
	prefix := len(`Global\`)
	nameLen := len("WIN-AUTOVAC01")
	for i := range it {
		inName := i >= prefix && i < prefix+nameLen
		if inName && len(it[i]) == 0 {
			t.Errorf("byte %d (%c): expected semantic taint", i, want[i])
		}
		if !inName && len(it[i]) != 0 {
			t.Errorf("byte %d (%c): unexpected taint %v", i, want[i], it[i])
		}
	}
	// The semantic source resolves to GetComputerNameA.
	srcID := it[prefix][0]
	info := tr.Sources[srcID]
	if info.API != "GetComputerNameA" || info.Class != "semantic" {
		t.Errorf("name byte source = %+v", info)
	}
	// Steps recorded with API linkage.
	if len(tr.Steps) == 0 {
		t.Fatal("no steps recorded")
	}
	foundAPI := false
	for _, s := range tr.Steps {
		if s.Instr.Op == isa.CALLAPI && s.APISeq >= 0 {
			foundAPI = true
		}
	}
	if !foundAPI {
		t.Error("no CALLAPI step with APISeq linkage")
	}
	// GetLastError's result is tainted by the preceding CreateMutexA,
	// so the error-check branch registers as a tainted predicate.
	if !tr.HasTaintedPredicate() {
		t.Error("GetLastError comparison did not register as tainted predicate")
	}
}

func TestGetLastErrorTaintReachesPredicate(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	env.Inject(winenv.Resource{Kind: winenv.KindMutex, Name: `Global\WIN-AUTOVAC01-99`})
	tr, err := Run(algoMutex(), env, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	// With the vaccine mutex injected, CreateMutex reports
	// ALREADY_EXISTS and the malware exits.
	if tr.Exit != trace.ExitProcess {
		t.Fatalf("exit = %v, want exit-process", tr.Exit)
	}
}

func TestStackBalanceAcrossAPICalls(t *testing.T) {
	b := isa.NewBuilder("balance")
	b.RData("name", "m")
	b.Mov(isa.R(isa.EBX), isa.R(isa.ESP)).Comment("remember esp")
	b.CallAPI("CreateMutexA", isa.Sym("name"))
	b.CallAPI("GetTickCount")
	b.CallAPI("Sleep", isa.Imm(1))
	b.Sub(isa.R(isa.EBX), isa.R(isa.ESP)).Comment("ebx = old esp - esp")
	b.Halt()
	prog := b.MustBuild()

	c, err := New(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	tr := c.Execute()
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	if got := c.Reg(isa.EBX); got != 0 {
		t.Errorf("stack imbalance: %d bytes", int32(got))
	}
}

func TestLocalCallRet(t *testing.T) {
	b := isa.NewBuilder("callret")
	b.Mov(isa.R(isa.ECX), isa.Imm(0))
	b.Call("fn")
	b.Call("fn")
	b.Halt()
	b.Label("fn")
	b.Inc(isa.R(isa.ECX))
	b.Ret()
	prog := b.MustBuild()

	c, _ := New(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	tr := c.Execute()
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	if c.Reg(isa.ECX) != 2 {
		t.Errorf("ecx = %d, want 2", c.Reg(isa.ECX))
	}
}

func TestCallStackInAPILog(t *testing.T) {
	b := isa.NewBuilder("ctx")
	b.RData("name", "m")
	b.Call("helper")
	b.Halt()
	b.Label("helper")
	b.CallAPI("CreateMutexA", isa.Sym("name"))
	b.Ret()
	prog := b.MustBuild()

	tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	calls := tr.CallsTo("CreateMutexA")
	if len(calls) != 1 || len(calls[0].CallStack) != 1 {
		t.Fatalf("call stack = %+v", calls)
	}
}

func TestALUAndMovb(t *testing.T) {
	b := isa.NewBuilder("alu")
	b.Buf("buf", 8)
	b.Mov(isa.R(isa.EAX), isa.Imm(10))
	b.Add(isa.R(isa.EAX), isa.Imm(5))    // 15
	b.Sub(isa.R(isa.EAX), isa.Imm(3))    // 12
	b.Shl(isa.R(isa.EAX), isa.Imm(2))    // 48
	b.Shr(isa.R(isa.EAX), isa.Imm(1))    // 24
	b.Or(isa.R(isa.EAX), isa.Imm(0x100)) // 0x118
	b.And(isa.R(isa.EAX), isa.Imm(0xFF)) // 0x18
	b.Movb(isa.MemSym("buf"), isa.R(isa.EAX))
	b.Movb(isa.R(isa.EBX), isa.MemSym("buf"))
	b.Xor(isa.R(isa.EAX), isa.R(isa.EAX)) // 0 and taint cleared
	b.Halt()
	prog := b.MustBuild()

	c, _ := New(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	tr := c.Execute()
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	if c.Reg(isa.EBX) != 0x18 {
		t.Errorf("ebx = %#x, want 0x18", c.Reg(isa.EBX))
	}
	if c.Reg(isa.EAX) != 0 {
		t.Errorf("eax = %#x, want 0", c.Reg(isa.EAX))
	}
}

func TestStepLimit(t *testing.T) {
	b := isa.NewBuilder("spin")
	b.Label("loop")
	b.Jmp("loop")
	prog := b.MustBuild()
	tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{MaxSteps: 100})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitLimit || tr.StepCount != 100 {
		t.Errorf("exit = %v, steps = %d", tr.Exit, tr.StepCount)
	}
}

func TestUnknownAPIFaults(t *testing.T) {
	b := isa.NewBuilder("bad")
	b.Raw(isa.Instr{Op: isa.CALLAPI, API: "NoSuchAPI"})
	prog := b.MustBuild()
	tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitFault || !strings.Contains(tr.Fault, "NoSuchAPI") {
		t.Errorf("exit = %v, fault = %q", tr.Exit, tr.Fault)
	}
}

func TestArgCountMismatchFaults(t *testing.T) {
	b := isa.NewBuilder("bad-args")
	b.Raw(isa.Instr{Op: isa.CALLAPI, API: "OpenMutexA", NArgs: 0})
	prog := b.MustBuild()
	tr, _ := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if tr.Exit != trace.ExitFault || !strings.Contains(tr.Fault, "expects 1 args") {
		t.Errorf("exit = %v, fault = %q", tr.Exit, tr.Fault)
	}
}

func TestBadMemoryFaults(t *testing.T) {
	b := isa.NewBuilder("wild")
	b.Mov(isa.R(isa.EAX), isa.MemAbs(0xDEAD0000))
	prog := b.MustBuild()
	tr, _ := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if tr.Exit != trace.ExitFault || !strings.Contains(tr.Fault, "unmapped") {
		t.Errorf("exit = %v, fault = %q", tr.Exit, tr.Fault)
	}
}

func TestWriteToRDataFaults(t *testing.T) {
	b := isa.NewBuilder("romod")
	b.RData("s", "const")
	b.Mov(isa.MemSym("s"), isa.Imm(1))
	prog := b.MustBuild()
	tr, _ := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if tr.Exit != trace.ExitFault || !strings.Contains(tr.Fault, "read-only") {
		t.Errorf("exit = %v, fault = %q", tr.Exit, tr.Fault)
	}
}

func TestFallOffEndHalts(t *testing.T) {
	b := isa.NewBuilder("dribble")
	b.Nop()
	prog := b.MustBuild()
	tr, _ := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if tr.Exit != trace.ExitHalt {
		t.Errorf("exit = %v, want halt", tr.Exit)
	}
}

func TestRetWithEmptyCallStackFaults(t *testing.T) {
	b := isa.NewBuilder("badret")
	b.Push(isa.Imm(0))
	b.Ret()
	prog := b.MustBuild()
	tr, _ := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	if tr.Exit != trace.ExitFault {
		t.Errorf("exit = %v, want fault", tr.Exit)
	}
}

func TestDeterministicRandPerSeed(t *testing.T) {
	b := isa.NewBuilder("rng")
	b.CallAPI("GetTickCount")
	b.Mov(isa.R(isa.EBX), isa.R(isa.EAX))
	b.Halt()
	prog := b.MustBuild()

	run := func(seed uint64) uint32 {
		c, _ := New(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: seed})
		c.Execute()
		return c.Reg(isa.EBX)
	}
	if run(7) != run(7) {
		t.Error("same seed produced different random values")
	}
	if run(7) == run(8) {
		t.Error("different seeds produced identical random values")
	}
}

func TestJumpsSignedComparisons(t *testing.T) {
	b := isa.NewBuilder("jl")
	b.Mov(isa.R(isa.EAX), isa.Imm(3))
	b.Cmp(isa.R(isa.EAX), isa.Imm(5))
	b.Jl("less")
	b.Mov(isa.R(isa.EBX), isa.Imm(0))
	b.Halt()
	b.Label("less")
	b.Mov(isa.R(isa.EBX), isa.Imm(1))
	b.Cmp(isa.R(isa.EAX), isa.Imm(1))
	b.Jge("done")
	b.Mov(isa.R(isa.EBX), isa.Imm(2))
	b.Label("done")
	b.Halt()
	prog := b.MustBuild()
	c, _ := New(prog, winenv.New(winenv.DefaultIdentity()), Options{})
	tr := c.Execute()
	if tr.Exit != trace.ExitHalt || c.Reg(isa.EBX) != 1 {
		t.Errorf("exit=%v ebx=%d", tr.Exit, c.Reg(isa.EBX))
	}
}

// CreateNewDisposition re-exports the CreateFileA disposition for tests
// in this package (winapi.CreateNew).
const CreateNewDisposition = 1

func TestMutationByCallerPC(t *testing.T) {
	// Two CreateMutexA sites; only the second is mutated.
	b := isa.NewBuilder("two-sites")
	b.RData("m1", "alpha")
	b.RData("m2", "beta")
	b.CallAPI("CreateMutexA", isa.Sym("m1"))
	b.CallAPI("CreateMutexA", isa.Sym("m2"))
	b.Halt()
	prog := b.MustBuild()

	// Find the second CALLAPI pc.
	pc2 := -1
	for i, in := range prog.Instrs {
		if in.Op == isa.CALLAPI {
			pc2 = i // last one wins
		}
	}
	env := winenv.New(winenv.DefaultIdentity())
	tr, err := Run(prog, env, Options{
		Mutations: []Mutation{{API: "CreateMutexA", CallerPC: pc2, Mode: ForceFailure}},
	})
	if err != nil {
		t.Fatal(err)
	}
	calls := tr.CallsTo("CreateMutexA")
	if len(calls) != 2 {
		t.Fatalf("calls = %d", len(calls))
	}
	if calls[0].Mutated || !calls[1].Mutated {
		t.Errorf("mutation matched wrong site: %+v", calls)
	}
	if !env.Exists(winenv.KindMutex, "alpha") || env.Exists(winenv.KindMutex, "beta") {
		t.Error("environment state wrong after per-site mutation")
	}
}

func TestTaintThroughStringOps(t *testing.T) {
	// Read a registry value, compare it with lstrcmpA: the comparison's
	// TEST must be tainted.
	b := isa.NewBuilder("strcmp-taint")
	b.RData("key", `HKLM\Software\Mark`)
	b.RData("val", "installed")
	b.RData("expect", "1")
	b.Buf("hkey", 4)
	b.Buf("buf", 16)
	b.CallAPI("RegOpenKeyExA", isa.Sym("key"), isa.Sym("hkey"))
	b.CallAPI("RegQueryValueExA", isa.MemSym("hkey"), isa.Sym("val"), isa.Sym("buf"), isa.Imm(16))
	b.CallAPI("lstrcmpA", isa.Sym("buf"), isa.Sym("expect"))
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Jnz("skip")
	b.Label("skip")
	b.Halt()
	prog := b.MustBuild()

	env := winenv.New(winenv.DefaultIdentity())
	env.Inject(winenv.Resource{Kind: winenv.KindRegistry, Name: `HKLM\Software\Mark`, Owner: "system"})
	env.Inject(winenv.Resource{Kind: winenv.KindRegistry, Name: `HKLM\Software\Mark\installed`, Owner: "system", Data: []byte("1")})
	tr, err := Run(prog, env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	if !tr.HasTaintedPredicate() {
		t.Fatal("registry-value comparison not flagged as tainted predicate")
	}
}
