package emu

import (
	"sort"
	"testing"

	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// TestLoaderCoversRegistryExactlyOnce pins the loader image's covering
// property: every API in the standard registry is exported by exactly
// one module, and every export names a registered API. Hash-resolving
// malware can therefore reach any API through the image, and the
// static surface pass never resolves a row to a name the registry
// cannot dispatch.
func TestLoaderCoversRegistryExactlyOnce(t *testing.T) {
	l := Loader()
	reg := winapi.Standard()

	exportedBy := make(map[string][]string)
	for _, m := range l.Modules {
		for _, e := range m.Exports {
			exportedBy[e.Name] = append(exportedBy[e.Name], m.Name)
		}
	}
	for _, api := range reg.Names() {
		switch mods := exportedBy[api]; len(mods) {
		case 1: // covered exactly once
		case 0:
			t.Errorf("registry API %s missing from the loader image", api)
		default:
			t.Errorf("registry API %s exported by %d modules: %v", api, len(mods), mods)
		}
	}
	for name := range exportedBy {
		if _, ok := reg.Lookup(name); !ok {
			t.Errorf("loader exports %s, which the registry cannot dispatch", name)
		}
	}
}

// TestLoaderBindingsCollisionFree re-checks, as an explicit test, the
// two uniqueness properties buildLoader panics on — per-module hash
// uniqueness and global address uniqueness — plus the round trip the
// dispatcher relies on: APIAt(ProcAddr(name)) == name for every export.
func TestLoaderBindingsCollisionFree(t *testing.T) {
	l := Loader()
	addrs := make(map[uint32]string)
	for _, m := range l.Modules {
		hashes := make(map[uint32]string)
		for _, e := range m.Exports {
			if prev, dup := hashes[e.Hash]; dup {
				t.Errorf("%s: hash %#x shared by %s and %s", m.Name, e.Hash, prev, e.Name)
			}
			hashes[e.Hash] = e.Name
			if prev, dup := addrs[e.Addr]; dup {
				t.Errorf("address %#x shared by %s and %s", e.Addr, prev, e.Name)
			}
			addrs[e.Addr] = e.Name
			if e.Hash != LoaderHash(e.Name) || e.Addr != winapi.ProcAddr(e.Name) {
				t.Errorf("%s: row disagrees with LoaderHash/ProcAddr", e.Name)
			}
			got, ok := l.APIAt(e.Addr)
			if !ok || got != e.Name {
				t.Errorf("APIAt(%#x) = %q,%v, want %q", e.Addr, got, ok, e.Name)
			}
		}
	}
}

// TestLoaderImageDecodesToItself walks the mapped bytes through
// ReadWord — the static pass's only view of the image — and checks the
// decoded directory and export rows reproduce the structured form, so
// the two views (structured for the emulator, raw words for the static
// pass) can never drift apart.
func TestLoaderImageDecodesToItself(t *testing.T) {
	l := Loader()
	count, ok := l.ReadWord(l.Base)
	if !ok || count != uint32(len(l.Modules)) {
		t.Fatalf("module count word = %d,%v, want %d", count, ok, len(l.Modules))
	}
	for i, m := range l.Modules {
		dir := l.Base + 4 + uint32(12*i)
		if dir != m.DirAddr {
			t.Errorf("%s: directory at %#x, want %#x", m.Name, m.DirAddr, dir)
		}
		nameAddr, _ := l.ReadWord(dir)
		exports, _ := l.ReadWord(dir + 4)
		table, _ := l.ReadWord(dir + 8)
		if nameAddr != m.NameAddr || exports != uint32(len(m.Exports)) || table != m.TableAddr {
			t.Errorf("%s: directory decodes to {%#x,%d,%#x}, want {%#x,%d,%#x}",
				m.Name, nameAddr, exports, table, m.NameAddr, len(m.Exports), m.TableAddr)
		}
		if m.TableEnd != m.TableAddr+8*uint32(len(m.Exports)) {
			t.Errorf("%s: TableEnd %#x inconsistent with %d rows at %#x",
				m.Name, m.TableEnd, len(m.Exports), m.TableAddr)
		}
		for j, e := range m.Exports {
			row := m.TableAddr + 8*uint32(j)
			h, _ := l.ReadWord(row)
			a, _ := l.ReadWord(row + 4)
			if h != e.Hash || a != e.Addr {
				t.Errorf("%s[%d]: row words {%#x,%#x}, want {%#x,%#x}", m.Name, j, h, a, e.Hash, e.Addr)
			}
		}
		// Rows are sorted by name so the image is a deterministic
		// function of the module list alone.
		if !sort.SliceIsSorted(m.Exports, func(a, b int) bool {
			return m.Exports[a].Name < m.Exports[b].Name
		}) {
			t.Errorf("%s: export rows not name-sorted", m.Name)
		}
	}
	// Out-of-image reads must refuse rather than wrap.
	if _, ok := l.ReadWord(l.Base + l.Size - 2); ok {
		t.Error("ReadWord straddling the image end succeeded")
	}
	if _, ok := l.ReadWord(l.Base - 4); ok {
		t.Error("ReadWord below the image succeeded")
	}
}

// TestModulesPartitionRegistry pins the winenv module list itself:
// module names are unique and every export list is duplicate-free (the
// loader's covering test above handles cross-module duplicates).
func TestModulesPartitionRegistry(t *testing.T) {
	names := make(map[string]bool)
	for _, m := range winenv.Modules() {
		if names[m.Name] {
			t.Errorf("duplicate module %s", m.Name)
		}
		names[m.Name] = true
		seen := make(map[string]bool)
		for _, e := range m.Exports {
			if seen[e] {
				t.Errorf("%s exports %s twice", m.Name, e)
			}
			seen[e] = true
		}
	}
}
