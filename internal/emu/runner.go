package emu

import (
	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// Runner is a reusable execution arena for repeated runs of one program
// against one environment — Phase-II's shape: impact analysis re-executes
// a sample once per candidate mutation. The first Run builds the CPU
// (predecode is already cached on the program); every later Run rewinds
// the environment to its snapshot and the CPU to its initial state
// instead of rebuilding either, so the per-run cost is a memory reset
// rather than allocation churn.
type Runner struct {
	prog *isa.Program
	env  *winenv.Env
	snap *winenv.Snapshot
	cpu  *CPU
}

// NewRunner prepares an arena around prog and env. The environment is
// snapshotted immediately: every Run starts from the state env had at
// this call. Close releases the snapshot and pooled buffers.
func NewRunner(prog *isa.Program, env *winenv.Env) (*Runner, error) {
	if _, err := decodedFor(prog); err != nil {
		return nil, err
	}
	return &Runner{prog: prog, env: env, snap: env.Snapshot()}, nil
}

// Env returns the runner's environment (its state is whatever the last
// Run left behind, until the next Run rewinds it).
func (r *Runner) Env() *winenv.Env { return r.env }

// Run executes the program under opts and returns the trace. The
// returned trace remains valid after later Runs and after Close.
func (r *Runner) Run(opts Options) (*trace.Trace, error) {
	if r.cpu == nil {
		c, err := New(r.prog, r.env, opts)
		if err != nil {
			return nil, err
		}
		r.cpu = c
	} else {
		r.env.Reset(r.snap)
		r.cpu.resetFor(opts)
	}
	return r.cpu.Execute(), nil
}

// Close releases the environment snapshot (leaving the environment in
// its last post-run state) and returns pooled buffers.
func (r *Runner) Close() {
	if r.snap != nil {
		r.snap.Close()
		r.snap = nil
	}
	if r.cpu != nil {
		r.cpu.Release()
		r.cpu = nil
	}
}
