package emu

import "autovac/internal/isa"

// SegmentInfo describes one mapped range of the emulator's address
// space for a given program, without constructing a CPU.
type SegmentInfo struct {
	Name     string
	Base     uint32
	Size     uint32
	ReadOnly bool
}

// Contains reports whether [addr, addr+n) lies inside the segment.
func (s SegmentInfo) Contains(addr, n uint32) bool {
	return addr >= s.Base && n <= s.Size && addr-s.Base <= s.Size-n
}

// LayoutInfo is the load-time memory layout of a program: where each
// data symbol lands and which address ranges are mapped. The static
// analysis layer uses it to decide, without running anything, whether
// a memory access would fault at replay time.
type LayoutInfo struct {
	// Symbols maps each data item name to its load address.
	Symbols map[string]uint32
	// Segments lists the mapped ranges (.rdata, .data, stack).
	Segments []SegmentInfo
}

// Mapped reports whether [addr, addr+n) is entirely inside one mapped
// segment — the same rule the memory subsystem enforces at run time.
func (l LayoutInfo) Mapped(addr, n uint32) bool {
	for _, s := range l.Segments {
		if s.Contains(addr, n) {
			return true
		}
	}
	return false
}

// Writable reports whether [addr, addr+n) is inside one writable
// mapped segment.
func (l LayoutInfo) Writable(addr, n uint32) bool {
	for _, s := range l.Segments {
		if s.Contains(addr, n) {
			return !s.ReadOnly
		}
	}
	return false
}

// Layout computes the load-time layout the emulator would produce for
// the program, by running the real loader against a scratch address
// space. It never executes instructions.
func Layout(p *isa.Program) LayoutInfo {
	m := &memory{}
	symbols := m.loadProgram(p)
	info := LayoutInfo{Symbols: symbols}
	for _, s := range m.segs {
		info.Segments = append(info.Segments, SegmentInfo{
			Name:     s.name,
			Base:     s.base,
			Size:     uint32(len(s.data)),
			ReadOnly: s.readOnly,
		})
	}
	return info
}
