package emu

import (
	"encoding/json"
	"testing"

	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// hotLoop builds an untainted pure-compute loop: the steady-state shape
// the predecoded dispatch and sparse shadows are optimised for.
func hotLoop(iters int) *isa.Program {
	b := isa.NewBuilder("hot-loop")
	b.Mov(isa.R(isa.ECX), isa.Imm(uint32(iters)))
	b.Label("loop")
	b.Sub(isa.R(isa.ECX), isa.Imm(1))
	b.Jnz("loop")
	b.Halt()
	return b.MustBuild()
}

func traceJSON(t *testing.T, tr *trace.Trace) string {
	t.Helper()
	b, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestRunnerByteIdentity checks that pooled re-execution is
// indistinguishable from one-shot execution: run N and run N+1 through
// one Runner must serialize identically, and both must match a fresh
// emulator on a fresh environment.
func TestRunnerByteIdentity(t *testing.T) {
	prog := mutexChecker("!RunnerId")
	opts := Options{Seed: 7, RecordSteps: true}

	r, err := NewRunner(prog, winenv.New(winenv.DefaultIdentity()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	tr1, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := r.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	oneShot, err := Run(prog, winenv.New(winenv.DefaultIdentity()), opts)
	if err != nil {
		t.Fatal(err)
	}

	j1, j2, j3 := traceJSON(t, tr1), traceJSON(t, tr2), traceJSON(t, oneShot)
	if j1 != j2 {
		t.Error("pooled run N+1 diverged from run N")
	}
	if j1 != j3 {
		t.Error("pooled run diverged from one-shot execution")
	}
	// tr1 must still be intact after tr2 was produced and after Close:
	// traces never alias pooled emulator state.
	r.Close()
	if traceJSON(t, tr1) != j1 {
		t.Error("earlier trace mutated by later run or Close")
	}
}

// TestRunnerEnvRewound checks that the environment side effects of run N
// are invisible to run N+1.
func TestRunnerEnvRewound(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	r, err := NewRunner(mutexChecker("!Rewind"), env)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	for i := 0; i < 3; i++ {
		tr, err := r.Run(Options{Seed: 1})
		if err != nil {
			t.Fatal(err)
		}
		// On a rewound host the marker never pre-exists, so every run
		// takes the clean-host path and creates it afresh.
		if tr.Exit != trace.ExitHalt {
			t.Fatalf("run %d: exit = %v (fault %q), want halt", i, tr.Exit, tr.Fault)
		}
		if got := len(tr.CallsTo("CreateMutexA")); got != 1 {
			t.Fatalf("run %d: CreateMutexA calls = %d (env state leaked)", i, got)
		}
	}
}

// TestRunnerTierParityAcrossRewinds checks block-compiled and step-wise
// execution stay byte-identical through the Runner's snapshot-rewind
// cycle, alternating tiers run to run — the environment rewind lands
// "mid-block" from the compiled table's point of view (the next run
// re-enters compiled runs from pc 0 against rewound state), and step
// recording (which bails to tier-1) must see the same machine either
// way.
func TestRunnerTierParityAcrossRewinds(t *testing.T) {
	prog := mutexChecker("!TierRewind")
	r, err := NewRunner(prog, winenv.New(winenv.DefaultIdentity()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	for _, opts := range []Options{
		{Seed: 7},
		{Seed: 7, RecordSteps: true},
	} {
		name := "plain"
		if opts.RecordSteps {
			name = "record-steps"
		}
		var ref string
		// Alternate tiers across rewinds: compiled, step-wise, compiled.
		for i, disable := range []bool{false, true, false} {
			o := opts
			o.DisableBlocks = disable
			tr, err := r.Run(o)
			if err != nil {
				t.Fatal(err)
			}
			j := traceJSON(t, tr)
			if i == 0 {
				ref = j
			} else if j != ref {
				t.Errorf("%s: run %d (DisableBlocks=%v) diverged from run 0", name, i, disable)
			}
		}
	}
}

// TestRunnerSteadyStateAllocFree pins the perf contract from the issue:
// an untainted steady-state step loop through a pooled Runner performs
// zero allocations per step. The per-run budget covers the handful of
// fixed-cost objects a run legitimately produces (the trace header and
// its source table), not anything proportional to the step count.
func TestRunnerSteadyStateAllocFree(t *testing.T) {
	const iters = 20000 // ~40k steps per run
	r, err := NewRunner(hotLoop(iters), winenv.New(winenv.DefaultIdentity()))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	// Warm-up run builds the CPU, the memory image, and pool entries.
	tr, err := r.Run(Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitHalt {
		t.Fatalf("exit = %v (fault %q)", tr.Exit, tr.Fault)
	}
	steps := tr.StepCount

	perRun := testing.AllocsPerRun(10, func() {
		if _, err := r.Run(Options{Seed: 1}); err != nil {
			t.Fatal(err)
		}
	})
	const runBudget = 24
	if perRun > runBudget {
		t.Errorf("steady-state run allocated %.0f objects (budget %d)", perRun, runBudget)
	}
	if perStep := perRun / float64(steps); perStep >= 0.001 {
		t.Errorf("allocs per step = %.4f over %d steps, want 0", perStep, steps)
	}
}
