package emu

import (
	"fmt"
	"sync"

	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// The loader surface: every program sees, at LoaderBase, a read-only
// image describing the loaded modules of the process — the analogue of
// walking the PEB's module list into each module's PE export table.
// Hash-resolving malware reads it to find API addresses without naming
// any API in its instruction stream.
//
// Image layout (all words little-endian):
//
//	base+0              u32 module count
//	base+4              module directory, one 12-byte entry per module:
//	                      {name addr, export count, export table addr}
//	...                 export tables, one 8-byte entry per export:
//	                      {LoaderHash(name), winapi.ProcAddr(name)}
//	...                 name pool: NUL-terminated module names
//
// The layout is a pure function of winenv.Modules(), so it is identical
// in every execution and every process; the static API-surface pass
// reads the same image to interpret export-table loads without running
// anything.

// LoaderBase is the load address of the loader image. It sits below
// RDataBase, so it can never collide with program data (the .rdata and
// .data bump allocators only grow upward from their bases).
const LoaderBase uint32 = 0x00300000

// LoaderHash is the export-name hash stored in loader export tables: a
// rol5-xor FNV-style hash (h = rol(h,5) ^ byte over basis 0x811C9DC5).
// The rotate decomposes into SHL/SHR/OR, which is how the hash-resolving
// malware band computes it in ISA code (the ISA has no rotate).
func LoaderHash(name string) uint32 {
	h := uint32(0x811C9DC5)
	for i := 0; i < len(name); i++ {
		h = (h<<5 | h>>27) ^ uint32(name[i])
	}
	return h
}

// ExportEntry is one export-table row of a loaded module.
type ExportEntry struct {
	// Name is the exported API name.
	Name string
	// Hash is LoaderHash(Name), the first word of the row.
	Hash uint32
	// Addr is winapi.ProcAddr(Name), the second word of the row — the
	// value CALLAPIR dispatches on and GetProcAddress returns.
	Addr uint32
	// EntryAddr is the absolute address of this 8-byte row.
	EntryAddr uint32
}

// ModuleInfo is one module of the loader image.
type ModuleInfo struct {
	// Name is the module's DLL name.
	Name string
	// NameAddr is the address of the NUL-terminated name string.
	NameAddr uint32
	// DirAddr is the address of the module's 12-byte directory entry.
	DirAddr uint32
	// TableAddr is the address of the first export-table row.
	TableAddr uint32
	// TableEnd is one past the last export-table row.
	TableEnd uint32
	// Exports lists the rows in table order.
	Exports []ExportEntry
}

// LoaderInfo is the process loader surface: the mapped image plus its
// decoded structure and the address→API binding.
type LoaderInfo struct {
	// Base and Size delimit the image mapping.
	Base, Size uint32
	// Modules lists the loaded modules in directory order.
	Modules []ModuleInfo

	image     []byte
	apiByAddr map[uint32]string
}

var (
	loaderOnce sync.Once
	loaderInfo *LoaderInfo
)

// Loader returns the process loader surface, building it on first use.
// The result is immutable and shared by every execution.
func Loader() *LoaderInfo {
	loaderOnce.Do(func() { loaderInfo = buildLoader() })
	return loaderInfo
}

// buildLoader lays out the image from the fixed module list. It panics
// on a hash collision inside a module or a resolved-address collision
// across modules: either would make the address→API binding ambiguous,
// and both are static properties of the API name set, caught the first
// time any test touches the loader.
func buildLoader() *LoaderInfo {
	mods := winenv.Modules()
	l := &LoaderInfo{Base: LoaderBase, apiByAddr: make(map[uint32]string)}

	dirBytes := uint32(12 * len(mods))
	off := 4 + dirBytes
	for i, m := range mods {
		mi := ModuleInfo{
			Name:      m.Name,
			DirAddr:   LoaderBase + 4 + uint32(12*i),
			TableAddr: LoaderBase + off,
		}
		seen := make(map[uint32]string, len(m.Exports))
		for _, name := range m.Exports {
			e := ExportEntry{
				Name:      name,
				Hash:      LoaderHash(name),
				Addr:      winapi.ProcAddr(name),
				EntryAddr: LoaderBase + off,
			}
			if prev, dup := seen[e.Hash]; dup {
				panic(fmt.Sprintf("emu: loader hash collision in %s: %q vs %q", m.Name, prev, name))
			}
			seen[e.Hash] = name
			if prev, dup := l.apiByAddr[e.Addr]; dup {
				panic(fmt.Sprintf("emu: loader address collision: %q vs %q", prev, name))
			}
			l.apiByAddr[e.Addr] = name
			mi.Exports = append(mi.Exports, e)
			off += 8
		}
		mi.TableEnd = LoaderBase + off
		l.Modules = append(l.Modules, mi)
	}
	for i := range l.Modules {
		l.Modules[i].NameAddr = LoaderBase + off
		off += uint32(len(l.Modules[i].Name)) + 1
	}
	l.Size = off

	img := make([]byte, off)
	putWord := func(addr, v uint32) {
		o := addr - LoaderBase
		img[o] = byte(v)
		img[o+1] = byte(v >> 8)
		img[o+2] = byte(v >> 16)
		img[o+3] = byte(v >> 24)
	}
	putWord(LoaderBase, uint32(len(l.Modules)))
	for _, mi := range l.Modules {
		putWord(mi.DirAddr, mi.NameAddr)
		putWord(mi.DirAddr+4, uint32(len(mi.Exports)))
		putWord(mi.DirAddr+8, mi.TableAddr)
		for _, e := range mi.Exports {
			putWord(e.EntryAddr, e.Hash)
			putWord(e.EntryAddr+4, e.Addr)
		}
		copy(img[mi.NameAddr-LoaderBase:], mi.Name)
	}
	l.image = img
	return l
}

// Module returns the named module, or nil.
func (l *LoaderInfo) Module(name string) *ModuleInfo {
	for i := range l.Modules {
		if l.Modules[i].Name == name {
			return &l.Modules[i]
		}
	}
	return nil
}

// APIAt resolves a loader-issued address back to its API name — the
// binding the CALLAPIR dispatcher and GetProcAddress results share.
func (l *LoaderInfo) APIAt(addr uint32) (string, bool) {
	name, ok := l.apiByAddr[addr]
	return name, ok
}

// Contains reports whether [addr, addr+n) lies inside the image.
func (l *LoaderInfo) Contains(addr, n uint32) bool {
	return addr >= l.Base && n <= l.Size && addr-l.Base <= l.Size-n
}

// ReadWord reads a 32-bit little-endian word from the image — how the
// static API-surface pass evaluates export-table loads at constant
// addresses without an emulator.
func (l *LoaderInfo) ReadWord(addr uint32) (uint32, bool) {
	if !l.Contains(addr, 4) {
		return 0, false
	}
	o := addr - l.Base
	return uint32(l.image[o]) | uint32(l.image[o+1])<<8 |
		uint32(l.image[o+2])<<16 | uint32(l.image[o+3])<<24, true
}

// mapLoader inserts the shared loader image as a read-only segment.
// The backing array is the global image itself: writes fault before
// touching data, so sharing is safe across concurrent executions.
func (m *memory) mapLoader() {
	l := Loader()
	m.insert(&segment{base: l.Base, data: l.image, readOnly: true, name: "loader"})
}
