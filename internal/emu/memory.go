// Package emu executes isa programs against a winenv environment with
// instruction-level observation: per-byte taint propagation, tainted
// predicate detection, API-call logging with calling context, optional
// instruction-step recording for offline backward analysis, and API
// result mutation for impact analysis. It is this reproduction's
// substitute for the paper's DynamoRIO-based instrumentation (§VI).
package emu

import (
	"fmt"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

// Memory layout constants. Programs are loaded with read-only data at
// RDataBase, writable data at DataBase, and a descending stack.
const (
	// RDataBase is the load address of read-only data (.rdata).
	RDataBase uint32 = 0x00400000
	// DataBase is the load address of writable data (.data).
	DataBase uint32 = 0x00500000
	// StackTop is the initial ESP; the stack grows down.
	StackTop uint32 = 0x7FFE0000
	// StackSize is the reserved stack size in bytes.
	StackSize uint32 = 0x00010000
)

// ErrBadAccess is wrapped by memory faults.
var ErrBadAccess = fmt.Errorf("emu: bad memory access")

// segment is one mapped memory range with per-byte taint.
type segment struct {
	base     uint32
	data     []byte
	taint    []taint.Set
	readOnly bool
	name     string
}

func (s *segment) contains(addr uint32) bool {
	return addr >= s.base && addr < s.base+uint32(len(s.data))
}

// memory is a small segmented address space.
type memory struct {
	segs []*segment
}

// mapSegment adds a mapping. Segments must not overlap; the loader
// guarantees that by construction.
func (m *memory) mapSegment(name string, base uint32, size int, readOnly bool) *segment {
	s := &segment{
		base:     base,
		data:     make([]byte, size),
		taint:    make([]taint.Set, size),
		readOnly: readOnly,
		name:     name,
	}
	m.segs = append(m.segs, s)
	return s
}

// find locates the segment containing addr.
func (m *memory) find(addr uint32) (*segment, error) {
	for _, s := range m.segs {
		if s.contains(addr) {
			return s, nil
		}
	}
	return nil, fmt.Errorf("%w: address %#x unmapped", ErrBadAccess, addr)
}

// findRange locates the segment containing [addr, addr+n).
func (m *memory) findRange(addr, n uint32) (*segment, error) {
	s, err := m.find(addr)
	if err != nil {
		return nil, err
	}
	if n > 0 && !s.contains(addr+n-1) {
		return nil, fmt.Errorf("%w: range %#x+%d crosses segment %q", ErrBadAccess, addr, n, s.name)
	}
	return s, nil
}

// readByte reads one byte with its taint.
func (m *memory) readByte(addr uint32) (byte, taint.Set, error) {
	s, err := m.find(addr)
	if err != nil {
		return 0, taint.Set{}, err
	}
	off := addr - s.base
	return s.data[off], s.taint[off], nil
}

// writeByte writes one byte with taint, enforcing read-only segments.
func (m *memory) writeByte(addr uint32, v byte, t taint.Set) error {
	s, err := m.find(addr)
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	s.data[off] = v
	s.taint[off] = t
	return nil
}

// readWord reads a 32-bit little-endian word with combined taint.
func (m *memory) readWord(addr uint32) (uint32, taint.Set, error) {
	s, err := m.findRange(addr, 4)
	if err != nil {
		return 0, taint.Set{}, err
	}
	off := addr - s.base
	v := uint32(s.data[off]) | uint32(s.data[off+1])<<8 |
		uint32(s.data[off+2])<<16 | uint32(s.data[off+3])<<24
	t := s.taint[off].Union(s.taint[off+1]).Union(s.taint[off+2]).Union(s.taint[off+3])
	return v, t, nil
}

// writeWord writes a 32-bit little-endian word with uniform taint.
func (m *memory) writeWord(addr uint32, v uint32, t taint.Set) error {
	s, err := m.findRange(addr, 4)
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	s.data[off] = byte(v)
	s.data[off+1] = byte(v >> 8)
	s.data[off+2] = byte(v >> 16)
	s.data[off+3] = byte(v >> 24)
	for i := uint32(0); i < 4; i++ {
		s.taint[off+i] = t
	}
	return nil
}

// readBytes reads n bytes with combined taint.
func (m *memory) readBytes(addr, n uint32) ([]byte, taint.Set, error) {
	if n == 0 {
		return nil, taint.Set{}, nil
	}
	s, err := m.findRange(addr, n)
	if err != nil {
		return nil, taint.Set{}, err
	}
	off := addr - s.base
	out := append([]byte(nil), s.data[off:off+n]...)
	var t taint.Set
	for i := uint32(0); i < n; i++ {
		t = t.Union(s.taint[off+i])
	}
	return out, t, nil
}

// writeBytes writes bytes with uniform taint.
func (m *memory) writeBytes(addr uint32, b []byte, t taint.Set) error {
	if len(b) == 0 {
		return nil
	}
	s, err := m.findRange(addr, uint32(len(b)))
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	copy(s.data[off:], b)
	for i := range b {
		s.taint[off+uint32(i)] = t
	}
	return nil
}

// readCString reads a NUL-terminated string with combined taint.
func (m *memory) readCString(addr uint32) (string, taint.Set, error) {
	var out []byte
	var t taint.Set
	for a := addr; ; a++ {
		b, bt, err := m.readByte(a)
		if err != nil {
			return "", taint.Set{}, err
		}
		if b == 0 {
			return string(out), t, nil
		}
		out = append(out, b)
		t = t.Union(bt)
		if len(out) > 1<<16 {
			return "", taint.Set{}, fmt.Errorf("%w: unterminated string at %#x", ErrBadAccess, addr)
		}
	}
}

// byteTaints returns the per-byte taint of [addr, addr+n) — the input to
// the per-byte identifier-provenance classification.
func (m *memory) byteTaints(addr, n uint32) ([]taint.Set, error) {
	if n == 0 {
		return nil, nil
	}
	s, err := m.findRange(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - s.base
	return append([]taint.Set(nil), s.taint[off:off+n]...), nil
}

// inReadOnly reports whether addr lies in a read-only segment.
func (m *memory) inReadOnly(addr uint32) bool {
	s, err := m.find(addr)
	return err == nil && s.readOnly
}

// loadProgram maps a program's data items and returns the symbol table.
func (m *memory) loadProgram(p *isa.Program) map[string]uint32 {
	symbols := make(map[string]uint32)
	// Two bump allocators: one per segment class.
	roNext, rwNext := RDataBase, DataBase
	var roItems, rwItems []isa.DataItem
	for _, d := range p.Data {
		if d.ReadOnly {
			roItems = append(roItems, d)
		} else {
			rwItems = append(rwItems, d)
		}
	}
	place := func(items []isa.DataItem, next *uint32, ro bool, segName string) {
		if len(items) == 0 {
			return
		}
		total := 0
		for _, d := range items {
			total += len(d.Data) + 16 // guard padding between items
		}
		seg := m.mapSegment(segName, *next, total, false)
		off := uint32(0)
		for _, d := range items {
			symbols[d.Name] = seg.base + off
			copy(seg.data[off:], d.Data)
			off += uint32(len(d.Data)) + 16
		}
		seg.readOnly = ro
		*next += uint32(total)
	}
	place(roItems, &roNext, true, ".rdata")
	place(rwItems, &rwNext, false, ".data")
	m.mapSegment("stack", StackTop-StackSize, int(StackSize)+16, false)
	return symbols
}
