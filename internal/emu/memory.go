// Package emu executes isa programs against a winenv environment with
// instruction-level observation: per-byte taint propagation, tainted
// predicate detection, API-call logging with calling context, optional
// instruction-step recording for offline backward analysis, and API
// result mutation for impact analysis. It is this reproduction's
// substitute for the paper's DynamoRIO-based instrumentation (§VI).
package emu

import (
	"fmt"
	"sort"
	"sync"

	"autovac/internal/isa"
	"autovac/internal/taint"
)

// Memory layout constants. Programs are loaded with read-only data at
// RDataBase, writable data at DataBase, and a descending stack.
const (
	// RDataBase is the load address of read-only data (.rdata).
	RDataBase uint32 = 0x00400000
	// DataBase is the load address of writable data (.data).
	DataBase uint32 = 0x00500000
	// StackTop is the initial ESP; the stack grows down.
	StackTop uint32 = 0x7FFE0000
	// StackSize is the reserved stack size in bytes.
	StackSize uint32 = 0x00010000
)

// ErrBadAccess is wrapped by memory faults.
var ErrBadAccess = fmt.Errorf("emu: bad memory access")

// Taint shadows are kept in sparse pages allocated on first tainted
// write. A fully untainted run (the common case: benign programs, slice
// replays, most samples before their first resource API) never touches
// a shadow, and an untainted 64 KB stack costs nothing instead of a
// 1.5 MB pointer-ful array the GC has to scan.
const (
	shadowPageBits = 10 // 1 KiB of bytes per shadow page
	shadowPageSize = 1 << shadowPageBits
	shadowPageMask = shadowPageSize - 1
)

// segment is one mapped memory range with a sparse copy-on-write taint
// shadow.
type segment struct {
	base     uint32
	data     []byte
	readOnly bool
	name     string

	// anyTaint is the segment-level fast path: while false, every byte
	// of the segment is untainted and loads skip shadow lookups
	// entirely.
	anyTaint bool
	// shadow holds lazily allocated per-page taint arrays; a nil page
	// is all-untainted. Read-only segments never allocate shadows
	// (writes to them fault before reaching the taint store).
	shadow [][]taint.Set

	// pristine is the loader-initialised content, shared across runs
	// for reset; nil means all-zero (the stack).
	pristine []byte
	// pooled marks a data buffer borrowed from stackPool, returned by
	// release.
	pooled bool
}

func (s *segment) contains(addr uint32) bool {
	return addr >= s.base && addr < s.base+uint32(len(s.data))
}

// taintAt returns the taint of one byte.
func (s *segment) taintAt(off uint32) taint.Set {
	if !s.anyTaint {
		return taint.Set{}
	}
	pg := s.shadow[off>>shadowPageBits]
	if pg == nil {
		return taint.Set{}
	}
	return pg[off&shadowPageMask]
}

// setTaint stores the taint of one byte, allocating the shadow page on
// the first tainted write. Storing the empty set is free while the
// segment (or the page) has never been tainted.
func (s *segment) setTaint(off uint32, t taint.Set) {
	if t.Empty() {
		if !s.anyTaint {
			return
		}
		pg := s.shadow[off>>shadowPageBits]
		if pg == nil {
			return
		}
		pg[off&shadowPageMask] = taint.Set{}
		return
	}
	if s.shadow == nil {
		s.shadow = make([][]taint.Set, (len(s.data)+shadowPageSize-1)>>shadowPageBits)
	}
	s.anyTaint = true
	i := off >> shadowPageBits
	pg := s.shadow[i]
	if pg == nil {
		pg = make([]taint.Set, shadowPageSize)
		s.shadow[i] = pg
	}
	pg[off&shadowPageMask] = t
}

// resetShadow clears every allocated shadow page, keeping the pages for
// reuse so the next run of a pooled execution pays no allocation.
func (s *segment) resetShadow() {
	if !s.anyTaint {
		return
	}
	for _, pg := range s.shadow {
		if pg != nil {
			clear(pg)
		}
	}
	s.anyTaint = false
}

// stackPool recycles stack-segment buffers across executions. With
// lazy shadows the 64 KB stack array is the dominant per-run
// allocation; pooling it makes repeated Phase-II replays alloc-free.
var stackPool = sync.Pool{
	New: func() any {
		b := make([]byte, int(StackSize)+16)
		return &b
	},
}

// memory is a small segmented address space. Segments are kept sorted
// by base; find answers from a last-hit cache first and falls back to
// binary search (the linear scan it replaces showed up in profiles at
// one lookup per executed memory operand).
type memory struct {
	segs []*segment
	last *segment
}

// mapSegment adds a mapping. Segments must not overlap; the loader
// guarantees that by construction.
func (m *memory) mapSegment(name string, base uint32, size int, readOnly bool) *segment {
	s := &segment{
		base:     base,
		data:     make([]byte, size),
		readOnly: readOnly,
		name:     name,
	}
	m.insert(s)
	return s
}

// insert places a segment in base order and invalidates the lookup
// cache.
func (m *memory) insert(s *segment) {
	i := sort.Search(len(m.segs), func(i int) bool { return m.segs[i].base > s.base })
	m.segs = append(m.segs, nil)
	copy(m.segs[i+1:], m.segs[i:])
	m.segs[i] = s
	m.last = nil
}

// find locates the segment containing addr.
func (m *memory) find(addr uint32) (*segment, error) {
	if s := m.last; s != nil && s.contains(addr) {
		return s, nil
	}
	lo, hi := 0, len(m.segs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		s := m.segs[mid]
		if addr >= s.base+uint32(len(s.data)) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(m.segs) && m.segs[lo].contains(addr) {
		m.last = m.segs[lo]
		return m.segs[lo], nil
	}
	return nil, fmt.Errorf("%w: address %#x unmapped", ErrBadAccess, addr)
}

// findRange locates the segment containing [addr, addr+n).
func (m *memory) findRange(addr, n uint32) (*segment, error) {
	s, err := m.find(addr)
	if err != nil {
		return nil, err
	}
	if n > 0 && !s.contains(addr+n-1) {
		return nil, fmt.Errorf("%w: range %#x+%d crosses segment %q", ErrBadAccess, addr, n, s.name)
	}
	return s, nil
}

// readByte reads one byte with its taint.
func (m *memory) readByte(addr uint32) (byte, taint.Set, error) {
	s, err := m.find(addr)
	if err != nil {
		return 0, taint.Set{}, err
	}
	off := addr - s.base
	if !s.anyTaint {
		return s.data[off], taint.Set{}, nil
	}
	return s.data[off], s.taintAt(off), nil
}

// writeByte writes one byte with taint, enforcing read-only segments.
func (m *memory) writeByte(addr uint32, v byte, t taint.Set) error {
	s, err := m.find(addr)
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	s.data[off] = v
	s.setTaint(off, t)
	return nil
}

// readWord reads a 32-bit little-endian word with combined taint.
func (m *memory) readWord(addr uint32) (uint32, taint.Set, error) {
	s, err := m.findRange(addr, 4)
	if err != nil {
		return 0, taint.Set{}, err
	}
	off := addr - s.base
	v := uint32(s.data[off]) | uint32(s.data[off+1])<<8 |
		uint32(s.data[off+2])<<16 | uint32(s.data[off+3])<<24
	if !s.anyTaint {
		return v, taint.Set{}, nil
	}
	t := s.taintAt(off).Union(s.taintAt(off + 1)).Union(s.taintAt(off + 2)).Union(s.taintAt(off + 3))
	return v, t, nil
}

// writeWord writes a 32-bit little-endian word with uniform taint.
func (m *memory) writeWord(addr uint32, v uint32, t taint.Set) error {
	s, err := m.findRange(addr, 4)
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	s.data[off] = byte(v)
	s.data[off+1] = byte(v >> 8)
	s.data[off+2] = byte(v >> 16)
	s.data[off+3] = byte(v >> 24)
	if t.Empty() && !s.anyTaint {
		return nil
	}
	for i := uint32(0); i < 4; i++ {
		s.setTaint(off+i, t)
	}
	return nil
}

// readBytes reads n bytes with combined taint.
func (m *memory) readBytes(addr, n uint32) ([]byte, taint.Set, error) {
	if n == 0 {
		return nil, taint.Set{}, nil
	}
	s, err := m.findRange(addr, n)
	if err != nil {
		return nil, taint.Set{}, err
	}
	off := addr - s.base
	out := append([]byte(nil), s.data[off:off+n]...)
	var t taint.Set
	if s.anyTaint {
		for i := uint32(0); i < n; i++ {
			t = t.Union(s.taintAt(off + i))
		}
	}
	return out, t, nil
}

// writeBytes writes bytes with uniform taint.
func (m *memory) writeBytes(addr uint32, b []byte, t taint.Set) error {
	if len(b) == 0 {
		return nil
	}
	s, err := m.findRange(addr, uint32(len(b)))
	if err != nil {
		return err
	}
	if s.readOnly {
		return fmt.Errorf("%w: write to read-only segment %q at %#x", ErrBadAccess, s.name, addr)
	}
	off := addr - s.base
	copy(s.data[off:], b)
	if t.Empty() && !s.anyTaint {
		return nil
	}
	for i := range b {
		s.setTaint(off+uint32(i), t)
	}
	return nil
}

// readCString reads a NUL-terminated string with combined taint.
func (m *memory) readCString(addr uint32) (string, taint.Set, error) {
	var out []byte
	var t taint.Set
	for a := addr; ; a++ {
		b, bt, err := m.readByte(a)
		if err != nil {
			return "", taint.Set{}, err
		}
		if b == 0 {
			return string(out), t, nil
		}
		out = append(out, b)
		t = t.Union(bt)
		if len(out) > 1<<16 {
			return "", taint.Set{}, fmt.Errorf("%w: unterminated string at %#x", ErrBadAccess, addr)
		}
	}
}

// byteTaints returns the per-byte taint of [addr, addr+n) — the input to
// the per-byte identifier-provenance classification.
func (m *memory) byteTaints(addr, n uint32) ([]taint.Set, error) {
	if n == 0 {
		return nil, nil
	}
	s, err := m.findRange(addr, n)
	if err != nil {
		return nil, err
	}
	off := addr - s.base
	out := make([]taint.Set, n)
	if s.anyTaint {
		for i := uint32(0); i < n; i++ {
			out[i] = s.taintAt(off + i)
		}
	}
	return out, nil
}

// inReadOnly reports whether addr lies in a read-only segment.
func (m *memory) inReadOnly(addr uint32) bool {
	s, err := m.find(addr)
	return err == nil && s.readOnly
}

// reset restores every writable segment to its loader state — pristine
// data, no taint — keeping all buffers (and any allocated shadow pages)
// for the next run. Read-only segments are skipped: writes to them
// fault, so they cannot have changed.
func (m *memory) reset() {
	for _, s := range m.segs {
		if s.readOnly {
			continue
		}
		if s.pristine != nil {
			copy(s.data, s.pristine)
		} else {
			clear(s.data)
		}
		s.resetShadow()
	}
	m.last = nil
}

// release returns pooled buffers. The memory must not be used
// afterwards.
func (m *memory) release() {
	for _, s := range m.segs {
		if s.pooled {
			buf := s.data
			s.data = nil
			s.pooled = false
			stackPool.Put(&buf)
		}
	}
	m.segs = nil
	m.last = nil
}

// mapStack maps the stack segment from the buffer pool.
func (m *memory) mapStack() {
	bp := stackPool.Get().(*[]byte)
	buf := *bp
	clear(buf)
	s := &segment{
		base:   StackTop - StackSize,
		data:   buf,
		name:   "stack",
		pooled: true,
	}
	m.insert(s)
}

// loadProgram maps a program's data items and returns the symbol table.
func (m *memory) loadProgram(p *isa.Program) map[string]uint32 {
	symbols := make(map[string]uint32)
	// Two bump allocators: one per segment class.
	roNext, rwNext := RDataBase, DataBase
	var roItems, rwItems []isa.DataItem
	for _, d := range p.Data {
		if d.ReadOnly {
			roItems = append(roItems, d)
		} else {
			rwItems = append(rwItems, d)
		}
	}
	place := func(items []isa.DataItem, next *uint32, ro bool, segName string) {
		if len(items) == 0 {
			return
		}
		total := 0
		for _, d := range items {
			total += len(d.Data) + 16 // guard padding between items
		}
		seg := m.mapSegment(segName, *next, total, ro)
		off := uint32(0)
		for _, d := range items {
			symbols[d.Name] = seg.base + off
			copy(seg.data[off:], d.Data)
			off += uint32(len(d.Data)) + 16
		}
		if !ro {
			seg.pristine = append([]byte(nil), seg.data...)
		}
		*next += uint32(total)
	}
	place(roItems, &roNext, true, ".rdata")
	place(rwItems, &rwNext, false, ".data")
	m.mapLoader()
	m.mapSegment("stack", StackTop-StackSize, int(StackSize)+16, false)
	return symbols
}

// newMemoryFrom builds an address space from a program's predecoded
// load images: the read-only image is shared (writes to it fault before
// touching data), the writable image is copied, and the stack comes
// from the buffer pool.
func newMemoryFrom(d *decoded) *memory {
	m := &memory{}
	for _, img := range d.segs {
		s := &segment{
			base:     img.base,
			readOnly: img.readOnly,
			name:     img.name,
		}
		if img.readOnly {
			s.data = img.image
		} else {
			s.data = append([]byte(nil), img.image...)
			s.pristine = img.image
		}
		m.insert(s)
	}
	m.mapStack()
	return m
}
