package emu

import (
	"testing"

	"autovac/internal/isa"
)

// minimalProgram builds a tiny program with one read-only datum and
// one writable buffer, enough for a full layout (stack, data, rodata,
// loader image).
func minimalProgram(t *testing.T) *isa.Program {
	t.Helper()
	b := isa.NewBuilder("layout-bounds")
	b.RData("ro", "const")
	b.Buf("rw", 32)
	b.Halt()
	return b.MustBuild()
}

// TestSegmentContainsWraparound pins the overflow behaviour of the
// range check the static layer trusts: [addr, addr+n) queries where
// addr+n wraps the 32-bit space must never report "inside". The
// implementation is deliberately subtraction-based (addr-base <=
// size-n after the guards) because the naive addr+n <= base+size
// comparison silently accepts wrapped ranges.
func TestSegmentContainsWraparound(t *testing.T) {
	// A segment butting against the top of the address space, and one
	// in the middle — both must reject wrapped and straddling ranges.
	high := SegmentInfo{Name: "high", Base: 0xFFFFF000, Size: 0x1000}
	mid := SegmentInfo{Name: "mid", Base: 0x00400000, Size: 0x200}

	tests := []struct {
		name string
		seg  SegmentInfo
		addr uint32
		n    uint32
		want bool
	}{
		{"full segment at top of space", high, 0xFFFFF000, 0x1000, true},
		{"last byte of the address space", high, 0xFFFFFFFF, 1, true},
		{"addr+n wraps past zero", high, 0xFFFFFF00, 0x200, false},
		{"addr+n wraps exactly to zero is still inside", high, 0xFFFFFF00, 0x100, true},
		{"huge n wraps back over the segment", high, 0xFFFFF000, 0xFFFFFFFF, false},
		{"n larger than the whole space", mid, 0x00400000, 0xFFFFFFFF, false},
		{"n equal to size from base", mid, 0x00400000, 0x200, true},
		{"n overruns by one", mid, 0x00400000, 0x201, false},
		{"addr below base with wrapping n", mid, 0xFFFFFFFF, 0x00400010, false},
		{"zero-length at base", mid, 0x00400000, 0, true},
		{"zero-length at end boundary", mid, 0x00400200, 0, true},
		{"zero-length past end", mid, 0x00400201, 0, false},
		{"addr just below base", mid, 0x003FFFFF, 1, false},
		{"last byte of mid segment", mid, 0x004001FF, 1, true},
		{"straddles the upper boundary", mid, 0x004001FF, 2, false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.seg.Contains(tt.addr, tt.n); got != tt.want {
				t.Errorf("Contains(%#x, %#x) on [%#x,+%#x) = %v, want %v",
					tt.addr, tt.n, tt.seg.Base, tt.seg.Size, got, tt.want)
			}
		})
	}
}

// TestLayoutMappedWritableWraparound runs the same boundary queries
// through the layout-level entry points the verifier actually calls,
// over a real program layout (stack, data, rodata, loader image).
func TestLayoutMappedWritableWraparound(t *testing.T) {
	l := Layout(minimalProgram(t))
	var data, rodata *SegmentInfo
	for i := range l.Segments {
		switch {
		case l.Segments[i].Name == ".data":
			data = &l.Segments[i]
		case l.Segments[i].ReadOnly && rodata == nil:
			rodata = &l.Segments[i]
		}
	}
	if data == nil || rodata == nil {
		t.Fatalf("layout missing data or read-only segment: %+v", l.Segments)
	}

	if !l.Mapped(data.Base, data.Size) {
		t.Error("whole data segment not mapped")
	}
	if !l.Writable(data.Base, data.Size) {
		t.Error("data segment not writable")
	}
	if l.Writable(rodata.Base, 1) {
		t.Errorf("read-only segment %s reported writable", rodata.Name)
	}
	// Wrapping queries anchored inside a real segment must fail both
	// checks even though the wrapped tail lands in mapped space.
	last := data.Base + data.Size - 1
	if l.Mapped(last, 0xFFFFFFFF) {
		t.Error("wrapping range reported mapped")
	}
	if l.Writable(last, 0xFFFFFFFF) {
		t.Error("wrapping range reported writable")
	}
	// n chosen so addr+n overflows to an address below the segment.
	wrapN := uint32(0) - last + 0x10
	if l.Mapped(last, wrapN) {
		t.Error("range wrapping past zero reported mapped")
	}
}
