package emu

import (
	"fmt"

	"autovac/internal/isa"
)

// The emulator predecodes each program once into a flat execution form —
// operand kinds and symbol displacements resolved, jump targets turned
// into instruction indices, the load images of the data segments
// materialised — and caches it on the Program. Phase-II re-executes the
// same sample once per candidate mutation plus once per slice replay,
// so everything derivable from the immutable program is paid for once
// and shared across every replay.

// dOperand is a decoded operand: the symbol displacement is folded into
// val, so the hot path never consults the symbol table.
type dOperand struct {
	kind    isa.OperandKind
	reg     isa.Reg
	hasBase bool
	// val is the immediate plus the resolved symbol base (load layout
	// is deterministic, so absolute addresses are stable across runs).
	val uint32
}

// dInstr is a decoded instruction.
type dInstr struct {
	op       isa.Opcode
	dst, src dOperand
	// target is the resolved jump/call destination PC.
	target int
	// api and nArgs mirror the CALLAPI fields.
	api   string
	nArgs int
	// clearsTaint marks the x XOR x taint-clearing idiom, decided once
	// instead of comparing operands every step.
	clearsTaint bool
}

// segImage is the loader-produced content of one data segment. The
// read-only image is shared directly as segment backing (writes fault
// before touching data); the writable image doubles as the pristine
// copy used by reset.
type segImage struct {
	base     uint32
	image    []byte
	readOnly bool
	name     string
}

// decoded is the cached execution form of one program.
type decoded struct {
	instrs  []dInstr
	symbols map[string]uint32
	segs    []segImage
	// runs is the tier-2 block-compiled dispatch table (compile.go):
	// an entry per run-start pc, nil elsewhere. Shared across every CPU
	// executing the program — compiled closures capture only immutable
	// predecode data.
	runs []*compiledRun
}

// decodedFor returns the program's cached execution form, building and
// publishing it on first use. A successful decode implies the program
// validated, so repeat executions skip Validate entirely.
func decodedFor(p *isa.Program) (*decoded, error) {
	if d, ok := p.Aux().(*decoded); ok {
		return d, nil
	}
	d, err := predecode(p)
	if err != nil {
		return nil, err
	}
	return p.SetAux(d).(*decoded), nil
}

// predecode validates the program and builds its execution form.
func predecode(p *isa.Program) (*decoded, error) {
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("emu: %w", err)
	}
	// Run the real loader once on a scratch address space; its segments
	// become the shared load images and its symbol table the resolved
	// displacements, so predecoded addressing is identical to the
	// per-run loader it replaces.
	var scratch memory
	symbols := scratch.loadProgram(p)
	d := &decoded{symbols: symbols}
	for _, s := range scratch.segs {
		if s.name == "stack" {
			continue // the stack is per-run, pool-backed
		}
		d.segs = append(d.segs, segImage{
			base:     s.base,
			image:    s.data,
			readOnly: s.readOnly,
			name:     s.name,
		})
	}
	labels := p.Labels()
	d.instrs = make([]dInstr, len(p.Instrs))
	for i, in := range p.Instrs {
		di := dInstr{
			op:          in.Op,
			target:      -1,
			api:         in.API,
			nArgs:       in.NArgs,
			clearsTaint: in.Op == isa.XOR && in.Dst == in.Src,
		}
		var err error
		if di.dst, err = decodeOperand(in.Dst, symbols); err != nil {
			return nil, fmt.Errorf("emu: pc %d: %w", i, err)
		}
		if di.src, err = decodeOperand(in.Src, symbols); err != nil {
			return nil, fmt.Errorf("emu: pc %d: %w", i, err)
		}
		if in.Op.IsJump() || in.Op == isa.CALL {
			pc, ok := labels[in.Target]
			if !ok {
				return nil, fmt.Errorf("emu: pc %d: unresolved target %q", i, in.Target)
			}
			di.target = pc
		}
		d.instrs[i] = di
	}
	d.runs = compileRuns(p, d)
	return d, nil
}

// decodeOperand folds an operand's symbol displacement into a flat form.
func decodeOperand(o isa.Operand, symbols map[string]uint32) (dOperand, error) {
	d := dOperand{kind: o.Kind, reg: o.Reg, hasBase: o.HasBase, val: o.Imm}
	if (o.Kind == isa.KindImm || o.Kind == isa.KindMem) && o.Sym != "" {
		base, ok := symbols[o.Sym]
		if !ok {
			return d, fmt.Errorf("unknown symbol %q", o.Sym)
		}
		d.val += base
	}
	return d, nil
}
