package emu

import (
	"testing"
	"testing/quick"

	"autovac/internal/isa"
	"autovac/internal/trace"
	"autovac/internal/winenv"
)

// TestTaintSoundnessProperty checks the soundness invariant of the
// forward taint analysis on randomly generated straight-line programs:
// a value computed (directly or transitively) from a tainted API result
// must carry taint when it reaches a predicate.
//
// The generator builds programs of the form
//
//	OpenMutexA(name)        ; EAX tainted (source)
//	<random data-flow chain over registers and memory>
//	TEST/CMP <sink>, <sink> ; must register as a tainted predicate
//
// where every chain step provably propagates the value (mov/add/or
// through registers or memory cells).
func TestTaintSoundnessProperty(t *testing.T) {
	type chainStep struct {
		Kind uint8 // 0 mov reg, 1 via memory, 2 add, 3 or, 4 push/pop
		Reg  uint8
	}
	f := func(steps []chainStep) bool {
		if len(steps) > 24 {
			steps = steps[:24]
		}
		b := isa.NewBuilder("taint-prop")
		b.RData("m", "marker")
		b.Buf("cell", 8)
		b.CallAPI("OpenMutexA", isa.Sym("m")) // EAX tainted
		cur := isa.EAX
		for _, s := range steps {
			// Pick a destination register other than ESP/EBP.
			dst := isa.Reg(s.Reg % 6) // EAX..EDI
			switch s.Kind % 5 {
			case 0:
				b.Mov(isa.R(dst), isa.R(cur))
			case 1:
				b.Mov(isa.MemSym("cell"), isa.R(cur))
				b.Mov(isa.R(dst), isa.MemSym("cell"))
			case 2:
				b.Mov(isa.R(dst), isa.R(cur))
				b.Add(isa.R(dst), isa.Imm(13))
			case 3:
				b.Mov(isa.R(dst), isa.R(cur))
				b.Or(isa.R(dst), isa.Imm(0x100))
			case 4:
				b.Push(isa.R(cur))
				b.Pop(isa.R(dst))
			}
			cur = dst
		}
		b.Test(isa.R(cur), isa.R(cur))
		b.Halt()
		prog, err := b.Build()
		if err != nil {
			return false
		}
		tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: 5})
		if err != nil || tr.Exit != trace.ExitHalt {
			return false
		}
		return tr.HasTaintedPredicate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

// TestTaintNoFalsePositivesProperty: programs whose predicates only
// consume constants never report tainted predicates, regardless of the
// (unused) tainted data flowing around them.
func TestTaintNoFalsePositivesProperty(t *testing.T) {
	f := func(vals []uint8) bool {
		if len(vals) > 16 {
			vals = vals[:16]
		}
		b := isa.NewBuilder("clean-prop")
		b.RData("m", "marker")
		b.CallAPI("OpenMutexA", isa.Sym("m")) // tainted, parked in EAX
		b.Mov(isa.R(isa.EDI), isa.R(isa.EAX)).Comment("tainted but unused by predicates")
		for _, v := range vals {
			b.Mov(isa.R(isa.EBX), isa.Imm(uint32(v)))
			b.Cmp(isa.R(isa.EBX), isa.Imm(uint32(v)%7))
		}
		b.Halt()
		prog, err := b.Build()
		if err != nil {
			return false
		}
		tr, err := Run(prog, winenv.New(winenv.DefaultIdentity()), Options{Seed: 5})
		if err != nil {
			return false
		}
		return !tr.HasTaintedPredicate()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestXorClearKillsTaint(t *testing.T) {
	b := isa.NewBuilder("xorclear")
	b.RData("m", "x")
	b.CallAPI("OpenMutexA", isa.Sym("m"))
	b.Xor(isa.R(isa.EAX), isa.R(isa.EAX)).Comment("canonical clear idiom")
	b.Test(isa.R(isa.EAX), isa.R(isa.EAX))
	b.Halt()
	tr, err := Run(b.MustBuild(), winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.HasTaintedPredicate() {
		t.Error("xor-cleared register still tainted")
	}
}

func TestTaintThroughByteMoves(t *testing.T) {
	// Byte-granularity propagation: a single tainted byte copied out of
	// a string buffer keeps its taint.
	b := isa.NewBuilder("bytetaint")
	b.RData("key", `HKLM\Software\Mk`)
	b.Buf("hkey", 4)
	b.Buf("buf", 8)
	b.CallAPI("RegOpenKeyExA", isa.Sym("key"), isa.Sym("hkey"))
	b.CallAPI("RegQueryValueExA", isa.MemSym("hkey"), isa.Sym("key"), isa.Sym("buf"), isa.Imm(4))
	b.Movb(isa.R(isa.ECX), isa.MemSym("buf"))
	b.Cmp(isa.R(isa.ECX), isa.Imm('y'))
	b.Halt()
	env := winenv.New(winenv.DefaultIdentity())
	env.Inject(winenv.Resource{Kind: winenv.KindRegistry, Name: `HKLM\Software\Mk`, Owner: "system"})
	env.Inject(winenv.Resource{Kind: winenv.KindRegistry, Name: `HKLM\Software\Mk\HKLM\Software\Mk`, Owner: "system", Data: []byte("yes")})
	tr, err := Run(b.MustBuild(), env, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit == trace.ExitFault {
		t.Fatalf("fault: %s", tr.Fault)
	}
	if !tr.HasTaintedPredicate() {
		t.Error("byte loaded from API-written buffer lost taint")
	}
}

func TestStackOverflowFaults(t *testing.T) {
	// Pushing forever walks off the mapped stack and must fault, not
	// hang or corrupt.
	b := isa.NewBuilder("stackeater")
	b.Label("loop")
	b.Push(isa.Imm(0xAA))
	b.Jmp("loop")
	tr, err := Run(b.MustBuild(), winenv.New(winenv.DefaultIdentity()), Options{MaxSteps: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Exit != trace.ExitFault {
		t.Fatalf("exit = %v, want fault", tr.Exit)
	}
}

func TestLeaTaintFromBaseRegister(t *testing.T) {
	// An address computed from a tainted base register carries taint.
	b := isa.NewBuilder("leataint")
	b.RData("m", "x")
	b.Buf("buf", 64)
	b.CallAPI("OpenMutexA", isa.Sym("m"))
	b.And(isa.R(isa.EAX), isa.Imm(0x7)).Comment("tainted small index")
	b.Lea(isa.EBX, isa.MemSym("buf"))
	b.Add(isa.R(isa.EBX), isa.R(isa.EAX)).Comment("tainted address")
	b.Cmp(isa.R(isa.EBX), isa.Imm(0))
	b.Halt()
	tr, err := Run(b.MustBuild(), winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !tr.HasTaintedPredicate() {
		t.Error("tainted address computation lost taint")
	}
}

func TestMutationModeStrings(t *testing.T) {
	if ForceFailure.String() != "force-failure" ||
		ForceSuccess.String() != "force-success" ||
		ForceAlreadyExists.String() != "force-already-exists" {
		t.Error("MutationMode strings wrong")
	}
}

func TestSymbolAddrAndRegAccessors(t *testing.T) {
	b := isa.NewBuilder("acc")
	b.RData("s", "hello")
	b.Mov(isa.R(isa.EBX), isa.Sym("s"))
	b.Halt()
	c, err := New(b.MustBuild(), winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	c.Execute()
	addr, ok := c.SymbolAddr("s")
	if !ok || addr == 0 {
		t.Fatalf("SymbolAddr = %#x %v", addr, ok)
	}
	if c.Reg(isa.EBX) != addr {
		t.Errorf("ebx = %#x, want %#x", c.Reg(isa.EBX), addr)
	}
	if _, ok := c.SymbolAddr("ghost"); ok {
		t.Error("SymbolAddr(ghost) ok")
	}
}

func TestTaintedArgFlagInLog(t *testing.T) {
	// An API argument derived from a prior API result is logged as
	// tainted.
	b := isa.NewBuilder("argtaint")
	b.RData("m", "x")
	b.CallAPI("CreateMutexA", isa.Sym("m"))
	b.CallAPI("CloseHandle", isa.R(isa.EAX))
	b.Halt()
	tr, err := Run(b.MustBuild(), winenv.New(winenv.DefaultIdentity()), Options{})
	if err != nil {
		t.Fatal(err)
	}
	ch := tr.CallsTo("CloseHandle")
	if len(ch) != 1 || len(ch[0].Args) != 1 {
		t.Fatalf("CloseHandle log = %+v", ch)
	}
	if !ch[0].Args[0].Tainted {
		t.Error("handle argument not marked tainted")
	}
}
