// Package c2 implements a scriptable pseudo-C2 responder: a declarative
// Scenario describes the network world a malware sample expects — which
// C2 domains exist, which killswitch domains do not, beacon
// request/response dialogues, and staged payload fetches — and a
// stateful Responder plugs that script in behind winenv.Network.
//
// The point (following the pseudo-C2 literature in PAPERS.md) is that
// many samples withhold their resource-sensitive payload until C2
// interaction succeeds. A passive always-succeed network stub never
// exercises those paths; a scripted responder does, which is what lets
// Phase-I observe network identifiers as candidate vaccine material
// (winenv.KindDomain) and Phase-II measure the impact of denying them.
package c2

import (
	"bytes"
	"fmt"
	"strings"
)

// Scenario declares a pseudo-C2 world. The zero value is a world where
// every unknown name resolves (indistinguishable from the default
// network); fields carve out scripted behaviour.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Domains exist in the scripted world: they resolve and accept
	// connections. Hostnames, lower-case.
	Domains []string
	// Killswitch domains do NOT exist: resolution fails with
	// WSAHOST_NOT_FOUND until someone registers them — which is exactly
	// what the simulate-presence domain vaccine does.
	Killswitch []string
	// DGAPatterns are simple glob patterns (one '*' wildcard, e.g.
	// "*.dga-seed.example") matching the algorithmically generated
	// names the family's DGA produces. Matching names resolve.
	DGAPatterns []string
	// StrictResolve makes unknown hostnames fail to resolve. When
	// false (default) unknown names fall through to the network's
	// default synthetic resolution, so legacy samples keep working
	// inside a scenario run.
	StrictResolve bool
	// Beacons script request/response dialogues on connected sockets.
	Beacons []Beacon
	// Stages script staged payload fetches over HTTP.
	Stages []Stage
}

// Beacon scripts one C2 check-in dialogue: when the sample sends a
// request matching Expect on a connection to Target, the responder
// replies with Reply.
type Beacon struct {
	// Target is the host:port the beacon protocol runs on.
	Target string
	// Expect is the request prefix that unlocks the reply; nil accepts
	// any request.
	Expect []byte
	// Reply is the scripted C2 response.
	Reply []byte
}

// Stage scripts a staged payload fetch: a read from URL returns Body,
// but only after the sample has completed MinBeacons successful beacon
// exchanges (0 = immediately). This models droppers that check in
// before fetching their second stage.
type Stage struct {
	URL string
	// Body is served byte-exactly, across repeated reads.
	Body []byte
	// MinBeacons gates the stage on prior beacon exchanges.
	MinBeacons int
}

// Validate checks the scenario for internal consistency.
func (s *Scenario) Validate() error {
	seen := make(map[string]bool)
	for _, d := range append(append([]string{}, s.Domains...), s.Killswitch...) {
		if d == "" {
			return fmt.Errorf("c2: empty domain in scenario %q", s.Name)
		}
		if strings.ContainsAny(d, " \t\\") {
			return fmt.Errorf("c2: malformed domain %q in scenario %q", d, s.Name)
		}
		if seen[d] {
			return fmt.Errorf("c2: domain %q listed twice in scenario %q", d, s.Name)
		}
		seen[d] = true
	}
	for _, p := range s.DGAPatterns {
		if strings.Count(p, "*") != 1 {
			return fmt.Errorf("c2: DGA pattern %q must contain exactly one '*'", p)
		}
	}
	for _, st := range s.Stages {
		if st.URL == "" {
			return fmt.Errorf("c2: stage with empty URL in scenario %q", s.Name)
		}
		if st.MinBeacons < 0 {
			return fmt.Errorf("c2: stage %q has negative MinBeacons", st.URL)
		}
	}
	for _, b := range s.Beacons {
		if b.Target == "" {
			return fmt.Errorf("c2: beacon with empty target in scenario %q", s.Name)
		}
	}
	return nil
}

// AllDomains returns every concrete domain the scenario names (C2 and
// killswitch), for seeding experiment allowlists and reports.
func (s *Scenario) AllDomains() []string {
	out := append([]string{}, s.Domains...)
	return append(out, s.Killswitch...)
}

// matchGlob matches s against a pattern containing exactly one '*'.
func matchGlob(pattern, s string) bool {
	i := strings.IndexByte(pattern, '*')
	if i < 0 {
		return pattern == s
	}
	prefix, suffix := pattern[:i], pattern[i+1:]
	return len(s) >= len(prefix)+len(suffix) &&
		strings.HasPrefix(s, prefix) && strings.HasSuffix(s, suffix)
}

// hostOf strips a scheme prefix, :port suffix, and path from a target,
// leaving the bare lower-case hostname.
func hostOf(target string) string {
	h := strings.ToLower(target)
	if i := strings.Index(h, "://"); i >= 0 {
		h = h[i+3:]
	}
	if i := strings.IndexByte(h, '/'); i >= 0 {
		h = h[:i]
	}
	if i := strings.LastIndexByte(h, ':'); i >= 0 {
		h = h[:i]
	}
	return h
}

// knowsHost classifies a bare hostname against the scenario.
func (s *Scenario) knowsHost(host string) (exists, scripted bool) {
	for _, d := range s.Killswitch {
		if strings.EqualFold(d, host) {
			return false, true
		}
	}
	for _, d := range s.Domains {
		if strings.EqualFold(d, host) {
			return true, true
		}
	}
	for _, p := range s.DGAPatterns {
		if matchGlob(strings.ToLower(p), host) {
			return true, true
		}
	}
	return false, false
}

// respState is the responder's mutable dialogue state, kept in one
// struct so Mark/Rewind can copy it wholesale.
type respState struct {
	// lastSent holds the most recent request bytes per target.
	lastSent map[string][]byte
	// exchanges counts completed beacon replies.
	exchanges int
	// stageOffsets tracks read progress per stage URL.
	stageOffsets map[string]int
}

func (st *respState) clone() *respState {
	c := &respState{
		lastSent:     make(map[string][]byte, len(st.lastSent)),
		exchanges:    st.exchanges,
		stageOffsets: make(map[string]int, len(st.stageOffsets)),
	}
	for k, v := range st.lastSent {
		c.lastSent[k] = append([]byte(nil), v...)
	}
	for k, v := range st.stageOffsets {
		c.stageOffsets[k] = v
	}
	return c
}

// Responder is the stateful winenv.Responder implementation of a
// Scenario. Each emulated host should get its own Responder (they are
// not safe for concurrent use); the Scenario itself is read-only and
// shareable.
type Responder struct {
	sc    *Scenario
	state *respState
}

// NewResponder creates a fresh responder for the scenario.
func (s *Scenario) NewResponder() *Responder {
	return &Responder{
		sc: s,
		state: &respState{
			lastSent:     make(map[string][]byte),
			stageOffsets: make(map[string]int),
		},
	}
}

// Scenario returns the script this responder plays.
func (r *Responder) Scenario() *Scenario { return r.sc }

// Exchanges returns the number of completed beacon replies.
func (r *Responder) Exchanges() int { return r.state.exchanges }

// ResolveHost implements winenv.Responder.
func (r *Responder) ResolveHost(host string) (ip string, ok, handled bool) {
	exists, scripted := r.sc.knowsHost(hostOf(host))
	if scripted {
		return "", exists, true
	}
	if r.sc.StrictResolve {
		return "", false, true
	}
	return "", false, false
}

// AcceptConnect implements winenv.Responder.
func (r *Responder) AcceptConnect(target string) (ok, handled bool) {
	exists, scripted := r.sc.knowsHost(hostOf(target))
	if scripted {
		return exists, true
	}
	if r.sc.StrictResolve {
		return false, true
	}
	return false, false
}

// ObserveSend implements winenv.Responder: it records the request so
// beacon matching can inspect it.
func (r *Responder) ObserveSend(target string, data []byte) {
	r.state.lastSent[target] = append([]byte(nil), data...)
}

// Payload implements winenv.Responder: beacon replies and staged
// bodies. Unscripted targets report handled=false so the network falls
// back to its default synthetic payload.
func (r *Responder) Payload(target string, want int) (data []byte, handled bool) {
	for i := range r.sc.Beacons {
		b := &r.sc.Beacons[i]
		if !strings.EqualFold(b.Target, target) {
			continue
		}
		if b.Expect != nil && !bytes.HasPrefix(r.state.lastSent[target], b.Expect) {
			// Wrong handshake: the C2 hangs up. An empty reply is
			// distinguishable from the legacy synthetic bytes.
			return nil, true
		}
		r.state.exchanges++
		reply := b.Reply
		if len(reply) > want {
			reply = reply[:want]
		}
		return append([]byte(nil), reply...), true
	}
	for i := range r.sc.Stages {
		st := &r.sc.Stages[i]
		if !strings.EqualFold(st.URL, target) {
			continue
		}
		if r.state.exchanges < st.MinBeacons {
			return nil, true // stage locked: nothing to serve yet
		}
		off := r.state.stageOffsets[st.URL]
		if off >= len(st.Body) {
			return nil, true // EOF
		}
		end := off + want
		if end > len(st.Body) {
			end = len(st.Body)
		}
		r.state.stageOffsets[st.URL] = end
		return append([]byte(nil), st.Body[off:end]...), true
	}
	return nil, false
}

// Mark implements winenv.Responder: it captures the dialogue state.
func (r *Responder) Mark() any { return r.state.clone() }

// Rewind implements winenv.Responder: it restores a Mark'd state.
func (r *Responder) Rewind(mark any) {
	if st, ok := mark.(*respState); ok {
		// Clone again so repeated rewinds to the same mark stay pristine.
		r.state = st.clone()
	}
}
