package c2

import (
	"bytes"
	"testing"

	"autovac/internal/winenv"
)

func testScenario() *Scenario {
	return &Scenario{
		Name:       "test",
		Domains:    []string{"cc.botnet.example"},
		Killswitch: []string{"iuqerfsod.example"},
		DGAPatterns: []string{
			"*.dga-feed.example",
		},
		Beacons: []Beacon{{
			Target: "cc.botnet.example:8080",
			Expect: []byte("HELO"),
			Reply:  []byte("CMD:run"),
		}},
		Stages: []Stage{{
			URL:        "http://cc.botnet.example/stage2.bin",
			Body:       []byte("PAYLOAD-BYTES"),
			MinBeacons: 1,
		}},
	}
}

func TestScenarioValidate(t *testing.T) {
	if err := testScenario().Validate(); err != nil {
		t.Fatalf("valid scenario rejected: %v", err)
	}
	bad := []*Scenario{
		{Domains: []string{""}},
		{Domains: []string{"a b.example"}},
		{Domains: []string{"x.example"}, Killswitch: []string{"x.example"}},
		{DGAPatterns: []string{"no-wildcard.example"}},
		{DGAPatterns: []string{"*.*.example"}},
		{Stages: []Stage{{URL: ""}}},
		{Stages: []Stage{{URL: "u", MinBeacons: -1}}},
		{Beacons: []Beacon{{Target: ""}}},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("bad scenario %d accepted", i)
		}
	}
}

func TestResolveSemantics(t *testing.T) {
	sc := testScenario()
	n := winenv.New(winenv.DefaultIdentity()).Net()
	n.SetResponder(sc.NewResponder())

	if _, ok := n.Resolve("mal.exe", "cc.botnet.example"); !ok {
		t.Fatal("C2 domain did not resolve")
	}
	if _, ok := n.Resolve("mal.exe", "iuqerfsod.example"); ok {
		t.Fatal("killswitch domain resolved")
	}
	if _, ok := n.Resolve("mal.exe", "win-abc123.dga-feed.example"); !ok {
		t.Fatal("DGA name did not resolve")
	}
	// Unscripted names fall through to default success...
	if _, ok := n.Resolve("mal.exe", "update.microsoft.com"); !ok {
		t.Fatal("unscripted name failed in non-strict scenario")
	}
	// ...unless the scenario is strict.
	sc2 := testScenario()
	sc2.StrictResolve = true
	n.SetResponder(sc2.NewResponder())
	if _, ok := n.Resolve("mal.exe", "update.microsoft.com"); ok {
		t.Fatal("unscripted name resolved in strict scenario")
	}
}

func TestKillswitchRegistrationOverridesScript(t *testing.T) {
	sc := testScenario()
	n := winenv.New(winenv.DefaultIdentity()).Net()
	n.SetResponder(sc.NewResponder())
	n.Register("iuqerfsod.example") // the deployed vaccine
	if _, ok := n.Resolve("mal.exe", "iuqerfsod.example"); !ok {
		t.Fatal("registered killswitch did not resolve")
	}
}

func TestBeaconDialogue(t *testing.T) {
	sc := testScenario()
	r := sc.NewResponder()
	n := winenv.New(winenv.DefaultIdentity()).Net()
	n.SetResponder(r)

	s, ok := n.Connect("mal.exe", "cc.botnet.example:8080")
	if !ok {
		t.Fatal("connect to scripted C2 failed")
	}
	// Wrong handshake: hangs up with an empty reply.
	n.SendPayload("mal.exe", s, []byte("JUNK"))
	if data, ok, handled := n.RecvPayload("mal.exe", s, 32); !handled || !ok || len(data) != 0 {
		t.Fatalf("wrong handshake got %q ok=%v handled=%v", data, ok, handled)
	}
	if r.Exchanges() != 0 {
		t.Fatal("failed handshake counted as exchange")
	}
	// Correct handshake: scripted reply.
	n.SendPayload("mal.exe", s, []byte("HELO botnet/7")) // prefix match
	data, ok, _ := n.RecvPayload("mal.exe", s, 32)
	if !ok || !bytes.Equal(data, []byte("CMD:run")) {
		t.Fatalf("beacon reply = %q ok=%v", data, ok)
	}
	if r.Exchanges() != 1 {
		t.Fatalf("exchanges = %d", r.Exchanges())
	}
}

func TestStagedPayloadGatedOnBeacon(t *testing.T) {
	sc := testScenario()
	r := sc.NewResponder()
	n := winenv.New(winenv.DefaultIdentity()).Net()
	n.SetResponder(r)

	url := "http://cc.botnet.example/stage2.bin"
	h, ok := n.HTTPGet("mal.exe", url)
	if !ok {
		t.Fatal("HTTPGet to scripted stage failed")
	}
	// Stage locked before the beacon exchange.
	if data, ok, handled := n.RecvPayload("mal.exe", h, 64); !handled || !ok || len(data) != 0 {
		t.Fatalf("locked stage served %q ok=%v handled=%v", data, ok, handled)
	}
	// Complete the beacon, then read the stage in two chunks.
	s, _ := n.Connect("mal.exe", "cc.botnet.example:8080")
	n.SendPayload("mal.exe", s, []byte("HELO"))
	if _, ok, _ := n.RecvPayload("mal.exe", s, 16); !ok {
		t.Fatal("beacon exchange failed")
	}
	first, _, _ := n.RecvPayload("mal.exe", h, 7)
	rest, _, _ := n.RecvPayload("mal.exe", h, 64)
	if got := string(first) + string(rest); got != "PAYLOAD-BYTES" {
		t.Fatalf("staged body = %q", got)
	}
	// EOF after the body is exhausted.
	if data, _, _ := n.RecvPayload("mal.exe", h, 64); len(data) != 0 {
		t.Fatalf("read past EOF returned %q", data)
	}
}

func TestResponderMarkRewind(t *testing.T) {
	sc := testScenario()
	r := sc.NewResponder()
	n := winenv.New(winenv.DefaultIdentity()).Net()
	n.SetResponder(r)
	s, _ := n.Connect("mal.exe", "cc.botnet.example:8080")

	mark := r.Mark()
	n.SendPayload("mal.exe", s, []byte("HELO"))
	n.RecvPayload("mal.exe", s, 16)
	if r.Exchanges() != 1 {
		t.Fatal("exchange not recorded")
	}
	r.Rewind(mark)
	if r.Exchanges() != 0 {
		t.Fatal("rewind did not restore exchange count")
	}
	// Rewinding twice to the same mark works (marks stay pristine).
	n.SendPayload("mal.exe", s, []byte("HELO"))
	n.RecvPayload("mal.exe", s, 16)
	r.Rewind(mark)
	if r.Exchanges() != 0 {
		t.Fatal("second rewind to same mark failed")
	}
}

func TestResponderRewindsThroughSnapshot(t *testing.T) {
	sc := testScenario()
	e := winenv.New(winenv.DefaultIdentity())
	n := e.Net()
	r := sc.NewResponder()
	n.SetResponder(r)
	s, _ := n.Connect("mal.exe", "cc.botnet.example:8080")

	snap := e.Snapshot()
	n.SendPayload("mal.exe", s, []byte("HELO"))
	n.RecvPayload("mal.exe", s, 16)
	h, _ := n.HTTPGet("mal.exe", "http://cc.botnet.example/stage2.bin")
	n.RecvPayload("mal.exe", h, 64)
	e.Reset(snap)
	snap.Close()

	if r.Exchanges() != 0 {
		t.Fatal("snapshot reset did not rewind responder exchanges")
	}
	// The stage read offset must also rewind: a fresh gated read fails
	// again until the beacon re-fires.
	h2, _ := n.HTTPGet("mal.exe", "http://cc.botnet.example/stage2.bin")
	if data, _, _ := n.RecvPayload("mal.exe", h2, 64); len(data) != 0 {
		t.Fatalf("stage offset not rewound, served %q", data)
	}
}

func TestHostOfAndGlob(t *testing.T) {
	cases := []struct{ in, want string }{
		{"cc.example.com", "cc.example.com"},
		{"cc.example.com:445", "cc.example.com"},
		{"http://cc.example.com/x/y.bin", "cc.example.com"},
		{"HTTP://CC.EXAMPLE.COM:8080/z", "cc.example.com"},
	}
	for _, c := range cases {
		if got := hostOf(c.in); got != c.want {
			t.Errorf("hostOf(%q) = %q, want %q", c.in, got, c.want)
		}
	}
	if !matchGlob("*.dga.example", "abc.dga.example") {
		t.Error("glob suffix match failed")
	}
	if matchGlob("*.dga.example", "dga.example") {
		t.Error("glob matched too-short name")
	}
	if !matchGlob("seed-*", "seed-12345") {
		t.Error("glob prefix match failed")
	}
}
