package deploy

import (
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/emu"
	"autovac/internal/impact"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func staticVaccine() vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: "poisonivy/mutex/0", Sample: "poisonivy",
		Resource: winenv.KindMutex, Identifier: "!VoqA.I4",
		Class: determinism.Static, Op: "open", API: "OpenMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection,
	}
}

func blockVaccine() vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: "zeus/file/0", Sample: "zeus",
		Resource: winenv.KindFile, Identifier: `C:\Windows\system32\sdra64.exe`,
		Class: determinism.Static, Op: "create", API: "CreateFileA",
		Effect: impact.Full, Polarity: vaccine.BlockAccess,
		Delivery: vaccine.DirectInjection,
	}
}

func TestInjectSimulatePresence(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := staticVaccine()
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	r := env.Lookup(winenv.KindMutex, "!VoqA.I4")
	if r == nil || r.Owner != "vaccine" {
		t.Fatalf("marker not injected: %+v", r)
	}
	// Malware can open (sees the marker) but cannot delete it.
	open := env.Do(winenv.Request{Kind: winenv.KindMutex, Op: winenv.OpOpen, Name: "!VoqA.I4", Principal: "mal"})
	if !open.OK {
		t.Error("marker not visible to malware")
	}
	del := env.Do(winenv.Request{Kind: winenv.KindMutex, Op: winenv.OpDelete, Name: "!VoqA.I4", Principal: "mal"})
	if del.OK {
		t.Error("malware could delete the marker")
	}
}

func TestInjectBlockAccess(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := blockVaccine()
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	for _, op := range []winenv.Op{winenv.OpCreate, winenv.OpOpen, winenv.OpWrite, winenv.OpRead} {
		res := env.Do(winenv.Request{Kind: winenv.KindFile, Op: op, Name: `C:\Windows\system32\sdra64.exe`, Principal: "zeus"})
		if res.OK {
			t.Errorf("op %v allowed on blocked vaccine file", op)
		}
	}
}

func TestInjectedVaccineImmunizesSample(t *testing.T) {
	g := malware.NewGenerator(1)
	s, _ := g.FamilySample(malware.PoisonIvy)
	env := winenv.New(winenv.DefaultIdentity())
	v := staticVaccine()
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	tr, _ := emu.Run(s.Program, env, emu.Options{Seed: 5})
	if tr.Exit != trace.ExitProcess {
		t.Fatalf("exit = %v, want exit-process", tr.Exit)
	}
}

func TestAlgorithmDeterministicInjection(t *testing.T) {
	// Build the Conficker-style sample, extract its slice, deploy on a
	// DIFFERENT host.
	spec := &malware.Spec{Name: "algo-deploy", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-9`}}}
	prog := malware.MustEmit(spec)
	srcEnv := winenv.New(winenv.DefaultIdentity())
	tr, err := emu.Run(prog, srcEnv, emu.Options{Seed: 3, RecordSteps: true})
	if err != nil {
		t.Fatal(err)
	}
	call := tr.CallsTo("CreateMutexA")[0]
	sl, err := determinism.Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}
	v := vaccine.Vaccine{
		ID: "algo-deploy/mutex/0", Sample: "algo-deploy",
		Resource: winenv.KindMutex, Identifier: call.Identifier,
		Class: determinism.AlgorithmDeterministic, Op: "open", API: "OpenMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection, Slice: sl,
	}

	otherID := winenv.DefaultIdentity()
	otherID.ComputerName = "HR-LAPTOP-3"
	hostB := winenv.New(otherID)
	if err := Inject(hostB, &v, 1); err != nil {
		t.Fatal(err)
	}
	if !hostB.Exists(winenv.KindMutex, `Global\HR-LAPTOP-3-9`) {
		t.Fatalf("per-host marker not injected; have %v", hostB.List(winenv.KindMutex, "vaccine"))
	}
	// The sample is immunized on host B.
	trB, _ := emu.Run(prog, hostB, emu.Options{Seed: 3})
	if trB.Exit != trace.ExitProcess {
		t.Errorf("host B not immunized: exit %v", trB.Exit)
	}
}

func TestDaemonPartialStaticInterception(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	v := vaccine.Vaccine{
		ID: "worm/mutex/0", Sample: "worm-0001",
		Resource: winenv.KindMutex, Pattern: "WORMX-*",
		Class: determinism.PartialStatic, Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.VaccineDaemon,
	}
	if err := d.Install(v); err != nil {
		t.Fatal(err)
	}

	// A matching create is answered with ALREADY_EXISTS.
	res := env.Do(winenv.Request{Kind: winenv.KindMutex, Op: winenv.OpCreate, Name: "WORMX-9f3c", Principal: "worm"})
	if !res.OK || res.Err != winenv.ErrAlreadyExists || !res.Intercepted {
		t.Fatalf("intercepted create: %+v", res)
	}
	// A non-matching create passes through.
	res = env.Do(winenv.Request{Kind: winenv.KindMutex, Op: winenv.OpCreate, Name: "benign-mutex", Principal: "app"})
	if !res.OK || res.Intercepted {
		t.Fatalf("pass-through create: %+v", res)
	}
	// A matching resource of a different kind passes through.
	res = env.Do(winenv.Request{Kind: winenv.KindFile, Op: winenv.OpCreate, Name: "WORMX-0000", Principal: "app"})
	if res.Intercepted {
		t.Error("kind mismatch intercepted")
	}
	inspected, intercepted := d.Stats()
	if inspected != 3 || intercepted != 1 {
		t.Errorf("stats = %d/%d, want 3/1", inspected, intercepted)
	}
}

func TestDaemonImmunizesPartialMutexWorm(t *testing.T) {
	spec := &malware.Spec{Name: "pworm", Category: malware.Worm,
		Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "WORMX"},
			{Kind: malware.BehNetworkCC, ID: "w.example", Aux: "445", Count: 2},
		}}
	prog := malware.MustEmit(spec)

	// Unprotected host: worm runs its network loop.
	clean := winenv.New(winenv.DefaultIdentity())
	trClean, _ := emu.Run(prog, clean, emu.Options{Seed: 2})
	if len(trClean.CallsTo("connect")) == 0 {
		t.Fatal("worm did not run on clean host")
	}

	// Daemon-protected host: the CreateMutex probe reports
	// ALREADY_EXISTS and the worm exits.
	prot := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(prot, 1)
	err := d.Install(vaccine.Vaccine{
		ID: "pworm/mutex/0", Sample: "pworm",
		Resource: winenv.KindMutex, Pattern: "WORMX-*",
		Class: determinism.PartialStatic, Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.VaccineDaemon,
	})
	if err != nil {
		t.Fatal(err)
	}
	trProt, _ := emu.Run(prog, prot, emu.Options{Seed: 2})
	if trProt.Exit != trace.ExitProcess {
		t.Fatalf("protected exit = %v", trProt.Exit)
	}
	if len(trProt.CallsTo("connect")) != 0 {
		t.Error("worm network loop ran under daemon")
	}
}

func TestDaemonBlockAccessPattern(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	err := d.Install(vaccine.Vaccine{
		ID: "x/file/0", Sample: "x",
		Resource: winenv.KindFile, Pattern: `C:\Windows\system32\drivers\*`,
		Class: determinism.PartialStatic, Op: "create", API: "CreateFileA",
		Effect: impact.TypeI, Polarity: vaccine.BlockAccess,
		Delivery: vaccine.VaccineDaemon,
	})
	if err != nil {
		t.Fatal(err)
	}
	res := env.Do(winenv.Request{Kind: winenv.KindFile, Op: winenv.OpCreate,
		Name: `C:\Windows\system32\drivers\evil.sys`, Principal: "mal"})
	if res.OK || res.Err != winenv.ErrAccessDenied {
		t.Fatalf("driver create: %+v", res)
	}
}

func TestDaemonRefreshOnIdentityChange(t *testing.T) {
	spec := &malware.Spec{Name: "algo-refresh", Category: malware.Worm,
		Behaviors: []malware.Behavior{{Kind: malware.BehAlgoMutex, ID: `Global\%s-3`}}}
	prog := malware.MustEmit(spec)
	srcEnv := winenv.New(winenv.DefaultIdentity())
	tr, _ := emu.Run(prog, srcEnv, emu.Options{Seed: 3, RecordSteps: true})
	call := tr.CallsTo("CreateMutexA")[0]
	sl, err := determinism.Extract(prog, tr, call.Seq)
	if err != nil {
		t.Fatal(err)
	}

	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	err = d.Install(vaccine.Vaccine{
		ID: "algo-refresh/mutex/0", Sample: "algo-refresh",
		Resource: winenv.KindMutex, Identifier: call.Identifier,
		Class: determinism.AlgorithmDeterministic, Op: "open", API: "OpenMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.VaccineDaemon, Slice: sl,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !env.Exists(winenv.KindMutex, `Global\WIN-AUTOVAC01-3`) {
		t.Fatal("initial injection missing")
	}

	// No change: refresh does nothing.
	n, err := d.Refresh()
	if err != nil || n != 0 {
		t.Fatalf("no-op refresh = %d, %v", n, err)
	}

	// The machine is renamed; refresh regenerates.
	id := env.Identity()
	id.ComputerName = "RENAMED-BOX"
	env.SetIdentity(id)
	n, err = d.Refresh()
	if err != nil || n != 1 {
		t.Fatalf("refresh = %d, %v", n, err)
	}
	if !env.Exists(winenv.KindMutex, `Global\RENAMED-BOX-3`) {
		t.Error("regenerated marker missing")
	}
	if env.Exists(winenv.KindMutex, `Global\WIN-AUTOVAC01-3`) {
		t.Error("stale marker not removed")
	}
	if d.VaccineCount() != 1 {
		t.Errorf("vaccine count = %d", d.VaccineCount())
	}
}

func TestInjectRejectsPartialStatic(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := vaccine.Vaccine{
		ID: "p/mutex/0", Sample: "p",
		Resource: winenv.KindMutex, Pattern: "P-*",
		Class: determinism.PartialStatic, Effect: impact.Full,
		Delivery: vaccine.VaccineDaemon,
	}
	if err := Inject(env, &v, 1); err == nil || !strings.Contains(err.Error(), "daemon") {
		t.Errorf("Inject(partial-static) err = %v", err)
	}
}

func TestInjectAllSkipsDaemonOnly(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	vs := []vaccine.Vaccine{
		staticVaccine(),
		{
			ID: "p/mutex/0", Sample: "p",
			Resource: winenv.KindMutex, Pattern: "P-*",
			Class: determinism.PartialStatic, Effect: impact.Full,
			Polarity: vaccine.SimulatePresence, Delivery: vaccine.VaccineDaemon,
		},
	}
	if err := InjectAll(env, vs, 1); err != nil {
		t.Fatal(err)
	}
	if !env.Exists(winenv.KindMutex, "!VoqA.I4") {
		t.Error("static vaccine not injected")
	}
}

func TestRemove(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := staticVaccine()
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if err := Remove(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if env.Exists(winenv.KindMutex, "!VoqA.I4") {
		t.Error("vaccine not removed")
	}
}

func TestInstallPackIdempotent(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	bad := staticVaccine()
	bad.ID = "bad/mutex/0"
	bad.Identifier = "" // fails validation
	pack := []vaccine.Vaccine{
		staticVaccine(),
		blockVaccine(),
		{
			ID: "p/mutex/0", Sample: "p",
			Resource: winenv.KindMutex, Pattern: "PACK-*",
			Class: determinism.PartialStatic, Effect: impact.Full,
			Polarity: vaccine.SimulatePresence, Delivery: vaccine.VaccineDaemon,
		},
		bad,
	}
	installed, skipped, failed := d.InstallPack(pack)
	if installed != 3 || skipped != 0 || failed != 1 {
		t.Fatalf("first install: %d/%d/%d, want 3/0/1", installed, skipped, failed)
	}
	if !d.Has("poisonivy/mutex/0") || d.Has("bad/mutex/0") {
		t.Fatal("Has disagrees with install results")
	}
	// Replaying the same pack (a fleet full sync) is a no-op.
	installed, skipped, failed = d.InstallPack(pack)
	if installed != 0 || skipped != 3 || failed != 1 {
		t.Fatalf("replay: %d/%d/%d, want 0/3/1", installed, skipped, failed)
	}
	if d.VaccineCount() != 3 {
		t.Fatalf("daemon holds %d vaccines, want 3", d.VaccineCount())
	}
	got := d.Installed()
	if len(got) != 3 || got[0].ID > got[1].ID || got[1].ID > got[2].ID {
		t.Fatalf("Installed snapshot unordered: %v", got)
	}
}

func sinkholeVaccine() vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: "worm/domain/0", Sample: "worm",
		Resource: winenv.KindDomain, Identifier: "cc.botnet.example",
		Class: determinism.Static, Op: "open", API: "gethostbyname",
		Effect: impact.TypeII, Polarity: vaccine.BlockAccess,
		Delivery: vaccine.DirectInjection,
	}
}

func TestInjectDomainSinkhole(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := sinkholeVaccine()
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Net().Resolve("mal.exe", "cc.botnet.example"); ok {
		t.Fatal("sinkholed C2 domain still resolves")
	}
	if err := Remove(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Net().Resolve("mal.exe", "cc.botnet.example"); !ok {
		t.Fatal("domain still sinkholed after Remove")
	}
}

func TestInjectDomainKillswitchRegistration(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := sinkholeVaccine()
	v.ID = "worm/domain/1"
	v.Identifier = "iuqerfsod.example"
	v.Polarity = vaccine.SimulatePresence
	if err := Inject(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if !env.Net().Registered("iuqerfsod.example") {
		t.Fatal("killswitch not registered")
	}
	if err := Remove(env, &v, 1); err != nil {
		t.Fatal(err)
	}
	if env.Net().Registered("iuqerfsod.example") {
		t.Fatal("killswitch still registered after Remove")
	}
}

func TestDaemonDomainPatternSinkhole(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	v := sinkholeVaccine()
	v.Class = determinism.PartialStatic
	v.Identifier = ""
	v.Pattern = "*.dga-feed.example"
	v.Delivery = vaccine.VaccineDaemon
	if err := d.Install(v); err != nil {
		t.Fatal(err)
	}
	if _, ok := env.Net().Resolve("mal.exe", "win-x.dga-feed.example"); ok {
		t.Fatal("patterned DGA domain resolved through daemon")
	}
	if _, ok := env.Net().Resolve("mal.exe", "update.example.com"); !ok {
		t.Fatal("unrelated domain refused by daemon")
	}
	// A presence-polarity pattern forces resolution instead.
	reg := sinkholeVaccine()
	reg.ID = "worm/domain/2"
	reg.Class = determinism.PartialStatic
	reg.Identifier = ""
	reg.Pattern = "ks-*.example"
	reg.Polarity = vaccine.SimulatePresence
	reg.Delivery = vaccine.VaccineDaemon
	if err := d.Install(reg); err != nil {
		t.Fatal(err)
	}
	env.Net().SetResponder(refuseResponder{})
	if _, ok := env.Net().Resolve("mal.exe", "ks-2026.example"); !ok {
		t.Fatal("presence pattern did not force registration over responder refusal")
	}
	if _, intercepted := d.Stats(); intercepted < 2 {
		t.Fatalf("intercepts = %d, want >= 2", intercepted)
	}
}

// refuseResponder scripts a world where nothing exists.
type refuseResponder struct{}

func (refuseResponder) ResolveHost(string) (string, bool, bool) { return "", false, true }
func (refuseResponder) AcceptConnect(string) (bool, bool)       { return false, true }
func (refuseResponder) ObserveSend(string, []byte)              {}
func (refuseResponder) Payload(string, int) ([]byte, bool)      { return nil, false }
func (refuseResponder) Mark() any                               { return nil }
func (refuseResponder) Rewind(any)                              {}
