// Package deploy implements AUTOVAC's Phase-III (paper §V): delivering
// vaccines to end hosts. Static and algorithm-deterministic vaccines
// deploy by one-time direct injection (creating privilege-restricted
// resources, replaying identifier-generation slices once per host);
// partial-static vaccines deploy through a resident vaccine daemon that
// intercepts resource operations and matches identifiers against
// wildcard patterns.
package deploy

import (
	"fmt"
	"sort"
	"sync"

	"autovac/internal/determinism"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// fakeHandle is the plausible handle value daemon interceptions return.
const fakeHandle winenv.Handle = 0x00DD000C

// ResolveIdentifier produces the concrete identifier a vaccine protects
// on the given host: the static value, or the slice replay's output for
// algorithm-deterministic vaccines ("we collect these information ahead
// and run the captured program slice", §V).
func ResolveIdentifier(env *winenv.Env, v *vaccine.Vaccine, seed uint64) (string, error) {
	switch v.Class {
	case determinism.Static:
		return v.Identifier, nil
	case determinism.AlgorithmDeterministic:
		if v.Slice == nil {
			return "", fmt.Errorf("deploy: %s: missing slice", v.ID)
		}
		// Replay rewinds its own side effects, so the live host is not
		// perturbed while computing the name.
		ident, err := v.Slice.Replay(env, seed)
		if err != nil {
			return "", fmt.Errorf("deploy: %s: %w", v.ID, err)
		}
		return ident, nil
	default:
		return "", fmt.Errorf("deploy: %s: %s identifiers resolve per-operation in the daemon", v.ID, v.Class)
	}
}

// Inject performs one-time direct injection of a static or
// algorithm-deterministic vaccine into a host environment.
//
// SimulatePresence plants the resource (marker) with an ACL that
// prevents the malware from deleting or overwriting it; BlockAccess
// plants a super-user-owned placeholder that refuses every operation,
// the §VI-D sdra64.exe strategy.
func Inject(env *winenv.Env, v *vaccine.Vaccine, seed uint64) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if v.Class == determinism.PartialStatic {
		return fmt.Errorf("deploy: %s: partial-static vaccines require the daemon", v.ID)
	}
	ident, err := ResolveIdentifier(env, v, seed)
	if err != nil {
		return err
	}
	if v.Resource == winenv.KindDomain {
		injectDomain(env, v.Polarity, ident)
		return nil
	}
	res := winenv.Resource{
		Kind:  v.Resource,
		Name:  ident,
		Owner: "vaccine",
	}
	switch v.Polarity {
	case vaccine.SimulatePresence:
		res.ACL = winenv.DenyOps(winenv.OpDelete, winenv.OpWrite)
	case vaccine.BlockAccess:
		res.ACL = winenv.DenyAll()
	}
	env.Inject(res)
	return nil
}

// injectDomain deploys a domain vaccine into the host's DNS world.
// Domain resources have no namespace entry to plant; the two polarities
// translate to the two network countermeasures: SimulatePresence
// registers the domain (the killswitch-registration vaccine — the
// domain now "exists" and the malware that checks it stands down),
// BlockAccess sinkholes it (resolution and connection fail, cutting the
// C2 channel).
func injectDomain(env *winenv.Env, pol vaccine.Polarity, ident string) {
	if pol == vaccine.SimulatePresence {
		env.Net().Register(ident)
	} else {
		env.Net().Blackhole(ident)
	}
}

// removeDomain undoes injectDomain.
func removeDomain(env *winenv.Env, pol vaccine.Polarity, ident string) {
	if pol == vaccine.SimulatePresence {
		env.Net().Deregister(ident)
	} else {
		env.Net().Unblackhole(ident)
	}
}

// InjectAll injects a set of vaccines, returning the first error.
func InjectAll(env *winenv.Env, vaccines []vaccine.Vaccine, seed uint64) error {
	for i := range vaccines {
		v := &vaccines[i]
		if v.Delivery == vaccine.VaccineDaemon && v.Class == determinism.PartialStatic {
			// Daemon-only vaccines are skipped here; use a Daemon.
			continue
		}
		if err := Inject(env, v, seed); err != nil {
			return err
		}
	}
	return nil
}

// Remove deletes a previously injected vaccine resource.
func Remove(env *winenv.Env, v *vaccine.Vaccine, seed uint64) error {
	ident, err := ResolveIdentifier(env, v, seed)
	if err != nil {
		return err
	}
	if v.Resource == winenv.KindDomain {
		removeDomain(env, v.Polarity, ident)
		return nil
	}
	env.Remove(v.Resource, ident)
	return nil
}

// Daemon is the resident vaccine service (§V "Vaccine Daemon"): it
// intercepts resource operations on the host, matches identifiers
// against partial-static patterns, and periodically re-generates
// algorithm-deterministic identifiers when host facts change.
//
// Daemon methods are safe for concurrent use.
type Daemon struct {
	mu   sync.Mutex
	env  *winenv.Env
	seed uint64
	// patterned holds the daemon-matched vaccines, indexed by resource
	// kind so an operation only scans patterns of its own namespace.
	patterned map[winenv.ResourceKind][]vaccine.Vaccine
	// replayed holds the algorithm-deterministic vaccines the daemon
	// keeps fresh, with their last resolved identifiers.
	replayed map[string]string // vaccine ID -> identifier
	byID     map[string]vaccine.Vaccine
	// intercepts counts hook decisions, for the overhead evaluation.
	intercepts   int
	inspected    int
	installed    bool
	netInstalled bool
}

// NewDaemon creates a daemon bound to a host environment.
func NewDaemon(env *winenv.Env, seed uint64) *Daemon {
	return &Daemon{
		env:       env,
		seed:      seed,
		patterned: make(map[winenv.ResourceKind][]vaccine.Vaccine),
		replayed:  make(map[string]string),
		byID:      make(map[string]vaccine.Vaccine),
	}
}

// Install registers a vaccine with the daemon. Partial-static vaccines
// become interception patterns; algorithm-deterministic vaccines are
// resolved and injected, and re-resolved on Refresh; static vaccines
// are injected directly.
func (d *Daemon) Install(v vaccine.Vaccine) error {
	if err := v.Validate(); err != nil {
		return err
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	d.byID[v.ID] = v
	switch v.Class {
	case determinism.PartialStatic:
		d.patterned[v.Resource] = append(d.patterned[v.Resource], v)
		if v.Resource == winenv.KindDomain {
			// Domain operations bypass env.Do, so patterned domain
			// vaccines intercept on the DNS path instead.
			d.ensureNetHook()
		} else {
			d.ensureHook()
		}
		return nil
	case determinism.AlgorithmDeterministic:
		ident, err := ResolveIdentifier(d.env, &v, d.seed)
		if err != nil {
			return err
		}
		d.replayed[v.ID] = ident
		d.injectConcrete(v, ident)
		return nil
	default:
		ident, err := ResolveIdentifier(d.env, &v, d.seed)
		if err != nil {
			return err
		}
		d.injectConcrete(v, ident)
		return nil
	}
}

// injectConcrete plants a concrete resource for a vaccine.
func (d *Daemon) injectConcrete(v vaccine.Vaccine, ident string) {
	if v.Resource == winenv.KindDomain {
		injectDomain(d.env, v.Polarity, ident)
		return
	}
	res := winenv.Resource{Kind: v.Resource, Name: ident, Owner: "vaccine"}
	if v.Polarity == vaccine.BlockAccess {
		res.ACL = winenv.DenyAll()
	} else {
		res.ACL = winenv.DenyOps(winenv.OpDelete, winenv.OpWrite)
	}
	d.env.Inject(res)
}

// ensureHook registers the daemon's single interception hook once.
func (d *Daemon) ensureHook() {
	if d.installed {
		return
	}
	d.installed = true
	d.env.AddHook(d.intercept)
}

// ensureNetHook registers the daemon's DNS interception hook once.
func (d *Daemon) ensureNetHook() {
	if d.netInstalled {
		return
	}
	d.netInstalled = true
	d.env.Net().AddResolveHook(d.interceptResolve)
}

// interceptResolve is the daemon's DNS hook: patterned domain vaccines
// sinkhole (BlockAccess → NXDOMAIN) or force-register (SimulatePresence
// → the name exists) matching queries.
func (d *Daemon) interceptResolve(host string) winenv.ResolveVerdict {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inspected++
	for i := range d.patterned[winenv.KindDomain] {
		v := &d.patterned[winenv.KindDomain][i]
		if !determinism.MatchPattern(v.Pattern, host) {
			continue
		}
		d.intercepts++
		if v.Polarity == vaccine.SimulatePresence {
			return winenv.VerdictResolve
		}
		return winenv.VerdictRefuse
	}
	return winenv.VerdictNone
}

// intercept is the daemon's resource-operation hook: it resolves the
// operation's identifier and answers with the predefined result when a
// partial-static pattern matches (§V: "If the daemon monitors that a
// resource identifier matches with our partial static vaccine, it will
// return the predefined result to stop the malware execution").
func (d *Daemon) intercept(req winenv.Request) *winenv.Result {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.inspected++
	kindPatterns := d.patterned[req.Kind]
	for i := range kindPatterns {
		v := &kindPatterns[i]
		if !determinism.MatchPattern(v.Pattern, req.Name) {
			continue
		}
		d.intercepts++
		if v.Polarity == vaccine.BlockAccess {
			return &winenv.Result{Err: winenv.ErrAccessDenied}
		}
		// Simulate presence.
		switch req.Op {
		case winenv.OpCreate:
			return &winenv.Result{OK: true, Err: winenv.ErrAlreadyExists, Handle: fakeHandle}
		case winenv.OpOpen, winenv.OpQuery, winenv.OpRead:
			return &winenv.Result{OK: true, Handle: fakeHandle}
		default:
			return &winenv.Result{Err: winenv.ErrAccessDenied}
		}
	}
	return nil
}

// Installed returns a snapshot of the installed vaccines, in
// deterministic ID order.
func (d *Daemon) Installed() []vaccine.Vaccine {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]vaccine.Vaccine, 0, len(d.byID))
	for _, v := range d.byID {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Has reports whether a vaccine ID is already installed.
func (d *Daemon) Has(id string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.byID[id]
	return ok
}

// InstallPack installs a batch of vaccines, as delivered by a fleet
// sync. Vaccine IDs are immutable: an ID the daemon already holds is
// skipped rather than reinstalled, so replayed full packs are
// idempotent. Vaccines that fail validation or identifier resolution
// are counted as failed and do not abort the batch (a pack generated
// for the whole fleet may contain entries inapplicable to this host).
func (d *Daemon) InstallPack(vs []vaccine.Vaccine) (installed, skipped, failed int) {
	for i := range vs {
		if d.Has(vs[i].ID) {
			skipped++
			continue
		}
		if err := d.Install(vs[i]); err != nil {
			failed++
			continue
		}
		installed++
	}
	return installed, skipped, failed
}

// Refresh re-resolves every algorithm-deterministic vaccine against the
// current host facts and re-injects those whose identifier changed
// ("our daemon process runs periodically to check whether the input has
// been changed and the vaccine needs to be re-generated", §V). It
// returns the number of re-generated vaccines.
func (d *Daemon) Refresh() (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	changed := 0
	for id, old := range d.replayed {
		v := d.byID[id]
		ident, err := ResolveIdentifier(d.env, &v, d.seed)
		if err != nil {
			return changed, err
		}
		if ident == old {
			continue
		}
		if v.Resource == winenv.KindDomain {
			removeDomain(d.env, v.Polarity, old)
		} else {
			d.env.Remove(v.Resource, old)
		}
		d.injectConcrete(v, ident)
		d.replayed[id] = ident
		changed++
	}
	return changed, nil
}

// Stats returns (operations inspected, operations intercepted).
func (d *Daemon) Stats() (inspected, intercepted int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.inspected, d.intercepts
}

// VaccineCount returns the number of installed vaccines.
func (d *Daemon) VaccineCount() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.byID)
}
