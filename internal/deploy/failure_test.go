package deploy

import (
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

func TestInterruptedBatchDeployment(t *testing.T) {
	// InjectAll stops at the first failing vaccine; everything before it
	// stays installed (the caller decides whether to roll back).
	env := winenv.New(winenv.DefaultIdentity())
	good := staticVaccine()
	bad := vaccine.Vaccine{
		ID: "broken/mutex/0", Sample: "broken",
		Resource: winenv.KindMutex, // static without identifier: invalid
		Class:    determinism.Static, Effect: impact.Full,
		Polarity: vaccine.SimulatePresence, Delivery: vaccine.DirectInjection,
	}
	after := staticVaccine()
	after.ID = "after/mutex/0"
	after.Identifier = "AFTER-MUTEX"

	err := InjectAll(env, []vaccine.Vaccine{good, bad, after}, 1)
	if err == nil {
		t.Fatal("invalid vaccine accepted")
	}
	if !env.Exists(winenv.KindMutex, "!VoqA.I4") {
		t.Error("vaccine before the failure not installed")
	}
	if env.Exists(winenv.KindMutex, "AFTER-MUTEX") {
		t.Error("vaccine after the failure installed despite error")
	}
}

func TestResolveIdentifierErrors(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())

	// Algorithm-deterministic without a slice.
	v := staticVaccine()
	v.Class = determinism.AlgorithmDeterministic
	v.Slice = nil
	if _, err := ResolveIdentifier(env, &v, 1); err == nil || !strings.Contains(err.Error(), "missing slice") {
		t.Errorf("err = %v", err)
	}

	// Partial-static resolves per-operation, not up front.
	p := staticVaccine()
	p.Class = determinism.PartialStatic
	p.Pattern = "X-*"
	if _, err := ResolveIdentifier(env, &p, 1); err == nil {
		t.Error("partial-static resolved eagerly")
	}
}

func TestDaemonInstallRejectsInvalid(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	d := NewDaemon(env, 1)
	bad := staticVaccine()
	bad.Effect = impact.NoImmunization
	if err := d.Install(bad); err == nil {
		t.Error("no-effect vaccine installed")
	}
	if d.VaccineCount() != 0 {
		t.Error("invalid vaccine counted")
	}
}

func TestRemoveWithUnresolvableIdentifier(t *testing.T) {
	env := winenv.New(winenv.DefaultIdentity())
	v := staticVaccine()
	v.Class = determinism.AlgorithmDeterministic
	v.Slice = nil
	if err := Remove(env, &v, 1); err == nil {
		t.Error("Remove with unresolvable identifier succeeded")
	}
}
