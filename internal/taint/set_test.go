package taint

import (
	"testing"
	"testing/quick"
)

func TestEmptySet(t *testing.T) {
	var s Set
	if !s.Empty() || s.Len() != 0 || s.Has(0) || s.Has(100) {
		t.Error("zero Set not empty")
	}
	if s.String() != "{}" {
		t.Errorf("String = %q", s.String())
	}
}

func TestWithHas(t *testing.T) {
	s := Of(3, 64, 129)
	for _, src := range []Source{3, 64, 129} {
		if !s.Has(src) {
			t.Errorf("missing %d", src)
		}
	}
	for _, src := range []Source{0, 2, 63, 65, 128, 130} {
		if s.Has(src) {
			t.Errorf("spurious %d", src)
		}
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestWithIsImmutable(t *testing.T) {
	a := Of(1)
	b := a.With(2)
	if a.Has(2) {
		t.Error("With mutated receiver")
	}
	if !b.Has(1) || !b.Has(2) {
		t.Error("With lost labels")
	}
}

func TestUnion(t *testing.T) {
	a := Of(1, 70)
	b := Of(2, 70, 200)
	u := a.Union(b)
	want := []Source{1, 2, 70, 200}
	got := u.Sources()
	if len(got) != len(want) {
		t.Fatalf("Sources = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sources = %v, want %v", got, want)
		}
	}
	// Union with the empty set returns the operand.
	var empty Set
	if !a.Union(empty).Equal(a) || !empty.Union(a).Equal(a) {
		t.Error("union with empty wrong")
	}
}

func TestEqualAndContains(t *testing.T) {
	a := Of(1, 2)
	b := Of(1, 2)
	c := Of(1, 2, 3)
	if !a.Equal(b) || a.Equal(c) {
		t.Error("Equal wrong")
	}
	// Trailing zero words do not break equality.
	d := Of(1, 200) // allocates 4 words
	e := Of(1)
	if d.Equal(e) {
		t.Error("Equal ignored label 200")
	}
	if !c.Contains(a) || a.Contains(c) {
		t.Error("Contains wrong")
	}
	if !a.Contains(Set{}) {
		t.Error("every set contains empty")
	}
	if (Set{}).Contains(a) {
		t.Error("empty contains non-empty")
	}
}

func TestString(t *testing.T) {
	if got := Of(5, 1, 9).String(); got != "{1,5,9}" {
		t.Errorf("String = %q", got)
	}
}

// Properties: union is commutative, associative, idempotent, and
// monotone (result contains both operands) — the soundness property the
// propagation step relies on.
func TestUnionProperties(t *testing.T) {
	mk := func(xs []uint16) Set {
		var s Set
		for _, x := range xs {
			s = s.With(Source(x % 512))
		}
		return s
	}
	comm := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		return a.Union(b).Equal(b.Union(a))
	}
	assoc := func(xs, ys, zs []uint16) bool {
		a, b, c := mk(xs), mk(ys), mk(zs)
		return a.Union(b).Union(c).Equal(a.Union(b.Union(c)))
	}
	idem := func(xs []uint16) bool {
		a := mk(xs)
		return a.Union(a).Equal(a)
	}
	mono := func(xs, ys []uint16) bool {
		a, b := mk(xs), mk(ys)
		u := a.Union(b)
		return u.Contains(a) && u.Contains(b)
	}
	cfg := &quick.Config{MaxCount: 100}
	for name, f := range map[string]interface{}{
		"commutative": comm, "associative": assoc,
		"idempotent": idem, "monotone": mono,
	} {
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestTable(t *testing.T) {
	var tbl Table
	if tbl.Len() != 0 {
		t.Error("zero Table not empty")
	}
	s1 := tbl.Add(SourceInfo{API: "OpenMutexA", Identifier: "_AVIRA_2109", ResourceKind: "mutex", CallerPC: 10})
	s2 := tbl.Add(SourceInfo{API: "CreateFileA", Identifier: `C:\x`, ResourceKind: "file", CallerPC: 20, Success: true})
	if s1 == s2 {
		t.Fatal("labels not unique")
	}
	info, ok := tbl.Info(s1)
	if !ok || info.API != "OpenMutexA" || info.Source != s1 {
		t.Errorf("Info = %+v %v", info, ok)
	}
	if _, ok := tbl.Info(99); ok {
		t.Error("Info(99) ok")
	}
	files := tbl.Lookup(func(i SourceInfo) bool { return i.ResourceKind == "file" })
	if len(files) != 1 || files[0] != s2 {
		t.Errorf("Lookup = %v", files)
	}
	if got := len(tbl.All()); got != 2 {
		t.Errorf("All len = %d", got)
	}
	// All returns a copy.
	all := tbl.All()
	all[0].API = "mutated"
	if info, _ := tbl.Info(s1); info.API == "mutated" {
		t.Error("All leaked internal slice")
	}
}
