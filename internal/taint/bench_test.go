package taint

import "testing"

func BenchmarkSetUnionSmall(b *testing.B) {
	x := Of(1, 5, 9)
	y := Of(2, 5, 63)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = x.Union(y)
	}
}

func BenchmarkSetUnionWithEmpty(b *testing.B) {
	x := Of(1, 5, 9)
	var empty Set
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// The common case in the propagation loop: most operands carry
		// no taint, and the union must be allocation-free.
		_ = x.Union(empty)
	}
}

func BenchmarkSetWith(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var s Set
		_ = s.With(Source(i % 256))
	}
}

func BenchmarkSetSources(b *testing.B) {
	s := Of(1, 64, 129, 200, 255)
	for i := 0; i < b.N; i++ {
		if len(s.Sources()) != 5 {
			b.Fatal("bad")
		}
	}
}

func TestUnionWithEmptyAllocFree(t *testing.T) {
	x := Of(1, 5, 9)
	var empty Set
	allocs := testing.AllocsPerRun(100, func() {
		_ = x.Union(empty)
		_ = empty.Union(x)
	})
	if allocs != 0 {
		t.Errorf("union with empty allocates %.1f/op", allocs)
	}
}
