// Package taint implements the data structures and policies of AUTOVAC's
// dynamic taint analysis (paper §III): taint label sets, the taint-source
// table that maps labels back to the system-resource API calls that
// introduced them, and (in analysis.go) the forward tainted-predicate scan
// and the backward root-cause classification used by determinism analysis
// (§IV-C).
package taint

import (
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// Source is a taint label: a small integer identifying one
// resource-related API call occurrence that introduced taint.
type Source uint32

// Set is an immutable set of taint labels, represented as a bitset.
// The zero value is the empty set and is ready to use. All operations
// return new sets; sets are safely shareable.
type Set struct {
	words []uint64
}

// Empty reports whether the set has no labels.
func (s Set) Empty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Has reports whether the set contains the label.
func (s Set) Has(src Source) bool {
	i := int(src / 64)
	if i >= len(s.words) {
		return false
	}
	return s.words[i]&(1<<(src%64)) != 0
}

// With returns a copy of the set with the label added.
func (s Set) With(src Source) Set {
	i := int(src / 64)
	words := make([]uint64, max(len(s.words), i+1))
	copy(words, s.words)
	words[i] |= 1 << (src % 64)
	return Set{words: words}
}

// Union returns the union of two sets. Either operand may be empty;
// unions with the empty set return the other operand without copying.
func (s Set) Union(o Set) Set {
	if s.Empty() {
		return o
	}
	if o.Empty() {
		return s
	}
	words := make([]uint64, max(len(s.words), len(o.words)))
	copy(words, s.words)
	for i, w := range o.words {
		words[i] |= w
	}
	return Set{words: words}
}

// Equal reports whether two sets contain the same labels.
func (s Set) Equal(o Set) bool {
	n := max(len(s.words), len(o.words))
	for i := 0; i < n; i++ {
		var a, b uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if i < len(o.words) {
			b = o.words[i]
		}
		if a != b {
			return false
		}
	}
	return true
}

// Contains reports whether s is a superset of o.
func (s Set) Contains(o Set) bool {
	for i, w := range o.words {
		var a uint64
		if i < len(s.words) {
			a = s.words[i]
		}
		if w&^a != 0 {
			return false
		}
	}
	return true
}

// Len returns the number of labels in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Sources returns the labels in ascending order.
func (s Set) Sources() []Source {
	var out []Source
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, Source(i*64+b))
			w &^= 1 << b
		}
	}
	return out
}

// Of builds a set from labels.
func Of(srcs ...Source) Set {
	var s Set
	for _, src := range srcs {
		s = s.With(src)
	}
	return s
}

// String renders the set as {1,5,9}.
func (s Set) String() string {
	srcs := s.Sources()
	parts := make([]string, len(srcs))
	for i, src := range srcs {
		parts[i] = fmt.Sprintf("%d", src)
	}
	return "{" + strings.Join(parts, ",") + "}"
}

// SourceInfo records where a taint label came from: the API call that
// introduced it, its precise calling context, and the resource it touched.
// This is the information Phase-I logs for each tainted system-resource
// API (paper §III, "Output from Phase-I").
type SourceInfo struct {
	// Source is the label this record describes.
	Source Source
	// API is the Windows-style API name (e.g. "OpenMutexA").
	API string
	// CallerPC is the program counter of the call site.
	CallerPC int
	// Seq is the dynamic occurrence index of this API call in the run.
	Seq int
	// ResourceKind names the resource namespace ("mutex", "file", ...).
	ResourceKind string
	// Identifier is the concrete resource identifier observed.
	Identifier string
	// Op is the resource operation ("create", "open", ...).
	Op string
	// Success reports whether the operation succeeded.
	Success bool
	// Class is the API's determinism class ("none", "semantic",
	// "random") used by the root-cause classification (§IV-C).
	Class string
}

// Table allocates taint labels and remembers their provenance.
// The zero value is ready to use.
type Table struct {
	infos []SourceInfo
}

// Add allocates a fresh label for the given provenance and returns it.
func (t *Table) Add(info SourceInfo) Source {
	src := Source(len(t.infos))
	info.Source = src
	t.infos = append(t.infos, info)
	return src
}

// SetSuccess updates the success flag of an existing record (the label
// is allocated before the API implementation runs, so the outcome is
// back-filled).
func (t *Table) SetSuccess(src Source, ok bool) {
	if int(src) < len(t.infos) {
		t.infos[src].Success = ok
	}
}

// Reserve allocates a label whose provenance will be back-filled with
// Fill once the API call completes (the label must exist before the
// implementation runs so output writes can carry it).
func (t *Table) Reserve() Source {
	src := Source(len(t.infos))
	t.infos = append(t.infos, SourceInfo{Source: src})
	return src
}

// Fill back-fills a reserved label's provenance. The Source field of
// info is overwritten with src.
func (t *Table) Fill(src Source, info SourceInfo) {
	if int(src) < len(t.infos) {
		info.Source = src
		t.infos[src] = info
	}
}

// Info returns the provenance of a label.
func (t *Table) Info(src Source) (SourceInfo, bool) {
	if int(src) >= len(t.infos) {
		return SourceInfo{}, false
	}
	return t.infos[src], true
}

// Len returns the number of allocated labels.
func (t *Table) Len() int { return len(t.infos) }

// Reset forgets every label while keeping the backing storage, so a
// pooled execution can reuse the table without reallocating. Records
// previously handed out by All are unaffected (All copies).
func (t *Table) Reset() { t.infos = t.infos[:0] }

// All returns every source record, ordered by label.
func (t *Table) All() []SourceInfo {
	return append([]SourceInfo(nil), t.infos...)
}

// Lookup returns the labels whose provenance satisfies the predicate.
func (t *Table) Lookup(pred func(SourceInfo) bool) []Source {
	var out []Source
	for _, info := range t.infos {
		if pred(info) {
			out = append(out, info.Source)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
