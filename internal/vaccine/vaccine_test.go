package vaccine

import (
	"bytes"
	"strings"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/winenv"
)

func valid() Vaccine {
	return Vaccine{
		ID: "zeus/mutex/0", Sample: "zeus", Family: "Zeus/Zbot", Category: "Backdoor",
		Resource: winenv.KindMutex, Identifier: "_AVIRA_2109",
		Class: determinism.Static, Op: "open", API: "OpenMutexA",
		Effect: impact.TypeIV, Effects: []impact.Effect{impact.TypeIV, impact.TypeIII},
		Polarity: SimulatePresence, Delivery: DirectInjection,
	}
}

func TestEnumStrings(t *testing.T) {
	if SimulatePresence.String() != "simulate-presence" || BlockAccess.String() != "block-access" {
		t.Error("Polarity strings wrong")
	}
	if DirectInjection.String() != "direct-injection" || VaccineDaemon.String() != "daemon" {
		t.Error("Delivery strings wrong")
	}
}

func TestValidate(t *testing.T) {
	v := valid()
	if err := v.Validate(); err != nil {
		t.Fatalf("valid vaccine rejected: %v", err)
	}

	cases := []struct {
		name   string
		mutate func(*Vaccine)
		want   string
	}{
		{"missing id", func(v *Vaccine) { v.ID = "" }, "missing ID"},
		{"bad resource", func(v *Vaccine) { v.Resource = winenv.KindInvalid }, "invalid resource"},
		{"static no identifier", func(v *Vaccine) { v.Identifier = "" }, "static without identifier"},
		{"partial no pattern", func(v *Vaccine) {
			v.Class = determinism.PartialStatic
			v.Delivery = VaccineDaemon
		}, "without pattern"},
		{"partial direct delivery", func(v *Vaccine) {
			v.Class = determinism.PartialStatic
			v.Pattern = "X-*"
		}, "requires daemon"},
		{"algo no slice", func(v *Vaccine) { v.Class = determinism.AlgorithmDeterministic }, "without slice"},
		{"non-deterministic", func(v *Vaccine) { v.Class = determinism.NonDeterministic }, "not deployable"},
		{"no effect", func(v *Vaccine) { v.Effect = impact.NoImmunization }, "no immunization"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			v := valid()
			tc.mutate(&v)
			err := v.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Errorf("err = %v, want substring %q", err, tc.want)
			}
		})
	}
}

func TestFullImmunization(t *testing.T) {
	v := valid()
	if v.FullImmunization() {
		t.Error("Type-IV reported full")
	}
	v.Effect = impact.Full
	if !v.FullImmunization() {
		t.Error("Full not reported")
	}
}

func TestStringRendersPattern(t *testing.T) {
	v := valid()
	if !strings.Contains(v.String(), "_AVIRA_2109") {
		t.Errorf("String() = %q", v.String())
	}
	v.Class = determinism.PartialStatic
	v.Pattern = "WORMX-*"
	if !strings.Contains(v.String(), "WORMX-*") {
		t.Errorf("String() = %q", v.String())
	}
}

func TestPackRoundTrip(t *testing.T) {
	p := &Pack{Generator: "autovac-test", Vaccines: []Vaccine{valid()}}
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Generator != "autovac-test" || len(got.Vaccines) != 1 {
		t.Fatalf("round trip: %+v", got)
	}
	v := got.Vaccines[0]
	if v.Identifier != "_AVIRA_2109" || v.Resource != winenv.KindMutex ||
		v.Effect != impact.TypeIV || len(v.Effects) != 2 {
		t.Errorf("vaccine lost fields: %+v", v)
	}
}

func TestReadPackRejectsInvalid(t *testing.T) {
	bad := &Pack{Vaccines: []Vaccine{{ID: "x"}}}
	var buf bytes.Buffer
	if err := bad.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadPack(&buf); err == nil {
		t.Error("invalid pack accepted")
	}
	if _, err := ReadPack(strings.NewReader("{oops")); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func domainVaccine() Vaccine {
	return Vaccine{
		ID: "worm/domain/0", Sample: "worm", Family: "Conficker",
		Resource: winenv.KindDomain, Identifier: "cc.botnet.example:445",
		Class: determinism.Static, Op: "open", API: "connect",
		Effect: impact.TypeII, Effects: []impact.Effect{impact.TypeII},
		Polarity: BlockAccess, Delivery: DirectInjection,
	}
}

func TestValidateDomainVaccine(t *testing.T) {
	v := domainVaccine()
	if err := v.Validate(); err != nil {
		t.Fatalf("valid domain vaccine rejected: %v", err)
	}
	// URLs are valid domain identifiers too.
	v.Identifier = "http://cc.botnet.example/stage2.bin"
	if err := v.Validate(); err != nil {
		t.Fatalf("URL domain identifier rejected: %v", err)
	}
	// Local-namespace shapes are not.
	for _, bad := range []string{`Global\mutex-name`, "two words.example", "tab\t.example"} {
		v := domainVaccine()
		v.Identifier = bad
		if err := v.Validate(); err == nil {
			t.Errorf("malformed domain identifier %q accepted", bad)
		}
	}
	// Pattern shape is checked for partial-static domain vaccines.
	p := domainVaccine()
	p.Class = determinism.PartialStatic
	p.Pattern = `*\dga.example`
	p.Delivery = VaccineDaemon
	if err := p.Validate(); err == nil {
		t.Error("backslash domain pattern accepted")
	}
}

func TestDedupeDomainVaccines(t *testing.T) {
	a := domainVaccine()
	b := domainVaccine()
	b.ID = "worm2/domain/0"
	b.Sample = "worm2"
	b.Identifier = "CC.BOTNET.EXAMPLE:445" // case-insensitive merge
	c := domainVaccine()
	c.ID = "worm/domain/1"
	c.Identifier = "iuqerfsod.example"
	c.Polarity = SimulatePresence // killswitch registration, distinct polarity

	out := Dedupe([]Vaccine{a, b, c})
	if len(out) != 2 {
		t.Fatalf("dedupe produced %d vaccines, want 2", len(out))
	}
	if out[0].Sample != "worm,worm2" {
		t.Errorf("merged samples = %q", out[0].Sample)
	}
	// Distinct digests for distinct domain payloads.
	p1 := Pack{Generator: "t", Vaccines: []Vaccine{a}}
	p2 := Pack{Generator: "t", Vaccines: []Vaccine{c}}
	if p1.Digest() == p2.Digest() {
		t.Error("distinct domain packs share a digest")
	}
	if err := p1.Verify(); err != nil {
		t.Errorf("domain pack failed Verify: %v", err)
	}
}
