package vaccine

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"math"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/winenv"
)

// Binary vaccine encoding — the payload half of the fleet delta codec
// (internal/fleet/codec.go frames it). JSON spends most of a delta's
// bytes on field names, quotes, and repeated string values; at fleet
// scale that is the dominant wire cost, so the binary form drops all
// three:
//
//   - field names disappear: fields are positional, optionals gated by
//     a presence bitmap;
//   - integers (enums, counters, PCs) become varints;
//   - every string is interned once in a per-batch string table and
//     referenced by varint index, so vaccines sharing an API, op, or
//     sample name pay for the bytes once per pack, not once per
//     vaccine.
//
// The replay slice of algorithm-deterministic vaccines is carried as a
// length-prefixed canonical-JSON blob: it is rare, deeply structured,
// and already has one canonical serialised form (the one Fingerprint
// hashes), so re-encoding it field-by-field would buy little and risk
// divergence.
//
// Decoding never trusts input: every count is bounded by the bytes
// remaining, unknown presence bits are rejected, and all failures
// return an error wrapping ErrBinaryMalformed — never a panic
// (FuzzDeltaCodec in internal/fleet pins this).

// ErrBinaryMalformed is wrapped by every binary-decoding failure, so
// callers can classify transport corruption distinctly from valid
// responses (fleet agents count these as retryable DecodeErrors).
var ErrBinaryMalformed = errors.New("vaccine: malformed binary encoding")

// Presence bits of the per-vaccine optional-field bitmap.
const (
	binHasFamily = 1 << iota
	binHasCategory
	binHasPattern
	binHasEffects
	binHasSlice
	binHasBDR
	binHasCallerPC

	binKnownBits = binHasCallerPC<<1 - 1
)

// strTable interns strings during encoding: first use appends the
// string to the table and later uses reference it by index.
type strTable struct {
	index map[string]uint64
	strs  []string
}

func (t *strTable) intern(s string) uint64 {
	if i, ok := t.index[s]; ok {
		return i
	}
	i := uint64(len(t.strs))
	t.index[s] = i
	t.strs = append(t.strs, s)
	return i
}

// AppendBinary appends the binary encoding of vs to dst: a string
// table followed by the positional vaccine records. Decode with
// DecodeBinary.
func AppendBinary(dst []byte, vs []Vaccine) ([]byte, error) {
	tab := &strTable{index: make(map[string]uint64)}
	var body []byte
	for i := range vs {
		var err error
		body, err = appendVaccine(body, &vs[i], tab)
		if err != nil {
			return nil, err
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(tab.strs)))
	for _, s := range tab.strs {
		dst = appendString(dst, s)
	}
	dst = binary.AppendUvarint(dst, uint64(len(vs)))
	return append(dst, body...), nil
}

// appendVaccine encodes one vaccine positionally, interning its
// strings.
func appendVaccine(dst []byte, v *Vaccine, tab *strTable) ([]byte, error) {
	flags := uint64(0)
	if v.Family != "" {
		flags |= binHasFamily
	}
	if v.Category != "" {
		flags |= binHasCategory
	}
	if v.Pattern != "" {
		flags |= binHasPattern
	}
	if len(v.Effects) > 0 {
		flags |= binHasEffects
	}
	if v.Slice != nil {
		flags |= binHasSlice
	}
	if v.BDR != 0 {
		flags |= binHasBDR
	}
	if v.CallerPC != 0 {
		flags |= binHasCallerPC
	}
	dst = binary.AppendUvarint(dst, flags)
	dst = binary.AppendUvarint(dst, tab.intern(v.ID))
	dst = binary.AppendUvarint(dst, tab.intern(v.Sample))
	if flags&binHasFamily != 0 {
		dst = binary.AppendUvarint(dst, tab.intern(v.Family))
	}
	if flags&binHasCategory != 0 {
		dst = binary.AppendUvarint(dst, tab.intern(v.Category))
	}
	dst = binary.AppendVarint(dst, int64(v.Resource))
	dst = binary.AppendUvarint(dst, tab.intern(v.Identifier))
	if flags&binHasPattern != 0 {
		dst = binary.AppendUvarint(dst, tab.intern(v.Pattern))
	}
	dst = binary.AppendVarint(dst, int64(v.Class))
	dst = binary.AppendUvarint(dst, tab.intern(v.Op))
	dst = binary.AppendUvarint(dst, tab.intern(v.API))
	if flags&binHasCallerPC != 0 {
		dst = binary.AppendVarint(dst, int64(v.CallerPC))
	}
	dst = binary.AppendVarint(dst, int64(v.Effect))
	if flags&binHasEffects != 0 {
		dst = binary.AppendUvarint(dst, uint64(len(v.Effects)))
		for _, e := range v.Effects {
			dst = binary.AppendVarint(dst, int64(e))
		}
	}
	dst = binary.AppendVarint(dst, int64(v.Polarity))
	dst = binary.AppendVarint(dst, int64(v.Delivery))
	if flags&binHasSlice != 0 {
		blob, err := json.Marshal(v.Slice)
		if err != nil {
			return nil, fmt.Errorf("vaccine: binary-encoding slice of %s: %w", v.ID, err)
		}
		dst = binary.AppendUvarint(dst, uint64(len(blob)))
		dst = append(dst, blob...)
	}
	if flags&binHasBDR != 0 {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(v.BDR))
	}
	return dst, nil
}

// appendString emits one length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// binReader walks a binary payload with bounds-checked reads; the
// first failure latches and every later read becomes a no-op, so
// decoders can read a full record and check err once.
type binReader struct {
	data []byte
	err  error
}

func (r *binReader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: "+format, append([]any{ErrBinaryMalformed}, args...)...)
	}
}

func (r *binReader) uvarint() uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.fail("truncated uvarint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) varint() int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.fail("truncated varint")
		return 0
	}
	r.data = r.data[n:]
	return v
}

func (r *binReader) bytes(n uint64) []byte {
	if r.err != nil {
		return nil
	}
	if n > uint64(len(r.data)) {
		r.fail("%d-byte field exceeds %d remaining", n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *binReader) u64() uint64 {
	b := r.bytes(8)
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// DecodeBinary decodes a vaccine batch produced by AppendBinary,
// returning the vaccines and the unconsumed remainder of data. Errors
// wrap ErrBinaryMalformed and never panic, whatever the input.
func DecodeBinary(data []byte) ([]Vaccine, []byte, error) {
	r := &binReader{data: data}
	nstr := r.uvarint()
	if r.err == nil && nstr > uint64(len(r.data)) {
		// Every table entry costs at least its length byte; a count
		// beyond the remaining bytes is corrupt, not a big table.
		r.fail("string table count %d exceeds %d remaining bytes", nstr, len(r.data))
	}
	var tab []string
	if r.err == nil {
		tab = make([]string, 0, nstr)
		for i := uint64(0); i < nstr && r.err == nil; i++ {
			tab = append(tab, string(r.bytes(r.uvarint())))
		}
	}
	nvac := r.uvarint()
	if r.err == nil && nvac > uint64(len(r.data))+1 {
		r.fail("vaccine count %d exceeds %d remaining bytes", nvac, len(r.data))
	}
	var vs []Vaccine
	if r.err == nil {
		vs = make([]Vaccine, 0, nvac)
		for i := uint64(0); i < nvac && r.err == nil; i++ {
			vs = append(vs, decodeVaccine(r, tab))
		}
	}
	if r.err != nil {
		return nil, nil, r.err
	}
	return vs, r.data, nil
}

// decodeVaccine reads one positional vaccine record.
func decodeVaccine(r *binReader, tab []string) Vaccine {
	str := func(i uint64) string {
		if r.err != nil {
			return ""
		}
		if i >= uint64(len(tab)) {
			r.fail("string ref %d outside table of %d", i, len(tab))
			return ""
		}
		return tab[i]
	}
	var v Vaccine
	flags := r.uvarint()
	if r.err == nil && flags&^uint64(binKnownBits) != 0 {
		r.fail("unknown presence bits %#x", flags&^uint64(binKnownBits))
	}
	v.ID = str(r.uvarint())
	v.Sample = str(r.uvarint())
	if flags&binHasFamily != 0 {
		v.Family = str(r.uvarint())
	}
	if flags&binHasCategory != 0 {
		v.Category = str(r.uvarint())
	}
	v.Resource = winenv.ResourceKind(r.varint())
	v.Identifier = str(r.uvarint())
	if flags&binHasPattern != 0 {
		v.Pattern = str(r.uvarint())
	}
	v.Class = IdentifierClass(r.varint())
	v.Op = str(r.uvarint())
	v.API = str(r.uvarint())
	if flags&binHasCallerPC != 0 {
		v.CallerPC = int(r.varint())
	}
	v.Effect = impact.Effect(r.varint())
	if flags&binHasEffects != 0 {
		n := r.uvarint()
		if r.err == nil && n > uint64(len(r.data))+1 {
			r.fail("effects count %d exceeds %d remaining bytes", n, len(r.data))
		}
		if r.err == nil {
			v.Effects = make([]impact.Effect, 0, n)
			for i := uint64(0); i < n && r.err == nil; i++ {
				v.Effects = append(v.Effects, impact.Effect(r.varint()))
			}
		}
	}
	v.Polarity = Polarity(r.varint())
	v.Delivery = Delivery(r.varint())
	if flags&binHasSlice != 0 {
		blob := r.bytes(r.uvarint())
		if r.err == nil {
			var sl determinism.Slice
			if err := json.Unmarshal(blob, &sl); err != nil {
				r.fail("slice blob: %v", err)
			} else {
				v.Slice = &sl
			}
		}
	}
	if flags&binHasBDR != 0 {
		v.BDR = math.Float64frombits(r.u64())
	}
	return v
}
