package vaccine

import (
	"sort"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/impact"
)

// Dedupe merges vaccines from many samples that protect the same
// resource, for fleet deployment: a corpus-wide analysis produces one
// `!VoqA.I4` vaccine per PoisonIvy-like sample, but an end host needs it
// installed once. Vaccines merge when they share resource kind,
// identifier (or pattern), and polarity; the merged vaccine keeps the
// strongest effect, the union of effects, and lists every contributing
// sample in Sample (comma-separated). Output order is deterministic
// (resource kind, then identifier).
func Dedupe(vaccines []Vaccine) []Vaccine {
	type key struct {
		kind     string
		ident    string
		polarity Polarity
	}
	merged := make(map[key]*Vaccine)
	var order []key
	for i := range vaccines {
		v := vaccines[i]
		ident := v.Identifier
		if v.Class == determinism.PartialStatic {
			ident = v.Pattern
		}
		k := key{kind: v.Resource.String(), ident: strings.ToLower(ident), polarity: v.Polarity}
		prev, ok := merged[k]
		if !ok {
			cp := v
			cp.Effects = append([]impact.Effect(nil), v.Effects...)
			merged[k] = &cp
			order = append(order, k)
			continue
		}
		// Merge: strongest (lowest-enum) effect wins; effects union;
		// samples accumulate.
		if v.Effect < prev.Effect {
			prev.Effect = v.Effect
		}
		for _, e := range v.Effects {
			found := false
			for _, x := range prev.Effects {
				if x == e {
					found = true
					break
				}
			}
			if !found {
				prev.Effects = append(prev.Effects, e)
			}
		}
		if !strings.Contains(","+prev.Sample+",", ","+v.Sample+",") {
			prev.Sample += "," + v.Sample
		}
		// A daemon-delivered duplicate upgrades the delivery (the daemon
		// can serve direct-injection vaccines too, not vice versa).
		if v.Delivery == VaccineDaemon {
			prev.Delivery = VaccineDaemon
		}
		if prev.Slice == nil {
			prev.Slice = v.Slice
		}
	}
	sort.Slice(order, func(i, j int) bool {
		if order[i].kind != order[j].kind {
			return order[i].kind < order[j].kind
		}
		if order[i].ident != order[j].ident {
			return order[i].ident < order[j].ident
		}
		return order[i].polarity < order[j].polarity
	})
	out := make([]Vaccine, 0, len(order))
	for _, k := range order {
		v := *merged[k]
		sort.Slice(v.Effects, func(i, j int) bool { return v.Effects[i] < v.Effects[j] })
		out = append(out, v)
	}
	return out
}
