package vaccine

import (
	"bytes"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/isa"
)

// algoValid returns a valid algorithm-deterministic vaccine carrying a
// slice, the heaviest payload the digest must cover.
func algoValid() Vaccine {
	v := valid()
	v.ID = "conficker/mutex/0"
	v.Class = determinism.AlgorithmDeterministic
	v.Slice = &determinism.Slice{
		Program:     &isa.Program{Name: "conficker-slice"},
		ResultAddr:  0x2000,
		API:         "CreateMutexA",
		SourceSteps: 17,
	}
	return v
}

func TestFingerprintDeterministic(t *testing.T) {
	a, b := valid(), valid()
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("equal vaccines produced different fingerprints")
	}
	b.Identifier = "OTHER_MUTEX"
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("different vaccines produced equal fingerprints")
	}
}

func TestPackDigestOrderIndependent(t *testing.T) {
	v1, v2 := valid(), algoValid()
	p1 := Pack{Generator: "g1", Vaccines: []Vaccine{v1, v2}}
	p2 := Pack{Generator: "g1", Vaccines: []Vaccine{v2, v1}}
	if p1.Digest() != p2.Digest() {
		t.Fatal("vaccine order changed the pack digest")
	}
	p3 := Pack{Generator: "g2", Vaccines: []Vaccine{v1, v2}}
	if p1.Digest() == p3.Digest() {
		t.Fatal("generator label not covered by the pack digest")
	}
	empty := Pack{}
	if empty.Digest() == "" {
		t.Fatal("empty pack should still digest")
	}
}

// TestDigestSurvivesRoundTrip pins the fleet-sync invariant: a pack
// serialised, shipped, and deserialised on an end host digests
// identically, so the agent's If-None-Match header matches the server's
// ETag for unchanged content.
func TestDigestSurvivesRoundTrip(t *testing.T) {
	orig := Pack{Generator: "autovac-test", Vaccines: []Vaccine{valid(), algoValid()}}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPack(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Digest() != orig.Digest() {
		t.Fatalf("digest changed across round trip:\n  before %s\n  after  %s",
			orig.Digest(), got.Digest())
	}
	for i := range orig.Vaccines {
		if got.Vaccines[i].Fingerprint() != orig.Vaccines[i].Fingerprint() {
			t.Fatalf("vaccine %d fingerprint changed across round trip", i)
		}
	}
}
