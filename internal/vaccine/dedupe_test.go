package vaccine

import (
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/winenv"
)

func mk(id, sample, ident string, effect impact.Effect) Vaccine {
	return Vaccine{
		ID: id, Sample: sample,
		Resource: winenv.KindMutex, Identifier: ident,
		Class: determinism.Static, Op: "open", API: "OpenMutexA",
		Effect: effect, Effects: []impact.Effect{effect},
		Polarity: SimulatePresence, Delivery: DirectInjection,
	}
}

func TestDedupeMergesSameResource(t *testing.T) {
	in := []Vaccine{
		mk("a/mutex/0", "sample-a", "!VoqA.I4", impact.TypeIII),
		mk("b/mutex/0", "sample-b", "!voqa.i4", impact.Full), // case-insensitive merge
		mk("c/mutex/0", "sample-c", "OTHER", impact.Full),
	}
	out := Dedupe(in)
	if len(out) != 2 {
		t.Fatalf("deduped to %d, want 2", len(out))
	}
	// Deterministic order: identifiers sorted.
	if out[0].Identifier != "!VoqA.I4" || out[1].Identifier != "OTHER" {
		t.Errorf("order: %q, %q", out[0].Identifier, out[1].Identifier)
	}
	merged := out[0]
	if merged.Effect != impact.Full {
		t.Errorf("merged effect = %v, want strongest (Full)", merged.Effect)
	}
	if len(merged.Effects) != 2 {
		t.Errorf("merged effects = %v", merged.Effects)
	}
	if merged.Sample != "sample-a,sample-b" {
		t.Errorf("merged samples = %q", merged.Sample)
	}
}

func TestDedupeKeepsDistinctPolarity(t *testing.T) {
	a := mk("a/mutex/0", "s1", "X", impact.Full)
	b := mk("b/mutex/0", "s2", "X", impact.Full)
	b.Polarity = BlockAccess
	out := Dedupe([]Vaccine{a, b})
	if len(out) != 2 {
		t.Fatalf("opposite polarities merged: %d", len(out))
	}
}

func TestDedupePartialStaticByPattern(t *testing.T) {
	p1 := mk("a/mutex/0", "s1", "", impact.Full)
	p1.Class = determinism.PartialStatic
	p1.Pattern = "WORMX-*"
	p1.Delivery = VaccineDaemon
	p2 := p1
	p2.ID = "b/mutex/0"
	p2.Sample = "s2"
	out := Dedupe([]Vaccine{p1, p2})
	if len(out) != 1 {
		t.Fatalf("patterns not merged: %d", len(out))
	}
	if out[0].Sample != "s1,s2" {
		t.Errorf("samples = %q", out[0].Sample)
	}
}

func TestDedupeDaemonDeliveryWins(t *testing.T) {
	a := mk("a/mutex/0", "s1", "X", impact.Full)
	b := mk("b/mutex/0", "s2", "X", impact.Full)
	b.Delivery = VaccineDaemon
	out := Dedupe([]Vaccine{a, b})
	if len(out) != 1 || out[0].Delivery != VaccineDaemon {
		t.Errorf("delivery = %v", out[0].Delivery)
	}
}

func TestDedupeIdempotent(t *testing.T) {
	in := []Vaccine{
		mk("a/mutex/0", "s1", "A", impact.Full),
		mk("b/mutex/0", "s2", "A", impact.TypeII),
		mk("c/mutex/0", "s3", "B", impact.TypeIII),
	}
	once := Dedupe(in)
	twice := Dedupe(once)
	if len(once) != len(twice) {
		t.Fatalf("not idempotent: %d vs %d", len(once), len(twice))
	}
	for i := range once {
		if once[i].Identifier != twice[i].Identifier || once[i].Effect != twice[i].Effect {
			t.Errorf("entry %d changed on second pass", i)
		}
	}
}

func TestDedupeEmpty(t *testing.T) {
	if out := Dedupe(nil); len(out) != 0 {
		t.Errorf("Dedupe(nil) = %v", out)
	}
}
