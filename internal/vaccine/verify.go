package vaccine

import (
	"fmt"

	"autovac/internal/static"
)

// VerifyReplayable statically verifies that the vaccine is safe to
// deploy to end hosts. For algorithm-deterministic vaccines this runs
// the slice verifier (internal/static): the identifier-regeneration
// slice must terminate, stay inside mapped memory, balance its stack,
// and call only deterministic side-effect-free APIs. Vaccines without
// a slice have nothing to replay and pass vacuously.
//
// This is deliberately separate from Validate: Validate checks record
// consistency (cheap, shape-only), while VerifyReplayable proves a
// behavioural property of the embedded program. Distribution gates
// (pack construction, fleet publication) require both.
func (v *Vaccine) VerifyReplayable() error {
	if v.Slice == nil {
		return nil
	}
	if err := static.VerifySlice(v.Slice.Program, v.Slice.ResultAddr, nil); err != nil {
		return fmt.Errorf("vaccine %s: %w", v.ID, err)
	}
	return nil
}

// Verify checks every vaccine in the pack: record consistency
// (Validate) plus slice replayability (VerifyReplayable). Packs must
// pass before being written to disk or published to a fleet registry.
func (p *Pack) Verify() error {
	for i := range p.Vaccines {
		if err := p.Vaccines[i].Validate(); err != nil {
			return err
		}
		if err := p.Vaccines[i].VerifyReplayable(); err != nil {
			return err
		}
	}
	return nil
}
