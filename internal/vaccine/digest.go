package vaccine

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
)

// Fingerprint returns a deterministic content hash of the vaccine: the
// SHA-256 of its canonical JSON encoding, hex-encoded. Go's JSON
// encoder emits struct fields in declaration order and sorts map keys,
// so two vaccines with equal content always produce equal fingerprints,
// and the fingerprint survives a serialisation round trip. Fleet
// distribution uses it to deduplicate republished vaccines and to build
// the pack digest served as the sync ETag.
func (v *Vaccine) Fingerprint() string {
	b, err := json.Marshal(v)
	if err != nil {
		// Vaccine contains only marshal-safe fields; an error here is a
		// programming bug, not an input condition.
		panic(fmt.Sprintf("vaccine: fingerprint %s: %v", v.ID, err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Digest returns a deterministic content hash of the pack: the SHA-256
// over the generator label and the sorted vaccine fingerprints. Sorting
// makes the digest independent of vaccine order, so a pack reassembled
// from delta syncs in any order digests identically to the original.
// The distribution server uses it as the HTTP ETag for sync responses.
func (p *Pack) Digest() string {
	fps := make([]string, len(p.Vaccines))
	for i := range p.Vaccines {
		fps[i] = p.Vaccines[i].Fingerprint()
	}
	return DigestFingerprints(p.Generator, fps)
}

// DigestFingerprints computes the pack digest from already-computed
// vaccine fingerprints: identical to building a Pack and calling
// Digest, minus the per-vaccine marshal+hash. Callers that cache
// fingerprints at publish time (the fleet registry) use it on the
// delta-serving hot path. The fps slice is sorted in place.
func DigestFingerprints(generator string, fps []string) string {
	sort.Strings(fps)
	h := sha256.New()
	h.Write([]byte(generator))
	h.Write([]byte{0})
	for _, fp := range fps {
		h.Write([]byte(fp))
	}
	return hex.EncodeToString(h.Sum(nil))
}
