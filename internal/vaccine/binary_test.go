package vaccine

import (
	"errors"
	"fmt"
	"testing"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/isa"
	"autovac/internal/winenv"
)

// binFullVaccine exercises every optional field the presence bitmap
// gates.
func binFullVaccine(t *testing.T) Vaccine {
	t.Helper()
	b := isa.NewBuilder("bin-slice")
	b.Mov(isa.R(isa.EAX), isa.Imm(7)).Mov(isa.MemAbs(0x00500000), isa.R(isa.EAX)).Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return Vaccine{
		ID: "bin/mutex/0", Sample: "bin-sample", Family: "conficker",
		Category: "worm", Resource: winenv.KindMutex,
		Identifier: "BIN-MARKER-0001", Pattern: "BIN-.*",
		Class: determinism.AlgorithmDeterministic, Op: "create",
		API: "CreateMutexA", CallerPC: 42,
		Effect:  impact.Full,
		Effects: []impact.Effect{impact.Full, impact.TypeI},
		Slice: &determinism.Slice{Program: prog, ResultAddr: 0x00500000,
			API: "CreateMutexA", SourceSteps: 3},
		Polarity: SimulatePresence, Delivery: DirectInjection,
		BDR: 0.875,
	}
}

func binMinVaccine(i int) Vaccine {
	return Vaccine{
		ID: fmt.Sprintf("bin/min/%d", i), Sample: "bin-sample",
		Resource: winenv.KindMutex, Identifier: fmt.Sprintf("MIN-%04d", i),
		Class: determinism.Static, Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: SimulatePresence,
		Delivery: DirectInjection,
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	in := []Vaccine{binFullVaccine(t), binMinVaccine(0), binMinVaccine(1)}
	enc, err := AppendBinary(nil, in)
	if err != nil {
		t.Fatal(err)
	}
	out, rest, err := DecodeBinary(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if len(out) != len(in) {
		t.Fatalf("decoded %d vaccines, want %d", len(out), len(in))
	}
	for i := range in {
		// Fingerprint is the vaccine's content identity (canonical JSON
		// digest), so equality here means every field survived,
		// including the replay slice blob.
		if in[i].Fingerprint() != out[i].Fingerprint() {
			t.Fatalf("vaccine %d content changed in round trip:\nin:  %+v\nout: %+v", i, in[i], out[i])
		}
	}
	if out[0].Slice == nil || out[0].BDR != in[0].BDR || out[0].CallerPC != in[0].CallerPC {
		t.Fatalf("optional fields lost: %+v", out[0])
	}
}

// TestBinaryInternsSharedStrings pins the string table's point: N
// vaccines sharing Sample/Op/API must not pay for those strings N
// times.
func TestBinaryInternsSharedStrings(t *testing.T) {
	one, err := AppendBinary(nil, []Vaccine{binMinVaccine(0)})
	if err != nil {
		t.Fatal(err)
	}
	many := make([]Vaccine, 64)
	for i := range many {
		many[i] = binMinVaccine(i)
	}
	enc, err := AppendBinary(nil, many)
	if err != nil {
		t.Fatal(err)
	}
	// Shared strings (Sample, Op, API) are stored once; per-vaccine
	// growth is the unique ID/Identifier plus a few varints.
	if len(enc) >= len(one)*len(many)*3/4 {
		t.Fatalf("no interning win: 1 vaccine = %dB, %d vaccines = %dB", len(one), len(many), len(enc))
	}
}

func TestDecodeBinaryMalformed(t *testing.T) {
	valid, err := AppendBinary(nil, []Vaccine{binFullVaccine(t), binMinVaccine(0)})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"truncated table":  valid[:2],
		"truncated record": valid[:len(valid)-3],
		"huge table count": {0xff, 0xff, 0xff, 0xff, 0x0f},
		"unknown bits":     {0, 1, 0xff, 0x01}, // 0 strings, 1 vaccine, flags with unknown bits
		"bad string ref":   {0, 1, 0, 0x7f},    // vaccine referencing string 127 of empty table
	}
	for name, data := range cases {
		if _, _, err := DecodeBinary(data); !errors.Is(err, ErrBinaryMalformed) {
			t.Errorf("%s: err = %v, want ErrBinaryMalformed", name, err)
		}
	}
}
