// Package vaccine defines the malware-vaccine model of the paper's
// taxonomy (§II-A): a system resource whose presence or inaccessibility
// immunizes a host against a malware sample, classified by identifier
// type (static / partial static / algorithm-deterministic), by
// effectiveness (full or partial immunization, Types I–IV), and by
// delivery mechanism (one-time direct injection or vaccine daemon).
package vaccine

import (
	"encoding/json"
	"fmt"
	"io"
	"strings"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/winenv"
)

// Polarity says how the vaccine frustrates the malware's resource
// logic — the two behaviours in the paper's definition (§II-A).
type Polarity int

// Polarities.
const (
	// SimulatePresence plants the resource so the malware believes the
	// machine is already infected (or occupied).
	SimulatePresence Polarity = iota
	// BlockAccess prevents the malware from creating/using the
	// resource (privilege-restricted placeholder or daemon refusal).
	BlockAccess
)

// String names the polarity.
func (p Polarity) String() string {
	if p == BlockAccess {
		return "block-access"
	}
	return "simulate-presence"
}

// Delivery is the deployment mechanism (§II-A, §V).
type Delivery int

// Delivery mechanisms.
const (
	// DirectInjection is a one-time injection of concrete resources.
	DirectInjection Delivery = iota
	// VaccineDaemon is a resident interceptor, needed for partial
	// static identifiers (pattern matching) and for re-generating
	// algorithm-deterministic identifiers when host facts change.
	VaccineDaemon
)

// String names the delivery mechanism.
func (d Delivery) String() string {
	if d == VaccineDaemon {
		return "daemon"
	}
	return "direct-injection"
}

// IdentifierClass mirrors determinism.Class for serialization clarity.
type IdentifierClass = determinism.Class

// Vaccine is one generated malware vaccine.
type Vaccine struct {
	// ID is a stable identifier: "<sample>/<resource>/<n>".
	ID string
	// Sample, Family, and Category identify the malware it immunizes
	// against.
	Sample   string
	Family   string `json:",omitempty"`
	Category string `json:",omitempty"`
	// Resource is the namespace the vaccine lives in.
	Resource winenv.ResourceKind
	// Identifier is the concrete resource identifier (for static
	// vaccines and for the generating host's algorithm-deterministic
	// value).
	Identifier string
	// Pattern is the wildcard pattern for partial-static vaccines.
	Pattern string `json:",omitempty"`
	// Class is the identifier class.
	Class IdentifierClass
	// Op is the malware's observed operation on the resource.
	Op string
	// API is the call the vaccine frustrates.
	API string
	// CallerPC is the call site, for reproducibility.
	CallerPC int
	// Effect is the primary immunization effect; Effects lists all.
	Effect  impact.Effect
	Effects []impact.Effect `json:",omitempty"`
	// Polarity says whether the vaccine simulates presence or blocks
	// access.
	Polarity Polarity
	// Delivery is the deployment mechanism.
	Delivery Delivery
	// Slice is the identifier-generation slice for
	// algorithm-deterministic vaccines (replayed per host).
	Slice *determinism.Slice `json:",omitempty"`
	// BDR is the measured Behavior Decreasing Ratio, when evaluated.
	BDR float64 `json:",omitempty"`
}

// FullImmunization reports whether the vaccine completely stops the
// malware.
func (v *Vaccine) FullImmunization() bool { return v.Effect == impact.Full }

// Validate checks internal consistency.
func (v *Vaccine) Validate() error {
	if v.ID == "" || v.Sample == "" {
		return fmt.Errorf("vaccine: missing ID or sample")
	}
	if !v.Resource.Valid() {
		return fmt.Errorf("vaccine %s: invalid resource kind", v.ID)
	}
	switch v.Class {
	case determinism.Static:
		if v.Identifier == "" {
			return fmt.Errorf("vaccine %s: static without identifier", v.ID)
		}
	case determinism.PartialStatic:
		if v.Pattern == "" {
			return fmt.Errorf("vaccine %s: partial-static without pattern", v.ID)
		}
		if v.Delivery != VaccineDaemon {
			return fmt.Errorf("vaccine %s: partial-static requires daemon delivery", v.ID)
		}
	case determinism.AlgorithmDeterministic:
		if v.Slice == nil {
			return fmt.Errorf("vaccine %s: algorithm-deterministic without slice", v.ID)
		}
	default:
		return fmt.Errorf("vaccine %s: non-deterministic identifiers are not deployable", v.ID)
	}
	if v.Effect == impact.NoImmunization {
		return fmt.Errorf("vaccine %s: no immunization effect", v.ID)
	}
	if v.Resource == winenv.KindDomain {
		// Domain vaccines deploy into the DNS world (sinkhole
		// registrations and blackholes), so the identifier must be a
		// plausible network name, not a local namespace path.
		id := v.Identifier
		if v.Class == determinism.PartialStatic {
			id = v.Pattern
		}
		if strings.ContainsAny(id, "\\ \t\r\n") {
			return fmt.Errorf("vaccine %s: malformed domain identifier %q", v.ID, id)
		}
	}
	return nil
}

// String renders a one-line summary.
func (v *Vaccine) String() string {
	id := v.Identifier
	if v.Class == determinism.PartialStatic {
		id = v.Pattern
	}
	return fmt.Sprintf("%s [%s %s %q %s %s %s]",
		v.ID, v.Resource, v.Op, id, v.Class, v.Effect, v.Delivery)
}

// AnalysisStats summarizes the corpus analysis that produced a pack:
// how many samples succeeded, failed, or panicked, and how long the
// run took. It travels inside packs so distribution servers can
// surface analysis health alongside distribution metrics.
type AnalysisStats struct {
	// Analyzed counts samples analysed successfully.
	Analyzed int
	// Failed counts samples whose analysis errored (panics included).
	Failed int
	// Panicked counts the subset of Failed that panicked.
	Panicked int
	// Skipped counts samples never started (cancellation/error budget).
	Skipped int
	// StaticallyFiltered counts samples the static taint pre-filter
	// proved candidate-free, skipping their Phase-I emulation.
	StaticallyFiltered int `json:",omitempty"`
	// TriageSkipped counts samples Phase-0 triage proved unable to
	// invoke any resource API (recovered API surface), skipping their
	// emulation entirely.
	TriageSkipped int `json:",omitempty"`
	// WallMillis is the run's wall time in milliseconds.
	WallMillis int64
}

// Add accumulates another run's statistics (packs from several runs
// may land in one registry).
func (a *AnalysisStats) Add(b AnalysisStats) {
	a.Analyzed += b.Analyzed
	a.Failed += b.Failed
	a.Panicked += b.Panicked
	a.Skipped += b.Skipped
	a.StaticallyFiltered += b.StaticallyFiltered
	a.TriageSkipped += b.TriageSkipped
	a.WallMillis += b.WallMillis
}

// Pack is a serializable set of vaccines (the unit shipped to end
// hosts).
type Pack struct {
	// Generator identifies the producing pipeline version.
	Generator string
	// Vaccines is the payload.
	Vaccines []Vaccine
	// Analysis, when present, summarizes the corpus run that produced
	// the pack (partial runs still ship their completed vaccines).
	Analysis *AnalysisStats `json:",omitempty"`
}

// WriteJSON serializes the pack.
func (p *Pack) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(p); err != nil {
		return fmt.Errorf("vaccine: encoding pack: %w", err)
	}
	return nil
}

// ReadPack deserializes a pack and validates every vaccine.
func ReadPack(r io.Reader) (*Pack, error) {
	var p Pack
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("vaccine: decoding pack: %w", err)
	}
	for i := range p.Vaccines {
		if err := p.Vaccines[i].Validate(); err != nil {
			return nil, err
		}
	}
	return &p, nil
}
