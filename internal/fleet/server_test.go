package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer returns a Server over a fresh registry and an
// httptest.Server wrapping its handler.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewRegistry(0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getDelta(t *testing.T, base string, since string, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+PathPacks+"?since="+since, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPacksDeltaAndNotModified(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("srv", 6)...)

	resp := getDelta(t, ts.URL, "0", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full sync status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on 200")
	}
	var d DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(d.Vaccines) != 6 || d.Version != 6 || !d.Complete {
		t.Fatalf("bad delta: %+v", d)
	}
	if `"`+d.ETag+`"` != etag {
		t.Fatal("body ETag disagrees with header")
	}

	// Same content re-requested with the ETag: 304 via If-None-Match.
	if resp := getDelta(t, ts.URL, "0", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d, want 304", resp.StatusCode)
	}
	// Up-to-date version: 304 via the since short-circuit.
	if resp := getDelta(t, ts.URL, "6", ""); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("since=latest status %d, want 304", resp.StatusCode)
	}

	snap := srv.MetricsSnapshot()
	if snap.DeltasServed != 1 || snap.NotModified != 2 || snap.Requests != 3 {
		t.Fatalf("metrics %+v", snap)
	}
	if snap.BytesServed == 0 {
		t.Fatal("no bytes counted")
	}
}

func TestPacksBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	if resp := getDelta(t, ts.URL, "notanumber", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+PathPacks, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST packs status %d", resp.StatusCode)
	}
	if snap := srv.MetricsSnapshot(); snap.Errors != 2 {
		t.Fatalf("errors %d, want 2", snap.Errors)
	}
}

func TestCheckinEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("chk", 2)...)

	body := `{"Host":"LAB-1","Version":2,"Installed":2,"Inspected":9,"Intercepted":4}`
	resp, err := http.Post(ts.URL+PathCheckin, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack CheckinResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Version != 2 {
		t.Fatalf("checkin status %d ack %+v", resp.StatusCode, ack)
	}

	// Missing host is rejected.
	resp, _ = http.Post(ts.URL+PathCheckin, "application/json", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty checkin status %d", resp.StatusCode)
	}

	st := srv.Registry().Fleet(time.Minute, time.Now())
	if st.ActiveHosts != 1 || st.Intercepted != 4 {
		t.Fatalf("fleet status %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("m", 3)...)
	getDelta(t, ts.URL, "0", "").Body.Close()

	resp, err := http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 || snap.Vaccines != 3 || snap.DeltasServed != 1 {
		t.Fatalf("metrics body %+v", snap)
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 99; i++ {
		h.observe(10 * time.Microsecond)
	}
	h.observe(100 * time.Millisecond)
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 > 64*time.Microsecond {
		t.Fatalf("p50 %v too high", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v below p50 %v", p99, p50)
	}
	if h.quantile(1.0) < 100*time.Millisecond {
		t.Fatalf("max quantile %v misses the outlier", h.quantile(1.0))
	}
}
