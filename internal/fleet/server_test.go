package fleet

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// newTestServer returns a Server over a fresh registry and an
// httptest.Server wrapping its handler.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	srv := NewServer(NewRegistry(0))
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getDelta(t *testing.T, base string, since string, etag string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+PathPacks+"?since="+since, nil)
	if err != nil {
		t.Fatal(err)
	}
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func TestPacksDeltaAndNotModified(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("srv", 6)...)

	resp := getDelta(t, ts.URL, "0", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("full sync status %d", resp.StatusCode)
	}
	etag := resp.Header.Get("ETag")
	if etag == "" {
		t.Fatal("no ETag on 200")
	}
	var d DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(d.Vaccines) != 6 || d.Version != 6 || !d.Complete {
		t.Fatalf("bad delta: %+v", d)
	}
	if `"`+d.ETag+`"` != etag {
		t.Fatal("body ETag disagrees with header")
	}

	// Same content re-requested with the ETag: 304 via If-None-Match.
	if resp := getDelta(t, ts.URL, "0", etag); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("If-None-Match status %d, want 304", resp.StatusCode)
	}
	// Up-to-date version: 304 via the since short-circuit.
	if resp := getDelta(t, ts.URL, "6", ""); resp.StatusCode != http.StatusNotModified {
		t.Fatalf("since=latest status %d, want 304", resp.StatusCode)
	}

	snap := srv.MetricsSnapshot()
	if snap.DeltasServed != 1 || snap.NotModified != 2 || snap.Requests != 3 {
		t.Fatalf("metrics %+v", snap)
	}
	if snap.BytesServed == 0 {
		t.Fatal("no bytes counted")
	}
}

func TestPacksBadRequests(t *testing.T) {
	srv, ts := newTestServer(t)
	if resp := getDelta(t, ts.URL, "notanumber", ""); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad since status %d", resp.StatusCode)
	}
	resp, err := http.Post(ts.URL+PathPacks, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST packs status %d", resp.StatusCode)
	}
	if snap := srv.MetricsSnapshot(); snap.Errors != 2 {
		t.Fatalf("errors %d, want 2", snap.Errors)
	}
}

func TestCheckinEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("chk", 2)...)

	body := `{"Host":"LAB-1","Version":2,"Installed":2,"Inspected":9,"Intercepted":4}`
	resp, err := http.Post(ts.URL+PathCheckin, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var ack CheckinResponse
	if err := json.NewDecoder(resp.Body).Decode(&ack); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || ack.Version != 2 {
		t.Fatalf("checkin status %d ack %+v", resp.StatusCode, ack)
	}

	// Missing host is rejected.
	resp, _ = http.Post(ts.URL+PathCheckin, "application/json", strings.NewReader(`{}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty checkin status %d", resp.StatusCode)
	}

	st := srv.Registry().Fleet(time.Minute, time.Now())
	if st.ActiveHosts != 1 || st.Intercepted != 4 {
		t.Fatalf("fleet status %+v", st)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("m", 3)...)
	getDelta(t, ts.URL, "0", "").Body.Close()

	resp, err := http.Get(ts.URL + PathMetrics)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap MetricsSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatal(err)
	}
	if snap.Version != 3 || snap.Vaccines != 3 || snap.DeltasServed != 1 {
		t.Fatalf("metrics body %+v", snap)
	}
}

// getDeltaWait issues a long-poll pack request.
func getDeltaWait(t *testing.T, base, since, wait string) *http.Response {
	t.Helper()
	resp, err := http.Get(base + PathPacks + "?since=" + since + "&wait=" + wait)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestPacksLongPollWakesOnPublish parks a long-poll request and
// publishes mid-wait: the delta must fire at publish time, not at the
// wait deadline.
func TestPacksLongPollWakesOnPublish(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("lp", 2)...)

	published := make(chan struct{})
	go func() {
		time.Sleep(30 * time.Millisecond)
		srv.Registry().Publish(testVaccines("lp-late", 1)...)
		close(published)
	}()

	start := time.Now()
	resp := getDeltaWait(t, ts.URL, "2", "10s")
	elapsed := time.Since(start)
	<-published
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("long-poll status %d, want 200", resp.StatusCode)
	}
	var d DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(d.Vaccines) != 1 || d.Version != 3 {
		t.Fatalf("woken delta: %d vaccines, version %d; want 1, 3", len(d.Vaccines), d.Version)
	}
	if elapsed >= 5*time.Second {
		t.Fatalf("long-poll took %v — it slept to the deadline instead of waking on publish", elapsed)
	}
	if snap := srv.MetricsSnapshot(); snap.LongPolls != 1 {
		t.Fatalf("long-poll counter %d, want 1", snap.LongPolls)
	}
}

// TestPacksLongPollTimeout304 lets the wait expire: the park must end
// in a 304 with a valid ETag, same as a plain up-to-date poll.
func TestPacksLongPollTimeout304(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("lpt", 2)...)

	start := time.Now()
	resp := getDeltaWait(t, ts.URL, "2", "60ms")
	elapsed := time.Since(start)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("expired long-poll status %d, want 304", resp.StatusCode)
	}
	if elapsed < 60*time.Millisecond {
		t.Fatalf("long-poll returned after %v, before the 60ms wait", elapsed)
	}
	if resp.Header.Get("ETag") == "" {
		t.Fatal("expired long-poll 304 carries no ETag")
	}

	// A malformed wait is a client error, not a park.
	resp = getDeltaWait(t, ts.URL, "2", "bogus")
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad wait status %d, want 400", resp.StatusCode)
	}
}

// TestPacksResyncAheadOfRegistry pins the agent-ahead-of-restarted-
// registry recovery: a since beyond the registry's latest must be
// answered with the full content marked Reset — not the 304-forever
// wedge the old short-circuit produced.
func TestPacksResyncAheadOfRegistry(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("rs", 3)...)

	resp := getDelta(t, ts.URL, "99", "")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("ahead-of-registry status %d, want 200", resp.StatusCode)
	}
	var d DeltaResponse
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !d.Reset || !d.Complete || d.Version != 3 || len(d.Vaccines) != 3 {
		t.Fatalf("resync delta: reset %v complete %v version %d vaccines %d",
			d.Reset, d.Complete, d.Version, len(d.Vaccines))
	}
	if snap := srv.MetricsSnapshot(); snap.Resyncs != 1 {
		t.Fatalf("resync counter %d, want 1", snap.Resyncs)
	}
}

// TestCheap304ETagMatchesDeltaDigest pins the validator unification:
// the up-to-date fast path must emit the same ETag the equivalent
// (empty) delta response would carry — pack-digest form, not the old
// "v<version>" counter form that gave one resource two validator
// vocabularies.
func TestCheap304ETagMatchesDeltaDigest(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("et", 3)...)

	resp := getDelta(t, ts.URL, "3", "")
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("up-to-date status %d, want 304", resp.StatusCode)
	}
	want := `"` + srv.Registry().Delta(3).ETag + `"`
	if got := resp.Header.Get("ETag"); got != want {
		t.Fatalf("cheap-304 ETag %s, want delta digest %s", got, want)
	}
}

func TestLatencyHistogramQuantiles(t *testing.T) {
	var h latencyHist
	for i := 0; i < 99; i++ {
		h.observe(10 * time.Microsecond)
	}
	h.observe(100 * time.Millisecond)
	p50, p99 := h.quantile(0.50), h.quantile(0.99)
	if p50 > 64*time.Microsecond {
		t.Fatalf("p50 %v too high", p50)
	}
	if p99 < p50 {
		t.Fatalf("p99 %v below p50 %v", p99, p50)
	}
	if h.quantile(1.0) < 100*time.Millisecond {
		t.Fatalf("max quantile %v misses the outlier", h.quantile(1.0))
	}
}
