package fleet

import (
	"context"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autovac/internal/core"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// analyzedPack runs the real pipeline over specs covering all three
// deployable identifier classes, so agent tests exercise the same
// deploy machinery (slice replay, pattern interception) a fleet would.
func analyzedPack(t *testing.T) []vaccine.Vaccine {
	t.Helper()
	pipeline := core.New(core.Config{Seed: 42})
	var vs []vaccine.Vaccine
	for _, spec := range []*malware.Spec{
		{Name: "flt-static", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehMarkerMutex, ID: "FLT.STATIC.1"},
			{Kind: malware.BehNetworkCC, ID: "a.example", Aux: "445", Count: 1},
		}},
		{Name: "flt-algo", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehAlgoMutex, ID: `Global\%s-77`},
			{Kind: malware.BehNetworkCC, ID: "b.example", Aux: "445", Count: 1},
		}},
		{Name: "flt-partial", Category: malware.Worm, Behaviors: []malware.Behavior{
			{Kind: malware.BehPartialMutex, ID: "FLTPART"},
			{Kind: malware.BehNetworkCC, ID: "c.example", Aux: "445", Count: 1},
		}},
	} {
		sample := &malware.Sample{Spec: spec, Program: malware.MustEmit(spec)}
		res, err := pipeline.Analyze(sample)
		if err != nil {
			t.Fatal(err)
		}
		vs = append(vs, res.Vaccines...)
	}
	if len(vs) < 3 {
		t.Fatalf("only %d vaccines generated", len(vs))
	}
	return vs
}

func newTestAgent(ts *httptest.Server, name string) *Agent {
	id := winenv.DefaultIdentity()
	id.ComputerName = name
	return NewAgent(AgentConfig{
		BaseURL:     ts.URL,
		Env:         winenv.New(id),
		Seed:        42,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
}

func TestAgentSyncApplyCheckin(t *testing.T) {
	srv, ts := newTestServer(t)
	pack := analyzedPack(t)
	srv.Registry().Publish(pack...)

	a := newTestAgent(ts, "AGENT-PC-01")
	applied, err := a.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 || a.Version() != srv.Registry().Latest() {
		t.Fatalf("applied %d, version %d (latest %d)", applied, a.Version(), srv.Registry().Latest())
	}
	if a.Daemon().VaccineCount() != len(pack) {
		t.Fatalf("daemon holds %d vaccines, want %d", a.Daemon().VaccineCount(), len(pack))
	}
	// The static mutex vaccine materialised on the host.
	if !a.Env().Exists(winenv.KindMutex, "FLT.STATIC.1") {
		t.Fatal("static vaccine resource not injected")
	}
	// The heartbeat landed.
	st := srv.Registry().Fleet(time.Minute, time.Now())
	if st.ActiveHosts != 1 || st.Converged != 1 || st.Installed != len(pack) {
		t.Fatalf("fleet status after checkin %+v", st)
	}

	// Steady state: next sync is a 304, nothing reinstalled.
	if _, err := a.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	stats := a.Stats()
	if stats.NotModified != 1 || stats.Deltas != 1 || stats.Checkins != 2 {
		t.Fatalf("agent stats %+v", stats)
	}
}

func TestAgentDeltaSyncInstallsOnlyNew(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("d1", 3)...)
	a := newTestAgent(ts, "AGENT-PC-02")
	ctx := context.Background()
	if _, err := a.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	srv.Registry().Publish(testVaccines("d2", 2)...)
	applied, err := a.SyncOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 {
		t.Fatalf("second sync applied %d, want 2 (delta only)", applied)
	}
	stats := a.Stats()
	if stats.Applied != 5 || stats.Skipped != 0 || stats.Deltas != 2 {
		t.Fatalf("agent stats %+v", stats)
	}
	if a.Version() != 5 {
		t.Fatalf("agent version %d, want 5", a.Version())
	}
}

// flakyFront fails the first n requests with 500, then delegates.
type flakyFront struct {
	next  http.Handler
	fails atomic.Int64
}

func (f *flakyFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.fails.Add(-1) >= 0 {
		http.Error(w, "transient", http.StatusInternalServerError)
		return
	}
	f.next.ServeHTTP(w, r)
}

func TestAgentRetriesTransientFailures(t *testing.T) {
	srv := NewServer(NewRegistry(0))
	srv.Registry().Publish(testVaccines("r", 4)...)
	front := &flakyFront{next: srv.Handler()}
	front.fails.Store(2)
	ts := httptest.NewServer(front)
	defer ts.Close()

	a := newTestAgent(ts, "AGENT-PC-03")
	applied, err := a.SyncOnce(context.Background())
	if err != nil {
		t.Fatalf("sync should survive 2 transient failures: %v", err)
	}
	if applied != 4 {
		t.Fatalf("applied %d, want 4", applied)
	}
	if st := a.Stats(); st.Retries != 2 {
		t.Fatalf("retries %d, want 2", st.Retries)
	}
}

func TestAgentBoundedRetriesGiveUp(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	a := newTestAgent(ts, "AGENT-PC-04")
	if _, err := a.SyncOnce(context.Background()); err == nil {
		t.Fatal("sync against a dead server should fail")
	}
	if st := a.Stats(); st.Retries != DefaultMaxRetries {
		t.Fatalf("retries %d, want %d", st.Retries, DefaultMaxRetries)
	}
}

// TestAgentRNGOwnership pins the Agent concurrency contract documented
// on the type: each agent owns a private rng (never package-level,
// never shared between agents), and every draw — retry backoff and
// poll jitter — happens on the agent's own goroutine. Many agents
// retrying concurrently against a failing server is exactly the
// scenario that would trip -race if the rng were ever shared or
// reached from a second goroutine (e.g. a background checkin).
func TestAgentRNGOwnership(t *testing.T) {
	// Distinct agents hold distinct rng instances, even with identical
	// seeds: sharing one *rand.Rand across hosts would race.
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer ts.Close()
	a, b := newTestAgent(ts, "RNG-PC-01"), newTestAgent(ts, "RNG-PC-02")
	if a.rng == b.rng {
		t.Fatal("two agents share one rng instance")
	}

	// Concurrent retry storm: every sync fails, so every agent draws
	// backoff jitter from its rng on its own goroutine, repeatedly and
	// simultaneously. Run under -race this proves no rng is shared.
	const hosts = 16
	var wg sync.WaitGroup
	for i := 0; i < hosts; i++ {
		ag := newTestAgent(ts, fmt.Sprintf("RNG-PC-%02d", i))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 3; n++ {
				if _, err := ag.SyncOnce(context.Background()); err == nil {
					t.Error("sync against a dead server succeeded")
					return
				}
			}
			if st := ag.Stats(); st.Retries != 3*DefaultMaxRetries {
				t.Errorf("retries %d, want %d (every retry draws from the rng)",
					st.Retries, 3*DefaultMaxRetries)
			}
		}()
	}
	wg.Wait()
}

func TestAgentRunStopsOnCancel(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("run", 2)...)
	a := newTestAgent(ts, "AGENT-PC-05")
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx, 2*time.Millisecond) }()
	time.Sleep(25 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v on clean cancel", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("run did not stop on cancel")
	}
	if st := a.Stats(); st.Syncs < 2 {
		t.Fatalf("run completed only %d syncs", st.Syncs)
	}
}

// TestAgentRunZeroIntervalNoPanic pins the jitter-floor fix: Run with
// a zero (or negative) interval used to feed rng.Int63n a non-positive
// bound and panic; now the draw is floored at minJitterInterval.
func TestAgentRunZeroIntervalNoPanic(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("z", 1)...)
	for _, interval := range []time.Duration{0, -time.Second} {
		a := newTestAgent(ts, "AGENT-PC-Z")
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() { done <- a.Run(ctx, interval) }()
		time.Sleep(20 * time.Millisecond)
		cancel()
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("interval %v: run returned %v", interval, err)
			}
		case <-time.After(2 * time.Second):
			t.Fatalf("interval %v: run did not stop on cancel", interval)
		}
		if st := a.Stats(); st.Syncs < 1 {
			t.Fatalf("interval %v: no syncs completed", interval)
		}
	}
}

// TestJitteredIntervalBounds pins the shared jitter helper's envelope,
// including the degenerate durations that used to panic.
func TestJitteredIntervalBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, d := range []time.Duration{-time.Second, 0, 1, minJitterInterval, 10 * time.Millisecond} {
		eff := d
		if eff < minJitterInterval {
			eff = minJitterInterval
		}
		for i := 0; i < 100; i++ {
			got := jitteredInterval(rng, d)
			if got < eff/2 || got >= eff/2+eff {
				t.Fatalf("jitteredInterval(%v) = %v outside [%v, %v)", d, got, eff/2, eff/2+eff)
			}
		}
	}
}

// TestAgentResyncAfterRegistryRestart plays the agent that outlived a
// registry restarted without its WAL: its cursor is ahead of the
// server, and the Reset delta must rebase it instead of 304ing forever.
func TestAgentResyncAfterRegistryRestart(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("rb", 2)...)
	a := newTestAgent(ts, "AGENT-PC-RB")
	a.version = 99 // cursor from the previous registry incarnation

	applied, err := a.SyncOnce(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if applied != 2 || a.Version() != 2 {
		t.Fatalf("resync applied %d at version %d, want 2 at 2", applied, a.Version())
	}
	if st := a.Stats(); st.Resyncs != 1 {
		t.Fatalf("resyncs %d, want 1", st.Resyncs)
	}
	// Rebased: steady state is a plain 304 again.
	if _, err := a.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := a.Stats(); st.NotModified != 1 {
		t.Fatalf("post-rebase stats %+v", st)
	}
}

// TestAgentLongPollWakesOnPublish runs a streaming agent against a
// quiet server and publishes mid-park: the agent must apply and
// heartbeat the new version at publish latency, far sooner than its
// (deliberately huge) poll interval.
func TestAgentLongPollWakesOnPublish(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("st", 1)...)
	id := winenv.DefaultIdentity()
	id.ComputerName = "AGENT-PC-ST"
	a := NewAgent(AgentConfig{
		BaseURL:  ts.URL,
		Env:      winenv.New(id),
		Seed:     42,
		LongPoll: 10 * time.Second,
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- a.Run(ctx, time.Hour) }()

	// Let the agent take the initial delta and park, then publish.
	time.Sleep(50 * time.Millisecond)
	srv.Registry().Publish(testVaccines("st2", 1)...)
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := srv.Registry().Fleet(time.Minute, time.Now())
		if st.ActiveHosts == 1 && st.MinVersion == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streaming agent never heartbeat version 2: fleet %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("streaming agent did not stop on cancel")
	}
}

// TestAgentBackoffBounded pins the backoff envelope: every retry delay
// stays within [BaseBackoff/2, MaxBackoff], including attempts whose
// exponential base has already saturated at the cap. Before the
// post-jitter clamp, a saturated attempt could draw MaxBackoff/2 +
// jitter(MaxBackoff) — up to 1.5× the configured ceiling.
func TestAgentBackoffBounded(t *testing.T) {
	cases := []struct {
		name string
		base time.Duration
		max  time.Duration
	}{
		{"defaults", DefaultBaseBackoff, DefaultMaxBackoff},
		{"tight-cap", 25 * time.Millisecond, 40 * time.Millisecond},
		{"cap-equals-base", 10 * time.Millisecond, 10 * time.Millisecond},
		{"wide", time.Millisecond, time.Minute},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := NewAgent(AgentConfig{
				Host:        "BACKOFF-PC",
				Seed:        99,
				BaseBackoff: tc.base,
				MaxBackoff:  tc.max,
			})
			// Attempt numbers past saturation and past shift overflow.
			for _, n := range []int{0, 1, 2, 3, 8, 16, 40, 63} {
				for draw := 0; draw < 200; draw++ {
					d := a.backoffDelay(n)
					if d > tc.max {
						t.Fatalf("attempt %d: delay %v exceeds MaxBackoff %v", n, d, tc.max)
					}
					if d < tc.base/2 {
						t.Fatalf("attempt %d: delay %v below BaseBackoff/2 %v", n, d, tc.base/2)
					}
				}
			}
		})
	}
}

// garbageFront answers every pack GET with 200 and an undecodable
// body, under whichever Content-Type the request negotiated.
type garbageFront struct{ binary bool }

func (g *garbageFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.binary {
		w.Header().Set("Content-Type", ContentTypeDelta)
		w.Write([]byte("AVD1\x00\x01")) // truncated frame
		return
	}
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.Write([]byte(`{"Version": 99, "Vacc`)) // torn JSON body
}

// TestAgentMalformedDeltaIsRetryable pins the decode-hardening
// contract for both encodings: a 200 with a malformed body must behave
// like a failed round trip — counted in DecodeErrors, retried with
// backoff, cursor untouched — never as a cursor advance. (A torn JSON
// body carrying a parsed-before-the-tear Version used to be the risk.)
func TestAgentMalformedDeltaIsRetryable(t *testing.T) {
	for _, tc := range []struct {
		name   string
		binary bool
	}{{"json", false}, {"binary", true}} {
		t.Run(tc.name, func(t *testing.T) {
			ts := httptest.NewServer(&garbageFront{binary: tc.binary})
			defer ts.Close()
			a := newTestAgent(ts, "AGENT-PC-GB")
			a.cfg.Binary = tc.binary
			if _, err := a.SyncOnce(context.Background()); err == nil {
				t.Fatal("sync succeeded on a malformed body")
			}
			st := a.Stats()
			if st.DecodeErrors != DefaultMaxRetries+1 {
				t.Fatalf("DecodeErrors %d, want %d (initial + each retry)",
					st.DecodeErrors, DefaultMaxRetries+1)
			}
			if st.Retries != DefaultMaxRetries {
				t.Fatalf("retries %d, want %d", st.Retries, DefaultMaxRetries)
			}
			if a.Version() != 0 || st.Deltas != 0 {
				t.Fatalf("malformed body moved the cursor: version %d, stats %+v", a.Version(), st)
			}
		})
	}
}

// wrongCursorFront serves a real delta but for a cursor nobody asked
// about — the shape of a misbehaving cache or relay.
type wrongCursorFront struct{ srv *Server }

func (f *wrongCursorFront) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path == PathPacks {
		q := r.URL.Query()
		q.Set("since", "7")
		r.URL.RawQuery = q.Encode()
	}
	f.srv.Handler().ServeHTTP(w, r)
}

func TestAgentRejectsDeltaForWrongCursor(t *testing.T) {
	srv := NewServer(NewRegistry(0))
	srv.Registry().Publish(testVaccines("wc", 9)...)
	ts := httptest.NewServer(&wrongCursorFront{srv: srv})
	defer ts.Close()
	a := newTestAgent(ts, "AGENT-PC-WC")
	if _, err := a.SyncOnce(context.Background()); err == nil {
		t.Fatal("agent accepted a delta answering a different cursor")
	}
	if st := a.Stats(); st.DecodeErrors == 0 || a.Version() != 0 {
		t.Fatalf("wrong-cursor delta not rejected: version %d, stats %+v", a.Version(), st)
	}
}

// TestAgentBinarySyncEndToEnd runs the full agent loop — fetch,
// install through the deploy daemon, heartbeat — over the binary
// codec against a real server, including the incremental delta and the
// 304 steady state.
func TestAgentBinarySyncEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(analyzedPack(t)...)
	id := winenv.DefaultIdentity()
	id.ComputerName = "AGENT-PC-BIN"
	a := NewAgent(AgentConfig{
		BaseURL: ts.URL,
		Env:     winenv.New(id),
		Seed:    42,
		Binary:  true,
	})
	ctx := context.Background()
	applied, err := a.SyncOnce(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if applied == 0 || a.Version() != srv.Registry().Latest() {
		t.Fatalf("binary sync applied %d at version %d (latest %d)",
			applied, a.Version(), srv.Registry().Latest())
	}
	srv.Registry().Publish(testVaccines("bin2", 3)...)
	if applied, err = a.SyncOnce(ctx); err != nil || applied != 3 {
		t.Fatalf("binary incremental sync applied %d, %v", applied, err)
	}
	if _, err := a.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Deltas != 2 || st.NotModified != 1 || st.DecodeErrors != 0 {
		t.Fatalf("binary agent stats %+v", st)
	}
	if snap := srv.MetricsSnapshot(); snap.BinaryDeltas != 2 {
		t.Fatalf("server BinaryDeltas %d, want 2", snap.BinaryDeltas)
	}
}
