package fleet

import (
	"context"
	"testing"
	"time"
)

// TestSimulateControlPlanePollVsLongPoll runs the distribution race at
// test scale and pins the streaming claim: long-poll converges faster
// than interval polling — publish latency instead of poll latency —
// and its per-host sync quantiles sit below the poller's.
func TestSimulateControlPlanePollVsLongPoll(t *testing.T) {
	ctx := context.Background()
	base := ControlPlaneConfig{
		Hosts:           64,
		Waves:           2,
		PollInterval:    250 * time.Millisecond,
		Seed:            7,
		ConvergeTimeout: 30 * time.Second,
	}
	poll, err := SimulateControlPlane(ctx, base)
	if err != nil {
		t.Fatalf("poll mode: %v", err)
	}
	lp := base
	lp.LongPoll = 10 * time.Second
	stream, err := SimulateControlPlane(ctx, lp)
	if err != nil {
		t.Fatalf("long-poll mode: %v", err)
	}

	want := uint64(base.Hosts * base.Waves)
	for _, r := range []*ControlPlaneResult{poll, stream} {
		if len(r.WaveConverge) != base.Waves {
			t.Fatalf("%d waves measured, want %d", len(r.WaveConverge), base.Waves)
		}
		// The convergence barrier between waves makes deltas countable:
		// every host fetches every wave's delta exactly once, plus (in
		// poll mode) at most one explicit empty delta per host from a
		// poll that raced ahead of the first publish.
		if r.Deltas < want || r.Deltas > want+uint64(base.Hosts) {
			t.Fatalf("longpoll=%v: %d deltas, want %d..%d", r.LongPoll, r.Deltas, want, want+uint64(base.Hosts))
		}
		if r.Requests < r.Deltas || r.BytesOnWire == 0 {
			t.Fatalf("longpoll=%v: implausible counters %+v", r.LongPoll, r)
		}
	}
	if stream.Deltas != want {
		t.Fatalf("streaming fleet served %d deltas, want exactly %d", stream.Deltas, want)
	}
	if !stream.LongPoll || poll.LongPoll {
		t.Fatalf("mode flags wrong: poll %v stream %v", poll.LongPoll, stream.LongPoll)
	}
	if stream.Server.LongPolls == 0 {
		t.Fatal("streaming fleet never registered a long poll on the server")
	}
	if stream.ConvergeTime >= poll.ConvergeTime {
		t.Fatalf("long-poll convergence %v not below polling %v",
			stream.ConvergeTime, poll.ConvergeTime)
	}
	if stream.SyncP99 > poll.SyncP99 {
		t.Fatalf("long-poll p99 %v above polling p99 %v", stream.SyncP99, poll.SyncP99)
	}
}

// TestSimulateControlPlaneCancel ensures a cancelled context tears the
// fleet down instead of wedging on the convergence barrier.
func TestSimulateControlPlaneCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateControlPlane(ctx, ControlPlaneConfig{
		Hosts:           8,
		Waves:           1,
		PollInterval:    50 * time.Millisecond,
		ConvergeTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("cancelled simulation reported convergence")
	}
}

// TestSimulateControlPlaneRelayTier runs the two-tier topology at test
// scale and pins the fan-out claim: every agent converges through its
// relay, the origin's request count scales with the relay count (not
// the agent count), and the binary codec puts fewer bytes on the wire
// than JSON for the same traffic.
func TestSimulateControlPlaneRelayTier(t *testing.T) {
	ctx := context.Background()
	base := ControlPlaneConfig{
		Hosts:           96,
		Relays:          4,
		Waves:           2,
		VaccinesPerWave: 8,
		LongPoll:        10 * time.Second,
		Seed:            11,
		ConvergeTimeout: 30 * time.Second,
	}
	jsonRes, err := SimulateControlPlane(ctx, base)
	if err != nil {
		t.Fatalf("relay/json: %v", err)
	}
	binCfg := base
	binCfg.Binary = true
	binRes, err := SimulateControlPlane(ctx, binCfg)
	if err != nil {
		t.Fatalf("relay/binary: %v", err)
	}

	want := uint64(base.Hosts * base.Waves)
	for _, r := range []*ControlPlaneResult{jsonRes, binRes} {
		if r.Relays != base.Relays || r.Deltas != want || r.DecodeErrors != 0 {
			t.Fatalf("binary=%v: relay fleet result %+v", r.Binary, r)
		}
		// The origin serves the relays, not the fleet: its request count
		// must be in the relays' order of magnitude. Each relay costs a
		// handful of round trips (one initial delta, one per wave, plus
		// expired parks), nowhere near 2 waves × 96 agents.
		if r.OriginRequests >= uint64(base.Hosts) {
			t.Fatalf("binary=%v: origin served %d requests for %d relays — scaling with agents, not relays",
				r.Binary, r.OriginRequests, base.Relays)
		}
		if r.EdgeRequests < want {
			t.Fatalf("binary=%v: edge served only %d requests for %d agent deltas",
				r.Binary, r.EdgeRequests, want)
		}
	}
	if binRes.BytesOnWire >= jsonRes.BytesOnWire {
		t.Fatalf("binary codec put MORE bytes on the wire: %d vs JSON %d",
			binRes.BytesOnWire, jsonRes.BytesOnWire)
	}
}

// TestSimulateControlPlaneBinaryHalvesWire pins the ISSUE acceptance
// shape at test scale: on the direct (no-relay) long-poll study with
// 8-vaccine waves, the binary codec at least halves bytes-on-wire.
func TestSimulateControlPlaneBinaryHalvesWire(t *testing.T) {
	ctx := context.Background()
	base := ControlPlaneConfig{
		Hosts:           64,
		Waves:           2,
		VaccinesPerWave: 8,
		LongPoll:        10 * time.Second,
		Seed:            23,
		ConvergeTimeout: 30 * time.Second,
	}
	jsonRes, err := SimulateControlPlane(ctx, base)
	if err != nil {
		t.Fatal(err)
	}
	binCfg := base
	binCfg.Binary = true
	binRes, err := SimulateControlPlane(ctx, binCfg)
	if err != nil {
		t.Fatal(err)
	}
	if binRes.Server.BinaryDeltas == 0 {
		t.Fatal("binary study never served a binary delta")
	}
	if binRes.BytesOnWire*2 > jsonRes.BytesOnWire {
		t.Fatalf("binary %d bytes vs JSON %d: less than 2x reduction",
			binRes.BytesOnWire, jsonRes.BytesOnWire)
	}
}
