package fleet

import (
	"context"
	"testing"
	"time"
)

// TestSimulateControlPlanePollVsLongPoll runs the distribution race at
// test scale and pins the streaming claim: long-poll converges faster
// than interval polling — publish latency instead of poll latency —
// and its per-host sync quantiles sit below the poller's.
func TestSimulateControlPlanePollVsLongPoll(t *testing.T) {
	ctx := context.Background()
	base := ControlPlaneConfig{
		Hosts:           64,
		Waves:           2,
		PollInterval:    250 * time.Millisecond,
		Seed:            7,
		ConvergeTimeout: 30 * time.Second,
	}
	poll, err := SimulateControlPlane(ctx, base)
	if err != nil {
		t.Fatalf("poll mode: %v", err)
	}
	lp := base
	lp.LongPoll = 10 * time.Second
	stream, err := SimulateControlPlane(ctx, lp)
	if err != nil {
		t.Fatalf("long-poll mode: %v", err)
	}

	want := uint64(base.Hosts * base.Waves)
	for _, r := range []*ControlPlaneResult{poll, stream} {
		if len(r.WaveConverge) != base.Waves {
			t.Fatalf("%d waves measured, want %d", len(r.WaveConverge), base.Waves)
		}
		// The convergence barrier between waves makes deltas countable:
		// every host fetches every wave's delta exactly once, plus (in
		// poll mode) at most one explicit empty delta per host from a
		// poll that raced ahead of the first publish.
		if r.Deltas < want || r.Deltas > want+uint64(base.Hosts) {
			t.Fatalf("longpoll=%v: %d deltas, want %d..%d", r.LongPoll, r.Deltas, want, want+uint64(base.Hosts))
		}
		if r.Requests < r.Deltas || r.BytesOnWire == 0 {
			t.Fatalf("longpoll=%v: implausible counters %+v", r.LongPoll, r)
		}
	}
	if stream.Deltas != want {
		t.Fatalf("streaming fleet served %d deltas, want exactly %d", stream.Deltas, want)
	}
	if !stream.LongPoll || poll.LongPoll {
		t.Fatalf("mode flags wrong: poll %v stream %v", poll.LongPoll, stream.LongPoll)
	}
	if stream.Server.LongPolls == 0 {
		t.Fatal("streaming fleet never registered a long poll on the server")
	}
	if stream.ConvergeTime >= poll.ConvergeTime {
		t.Fatalf("long-poll convergence %v not below polling %v",
			stream.ConvergeTime, poll.ConvergeTime)
	}
	if stream.SyncP99 > poll.SyncP99 {
		t.Fatalf("long-poll p99 %v above polling p99 %v", stream.SyncP99, poll.SyncP99)
	}
}

// TestSimulateControlPlaneCancel ensures a cancelled context tears the
// fleet down instead of wedging on the convergence barrier.
func TestSimulateControlPlaneCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := SimulateControlPlane(ctx, ControlPlaneConfig{
		Hosts:           8,
		Waves:           1,
		PollInterval:    50 * time.Millisecond,
		ConvergeTimeout: 300 * time.Millisecond,
	})
	if err == nil {
		t.Fatal("cancelled simulation reported convergence")
	}
}
