package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"

	"autovac/internal/deploy"
	"autovac/internal/winenv"
)

// Agent defaults. The retry budget is deliberately deeper than any
// periodic fault a lossy path is likely to inject: with the server's
// encode cache answering a woken herd in near-lockstep, a budget equal
// to a fault period can resonate with it (every attempt of one agent
// landing on the faulting slot) and burn out on a fault rate the
// backoff would otherwise absorb.
const (
	DefaultMaxRetries  = 6
	DefaultBaseBackoff = 25 * time.Millisecond
	DefaultMaxBackoff  = 2 * time.Second
)

// AgentConfig configures one host agent.
type AgentConfig struct {
	// BaseURL is the vacserver root, e.g. "http://10.0.0.1:8377".
	BaseURL string
	// Host is this host's identifier in check-ins; defaults to the
	// environment's computer name.
	Host string
	// Env is the host environment vaccines are installed into.
	Env *winenv.Env
	// Seed feeds slice replay (deploy.ResolveIdentifier) and the
	// backoff jitter.
	Seed uint64
	// Client is the HTTP client (default http.DefaultClient).
	Client *http.Client
	// Binary, when set, negotiates the binary delta codec (Accept:
	// application/x-autovac-delta). The server's Content-Type decides
	// the decode on each response, so a JSON-only server (or a JSON
	// intermediary cache) degrades transparently to the JSON protocol.
	Binary bool
	// MaxRetries bounds the retries of one failed sync round trip.
	MaxRetries int
	// BaseBackoff and MaxBackoff shape the jittered exponential
	// backoff between retries.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// LongPoll, when > 0, switches pack fetches to streaming mode: the
	// request parks on the server (&wait=) for up to this long and
	// returns the instant a publish lands, so deltas arrive at publish
	// latency instead of poll latency. Run then re-polls immediately
	// after each cycle; the poll interval only paces plain polling.
	LongPoll time.Duration
}

// AgentStats counts one agent's sync activity. Read it from the
// agent's own goroutine (Agent is not safe for concurrent use).
type AgentStats struct {
	// Syncs counts completed SyncOnce calls.
	Syncs int
	// Deltas counts 200 pack responses; NotModified counts 304s.
	Deltas      int
	NotModified int
	// Retries counts failed round trips that were retried.
	Retries int
	// DecodeErrors counts 200 pack responses whose body failed to
	// decode or validate (truncated frame, wrong encoding, garbage from
	// an intermediary). Each is a retryable sync error: the agent backs
	// off and re-fetches rather than poisoning its cursor.
	DecodeErrors int
	// Applied, Skipped, and Failed total the daemon install results.
	Applied int
	Skipped int
	Failed  int
	// Resyncs counts Reset deltas adopted (the server's version line
	// restarted below ours).
	Resyncs int
	// Checkins counts delivered heartbeats.
	Checkins int
}

// Agent is a host-side fleet client: it polls the server for vaccine
// deltas with jittered exponential backoff, installs them through the
// host's deploy daemon (which resolves identifiers per host, replaying
// slices for algorithm-deterministic vaccines), and heartbeats the
// applied version back. An Agent is single-goroutine; run many agents
// for many hosts.
//
// Concurrency contract: every mutable field — version, etag, stats,
// and in particular rng — is owned by the goroutine driving SyncOnce
// or Run. The retry backoff (after a failed fetch or checkin) and the
// poll-loop jitter both draw from rng, but always from that one
// goroutine: checkins are performed inline in SyncOnce, never from a
// separate goroutine, so the rng is never reached concurrently.
// TestAgentRNGOwnership pins this under -race.
type Agent struct {
	cfg    AgentConfig
	daemon *deploy.Daemon
	// version and etag track the last applied delta.
	version uint64
	etag    string
	// rng is owned by this agent exclusively (never shared between
	// agents, never a package-level source): it feeds retry backoff
	// and Run's poll jitter from the agent's single goroutine.
	rng   *rand.Rand
	stats AgentStats
}

// NewAgent creates an agent bound to a host environment.
func NewAgent(cfg AgentConfig) *Agent {
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.Host == "" && cfg.Env != nil {
		cfg.Host = cfg.Env.Identity().ComputerName
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	return &Agent{
		cfg:    cfg,
		daemon: deploy.NewDaemon(cfg.Env, cfg.Seed),
		rng:    rand.New(rand.NewSource(int64(cfg.Seed) ^ int64(fnv32a(cfg.Host)))),
	}
}

// Version returns the latest registry version the agent has applied.
func (a *Agent) Version() uint64 { return a.version }

// Stats returns the agent's sync counters.
func (a *Agent) Stats() AgentStats { return a.stats }

// Daemon returns the host's vaccine daemon.
func (a *Agent) Daemon() *deploy.Daemon { return a.daemon }

// Env returns the host environment.
func (a *Agent) Env() *winenv.Env { return a.cfg.Env }

// Host returns the agent's check-in identifier.
func (a *Agent) Host() string { return a.cfg.Host }

// minJitterInterval is the floor every jittered delay is clamped to:
// below it rng.Int63n would be fed a non-positive bound (a panic for
// interval <= 0) and the poll loop would spin hot.
const minJitterInterval = time.Millisecond

// jitteredInterval returns d with ±50% jitter (uniform in [d/2, 3d/2)),
// clamping d to minJitterInterval first. It is the one shared jitter
// helper: retry backoff and the poll loop both draw through it, so
// neither can panic on a degenerate duration.
func jitteredInterval(rng *rand.Rand, d time.Duration) time.Duration {
	if d < minJitterInterval {
		d = minJitterInterval
	}
	return d/2 + time.Duration(rng.Int63n(int64(d)))
}

// backoffDelay computes the sleep before retry attempt n (0-based):
// exponential growth with ±50% jitter, clamped to MaxBackoff. The
// clamp applies to the jittered value, not just the exponential base —
// otherwise an attempt at the cap could draw up to 1.5×MaxBackoff.
func (a *Agent) backoffDelay(n int) time.Duration {
	d := a.cfg.BaseBackoff << uint(n)
	if d > a.cfg.MaxBackoff || d <= 0 {
		d = a.cfg.MaxBackoff
	}
	d = jitteredInterval(a.rng, d)
	if d > a.cfg.MaxBackoff {
		d = a.cfg.MaxBackoff
	}
	return d
}

// backoff sleeps before retry attempt n (0-based), honouring context
// cancellation.
func (a *Agent) backoff(ctx context.Context, n int) error {
	t := time.NewTimer(a.backoffDelay(n))
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// retry runs op with bounded, jittered-exponential-backoff retries.
func (a *Agent) retry(ctx context.Context, op func() error) error {
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(); err == nil {
			return nil
		}
		if attempt >= a.cfg.MaxRetries {
			return err
		}
		a.stats.Retries++
		if berr := a.backoff(ctx, attempt); berr != nil {
			return berr
		}
	}
}

// fetch performs one GET /v1/packs round trip. A nil delta with nil
// error means 304 Not Modified (for a long-poll fetch: the wait
// expired with nothing published).
func (a *Agent) fetch(ctx context.Context) (*DeltaResponse, error) {
	url := fmt.Sprintf("%s%s?since=%d", a.cfg.BaseURL, PathPacks, a.version)
	if a.cfg.LongPoll > 0 {
		url += "&wait=" + a.cfg.LongPoll.String()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	if a.etag != "" {
		req.Header.Set("If-None-Match", a.etag)
	}
	if a.cfg.Binary {
		req.Header.Set("Accept", ContentTypeDelta)
	}
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		return nil, nil
	case http.StatusOK:
		delta, err := a.decodeDelta(resp)
		if err != nil {
			a.stats.DecodeErrors++
			return nil, fmt.Errorf("fleet: agent %s: decoding delta: %w", a.cfg.Host, err)
		}
		return delta, nil
	default:
		// Carry the first line of the error body: "500" alone cannot
		// distinguish an origin encode failure from an injected fault or
		// a relay refusing an upstream.
		snippet, _ := io.ReadAll(io.LimitReader(resp.Body, 120))
		return nil, fmt.Errorf("fleet: agent %s: packs: %s (%s)",
			a.cfg.Host, resp.Status, strings.TrimSpace(string(snippet)))
	}
}

// decodeDelta decodes one 200 pack body under the encoding the server
// declared, then sanity-checks the frame against the request. Any
// failure — truncated binary frame, JSON garbage, a delta answering a
// different cursor — is a retryable sync error: the caller counts it
// and backs off, and the agent's cursor and ETag are untouched, so the
// next attempt re-fetches from known-good state.
func (a *Agent) decodeDelta(resp *http.Response) (*DeltaResponse, error) {
	var delta *DeltaResponse
	if isBinaryDelta(resp.Header.Get("Content-Type")) {
		body, err := io.ReadAll(io.LimitReader(resp.Body, maxDeltaPayload))
		if err != nil {
			return nil, err
		}
		if delta, err = DecodeDeltaBinary(body); err != nil {
			return nil, err
		}
	} else {
		delta = new(DeltaResponse)
		if err := json.NewDecoder(resp.Body).Decode(delta); err != nil {
			return nil, err
		}
	}
	return delta, a.validateDelta(delta)
}

// validateDelta rejects structurally-decoded frames that cannot be the
// answer to the request we made: a missing content digest, or a delta
// cut after a cursor we never sent (a cache or relay serving someone
// else's response). Reset deltas are exempt from the cursor check —
// they rebase the agent by design.
func (a *Agent) validateDelta(d *DeltaResponse) error {
	if d.ETag == "" {
		return fmt.Errorf("delta missing ETag")
	}
	if !d.Reset && d.Since != a.version {
		return fmt.Errorf("delta for since=%d, requested %d", d.Since, a.version)
	}
	return nil
}

// checkin delivers one heartbeat.
func (a *Agent) checkin(ctx context.Context) error {
	inspected, intercepted := a.daemon.Stats()
	body, err := json.Marshal(CheckinRequest{
		Host:        a.cfg.Host,
		Version:     a.version,
		Installed:   a.daemon.VaccineCount(),
		Inspected:   inspected,
		Intercepted: intercepted,
	})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		a.cfg.BaseURL+PathCheckin, strings.NewReader(string(body)))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := a.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: agent %s: checkin: %s", a.cfg.Host, resp.Status)
	}
	a.stats.Checkins++
	return nil
}

// SyncOnce performs one sync cycle: fetch the delta since the applied
// version (with retries), install any new vaccines through the host
// daemon, and heartbeat the result. It returns the number of vaccines
// newly installed.
func (a *Agent) SyncOnce(ctx context.Context) (int, error) {
	var delta *DeltaResponse
	err := a.retry(ctx, func() error {
		d, err := a.fetch(ctx)
		if err != nil {
			return err
		}
		delta = d
		return nil
	})
	if err != nil {
		return 0, err
	}
	applied := 0
	if delta == nil {
		a.stats.NotModified++
	} else {
		a.stats.Deltas++
		if delta.Reset || delta.Version < a.version {
			// The server's version line restarted below ours: rebase on
			// it. Installed vaccines stay installed (immunization is
			// additive); only the sync cursor moves back.
			a.stats.Resyncs++
		}
		installed, skipped, failed := a.daemon.InstallPack(delta.Vaccines)
		a.stats.Applied += installed
		a.stats.Skipped += skipped
		a.stats.Failed += failed
		applied = installed
		a.version = delta.Version
		a.etag = `"` + delta.ETag + `"`
	}
	a.stats.Syncs++
	if err := a.retry(ctx, func() error { return a.checkin(ctx) }); err != nil {
		return applied, err
	}
	return applied, nil
}

// Run polls until the context is cancelled, sleeping interval (with
// ±50% jitter, floored at minJitterInterval so a zero or negative
// interval cannot panic the jitter draw) between sync cycles. With
// LongPoll configured the park happens server-side inside SyncOnce, so
// only a token jittered delay separates cycles — deltas then arrive at
// publish latency. Sync errors are counted and the loop continues; the
// only exit is context cancellation, whose cause is returned as nil
// for a clean ctx.Done.
func (a *Agent) Run(ctx context.Context, interval time.Duration) error {
	for {
		if _, err := a.SyncOnce(ctx); err != nil && ctx.Err() != nil {
			return nil
		}
		if a.cfg.LongPoll > 0 {
			interval = minJitterInterval
		}
		t := time.NewTimer(jitteredInterval(a.rng, interval))
		select {
		case <-ctx.Done():
			t.Stop()
			return nil
		case <-t.C:
		}
	}
}
