// Package fleet is the vaccine distribution subsystem: a sharded
// in-memory pack registry fronted by an HTTP/JSON sync protocol, and
// the concurrent host agents that poll it. It closes the gap between
// Phase-II vaccine generation and the paper's Phase-III assumption
// (§V) that vaccines somehow reach every end host: an analysis site
// publishes packs into a Registry served by cmd/vacserver, and a
// fleet.Agent on each host pulls deltas, installs them through the
// deploy daemon, and heartbeats its applied version back.
//
// Protocol (all JSON over HTTP):
//
//	GET  /v1/packs?since=<version>  -> DeltaResponse, ETag header
//	     If-None-Match / up-to-date -> 304 Not Modified
//	     &wait=<duration>           -> long-poll: park until a publish
//	                                   lands or the wait expires (304)
//	     since ahead of registry    -> full DeltaResponse, Reset=true
//	POST /v1/checkin                -> CheckinResponse
//	GET  /v1/metrics                -> MetricsSnapshot
//
// Versions are a single monotonic publish counter: every accepted
// vaccine publish gets the next version, so "give me everything after
// version N" is an exact delta and agents converge by chasing the
// latest version. ETags are vaccine.Pack content digests, so an agent
// that already holds the content skips the body even when its cached
// version counter is stale.
package fleet

import "autovac/internal/vaccine"

// HTTP paths of the sync protocol.
const (
	PathPacks   = "/v1/packs"
	PathCheckin = "/v1/checkin"
	PathMetrics = "/v1/metrics"
)

// DeltaResponse is the body of GET /v1/packs: every vaccine published
// after the requested version.
type DeltaResponse struct {
	// Since echoes the ?since= the delta starts after (0 = full pack).
	Since uint64
	// Version is the registry's latest version at serve time; the
	// agent's next poll passes it back as ?since=.
	Version uint64
	// Complete reports whether this is the full registry content
	// (Since == 0), as opposed to an incremental delta.
	Complete bool
	// Reset reports that the requested since was AHEAD of the registry
	// — typically an agent that outlived a registry restarted without
	// its write-ahead log. The payload is the full registry content and
	// the client must adopt Version even though it is lower than the
	// version it asked after.
	Reset bool `json:",omitempty"`
	// ETag is the vaccine.Pack digest of the payload, also sent as the
	// HTTP ETag header.
	ETag string
	// Generator identifies the publishing pipeline.
	Generator string `json:",omitempty"`
	// Vaccines is the delta payload, ordered by ascending version.
	Vaccines []vaccine.Vaccine
	// Versions holds each vaccine's publish version, aligned with
	// Vaccines. It rides only in the binary codec (never in JSON, so
	// the JSON wire format is unchanged): relays need it to mirror the
	// origin's version line exactly, ordinary agents ignore it.
	Versions []uint64 `json:"-"`
}

// CheckinRequest is the body of POST /v1/checkin: a host heartbeat
// reporting the applied registry version and interception activity.
type CheckinRequest struct {
	// Host is the reporting host's stable identifier.
	Host string
	// Version is the latest registry version the host has applied.
	Version uint64
	// Installed counts vaccines installed in the host's daemon.
	Installed int
	// Inspected and Intercepted are the daemon hook counters.
	Inspected   int
	Intercepted int
}

// CheckinResponse acknowledges a heartbeat.
type CheckinResponse struct {
	// Version is the registry's latest version: a host that sees its
	// applied version behind this knows to sync without waiting for
	// the next poll interval.
	Version uint64
}
