package fleet

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"autovac/internal/vaccine"
)

// DefaultActiveWindow is how recently a host must have checked in to
// count as active in metrics and fleet status.
const DefaultActiveWindow = 2 * time.Minute

// checkinBodyLimit bounds heartbeat bodies; a CheckinRequest is a few
// hundred bytes.
const checkinBodyLimit = 1 << 16

// MaxLongPollWait caps the wait= parameter on GET /v1/packs: however
// long the client asks to park, the server answers (with a 304 if
// nothing was published) within this bound, so parked requests cannot
// outlive proxies' idle timeouts or pile up across agent restarts.
const MaxLongPollWait = 60 * time.Second

// Server serves the sync protocol for one registry.
type Server struct {
	reg     *Registry
	metrics *Metrics
	mux     *http.ServeMux
	// cache memoises encoded delta bodies per (since, version,
	// encoding), so a publish waking N parked long-pollers at the same
	// cursor costs one shard scan and one encode, not N.
	cache *deltaCache
	// ActiveWindow is the heartbeat freshness window for fleet
	// status; set before serving (default DefaultActiveWindow).
	ActiveWindow time.Duration
	// now is the clock, injectable for tests.
	now func() time.Time
}

// NewServer creates a sync server over a registry.
func NewServer(reg *Registry) *Server {
	s := &Server{
		reg:          reg,
		metrics:      &Metrics{},
		mux:          http.NewServeMux(),
		cache:        newDeltaCache(),
		ActiveWindow: DefaultActiveWindow,
		now:          time.Now,
	}
	s.mux.HandleFunc(PathPacks, s.handlePacks)
	s.mux.HandleFunc(PathCheckin, s.handleCheckin)
	s.mux.HandleFunc(PathMetrics, s.handleMetrics)
	return s
}

// Handler returns the instrumented HTTP handler.
func (s *Server) Handler() http.Handler { return instrument(s.metrics, s.mux) }

// Registry returns the served registry.
func (s *Server) Registry() *Registry { return s.reg }

// MetricsSnapshot captures the counters plus registry and fleet
// status — the same content GET /v1/metrics serves.
func (s *Server) MetricsSnapshot() MetricsSnapshot {
	snap := s.metrics.snapshot()
	snap.Version = s.reg.Latest()
	snap.Vaccines = s.reg.Count()
	fl := s.reg.Fleet(s.ActiveWindow, s.now())
	snap.ActiveHosts = fl.ActiveHosts
	snap.Converged = fl.Converged
	snap.MinVersion = fl.MinVersion
	if st, ok := s.reg.Analysis(); ok {
		snap.Analysis = &st
	}
	return snap
}

// statusWriter counts the status and body bytes of one response.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(b)
	w.bytes += n
	return n, err
}

// instrument wraps a handler with the request/latency/bytes counters.
func instrument(m *Metrics, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		m.requests.Add(1)
		m.bytesOut.Add(uint64(sw.bytes))
		if sw.status >= 400 {
			m.errors.Add(1)
		}
		m.latency.observe(time.Since(start))
	})
}

// handlePacks serves GET /v1/packs?since=<version>[&wait=<duration>]:
// the delta of vaccines published after <version>, or 304 when the
// client is already current (by version or by ETag).
//
// With wait > 0 an up-to-date request long-polls: it parks on the
// registry's publish broadcaster and the delta fires the instant a
// publish lands, or a 304 when the wait (capped at MaxLongPollWait)
// expires. Plain polls (no wait) keep the exact ETag/304 behaviour.
//
// A since AHEAD of the registry — an agent that outlived a registry
// restarted without its WAL — is answered with the full content marked
// Reset, so the agent rebases on the live version line instead of
// polling 304s forever against versions that no longer exist.
func (s *Server) handlePacks(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	since := uint64(0)
	if raw := r.URL.Query().Get("since"); raw != "" {
		v, err := strconv.ParseUint(raw, 10, 64)
		if err != nil {
			http.Error(w, "bad since", http.StatusBadRequest)
			return
		}
		since = v
	}
	wait := time.Duration(0)
	if raw := r.URL.Query().Get("wait"); raw != "" {
		d, err := time.ParseDuration(raw)
		if err != nil || d < 0 {
			http.Error(w, "bad wait", http.StatusBadRequest)
			return
		}
		if d > MaxLongPollWait {
			d = MaxLongPollWait
		}
		wait = d
	}

	latest := s.reg.Latest()
	if since > latest {
		delta := s.reg.Delta(0)
		delta.Reset = true
		s.metrics.resyncs.Add(1)
		s.writeDelta(w, r, delta)
		return
	}
	if wait > 0 && since == latest {
		s.metrics.longPolls.Add(1)
		latest = s.waitForPublish(r.Context(), since, wait)
	}
	if since == latest && (latest > 0 || wait > 0) {
		// Nothing published past the client's version: cheap 304
		// without scanning the shards. The ETag is the digest of the
		// empty delta this request would otherwise carry — the same
		// vocabulary as full responses, so intermediary caches see one
		// validator form for the resource. (A since=0 plain poll of an
		// empty registry still falls through to serve the explicit
		// empty Complete delta.)
		p := vaccine.Pack{Generator: s.reg.Generator()}
		w.Header().Set("ETag", `"`+p.Digest()+`"`)
		w.WriteHeader(http.StatusNotModified)
		s.metrics.notModified.Add(1)
		return
	}
	s.serveCachedDelta(w, r, since)
}

// serveCachedDelta answers one pack request through the encode cache:
// the response bytes for (since, version, encoding) are computed once
// and every further request at the same cursor — the long-poll
// thundering herd after a publish — is served the cached body.
func (s *Server) serveCachedDelta(w http.ResponseWriter, r *http.Request, since uint64) {
	binary := acceptsBinaryDelta(r.Header.Get("Accept"))
	e, hit, err := s.cache.get(s.reg, since, binary)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if hit {
		s.metrics.encodeHits.Add(1)
	}
	s.writeEncoded(w, r, e)
}

// waitForPublish parks until a version past since is published, the
// wait expires, or the client goes away, returning the latest version
// on exit. The broadcaster channel is grabbed before re-reading the
// version, so a publish landing in between cannot be missed.
func (s *Server) waitForPublish(ctx context.Context, since uint64, wait time.Duration) uint64 {
	timer := time.NewTimer(wait)
	defer timer.Stop()
	for {
		ch := s.reg.notify.wait()
		if latest := s.reg.Latest(); latest > since {
			return latest
		}
		select {
		case <-ch:
		case <-timer.C:
			return s.reg.Latest()
		case <-ctx.Done():
			return s.reg.Latest()
		}
	}
}

// writeDelta encodes and emits one DeltaResponse under the client's
// negotiated encoding, bypassing the cache (the Reset resync path —
// rare, per-stray-client responses that would only pollute it).
func (s *Server) writeDelta(w http.ResponseWriter, r *http.Request, delta *DeltaResponse) {
	body, contentType, err := encodeDelta(delta, acceptsBinaryDelta(r.Header.Get("Accept")))
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	s.writeEncoded(w, r, &cachedDelta{
		etag: `"` + delta.ETag + `"`, contentType: contentType, body: body,
	})
}

// writeEncoded emits one pre-encoded delta body with its ETag,
// honouring If-None-Match.
func (s *Server) writeEncoded(w http.ResponseWriter, r *http.Request, e *cachedDelta) {
	w.Header().Set("ETag", e.etag)
	if r.Header.Get("If-None-Match") == e.etag {
		w.WriteHeader(http.StatusNotModified)
		s.metrics.notModified.Add(1)
		return
	}
	w.Header().Set("Content-Type", e.contentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(e.body)))
	w.Write(e.body)
	s.metrics.deltas.Add(1)
	if e.contentType == ContentTypeDelta {
		s.metrics.binaryDeltas.Add(1)
	}
}

// handleCheckin serves POST /v1/checkin heartbeats.
func (s *Server) handleCheckin(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req CheckinRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, checkinBodyLimit))
	if err := dec.Decode(&req); err != nil {
		http.Error(w, "bad checkin body", http.StatusBadRequest)
		return
	}
	if req.Host == "" {
		http.Error(w, "missing host", http.StatusBadRequest)
		return
	}
	resp := s.reg.Checkin(req, s.now())
	s.metrics.checkins.Add(1)
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(resp)
}

// handleMetrics serves GET /v1/metrics.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(s.MetricsSnapshot())
}
