package fleet

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"autovac/internal/vaccine"
)

// Registry durability: a write-ahead log plus snapshot, so the fleet
// control plane survives process restart with its monotonic version
// history intact. Without it a restarted registry reissues versions
// from zero, and every agent that synced the old instance is "ahead"
// of the new one — the wedge the server's resync path papers over but
// persistence actually removes.
//
// Layout under the state directory:
//
//	snapshot.json     full registry content at some version (atomic
//	                  tmp+rename replace)
//	wal-<seq>.log     frame-per-record append logs; records published
//	                  after the snapshot
//
// Each WAL frame is [4-byte LE length][4-byte LE CRC32-IEEE][JSON
// payload]. Replay stops at the first frame whose length or checksum
// is wrong — a torn tail from a crash mid-append — and truncates the
// file there, so the registry reboots to exactly its durable prefix.
//
// Publish appends records and fsyncs before returning (group commit:
// concurrent publishers share one fsync). Compaction rotates to a
// fresh segment, snapshots the full in-memory state, and deletes the
// older segments; replay is idempotent (records apply by max version),
// so a crash anywhere in that sequence recovers cleanly.

const (
	// DefaultCompactEvery is how many WAL records accumulate before
	// Publish triggers a snapshot compaction.
	DefaultCompactEvery = 4096

	snapshotName    = "snapshot.json"
	walSegmentGlob  = "wal-*.log"
	walSegmentFmt   = "wal-%08d.log"
	maxWALFrameSize = 16 << 20 // corrupt-length guard, far above any vaccine
)

// walRecord is one durable publish: a vaccine with its assigned
// version. Records are self-describing, so replay order within a
// segment batch does not matter.
type walRecord struct {
	Version uint64
	Vaccine vaccine.Vaccine
}

// snapshotState is the snapshot file's JSON shape: the full registry
// content with per-entry versions, plus the version counter at capture
// time (which may run ahead of the highest entry after no-op or
// superseded publishes).
type snapshotState struct {
	Version   uint64
	Generator string
	Records   []walRecord
}

// RecoveryStats summarises one boot-time replay.
type RecoveryStats struct {
	// SnapshotVersion is the loaded snapshot's version (0 = none).
	SnapshotVersion uint64
	// Segments is how many WAL segments were replayed.
	Segments int
	// Records is how many WAL records were applied on top of the
	// snapshot.
	Records int
	// TruncatedBytes counts bytes cut from a torn segment tail.
	TruncatedBytes int64
}

// wal is the append side of the log. Lock order: syncMu before mu
// (rotate and sync both honour it).
type wal struct {
	dir string

	// mu serialises appends and rotation of the active segment.
	mu      sync.Mutex
	f       *os.File
	bw      *bufio.Writer
	seq     int
	records int // records since the last snapshot (pre-seeded at boot)

	// writeGen counts completed append batches; syncGen is the highest
	// generation known fsynced. syncMu serialises fsyncs so concurrent
	// publishers batch onto one disk flush.
	writeGen uint64
	syncMu   sync.Mutex
	syncGen  uint64
}

func segmentPath(dir string, seq int) string {
	return filepath.Join(dir, fmt.Sprintf(walSegmentFmt, seq))
}

// openSegment creates the next append segment.
func openSegment(dir string, seq int) (*os.File, error) {
	return os.OpenFile(segmentPath(dir, seq), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
}

// append writes one batch of frames to the active segment and flushes
// them to the OS, returning the write generation to pass to sync.
func (w *wal) append(recs []walRecord) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	for i := range recs {
		if err := writeFrame(w.bw, &recs[i]); err != nil {
			return 0, err
		}
	}
	if err := w.bw.Flush(); err != nil {
		return 0, err
	}
	w.records += len(recs)
	w.writeGen++
	return w.writeGen, nil
}

// sync makes every append up to gen durable. The first caller in
// fsyncs the file once for every batch already flushed; publishers
// that arrive while it runs find their generation covered and return
// without touching the disk — fsync batching.
func (w *wal) sync(gen uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	if w.syncGen >= gen {
		return nil
	}
	w.mu.Lock()
	covered := w.writeGen
	f := w.f
	w.mu.Unlock()
	if err := f.Sync(); err != nil {
		return err
	}
	w.syncGen = covered
	return nil
}

// rotate seals the active segment and opens the next one, returning
// the sealed segment's sequence number. Everything in segments <= the
// returned seq is durable and already applied to memory (records are
// stored to shards before they are appended), so a snapshot taken
// after rotation covers them.
func (w *wal) rotate() (int, error) {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return 0, err
	}
	if err := w.f.Sync(); err != nil {
		return 0, err
	}
	if err := w.f.Close(); err != nil {
		return 0, err
	}
	sealed := w.seq
	w.seq++
	f, err := openSegment(w.dir, w.seq)
	if err != nil {
		return 0, err
	}
	w.f = f
	w.bw = bufio.NewWriter(f)
	w.records = 0
	w.syncGen = w.writeGen
	return sealed, nil
}

// close flushes, fsyncs, and closes the active segment.
func (w *wal) close() error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	defer w.mu.Unlock()
	if err := w.bw.Flush(); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	return w.f.Close()
}

// writeFrame emits one length+CRC framed JSON record.
func writeFrame(bw *bufio.Writer, rec *walRecord) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("fleet: wal: encoding record v%d: %w", rec.Version, err)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	_, err = bw.Write(payload)
	return err
}

// readSegment replays one segment file, returning its records and the
// byte offset of the durable prefix. A short, oversized, or
// checksum-failing frame ends the read: everything before it is good,
// everything from it on is a torn tail.
func readSegment(path string) (recs []walRecord, good int64, size int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, 0, 0, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, 0, 0, err
	}
	size = st.Size()
	br := bufio.NewReader(f)
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			// EOF here is a clean end; a partial header is a torn tail.
			return recs, good, size, nil
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxWALFrameSize {
			return recs, good, size, nil
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return recs, good, size, nil
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return recs, good, size, nil
		}
		var rec walRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			return recs, good, size, nil
		}
		recs = append(recs, rec)
		good += int64(len(hdr)) + int64(n)
	}
}

// applyRecord installs one replayed record, trusting the log (the
// vaccine was validated and slice-verified at publish time). Replay is
// idempotent: an entry only moves forward in version, and the counter
// only ratchets up.
func (r *Registry) applyRecord(rec walRecord) {
	s := r.shardFor(rec.Vaccine.ID)
	s.mu.Lock()
	if prev, ok := s.byID[rec.Vaccine.ID]; !ok || prev.version <= rec.Version {
		s.byID[rec.Vaccine.ID] = regEntry{
			v:       rec.Vaccine,
			fp:      rec.Vaccine.Fingerprint(),
			version: rec.Version,
		}
		if rec.Version > s.version {
			s.version = rec.Version
		}
	}
	s.mu.Unlock()
	for {
		cur := r.version.Load()
		if rec.Version <= cur || r.version.CompareAndSwap(cur, rec.Version) {
			return
		}
	}
}

// OpenRegistry opens (or creates) a persistent registry rooted at dir:
// it loads the snapshot if one exists, replays the WAL segments on top
// — truncating a torn tail left by a crash mid-append — and arranges
// for every subsequent Publish to be logged and fsynced before it
// returns. Close the registry to seal the log.
func OpenRegistry(dir string, shards int) (*Registry, error) {
	if dir == "" {
		return nil, errors.New("fleet: OpenRegistry: empty state dir")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: OpenRegistry: %w", err)
	}
	r := NewRegistry(shards)

	// Snapshot first.
	snapPath := filepath.Join(dir, snapshotName)
	if data, err := os.ReadFile(snapPath); err == nil {
		var snap snapshotState
		if err := json.Unmarshal(data, &snap); err != nil {
			return nil, fmt.Errorf("fleet: OpenRegistry: corrupt snapshot %s: %w", snapPath, err)
		}
		for _, rec := range snap.Records {
			r.applyRecord(rec)
		}
		if snap.Version > r.version.Load() {
			r.version.Store(snap.Version)
		}
		r.SetGenerator(snap.Generator)
		r.recovery.SnapshotVersion = snap.Version
	} else if !os.IsNotExist(err) {
		return nil, fmt.Errorf("fleet: OpenRegistry: %w", err)
	}

	// Then the segments, oldest first.
	segs, err := filepath.Glob(filepath.Join(dir, walSegmentGlob))
	if err != nil {
		return nil, fmt.Errorf("fleet: OpenRegistry: %w", err)
	}
	sort.Strings(segs) // zero-padded seq: lexical == numeric
	lastSeq := 0
	replayed := 0
	for _, seg := range segs {
		recs, good, size, err := readSegment(seg)
		if err != nil {
			return nil, fmt.Errorf("fleet: OpenRegistry: replaying %s: %w", seg, err)
		}
		if good < size {
			// Torn tail: cut the segment back to its durable prefix so
			// the next boot (and any external reader) sees clean frames.
			if err := os.Truncate(seg, good); err != nil {
				return nil, fmt.Errorf("fleet: OpenRegistry: truncating torn tail of %s: %w", seg, err)
			}
			r.recovery.TruncatedBytes += size - good
		}
		for _, rec := range recs {
			r.applyRecord(rec)
		}
		replayed += len(recs)
		r.recovery.Segments++
		if _, err := fmt.Sscanf(filepath.Base(seg), walSegmentFmt, &lastSeq); err != nil {
			return nil, fmt.Errorf("fleet: OpenRegistry: bad segment name %s: %w", seg, err)
		}
	}
	r.recovery.Records = replayed

	// Append to a fresh segment: never write after a truncated tail,
	// and give compaction a natural rotation point.
	f, err := openSegment(dir, lastSeq+1)
	if err != nil {
		return nil, fmt.Errorf("fleet: OpenRegistry: %w", err)
	}
	r.wal = &wal{
		dir: dir,
		f:   f,
		bw:  bufio.NewWriter(f),
		seq: lastSeq + 1,
		// Seed the compaction counter with the replayed backlog so a
		// boot behind a long WAL compacts on the next publish instead
		// of replaying it again next time.
		records: replayed,
	}
	return r, nil
}

// Recovery reports what the boot-time replay found. Zero for an
// in-memory registry.
func (r *Registry) Recovery() RecoveryStats { return r.recovery }

// Persistent reports whether the registry is WAL-backed.
func (r *Registry) Persistent() bool { return r.wal != nil }

// Close seals the write-ahead log. The registry remains readable;
// further publishes fail. No-op for an in-memory registry.
func (r *Registry) Close() error {
	if r.wal == nil {
		return nil
	}
	return r.wal.close()
}

// logBatch appends one publish's records and waits for durability,
// then triggers compaction if the log has grown past CompactEvery.
func (r *Registry) logBatch(batch []walRecord) error {
	gen, err := r.wal.append(batch)
	if err != nil {
		return fmt.Errorf("fleet: wal append: %w", err)
	}
	if err := r.wal.sync(gen); err != nil {
		return fmt.Errorf("fleet: wal sync: %w", err)
	}
	limit := r.CompactEvery
	if limit <= 0 {
		limit = DefaultCompactEvery
	}
	r.wal.mu.Lock()
	due := r.wal.records >= limit
	r.wal.mu.Unlock()
	if due {
		if err := r.Compact(); err != nil {
			return err
		}
	}
	return nil
}

// Compact bounds the write-ahead log: it rotates to a fresh segment,
// snapshots the full in-memory registry (which covers every record in
// the sealed segments — records reach memory before the log), writes
// the snapshot atomically, and deletes the sealed segments. Safe to
// call concurrently with publishes and reads; concurrent compactions
// serialise. A crash between the snapshot rename and the segment
// deletes only costs replay time: records are applied by max version,
// so re-replaying a snapshotted segment is a no-op.
func (r *Registry) Compact() error {
	if r.wal == nil {
		return nil
	}
	r.compactMu.Lock()
	defer r.compactMu.Unlock()

	sealed, err := r.wal.rotate()
	if err != nil {
		return fmt.Errorf("fleet: compact: %w", err)
	}
	snap := snapshotState{Generator: r.Generator()}
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for _, e := range s.byID {
			snap.Records = append(snap.Records, walRecord{Version: e.version, Vaccine: e.v})
		}
		s.mu.RUnlock()
	}
	sort.Slice(snap.Records, func(i, j int) bool {
		return snap.Records[i].Version < snap.Records[j].Version
	})
	// Capture the counter after the scan so it covers every entry in
	// the snapshot; max() at replay handles records beyond it.
	snap.Version = r.version.Load()

	data, err := json.Marshal(&snap)
	if err != nil {
		return fmt.Errorf("fleet: compact: %w", err)
	}
	tmp := filepath.Join(r.wal.dir, snapshotName+".tmp")
	if err := writeFileSync(tmp, data); err != nil {
		return fmt.Errorf("fleet: compact: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(r.wal.dir, snapshotName)); err != nil {
		return fmt.Errorf("fleet: compact: %w", err)
	}
	if err := syncDir(r.wal.dir); err != nil {
		return fmt.Errorf("fleet: compact: %w", err)
	}
	// The snapshot is durable: the sealed segments are redundant.
	for seq := sealed; seq > 0; seq-- {
		path := segmentPath(r.wal.dir, seq)
		if err := os.Remove(path); err != nil {
			if os.IsNotExist(err) {
				break // older segments were removed by a prior compaction
			}
			return fmt.Errorf("fleet: compact: %w", err)
		}
	}
	return nil
}

// writeFileSync writes data and fsyncs before closing.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a rename within it is durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}
