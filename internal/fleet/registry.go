package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autovac/internal/vaccine"
)

// DefaultShards is the registry shard count when NewRegistry is given
// zero. 16 shards keep write contention negligible for corpus-sized
// packs while the per-shard high-water version lets delta reads skip
// untouched shards entirely.
const DefaultShards = 16

// regEntry is one published vaccine with its publish version.
type regEntry struct {
	v       vaccine.Vaccine
	fp      string // content fingerprint, for idempotent republish
	version uint64
}

// regShard is one RWMutex-guarded slice of the vaccine space.
type regShard struct {
	mu   sync.RWMutex
	byID map[string]regEntry
	// version is the shard's high-water publish version: a delta read
	// with since >= version skips the shard without touching byID.
	version uint64
}

// hostShard is one slice of the host heartbeat table.
type hostShard struct {
	mu    sync.Mutex
	hosts map[string]hostState
}

// hostState is the last heartbeat from one host.
type hostState struct {
	version     uint64
	installed   int
	inspected   int
	intercepted int
	lastSeen    time.Time
}

// Registry is the server-side vaccine store: vaccines land in shards
// keyed by FNV-1a of their ID, every accepted publish gets the next
// value of a single monotonic version counter, and host heartbeats are
// tracked in a separately sharded table. All methods are safe for
// concurrent use.
//
// A registry is in-memory by default; OpenRegistry (wal.go) attaches a
// write-ahead log and snapshot so publishes survive process restart
// with the monotonic version history intact.
type Registry struct {
	shards    []regShard
	hostTab   []hostShard
	version   atomic.Uint64
	generator atomic.Pointer[string]

	// notify is the publish broadcaster: long-poll sync requests park
	// on it and wake the instant a publish lands (see notify.go).
	notify *notifier

	// wal, when non-nil, is the durability layer: Publish appends each
	// accepted vaccine to it and returns only once the records are
	// fsynced (see wal.go). recovery summarises the boot-time replay.
	wal      *wal
	recovery RecoveryStats

	// CompactEvery triggers a snapshot compaction once this many WAL
	// records have accumulated since the last snapshot (0 means
	// DefaultCompactEvery). Set it before serving; it is read by
	// Publish without synchronisation.
	CompactEvery int

	// compactMu serialises snapshot compactions.
	compactMu sync.Mutex

	// analysisMu guards analysis, the accumulated corpus-analysis
	// statistics of every pack published with them.
	analysisMu  sync.Mutex
	analysis    vaccine.AnalysisStats
	analysisSet bool
}

// NewRegistry creates a registry with the given shard count (0 means
// DefaultShards). The count is rounded up to a power of two so shard
// selection is a mask, not a modulo.
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{
		shards:  make([]regShard, n),
		hostTab: make([]hostShard, n),
		notify:  newNotifier(),
	}
	for i := range r.shards {
		r.shards[i].byID = make(map[string]regEntry)
		r.hostTab[i].hosts = make(map[string]hostState)
	}
	g := ""
	r.generator.Store(&g)
	return r
}

// fnv32a is the FNV-1a hash the registry shards on.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (r *Registry) shardFor(id string) *regShard {
	return &r.shards[fnv32a(id)&uint32(len(r.shards)-1)]
}

func (r *Registry) hostShardFor(host string) *hostShard {
	return &r.hostTab[fnv32a(host)&uint32(len(r.hostTab)-1)]
}

// SetGenerator records the publishing pipeline's label, echoed in
// sync responses.
func (r *Registry) SetGenerator(g string) { r.generator.Store(&g) }

// Generator returns the publishing pipeline's label.
func (r *Registry) Generator() string { return *r.generator.Load() }

// RecordAnalysis accumulates the corpus-analysis statistics shipped
// inside a published pack, so /v1/metrics can report analysis health
// (samples analysed/failed/panicked) next to distribution counters.
func (r *Registry) RecordAnalysis(st vaccine.AnalysisStats) {
	r.analysisMu.Lock()
	defer r.analysisMu.Unlock()
	r.analysis.Add(st)
	r.analysisSet = true
}

// Analysis returns the accumulated analysis statistics and whether
// any pack has recorded them.
func (r *Registry) Analysis() (vaccine.AnalysisStats, bool) {
	r.analysisMu.Lock()
	defer r.analysisMu.Unlock()
	return r.analysis, r.analysisSet
}

// Publish validates and stores a batch of vaccines, assigning each
// accepted vaccine the next monotonic version. Republishing a vaccine
// whose content is unchanged is a no-op (no version bump), so
// periodic full-pack publishes don't force fleet-wide resyncs; a
// changed vaccine under an existing ID replaces it at a new version.
// It returns the registry's latest version and the number of vaccines
// actually (re)stored.
//
// Publication is the last gate before fleet-wide distribution, so in
// addition to record validation every vaccine must pass the static
// slice verifier (VerifyReplayable): a vaccine whose replay slice
// could loop, fault, or touch host resources is refused.
// When the registry is persistent (OpenRegistry), every stored vaccine
// is appended to the write-ahead log and Publish returns only after the
// records are fsynced; concurrent publishers share one fsync (group
// commit). Long-poll waiters are woken only after durability, so no
// agent can observe a version that a crash could take back.
func (r *Registry) Publish(vs ...vaccine.Vaccine) (uint64, int, error) {
	stored := 0
	var batch []walRecord
	var pubErr error
	for i := range vs {
		v := vs[i]
		if err := v.Validate(); err != nil {
			pubErr = fmt.Errorf("fleet: publish: %w", err)
			break
		}
		if err := v.VerifyReplayable(); err != nil {
			pubErr = fmt.Errorf("fleet: publish: %w", err)
			break
		}
		fp := v.Fingerprint()
		s := r.shardFor(v.ID)
		s.mu.Lock()
		if prev, ok := s.byID[v.ID]; ok && prev.fp == fp {
			s.mu.Unlock()
			continue
		}
		ver := r.version.Add(1)
		s.byID[v.ID] = regEntry{v: v, fp: fp, version: ver}
		s.version = ver
		s.mu.Unlock()
		stored++
		if r.wal != nil {
			batch = append(batch, walRecord{Version: ver, Vaccine: v})
		}
	}
	// Vaccines stored before a mid-batch rejection must still reach
	// the log and the waiters: the error reports the bad vaccine, not
	// a rollback.
	if len(batch) > 0 {
		if err := r.logBatch(batch); err != nil && pubErr == nil {
			pubErr = err
		}
	}
	if stored > 0 {
		r.notify.wake()
	}
	return r.version.Load(), stored, pubErr
}

// Latest returns the registry's latest publish version.
func (r *Registry) Latest() uint64 { return r.version.Load() }

// ratchetVersion lifts the version counter to at least v without
// publishing anything. Relays use it to adopt an upstream fence that
// ran ahead of the highest record version (no-op republishes advance
// the origin counter without new content).
func (r *Registry) ratchetVersion(v uint64) {
	for {
		cur := r.version.Load()
		if v <= cur || r.version.CompareAndSwap(cur, v) {
			return
		}
	}
}

// resetMirror drops every stored vaccine and rewinds the version
// counter to zero. Only relays call it — when the upstream's version
// line restarted below the mirror's, the mirror must rebase the same
// way an agent does, and its own downstream agents then hit the
// since-ahead-of-registry path and receive Reset deltas in turn.
// Concurrent delta reads during the wipe see a transient partial or
// empty registry; their clients converge on the next poll once the
// upstream's content is re-applied.
func (r *Registry) resetMirror() {
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.Lock()
		clear(s.byID)
		s.version = 0
		s.mu.Unlock()
	}
	r.version.Store(0)
}

// Count returns the number of distinct vaccines stored.
func (r *Registry) Count() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.byID)
		s.mu.RUnlock()
	}
	return n
}

// deltaScanHook, when set, runs after Delta's shard scan and before
// the response is assembled. The regression test for the torn version
// fence uses it to publish mid-read at the exact point where the old
// code (which loaded the version counter *after* the scan) produced a
// Version covering vaccines the body omitted.
var deltaScanHook func()

// Delta returns every vaccine published after the given version,
// ordered by ascending version, with the pack digest the server uses
// as the sync ETag. since=0 yields the complete registry content.
//
// Consistency: the version fence is captured BEFORE the shard scan and
// the response contains exactly the vaccines whose latest version lies
// in (since, fence]. Capturing the fence after the scan instead was the
// delta-sync lost-update race: a publish landing in an already-scanned
// shard mid-read advanced the reported Version past a vaccine the body
// did not contain, so agents adopted that Version and never fetched the
// vaccine. With the fence first, a mid-scan publish is assigned a
// version above the fence and is excluded from both the body and the
// Version — the next poll picks it up. (An entry replaced mid-scan to a
// version above the fence drops out of this delta entirely; its
// replacement, being newer than the reported Version, is fetched next
// poll, so convergence to the latest content is never lost.)
func (r *Registry) Delta(since uint64) *DeltaResponse {
	fence := r.version.Load()
	var entries []regEntry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		if s.version > since {
			for _, e := range s.byID {
				if e.version > since && e.version <= fence {
					entries = append(entries, e)
				}
			}
		}
		s.mu.RUnlock()
	}
	if deltaScanHook != nil {
		deltaScanHook()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].version < entries[j].version })
	d := &DeltaResponse{
		Since:     since,
		Version:   fence,
		Complete:  since == 0,
		Generator: r.Generator(),
		Vaccines:  make([]vaccine.Vaccine, len(entries)),
		Versions:  make([]uint64, len(entries)),
	}
	fps := make([]string, len(entries))
	for i := range entries {
		d.Vaccines[i] = entries[i].v
		d.Versions[i] = entries[i].version
		fps[i] = entries[i].fp
	}
	// The fingerprints were computed at publish time; digesting them
	// directly skips one JSON marshal + SHA-256 per vaccine per delta,
	// which the long-poll thundering herd (every parked agent fetching
	// the same delta at once) turns into a hot path.
	d.ETag = vaccine.DigestFingerprints(d.Generator, fps)
	return d
}

// Checkin records a host heartbeat and returns the latest registry
// version as the staleness hint.
func (r *Registry) Checkin(req CheckinRequest, now time.Time) CheckinResponse {
	s := r.hostShardFor(req.Host)
	s.mu.Lock()
	s.hosts[req.Host] = hostState{
		version:     req.Version,
		installed:   req.Installed,
		inspected:   req.Inspected,
		intercepted: req.Intercepted,
		lastSeen:    now,
	}
	s.mu.Unlock()
	return CheckinResponse{Version: r.version.Load()}
}

// FleetStatus summarises the host heartbeat table.
type FleetStatus struct {
	// ActiveHosts counts hosts seen within the window.
	ActiveHosts int
	// Converged counts active hosts whose applied version matches the
	// registry's latest.
	Converged int
	// MinVersion is the lowest applied version among active hosts,
	// including hosts legitimately at version 0; it is meaningful only
	// when ActiveHosts > 0.
	MinVersion uint64
	// Installed, Inspected, and Intercepted aggregate the active
	// hosts' daemon counters.
	Installed   int
	Inspected   int
	Intercepted int
}

// Fleet reports heartbeat aggregates over hosts seen within the
// window ending at now.
func (r *Registry) Fleet(window time.Duration, now time.Time) FleetStatus {
	latest := r.version.Load()
	var st FleetStatus
	seen := false
	cutoff := now.Add(-window)
	for i := range r.hostTab {
		s := &r.hostTab[i]
		s.mu.Lock()
		for _, h := range s.hosts {
			if h.lastSeen.Before(cutoff) {
				continue
			}
			st.ActiveHosts++
			if h.version == latest {
				st.Converged++
			}
			// seen, not a zero sentinel: a fresh host legitimately
			// reports version 0, and treating 0 as "unset" skipped it
			// and reported a later host's version as the minimum.
			if !seen || h.version < st.MinVersion {
				st.MinVersion = h.version
				seen = true
			}
			st.Installed += h.installed
			st.Inspected += h.inspected
			st.Intercepted += h.intercepted
		}
		s.mu.Unlock()
	}
	return st
}
