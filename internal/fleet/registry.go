package fleet

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"autovac/internal/vaccine"
)

// DefaultShards is the registry shard count when NewRegistry is given
// zero. 16 shards keep write contention negligible for corpus-sized
// packs while the per-shard high-water version lets delta reads skip
// untouched shards entirely.
const DefaultShards = 16

// regEntry is one published vaccine with its publish version.
type regEntry struct {
	v       vaccine.Vaccine
	fp      string // content fingerprint, for idempotent republish
	version uint64
}

// regShard is one RWMutex-guarded slice of the vaccine space.
type regShard struct {
	mu   sync.RWMutex
	byID map[string]regEntry
	// version is the shard's high-water publish version: a delta read
	// with since >= version skips the shard without touching byID.
	version uint64
}

// hostShard is one slice of the host heartbeat table.
type hostShard struct {
	mu    sync.Mutex
	hosts map[string]hostState
}

// hostState is the last heartbeat from one host.
type hostState struct {
	version     uint64
	installed   int
	inspected   int
	intercepted int
	lastSeen    time.Time
}

// Registry is the server-side vaccine store: vaccines land in shards
// keyed by FNV-1a of their ID, every accepted publish gets the next
// value of a single monotonic version counter, and host heartbeats are
// tracked in a separately sharded table. All methods are safe for
// concurrent use.
type Registry struct {
	shards    []regShard
	hostTab   []hostShard
	version   atomic.Uint64
	generator atomic.Pointer[string]

	// analysisMu guards analysis, the accumulated corpus-analysis
	// statistics of every pack published with them.
	analysisMu  sync.Mutex
	analysis    vaccine.AnalysisStats
	analysisSet bool
}

// NewRegistry creates a registry with the given shard count (0 means
// DefaultShards). The count is rounded up to a power of two so shard
// selection is a mask, not a modulo.
func NewRegistry(shards int) *Registry {
	if shards <= 0 {
		shards = DefaultShards
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	r := &Registry{shards: make([]regShard, n), hostTab: make([]hostShard, n)}
	for i := range r.shards {
		r.shards[i].byID = make(map[string]regEntry)
		r.hostTab[i].hosts = make(map[string]hostState)
	}
	g := ""
	r.generator.Store(&g)
	return r
}

// fnv32a is the FNV-1a hash the registry shards on.
func fnv32a(s string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= 16777619
	}
	return h
}

func (r *Registry) shardFor(id string) *regShard {
	return &r.shards[fnv32a(id)&uint32(len(r.shards)-1)]
}

func (r *Registry) hostShardFor(host string) *hostShard {
	return &r.hostTab[fnv32a(host)&uint32(len(r.hostTab)-1)]
}

// SetGenerator records the publishing pipeline's label, echoed in
// sync responses.
func (r *Registry) SetGenerator(g string) { r.generator.Store(&g) }

// Generator returns the publishing pipeline's label.
func (r *Registry) Generator() string { return *r.generator.Load() }

// RecordAnalysis accumulates the corpus-analysis statistics shipped
// inside a published pack, so /v1/metrics can report analysis health
// (samples analysed/failed/panicked) next to distribution counters.
func (r *Registry) RecordAnalysis(st vaccine.AnalysisStats) {
	r.analysisMu.Lock()
	defer r.analysisMu.Unlock()
	r.analysis.Add(st)
	r.analysisSet = true
}

// Analysis returns the accumulated analysis statistics and whether
// any pack has recorded them.
func (r *Registry) Analysis() (vaccine.AnalysisStats, bool) {
	r.analysisMu.Lock()
	defer r.analysisMu.Unlock()
	return r.analysis, r.analysisSet
}

// Publish validates and stores a batch of vaccines, assigning each
// accepted vaccine the next monotonic version. Republishing a vaccine
// whose content is unchanged is a no-op (no version bump), so
// periodic full-pack publishes don't force fleet-wide resyncs; a
// changed vaccine under an existing ID replaces it at a new version.
// It returns the registry's latest version and the number of vaccines
// actually (re)stored.
//
// Publication is the last gate before fleet-wide distribution, so in
// addition to record validation every vaccine must pass the static
// slice verifier (VerifyReplayable): a vaccine whose replay slice
// could loop, fault, or touch host resources is refused.
func (r *Registry) Publish(vs ...vaccine.Vaccine) (uint64, int, error) {
	stored := 0
	for i := range vs {
		v := vs[i]
		if err := v.Validate(); err != nil {
			return r.version.Load(), stored, fmt.Errorf("fleet: publish: %w", err)
		}
		if err := v.VerifyReplayable(); err != nil {
			return r.version.Load(), stored, fmt.Errorf("fleet: publish: %w", err)
		}
		fp := v.Fingerprint()
		s := r.shardFor(v.ID)
		s.mu.Lock()
		if prev, ok := s.byID[v.ID]; ok && prev.fp == fp {
			s.mu.Unlock()
			continue
		}
		ver := r.version.Add(1)
		s.byID[v.ID] = regEntry{v: v, fp: fp, version: ver}
		s.version = ver
		s.mu.Unlock()
		stored++
	}
	return r.version.Load(), stored, nil
}

// Latest returns the registry's latest publish version.
func (r *Registry) Latest() uint64 { return r.version.Load() }

// Count returns the number of distinct vaccines stored.
func (r *Registry) Count() int {
	n := 0
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		n += len(s.byID)
		s.mu.RUnlock()
	}
	return n
}

// Delta returns every vaccine published after the given version,
// ordered by ascending version, with the pack digest the server uses
// as the sync ETag. since=0 yields the complete registry content.
func (r *Registry) Delta(since uint64) *DeltaResponse {
	var entries []regEntry
	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		if s.version > since {
			for _, e := range s.byID {
				if e.version > since {
					entries = append(entries, e)
				}
			}
		}
		s.mu.RUnlock()
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].version < entries[j].version })
	d := &DeltaResponse{
		Since:     since,
		Version:   r.version.Load(),
		Complete:  since == 0,
		Generator: r.Generator(),
		Vaccines:  make([]vaccine.Vaccine, len(entries)),
	}
	for i := range entries {
		d.Vaccines[i] = entries[i].v
	}
	p := vaccine.Pack{Generator: d.Generator, Vaccines: d.Vaccines}
	d.ETag = p.Digest()
	return d
}

// Checkin records a host heartbeat and returns the latest registry
// version as the staleness hint.
func (r *Registry) Checkin(req CheckinRequest, now time.Time) CheckinResponse {
	s := r.hostShardFor(req.Host)
	s.mu.Lock()
	s.hosts[req.Host] = hostState{
		version:     req.Version,
		installed:   req.Installed,
		inspected:   req.Inspected,
		intercepted: req.Intercepted,
		lastSeen:    now,
	}
	s.mu.Unlock()
	return CheckinResponse{Version: r.version.Load()}
}

// FleetStatus summarises the host heartbeat table.
type FleetStatus struct {
	// ActiveHosts counts hosts seen within the window.
	ActiveHosts int
	// Converged counts active hosts whose applied version matches the
	// registry's latest.
	Converged int
	// MinVersion is the lowest applied version among active hosts
	// (0 when no host is active).
	MinVersion uint64
	// Installed, Inspected, and Intercepted aggregate the active
	// hosts' daemon counters.
	Installed   int
	Inspected   int
	Intercepted int
}

// Fleet reports heartbeat aggregates over hosts seen within the
// window ending at now.
func (r *Registry) Fleet(window time.Duration, now time.Time) FleetStatus {
	latest := r.version.Load()
	var st FleetStatus
	cutoff := now.Add(-window)
	for i := range r.hostTab {
		s := &r.hostTab[i]
		s.mu.Lock()
		for _, h := range s.hosts {
			if h.lastSeen.Before(cutoff) {
				continue
			}
			st.ActiveHosts++
			if h.version == latest {
				st.Converged++
			}
			if st.MinVersion == 0 || h.version < st.MinVersion {
				st.MinVersion = h.version
			}
			st.Installed += h.installed
			st.Inspected += h.inspected
			st.Intercepted += h.intercepted
		}
		s.mu.Unlock()
	}
	return st
}
