package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"testing"
)

// openTestRegistry opens a persistent registry in dir, failing the
// test on error.
func openTestRegistry(t *testing.T, dir string) *Registry {
	t.Helper()
	r, err := OpenRegistry(dir, 0)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// walSegments lists the state dir's WAL segment files, sorted.
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	segs, err := filepath.Glob(filepath.Join(dir, walSegmentGlob))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(segs)
	return segs
}

func TestWALReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir)
	if !r.Persistent() {
		t.Fatal("OpenRegistry returned a non-persistent registry")
	}
	if _, _, err := r.Publish(testVaccines("wal", 12)...); err != nil {
		t.Fatal(err)
	}
	before := r.Delta(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir)
	defer r2.Close()
	if r2.Latest() != 12 || r2.Count() != 12 {
		t.Fatalf("reboot state: version %d count %d, want 12/12", r2.Latest(), r2.Count())
	}
	after := r2.Delta(0)
	if after.ETag != before.ETag {
		t.Fatalf("reboot digest %s != pre-crash digest %s", after.ETag, before.ETag)
	}
	rec := r2.Recovery()
	if rec.Records != 12 || rec.TruncatedBytes != 0 {
		t.Fatalf("recovery stats %+v, want 12 records, 0 truncated", rec)
	}
	// Versions keep counting from where they stopped: an agent's cursor
	// is never ahead of a properly restarted registry.
	if _, _, err := r2.Publish(staticVaccine("wal/post/0", "WAL-POST-0001")); err != nil {
		t.Fatal(err)
	}
	if r2.Latest() != 13 {
		t.Fatalf("post-reboot publish got version %d, want 13", r2.Latest())
	}
}

func TestWALReplayKeepsLatestVersionPerID(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir)
	vs := testVaccines("up", 4)
	if _, _, err := r.Publish(vs...); err != nil {
		t.Fatal(err)
	}
	vs[1].Identifier = "up-CHANGED"
	if ver, stored, err := r.Publish(vs...); err != nil || stored != 1 || ver != 5 {
		t.Fatalf("update publish: version %d stored %d err %v", ver, stored, err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir)
	defer r2.Close()
	if r2.Latest() != 5 || r2.Count() != 4 {
		t.Fatalf("reboot state: version %d count %d, want 5/4", r2.Latest(), r2.Count())
	}
	d := r2.Delta(4)
	if len(d.Vaccines) != 1 || d.Vaccines[0].Identifier != "up-CHANGED" {
		t.Fatalf("replay lost the in-place update: %+v", d.Vaccines)
	}
}

// TestWALTornTailTruncated simulates a crash mid-append: garbage after
// the last durable frame must be cut off at reopen, recovering exactly
// the durable prefix.
func TestWALTornTailTruncated(t *testing.T) {
	cases := []struct {
		name string
		tail []byte
	}{
		// A few bytes of a frame header that never finished.
		{"partial-header", []byte{0xde, 0xad, 0xbe}},
		// A complete-looking frame whose checksum is wrong.
		{"bad-crc", []byte{4, 0, 0, 0, 0, 0, 0, 0, 'j', 'u', 'n', 'k'}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			r := openTestRegistry(t, dir)
			if _, _, err := r.Publish(testVaccines("torn", 6)...); err != nil {
				t.Fatal(err)
			}
			before := r.Delta(0)
			if err := r.Close(); err != nil {
				t.Fatal(err)
			}

			segs := walSegments(t, dir)
			if len(segs) == 0 {
				t.Fatal("no WAL segments on disk")
			}
			last := segs[len(segs)-1]
			f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := f.Write(tc.tail); err != nil {
				t.Fatal(err)
			}
			f.Close()
			torn, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}

			r2 := openTestRegistry(t, dir)
			defer r2.Close()
			rec := r2.Recovery()
			if rec.TruncatedBytes != int64(len(tc.tail)) {
				t.Fatalf("truncated %d bytes, want %d", rec.TruncatedBytes, len(tc.tail))
			}
			if r2.Latest() != 6 || r2.Delta(0).ETag != before.ETag {
				t.Fatalf("torn-tail reboot: version %d digest %s, want 6 / %s",
					r2.Latest(), r2.Delta(0).ETag, before.ETag)
			}
			// The file itself was cut back to its durable prefix.
			clean, err := os.Stat(last)
			if err != nil {
				t.Fatal(err)
			}
			if clean.Size() != torn.Size()-int64(len(tc.tail)) {
				t.Fatalf("segment still %d bytes, want %d", clean.Size(), torn.Size()-int64(len(tc.tail)))
			}
		})
	}
}

// TestWALCompaction drives the snapshot path: once CompactEvery records
// accumulate, Publish compacts — the registry content lands in
// snapshot.json, the sealed segments are deleted, and a reboot loads
// the snapshot instead of replaying the full history.
func TestWALCompaction(t *testing.T) {
	dir := t.TempDir()
	r := openTestRegistry(t, dir)
	r.CompactEvery = 8
	r.SetGenerator("compact-test")
	if _, _, err := r.Publish(testVaccines("cmp", 20)...); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, snapshotName)); err != nil {
		t.Fatalf("no snapshot after %d publishes with CompactEvery=8: %v", 20, err)
	}
	if segs := walSegments(t, dir); len(segs) != 1 {
		t.Fatalf("sealed segments not deleted: %v", segs)
	}
	before := r.Delta(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir)
	defer r2.Close()
	rec := r2.Recovery()
	if rec.SnapshotVersion != 20 {
		t.Fatalf("snapshot version %d, want 20", rec.SnapshotVersion)
	}
	if rec.Records != 0 {
		t.Fatalf("replayed %d WAL records past the snapshot, want 0", rec.Records)
	}
	if r2.Latest() != 20 || r2.Delta(0).ETag != before.ETag {
		t.Fatalf("post-compaction reboot: version %d, digest match %v",
			r2.Latest(), r2.Delta(0).ETag == before.ETag)
	}
	if r2.Generator() != "compact-test" {
		t.Fatalf("generator %q not restored from snapshot", r2.Generator())
	}
	if _, _, err := r2.Publish(testVaccines("cmp2", 3)...); err != nil {
		t.Fatal(err)
	}
	if r2.Latest() != 23 {
		t.Fatalf("post-reboot version %d, want 23", r2.Latest())
	}
}

// TestWALConcurrentPublish exercises the group-commit path under -race:
// many publishers share fsyncs, and nothing is lost across a reboot.
func TestWALConcurrentPublish(t *testing.T) {
	const publishers, perWorker = 8, 10
	dir := t.TempDir()
	r := openTestRegistry(t, dir)
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := staticVaccine(
					fmt.Sprintf("gc%d/mutex/%d", p, i),
					fmt.Sprintf("GC%d-MARKER-%d", p, i))
				if _, _, err := r.Publish(v); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	wg.Wait()
	const want = publishers * perWorker
	if r.Latest() != want {
		t.Fatalf("version %d, want %d", r.Latest(), want)
	}
	before := r.Delta(0)
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}

	r2 := openTestRegistry(t, dir)
	defer r2.Close()
	if r2.Latest() != want || r2.Count() != want {
		t.Fatalf("reboot lost updates: version %d count %d, want %d", r2.Latest(), r2.Count(), want)
	}
	if r2.Delta(0).ETag != before.ETag {
		t.Fatal("reboot digest differs after concurrent publishes")
	}
}

func TestOpenRegistryRejectsEmptyDir(t *testing.T) {
	if _, err := OpenRegistry("", 0); err == nil {
		t.Fatal("OpenRegistry(\"\") must fail")
	}
}
