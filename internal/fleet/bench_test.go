// Benchmark harness for the distribution subsystem, following the
// repo's top-level bench_test.go conventions: deterministic seeds,
// fixed workload sizes per iteration, b.Fatal on error. Run with:
//
//	go test -bench=. -benchmem ./internal/fleet
package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"autovac/internal/malware"
)

// benchRegistrySize is the steady-state registry population: the same
// order of magnitude as the paper's 1,716-sample corpus after fleet
// dedupe.
const benchRegistrySize = 1024

func benchServer(b *testing.B) *Server {
	b.Helper()
	srv := NewServer(NewRegistry(0))
	if _, _, err := srv.Registry().Publish(testVaccines("bench", benchRegistrySize)...); err != nil {
		b.Fatal(err)
	}
	return srv
}

// BenchmarkRegistryDeltaSync measures GET /v1/packs through the full
// handler stack (instrumentation, delta assembly, digest, JSON) for
// the three steady-state cases: a cold full sync, a near-tip delta,
// and the 304 fast path every converged host hits each poll.
func BenchmarkRegistryDeltaSync(b *testing.B) {
	srv := benchServer(b)
	h := srv.Handler()
	latest := srv.Registry().Latest()
	cases := []struct {
		name  string
		since uint64
	}{
		{"full", 0},
		{"tail16", latest - 16},
		{"notmodified", latest},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			url := fmt.Sprintf("%s?since=%d", PathPacks, c.since)
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				req := httptest.NewRequest(http.MethodGet, url, nil)
				w := httptest.NewRecorder()
				h.ServeHTTP(w, req)
				if w.Code != http.StatusOK && w.Code != http.StatusNotModified {
					b.Fatalf("status %d", w.Code)
				}
			}
		})
	}
}

// BenchmarkCheckin measures POST /v1/checkin with many concurrent
// hosts heartbeating, the fleet's background load at scale.
func BenchmarkCheckin(b *testing.B) {
	srv := benchServer(b)
	h := srv.Handler()
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		host := 0
		for pb.Next() {
			host++
			body := fmt.Sprintf(
				`{"Host":"BENCH-PC-%04d","Version":%d,"Installed":%d,"Inspected":128,"Intercepted":3}`,
				host%4096, benchRegistrySize, benchRegistrySize)
			req := httptest.NewRequest(http.MethodPost, PathCheckin, strings.NewReader(body))
			w := httptest.NewRecorder()
			h.ServeHTTP(w, req)
			if w.Code != http.StatusOK {
				b.Fatalf("status %d", w.Code)
			}
		}
	})
	if st := srv.Registry().Fleet(time.Hour, time.Now()); st.ActiveHosts == 0 {
		b.Fatal("no hosts recorded")
	}
}

// BenchmarkWormSim measures one full epidemic simulation: worm
// propagation across an emulated fleet racing the vaccine delta sync.
func BenchmarkWormSim(b *testing.B) {
	const killswitch = "bench-killswitch.example"
	gen := malware.NewGenerator(7)
	worm, err := gen.WormSample(killswitch)
	if err != nil {
		b.Fatal(err)
	}
	sc := malware.WormScenario(killswitch)
	vs := testVaccines("worm", 1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := SimulateWorm(WormConfig{
			Hosts: 48, Waves: 8, Fanout: 2, Seed: 11,
			Worm: worm, Scenario: sc, Vaccines: vs,
			PublishWave: 2, SyncLatency: 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.FinalInfected() == 0 {
			b.Fatal("no infections")
		}
	}
}

// BenchmarkControlPlaneConvergence measures one publish wave reaching
// a small in-process fleet under both sync modes. The interesting
// numbers are the reported metrics (convergence wall-clock and wire
// bytes), not ns/op; CI runs it at -benchtime 1x as a smoke test that
// the scale harness converges at all.
func BenchmarkControlPlaneConvergence(b *testing.B) {
	modes := []struct {
		name     string
		longPoll time.Duration
	}{
		{"poll", 0},
		{"longpoll", 5 * time.Second},
	}
	for _, m := range modes {
		b.Run(m.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := SimulateControlPlane(context.Background(), ControlPlaneConfig{
					Hosts:        256,
					Waves:        1,
					PollInterval: 50 * time.Millisecond,
					LongPoll:     m.longPoll,
					Seed:         uint64(i),
				})
				if err != nil {
					b.Fatal(err)
				}
				if res.Deltas == 0 {
					b.Fatal("no deltas served")
				}
				b.ReportMetric(float64(res.ConvergeTime.Microseconds()), "µs-converge")
				b.ReportMetric(float64(res.BytesOnWire), "wire-bytes")
			}
		})
	}
}

// BenchmarkRegistryPublish measures direct publish throughput,
// including the no-op republish fast path.
func BenchmarkRegistryPublish(b *testing.B) {
	vs := testVaccines("pub", 256)
	b.Run("fresh", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			r := NewRegistry(0)
			if _, n, err := r.Publish(vs...); err != nil || n != len(vs) {
				b.Fatalf("stored %d err %v", n, err)
			}
		}
	})
	b.Run("idempotent", func(b *testing.B) {
		r := NewRegistry(0)
		r.Publish(vs...)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, n, err := r.Publish(vs...); err != nil || n != 0 {
				b.Fatalf("stored %d err %v", n, err)
			}
		}
	})
}

// BenchmarkDeltaCodec measures the two delta encodings head to head on
// a 64-vaccine pack: encode and decode ns/op plus the resulting body
// size (the bytes-on-wire number the codec exists to shrink).
func BenchmarkDeltaCodec(b *testing.B) {
	reg := NewRegistry(0)
	reg.SetGenerator("bench")
	if _, _, err := reg.Publish(testVaccines("codec", 64)...); err != nil {
		b.Fatal(err)
	}
	d := reg.Delta(0)

	b.Run("encode/json", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			body, _, err := encodeDelta(d, false)
			if err != nil {
				b.Fatal(err)
			}
			n = len(body)
		}
		b.ReportMetric(float64(n), "body-bytes")
	})
	b.Run("encode/binary", func(b *testing.B) {
		b.ReportAllocs()
		var n int
		for i := 0; i < b.N; i++ {
			body, err := EncodeDeltaBinary(d)
			if err != nil {
				b.Fatal(err)
			}
			n = len(body)
		}
		b.ReportMetric(float64(n), "body-bytes")
	})

	jsonBody, _, err := encodeDelta(d, false)
	if err != nil {
		b.Fatal(err)
	}
	binBody, err := EncodeDeltaBinary(d)
	if err != nil {
		b.Fatal(err)
	}
	b.Run("decode/json", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out DeltaResponse
			if err := json.Unmarshal(jsonBody, &out); err != nil {
				b.Fatal(err)
			}
			if len(out.Vaccines) != 64 {
				b.Fatal("short decode")
			}
		}
	})
	b.Run("decode/binary", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			out, err := DecodeDeltaBinary(binBody)
			if err != nil {
				b.Fatal(err)
			}
			if len(out.Vaccines) != 64 {
				b.Fatal("short decode")
			}
		}
	})
}

// BenchmarkRelayTreeConvergence pushes one wave through a small
// two-tier relay tree (agents behind relays behind the origin) and
// reports convergence wall-clock and origin request count. CI runs it
// at -benchtime 1x as a smoke test that the tier converges at all.
func BenchmarkRelayTreeConvergence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := SimulateControlPlane(context.Background(), ControlPlaneConfig{
			Hosts:    256,
			Relays:   4,
			Waves:    1,
			LongPoll: 5 * time.Second,
			Binary:   true,
			Seed:     uint64(i),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Deltas == 0 || res.EdgeRequests == 0 {
			b.Fatalf("relay tree served nothing: %+v", res)
		}
		b.ReportMetric(float64(res.ConvergeTime.Microseconds()), "µs-converge")
		b.ReportMetric(float64(res.OriginRequests), "origin-reqs")
	}
}
