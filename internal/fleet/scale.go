package fleet

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// Control-plane scale simulation: how fast does a publish reach N
// hosts, and what does the transport cost? Unlike Simulate (which runs
// full agents with real host environments and deploy daemons over a
// loopback listener), this harness strips each host to the sync loop
// itself — version cursor, ETag, HTTP exchange — and runs the exchanges
// over an in-process transport that invokes the server handler
// directly. No TCP, no file descriptors, no daemons: the per-host cost
// is one goroutine, so fleets of 100k–1M hosts fit in one process and
// the measurement isolates the control plane (registry, handler,
// long-poll broadcaster) instead of the emulation stack.

// ControlPlaneConfig configures SimulateControlPlane.
type ControlPlaneConfig struct {
	// Hosts is the number of simulated sync agents (default 1000).
	Hosts int
	// Waves is the number of publishes measured (default 3). Each wave
	// is published only after every host converged on the previous one.
	Waves int
	// VaccinesPerWave is the publish batch size (default 1).
	VaccinesPerWave int
	// PollInterval is the plain-polling cadence (default 200ms). Each
	// agent polls at this fixed interval from a random initial phase.
	PollInterval time.Duration
	// LongPoll, when > 0, switches every agent to long-polling with
	// this wait instead of interval polling.
	LongPoll time.Duration
	// Relays, when > 0, inserts a tier of that many read-through edge
	// relays between the origin and the agents: each relay long-polls
	// the origin for binary deltas and serves its share of the fleet
	// (round-robin) from its mirror. With Relays == 0 every agent talks
	// to the origin directly.
	Relays int
	// Binary makes the agents negotiate the binary delta codec
	// (Accept: application/x-autovac-delta); relays always use it
	// upstream regardless.
	Binary bool
	// Seed drives the per-agent phase jitter.
	Seed uint64
	// ConvergeTimeout bounds one wave's convergence (default 60s);
	// exceeding it fails the simulation — the control plane is wedged.
	ConvergeTimeout time.Duration
}

// ControlPlaneResult is the outcome of one control-plane simulation.
type ControlPlaneResult struct {
	// Hosts and Waves echo the configuration; LongPoll, Relays, and
	// Binary record the measured mode.
	Hosts, Waves int
	LongPoll     bool
	Relays       int
	Binary       bool
	// ConvergeTime is the worst wave's convergence time: publish until
	// the last host applied it.
	ConvergeTime time.Duration
	// WaveConverge is the per-wave convergence time.
	WaveConverge []time.Duration
	// SyncP50 and SyncP99 are quantiles of per-host sync latency
	// (publish until that host applied the delta), across all waves.
	SyncP50, SyncP99 time.Duration
	// Requests counts every HTTP exchange the fleet performed.
	Requests uint64
	// BytesOnWire estimates the transport cost of those exchanges:
	// request line and headers, status line and response headers, and
	// bodies — what the same traffic would put on a TCP wire. (The
	// in-process transport never serialises HTTP framing, so this is
	// reconstructed from the request/response objects.)
	BytesOnWire uint64
	// Deltas and NotModified count 200 and 304 pack responses seen by
	// agents; DecodeErrors counts malformed delta bodies they survived.
	Deltas, NotModified uint64
	DecodeErrors        uint64
	// OriginRequests counts HTTP requests the origin served. With a
	// relay tier it scales with the relay count, not the agent count —
	// the point of the tier. EdgeRequests totals the relay servers'
	// request counts (agent traffic absorbed at the edge).
	OriginRequests uint64
	EdgeRequests   uint64
	// Server is the origin server's final metrics snapshot.
	Server MetricsSnapshot
}

// memTransport invokes an http.Handler in the caller's goroutine — the
// in-process equivalent of a TCP round trip. A long-poll request parks
// the calling goroutine inside the handler, exactly like a parked
// connection, without a second goroutine or a socket.
type memTransport struct {
	h http.Handler
}

func (t *memTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := httptest.NewRecorder()
	t.h.ServeHTTP(rec, req)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}

// wireBytes estimates the on-wire size of one HTTP exchange: request
// line + headers, status line + headers, and the response body. The
// framing is reconstructed from the actual headers of this exchange —
// whatever Content-Type/Content-Encoding the server negotiated rides
// at its real size, so codec savings are not misreported by assuming
// JSON framing. Headers a real server would add but the in-process
// handler did not (Content-Length on a body-carrying response, Date)
// are synthesized at representative size, identically for every
// encoding.
func wireBytes(req *http.Request, resp *http.Response, body int) uint64 {
	n := len(req.Method) + 1 + len(req.URL.RequestURI()) + len(" HTTP/1.1\r\n") + 2
	for k, vs := range req.Header {
		for _, v := range vs {
			n += len(k) + 2 + len(v) + 2
		}
	}
	n += len("HTTP/1.1 ") + len(resp.Status) + 2 + 2
	for k, vs := range resp.Header {
		for _, v := range vs {
			n += len(k) + 2 + len(v) + 2
		}
	}
	if body > 0 && resp.Header.Get("Content-Length") == "" {
		n += len("Content-Length: ") + len(fmt.Sprint(body)) + 2
	}
	n += len("Date: Mon, 02 Jan 2006 15:04:05 GMT") + 2
	return uint64(n + body)
}

// liteAgent is one simulated host's sync state. The cursor fields and
// counters are owned by the agent's goroutine; appliedVer/applyNanos
// are the cross-goroutine convergence signal the publisher reads.
type liteAgent struct {
	client  *http.Client
	baseURL string
	waitArg string // pre-rendered "&wait=..." (empty = plain poll)
	binary  bool
	rng     *rand.Rand

	version uint64
	etag    string

	requests, bytes     uint64
	deltas, notModified uint64
	errors, decodeErrs  uint64
	applyNanos          atomic.Int64
	appliedVer          atomic.Uint64
}

// fetch performs one pack exchange and applies the result to the
// cursor. Install is a no-op — the measurement is the control plane,
// not the deploy daemon.
func (a *liteAgent) fetch(ctx context.Context) error {
	url := fmt.Sprintf("%s%s?since=%d%s", a.baseURL, PathPacks, a.version, a.waitArg)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	if a.etag != "" {
		req.Header.Set("If-None-Match", a.etag)
	}
	if a.binary {
		req.Header.Set("Accept", ContentTypeDelta)
	}
	resp, err := a.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	a.requests++
	switch resp.StatusCode {
	case http.StatusNotModified:
		a.notModified++
		a.bytes += wireBytes(req, resp, 0)
	case http.StatusOK:
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		a.bytes += wireBytes(req, resp, len(body))
		// Decode under the encoding the server declared, like the real
		// agent. A malformed body is a retryable condition, not a crash:
		// count it and leave the cursor where it was.
		var delta *DeltaResponse
		if isBinaryDelta(resp.Header.Get("Content-Type")) {
			delta, err = DecodeDeltaBinary(body)
		} else {
			delta = new(DeltaResponse)
			err = json.Unmarshal(body, delta)
		}
		if err != nil {
			a.decodeErrs++
			return nil
		}
		a.deltas++
		a.version = delta.Version
		a.etag = `"` + delta.ETag + `"`
		a.applyNanos.Store(time.Now().UnixNano())
		a.appliedVer.Store(delta.Version)
	default:
		a.errors++
	}
	return nil
}

// run drives one agent until cancellation: long-polling back to back
// (the park happens server-side), or plain polling at the configured
// cadence from a random initial phase.
func (a *liteAgent) run(ctx context.Context, interval time.Duration) {
	if a.waitArg != "" {
		for ctx.Err() == nil {
			if err := a.fetch(ctx); err != nil {
				return // transport errors here are context cancellation
			}
		}
		return
	}
	timer := time.NewTimer(time.Duration(a.rng.Int63n(int64(interval))))
	defer timer.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-timer.C:
		}
		if err := a.fetch(ctx); err != nil {
			return
		}
		timer.Reset(interval)
	}
}

// controlPlaneVaccine builds the minimal valid static vaccine the
// scale harness publishes; distinct identifiers keep every publish a
// real version bump.
func controlPlaneVaccine(wave, i int) vaccine.Vaccine {
	return vaccine.Vaccine{
		ID:         fmt.Sprintf("cp/w%d/mutex/%d", wave, i),
		Sample:     "controlplane",
		Resource:   winenv.KindMutex,
		Identifier: fmt.Sprintf("CP-W%02d-MARKER-%04d", wave, i),
		Class:      determinism.Static,
		Op:         "create",
		API:        "CreateMutexA",
		Effect:     impact.Full,
		Polarity:   vaccine.SimulatePresence,
		Delivery:   vaccine.DirectInjection,
	}
}

// SimulateControlPlane measures vaccine distribution at fleet scale:
// it publishes cfg.Waves packs into a fresh registry and, for each,
// measures how long the full fleet takes to observe it, the per-host
// sync latency distribution, and the transport bytes spent — under
// plain polling or long-poll streaming. The harness is wall-clock
// honest: agents really poll (or really park) and the publisher only
// advances when every host's applied version has caught up.
func SimulateControlPlane(ctx context.Context, cfg ControlPlaneConfig) (*ControlPlaneResult, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 1000
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 3
	}
	if cfg.VaccinesPerWave <= 0 {
		cfg.VaccinesPerWave = 1
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 200 * time.Millisecond
	}
	if cfg.ConvergeTimeout <= 0 {
		cfg.ConvergeTimeout = 60 * time.Second
	}

	reg := NewRegistry(0)
	reg.SetGenerator("controlplane")
	srv := NewServer(reg)
	originClient := &http.Client{Transport: &memTransport{h: srv.Handler()}}

	runCtx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	var agentPanic atomic.Pointer[string]

	// With a relay tier, agents talk to their relay's in-process
	// handler; the origin sees only the relays' long-poll clients.
	relays := make([]*Relay, cfg.Relays)
	downstream := []*http.Client{originClient}
	if cfg.Relays > 0 {
		downstream = downstream[:0]
		for i := range relays {
			rl, err := NewRelay(RelayConfig{
				Upstream: "http://origin.sim",
				Client:   originClient,
				Seed:     cfg.Seed + uint64(i)*7919,
			})
			if err != nil {
				cancel()
				wg.Wait()
				return nil, err
			}
			relays[i] = rl
			downstream = append(downstream, &http.Client{Transport: &memTransport{h: rl.Handler()}})
			wg.Add(1)
			go func(rl *Relay) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						msg := fmt.Sprintf("fleet: control-plane relay panic: %v\n%s", r, debug.Stack())
						agentPanic.CompareAndSwap(nil, &msg)
						cancel()
					}
				}()
				rl.Run(runCtx)
			}(rl)
		}
	}

	waitArg := ""
	if cfg.LongPoll > 0 {
		waitArg = "&wait=" + cfg.LongPoll.String()
	}
	agents := make([]*liteAgent, cfg.Hosts)
	for i := range agents {
		agents[i] = &liteAgent{
			client:  downstream[i%len(downstream)],
			baseURL: "http://controlplane.sim",
			waitArg: waitArg,
			binary:  cfg.Binary,
			rng:     rand.New(rand.NewSource(int64(cfg.Seed) + int64(i))),
		}
	}
	for _, a := range agents {
		wg.Add(1)
		go func(a *liteAgent) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					msg := fmt.Sprintf("fleet: control-plane agent panic: %v\n%s", r, debug.Stack())
					agentPanic.CompareAndSwap(nil, &msg)
					cancel()
				}
			}()
			a.run(runCtx, cfg.PollInterval)
		}(a)
	}

	res := &ControlPlaneResult{
		Hosts: cfg.Hosts, Waves: cfg.Waves,
		LongPoll: cfg.LongPoll > 0, Relays: cfg.Relays, Binary: cfg.Binary,
	}
	var hist latencyHist
	remaining := make([]int, 0, cfg.Hosts)
	for wave := 0; wave < cfg.Waves; wave++ {
		vs := make([]vaccine.Vaccine, cfg.VaccinesPerWave)
		for i := range vs {
			vs[i] = controlPlaneVaccine(wave, i)
		}
		target, _, err := reg.Publish(vs...)
		if err != nil {
			cancel()
			wg.Wait()
			return nil, err
		}
		t0 := time.Now()
		t0n := t0.UnixNano()
		remaining = remaining[:0]
		for i := range agents {
			remaining = append(remaining, i)
		}
		waveMax := time.Duration(0)
		for len(remaining) > 0 {
			if p := agentPanic.Load(); p != nil {
				wg.Wait()
				return nil, fmt.Errorf("%s", *p)
			}
			if time.Since(t0) > cfg.ConvergeTimeout {
				cancel()
				wg.Wait()
				return nil, fmt.Errorf("fleet: control plane stalled: %d/%d hosts short of version %d after %v",
					len(remaining), cfg.Hosts, target, cfg.ConvergeTimeout)
			}
			keep := remaining[:0]
			for _, idx := range remaining {
				a := agents[idx]
				if a.appliedVer.Load() >= target {
					lat := time.Duration(a.applyNanos.Load() - t0n)
					if lat < 0 {
						lat = 0
					}
					hist.observe(lat)
					if lat > waveMax {
						waveMax = lat
					}
					continue
				}
				keep = append(keep, idx)
			}
			remaining = keep
			if len(remaining) > 0 {
				time.Sleep(time.Millisecond)
			}
		}
		res.WaveConverge = append(res.WaveConverge, waveMax)
		if waveMax > res.ConvergeTime {
			res.ConvergeTime = waveMax
		}
	}
	cancel()
	wg.Wait()
	if p := agentPanic.Load(); p != nil {
		return nil, fmt.Errorf("%s", *p)
	}

	for _, a := range agents {
		res.Requests += a.requests
		res.BytesOnWire += a.bytes
		res.Deltas += a.deltas
		res.NotModified += a.notModified
		res.DecodeErrors += a.decodeErrs
	}
	res.SyncP50 = hist.quantile(0.50)
	res.SyncP99 = hist.quantile(0.99)
	res.Server = srv.MetricsSnapshot()
	res.OriginRequests = res.Server.Requests
	for _, rl := range relays {
		res.EdgeRequests += rl.Server().MetricsSnapshot().Requests
	}
	return res, nil
}
