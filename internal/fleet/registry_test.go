package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/isa"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// staticVaccine builds a minimal valid static mutex vaccine.
func staticVaccine(id, ident string) vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: id, Sample: "sim", Resource: winenv.KindMutex,
		Identifier: ident, Class: determinism.Static,
		Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection,
	}
}

// testVaccines builds n distinct static vaccines with the given prefix.
func testVaccines(prefix string, n int) []vaccine.Vaccine {
	vs := make([]vaccine.Vaccine, n)
	for i := range vs {
		vs[i] = staticVaccine(
			fmt.Sprintf("%s/mutex/%d", prefix, i),
			fmt.Sprintf("%s-MARKER-%04d", prefix, i))
	}
	return vs
}

func TestPublishAssignsMonotonicVersions(t *testing.T) {
	r := NewRegistry(4)
	ver, stored, err := r.Publish(testVaccines("w1", 10)...)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 10 || stored != 10 {
		t.Fatalf("got version %d stored %d, want 10/10", ver, stored)
	}
	d := r.Delta(0)
	if len(d.Vaccines) != 10 || d.Version != 10 || !d.Complete {
		t.Fatalf("bad full delta: %d vaccines, version %d, complete %v",
			len(d.Vaccines), d.Version, d.Complete)
	}
}

func TestRepublishUnchangedIsNoOp(t *testing.T) {
	r := NewRegistry(0)
	vs := testVaccines("idem", 5)
	r.Publish(vs...)
	ver, stored, err := r.Publish(vs...)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 || ver != 5 {
		t.Fatalf("unchanged republish stored %d, version %d; want 0, 5", stored, ver)
	}
	// Changing one vaccine's content bumps only that vaccine.
	vs[2].Identifier = "idem-CHANGED"
	ver, stored, _ = r.Publish(vs...)
	if stored != 1 || ver != 6 {
		t.Fatalf("changed republish stored %d, version %d; want 1, 6", stored, ver)
	}
	if d := r.Delta(5); len(d.Vaccines) != 1 || d.Vaccines[0].Identifier != "idem-CHANGED" {
		t.Fatalf("delta after republish wrong: %+v", d.Vaccines)
	}
	if r.Count() != 5 {
		t.Fatalf("count %d after in-place update, want 5", r.Count())
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	r := NewRegistry(0)
	bad := staticVaccine("bad/mutex/0", "")
	if _, _, err := r.Publish(bad); err == nil {
		t.Fatal("invalid vaccine accepted")
	}
}

// TestPublishRefusesUnreplayableSlice checks the behavioural gate: a
// vaccine that passes record validation but whose replay slice fails
// the static verifier (here: an infinite loop) must never enter the
// registry, and a failed batch must not bump the version.
func TestPublishRefusesUnreplayableSlice(t *testing.T) {
	b := isa.NewBuilder("evil-slice")
	b.Label("top").Inc(isa.R(isa.EAX)).Jmp("top").Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := staticVaccine("evil/mutex/0", "EVIL-0001")
	v.Class = determinism.AlgorithmDeterministic
	v.Slice = &determinism.Slice{Program: prog, ResultAddr: 0x00500000,
		API: "CreateMutexA", SourceSteps: 2}
	if err := v.Validate(); err != nil {
		t.Fatalf("record validation must pass for this test to bite: %v", err)
	}
	r := NewRegistry(0)
	if _, _, err := r.Publish(v); err == nil {
		t.Fatal("vaccine with an unreplayable slice accepted for distribution")
	}
	if r.Count() != 0 || r.Latest() != 0 {
		t.Fatalf("refused publish left state behind: count %d version %d", r.Count(), r.Latest())
	}
}

func TestDeltaOrderedAndEtagStable(t *testing.T) {
	r := NewRegistry(8)
	r.Publish(testVaccines("e", 20)...)
	d1, d2 := r.Delta(0), r.Delta(0)
	if d1.ETag != d2.ETag {
		t.Fatal("delta ETag unstable across identical reads")
	}
	for i := 1; i < len(d1.Vaccines); i++ {
		// Identifiers embed a zero-padded publish index, so version
		// order must equal identifier order.
		if d1.Vaccines[i-1].Identifier >= d1.Vaccines[i].Identifier {
			t.Fatalf("delta not in version order at %d", i)
		}
	}
	tail := r.Delta(15)
	if len(tail.Vaccines) != 5 || tail.Complete {
		t.Fatalf("tail delta: %d vaccines, complete %v", len(tail.Vaccines), tail.Complete)
	}
	if tail.ETag == d1.ETag {
		t.Fatal("tail delta shares ETag with full pack")
	}
}

func TestCheckinAndFleetStatus(t *testing.T) {
	r := NewRegistry(0)
	r.Publish(testVaccines("f", 3)...)
	now := time.Now()
	r.Checkin(CheckinRequest{Host: "A", Version: 3, Installed: 3, Inspected: 10, Intercepted: 2}, now)
	r.Checkin(CheckinRequest{Host: "B", Version: 2, Installed: 2}, now)
	r.Checkin(CheckinRequest{Host: "STALE", Version: 1}, now.Add(-time.Hour))
	st := r.Fleet(time.Minute, now)
	if st.ActiveHosts != 2 || st.Converged != 1 || st.MinVersion != 2 {
		t.Fatalf("fleet status %+v", st)
	}
	if st.Intercepted != 2 || st.Installed != 5 {
		t.Fatalf("fleet aggregates %+v", st)
	}
	// A re-checkin replaces, not duplicates.
	resp := r.Checkin(CheckinRequest{Host: "B", Version: 3, Installed: 3}, now)
	if resp.Version != 3 {
		t.Fatalf("checkin ack version %d, want 3", resp.Version)
	}
	if st := r.Fleet(time.Minute, now); st.ActiveHosts != 2 || st.Converged != 2 {
		t.Fatalf("fleet status after update %+v", st)
	}
}

// TestConcurrentRegistryAccess races ≥100 goroutines mixing publishes,
// delta reads, and check-ins, then asserts no update was lost and the
// version stream is dense and monotonic. Run under -race.
func TestConcurrentRegistryAccess(t *testing.T) {
	const (
		publishers = 40
		readers    = 40
		checkers   = 40
		perWorker  = 25
	)
	r := NewRegistry(0)
	now := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := staticVaccine(
					fmt.Sprintf("pub%d/mutex/%d", p, i),
					fmt.Sprintf("PUB%d-MARKER-%d", p, i))
				if _, _, err := r.Publish(v); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastVer uint64
			since := uint64(g % 7)
			for i := 0; i < perWorker; i++ {
				d := r.Delta(since)
				if d.Version < lastVer {
					t.Errorf("reader %d: version went backwards %d -> %d", g, lastVer, d.Version)
					return
				}
				lastVer = d.Version
				seen := make(map[string]bool, len(d.Vaccines))
				for _, v := range d.Vaccines {
					if seen[v.ID] {
						t.Errorf("reader %d: duplicate %s in one delta", g, v.ID)
						return
					}
					seen[v.ID] = true
				}
			}
		}(g)
	}
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Checkin(CheckinRequest{
					Host:    fmt.Sprintf("HOST-%d", c),
					Version: uint64(i),
				}, now)
			}
		}(c)
	}
	wg.Wait()

	const want = publishers * perWorker
	if got := r.Latest(); got != want {
		t.Fatalf("final version %d, want %d (every publish must get a version)", got, want)
	}
	d := r.Delta(0)
	if len(d.Vaccines) != want {
		t.Fatalf("lost updates: %d vaccines stored, want %d", len(d.Vaccines), want)
	}
	if st := r.Fleet(time.Minute, now); st.ActiveHosts != checkers {
		t.Fatalf("active hosts %d, want %d", st.ActiveHosts, checkers)
	}
}

// TestDeltaVersionFenceRegression deterministically trips the delta
// lost-update race: deltaScanHook publishes a vaccine between Delta's
// shard scan and its response assembly. The old code loaded the version
// counter *after* the scan, so the response claimed Version 9 while the
// body held 8 vaccines — an agent adopting that Version never fetched
// the ninth. The fence-first code excludes the mid-scan publish from
// both the Version and the body.
func TestDeltaVersionFenceRegression(t *testing.T) {
	r := NewRegistry(4)
	if _, _, err := r.Publish(testVaccines("fence", 8)...); err != nil {
		t.Fatal(err)
	}
	var once sync.Once
	deltaScanHook = func() {
		once.Do(func() {
			if _, _, err := r.Publish(staticVaccine("fence/late/0", "FENCE-LATE-0001")); err != nil {
				t.Error(err)
			}
		})
	}
	defer func() { deltaScanHook = nil }()

	d := r.Delta(0)
	if len(d.Vaccines) != int(d.Version) {
		t.Fatalf("torn delta: Version %d but %d vaccines — an agent adopting this Version would never fetch the gap",
			d.Version, len(d.Vaccines))
	}
	if d.Version != 8 {
		t.Fatalf("fence = %d, want 8 (mid-scan publish must be excluded)", d.Version)
	}
	// The excluded publish is not lost: the next poll picks it up.
	next := r.Delta(d.Version)
	if len(next.Vaccines) != 1 || next.Vaccines[0].ID != "fence/late/0" {
		t.Fatalf("follow-up delta missed the mid-scan publish: %+v", next.Vaccines)
	}
}

// TestDeltaConcurrentPublishLinearizability races publishers of
// distinct-ID vaccines against delta readers and asserts the
// linearizability invariant on every read: with distinct IDs the
// version stream is dense, so a delta since s with Version v must carry
// exactly v-s vaccines — one per version in (s, v]. A torn fence shows
// up as a body shorter than the version range it claims. Run under
// -race.
func TestDeltaConcurrentPublishLinearizability(t *testing.T) {
	const publishers, perWorker, readers = 8, 40, 8
	r := NewRegistry(0)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := staticVaccine(
					fmt.Sprintf("lin%d/mutex/%d", p, i),
					fmt.Sprintf("LIN%d-MARKER-%d", p, i))
				if _, _, err := r.Publish(v); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			since := uint64(g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				d := r.Delta(since)
				if d.Version >= since && len(d.Vaccines) != int(d.Version-since) {
					t.Errorf("reader %d: delta since %d claims Version %d but carries %d vaccines",
						g, since, d.Version, len(d.Vaccines))
					return
				}
			}
		}(g)
	}
	// Publishers finish first; then release the readers.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	for r.Latest() < publishers*perWorker {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	<-done
}

// TestFleetMinVersionIncludesZero pins the MinVersion sentinel fix: a
// fresh host legitimately heartbeats version 0, and the old zero-means-
// unset logic skipped it, reporting a later host's version as the
// fleet minimum.
func TestFleetMinVersionIncludesZero(t *testing.T) {
	cases := []struct {
		name     string
		versions []uint64
		want     uint64
	}{
		{"fresh-host-at-zero", []uint64{3, 0, 2}, 0},
		{"single-zero", []uint64{0}, 0},
		{"all-nonzero", []uint64{3, 2, 7}, 2},
		{"single-host", []uint64{5}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry(0)
			now := time.Now()
			for i, v := range tc.versions {
				r.Checkin(CheckinRequest{Host: fmt.Sprintf("MIN-%d", i), Version: v}, now)
			}
			st := r.Fleet(time.Minute, now)
			if st.ActiveHosts != len(tc.versions) {
				t.Fatalf("active %d, want %d", st.ActiveHosts, len(tc.versions))
			}
			if st.MinVersion != tc.want {
				t.Fatalf("MinVersion %d, want %d", st.MinVersion, tc.want)
			}
		})
	}
}

func TestShardRoundingAndSkip(t *testing.T) {
	r := NewRegistry(5) // rounds up to 8
	if len(r.shards) != 8 {
		t.Fatalf("shard count %d, want 8", len(r.shards))
	}
	r.Publish(testVaccines("s", 16)...)
	// A since at the latest version returns an empty delta.
	if d := r.Delta(r.Latest()); len(d.Vaccines) != 0 {
		t.Fatalf("empty delta has %d vaccines", len(d.Vaccines))
	}
}
