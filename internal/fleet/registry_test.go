package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"autovac/internal/determinism"
	"autovac/internal/impact"
	"autovac/internal/isa"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// staticVaccine builds a minimal valid static mutex vaccine.
func staticVaccine(id, ident string) vaccine.Vaccine {
	return vaccine.Vaccine{
		ID: id, Sample: "sim", Resource: winenv.KindMutex,
		Identifier: ident, Class: determinism.Static,
		Op: "create", API: "CreateMutexA",
		Effect: impact.Full, Polarity: vaccine.SimulatePresence,
		Delivery: vaccine.DirectInjection,
	}
}

// testVaccines builds n distinct static vaccines with the given prefix.
func testVaccines(prefix string, n int) []vaccine.Vaccine {
	vs := make([]vaccine.Vaccine, n)
	for i := range vs {
		vs[i] = staticVaccine(
			fmt.Sprintf("%s/mutex/%d", prefix, i),
			fmt.Sprintf("%s-MARKER-%04d", prefix, i))
	}
	return vs
}

func TestPublishAssignsMonotonicVersions(t *testing.T) {
	r := NewRegistry(4)
	ver, stored, err := r.Publish(testVaccines("w1", 10)...)
	if err != nil {
		t.Fatal(err)
	}
	if ver != 10 || stored != 10 {
		t.Fatalf("got version %d stored %d, want 10/10", ver, stored)
	}
	d := r.Delta(0)
	if len(d.Vaccines) != 10 || d.Version != 10 || !d.Complete {
		t.Fatalf("bad full delta: %d vaccines, version %d, complete %v",
			len(d.Vaccines), d.Version, d.Complete)
	}
}

func TestRepublishUnchangedIsNoOp(t *testing.T) {
	r := NewRegistry(0)
	vs := testVaccines("idem", 5)
	r.Publish(vs...)
	ver, stored, err := r.Publish(vs...)
	if err != nil {
		t.Fatal(err)
	}
	if stored != 0 || ver != 5 {
		t.Fatalf("unchanged republish stored %d, version %d; want 0, 5", stored, ver)
	}
	// Changing one vaccine's content bumps only that vaccine.
	vs[2].Identifier = "idem-CHANGED"
	ver, stored, _ = r.Publish(vs...)
	if stored != 1 || ver != 6 {
		t.Fatalf("changed republish stored %d, version %d; want 1, 6", stored, ver)
	}
	if d := r.Delta(5); len(d.Vaccines) != 1 || d.Vaccines[0].Identifier != "idem-CHANGED" {
		t.Fatalf("delta after republish wrong: %+v", d.Vaccines)
	}
	if r.Count() != 5 {
		t.Fatalf("count %d after in-place update, want 5", r.Count())
	}
}

func TestPublishRejectsInvalid(t *testing.T) {
	r := NewRegistry(0)
	bad := staticVaccine("bad/mutex/0", "")
	if _, _, err := r.Publish(bad); err == nil {
		t.Fatal("invalid vaccine accepted")
	}
}

// TestPublishRefusesUnreplayableSlice checks the behavioural gate: a
// vaccine that passes record validation but whose replay slice fails
// the static verifier (here: an infinite loop) must never enter the
// registry, and a failed batch must not bump the version.
func TestPublishRefusesUnreplayableSlice(t *testing.T) {
	b := isa.NewBuilder("evil-slice")
	b.Label("top").Inc(isa.R(isa.EAX)).Jmp("top").Halt()
	prog, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	v := staticVaccine("evil/mutex/0", "EVIL-0001")
	v.Class = determinism.AlgorithmDeterministic
	v.Slice = &determinism.Slice{Program: prog, ResultAddr: 0x00500000,
		API: "CreateMutexA", SourceSteps: 2}
	if err := v.Validate(); err != nil {
		t.Fatalf("record validation must pass for this test to bite: %v", err)
	}
	r := NewRegistry(0)
	if _, _, err := r.Publish(v); err == nil {
		t.Fatal("vaccine with an unreplayable slice accepted for distribution")
	}
	if r.Count() != 0 || r.Latest() != 0 {
		t.Fatalf("refused publish left state behind: count %d version %d", r.Count(), r.Latest())
	}
}

func TestDeltaOrderedAndEtagStable(t *testing.T) {
	r := NewRegistry(8)
	r.Publish(testVaccines("e", 20)...)
	d1, d2 := r.Delta(0), r.Delta(0)
	if d1.ETag != d2.ETag {
		t.Fatal("delta ETag unstable across identical reads")
	}
	for i := 1; i < len(d1.Vaccines); i++ {
		// Identifiers embed a zero-padded publish index, so version
		// order must equal identifier order.
		if d1.Vaccines[i-1].Identifier >= d1.Vaccines[i].Identifier {
			t.Fatalf("delta not in version order at %d", i)
		}
	}
	tail := r.Delta(15)
	if len(tail.Vaccines) != 5 || tail.Complete {
		t.Fatalf("tail delta: %d vaccines, complete %v", len(tail.Vaccines), tail.Complete)
	}
	if tail.ETag == d1.ETag {
		t.Fatal("tail delta shares ETag with full pack")
	}
}

func TestCheckinAndFleetStatus(t *testing.T) {
	r := NewRegistry(0)
	r.Publish(testVaccines("f", 3)...)
	now := time.Now()
	r.Checkin(CheckinRequest{Host: "A", Version: 3, Installed: 3, Inspected: 10, Intercepted: 2}, now)
	r.Checkin(CheckinRequest{Host: "B", Version: 2, Installed: 2}, now)
	r.Checkin(CheckinRequest{Host: "STALE", Version: 1}, now.Add(-time.Hour))
	st := r.Fleet(time.Minute, now)
	if st.ActiveHosts != 2 || st.Converged != 1 || st.MinVersion != 2 {
		t.Fatalf("fleet status %+v", st)
	}
	if st.Intercepted != 2 || st.Installed != 5 {
		t.Fatalf("fleet aggregates %+v", st)
	}
	// A re-checkin replaces, not duplicates.
	resp := r.Checkin(CheckinRequest{Host: "B", Version: 3, Installed: 3}, now)
	if resp.Version != 3 {
		t.Fatalf("checkin ack version %d, want 3", resp.Version)
	}
	if st := r.Fleet(time.Minute, now); st.ActiveHosts != 2 || st.Converged != 2 {
		t.Fatalf("fleet status after update %+v", st)
	}
}

// TestConcurrentRegistryAccess races ≥100 goroutines mixing publishes,
// delta reads, and check-ins, then asserts no update was lost and the
// version stream is dense and monotonic. Run under -race.
func TestConcurrentRegistryAccess(t *testing.T) {
	const (
		publishers = 40
		readers    = 40
		checkers   = 40
		perWorker  = 25
	)
	r := NewRegistry(0)
	now := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < publishers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				v := staticVaccine(
					fmt.Sprintf("pub%d/mutex/%d", p, i),
					fmt.Sprintf("PUB%d-MARKER-%d", p, i))
				if _, _, err := r.Publish(v); err != nil {
					t.Error(err)
					return
				}
			}
		}(p)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var lastVer uint64
			since := uint64(g % 7)
			for i := 0; i < perWorker; i++ {
				d := r.Delta(since)
				if d.Version < lastVer {
					t.Errorf("reader %d: version went backwards %d -> %d", g, lastVer, d.Version)
					return
				}
				lastVer = d.Version
				seen := make(map[string]bool, len(d.Vaccines))
				for _, v := range d.Vaccines {
					if seen[v.ID] {
						t.Errorf("reader %d: duplicate %s in one delta", g, v.ID)
						return
					}
					seen[v.ID] = true
				}
			}
		}(g)
	}
	for c := 0; c < checkers; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Checkin(CheckinRequest{
					Host:    fmt.Sprintf("HOST-%d", c),
					Version: uint64(i),
				}, now)
			}
		}(c)
	}
	wg.Wait()

	const want = publishers * perWorker
	if got := r.Latest(); got != want {
		t.Fatalf("final version %d, want %d (every publish must get a version)", got, want)
	}
	d := r.Delta(0)
	if len(d.Vaccines) != want {
		t.Fatalf("lost updates: %d vaccines stored, want %d", len(d.Vaccines), want)
	}
	if st := r.Fleet(time.Minute, now); st.ActiveHosts != checkers {
		t.Fatalf("active hosts %d, want %d", st.ActiveHosts, checkers)
	}
}

func TestShardRoundingAndSkip(t *testing.T) {
	r := NewRegistry(5) // rounds up to 8
	if len(r.shards) != 8 {
		t.Fatalf("shard count %d, want 8", len(r.shards))
	}
	r.Publish(testVaccines("s", 16)...)
	// A since at the latest version returns an empty delta.
	if d := r.Delta(r.Latest()); len(d.Vaccines) != 0 {
		t.Fatalf("empty delta has %d vaccines", len(d.Vaccines))
	}
}
