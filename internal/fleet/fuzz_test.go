package fleet

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"autovac/internal/core"
	"autovac/internal/exclusive"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
)

// corpusPackOnce builds one real vaccine pack by running the actual
// analysis pipeline over a slice of the 64-sample corpus — the same
// content the fleet ships in production, so the fuzz seeds carry real
// IDs, identifiers, patterns, and replay slices. Built once; fuzzing
// and seeding share it.
var corpusPackOnce = sync.OnceValues(func() ([]vaccine.Vaccine, error) {
	benign, err := malware.BenignCorpus()
	if err != nil {
		return nil, err
	}
	ix, err := exclusive.BuildIndex(benign, 1)
	if err != nil {
		return nil, err
	}
	pipeline := core.New(core.Config{Seed: 1, Index: ix})
	gen := malware.NewGenerator(1)
	samples, err := gen.Corpus(64)
	if err != nil {
		return nil, err
	}
	// A slice of the corpus keeps the seed build fast (it runs once per
	// fuzz worker process) while still spanning several families — and
	// with them identifier classes.
	var vs []vaccine.Vaccine
	for _, s := range samples[:6] {
		res, err := pipeline.Analyze(s)
		if err != nil {
			continue // a sample the pipeline refuses is fine for seeding
		}
		vs = append(vs, res.Vaccines...)
	}
	return vs, nil
})

// FuzzDeltaCodec fuzzes the binary delta decoder with two invariants:
//
//  1. Decoding arbitrary bytes never panics; a reject is always a
//     typed error (ErrDeltaMalformed or vaccine.ErrBinaryMalformed).
//  2. Accepted frames are stable: re-encoding the decoded response and
//     decoding that again yields byte-identical encodings. (Byte
//     stability rather than value comparison keeps NaN BDR values —
//     decodable but not equal to themselves — in scope.)
//
// Seeds are real: deltas cut from a registry filled by the actual
// analysis pipeline over the 64-sample corpus, in both compressed and
// uncompressed framing, plus edge frames and raw garbage.
func FuzzDeltaCodec(f *testing.F) {
	vs, err := corpusPackOnce()
	if err != nil {
		f.Fatal(err)
	}
	if len(vs) == 0 {
		f.Fatal("corpus pipeline produced no vaccines to seed with")
	}
	reg := NewRegistry(0)
	reg.SetGenerator("fuzz-seed")
	if _, _, err := reg.Publish(vs...); err != nil {
		f.Fatal(err)
	}
	seed := func(d *DeltaResponse) {
		enc, err := EncodeDeltaBinary(d)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(enc)
	}
	seed(reg.Delta(0))                           // full corpus pack (compressed)
	seed(reg.Delta(reg.Latest() - 1))            // one-vaccine tail (uncompressed)
	seed(reg.Delta(reg.Latest()))                // empty delta
	seed(&DeltaResponse{ETag: "e", Reset: true}) // reset frame
	f.Add([]byte("AVD1"))
	f.Add([]byte("AVD1\x00"))
	f.Add([]byte("AVD1\x01\x00\x00"))
	f.Add([]byte("not a delta at all"))

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := DecodeDeltaBinary(data)
		if err != nil {
			if !errors.Is(err, ErrDeltaMalformed) && !errors.Is(err, vaccine.ErrBinaryMalformed) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		enc1, err := EncodeDeltaBinary(d)
		if err != nil {
			t.Fatalf("re-encoding an accepted frame failed: %v", err)
		}
		d2, err := DecodeDeltaBinary(enc1)
		if err != nil {
			t.Fatalf("decoding our own encoding failed: %v", err)
		}
		enc2, err := EncodeDeltaBinary(d2)
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("codec not stable: %d-byte vs %d-byte re-encodings differ", len(enc1), len(enc2))
		}
	})
}
