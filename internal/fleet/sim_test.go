package fleet

import (
	"context"
	"strings"
	"testing"

	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// TestFleetConvergence is the subsystem's acceptance test: one server,
// 120 concurrent agents, two publish waves, and an injected transport
// fault every 5th pack request. Every agent must reach the latest
// registry version via delta sync; the steady-state polls must be
// served as 304s; the injected faults must be absorbed by retries.
// Run under -race.
func TestFleetConvergence(t *testing.T) {
	const hosts = 120
	w1 := testVaccines("wave1", 12)
	w2 := testVaccines("wave2", 8)
	res, err := Simulate(context.Background(), SimConfig{
		Hosts:        hosts,
		Waves:        [][]vaccine.Vaccine{w1, w2},
		Seed:         7,
		Generator:    "convergence-test",
		FailEveryNth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != uint64(len(w1)+len(w2)) {
		t.Fatalf("final version %d, want %d", res.Version, len(w1)+len(w2))
	}
	if res.Converged != hosts {
		t.Fatalf("%d/%d agents converged", res.Converged, hosts)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("no retry exercised despite injected faults")
	}
	// Each agent polls once more per wave after converging: every one
	// of those must be a 304.
	if res.Stats.NotModified < hosts {
		t.Fatalf("only %d not-modified responses, want >= %d", res.Stats.NotModified, hosts)
	}
	if res.Server.NotModified < uint64(hosts) {
		t.Fatalf("server counted %d 304s", res.Server.NotModified)
	}
	if res.Server.ActiveHosts != hosts || res.Server.Converged != hosts {
		t.Fatalf("server fleet view: %d active, %d converged", res.Server.ActiveHosts, res.Server.Converged)
	}
	if res.Server.MinVersion != res.Version {
		t.Fatalf("server min version %d, want %d", res.Server.MinVersion, res.Version)
	}
	// Every vaccine landed on every host exactly once.
	if res.Stats.Applied != hosts*(len(w1)+len(w2)) {
		t.Fatalf("applied %d installs fleet-wide, want %d", res.Stats.Applied, hosts*(len(w1)+len(w2)))
	}
	for _, a := range res.Agents[:3] {
		if a.Daemon().VaccineCount() != len(w1)+len(w2) {
			t.Fatalf("host %s holds %d vaccines", a.Host(), a.Daemon().VaccineCount())
		}
		if !a.Env().Exists(winenv.KindMutex, "wave2-MARKER-0003") {
			t.Fatalf("host %s missing a wave-2 vaccine resource", a.Host())
		}
	}
}

// TestSimulateSurvivesAllHostsFailing injects a fault on every pack
// request, so every agent exhausts its retries. The simulation must
// still complete — non-nil result, every host's failure recorded in
// AgentErrors, all failures joined into the returned error — rather
// than abort on the first failing host.
func TestSimulateSurvivesAllHostsFailing(t *testing.T) {
	const hosts = 4
	res, err := Simulate(context.Background(), SimConfig{
		Hosts:        hosts,
		Waves:        [][]vaccine.Vaccine{testVaccines("allfail", 3)},
		Seed:         3,
		FailEveryNth: 1, // every pack request 500s
	})
	if res == nil {
		t.Fatalf("result must be non-nil even when every host fails: %v", err)
	}
	if err == nil {
		t.Fatal("no aggregated error despite every host failing")
	}
	if res.Failed != hosts || res.Converged != 0 {
		t.Fatalf("failed %d converged %d, want %d/0", res.Failed, res.Converged, hosts)
	}
	if len(res.AgentErrors) != hosts {
		t.Fatalf("AgentErrors length %d", len(res.AgentErrors))
	}
	for hi, aerr := range res.AgentErrors {
		if aerr == nil {
			t.Errorf("host %d failure not recorded", hi)
		} else if !strings.Contains(err.Error(), aerr.Error()) {
			t.Errorf("host %d failure missing from joined error", hi)
		}
	}
	// Every agent exercised its full retry budget before giving up.
	if res.Stats.Retries != hosts*DefaultMaxRetries {
		t.Fatalf("retries %d, want %d", res.Stats.Retries, hosts*DefaultMaxRetries)
	}
}

// TestSimulatePanickingHostIsolated panics one host's agent via the
// test hook: the remaining hosts must converge through every wave, and
// the joined error must attribute the panic (with its stack) to the
// failed host only.
func TestSimulatePanickingHostIsolated(t *testing.T) {
	const hosts = 6
	simAgentHook = func(host int) {
		if host == 0 {
			panic("injected host panic")
		}
	}
	defer func() { simAgentHook = nil }()

	w1 := testVaccines("p1", 3)
	w2 := testVaccines("p2", 2)
	res, err := Simulate(context.Background(), SimConfig{
		Hosts: hosts,
		Waves: [][]vaccine.Vaccine{w1, w2},
		Seed:  9,
	})
	if res == nil {
		t.Fatalf("result must survive a panicking host: %v", err)
	}
	if err == nil || !strings.Contains(err.Error(), "injected host panic") {
		t.Fatalf("joined error doesn't attribute the panic: %v", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Error("panic stack not captured in the host error")
	}
	if res.Failed != 1 || res.AgentErrors[0] == nil {
		t.Fatalf("failed %d, AgentErrors[0] = %v", res.Failed, res.AgentErrors[0])
	}
	// The survivors converged on both waves, untouched by host 0.
	if res.Converged != hosts-1 {
		t.Fatalf("converged %d, want %d", res.Converged, hosts-1)
	}
	for hi, a := range res.Agents[1:] {
		if a.Version() != res.Version || a.Daemon().VaccineCount() != len(w1)+len(w2) {
			t.Errorf("survivor %d: version %d, %d vaccines", hi+1, a.Version(), a.Daemon().VaccineCount())
		}
		if res.AgentErrors[hi+1] != nil {
			t.Errorf("survivor %d has an error: %v", hi+1, res.AgentErrors[hi+1])
		}
	}
}

func TestSimulateCustomIdentity(t *testing.T) {
	res, err := Simulate(context.Background(), SimConfig{
		Hosts: 3,
		Waves: [][]vaccine.Vaccine{testVaccines("ci", 2)},
		Seed:  1,
		Identity: func(i int) winenv.HostIdentity {
			id := winenv.DefaultIdentity()
			id.ComputerName = "CUSTOM-" + string(rune('A'+i))
			return id
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agents[1].Host() != "CUSTOM-B" {
		t.Fatalf("identity hook ignored: %s", res.Agents[1].Host())
	}
	if res.Converged != 3 {
		t.Fatalf("converged %d/3", res.Converged)
	}
}
