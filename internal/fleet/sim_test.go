package fleet

import (
	"context"
	"testing"

	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// TestFleetConvergence is the subsystem's acceptance test: one server,
// 120 concurrent agents, two publish waves, and an injected transport
// fault every 5th pack request. Every agent must reach the latest
// registry version via delta sync; the steady-state polls must be
// served as 304s; the injected faults must be absorbed by retries.
// Run under -race.
func TestFleetConvergence(t *testing.T) {
	const hosts = 120
	w1 := testVaccines("wave1", 12)
	w2 := testVaccines("wave2", 8)
	res, err := Simulate(context.Background(), SimConfig{
		Hosts:        hosts,
		Waves:        [][]vaccine.Vaccine{w1, w2},
		Seed:         7,
		Generator:    "convergence-test",
		FailEveryNth: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Version != uint64(len(w1)+len(w2)) {
		t.Fatalf("final version %d, want %d", res.Version, len(w1)+len(w2))
	}
	if res.Converged != hosts {
		t.Fatalf("%d/%d agents converged", res.Converged, hosts)
	}
	if res.Stats.Retries == 0 {
		t.Fatal("no retry exercised despite injected faults")
	}
	// Each agent polls once more per wave after converging: every one
	// of those must be a 304.
	if res.Stats.NotModified < hosts {
		t.Fatalf("only %d not-modified responses, want >= %d", res.Stats.NotModified, hosts)
	}
	if res.Server.NotModified < uint64(hosts) {
		t.Fatalf("server counted %d 304s", res.Server.NotModified)
	}
	if res.Server.ActiveHosts != hosts || res.Server.Converged != hosts {
		t.Fatalf("server fleet view: %d active, %d converged", res.Server.ActiveHosts, res.Server.Converged)
	}
	if res.Server.MinVersion != res.Version {
		t.Fatalf("server min version %d, want %d", res.Server.MinVersion, res.Version)
	}
	// Every vaccine landed on every host exactly once.
	if res.Stats.Applied != hosts*(len(w1)+len(w2)) {
		t.Fatalf("applied %d installs fleet-wide, want %d", res.Stats.Applied, hosts*(len(w1)+len(w2)))
	}
	for _, a := range res.Agents[:3] {
		if a.Daemon().VaccineCount() != len(w1)+len(w2) {
			t.Fatalf("host %s holds %d vaccines", a.Host(), a.Daemon().VaccineCount())
		}
		if !a.Env().Exists(winenv.KindMutex, "wave2-MARKER-0003") {
			t.Fatalf("host %s missing a wave-2 vaccine resource", a.Host())
		}
	}
}

func TestSimulateCustomIdentity(t *testing.T) {
	res, err := Simulate(context.Background(), SimConfig{
		Hosts: 3,
		Waves: [][]vaccine.Vaccine{testVaccines("ci", 2)},
		Seed:  1,
		Identity: func(i int) winenv.HostIdentity {
			id := winenv.DefaultIdentity()
			id.ComputerName = "CUSTOM-" + string(rune('A'+i))
			return id
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agents[1].Host() != "CUSTOM-B" {
		t.Fatalf("identity hook ignored: %s", res.Agents[1].Host())
	}
	if res.Converged != 3 {
		t.Fatalf("converged %d/3", res.Converged)
	}
}
