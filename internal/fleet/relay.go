package fleet

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"sync"
	"time"
)

// Relay is a read-through edge node of the distribution tree: it
// long-polls one upstream server (the origin, or another relay) for
// binary deltas, mirrors the origin's exact version line into its own
// in-memory Registry, and serves the full /v1/packs surface — ETags,
// 304s, long-poll parking, Reset resync, the encode cache — to the
// agents behind it through an ordinary Server. Agents cannot tell a
// relay from the origin; the origin sees one long-poll client per
// relay instead of one per agent, which is what lets the control plane
// fan out to ~10^6 agents without the origin's request rate scaling
// past the relay count.
//
// Version mirroring is exact, not re-issued: the binary delta codec
// carries each vaccine's origin publish version (DeltaResponse.Versions)
// and the relay applies them verbatim via the WAL replay path
// (applyRecord), then ratchets its counter to the upstream fence. A
// cursor an agent obtained from one relay therefore means the same
// thing at every other relay and at the origin. The binary codec is
// required upstream for this reason — JSON deltas do not carry the
// version line — so a relay pointed at a pre-codec server fails fast
// rather than mirroring wrongly.
//
// Reset propagation: when the upstream's version line restarts below
// the relay's cursor (origin restarted without its WAL), the upstream
// answers with a Reset delta; the relay wipes its mirror, re-applies
// the upstream content, and its own downstream agents — now ahead of
// the rewound mirror — hit the since-ahead-of-registry path on their
// next poll and receive Reset deltas in turn. The rebase cascades down
// the tree with no side channel.
type Relay struct {
	cfg RelayConfig
	reg *Registry
	srv *Server
	rng *rand.Rand

	// mu guards the upstream cursor and stats: SyncOnce runs on the
	// relay's sync goroutine, Stats and Version may be read from
	// anywhere.
	mu      sync.Mutex
	version uint64
	etag    string
	stats   RelayStats
}

// RelayConfig configures one relay node.
type RelayConfig struct {
	// Upstream is the upstream server's base URL, e.g.
	// "http://origin:8377". Required.
	Upstream string
	// Client is the HTTP client for upstream fetches (default
	// http.DefaultClient).
	Client *http.Client
	// LongPoll is how long each upstream fetch parks (&wait=); default
	// MaxLongPollWait. The upstream caps it at its own MaxLongPollWait.
	LongPoll time.Duration
	// Shards is the mirror registry's shard count (0 = DefaultShards).
	Shards int
	// MaxRetries, BaseBackoff, and MaxBackoff shape the jittered
	// exponential backoff after a failed upstream round trip, with the
	// same defaults as AgentConfig.
	MaxRetries  int
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Seed feeds the backoff jitter.
	Seed uint64
}

// RelayStats counts one relay's upstream sync activity.
type RelayStats struct {
	// Syncs counts completed upstream round trips (deltas and 304s).
	Syncs int
	// Deltas counts 200 upstream responses applied to the mirror;
	// NotModified counts 304s (long-poll waits that expired quietly).
	Deltas      int
	NotModified int
	// Resyncs counts upstream Reset rebases (mirror wiped and rebuilt).
	Resyncs int
	// Errors counts failed upstream round trips (after retries) that
	// Run absorbed and retried.
	Errors int
}

// NewRelay creates a relay mirroring the given upstream. Call Run to
// start the sync loop and serve Handler to downstream agents.
func NewRelay(cfg RelayConfig) (*Relay, error) {
	if cfg.Upstream == "" {
		return nil, fmt.Errorf("fleet: relay: empty upstream URL")
	}
	if cfg.Client == nil {
		cfg.Client = http.DefaultClient
	}
	if cfg.LongPoll <= 0 {
		cfg.LongPoll = MaxLongPollWait
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = DefaultMaxRetries
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = DefaultBaseBackoff
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = DefaultMaxBackoff
	}
	cfg.Upstream = strings.TrimRight(cfg.Upstream, "/")
	reg := NewRegistry(cfg.Shards)
	return &Relay{
		cfg: cfg,
		reg: reg,
		srv: NewServer(reg),
		rng: rand.New(rand.NewSource(int64(cfg.Seed) ^ int64(fnv32a(cfg.Upstream)))),
	}, nil
}

// Handler returns the relay's downstream HTTP handler — the full sync
// protocol served from the mirror.
func (rl *Relay) Handler() http.Handler { return rl.srv.Handler() }

// Server returns the relay's downstream server (for metrics).
func (rl *Relay) Server() *Server { return rl.srv }

// Registry returns the relay's mirror registry.
func (rl *Relay) Registry() *Registry { return rl.reg }

// Version returns the latest upstream version the relay has mirrored.
func (rl *Relay) Version() uint64 {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.version
}

// Stats returns the relay's upstream sync counters.
func (rl *Relay) Stats() RelayStats {
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.stats
}

// SyncOnce performs one upstream round trip: long-poll the upstream
// for a binary delta past the mirrored cursor and apply it. It returns
// the number of vaccines applied (0 for a 304).
func (rl *Relay) SyncOnce(ctx context.Context) (int, error) {
	rl.mu.Lock()
	since, etag := rl.version, rl.etag
	rl.mu.Unlock()

	url := fmt.Sprintf("%s%s?since=%d&wait=%s", rl.cfg.Upstream, PathPacks, since, rl.cfg.LongPoll)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Accept", ContentTypeDelta)
	if etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	resp, err := rl.cfg.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		rl.mu.Lock()
		rl.stats.Syncs++
		rl.stats.NotModified++
		rl.mu.Unlock()
		return 0, nil
	case http.StatusOK:
	default:
		return 0, fmt.Errorf("fleet: relay: upstream packs: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !isBinaryDelta(ct) {
		// A JSON delta has no per-vaccine version line to mirror;
		// applying it would fork the version space. Refuse loudly.
		return 0, fmt.Errorf("fleet: relay: upstream %s does not speak the binary delta codec (got %s)", rl.cfg.Upstream, ct)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxDeltaPayload))
	if err != nil {
		return 0, err
	}
	delta, err := DecodeDeltaBinary(body)
	if err != nil {
		return 0, fmt.Errorf("fleet: relay: decoding upstream delta: %w", err)
	}
	return rl.applyDelta(delta)
}

// applyDelta mirrors one upstream delta into the local registry and
// wakes the downstream long-pollers parked on it.
func (rl *Relay) applyDelta(d *DeltaResponse) (int, error) {
	if len(d.Versions) != len(d.Vaccines) {
		return 0, fmt.Errorf("fleet: relay: delta carries %d versions for %d vaccines", len(d.Versions), len(d.Vaccines))
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	if d.Reset || d.Version < rl.version {
		// Upstream's version line restarted below ours: rebase the
		// mirror. Downstream agents, now ahead of it, get Reset deltas
		// from our own server on their next poll.
		rl.reg.resetMirror()
		rl.stats.Resyncs++
	}
	for i := range d.Vaccines {
		rl.reg.applyRecord(walRecord{Version: d.Versions[i], Vaccine: d.Vaccines[i]})
	}
	rl.reg.ratchetVersion(d.Version)
	rl.reg.SetGenerator(d.Generator)
	rl.version = d.Version
	rl.etag = `"` + d.ETag + `"`
	rl.stats.Syncs++
	rl.stats.Deltas++
	// Wake downstream parked long-pollers: the mirror moved.
	rl.reg.notify.wake()
	return len(d.Vaccines), nil
}

// Run long-polls the upstream until the context is cancelled. Upstream
// failures are counted and retried with jittered exponential backoff;
// success resets the backoff and re-polls immediately (the park
// happens server-side).
func (rl *Relay) Run(ctx context.Context) error {
	fails := 0
	for ctx.Err() == nil {
		if _, err := rl.SyncOnce(ctx); err != nil {
			if ctx.Err() != nil {
				return nil
			}
			rl.mu.Lock()
			rl.stats.Errors++
			rl.mu.Unlock()
			d := rl.cfg.BaseBackoff << uint(fails)
			if d > rl.cfg.MaxBackoff || d <= 0 {
				d = rl.cfg.MaxBackoff
			}
			if fails < rl.cfg.MaxRetries {
				fails++
			}
			d = jitteredInterval(rl.rng, d)
			if d > rl.cfg.MaxBackoff {
				d = rl.cfg.MaxBackoff
			}
			t := time.NewTimer(d)
			select {
			case <-ctx.Done():
				t.Stop()
				return nil
			case <-t.C:
			}
			continue
		}
		fails = 0
	}
	return nil
}
