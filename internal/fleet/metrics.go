package fleet

import (
	"sync/atomic"
	"time"

	"autovac/internal/vaccine"
)

// latBuckets is the histogram resolution: bucket i counts handler
// latencies in [2^i, 2^(i+1)) microseconds, so 32 buckets span sub-µs
// to ~70 minutes with constant memory and lock-free updates.
const latBuckets = 32

// latencyHist is a fixed power-of-two histogram of handler latencies.
type latencyHist struct {
	buckets [latBuckets]atomic.Uint64
	count   atomic.Uint64
	sumUS   atomic.Uint64
}

// observe records one latency sample.
func (h *latencyHist) observe(d time.Duration) {
	us := uint64(d.Microseconds())
	h.count.Add(1)
	h.sumUS.Add(us)
	i := 0
	for v := us; v > 1 && i < latBuckets-1; v >>= 1 {
		i++
	}
	h.buckets[i].Add(1)
}

// quantile estimates the q-quantile (0..1) as the upper edge of the
// bucket where the cumulative count crosses q*total.
func (h *latencyHist) quantile(q float64) time.Duration {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target == 0 {
		target = 1
	}
	var cum uint64
	for i := 0; i < latBuckets; i++ {
		cum += h.buckets[i].Load()
		if cum >= target {
			return time.Duration(uint64(1)<<uint(i+1)) * time.Microsecond
		}
	}
	return time.Duration(uint64(1)<<latBuckets) * time.Microsecond
}

// Metrics is the server's lock-free counter set. All fields are
// updated atomically by the HTTP handlers.
type Metrics struct {
	requests     atomic.Uint64
	deltas       atomic.Uint64
	binaryDeltas atomic.Uint64
	encodeHits   atomic.Uint64
	notModified  atomic.Uint64
	longPolls    atomic.Uint64
	resyncs      atomic.Uint64
	checkins     atomic.Uint64
	errors       atomic.Uint64
	bytesOut     atomic.Uint64
	latency      latencyHist
}

// MetricsSnapshot is the JSON shape of GET /v1/metrics.
type MetricsSnapshot struct {
	// Requests counts every HTTP request handled.
	Requests uint64
	// DeltasServed counts 200 responses on /v1/packs.
	DeltasServed uint64
	// BinaryDeltas counts the subset of DeltasServed encoded with the
	// binary codec (Accept: application/x-autovac-delta).
	BinaryDeltas uint64
	// EncodeCacheHits counts pack responses served from the encoded
	// delta cache instead of a fresh shard scan + encode.
	EncodeCacheHits uint64
	// NotModified counts 304 responses on /v1/packs.
	NotModified uint64
	// LongPolls counts pack requests that parked on the publish
	// broadcaster (wait= with an up-to-date since).
	LongPolls uint64
	// Resyncs counts pack requests whose since was ahead of the
	// registry, answered with a full Reset delta.
	Resyncs uint64
	// Checkins counts accepted heartbeats.
	Checkins uint64
	// Errors counts 4xx/5xx responses.
	Errors uint64
	// BytesServed totals response body bytes.
	BytesServed uint64
	// P50 and P99 are handler latency quantiles in microseconds.
	P50Micros uint64
	P99Micros uint64
	// Version and Vaccines describe the registry.
	Version  uint64
	Vaccines int
	// ActiveHosts / Converged / MinVersion summarise recent
	// heartbeats (see FleetStatus).
	ActiveHosts int
	Converged   int
	MinVersion  uint64
	// Analysis, when present, is the accumulated corpus-analysis
	// health of the published packs (samples analysed, failed,
	// panicked, skipped, and analysis wall time).
	Analysis *vaccine.AnalysisStats `json:",omitempty"`
}

// snapshot captures the counters.
func (m *Metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:        m.requests.Load(),
		DeltasServed:    m.deltas.Load(),
		BinaryDeltas:    m.binaryDeltas.Load(),
		EncodeCacheHits: m.encodeHits.Load(),
		NotModified:     m.notModified.Load(),
		LongPolls:       m.longPolls.Load(),
		Resyncs:         m.resyncs.Load(),
		Checkins:        m.checkins.Load(),
		Errors:          m.errors.Load(),
		BytesServed:     m.bytesOut.Load(),
		P50Micros:       uint64(m.latency.quantile(0.50).Microseconds()),
		P99Micros:       uint64(m.latency.quantile(0.99).Microseconds()),
	}
}
