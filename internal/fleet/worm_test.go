package fleet_test

import (
	"testing"

	"autovac/internal/core"
	"autovac/internal/fleet"
	"autovac/internal/malware"
	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

const testKillswitch = "iuqerfsodp9ifjaposd.example"

// wormFixture builds the killswitch worm and runs it through the full
// pipeline to obtain its domain vaccine — the same path the epidemic
// experiment and examples/conficker_worm use.
func wormFixture(t *testing.T) (*malware.Sample, []vaccine.Vaccine) {
	t.Helper()
	gen := malware.NewGenerator(7)
	worm, err := gen.WormSample(testKillswitch)
	if err != nil {
		t.Fatalf("WormSample: %v", err)
	}
	sc := malware.WormScenario(testKillswitch)
	p := core.New(core.Config{Seed: 7, C2: sc})
	res, err := p.Analyze(worm)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	var domainVaccines []vaccine.Vaccine
	for _, v := range res.Vaccines {
		if v.Resource == winenv.KindDomain {
			domainVaccines = append(domainVaccines, v)
		}
	}
	if len(domainVaccines) == 0 {
		t.Fatalf("no domain vaccine extracted from killswitch worm; got %v", res.Vaccines)
	}
	return worm, domainVaccines
}

func TestWormPipelineExtractsKillswitchVaccine(t *testing.T) {
	_, vs := wormFixture(t)
	v := vs[0]
	if v.Identifier != testKillswitch {
		t.Errorf("vaccine identifier = %q, want %q", v.Identifier, testKillswitch)
	}
	if v.Polarity != vaccine.SimulatePresence {
		t.Errorf("vaccine polarity = %v, want simulate-presence", v.Polarity)
	}
	pack := &vaccine.Pack{Generator: "test", Vaccines: vs}
	if err := pack.Verify(); err != nil {
		t.Errorf("Pack.Verify: %v", err)
	}
}

func TestSimulateWormUnprotectedSpreads(t *testing.T) {
	worm, _ := wormFixture(t)
	res, err := fleet.SimulateWorm(fleet.WormConfig{
		Hosts: 32, Waves: 8, Fanout: 2, Seed: 11,
		Worm:     worm,
		Scenario: malware.WormScenario(testKillswitch),
		// No vaccines: the unprotected control.
		SyncLatency: -1,
	})
	if err != nil {
		t.Fatalf("SimulateWorm: %v", err)
	}
	if len(res.Curve) != 9 {
		t.Fatalf("curve length = %d, want 9", len(res.Curve))
	}
	if res.FinalInfected() <= 1 {
		t.Errorf("unprotected worm did not spread: curve %v", res.Curve)
	}
	if res.Immunized != 0 {
		t.Errorf("control run immunized %d hosts", res.Immunized)
	}
	for i := 1; i < len(res.Curve); i++ {
		if res.Curve[i] < res.Curve[i-1] {
			t.Errorf("infection curve decreased at wave %d: %v", i, res.Curve)
		}
	}
}

func TestSimulateWormVaccinatedConvergesBelowControl(t *testing.T) {
	worm, vs := wormFixture(t)
	sc := malware.WormScenario(testKillswitch)

	control, err := fleet.SimulateWorm(fleet.WormConfig{
		Hosts: 32, Waves: 8, Fanout: 2, Seed: 11,
		Worm: worm, Scenario: sc, SyncLatency: -1,
	})
	if err != nil {
		t.Fatalf("control: %v", err)
	}
	immediate, err := fleet.SimulateWorm(fleet.WormConfig{
		Hosts: 32, Waves: 8, Fanout: 2, Seed: 11,
		Worm: worm, Scenario: sc, Vaccines: vs,
		PublishWave: 0, SyncLatency: 0,
	})
	if err != nil {
		t.Fatalf("immediate sync: %v", err)
	}
	// Patient zero is already infected when the pack lands, so only the
	// 31 clean hosts count as immunized.
	if immediate.Immunized != 31 {
		t.Errorf("immunized = %d, want 31", immediate.Immunized)
	}
	// Vaccines land before the first attack wave: nobody beyond patient
	// zero gets infected.
	if immediate.FinalInfected() != 1 {
		t.Errorf("vaccinated fleet still infected: curve %v", immediate.Curve)
	}
	if immediate.FinalInfected() >= control.FinalInfected() {
		t.Errorf("vaccinated (%d) not below control (%d)",
			immediate.FinalInfected(), control.FinalInfected())
	}
	if immediate.Repelled == 0 {
		t.Errorf("vaccinated fleet repelled no attacks")
	}

	// A slower sync lands between: some hosts fall before the vaccine.
	late, err := fleet.SimulateWorm(fleet.WormConfig{
		Hosts: 32, Waves: 8, Fanout: 2, Seed: 11,
		Worm: worm, Scenario: sc, Vaccines: vs,
		PublishWave: 0, SyncLatency: 3,
	})
	if err != nil {
		t.Fatalf("late sync: %v", err)
	}
	if late.FinalInfected() < immediate.FinalInfected() ||
		late.FinalInfected() > control.FinalInfected() {
		t.Errorf("late-sync infections %d not between immediate %d and control %d",
			late.FinalInfected(), immediate.FinalInfected(), control.FinalInfected())
	}
	// After the sync wave the curve must be flat: every remaining clean
	// host is immunized.
	c := late.Curve
	for i := 5; i < len(c); i++ {
		if c[i] != c[4] {
			t.Errorf("curve kept growing after immunization: %v", c)
			break
		}
	}
}

func TestSimulateWormDeterministic(t *testing.T) {
	worm, vs := wormFixture(t)
	sc := malware.WormScenario(testKillswitch)
	cfg := fleet.WormConfig{
		Hosts: 24, Waves: 6, Fanout: 2, Seed: 99,
		Worm: worm, Scenario: sc, Vaccines: vs,
		PublishWave: 1, SyncLatency: 2,
	}
	a, err := fleet.SimulateWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fleet.SimulateWorm(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Curve {
		if a.Curve[i] != b.Curve[i] {
			t.Fatalf("same seed, different curves: %v vs %v", a.Curve, b.Curve)
		}
	}
	if a.Attempts != b.Attempts || a.Repelled != b.Repelled {
		t.Errorf("same seed, different stats: %+v vs %+v", a, b)
	}
}

func TestSimulateWormValidation(t *testing.T) {
	if _, err := fleet.SimulateWorm(fleet.WormConfig{}); err == nil {
		t.Error("SimulateWorm without a worm sample should fail")
	}
}
