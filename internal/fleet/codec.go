package fleet

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"strings"

	"autovac/internal/vaccine"
)

// Binary delta codec — the wire format negotiated on GET /v1/packs.
//
// JSON stays the default and is byte-identical to the pre-codec
// protocol; a client that sends `Accept: application/x-autovac-delta`
// gets the same DeltaResponse as a compact binary frame instead:
//
//	bytes 0..3  magic "AVD1"
//	byte  4     flags: bit0 payload is DEFLATE-compressed
//	                   bit1 Complete
//	                   bit2 Reset
//	payload     (raw or DEFLATE, per bit0)
//	  uvarint   Since
//	  uvarint   Version
//	  string    ETag        (uvarint length + bytes)
//	  string    Generator
//	  uvarint   len(Versions), then zigzag-varint deltas between
//	            consecutive per-vaccine publish versions (ascending in
//	            practice, so each delta is one or two bytes)
//	  vaccines  vaccine.AppendBinary section (string table + records)
//
// Integers are varints, strings are interned once per frame by the
// vaccine layer, and payloads past DeltaCompressMin are DEFLATE-
// compressed inside the frame — so Content-Type alone fully describes
// the body and intermediaries cannot half-apply the encoding.
//
// The binary frame additionally carries the per-vaccine publish
// versions (DeltaResponse.Versions, never serialised in JSON): a relay
// needs them to mirror its upstream's version line exactly, which is
// what keeps `?since=` cursors meaningful across tiers.

// Content types of the two delta encodings. A client opts into the
// binary codec with `Accept: application/x-autovac-delta`; the server
// answers with the matching Content-Type, and everything else keeps
// receiving application/json byte-identical to the pre-codec protocol.
const (
	ContentTypeJSON  = "application/json"
	ContentTypeDelta = "application/x-autovac-delta"
)

// deltaMagic heads every binary delta frame.
const deltaMagic = "AVD1"

// Frame flag bits.
const (
	deltaFlagCompressed = 1 << iota
	deltaFlagComplete
	deltaFlagReset

	deltaKnownFlags = deltaFlagReset<<1 - 1
)

// DeltaCompressMin is the payload size past which EncodeDeltaBinary
// DEFLATE-compresses the frame. Below it the compressor's overhead
// outweighs its savings (a one-vaccine delta is already mostly-unique
// bytes); above it packs compress well because identifiers, IDs, and
// the hex digest share structure.
const DeltaCompressMin = 512

// maxDeltaPayload bounds the decompressed size DecodeDeltaBinary will
// inflate, so a hostile tiny frame cannot balloon into gigabytes. Far
// above any real pack (the WAL applies the same 16 MiB judgement
// per record).
const maxDeltaPayload = 1 << 28

// ErrDeltaMalformed is wrapped by every binary delta decoding failure.
var ErrDeltaMalformed = errors.New("fleet: malformed binary delta")

// EncodeDeltaBinary encodes one DeltaResponse as a binary frame,
// compressing the payload when it is DeltaCompressMin bytes or more.
func EncodeDeltaBinary(d *DeltaResponse) ([]byte, error) {
	if len(d.Versions) != 0 && len(d.Versions) != len(d.Vaccines) {
		return nil, fmt.Errorf("fleet: encoding delta: %d versions for %d vaccines",
			len(d.Versions), len(d.Vaccines))
	}
	payload := binary.AppendUvarint(nil, d.Since)
	payload = binary.AppendUvarint(payload, d.Version)
	payload = appendString(payload, d.ETag)
	payload = appendString(payload, d.Generator)
	payload = binary.AppendUvarint(payload, uint64(len(d.Versions)))
	prev := uint64(0)
	for _, v := range d.Versions {
		payload = binary.AppendVarint(payload, int64(v-prev))
		prev = v
	}
	var err error
	payload, err = vaccine.AppendBinary(payload, d.Vaccines)
	if err != nil {
		return nil, err
	}

	flags := byte(0)
	if d.Complete {
		flags |= deltaFlagComplete
	}
	if d.Reset {
		flags |= deltaFlagReset
	}
	if len(payload) >= DeltaCompressMin {
		var zb bytes.Buffer
		zw, err := flate.NewWriter(&zb, flate.BestSpeed)
		if err != nil {
			return nil, err
		}
		if _, err := zw.Write(payload); err != nil {
			return nil, err
		}
		if err := zw.Close(); err != nil {
			return nil, err
		}
		payload = zb.Bytes()
		flags |= deltaFlagCompressed
	}

	out := make([]byte, 0, len(deltaMagic)+1+len(payload))
	out = append(out, deltaMagic...)
	out = append(out, flags)
	return append(out, payload...), nil
}

// appendString emits one length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// DecodeDeltaBinary decodes a binary delta frame. Every failure —
// short frame, bad magic, unknown flags, truncated field, corrupt
// DEFLATE stream, trailing garbage — returns an error wrapping
// ErrDeltaMalformed (or vaccine.ErrBinaryMalformed for the vaccine
// section); arbitrary input never panics and never yields a
// structurally inconsistent response.
func DecodeDeltaBinary(data []byte) (*DeltaResponse, error) {
	if len(data) < len(deltaMagic)+1 {
		return nil, fmt.Errorf("%w: %d-byte frame", ErrDeltaMalformed, len(data))
	}
	if string(data[:len(deltaMagic)]) != deltaMagic {
		return nil, fmt.Errorf("%w: bad magic %q", ErrDeltaMalformed, data[:len(deltaMagic)])
	}
	flags := data[len(deltaMagic)]
	if flags&^byte(deltaKnownFlags) != 0 {
		return nil, fmt.Errorf("%w: unknown flags %#x", ErrDeltaMalformed, flags)
	}
	payload := data[len(deltaMagic)+1:]
	if flags&deltaFlagCompressed != 0 {
		zr := flate.NewReader(bytes.NewReader(payload))
		raw, err := io.ReadAll(io.LimitReader(zr, maxDeltaPayload+1))
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("%w: inflating payload: %v", ErrDeltaMalformed, err)
		}
		if len(raw) > maxDeltaPayload {
			return nil, fmt.Errorf("%w: payload exceeds %d bytes", ErrDeltaMalformed, maxDeltaPayload)
		}
		payload = raw
	}

	d := &DeltaResponse{
		Complete: flags&deltaFlagComplete != 0,
		Reset:    flags&deltaFlagReset != 0,
	}
	var ok bool
	if d.Since, payload, ok = readUvarint(payload); !ok {
		return nil, fmt.Errorf("%w: truncated Since", ErrDeltaMalformed)
	}
	if d.Version, payload, ok = readUvarint(payload); !ok {
		return nil, fmt.Errorf("%w: truncated Version", ErrDeltaMalformed)
	}
	if d.ETag, payload, ok = readString(payload); !ok {
		return nil, fmt.Errorf("%w: truncated ETag", ErrDeltaMalformed)
	}
	if d.Generator, payload, ok = readString(payload); !ok {
		return nil, fmt.Errorf("%w: truncated Generator", ErrDeltaMalformed)
	}
	nver, payload, ok := readUvarint(payload)
	if !ok || nver > uint64(len(payload))+1 {
		return nil, fmt.Errorf("%w: bad version list", ErrDeltaMalformed)
	}
	if nver > 0 {
		d.Versions = make([]uint64, 0, nver)
		prev := uint64(0)
		for i := uint64(0); i < nver; i++ {
			diff, n := binary.Varint(payload)
			if n <= 0 {
				return nil, fmt.Errorf("%w: truncated version delta", ErrDeltaMalformed)
			}
			payload = payload[n:]
			prev += uint64(diff)
			d.Versions = append(d.Versions, prev)
		}
	}
	vs, rest, err := vaccine.DecodeBinary(payload)
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrDeltaMalformed, len(rest))
	}
	if len(d.Versions) != 0 && len(d.Versions) != len(vs) {
		return nil, fmt.Errorf("%w: %d versions for %d vaccines", ErrDeltaMalformed, len(d.Versions), len(vs))
	}
	d.Vaccines = vs
	return d, nil
}

// readUvarint consumes one uvarint, returning the remainder.
func readUvarint(data []byte) (uint64, []byte, bool) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, false
	}
	return v, data[n:], true
}

// readString consumes one length-prefixed string.
func readString(data []byte) (string, []byte, bool) {
	n, rest, ok := readUvarint(data)
	if !ok || n > uint64(len(rest)) {
		return "", nil, false
	}
	return string(rest[:n]), rest[n:], true
}

// isBinaryDelta reports whether a Content-Type names the binary codec.
func isBinaryDelta(contentType string) bool {
	return strings.HasPrefix(contentType, ContentTypeDelta)
}

// acceptsBinaryDelta reports whether an Accept header opts into the
// binary codec.
func acceptsBinaryDelta(accept string) bool {
	return strings.Contains(accept, ContentTypeDelta)
}
