package fleet

import (
	"fmt"
	"math/rand"
	"sync"

	"autovac/internal/c2"
	"autovac/internal/deploy"
	"autovac/internal/emu"
	"autovac/internal/malware"
	"autovac/internal/trace"
	"autovac/internal/vaccine"
	"autovac/internal/winapi"
	"autovac/internal/winenv"
)

// WormConfig configures an epidemic simulation: a self-propagating
// sample races vaccine distribution across a fleet of emulated hosts.
type WormConfig struct {
	// Hosts is the fleet size (default 64).
	Hosts int
	// InitialInfected seeds patient zero(s) (default 1).
	InitialInfected int
	// Waves is the number of propagation rounds (default 10).
	Waves int
	// Fanout is how many infection attempts each infected host makes
	// per wave (default 2).
	Fanout int
	// Worm is the sample that propagates. A host counts as infected
	// when the worm runs to HALT on it; a stand-down (ExitProcess, e.g.
	// the killswitch resolving) leaves the host clean.
	Worm *malware.Sample
	// Scenario is the network world every host sees (each host gets its
	// own responder). Nil leaves the default network.
	Scenario *c2.Scenario
	// Vaccines are published to the fleet registry at the start of wave
	// PublishWave (0-based).
	Vaccines []vaccine.Vaccine
	// PublishWave is when the vaccine pack is published.
	PublishWave int
	// SyncLatency is how many waves after publication the hosts'
	// delta sync lands (0 = same wave). Negative means the fleet never
	// syncs — the unprotected control run.
	SyncLatency int
	// Seed drives host identities, target selection, and emulation.
	Seed uint64
	// MaxSteps bounds each worm run (0 = emulator default).
	MaxSteps int
}

// WormResult is the outcome of one epidemic simulation.
type WormResult struct {
	// Curve holds the infected-host count after each wave; Curve[0] is
	// the initial seeding, so len(Curve) == Waves+1.
	Curve []int
	// Attempts counts infection attempts against clean hosts.
	Attempts int
	// Repelled counts attempts the target survived (worm stood down).
	Repelled int
	// Immunized counts hosts that were still clean when the vaccine
	// pack landed on them — the hosts the sync actually protected.
	// Already-infected hosts receive the pack too but are not counted.
	Immunized int
	// RegistryVersion is the fleet registry's final version.
	RegistryVersion uint64
}

// FinalInfected returns the infected count after the last wave.
func (r *WormResult) FinalInfected() int { return r.Curve[len(r.Curve)-1] }

// wormHost is one fleet member's state.
type wormHost struct {
	env      *winenv.Env
	daemon   *deploy.Daemon
	infected bool
}

// SimulateWorm races worm propagation against vaccine delta sync. Each
// wave, every infected host attacks Fanout random fleet members; a
// clean target runs the worm in its own environment and becomes
// infected when the sample completes (trace exit HALT). Vaccines are
// published to a fleet Registry at PublishWave and land on every host
// SyncLatency waves later via the registry's delta path and the host's
// deploy daemon — exactly what an Agent's SyncOnce applies, minus the
// HTTP round trip. Infection trials within a wave run concurrently
// (one goroutine per distinct target); target selection stays on the
// caller's goroutine, so a fixed Seed gives a reproducible curve.
func SimulateWorm(cfg WormConfig) (*WormResult, error) {
	if cfg.Worm == nil {
		return nil, fmt.Errorf("fleet: worm simulation needs a worm sample")
	}
	if cfg.Hosts <= 0 {
		cfg.Hosts = 64
	}
	if cfg.InitialInfected <= 0 {
		cfg.InitialInfected = 1
	}
	if cfg.InitialInfected > cfg.Hosts {
		cfg.InitialInfected = cfg.Hosts
	}
	if cfg.Waves <= 0 {
		cfg.Waves = 10
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 2
	}

	hosts := make([]*wormHost, cfg.Hosts)
	for i := range hosts {
		id := winenv.DefaultIdentity()
		id.ComputerName = fmt.Sprintf("WORM-PC-%03d", i)
		id.IPAddress = fmt.Sprintf("10.2.%d.%d", i/250, i%250+1)
		env := winenv.New(id)
		if cfg.Scenario != nil {
			env.Net().SetResponder(cfg.Scenario.NewResponder())
		}
		hosts[i] = &wormHost{
			env:    env,
			daemon: deploy.NewDaemon(env, cfg.Seed+uint64(i)),
		}
	}
	for i := 0; i < cfg.InitialInfected; i++ {
		hosts[i].infected = true
	}

	reg := NewRegistry(0)
	rng := rand.New(rand.NewSource(int64(cfg.Seed)))
	registry := winapi.StandardC2()

	res := &WormResult{Curve: []int{cfg.InitialInfected}}
	installWave := -1
	if cfg.SyncLatency >= 0 {
		installWave = cfg.PublishWave + cfg.SyncLatency
	}

	for wave := 0; wave < cfg.Waves; wave++ {
		if wave == cfg.PublishWave && len(cfg.Vaccines) > 0 {
			if _, _, err := reg.Publish(cfg.Vaccines...); err != nil {
				return nil, err
			}
		}
		if wave == installWave && reg.Latest() > 0 {
			delta := reg.Delta(0)
			for _, h := range hosts {
				h.daemon.InstallPack(delta.Vaccines)
				// Only a clean host is immunized by the install; an
				// already-infected host gets the pack but stays
				// infected (vaccines immunize, they don't disinfect),
				// and counting it overstated the epidemic tables.
				if !h.infected {
					res.Immunized++
				}
			}
		}

		// Pick this wave's victims on the sim goroutine (deterministic),
		// then run the distinct clean targets' trials concurrently.
		targets := make(map[int]bool)
		for hi, h := range hosts {
			if !h.infected {
				continue
			}
			for f := 0; f < cfg.Fanout; f++ {
				ti := rng.Intn(cfg.Hosts)
				if ti == hi || hosts[ti].infected || targets[ti] {
					continue
				}
				res.Attempts++
				targets[ti] = true
			}
		}
		order := make([]int, 0, len(targets))
		for ti := range targets {
			order = append(order, ti)
		}

		type outcome struct {
			infected bool
			err      error
		}
		outcomes := make(map[int]*outcome, len(order))
		var wg sync.WaitGroup
		for _, ti := range order {
			oc := &outcome{}
			outcomes[ti] = oc
			wg.Add(1)
			go func(h *wormHost, seed uint64, oc *outcome) {
				defer wg.Done()
				defer func() {
					if r := recover(); r != nil {
						oc.err = fmt.Errorf("worm run panicked: %v", r)
					}
				}()
				tr, err := emu.Run(cfg.Worm.Program, h.env, emu.Options{
					Seed:     seed,
					Registry: registry,
					MaxSteps: cfg.MaxSteps,
				})
				if err != nil {
					oc.err = err
					return
				}
				oc.infected = tr.Exit == trace.ExitHalt
			}(hosts[ti], cfg.Seed+uint64(ti), oc)
		}
		wg.Wait()

		for _, ti := range order {
			oc := outcomes[ti]
			if oc.err != nil {
				return nil, fmt.Errorf("fleet: worm on host %d: %w", ti, oc.err)
			}
			if oc.infected {
				hosts[ti].infected = true
			} else {
				res.Repelled++
			}
		}

		infected := 0
		for _, h := range hosts {
			if h.infected {
				infected++
			}
		}
		res.Curve = append(res.Curve, infected)
	}
	res.RegistryVersion = reg.Latest()
	return res, nil
}
