package fleet

import "sync"

// notifier is the publish broadcaster behind the streaming delta push:
// long-poll sync handlers park on the current generation channel and
// every publish closes it, waking all of them at once. Closing a
// channel is the one Go primitive that broadcasts to any number of
// waiters without tracking them, so a wake is O(1) for the publisher
// regardless of how many agents are parked.
type notifier struct {
	mu sync.Mutex
	ch chan struct{}
}

func newNotifier() *notifier {
	return &notifier{ch: make(chan struct{})}
}

// wait returns the channel the next wake will close. To avoid missed
// wakeups, callers must grab the channel BEFORE re-checking the
// condition it signals (the registry version): a publish that lands
// between the check and the park closes the channel the caller already
// holds, so the park falls through immediately.
func (n *notifier) wait() <-chan struct{} {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.ch
}

// wake broadcasts to every current waiter and resets for the next
// generation.
func (n *notifier) wake() {
	n.mu.Lock()
	close(n.ch)
	n.ch = make(chan struct{})
	n.mu.Unlock()
}
