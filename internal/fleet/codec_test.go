package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strings"
	"testing"

	"autovac/internal/vaccine"
)

func mustEncodeBinary(t *testing.T, d *DeltaResponse) []byte {
	t.Helper()
	enc, err := EncodeDeltaBinary(d)
	if err != nil {
		t.Fatal(err)
	}
	return enc
}

func TestDeltaBinaryRoundTrip(t *testing.T) {
	reg := NewRegistry(0)
	reg.SetGenerator("codec-test")
	if _, _, err := reg.Publish(testVaccines("rt", 24)...); err != nil {
		t.Fatal(err)
	}
	for _, since := range []uint64{0, 10, 23} {
		d := reg.Delta(since)
		out, err := DecodeDeltaBinary(mustEncodeBinary(t, d))
		if err != nil {
			t.Fatalf("since=%d: %v", since, err)
		}
		if out.Since != d.Since || out.Version != d.Version ||
			out.Complete != d.Complete || out.Reset != d.Reset ||
			out.ETag != d.ETag || out.Generator != d.Generator {
			t.Fatalf("since=%d: frame fields changed:\nin:  %+v\nout: %+v", since, d, out)
		}
		if len(out.Vaccines) != len(d.Vaccines) || len(out.Versions) != len(d.Versions) {
			t.Fatalf("since=%d: %d/%d vaccines, %d/%d versions", since,
				len(out.Vaccines), len(d.Vaccines), len(out.Versions), len(d.Versions))
		}
		for i := range d.Vaccines {
			if d.Vaccines[i].Fingerprint() != out.Vaccines[i].Fingerprint() {
				t.Fatalf("since=%d: vaccine %d content changed", since, i)
			}
			if d.Versions[i] != out.Versions[i] {
				t.Fatalf("since=%d: version %d: %d != %d", since, i, d.Versions[i], out.Versions[i])
			}
		}
		// The decoded pack re-digests to the same ETag: content identity
		// survived the codec.
		p := vaccine.Pack{Generator: out.Generator, Vaccines: out.Vaccines}
		if p.Digest() != out.ETag {
			t.Fatalf("since=%d: decoded pack digest %s != ETag %s", since, p.Digest(), out.ETag)
		}
	}

	// Reset flag survives too.
	d := reg.Delta(0)
	d.Reset = true
	out, err := DecodeDeltaBinary(mustEncodeBinary(t, d))
	if err != nil {
		t.Fatal(err)
	}
	if !out.Reset {
		t.Fatal("Reset flag lost")
	}
}

// TestDeltaBinaryAtLeastHalvesJSON pins the codec's reason to exist:
// on a multi-vaccine delta (the control-plane study publishes 8 per
// wave) the binary body must be at most half the JSON body.
func TestDeltaBinaryAtLeastHalvesJSON(t *testing.T) {
	reg := NewRegistry(0)
	reg.SetGenerator("codec-test")
	if _, _, err := reg.Publish(testVaccines("sz", 8)...); err != nil {
		t.Fatal(err)
	}
	d := reg.Delta(0)
	bin := mustEncodeBinary(t, d)
	js, _, err := encodeDelta(d, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(bin)*2 > len(js) {
		t.Fatalf("binary %dB vs JSON %dB: less than 2x smaller", len(bin), len(js))
	}
}

// TestJSONFallbackByteIdentical pins that negotiation cannot perturb
// legacy clients: the no-Accept response body is the exact bytes the
// pre-codec server wrote (json.Encoder form, trailing newline, no
// Versions field).
func TestJSONFallbackByteIdentical(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().SetGenerator("codec-test")
	srv.Registry().Publish(testVaccines("json", 6)...)

	resp := getDelta(t, ts.URL, "0", "")
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("Content-Type"); got != ContentTypeJSON {
		t.Fatalf("Content-Type %q", got)
	}
	var legacy bytes.Buffer
	if err := json.NewEncoder(&legacy).Encode(srv.Registry().Delta(0)); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, legacy.Bytes()) {
		t.Fatalf("JSON response diverged from pre-codec form:\ngot:  %q\nwant: %q", body, legacy.Bytes())
	}
	if bytes.Contains(body, []byte("Versions")) {
		t.Fatal("per-vaccine versions leaked into the JSON encoding")
	}
}

func TestServerNegotiatesBinaryDelta(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().SetGenerator("codec-test")
	srv.Registry().Publish(testVaccines("neg", 12)...)

	req, _ := http.NewRequest(http.MethodGet, ts.URL+PathPacks+"?since=0", nil)
	req.Header.Set("Accept", ContentTypeDelta)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !isBinaryDelta(ct) {
		t.Fatalf("Content-Type %q, want binary", ct)
	}
	d, err := DecodeDeltaBinary(body)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Vaccines) != 12 || len(d.Versions) != 12 {
		t.Fatalf("binary delta: %d vaccines, %d versions", len(d.Vaccines), len(d.Versions))
	}
	// Same ETag vocabulary as JSON: a binary client's If-None-Match
	// gets the 304 fast path.
	etag := resp.Header.Get("ETag")
	if etag != `"`+d.ETag+`"` {
		t.Fatalf("ETag header %q vs body %q", etag, d.ETag)
	}
	req.Header.Set("If-None-Match", etag)
	resp2, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusNotModified {
		t.Fatalf("binary If-None-Match status %d, want 304", resp2.StatusCode)
	}
	snap := srv.MetricsSnapshot()
	if snap.BinaryDeltas != 1 {
		t.Fatalf("BinaryDeltas = %d, want 1", snap.BinaryDeltas)
	}
}

// TestEncodeCacheFanout pins the (since, version, encoding) cache: the
// second request at a cursor is a cache hit, each encoding caches
// independently, and a publish invalidates the generation.
func TestEncodeCacheFanout(t *testing.T) {
	srv, ts := newTestServer(t)
	srv.Registry().Publish(testVaccines("cache", 4)...)

	fetch := func(accept string) string {
		t.Helper()
		req, _ := http.NewRequest(http.MethodGet, ts.URL+PathPacks+"?since=0", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("Content-Type")
	}

	fetch("") // miss: first JSON encode
	fetch("") // hit
	if got := fetch(ContentTypeDelta); !isBinaryDelta(got) {
		t.Fatalf("Content-Type %q", got) // miss: binary cached separately
	}
	fetch(ContentTypeDelta) // hit
	if snap := srv.MetricsSnapshot(); snap.EncodeCacheHits != 2 {
		t.Fatalf("EncodeCacheHits = %d, want 2", snap.EncodeCacheHits)
	}

	// A publish moves the registry version: the next fetch must be a
	// fresh encode (a hit here would serve the stale 4-vaccine body).
	srv.Registry().Publish(testVaccines("cache2", 2)...)
	fetch("")
	if snap := srv.MetricsSnapshot(); snap.EncodeCacheHits != 2 {
		t.Fatalf("EncodeCacheHits = %d after publish, want still 2", snap.EncodeCacheHits)
	}
}

func TestDecodeDeltaBinaryMalformed(t *testing.T) {
	reg := NewRegistry(0)
	reg.Publish(testVaccines("mal", 16)...)
	valid := mustEncodeBinary(t, reg.Delta(0))

	truncCompressed := make([]byte, len(valid)-7)
	copy(truncCompressed, valid)
	trailing := append(append([]byte{}, mustEncodeBinary(t, &DeltaResponse{ETag: "x"})...), 0xAB)

	cases := map[string][]byte{
		"empty":               {},
		"short frame":         []byte("AVD"),
		"bad magic":           append([]byte("XXXX\x00"), valid[5:]...),
		"unknown flags":       {'A', 'V', 'D', '1', 0x80, 0},
		"empty payload":       []byte("AVD1\x00"),
		"truncated deflate":   truncCompressed,
		"trailing bytes":      trailing,
		"not deflate":         []byte("AVD1\x01garbage-not-a-deflate-stream"),
		"json posing as AVD1": append([]byte("AVD1\x00"), []byte(`{"Since":0}`)...),
	}
	for name, data := range cases {
		d, err := DecodeDeltaBinary(data)
		if err == nil {
			t.Errorf("%s: decoded successfully: %+v", name, d)
			continue
		}
		if !errors.Is(err, ErrDeltaMalformed) && !errors.Is(err, vaccine.ErrBinaryMalformed) {
			t.Errorf("%s: untyped error %v", name, err)
		}
	}
}

func TestAcceptAndContentTypeMatching(t *testing.T) {
	if !acceptsBinaryDelta(ContentTypeDelta) ||
		!acceptsBinaryDelta("application/json, "+ContentTypeDelta) {
		t.Fatal("binary Accept not recognised")
	}
	if acceptsBinaryDelta("application/json") || acceptsBinaryDelta("") {
		t.Fatal("JSON Accept misread as binary")
	}
	if !isBinaryDelta(ContentTypeDelta) || !isBinaryDelta(ContentTypeDelta+"; charset=binary") {
		t.Fatal("binary Content-Type not recognised")
	}
	if isBinaryDelta(ContentTypeJSON) {
		t.Fatal("JSON Content-Type misread as binary")
	}
	if !strings.HasPrefix(ContentTypeDelta, "application/") {
		t.Fatal("content type not a media type")
	}
}
