package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"autovac/internal/vaccine"
	"autovac/internal/winenv"
)

// simSyncBound caps the sync attempts one agent spends converging on
// one wave; with a quiescent registry a single delta fetch suffices,
// so hitting the bound means the server is misbehaving.
const simSyncBound = 10

// SimConfig configures a fleet simulation.
type SimConfig struct {
	// Hosts is the number of concurrent agents (default 100).
	Hosts int
	// Waves are successive pack publishes: wave 0 lands before the
	// agents' first sync, later waves are delta-synced.
	Waves [][]vaccine.Vaccine
	// Seed drives host identities, slice replay, and backoff jitter.
	Seed uint64
	// Generator labels the published packs.
	Generator string
	// FailEveryNth injects a 500 on every Nth pack request (0 = off),
	// exercising the agents' retry path.
	FailEveryNth int
	// Identity customises host i's identity; by default hosts are
	// FLEET-PC-<i> at 10.1.<i/250>.<i%250+1>.
	Identity func(i int) winenv.HostIdentity
	// Prepare runs on each freshly created host environment (e.g.
	// malware.PrepareBenignEnv) before its agent starts.
	Prepare func(i int, env *winenv.Env)
	// BaseBackoff overrides the agents' retry backoff base (default
	// 2ms, kept small so injected failures don't dominate wall time).
	BaseBackoff time.Duration
}

// SimResult is the outcome of a fleet simulation.
type SimResult struct {
	// Version is the registry's final version.
	Version uint64
	// Agents are the simulated hosts' agents, in host order, each
	// still bound to its environment and daemon for post-simulation
	// attack replay.
	Agents []*Agent
	// Converged counts agents whose applied version is Version.
	Converged int
	// Failed counts agents that failed (error or panic) in at least
	// one wave; their failures are in AgentErrors.
	Failed int
	// AgentErrors holds each host's first failure, indexed like
	// Agents (nil for healthy hosts). One host's failure never aborts
	// the simulation: the remaining hosts keep converging.
	AgentErrors []error
	// Server is the server's final metrics snapshot.
	Server MetricsSnapshot
	// Stats aggregates the agents' counters.
	Stats AgentStats
}

// flakyHandler fails every Nth pack request with a 500, simulating a
// lossy path between fleet and server.
type flakyHandler struct {
	next     http.Handler
	everyNth int64
	packGets atomic.Int64
}

func (f *flakyHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if f.everyNth > 0 && r.URL.Path == PathPacks {
		if n := f.packGets.Add(1); n%f.everyNth == 0 {
			http.Error(w, "injected fault", http.StatusInternalServerError)
			return
		}
	}
	f.next.ServeHTTP(w, r)
}

// simAgentHook, when set, runs inside each agent goroutine (within
// its recovery scope) before every wave. Tests use it to inject
// per-host panics and errors into simulations.
var simAgentHook func(host int)

// Simulate drives a fleet of concurrent host agents against one sync
// server over a loopback listener: it publishes each wave in turn,
// lets every agent converge to the registry's latest version via
// delta sync, then has each agent poll once more (the steady-state
// 304 path) before the next wave. It returns once all waves are
// distributed and the server is shut down.
//
// Host failures are isolated: an agent goroutine that errors, gets
// stuck, or panics records its failure (panics with captured stack)
// and the simulation carries on with the remaining hosts through
// every wave. The returned SimResult is always non-nil once the
// server is up; the error joins all per-host failures in host order.
func Simulate(ctx context.Context, cfg SimConfig) (*SimResult, error) {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 100
	}
	if cfg.BaseBackoff <= 0 {
		cfg.BaseBackoff = 2 * time.Millisecond
	}
	reg := NewRegistry(0)
	reg.SetGenerator(cfg.Generator)
	srv := NewServer(reg)
	flaky := &flakyHandler{next: srv.Handler(), everyNth: int64(cfg.FailEveryNth)}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("fleet: simulate: %w", err)
	}
	hs := &http.Server{Handler: flaky}
	serveErr := make(chan error, 1)
	go func() {
		// A panic in the HTTP server must surface as a simulation
		// failure, not kill the process from a bare goroutine.
		defer func() {
			if r := recover(); r != nil {
				serveErr <- fmt.Errorf("fleet: simulate: server panic: %v\n%s", r, debug.Stack())
			}
		}()
		serveErr <- hs.Serve(ln)
	}()
	defer func() {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		hs.Shutdown(sctx)
		cancel()
		<-serveErr
	}()
	baseURL := "http://" + ln.Addr().String()

	agents := make([]*Agent, cfg.Hosts)
	for i := range agents {
		var id winenv.HostIdentity
		if cfg.Identity != nil {
			id = cfg.Identity(i)
		} else {
			id = winenv.DefaultIdentity()
			id.ComputerName = fmt.Sprintf("FLEET-PC-%03d", i)
			id.IPAddress = fmt.Sprintf("10.1.%d.%d", i/250, i%250+1)
		}
		env := winenv.New(id)
		if cfg.Prepare != nil {
			cfg.Prepare(i, env)
		}
		agents[i] = NewAgent(AgentConfig{
			BaseURL:     baseURL,
			Env:         env,
			Seed:        cfg.Seed + uint64(i),
			BaseBackoff: cfg.BaseBackoff,
		})
	}

	waves := cfg.Waves
	if len(waves) == 0 {
		waves = [][]vaccine.Vaccine{nil}
	}
	agentErrs := make([]error, len(agents))
	for _, wave := range waves {
		if _, _, err := reg.Publish(wave...); err != nil {
			return nil, err
		}
		latest := reg.Latest()
		var wg sync.WaitGroup
		for hi, a := range agents {
			if agentErrs[hi] != nil {
				// The host already failed in an earlier wave; leave it
				// behind rather than hammering the server.
				continue
			}
			wg.Add(1)
			go func(hi int, a *Agent) {
				defer wg.Done()
				agentErrs[hi] = syncAgentWave(ctx, hi, a, latest)
			}(hi, a)
		}
		wg.Wait()
	}

	res := &SimResult{
		Version:     reg.Latest(),
		Agents:      agents,
		AgentErrors: agentErrs,
		Server:      srv.MetricsSnapshot(),
	}
	var failures []error
	for hi, a := range agents {
		if agentErrs[hi] != nil {
			res.Failed++
			failures = append(failures, agentErrs[hi])
		}
		if a.Version() == res.Version {
			res.Converged++
		}
		st := a.Stats()
		res.Stats.Syncs += st.Syncs
		res.Stats.Deltas += st.Deltas
		res.Stats.NotModified += st.NotModified
		res.Stats.Retries += st.Retries
		res.Stats.Applied += st.Applied
		res.Stats.Skipped += st.Skipped
		res.Stats.Failed += st.Failed
		res.Stats.Checkins += st.Checkins
	}
	return res, errors.Join(failures...)
}

// syncAgentWave converges one agent on one wave with panic
// containment: a panic anywhere in the agent's sync path becomes this
// host's error instead of crashing the simulation.
func syncAgentWave(ctx context.Context, host int, a *Agent, latest uint64) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("fleet: %s: panic: %v\n%s", a.Host(), r, debug.Stack())
		}
	}()
	if simAgentHook != nil {
		simAgentHook(host)
	}
	for n := 0; a.Version() < latest; n++ {
		if n >= simSyncBound {
			return fmt.Errorf("fleet: %s stuck at version %d (latest %d)",
				a.Host(), a.Version(), latest)
		}
		if _, err := a.SyncOnce(ctx); err != nil {
			return fmt.Errorf("fleet: %s: %w", a.Host(), err)
		}
	}
	// Steady state: one more poll, served as a 304.
	if _, err := a.SyncOnce(ctx); err != nil {
		return fmt.Errorf("fleet: %s: %w", a.Host(), err)
	}
	return nil
}
