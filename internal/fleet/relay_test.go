package fleet

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"autovac/internal/winenv"
)

// relayHarness is one origin + one relay over real loopback HTTP.
type relayHarness struct {
	origin *Server
	relay  *Relay
	// originTS serves whatever handler swapOrigin last installed —
	// restart tests swap in a fresh origin under the same URL, exactly
	// like a process restart behind a stable address.
	originTS *httptest.Server
	relayTS  *httptest.Server
	handler  atomic.Pointer[http.Handler]
}

func newRelayHarness(t *testing.T) *relayHarness {
	t.Helper()
	h := &relayHarness{origin: NewServer(NewRegistry(0))}
	h.origin.Registry().SetGenerator("relay-test")
	hl := h.origin.Handler()
	h.handler.Store(&hl)
	h.originTS = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		(*h.handler.Load()).ServeHTTP(w, r)
	}))
	t.Cleanup(h.originTS.Close)
	rl, err := NewRelay(RelayConfig{
		Upstream:    h.originTS.URL,
		LongPoll:    time.Second,
		Seed:        7,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	h.relay = rl
	h.relayTS = httptest.NewServer(rl.Handler())
	t.Cleanup(h.relayTS.Close)
	return h
}

// swapOrigin replaces the origin with a fresh server under the same
// URL — the restart-without-WAL scenario.
func (h *relayHarness) swapOrigin(srv *Server) {
	h.origin = srv
	hl := srv.Handler()
	h.handler.Store(&hl)
}

// assertMirrored fails unless the relay's full pack set is
// digest-identical to the origin's, versions included.
func assertMirrored(t *testing.T, origin *Registry, relay *Relay) {
	t.Helper()
	od, rd := origin.Delta(0), relay.Registry().Delta(0)
	if od.ETag != rd.ETag {
		t.Fatalf("relay pack digest %s != origin %s (%d vs %d vaccines)",
			rd.ETag, od.ETag, len(rd.Vaccines), len(od.Vaccines))
	}
	if od.Version != rd.Version || relay.Version() != od.Version {
		t.Fatalf("relay version %d/%d != origin %d", rd.Version, relay.Version(), od.Version)
	}
	for i := range od.Versions {
		if od.Versions[i] != rd.Versions[i] {
			t.Fatalf("version line diverged at %d: relay %d != origin %d",
				i, rd.Versions[i], od.Versions[i])
		}
	}
}

// TestRelayMirrorsOriginExactly drives the mirror through mid-flight
// publishes and checks digest identity at every hop: origin registry,
// relay mirror, and an agent synced through the relay.
func TestRelayMirrorsOriginExactly(t *testing.T) {
	h := newRelayHarness(t)
	ctx := context.Background()

	h.origin.Registry().Publish(testVaccines("m1", 8)...)
	if n, err := h.relay.SyncOnce(ctx); err != nil || n != 8 {
		t.Fatalf("first sync: %d vaccines, %v", n, err)
	}
	assertMirrored(t, h.origin.Registry(), h.relay)

	// Publishes land between relay syncs; the incremental delta must
	// keep the mirror exact (same content AND same version numbers).
	h.origin.Registry().Publish(testVaccines("m2", 5)...)
	h.origin.Registry().Publish(testVaccines("m3", 3)...)
	if n, err := h.relay.SyncOnce(ctx); err != nil || n != 8 {
		t.Fatalf("incremental sync: %d vaccines, %v", n, err)
	}
	assertMirrored(t, h.origin.Registry(), h.relay)

	// An agent syncing off the relay converges to the origin's version
	// and holds the same pack content.
	a := newTestAgent(h.relayTS, "RELAY-AGENT-01")
	if _, err := a.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a.Version() != h.origin.Registry().Latest() {
		t.Fatalf("agent at %d, origin at %d", a.Version(), h.origin.Registry().Latest())
	}
	if a.Daemon().VaccineCount() != h.origin.Registry().Count() {
		t.Fatalf("agent holds %d vaccines, origin %d",
			a.Daemon().VaccineCount(), h.origin.Registry().Count())
	}
	if st := h.relay.Stats(); st.Deltas != 2 || st.Resyncs != 0 {
		t.Fatalf("relay stats %+v", st)
	}
}

// TestRelayPushPropagation runs the relay's long-poll loop for real: a
// downstream agent parks on the relay, the relay parks on the origin,
// and a publish at the origin must reach the agent at publish latency
// through both parked hops.
func TestRelayPushPropagation(t *testing.T) {
	h := newRelayHarness(t)
	h.origin.Registry().Publish(testVaccines("p0", 1)...)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done(); h.relay.Run(ctx) }()

	id := winenv.DefaultIdentity()
	id.ComputerName = "RELAY-PUSH-PC"
	a := NewAgent(AgentConfig{
		BaseURL:  h.relayTS.URL,
		Env:      winenv.New(id),
		Seed:     3,
		LongPoll: 5 * time.Second,
	})
	wg.Add(1)
	go func() { defer wg.Done(); a.Run(ctx, time.Hour) }()

	// Wait for the first delta to land, then publish mid-park.
	deadline := time.Now().Add(5 * time.Second)
	for h.relay.Version() != 1 || h.relay.Registry().Fleet(time.Minute, time.Now()).ActiveHosts != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("relay/agent never reached steady state: relay at %d", h.relay.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}
	h.origin.Registry().Publish(testVaccines("p1", 2)...)
	target := h.origin.Registry().Latest()
	for {
		st := h.relay.Registry().Fleet(time.Minute, time.Now())
		if st.ActiveHosts == 1 && st.MinVersion == target {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("publish never pushed through the tier: fleet %+v, relay at %d",
				st, h.relay.Version())
		}
		time.Sleep(2 * time.Millisecond)
	}
	cancel()
	wg.Wait()
	assertMirrored(t, h.origin.Registry(), h.relay)
}

// TestRelayResetPropagation restarts the origin without its version
// history: the relay must rebase its mirror on the rewound version
// line, and an agent that synced through the relay before the restart
// must be rebased in turn by the relay's own Reset path.
func TestRelayResetPropagation(t *testing.T) {
	h := newRelayHarness(t)
	ctx := context.Background()
	h.origin.Registry().Publish(testVaccines("old", 6)...)
	if _, err := h.relay.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	a := newTestAgent(h.relayTS, "RELAY-RESET-PC")
	if _, err := a.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a.Version() != 6 {
		t.Fatalf("agent at %d before restart, want 6", a.Version())
	}

	// Origin restarts empty and republishes a smaller pack: its version
	// line is now BELOW the relay's cursor.
	fresh := NewServer(NewRegistry(0))
	fresh.Registry().SetGenerator("relay-test")
	fresh.Registry().Publish(testVaccines("new", 2)...)
	h.swapOrigin(fresh)

	// The relay's next poll (since=6 against a version-2 origin) gets a
	// Reset delta and rebases the mirror.
	if _, err := h.relay.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if st := h.relay.Stats(); st.Resyncs != 1 {
		t.Fatalf("relay resyncs %d, want 1", st.Resyncs)
	}
	assertMirrored(t, fresh.Registry(), h.relay)

	// The agent (cursor 6, ahead of the relay's rewound line) is rebased
	// by the relay's own since-ahead path.
	if _, err := a.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	if a.Version() != 2 {
		t.Fatalf("agent at %d after reset, want 2", a.Version())
	}
	if st := a.Stats(); st.Resyncs != 1 {
		t.Fatalf("agent resyncs %d, want 1", st.Resyncs)
	}
}

// TestRelayCacheInvalidationOnVersionBump pins the relay's encode
// cache across upstream version bumps: repeated downstream fetches at
// one cursor are cache hits, and a mirrored publish must invalidate
// them — the next fetch serves the new pack set, not the cached body.
func TestRelayCacheInvalidationOnVersionBump(t *testing.T) {
	h := newRelayHarness(t)
	ctx := context.Background()
	h.origin.Registry().Publish(testVaccines("c1", 4)...)
	if _, err := h.relay.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}

	fetch := func() (string, int) {
		t.Helper()
		resp, err := http.Get(h.relayTS.URL + PathPacks + "?since=0")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d", resp.StatusCode)
		}
		return resp.Header.Get("ETag"), len(body)
	}

	etag1, size1 := fetch()
	etag2, _ := fetch()
	if etag1 != etag2 {
		t.Fatal("cached fetches disagree")
	}
	if hits := h.relay.Server().MetricsSnapshot().EncodeCacheHits; hits != 1 {
		t.Fatalf("EncodeCacheHits = %d, want 1", hits)
	}

	// Version bump at the origin, mirrored into the relay: the cached
	// since=0 body is for a version that no longer exists.
	h.origin.Registry().Publish(testVaccines("c2", 4)...)
	if _, err := h.relay.SyncOnce(ctx); err != nil {
		t.Fatal(err)
	}
	etag3, size3 := fetch()
	if etag3 == etag1 || size3 <= size1 {
		t.Fatalf("stale cache served after version bump: etag %s size %d (was %s/%d)",
			etag3, size3, etag1, size1)
	}
	od := h.origin.Registry().Delta(0)
	if etag3 != `"`+od.ETag+`"` {
		t.Fatalf("post-bump ETag %s != origin digest %q", etag3, od.ETag)
	}
}

// TestRelayRefusesJSONUpstream pins the fail-fast: a relay pointed at
// an upstream that cannot speak the binary codec must error rather
// than mirror a version-less delta.
func TestRelayRefusesJSONUpstream(t *testing.T) {
	srv := NewServer(NewRegistry(0))
	srv.Registry().Publish(testVaccines("j", 2)...)
	// A pre-codec origin: honours the protocol but ignores Accept.
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r.Header.Del("Accept")
		srv.Handler().ServeHTTP(w, r)
	}))
	defer legacy.Close()
	rl, err := NewRelay(RelayConfig{Upstream: legacy.URL, LongPoll: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rl.SyncOnce(context.Background()); err == nil {
		t.Fatal("relay accepted a JSON upstream")
	}
	if rl.Version() != 0 || rl.Registry().Count() != 0 {
		t.Fatal("refused delta still mutated the mirror")
	}
}
