package fleet

import (
	"bytes"
	"encoding/json"
	"sync"
)

// deltaCache memoises materialized deltas and their encoded bodies
// keyed by (since, version, encoding). The win is fan-out shaped: when
// a publish wakes N parked long-pollers at the same cursor — the
// steady state of both an origin under a converged fleet and an edge
// relay under its downstream agents — the shard scan, digest, and
// encode run once and N-1 requests are served the cached bytes.
//
// Correctness leans on the registry's version fence: a cached body for
// (since, v) is exactly the vaccines in (since, v], which never
// changes after the fact, so an entry can only go stale by the
// registry moving PAST it — and the key's version component then stops
// matching reg.Latest(), making the entry unreachable. Lookups clear
// the map whenever the registry version moved (one generation of
// cursors at a time is all fan-out needs), and an insert cap bounds
// the memory a scan of pathological cursors could pin.
type deltaCache struct {
	mu      sync.Mutex
	version uint64
	entries map[deltaKey]*cachedDelta
}

// deltaKey identifies one encoded response body.
type deltaKey struct {
	since   uint64
	version uint64
	binary  bool
}

// cachedDelta is one materialized, encoded delta.
type cachedDelta struct {
	etag        string // quoted, ready for the ETag header
	contentType string
	body        []byte
}

// maxCachedDeltas bounds the per-generation entry count. Distinct
// live cursors collapse to a handful in practice (agents are either
// converged or one publish behind); the cap only matters against a
// client sweeping arbitrary since values.
const maxCachedDeltas = 256

func newDeltaCache() *deltaCache {
	return &deltaCache{entries: make(map[deltaKey]*cachedDelta)}
}

// get returns the encoded delta for since under the requested
// encoding, computing and caching it on miss.
func (c *deltaCache) get(reg *Registry, since uint64, binary bool) (*cachedDelta, bool, error) {
	latest := reg.Latest()
	c.mu.Lock()
	if c.version != latest {
		c.version = latest
		clear(c.entries)
	}
	if e, ok := c.entries[deltaKey{since, latest, binary}]; ok {
		c.mu.Unlock()
		return e, true, nil
	}
	c.mu.Unlock()

	d := reg.Delta(since)
	body, contentType, err := encodeDelta(d, binary)
	if err != nil {
		return nil, false, err
	}
	e := &cachedDelta{etag: `"` + d.ETag + `"`, contentType: contentType, body: body}
	c.mu.Lock()
	// Store under the fence the delta was actually cut at (a publish
	// racing the scan makes it differ from latest; such an entry is
	// simply never hit). The generation clear above keeps the map from
	// accumulating across versions; the cap bounds one generation.
	if len(c.entries) < maxCachedDeltas {
		c.entries[deltaKey{since, d.Version, binary}] = e
	}
	c.mu.Unlock()
	return e, false, nil
}

// encodeDelta renders one DeltaResponse body. The JSON form is the
// exact pre-codec encoding (json.Encoder, trailing newline included),
// so negotiation cannot perturb legacy clients byte-wise.
func encodeDelta(d *DeltaResponse, binary bool) ([]byte, string, error) {
	if binary {
		body, err := EncodeDeltaBinary(d)
		return body, ContentTypeDelta, err
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(d); err != nil {
		return nil, "", err
	}
	return buf.Bytes(), ContentTypeJSON, nil
}
