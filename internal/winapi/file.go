package winapi

import (
	"fmt"

	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// File-creation disposition constants for CreateFileA, matching Win32.
const (
	CreateNew    = 1 // fail if the file exists
	CreateAlways = 2 // create or truncate
	OpenExisting = 3 // fail if the file does not exist
)

// InvalidHandleValue is CreateFileA's failure return.
const InvalidHandleValue uint32 = 0xFFFFFFFF

// InvalidFileAttributes is GetFileAttributesA's failure return.
const InvalidFileAttributes uint32 = 0xFFFFFFFF

// fakeSuccessHandle is the plausible handle value a forced-success
// mutation returns.
const fakeSuccessHandle uint32 = 0x00DD0004

// doResource performs a resource operation on the machine's environment
// and folds the winenv result into handle/bool conventions.
func doResource(m Machine, kind winenv.ResourceKind, op winenv.Op, name string, data []byte) winenv.Result {
	return m.Env().Do(winenv.Request{
		Kind: kind, Op: op, Name: name, Principal: m.Principal(), Data: data,
	})
}

func registerFile(r *Registry) {
	r.Register(Spec{
		Name: "CreateFileA", NArgs: 3,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpCreate,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0, 1, 2}, StrArgs: []int{0},
			FailureRet: InvalidHandleValue, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: fakeSuccessHandle,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			disposition := args[2].Value
			var res winenv.Result
			op := winenv.OpCreate
			switch disposition {
			case OpenExisting:
				op = winenv.OpOpen
				res = doResource(m, winenv.KindFile, winenv.OpOpen, name, nil)
			case CreateAlways:
				if m.Env().Exists(winenv.KindFile, name) {
					// Truncate-open of an existing file.
					res = doResource(m, winenv.KindFile, winenv.OpWrite, name, nil)
					if res.OK {
						res = doResource(m, winenv.KindFile, winenv.OpOpen, name, nil)
					}
				} else {
					res = doResource(m, winenv.KindFile, winenv.OpCreate, name, nil)
				}
			default: // CreateNew
				res = doResource(m, winenv.KindFile, winenv.OpCreate, name, nil)
			}
			if !res.OK {
				return Outcome{Ret: InvalidHandleValue, OpOverride: op}, nil
			}
			return Outcome{Ret: uint32(res.Handle), Success: true, OpOverride: op}, nil
		},
	})

	r.Register(Spec{
		Name: "ReadFile", NArgs: 3,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpRead,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrReadFault,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindFile {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			res := doResource(m, winenv.KindFile, winenv.OpRead, name, nil)
			if !res.OK {
				return Outcome{Ret: 0}, nil
			}
			n := args[2].Value
			if uint32(len(res.Data)) < n {
				n = uint32(len(res.Data))
			}
			if n > 0 {
				if err := m.WriteBytes(args[1].Value, res.Data[:n], src); err != nil {
					return Outcome{}, err
				}
			}
			return Outcome{Ret: 1, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "WriteFile", NArgs: 3,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpWrite,
			IdentifierArg: 0, IdentifierViaHandle: true, Taint: TaintReturn,
			FailureRet: 0, FailureErr: winenv.ErrWriteFault,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			h := winenv.Handle(args[0].Value)
			kind, name, ok := m.Env().HandleName(h)
			if !ok || kind != winenv.KindFile {
				m.Env().SetLastError(winenv.ErrInvalidHandle)
				return Outcome{Ret: 0}, nil
			}
			data, _, err := m.ReadBytes(args[1].Value, args[2].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindFile, winenv.OpWrite, name, data)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "DeleteFileA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpDelete,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindFile, winenv.OpDelete, name, nil)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "GetFileAttributesA", NArgs: 1,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpQuery,
			IdentifierArg: 0, Taint: TaintReturn,
			StaticArgs: []int{0}, StrArgs: []int{0},
			FailureRet: InvalidFileAttributes, FailureErr: winenv.ErrFileNotFound,
			SuccessRet: 0x20, // FILE_ATTRIBUTE_ARCHIVE
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			name, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			res := doResource(m, winenv.KindFile, winenv.OpQuery, name, nil)
			if !res.OK {
				return Outcome{Ret: InvalidFileAttributes}, nil
			}
			return Outcome{Ret: 0x20, Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "CopyFileA", NArgs: 3,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpCreate,
			IdentifierArg: 1, Taint: TaintReturn,
			StaticArgs: []int{0, 1, 2}, StrArgs: []int{0, 1},
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			srcName, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			dstName, _, err := m.ReadCString(args[1].Value)
			if err != nil {
				return Outcome{}, err
			}
			failIfExists := args[2].Value != 0
			var data []byte
			if srcRes := m.Env().Lookup(winenv.KindFile, srcName); srcRes != nil {
				data = append([]byte(nil), srcRes.Data...)
			}
			if m.Env().Exists(winenv.KindFile, dstName) {
				if failIfExists {
					m.Env().SetLastError(winenv.ErrAlreadyExists)
					return Outcome{Ret: 0}, nil
				}
				res := doResource(m, winenv.KindFile, winenv.OpWrite, dstName, data)
				return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
			}
			res := doResource(m, winenv.KindFile, winenv.OpCreate, dstName, data)
			return Outcome{Ret: boolRet(res.OK), Success: res.OK}, nil
		},
	})

	r.Register(Spec{
		Name: "CloseHandle", NArgs: 1,
		Label: Label{IdentifierArg: -1},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			ok := m.Env().CloseHandle(winenv.Handle(args[0].Value))
			return Outcome{Ret: boolRet(ok), Success: ok}, nil
		},
	})

	r.Register(Spec{
		Name: "GetModuleFileNameA", NArgs: 3,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			// hModule==0 returns the running image's own path.
			path := m.SelfPath()
			if args[0].Value != 0 {
				if _, name, ok := m.Env().HandleName(winenv.Handle(args[0].Value)); ok {
					path = `C:\Windows\system32\` + name
				}
			}
			if err := m.WriteCString(args[1].Value, clip(path, args[2].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: uint32(len(path)), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetSystemDirectoryA", NArgs: 2,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			const dir = `C:\Windows\system32`
			if err := m.WriteCString(args[0].Value, clip(dir, args[1].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: uint32(len(dir)), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetTempPathA", NArgs: 2,
		Label: Label{IdentifierArg: -1, Class: ClassSemantic},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			const dir = `C:\Temp\`
			if err := m.WriteCString(args[1].Value, clip(dir, args[0].Value), src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: uint32(len(dir)), Success: true}, nil
		},
	})

	r.Register(Spec{
		Name: "GetTempFileNameA", NArgs: 2,
		Label: Label{
			Resource: winenv.KindFile, Op: winenv.OpCreate,
			IdentifierArg: -1, Taint: TaintReturn,
			StrArgs: []int{0}, Class: ClassRandom,
			FailureRet: 0, FailureErr: winenv.ErrAccessDenied,
			SuccessRet: 1,
		},
		Impl: func(m Machine, args []Arg, src taint.Set) (Outcome, error) {
			prefix, _, err := m.ReadCString(args[0].Value)
			if err != nil {
				return Outcome{}, err
			}
			name := fmt.Sprintf(`C:\Temp\%s%04x.tmp`, prefix, m.Rand()&0xFFFF)
			res := doResource(m, winenv.KindFile, winenv.OpCreate, name, nil)
			if !res.OK {
				return Outcome{Ret: 0, Identifier: name}, nil
			}
			if err := m.WriteCString(args[1].Value, name, src); err != nil {
				return Outcome{}, err
			}
			return Outcome{Ret: uint32(res.Handle), Success: true, Identifier: name}, nil
		},
	})
}

// clip truncates s to fit a buffer of the given size (leaving room for
// the NUL terminator).
func clip(s string, size uint32) string {
	if size == 0 {
		return ""
	}
	if uint32(len(s)) >= size {
		return s[:size-1]
	}
	return s
}
