// Package winapi defines the labelled Windows-style API surface the
// synthetic programs call and AUTOVAC hooks. Each API carries a Label
// that encodes what the paper's API-labelling study (§III-A, Table I)
// records: which resource namespace it touches, which argument is the
// resource identifier (directly or through the handle map), whether the
// taint source is the return value or an out-argument, and the concrete
// success/failure conventions (EAX value, GetLastError code).
package winapi

import (
	"fmt"

	"autovac/internal/taint"
	"autovac/internal/winenv"
)

// TaintTarget says where a labelled API's taint label lands, mirroring
// the paper's two API classes ("Tainting the return value" vs "Tainting
// the argument", §III-A).
type TaintTarget int

// Taint targets.
const (
	// TaintNone marks APIs that are not taint sources.
	TaintNone TaintTarget = iota
	// TaintReturn taints the value returned in EAX (OpenMutex, ...).
	TaintReturn
	// TaintArg taints the out-argument that receives the handle
	// (RegOpenKeyEx stores the opened key in its out parameter).
	TaintArg
)

// SourceClass classifies an API for determinism analysis (§IV-C):
// whether data it produces is deterministic per host or random.
type SourceClass int

// Source classes.
const (
	// ClassNone marks APIs that produce no identifier-relevant data.
	ClassNone SourceClass = iota
	// ClassSemantic marks APIs whose output is a deterministic host
	// invariant (GetComputerName, GetVolumeInformation, gethostname).
	// Identifiers derived from them are algorithm-deterministic.
	ClassSemantic
	// ClassRandom marks APIs whose output is non-deterministic
	// (GetTickCount, GetTempFileName, rand). Identifiers derived from
	// them are non-reproducible and discarded.
	ClassRandom
)

// String names the class.
func (c SourceClass) String() string {
	switch c {
	case ClassSemantic:
		return "semantic"
	case ClassRandom:
		return "random"
	default:
		return "none"
	}
}

// Label is the per-API record the analysis consumes.
type Label struct {
	// Resource is the namespace this API touches (KindInvalid if none).
	Resource winenv.ResourceKind
	// Op is the resource operation this API performs.
	Op winenv.Op
	// IdentifierArg is the index of the argument holding the resource
	// identifier (-1 if none).
	IdentifierArg int
	// IdentifierViaHandle resolves the identifier through the handle
	// map instead of reading a string: the argument at IdentifierArg is
	// an open handle (Table I's ReadFile row: "hFile for Handle Map").
	IdentifierViaHandle bool
	// ValueNameArg, when positive, names the argument holding a
	// sub-value name appended to the handle-resolved identifier
	// (RegSetValueEx: identifier = "<key>\<value>"). Zero means unset
	// (argument 0 is always the handle for via-handle APIs).
	ValueNameArg int
	// Taint says where the taint label lands.
	Taint TaintTarget
	// TaintArgIndex is the out-argument index for TaintArg.
	TaintArgIndex int
	// StaticArgs lists argument indices comparable across executions —
	// the "static parameters" Algorithm 1 aligns on. Handle and buffer
	// arguments are dynamic and excluded.
	StaticArgs []int
	// StrArgs lists argument indices that point to NUL-terminated
	// strings, resolved into the call log.
	StrArgs []int
	// Class is the determinism class of the API's output.
	Class SourceClass
	// FailureRet is the EAX value a forced failure produces.
	FailureRet uint32
	// FailureErr is the GetLastError value a forced failure produces.
	FailureErr winenv.ErrorCode
	// SuccessRet is the EAX value a forced success produces (a fake
	// but plausible handle/TRUE).
	SuccessRet uint32
}

// Arg is an API argument with its taint.
type Arg struct {
	Value uint32
	Taint taint.Set
}

// ExitKind distinguishes self-termination APIs.
type ExitKind int

// Exit kinds.
const (
	ExitNone ExitKind = iota
	// ExitProcessKind covers ExitProcess and TerminateProcess(self).
	ExitProcessKind
	// ExitThreadKind covers ExitThread.
	ExitThreadKind
)

// Outcome is what an API implementation reports back to the emulator.
type Outcome struct {
	// Ret is the EAX value.
	Ret uint32
	// RetTaint is extra taint for the return value beyond the source
	// label the emulator applies (usually data-dependent taint, e.g.
	// lstrcmp's result carries its operands' taint).
	RetTaint taint.Set
	// Success is the API-specific success predicate result.
	Success bool
	// OpOverride replaces the label's Op when non-zero (CreateFileA
	// performs open or create depending on its disposition argument).
	OpOverride winenv.Op
	// Identifier replaces the label-derived identifier when non-empty
	// (GetTempFileName generates the identifier instead of taking it).
	Identifier string
	// Exit requests termination of the emulated program.
	Exit ExitKind
	// ExitCode is the termination code when Exit is set.
	ExitCode uint32
}

// Machine is the execution environment an API implementation runs
// against. The emulator implements it; implementations use it for memory
// access (with taint), the resource environment, and host facilities.
//
// Memory writes performed through Machine during an API implementation
// are recorded by the emulator into the instruction-level trace, so
// backward slicing sees API output definitions.
type Machine interface {
	// Env returns the resource environment.
	Env() *winenv.Env
	// Principal returns the executing program's name.
	Principal() string

	// ReadCString reads a NUL-terminated string with its taint.
	ReadCString(addr uint32) (string, taint.Set, error)
	// WriteCString writes s plus a NUL terminator with uniform taint.
	WriteCString(addr uint32, s string, t taint.Set) error
	// ReadWord reads a 32-bit little-endian word with its taint.
	ReadWord(addr uint32) (uint32, taint.Set, error)
	// WriteWord writes a 32-bit little-endian word with uniform taint.
	WriteWord(addr uint32, v uint32, t taint.Set) error
	// ReadBytes reads n bytes with their combined taint.
	ReadBytes(addr, n uint32) ([]byte, taint.Set, error)
	// WriteBytes writes bytes with uniform taint.
	WriteBytes(addr uint32, b []byte, t taint.Set) error

	// Rand returns the next value from the run's deterministic PRNG
	// (models GetTickCount/rand-style non-determinism reproducibly).
	Rand() uint32
	// SelfPath returns the emulated program's own image path
	// (GetModuleFileName(NULL)).
	SelfPath() string
}

// Impl is an API implementation. src is the taint label allocated for
// this call occurrence (empty set for unlabelled APIs); implementations
// apply it to the output data they write.
type Impl func(m Machine, args []Arg, src taint.Set) (Outcome, error)

// Variadic marks a Spec accepting any argument count.
const Variadic = -1

// Spec is one registered API.
type Spec struct {
	// Name is the API's name as called by CALLAPI.
	Name string
	// NArgs is the expected argument count, or Variadic.
	NArgs int
	// Label carries the analysis metadata.
	Label Label
	// Impl is the behaviour.
	Impl Impl
}

// IsResource reports whether the API touches a labelled resource.
func (s *Spec) IsResource() bool { return s.Label.Resource.Valid() }

// Registry is the API set available to emulated programs.
type Registry struct {
	specs map[string]*Spec
	names []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{specs: make(map[string]*Spec)}
}

// Register adds a spec. It panics on duplicate names: the API set is a
// static table assembled at construction time, so a duplicate is a
// programming error.
func (r *Registry) Register(s Spec) {
	if _, dup := r.specs[s.Name]; dup {
		panic(fmt.Sprintf("winapi: duplicate API %q", s.Name))
	}
	cp := s
	r.specs[s.Name] = &cp
	r.names = append(r.names, s.Name)
}

// Lookup returns the spec for an API name.
func (r *Registry) Lookup(name string) (*Spec, bool) {
	s, ok := r.specs[name]
	return s, ok
}

// Names returns every registered API name in registration order.
func (r *Registry) Names() []string {
	return append([]string(nil), r.names...)
}

// Len returns the number of registered APIs.
func (r *Registry) Len() int { return len(r.specs) }

// ResourceAPIs returns the names of APIs that touch labelled resources —
// the hook set Phase-I instruments (the paper hooks 89 such calls).
func (r *Registry) ResourceAPIs() []string {
	var out []string
	for _, n := range r.names {
		if r.specs[n].IsResource() {
			out = append(out, n)
		}
	}
	return out
}

// boolRet converts a success flag to TRUE/FALSE.
func boolRet(ok bool) uint32 {
	if ok {
		return 1
	}
	return 0
}
